// Figure 3: sensitivity to external factors — compiler choice.
//
// The paper compiles its models with GCC and Clang and finds execution
// times vary while Cuttlesim's advantage over Verilator stays stable.
// Clang is not available in this environment, so we probe the same axis
// with one compiler at several optimization pipelines (-O0/-O1/-O2/-O3;
// see DESIGN.md substitutions): for each combinational design, both the
// Cuttlesim model and the compiled-netlist model are regenerated,
// compiled out of process at each level, and timed for a fixed cycle
// budget. The observation to reproduce: absolute times move with the
// toolchain, the cuttlesim/RTL ratio stays in the same band at every
// optimized level.

#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "codegen/compile.hpp"
#include "codegen/cpp_emit.hpp"
#include "designs/designs.hpp"
#include "designs/rv32.hpp"
#include "riscv/programs.hpp"
#include "rtl/lower.hpp"
#include "rtl/rtl_emit.hpp"

namespace {

/** Best-of-2 timing to suppress process-startup noise. */
double
best_time(const std::string& binary, uint64_t cycles)
{
    double best = 1e9;
    for (int i = 0; i < 2; ++i)
        best = std::min(best, koika::codegen::time_binary(
                                  binary, std::to_string(cycles)));
    return best;
}

/** One BENCH_fig3.json entry: out-of-process runs have no rule
 *  counters, so entries carry cycles + wall time (cycles/sec). */
void
record(const std::string& design, const char* level, const char* engine,
       uint64_t cycles, double wall)
{
    koika::obs::SimStats s;
    s.label = "fig3/" + design + "/" + (level + 1) + "/" + engine;
    s.design = design;
    s.engine = engine;
    s.cycles = cycles;
    s.wall_seconds = wall;
    bench::report().add(std::move(s));
}

std::string
driver(const std::string& header, const std::string& cls)
{
    return "#include <cstdio>\n#include <cstdlib>\n#include \"" + header +
           "\"\n"
           "int main(int argc, char** argv) {\n"
           "    unsigned long n = argc > 1 ? strtoul(argv[1], 0, 10) : 1;\n"
           "    cuttlesim::models::" +
           cls +
           " m;\n"
           "    for (unsigned long i = 0; i < n; ++i) m.cycle();\n"
           "    uint64_t w[8]; m.get_reg_words(0, w);\n"
           "    std::printf(\"%llx\\n\", (unsigned long long)w[0]);\n"
           "    return 0;\n}\n";
}

/**
 * Standalone rv32i driver with the magic memory inlined (the compiled
 * binary must not depend on the repo libraries): runs primes to
 * completion `reps` times and prints total cycles.
 */
std::string
rv32_driver(const std::string& header, const std::string& cls)
{
    using namespace koika;
    auto d = designs::build_design("rv32i");
    designs::Rv32CorePorts ports = designs::rv32_ports(*d, 0, 1);
    riscv::Program prog =
        riscv::build_program(riscv::primes_source(1000));

    std::string words;
    for (size_t i = 0; i < prog.words.size(); ++i) {
        if (i)
            words += ",";
        words += std::to_string(prog.words[i]) + "u";
    }
    char ports_def[256];
    std::snprintf(ports_def, sizeof ports_def,
                  "enum { IV=%d, IA=%d, IRV=%d, IRD=%d, DV=%d, DA=%d, "
                  "DD=%d, DW=%d, DRV=%d, DRD=%d, HALT=%d, D2E=%d, "
                  "E2W=%d };\n",
                  ports.imem.req_valid, ports.imem.req_addr,
                  ports.imem.resp_valid, ports.imem.resp_data,
                  ports.dmem.req_valid, ports.dmem.req_addr,
                  ports.dmem.req_data, ports.dmem.req_wstrb,
                  ports.dmem.resp_valid, ports.dmem.resp_data,
                  ports.halted, ports.d2e_valid, ports.e2w_valid);

    return "#include <cstdio>\n#include <cstdlib>\n#include <cstring>\n"
           "#include \"" + header + "\"\n"
           "static const uint32_t kProg[] = {" + words + "};\n" +
           ports_def +
           "static uint8_t mem[1 << 16];\n"
           "static uint64_t get1(const cuttlesim::models::" + cls +
           "& m, int r) { uint64_t w[8]; m.get_reg_words((size_t)r, w); "
           "return w[0]; }\n"
           "static void set1(cuttlesim::models::" + cls +
           "& m, int r, uint64_t v) { uint64_t w[8] = {v}; "
           "m.set_reg_words((size_t)r, w); }\n"
           "static uint32_t rd32(uint32_t a) { a &= 0xFFFC; uint32_t v; "
           "std::memcpy(&v, mem + a, 4); return v; }\n"
           "static void tick_imem(cuttlesim::models::" + cls + "& m) {\n"
           "    if (get1(m, IV)) { uint32_t a = (uint32_t)get1(m, IA); "
           "set1(m, IV, 0); set1(m, IRD, rd32(a)); set1(m, IRV, 1); }\n"
           "}\n"
           "static void tick_dmem(cuttlesim::models::" + cls + "& m) {\n"
           "    if (!get1(m, DV)) return;\n"
           "    uint32_t a = (uint32_t)get1(m, DA), wst = "
           "(uint32_t)get1(m, DW), v = (uint32_t)get1(m, DD);\n"
           "    set1(m, DV, 0);\n"
           "    if (wst == 0) { set1(m, DRD, rd32(a)); set1(m, DRV, 1); "
           "return; }\n"
           "    if (a == 0x40000000u) return;\n"
           "    a &= 0xFFFC;\n"
           "    for (int b = 0; b < 4; ++b) if ((wst >> b) & 1) "
           "mem[a + (uint32_t)b] = (uint8_t)(v >> (8 * b));\n"
           "}\n"
           "int main(int argc, char** argv) {\n"
           "    unsigned long reps = argc > 1 ? strtoul(argv[1], 0, 10) "
           ": 1;\n"
           "    uint64_t total = 0;\n"
           "    for (unsigned long rep = 0; rep < reps; ++rep) {\n"
           "        std::memset(mem, 0, sizeof mem);\n"
           "        std::memcpy(mem, kProg, sizeof kProg);\n"
           "        cuttlesim::models::" + cls + " m;\n"
           "        for (int c = 0; c < 10000000; ++c) {\n"
           "            m.cycle(); tick_imem(m); tick_dmem(m);\n"
           "            if (get1(m, HALT) && !get1(m, D2E) && "
           "!get1(m, E2W)) break;\n"
           "        }\n"
           "        total += m.cycles;\n"
           "    }\n"
           "    std::printf(\"%llu\\n\", (unsigned long long)total);\n"
           "    return 0;\n}\n";
}

} // namespace

int
main()
{
    using namespace koika;
    bench::report_init("fig3");
    const char* kDesigns[] = {"collatz", "fir", "fft"};
    // KOIKA_BENCH_SMOKE: one (cheap-to-compile) level and tiny budgets,
    // so the bench-smoke ctest still exercises the real out-of-process
    // pipeline end to end. External compiles go through the
    // content-addressed cache (bench::cache_options), so re-running a
    // session skips every identical compile.
    std::vector<const char*> levels = {"-O0", "-O1", "-O2", "-O3"};
    if (bench::smoke())
        levels = {"-O0"};
    const codegen::CompileOptions copts = bench::cache_options();

    std::printf("Figure 3: compiler sensitivity "
                "(GCC optimization levels; clang unavailable)\n");
    std::printf("%-8s %-5s %16s %16s %9s\n", "design", "opt",
                "cuttlesim Mc/s", "rtl Mc/s", "speedup");

    for (const char* name : kDesigns) {
        auto d = designs::build_design(name);
        std::string cls = codegen::model_class_name(*d);
        std::string model = codegen::emit_model(*d);
        std::string rtl =
            rtl::emit_rtl_model(rtl::lower(*d), cls + "_rtl");
        for (const char* level : levels) {
            // -O0 models are ~30x slower; scale the budget so each row
            // runs for a comparable, noise-free duration.
            uint64_t cycles =
                std::string(level) == "-O0" ? 4'000'000 : 40'000'000;
            cycles = bench::scaled<uint64_t>(cycles, 20'000);
            std::string dir = std::string("/tmp/cuttlesim_fig3_") +
                              name + "_" + (level + 1);
            auto cm = codegen::compile_cpp(
                dir,
                {{cls + ".model.hpp", model},
                 {"main_model.cpp", driver(cls + ".model.hpp", cls)}},
                "main_model.cpp", level, copts);
            auto cr = codegen::compile_cpp(
                dir,
                {{cls + "_rtl.hpp", rtl},
                 {"main_rtl.cpp",
                  driver(cls + "_rtl.hpp", cls + "_rtl")}},
                "main_rtl.cpp", level, copts);
            double tm = best_time(cm.binary, cycles);
            double tr = best_time(cr.binary, cycles);
            record(name, level, "cuttlesim", cycles, tm);
            record(name, level, "verilator-koika", cycles, tr);
            std::printf("%-8s %-5s %16.1f %16.1f %8.2fx\n", name, level,
                        (double)cycles / tm / 1e6,
                        (double)cycles / tr / 1e6, tr / tm);
        }
    }
    // Control-heavy design: rv32i running primes(1000), memory inlined
    // into the driver. This is where the paper's stability claim lives.
    {
        auto d = designs::build_design("rv32i");
        std::string cls = codegen::model_class_name(*d);
        std::string model = codegen::emit_model(*d);
        std::string rtl =
            rtl::emit_rtl_model(rtl::lower(*d), cls + "_rtl");
        for (const char* level : levels) {
            bool o0 = std::string(level) == "-O0";
            unsigned reps_model = bench::scaled<unsigned>(o0 ? 4 : 40, 1);
            unsigned reps_rtl = bench::scaled<unsigned>(o0 ? 1 : 4, 1);
            std::string dir =
                std::string("/tmp/cuttlesim_fig3_rv32i_") + (level + 1);
            auto cm = codegen::compile_cpp(
                dir,
                {{cls + ".model.hpp", model},
                 {"main_model.cpp", rv32_driver(cls + ".model.hpp", cls)}},
                "main_model.cpp", level, copts);
            auto cr = codegen::compile_cpp(
                dir,
                {{cls + "_rtl.hpp", rtl},
                 {"main_rtl.cpp",
                  rv32_driver(cls + "_rtl.hpp", cls + "_rtl")}},
                "main_rtl.cpp", level, copts);
            uint64_t cyc_m = std::stoull(codegen::run_binary(
                cm.binary, std::to_string(reps_model)));
            uint64_t cyc_r = std::stoull(codegen::run_binary(
                cr.binary, std::to_string(reps_rtl)));
            double tm =
                best_time(cm.binary, reps_model) / (double)cyc_m;
            double tr = best_time(cr.binary, reps_rtl) / (double)cyc_r;
            record("rv32i-primes", level, "cuttlesim", cyc_m,
                   tm * (double)cyc_m);
            record("rv32i-primes", level, "verilator-koika", cyc_r,
                   tr * (double)cyc_r);
            std::printf("%-8s %-5s %16.1f %16.1f %8.2fx\n",
                        "rv32i", level, 1.0 / tm / 1e6, 1.0 / tr / 1e6,
                        tr / tm);
        }
    }

    std::printf("\n('speedup' = cuttlesim throughput / rtl "
                "throughput.)\n");
    bench::report().write();
    return 0;
}
