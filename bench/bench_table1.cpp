// Table 1: the benchmark inventory.
//
// Prints, for every design: whether it is meta-programmed (M), whether
// it is purely combinational (C: single rule, no scheduling/conflicts),
// source-line counts for the Kôika design, the generated Cuttlesim C++
// model, and the generated Verilog, plus the cycle count of the standard
// workload (free-running budget for the DSP blocks, primes-to-completion
// for the cores). Paper values are reproduced in EXPERIMENTS.md; line
// counts differ in absolute terms (different frontend and pretty-printer)
// but the ordering and ratios are the comparison that matters.
//
// Each run also writes BENCH_table1.json: a timed T5-interpreter entry
// per design with cycles/sec and per-rule commit/abort/abort-reason
// counts (free-running designs use a fixed budget).

#include <cstdio>

#include "bench_util.hpp"
#include "codegen/cpp_emit.hpp"
#include "koika/print.hpp"
#include "rtl/lower.hpp"
#include "rtl/verilog.hpp"
#include "sim/tiers.hpp"

namespace {

struct Row
{
    const char* name;
    bool metaprog;
    bool combinational;
    const char* description;
    /** Cores for the primes workload; 0 = free-running DSP block. */
    int cores;
};

constexpr Row kRows[] = {
    {"collatz", false, false, "Trivial state machine", 0},
    {"fir", true, true, "Finite impulse response filter", 0},
    {"fft", true, true, "Part of a Fast Fourier Transform", 0},
    {"rv32i", false, false, "Small RISCV core (predictor: pc + 4)", 1},
    {"rv32e", false, false, "Embedded variant of rv32i", 1},
    {"rv32i-bp", false, false, "rv32i with btb + bht predictor", 1},
    {"rv32i-mc", false, false, "Dual-core variant of rv32i", 2},
};

constexpr uint64_t kFreeRunningBudget = 100'000'000;

/** T5 cycle budget for the free-running stats entries (the interpreter
 *  is ~3 orders slower than the compiled model; keep the row cheap).
 *  KOIKA_BENCH_SMOKE shrinks it further, and the primes workload with
 *  it, so the bench-smoke ctest finishes in seconds. */
const uint64_t kStatsBudget = bench::scaled<uint64_t>(50'000, 2'000);
const uint32_t kPrimes = bench::scaled<uint32_t>(bench::kPrimesBound, 100);

} // namespace

int
main()
{
    bench::report_init("table1");
    std::printf("Table 1: benchmark inventory (paper Table 1)\n");
    std::printf("%-10s %2s %2s %8s %10s %9s %12s  %s\n", "design", "M",
                "C", "Koika", "Cuttlesim", "Verilog", "Cycles",
                "description");
    std::printf("%-10s %2s %2s %8s %10s %9s %12s\n", "", "", "", "SLOC",
                "SLOC", "SLOC", "");
    for (const Row& row : kRows) {
        const koika::Design& d = bench::design(row.name);
        size_t koika_sloc = koika::design_sloc(d);
        size_t cuttlesim_sloc = koika::codegen::model_sloc(d);
        size_t verilog_sloc =
            koika::rtl::verilog_sloc(koika::rtl::lower(d));
        uint64_t cycles;
        std::string label = std::string("table1/") + row.name;
        if (row.cores == 0) {
            cycles = kFreeRunningBudget;
            auto engine = koika::sim::make_engine(
                d, koika::sim::Tier::kT5StaticAnalysis);
            bench::Timer timer;
            for (uint64_t c = 0; c < kStatsBudget; ++c)
                engine->cycle();
            bench::report().record(label, "T5", *engine,
                                   timer.seconds());
        } else {
            auto engine = koika::sim::make_engine(
                d, koika::sim::Tier::kT5StaticAnalysis);
            bench::Timer timer;
            cycles = bench::run_primes(d, *engine, row.cores, kPrimes);
            bench::report().record(label, "T5", *engine,
                                   timer.seconds());
        }
        std::printf("%-10s %2s %2s %8zu %10zu %9zu %12llu  %s\n",
                    row.name, row.metaprog ? "Y" : "-",
                    row.combinational ? "Y" : "-", koika_sloc,
                    cuttlesim_sloc, verilog_sloc,
                    (unsigned long long)cycles, row.description);
    }
    std::printf("\nCycle counts for rv32* are primes(%u) to completion;\n"
                "DSP blocks use a fixed free-running budget (the paper "
                "ran 1G/30M/25.1M).\n",
                kPrimes);
    bench::report().write();
    return 0;
}
