// Batched multi-instance simulation: scalar vs. lockstep-lane fault
// campaigns (src/fault/batch.cpp).
//
// Not a paper figure — this bench guards the batched execution mode.
// It runs the same rv32 fault-injection campaign three ways: scalar
// (batch=1, jobs=1), batched on one thread (batch=N, jobs=1), and
// batched across one worker per hardware thread (batch=N, jobs=hw;
// each pool worker drives one whole lockstep batch). Every run must
// produce byte-identical reports and coverage databases — that is the
// contract documented in fault::CampaignConfig::batch and the hard
// check here; the bench panics on any mismatch. Wall-clock speedups
// are reported per entry, with the aggregate (batch * jobs vs. scalar)
// expected to clear 4x on a multi-core host: lanes share one golden
// run and fork from its live state at each injection boundary, so the
// per-trial cycle cost drops from 2*C to roughly C/2 before thread
// scaling even starts.
//
// Writes BENCH_batch.json. Each entry's `extra` map carries lanes,
// jobs, trials_per_sec, speedup_vs_scalar, and the batch-phase
// wall-clock split (batch_pack_seconds / batch_step_seconds /
// batch_unpack_seconds, diffed from the span profiler's
// batch/pack|step|unpack phases). The report's `metrics` block carries
// the batch.* family (batch.lanes, batch.trials, batch.speedup_single,
// batch.speedup_aggregate) via BenchReport::user_metrics().
// KOIKA_BENCH_SMOKE=1 shrinks the campaign to a seconds-long run whose
// numbers are not meaningful but whose identity checks still bite.

#include <cstdio>

#include "bench_util.hpp"
#include "fault/fault.hpp"
#include "harness/parallel.hpp"
#include "sim/tiers.hpp"

namespace {

/** Wall time spent inside the batched engine's three phases
 *  (cpu-seconds summed across workers at jobs>1). */
struct BatchPhases
{
    double pack = 0, step = 0, unpack = 0;

    static BatchPhases
    now()
    {
        koika::obs::Profiler& p = koika::obs::Profiler::instance();
        BatchPhases s;
        s.pack = p.phase_total_seconds("batch/pack");
        s.step = p.phase_total_seconds("batch/step");
        s.unpack = p.phase_total_seconds("batch/unpack");
        return s;
    }

    BatchPhases
    operator-(const BatchPhases& base) const
    {
        return {pack - base.pack, step - base.step, unpack - base.unpack};
    }
};

koika::fault::CampaignReport
run_campaign(const koika::Design& d, int batch, int jobs, int count,
             uint64_t cycles, double* wall, BatchPhases* phases)
{
    koika::fault::CampaignConfig config;
    config.seed = 0xBA7C4;
    config.count = count;
    config.cycles = cycles;
    config.batch = batch;
    config.jobs = jobs;
    config.label = "bench_batch";
    // Coverage rides along: the per-trial databases unpacked from the
    // lanes must merge to the same bytes as the scalar run's.
    config.collect_coverage = true;
    auto factory = koika::fault::closed_target([&d] {
        return koika::sim::make_engine(
            d, koika::sim::Tier::kT5StaticAnalysis);
    });
    BatchPhases before = BatchPhases::now();
    bench::Timer timer;
    koika::fault::CampaignReport report =
        koika::fault::run_campaign(d, factory, config);
    *wall = timer.seconds();
    *phases = BatchPhases::now() - before;
    report.engine = "T5";
    return report;
}

void
record(const std::string& label, int count, uint64_t horizon, double wall,
       int lanes, int jobs, double speedup, const BatchPhases& phases,
       const koika::obs::Json& coverage)
{
    koika::obs::SimStats s;
    s.label = label;
    s.engine = "T5";
    s.cycles = (uint64_t)count * horizon * 2; // scalar-equivalent work
    s.wall_seconds = wall;
    s.extra["lanes"] = (double)lanes;
    s.extra["jobs"] = (double)jobs;
    s.extra["trials_per_sec"] = wall > 0 ? (double)count / wall : 0;
    s.extra["speedup_vs_scalar"] = speedup;
    s.extra["batch_pack_seconds"] = phases.pack;
    s.extra["batch_step_seconds"] = phases.step;
    s.extra["batch_unpack_seconds"] = phases.unpack;
    s.coverage = coverage;
    bench::report().add(std::move(s));
}

} // namespace

int
main()
{
    bench::report_init("batch");
    const int jobs = koika::harness::resolve_jobs(0);
    const int lanes = 8;
    const int count = bench::scaled(64, 12);
    const uint64_t horizon = bench::scaled<uint64_t>(2'000, 150);
    const koika::Design& d = bench::design("rv32i");

    std::printf("Batched simulation bench (%d lanes, %d hardware jobs)\n\n",
                lanes, jobs);

    double wall_scalar = 0, wall_batch = 0, wall_both = 0;
    BatchPhases ph_scalar, ph_batch, ph_both;
    koika::fault::CampaignReport scalar = run_campaign(
        d, 1, 1, count, horizon, &wall_scalar, &ph_scalar);
    koika::fault::CampaignReport batched = run_campaign(
        d, lanes, 1, count, horizon, &wall_batch, &ph_batch);
    koika::fault::CampaignReport both = run_campaign(
        d, lanes, jobs, count, horizon, &wall_both, &ph_both);

    // The hard check: batching is a pure throughput transform. Reports
    // and coverage databases must not move by a byte at any lane count
    // or job count.
    std::string want = scalar.to_json().dump(2);
    if (batched.to_json().dump(2) != want)
        koika::panic("batched campaign report differs from scalar run");
    if (both.to_json().dump(2) != want)
        koika::panic(
            "batched+jobs campaign report differs from scalar run");
    std::string want_cov = scalar.coverage.to_json().dump(2);
    if (batched.coverage.to_json().dump(2) != want_cov)
        koika::panic("batched coverage database differs from scalar run");
    if (both.coverage.to_json().dump(2) != want_cov)
        koika::panic(
            "batched+jobs coverage database differs from scalar run");

    double speedup_single =
        wall_batch > 0 ? wall_scalar / wall_batch : 0;
    double speedup_aggregate =
        wall_both > 0 ? wall_scalar / wall_both : 0;

    record("batch/fault-campaign/scalar", count, horizon, wall_scalar, 1,
           1, 1.0, ph_scalar, scalar.coverage.summary_json());
    record("batch/fault-campaign/batched", count, horizon, wall_batch,
           lanes, 1, speedup_single, ph_batch,
           batched.coverage.summary_json());
    record("batch/fault-campaign/batched-jobs", count, horizon, wall_both,
           lanes, jobs, speedup_aggregate, ph_both,
           both.coverage.summary_json());

    koika::obs::MetricsRegistry& m = bench::report().user_metrics();
    m.set_gauge("batch.lanes", (double)lanes);
    m.inc("batch.trials", (uint64_t)count * 3);
    m.set_gauge("batch.speedup_single", speedup_single);
    m.set_gauge("batch.speedup_aggregate", speedup_aggregate);

    std::printf("fault campaign  %4d injections x %llu cycles\n", count,
                (unsigned long long)horizon);
    std::printf("  scalar            %8.3fs  %8.1f trials/s\n",
                wall_scalar,
                wall_scalar > 0 ? count / wall_scalar : 0.0);
    std::printf("  batch=%-2d jobs=1   %8.3fs  %8.1f trials/s  %5.2fx\n",
                lanes, wall_batch,
                wall_batch > 0 ? count / wall_batch : 0.0,
                speedup_single);
    std::printf("  batch=%-2d jobs=%-2d  %8.3fs  %8.1f trials/s  %5.2fx\n",
                lanes, jobs, wall_both,
                wall_both > 0 ? count / wall_both : 0.0,
                speedup_aggregate);
    std::printf("  reports and coverage byte-identical across all runs\n");
    if (!bench::smoke() && speedup_aggregate < 4.0)
        std::printf("  WARNING: aggregate speedup %.2fx below the 4x "
                    "target\n",
                    speedup_aggregate);

    bench::report().write();
    return 0;
}
