// Ablation of the transaction optimizations (§3.2-3.3).
//
// The paper presents its Cuttlesim optimizations as a refinement
// sequence; this bench measures each tier (T0 naive ... T5 static
// analysis) on every benchmark design, all running over the same shared
// expression evaluator so the deltas isolate the transaction machinery:
// log layout, accumulated logs, reset-on-failure, merged data, and the
// analysis-driven specializations. The generated C++ model ("codegen")
// is included as the endpoint the paper ships.
//
// Also writes BENCH_ablation.json with per-rule commit/abort counts and
// abort-reason attribution for every tier row (the interpreters track
// reasons unconditionally).

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "sim/tiers.hpp"

#include "collatz.model.hpp"
#include "fft.model.hpp"
#include "fir.model.hpp"
#include "rv32i.model.hpp"

namespace {

using koika::sim::make_engine;
using koika::sim::Tier;

/** KOIKA_BENCH_SMOKE shrinks batches and the primes workload so the
 *  bench-smoke ctest finishes in seconds (bench_util.hpp). */
const int kBatch = bench::scaled(5'000, 200);
const uint32_t kSmallPrimes = bench::scaled<uint32_t>(100, 20);

void
bm_tier_free(benchmark::State& state, const char* label,
             const char* design_name, Tier tier)
{
    const koika::Design& d = bench::design(design_name);
    auto engine = make_engine(d, tier);
    bench::Timer timer;
    for (auto _ : state)
        for (int i = 0; i < kBatch; ++i)
            engine->cycle();
    state.SetItemsProcessed(state.iterations() * kBatch);
    bench::report().record(label, koika::sim::tier_name(tier), *engine,
                           timer.seconds());
}

void
bm_tier_cpu(benchmark::State& state, const char* label,
            const char* design_name, Tier tier)
{
    const koika::Design& d = bench::design(design_name);
    uint64_t cycles = 0;
    for (auto _ : state) {
        auto engine = make_engine(d, tier);
        bench::Timer timer;
        cycles += bench::run_primes(d, *engine, 1, kSmallPrimes);
        bench::report().record(label, koika::sim::tier_name(tier),
                               *engine, timer.seconds());
    }
    state.SetItemsProcessed((int64_t)cycles);
}

template <typename M>
void
bm_codegen_free(benchmark::State& state, const char* label)
{
    koika::codegen::GeneratedModel<M> gm;
    M& m = gm.impl();
    bench::Timer timer;
    for (auto _ : state)
        for (int i = 0; i < kBatch; ++i)
            m.cycle();
    state.SetItemsProcessed(state.iterations() * kBatch);
    bench::report().record(label, "codegen", gm, timer.seconds());
}

void
register_design(const char* name)
{
    static const Tier kTiers[] = {
        Tier::kT0Naive,       Tier::kT1SplitSets,
        Tier::kT2Accumulate,  Tier::kT3ResetOnFail,
        Tier::kT4MergedData,  Tier::kT5StaticAnalysis};
    bool cpu = std::string(name).rfind("rv32", 0) == 0;
    for (Tier t : kTiers) {
        std::string bname = std::string("ablation/") + name + "/" +
                            koika::sim::tier_name(t);
        if (cpu)
            bench::smoke_iters(benchmark::RegisterBenchmark(
                bname.c_str(), [bname, name, t](benchmark::State& s) {
                    bm_tier_cpu(s, bname.c_str(), name, t);
                }));
        else
            bench::smoke_iters(benchmark::RegisterBenchmark(
                bname.c_str(), [bname, name, t](benchmark::State& s) {
                    bm_tier_free(s, bname.c_str(), name, t);
                }));
    }
}

template <typename M>
void
register_codegen(const char* bench_name)
{
    bench::smoke_iters(benchmark::RegisterBenchmark(
        bench_name, [bench_name](benchmark::State& s) {
            bm_codegen_free<M>(s, bench_name);
        }));
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace cuttlesim::models;
    bench::report_init("ablation");
    register_codegen<collatz>("ablation/collatz/codegen");
    register_codegen<fir>("ablation/fir/codegen");
    register_codegen<fft>("ablation/fft/codegen");
    register_design("collatz");
    register_design("fir");
    register_design("fft");
    register_design("rv32i");
    register_design("msi");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    bench::report().write();
    return 0;
}
