// Ablation of the transaction optimizations (§3.2-3.3).
//
// The paper presents its Cuttlesim optimizations as a refinement
// sequence; this bench measures each tier (T0 naive ... T5 static
// analysis) on every benchmark design, all running over the same shared
// expression evaluator so the deltas isolate the transaction machinery:
// log layout, accumulated logs, reset-on-failure, merged data, and the
// analysis-driven specializations. The generated C++ model ("codegen")
// is included as the endpoint the paper ships.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "sim/tiers.hpp"

#include "collatz.model.hpp"
#include "fft.model.hpp"
#include "fir.model.hpp"
#include "rv32i.model.hpp"

namespace {

using koika::sim::make_engine;
using koika::sim::Tier;

constexpr int kBatch = 5'000;
constexpr uint32_t kSmallPrimes = 100;

void
bm_tier_free(benchmark::State& state, const char* design_name, Tier tier)
{
    const koika::Design& d = bench::design(design_name);
    auto engine = make_engine(d, tier);
    for (auto _ : state)
        for (int i = 0; i < kBatch; ++i)
            engine->cycle();
    state.SetItemsProcessed(state.iterations() * kBatch);
}

void
bm_tier_cpu(benchmark::State& state, const char* design_name, Tier tier)
{
    const koika::Design& d = bench::design(design_name);
    uint64_t cycles = 0;
    for (auto _ : state) {
        auto engine = make_engine(d, tier);
        cycles += bench::run_primes(d, *engine, 1, kSmallPrimes);
    }
    state.SetItemsProcessed((int64_t)cycles);
}

template <typename M>
void
bm_codegen_free(benchmark::State& state)
{
    M m;
    for (auto _ : state)
        for (int i = 0; i < kBatch; ++i)
            m.cycle();
    state.SetItemsProcessed(state.iterations() * kBatch);
}

void
register_design(const char* name)
{
    static const Tier kTiers[] = {
        Tier::kT0Naive,       Tier::kT1SplitSets,
        Tier::kT2Accumulate,  Tier::kT3ResetOnFail,
        Tier::kT4MergedData,  Tier::kT5StaticAnalysis};
    bool cpu = std::string(name).rfind("rv32", 0) == 0;
    for (Tier t : kTiers) {
        std::string bname = std::string("ablation/") + name + "/" +
                            koika::sim::tier_name(t);
        if (cpu)
            benchmark::RegisterBenchmark(
                bname.c_str(),
                [name, t](benchmark::State& s) { bm_tier_cpu(s, name, t); });
        else
            benchmark::RegisterBenchmark(
                bname.c_str(), [name, t](benchmark::State& s) {
                    bm_tier_free(s, name, t);
                });
    }
}

} // namespace

BENCHMARK_TEMPLATE(bm_codegen_free, cuttlesim::models::collatz)
    ->Name("ablation/collatz/codegen");
BENCHMARK_TEMPLATE(bm_codegen_free, cuttlesim::models::fir)
    ->Name("ablation/fir/codegen");
BENCHMARK_TEMPLATE(bm_codegen_free, cuttlesim::models::fft)
    ->Name("ablation/fft/codegen");

int
main(int argc, char** argv)
{
    register_design("collatz");
    register_design("fir");
    register_design("fft");
    register_design("rv32i");
    register_design("msi");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
