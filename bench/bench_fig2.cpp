// Figure 2: performance of models on equivalent Bluespec and Kôika
// designs.
//
// The paper's Q2: is Cuttlesim only winning because Kôika emits naive
// circuits? It compares against Verilog from the commercial Bluespec
// compiler, which simulates ~2x faster. Our stand-in for that better
// circuit compiler is the netlist optimizer (CSE + constant propagation
// + simplification; DESIGN.md substitutions): "verilator-bluespec" rows
// run the optimized netlist, "verilator-koika" the plain lowering, and
// "cuttlesim" the Cuttlesim model.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include "collatz.model.hpp"
#include "collatz_rtl.hpp"
#include "collatz_rtlopt.hpp"
#include "fft.model.hpp"
#include "fft_rtl.hpp"
#include "fft_rtlopt.hpp"
#include "fir.model.hpp"
#include "fir_rtl.hpp"
#include "fir_rtlopt.hpp"
#include "rv32i.model.hpp"
#include "rv32i_rtl.hpp"
#include "rv32i_rtlopt.hpp"

namespace {

constexpr int kCombBatch = 200'000;

template <typename M>
void
bm_comb(benchmark::State& state)
{
    M m;
    for (auto _ : state) {
        for (int i = 0; i < kCombBatch; ++i)
            m.cycle();
        uint64_t sink[8];
        m.get_reg_words(0, sink);
        benchmark::DoNotOptimize(sink[0]);
    }
    state.SetItemsProcessed(state.iterations() * kCombBatch);
}

template <typename M>
void
bm_cpu(benchmark::State& state)
{
    const koika::Design& d = bench::design("rv32i");
    uint64_t cycles = 0;
    for (auto _ : state) {
        koika::codegen::GeneratedModel<M> m;
        cycles += bench::run_primes(d, m, 1);
    }
    state.SetItemsProcessed((int64_t)cycles);
}

} // namespace

BENCHMARK_TEMPLATE(bm_comb, cuttlesim::models::collatz)
    ->Name("fig2/collatz/cuttlesim");
BENCHMARK_TEMPLATE(bm_comb, cuttlesim::models::collatz_rtl)
    ->Name("fig2/collatz/verilator-koika");
BENCHMARK_TEMPLATE(bm_comb, cuttlesim::models::collatz_rtlopt)
    ->Name("fig2/collatz/verilator-bluespec");
BENCHMARK_TEMPLATE(bm_comb, cuttlesim::models::fir)
    ->Name("fig2/fir/cuttlesim");
BENCHMARK_TEMPLATE(bm_comb, cuttlesim::models::fir_rtl)
    ->Name("fig2/fir/verilator-koika");
BENCHMARK_TEMPLATE(bm_comb, cuttlesim::models::fir_rtlopt)
    ->Name("fig2/fir/verilator-bluespec");
BENCHMARK_TEMPLATE(bm_comb, cuttlesim::models::fft)
    ->Name("fig2/fft/cuttlesim");
BENCHMARK_TEMPLATE(bm_comb, cuttlesim::models::fft_rtl)
    ->Name("fig2/fft/verilator-koika");
BENCHMARK_TEMPLATE(bm_comb, cuttlesim::models::fft_rtlopt)
    ->Name("fig2/fft/verilator-bluespec");

BENCHMARK_TEMPLATE(bm_cpu, cuttlesim::models::rv32i)
    ->Name("fig2/rv32i-primes/cuttlesim");
BENCHMARK_TEMPLATE(bm_cpu, cuttlesim::models::rv32i_rtl)
    ->Name("fig2/rv32i-primes/verilator-koika");
BENCHMARK_TEMPLATE(bm_cpu, cuttlesim::models::rv32i_rtlopt)
    ->Name("fig2/rv32i-primes/verilator-bluespec");

BENCHMARK_MAIN();
