// Figure 2: performance of models on equivalent Bluespec and Kôika
// designs.
//
// The paper's Q2: is Cuttlesim only winning because Kôika emits naive
// circuits? It compares against Verilog from the commercial Bluespec
// compiler, which simulates ~2x faster. Our stand-in for that better
// circuit compiler is the netlist optimizer (CSE + constant propagation
// + simplification; DESIGN.md substitutions): "verilator-bluespec" rows
// run the optimized netlist, "verilator-koika" the plain lowering, and
// "cuttlesim" the Cuttlesim model.
//
// Also writes BENCH_fig2.json (see EXPERIMENTS.md "Observability").

#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include "collatz.model.hpp"
#include "collatz_rtl.hpp"
#include "collatz_rtlopt.hpp"
#include "fft.model.hpp"
#include "fft_rtl.hpp"
#include "fft_rtlopt.hpp"
#include "fir.model.hpp"
#include "fir_rtl.hpp"
#include "fir_rtlopt.hpp"
#include "rv32i.model.hpp"
#include "rv32i_rtl.hpp"
#include "rv32i_rtlopt.hpp"

namespace {

/** KOIKA_BENCH_SMOKE shrinks batches and the primes workload so the
 *  bench-smoke ctest finishes in seconds (bench_util.hpp). */
const int kCombBatch = bench::scaled(200'000, 2'000);
const uint32_t kPrimes = bench::scaled<uint32_t>(bench::kPrimesBound, 100);

std::string
engine_of(const std::string& label)
{
    size_t slash = label.rfind('/');
    return slash == std::string::npos ? label : label.substr(slash + 1);
}

template <typename M>
void
bm_comb(benchmark::State& state, const char* label)
{
    koika::codegen::GeneratedModel<M> gm;
    M& m = gm.impl();
    bench::Timer timer;
    for (auto _ : state) {
        for (int i = 0; i < kCombBatch; ++i)
            m.cycle();
        uint64_t sink[8];
        m.get_reg_words(0, sink);
        benchmark::DoNotOptimize(sink[0]);
    }
    double wall = timer.seconds();
    state.SetItemsProcessed(state.iterations() * kCombBatch);
    bench::report().record(label, engine_of(label), gm, wall);
}

template <typename M>
void
bm_cpu(benchmark::State& state, const char* label)
{
    const koika::Design& d = bench::design("rv32i");
    uint64_t cycles = 0;
    for (auto _ : state) {
        koika::codegen::GeneratedModel<M> m;
        bench::Timer timer;
        cycles += bench::run_primes(d, m, 1, kPrimes);
        bench::report().record(label, engine_of(label), m,
                               timer.seconds());
    }
    state.SetItemsProcessed((int64_t)cycles);
}

template <typename M>
void
register_comb(const char* bench_name)
{
    bench::smoke_iters(benchmark::RegisterBenchmark(
        bench_name, [bench_name](benchmark::State& s) {
            bm_comb<M>(s, bench_name);
        }));
}

template <typename M>
void
register_cpu(const char* bench_name)
{
    bench::smoke_iters(benchmark::RegisterBenchmark(
        bench_name, [bench_name](benchmark::State& s) {
            bm_cpu<M>(s, bench_name);
        }));
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace cuttlesim::models;
    bench::report_init("fig2");
    register_comb<collatz>("fig2/collatz/cuttlesim");
    register_comb<collatz_rtl>("fig2/collatz/verilator-koika");
    register_comb<collatz_rtlopt>("fig2/collatz/verilator-bluespec");
    register_comb<fir>("fig2/fir/cuttlesim");
    register_comb<fir_rtl>("fig2/fir/verilator-koika");
    register_comb<fir_rtlopt>("fig2/fir/verilator-bluespec");
    register_comb<fft>("fig2/fft/cuttlesim");
    register_comb<fft_rtl>("fig2/fft/verilator-koika");
    register_comb<fft_rtlopt>("fig2/fft/verilator-bluespec");
    register_cpu<rv32i>("fig2/rv32i-primes/cuttlesim");
    register_cpu<rv32i_rtl>("fig2/rv32i-primes/verilator-koika");
    register_cpu<rv32i_rtlopt>("fig2/rv32i-primes/verilator-bluespec");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    bench::report().write();
    return 0;
}
