// Event-driven simulation baseline (§4.1: "Other simulators that we
// benchmarked against (CVC and Icarus) were orders of magnitude slower
// than Verilator").
//
// Compares, on the same lowered netlists: the compiled cycle-based model
// (Verilator's execution model), the interpreted cycle-based simulator,
// and the event-driven (activity-based) simulator that plays the Icarus
// role. The event simulator also reports its activity factor.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "rtl/cyclesim.hpp"
#include "rtl/eventsim.hpp"
#include "rtl/lower.hpp"

#include "collatz_rtl.hpp"
#include "fir_rtl.hpp"
#include "rv32i_rtl.hpp"

namespace {

constexpr int kBatch = 20'000;

template <typename M>
void
bm_compiled(benchmark::State& state)
{
    M m;
    for (auto _ : state)
        for (int i = 0; i < kBatch; ++i)
            m.cycle();
    state.SetItemsProcessed(state.iterations() * kBatch);
}

void
bm_interpreted_cycle(benchmark::State& state, const char* name)
{
    koika::rtl::CycleSim sim(koika::rtl::lower(bench::design(name)));
    for (auto _ : state)
        for (int i = 0; i < kBatch; ++i)
            sim.cycle();
    state.SetItemsProcessed(state.iterations() * kBatch);
}

void
bm_eventsim(benchmark::State& state, const char* name)
{
    koika::rtl::EventSim sim(koika::rtl::lower(bench::design(name)));
    for (auto _ : state)
        for (int i = 0; i < kBatch; ++i)
            sim.cycle();
    state.SetItemsProcessed(state.iterations() * kBatch);
    state.counters["events_per_cycle"] =
        (double)sim.events_processed() / (double)sim.cycles_run();
}

void
bm_eventsim_cpu(benchmark::State& state)
{
    const koika::Design& d = bench::design("rv32i");
    uint64_t cycles = 0;
    for (auto _ : state) {
        koika::rtl::EventSim sim(koika::rtl::lower(d));
        cycles += bench::run_primes(d, sim, 1, 50);
    }
    state.SetItemsProcessed((int64_t)cycles);
}

void
bm_cyclesim_cpu(benchmark::State& state)
{
    const koika::Design& d = bench::design("rv32i");
    uint64_t cycles = 0;
    for (auto _ : state) {
        koika::rtl::CycleSim sim(koika::rtl::lower(d));
        cycles += bench::run_primes(d, sim, 1, 50);
    }
    state.SetItemsProcessed((int64_t)cycles);
}

void
bm_compiled_cpu(benchmark::State& state)
{
    const koika::Design& d = bench::design("rv32i");
    uint64_t cycles = 0;
    for (auto _ : state) {
        koika::codegen::GeneratedModel<cuttlesim::models::rv32i_rtl> m;
        cycles += bench::run_primes(d, m, 1, 50);
    }
    state.SetItemsProcessed((int64_t)cycles);
}

} // namespace

BENCHMARK_TEMPLATE(bm_compiled, cuttlesim::models::collatz_rtl)
    ->Name("eventsim/collatz/compiled-cycle");
BENCHMARK_CAPTURE(bm_interpreted_cycle, collatz, "collatz")
    ->Name("eventsim/collatz/interpreted-cycle");
BENCHMARK_CAPTURE(bm_eventsim, collatz, "collatz")
    ->Name("eventsim/collatz/event-driven");

BENCHMARK_TEMPLATE(bm_compiled, cuttlesim::models::fir_rtl)
    ->Name("eventsim/fir/compiled-cycle");
BENCHMARK_CAPTURE(bm_interpreted_cycle, fir, "fir")
    ->Name("eventsim/fir/interpreted-cycle");
BENCHMARK_CAPTURE(bm_eventsim, fir, "fir")
    ->Name("eventsim/fir/event-driven");

BENCHMARK(bm_compiled_cpu)->Name("eventsim/rv32i-primes/compiled-cycle");
BENCHMARK(bm_cyclesim_cpu)
    ->Name("eventsim/rv32i-primes/interpreted-cycle");
BENCHMARK(bm_eventsim_cpu)->Name("eventsim/rv32i-primes/event-driven");

BENCHMARK_MAIN();
