// Event-driven simulation baseline (§4.1: "Other simulators that we
// benchmarked against (CVC and Icarus) were orders of magnitude slower
// than Verilator").
//
// Compares, on the same lowered netlists: the compiled cycle-based model
// (Verilator's execution model), the interpreted cycle-based simulator,
// and the event-driven (activity-based) simulator that plays the Icarus
// role. The event simulator also reports its activity factor.
//
// Also writes BENCH_eventsim.json; the RTL engines expose no rule
// structure, so their entries carry cycles/sec (and events_per_cycle for
// the event-driven rows) without per-rule breakdowns.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "rtl/cyclesim.hpp"
#include "rtl/eventsim.hpp"
#include "rtl/lower.hpp"

#include "collatz_rtl.hpp"
#include "fir_rtl.hpp"
#include "rv32i_rtl.hpp"

namespace {

/** KOIKA_BENCH_SMOKE shrinks batches and the primes workload so the
 *  bench-smoke ctest finishes in seconds (bench_util.hpp). */
const int kBatch = bench::scaled(20'000, 1'000);
const uint32_t kPrimes = bench::scaled<uint32_t>(50, 20);

void
record_events(const char* label, const char* engine,
              const koika::rtl::EventSim& sim, double wall)
{
    koika::obs::SimStats s = koika::obs::collect_stats(sim);
    s.label = label;
    s.engine = engine;
    s.wall_seconds = wall;
    s.extra["events_per_cycle"] =
        (double)sim.events_processed() / (double)sim.cycles_run();
    bench::report().add(std::move(s));
}

template <typename M>
void
bm_compiled(benchmark::State& state, const char* label)
{
    koika::codegen::GeneratedModel<M> gm;
    M& m = gm.impl();
    bench::Timer timer;
    for (auto _ : state)
        for (int i = 0; i < kBatch; ++i)
            m.cycle();
    state.SetItemsProcessed(state.iterations() * kBatch);
    bench::report().record(label, "compiled-cycle", gm, timer.seconds());
}

void
bm_interpreted_cycle(benchmark::State& state, const char* label,
                     const char* name)
{
    koika::rtl::CycleSim sim(koika::rtl::lower(bench::design(name)));
    bench::Timer timer;
    for (auto _ : state)
        for (int i = 0; i < kBatch; ++i)
            sim.cycle();
    state.SetItemsProcessed(state.iterations() * kBatch);
    bench::report().record(label, "interpreted-cycle", sim,
                           timer.seconds());
}

void
bm_eventsim(benchmark::State& state, const char* label, const char* name)
{
    koika::rtl::EventSim sim(koika::rtl::lower(bench::design(name)));
    bench::Timer timer;
    for (auto _ : state)
        for (int i = 0; i < kBatch; ++i)
            sim.cycle();
    state.SetItemsProcessed(state.iterations() * kBatch);
    state.counters["events_per_cycle"] =
        (double)sim.events_processed() / (double)sim.cycles_run();
    record_events(label, "event-driven", sim, timer.seconds());
}

void
bm_eventsim_cpu(benchmark::State& state, const char* label)
{
    const koika::Design& d = bench::design("rv32i");
    uint64_t cycles = 0;
    for (auto _ : state) {
        koika::rtl::EventSim sim(koika::rtl::lower(d));
        bench::Timer timer;
        cycles += bench::run_primes(d, sim, 1, kPrimes);
        record_events(label, "event-driven", sim, timer.seconds());
    }
    state.SetItemsProcessed((int64_t)cycles);
}

void
bm_cyclesim_cpu(benchmark::State& state, const char* label)
{
    const koika::Design& d = bench::design("rv32i");
    uint64_t cycles = 0;
    for (auto _ : state) {
        koika::rtl::CycleSim sim(koika::rtl::lower(d));
        bench::Timer timer;
        cycles += bench::run_primes(d, sim, 1, kPrimes);
        bench::report().record(label, "interpreted-cycle", sim,
                               timer.seconds());
    }
    state.SetItemsProcessed((int64_t)cycles);
}

void
bm_compiled_cpu(benchmark::State& state, const char* label)
{
    const koika::Design& d = bench::design("rv32i");
    uint64_t cycles = 0;
    for (auto _ : state) {
        koika::codegen::GeneratedModel<cuttlesim::models::rv32i_rtl> m;
        bench::Timer timer;
        cycles += bench::run_primes(d, m, 1, kPrimes);
        bench::report().record(label, "compiled-cycle", m,
                               timer.seconds());
    }
    state.SetItemsProcessed((int64_t)cycles);
}

void
reg(const char* name, void (*fn)(benchmark::State&, const char*))
{
    bench::smoke_iters(benchmark::RegisterBenchmark(
        name, [name, fn](benchmark::State& s) { fn(s, name); }));
}

void
reg2(const char* name,
     void (*fn)(benchmark::State&, const char*, const char*),
     const char* design)
{
    bench::smoke_iters(benchmark::RegisterBenchmark(
        name, [name, fn, design](benchmark::State& s) {
            fn(s, name, design);
        }));
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace cuttlesim::models;
    bench::report_init("eventsim");
    reg("eventsim/collatz/compiled-cycle", bm_compiled<collatz_rtl>);
    reg2("eventsim/collatz/interpreted-cycle", bm_interpreted_cycle,
         "collatz");
    reg2("eventsim/collatz/event-driven", bm_eventsim, "collatz");
    reg("eventsim/fir/compiled-cycle", bm_compiled<fir_rtl>);
    reg2("eventsim/fir/interpreted-cycle", bm_interpreted_cycle, "fir");
    reg2("eventsim/fir/event-driven", bm_eventsim, "fir");
    reg("eventsim/rv32i-primes/compiled-cycle", bm_compiled_cpu);
    reg("eventsim/rv32i-primes/interpreted-cycle", bm_cyclesim_cpu);
    reg("eventsim/rv32i-primes/event-driven", bm_eventsim_cpu);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    bench::report().write();
    return 0;
}
