/**
 * @file
 * Shared helpers for the benchmark binaries (one binary per paper
 * table/figure; see DESIGN.md's experiment index).
 */
#pragma once

#include <cstdint>
#include <memory>

#include "codegen/generated_model.hpp"
#include "designs/designs.hpp"
#include "designs/rv32.hpp"
#include "riscv/programs.hpp"

namespace bench {

/** Default prime-sieve bound for the CPU workload (paper: "a simple
 *  integer arithmetic benchmark"). */
constexpr uint32_t kPrimesBound = 1000;

/** Cached design handles (building a design is pure setup cost). */
inline const koika::Design&
design(const std::string& name)
{
    static std::map<std::string, std::unique_ptr<koika::Design>> cache;
    auto it = cache.find(name);
    if (it == cache.end())
        it = cache.emplace(name, koika::designs::build_design(name)).first;
    return *it->second;
}

inline const koika::riscv::Program&
primes_program(uint32_t bound = kPrimesBound)
{
    static std::map<uint32_t, koika::riscv::Program> cache;
    auto it = cache.find(bound);
    if (it == cache.end())
        it = cache.emplace(bound, koika::riscv::build_program(
                                      koika::riscv::primes_source(bound)))
                 .first;
    return it->second;
}

/** Run the primes program to completion; returns cycles executed. */
inline uint64_t
run_primes(const koika::Design& d, koika::sim::Model& m, int cores,
           uint32_t bound = kPrimesBound)
{
    koika::designs::Rv32System sys(d, m, primes_program(bound), cores);
    uint64_t cycles = sys.run(100'000'000);
    if (!sys.halted())
        koika::panic("benchmark program did not halt");
    return cycles;
}

} // namespace bench
