/**
 * @file
 * Shared helpers for the benchmark binaries (one binary per paper
 * table/figure; see DESIGN.md's experiment index).
 */
#pragma once

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>

#include "codegen/generated_model.hpp"
#include "designs/designs.hpp"
#include "designs/rv32.hpp"
#include "obs/stats.hpp"
#include "riscv/programs.hpp"

namespace bench {

/** Default prime-sieve bound for the CPU workload (paper: "a simple
 *  integer arithmetic benchmark"). */
constexpr uint32_t kPrimesBound = 1000;

/** Cached design handles (building a design is pure setup cost). */
inline const koika::Design&
design(const std::string& name)
{
    static std::map<std::string, std::unique_ptr<koika::Design>> cache;
    auto it = cache.find(name);
    if (it == cache.end())
        it = cache.emplace(name, koika::designs::build_design(name)).first;
    return *it->second;
}

inline const koika::riscv::Program&
primes_program(uint32_t bound = kPrimesBound)
{
    static std::map<uint32_t, koika::riscv::Program> cache;
    auto it = cache.find(bound);
    if (it == cache.end())
        it = cache.emplace(bound, koika::riscv::build_program(
                                      koika::riscv::primes_source(bound)))
                 .first;
    return it->second;
}

/** Run the primes program to completion; returns cycles executed. */
inline uint64_t
run_primes(const koika::Design& d, koika::sim::Model& m, int cores,
           uint32_t bound = kPrimesBound)
{
    koika::designs::Rv32System sys(d, m, primes_program(bound), cores);
    uint64_t cycles = sys.run(100'000'000);
    if (!sys.halted())
        koika::panic("benchmark program did not halt");
    return cycles;
}

/** Wall-clock stopwatch for hand-timed bench sections. */
class Timer
{
  public:
    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point t0_ =
        std::chrono::steady_clock::now();
};

/**
 * Machine-readable results sink: every bench binary funnels its
 * per-engine SimStats here and writes BENCH_<name>.json next to the
 * text output (the observability layer's bench schema; see
 * EXPERIMENTS.md "Observability"). Entries are keyed by label —
 * re-recording a label (google-benchmark re-runs a function while
 * estimating iteration counts) replaces the earlier entry.
 */
class BenchReport
{
  public:
    explicit BenchReport(std::string name) : name_(std::move(name)) {}

    ~BenchReport()
    {
        if (!written_)
            write();
    }

    void set_name(std::string name) { name_ = std::move(name); }

    void
    add(koika::obs::SimStats stats)
    {
        for (auto& e : entries_) {
            if (e.label == stats.label) {
                e = std::move(stats);
                return;
            }
        }
        entries_.push_back(std::move(stats));
    }

    /**
     * Record a model's activity under `label` (e.g.
     * "fig1/fir/cuttlesim"): per-rule counters via obs::collect_stats
     * plus the timing the caller measured. `cycles` overrides the
     * model's own count when >0 (fresh-model-per-iteration benches
     * time several runs).
     */
    void
    record(const std::string& label, const std::string& engine,
           const koika::sim::Model& model, double wall_seconds,
           uint64_t cycles = 0)
    {
        koika::obs::SimStats s = koika::obs::collect_stats(model);
        s.label = label;
        s.engine = engine;
        s.wall_seconds = wall_seconds;
        if (cycles > 0)
            s.cycles = cycles;
        add(std::move(s));
    }

    void
    write()
    {
        written_ = true;
        koika::obs::Json root = koika::obs::Json::object();
        root["bench"] = name_;
        koika::obs::Json arr = koika::obs::Json::array();
        koika::obs::MetricsRegistry metrics;
        for (const koika::obs::SimStats& s : entries_) {
            arr.push_back(s.to_json());
            s.export_to(metrics, s.label);
        }
        root["entries"] = std::move(arr);
        root["metrics"] = metrics.to_json();
        std::string path = "BENCH_" + name_ + ".json";
        std::ofstream out(path);
        out << root.dump(2) << "\n";
        std::cerr << "wrote " << path << " (" << entries_.size()
                  << " entries)\n";
    }

  private:
    std::string name_;
    std::vector<koika::obs::SimStats> entries_;
    bool written_ = false;
};

/** The binary's report; set up by each bench main via report_init(). */
inline BenchReport&
report()
{
    static BenchReport r("bench");
    return r;
}

inline void
report_init(const std::string& name)
{
    report().set_name(name);
}

} // namespace bench
