/**
 * @file
 * Shared helpers for the benchmark binaries (one binary per paper
 * table/figure; see DESIGN.md's experiment index).
 */
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <thread>

#include <dirent.h>

#include "codegen/compile.hpp"
#include "codegen/generated_model.hpp"
#include "designs/designs.hpp"
#include "designs/rv32.hpp"
#include "obs/prof.hpp"
#include "obs/stats.hpp"
#include "riscv/programs.hpp"

namespace bench {

/**
 * Smoke mode (KOIKA_BENCH_SMOKE=1 in the environment): every bench
 * binary shrinks to a seconds-long run — tiny cycle counts, one
 * google-benchmark iteration per case — while still exercising every
 * engine and writing its BENCH_<name>.json. The `bench-smoke` ctest
 * label runs each binary this way and validates the JSON against
 * tools/check_bench_schema.py, so the reporting pipeline can't rot
 * between full benchmark sessions. Numbers produced under smoke mode
 * are NOT meaningful measurements.
 */
inline bool
smoke()
{
    static const bool on = [] {
        const char* env = std::getenv("KOIKA_BENCH_SMOKE");
        return env != nullptr && *env != '\0' && std::string(env) != "0";
    }();
    return on;
}

/** Pick the full-size or smoke-size value for a bench parameter. */
template <typename T>
inline T
scaled(T full, T smoke_value)
{
    return smoke() ? smoke_value : full;
}

/**
 * Clamp a google-benchmark case to one iteration under smoke mode
 * (version-stable; `--benchmark_min_time=...s` only parses on 1.8+).
 * Templated so non-gbench binaries don't need the benchmark header:
 *   bench::smoke_iters(benchmark::RegisterBenchmark(...));
 */
template <typename B>
inline B*
smoke_iters(B* b)
{
    if (smoke())
        b->Iterations(1);
    return b;
}

/**
 * Compile options for benches that invoke the external toolchain
 * (fig3): the content-addressed compiled-model cache is ON by default,
 * so re-running a benchmark session skips the identical model/driver
 * compiles and goes straight to timing the binaries (fig3 times
 * execution, never compilation, so hits don't distort it).
 * KOIKA_BENCH_NO_CACHE=1 opts out, e.g. when the compiler itself is
 * under study.
 */
inline koika::codegen::CompileOptions
cache_options()
{
    koika::codegen::CompileOptions opts;
    const char* env = std::getenv("KOIKA_BENCH_NO_CACHE");
    bool no_cache = env != nullptr && *env != '\0' && std::string(env) != "0";
    opts.cache.dir =
        no_cache ? "" : koika::codegen::default_cache_dir();
    return opts;
}

/**
 * The `host` block of every BENCH_*.json: which machine and toolchain
 * produced the numbers, so bench trajectories are comparable across
 * checkouts and boxes. Fields: compiler (path + --version banner, the
 * same identity the compiled-model cache keys on), hw_concurrency,
 * cache_dir / cache_enabled / cache_entries (warm-cache state explains
 * why fig3's compile column collapsed), and smoke.
 */
inline koika::obs::Json
host_json()
{
    koika::obs::Json h = koika::obs::Json::object();
    h["compiler"] = koika::codegen::compiler_identity_line();
    h["hw_concurrency"] =
        (uint64_t)std::thread::hardware_concurrency();
    std::string cache_dir = cache_options().cache.dir;
    h["cache_enabled"] = !cache_dir.empty();
    h["cache_dir"] = cache_dir;
    uint64_t entries = 0;
    if (!cache_dir.empty()) {
        if (DIR* dir = opendir(cache_dir.c_str())) {
            while (struct dirent* ent = readdir(dir)) {
                std::string name = ent->d_name;
                if (name.size() >= 5 &&
                    name.compare(name.size() - 4, 4, ".bin") == 0)
                    entries++;
            }
            closedir(dir);
        }
    }
    h["cache_entries"] = entries;
    h["smoke"] = smoke();
    return h;
}

/** Default prime-sieve bound for the CPU workload (paper: "a simple
 *  integer arithmetic benchmark"). */
constexpr uint32_t kPrimesBound = 1000;

/** Cached design handles (building a design is pure setup cost). */
inline const koika::Design&
design(const std::string& name)
{
    static std::map<std::string, std::unique_ptr<koika::Design>> cache;
    auto it = cache.find(name);
    if (it == cache.end())
        it = cache.emplace(name, koika::designs::build_design(name)).first;
    return *it->second;
}

inline const koika::riscv::Program&
primes_program(uint32_t bound = kPrimesBound)
{
    static std::map<uint32_t, koika::riscv::Program> cache;
    auto it = cache.find(bound);
    if (it == cache.end())
        it = cache.emplace(bound, koika::riscv::build_program(
                                      koika::riscv::primes_source(bound)))
                 .first;
    return it->second;
}

/** Run the primes program to completion; returns cycles executed. */
inline uint64_t
run_primes(const koika::Design& d, koika::sim::Model& m, int cores,
           uint32_t bound = kPrimesBound)
{
    koika::designs::Rv32System sys(d, m, primes_program(bound), cores);
    uint64_t cycles = sys.run(100'000'000);
    if (!sys.halted())
        koika::panic("benchmark program did not halt");
    return cycles;
}

/** Wall-clock stopwatch for hand-timed bench sections. */
class Timer
{
  public:
    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point t0_ =
        std::chrono::steady_clock::now();
};

/**
 * Machine-readable results sink: every bench binary funnels its
 * per-engine SimStats here and writes BENCH_<name>.json next to the
 * text output (schema "cuttlesim-bench-v1"; field-by-field reference
 * in EXPERIMENTS.md, validator in tools/check_bench_schema.py).
 * Entries are keyed by label — re-recording a label (google-benchmark
 * re-runs a function while estimating iteration counts) replaces the
 * earlier entry.
 */
class BenchReport
{
  public:
    explicit BenchReport(std::string name) : name_(std::move(name)) {}

    ~BenchReport()
    {
        if (!written_)
            write();
    }

    void set_name(std::string name) { name_ = std::move(name); }

    void
    add(koika::obs::SimStats stats)
    {
        for (auto& e : entries_) {
            if (e.label == stats.label) {
                e = std::move(stats);
                return;
            }
        }
        entries_.push_back(std::move(stats));
    }

    /**
     * Record a model's activity under `label` (e.g.
     * "fig1/fir/cuttlesim"): per-rule counters via obs::collect_stats
     * plus the timing the caller measured. `cycles` overrides the
     * model's own count when >0 (fresh-model-per-iteration benches
     * time several runs).
     */
    void
    record(const std::string& label, const std::string& engine,
           const koika::sim::Model& model, double wall_seconds,
           uint64_t cycles = 0)
    {
        koika::obs::SimStats s = koika::obs::collect_stats(model);
        s.label = label;
        s.engine = engine;
        s.wall_seconds = wall_seconds;
        if (cycles > 0)
            s.cycles = cycles;
        add(std::move(s));
    }

    /**
     * Bench-authored metrics merged into the report's `metrics` block
     * alongside the per-entry exports and `prof/...` — how bench_batch
     * publishes its `batch.*` family (lanes, trials, speedup) into the
     * same registry the campaign metrics live in.
     */
    koika::obs::MetricsRegistry&
    user_metrics()
    {
        return user_metrics_;
    }

    void
    write()
    {
        written_ = true;
        koika::obs::Json root = koika::obs::Json::object();
        root["schema"] = std::string("cuttlesim-bench-v1");
        root["bench"] = name_;
        koika::obs::Json arr = koika::obs::Json::array();
        koika::obs::MetricsRegistry metrics;
        for (const koika::obs::SimStats& s : entries_) {
            arr.push_back(s.to_json());
            s.export_to(metrics, s.label);
        }
        metrics.merge_from(user_metrics_);
        root["entries"] = std::move(arr);
        root["host"] = host_json();
        // Where the bench's own wall time went (cuttlesim-prof-v1,
        // embedded): report_init() arms the span profiler, so every
        // BENCH_*.json carries its host-side phase breakdown, mirrored
        // into the metrics registry under "prof/...".
        koika::obs::Profiler& prof = koika::obs::Profiler::instance();
        if (prof.enabled()) {
            auto rep = prof.report();
            root["prof"] = rep.to_json();
            rep.export_to(metrics, "prof");
        }
        root["metrics"] = metrics.to_json();
        std::string path = "BENCH_" + name_ + ".json";
        std::ofstream out(path);
        out << root.dump(2) << "\n";
        std::cerr << "wrote " << path << " (" << entries_.size()
                  << " entries)\n";
    }

  private:
    std::string name_;
    std::vector<koika::obs::SimStats> entries_;
    koika::obs::MetricsRegistry user_metrics_;
    bool written_ = false;
};

/** The binary's report; set up by each bench main via report_init(). */
inline BenchReport&
report()
{
    static BenchReport r("bench");
    return r;
}

inline void
report_init(const std::string& name)
{
    report().set_name(name);
    // Arm the host span profiler so the report's `prof` block is
    // populated. KOIKA_BENCH_NO_PROF=1 opts out — that is the A/B knob
    // behind the "profiling disabled costs <2%" overhead claim
    // (bench_parallel measures both arms).
    const char* env = std::getenv("KOIKA_BENCH_NO_PROF");
    bool no_prof = env != nullptr && *env != '\0' &&
                   std::string(env) != "0";
    if (!no_prof) {
        koika::obs::Profiler::instance().enable();
        koika::obs::Profiler::instance().set_thread_name("main");
    }
}

} // namespace bench
