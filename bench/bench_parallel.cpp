// Parallel campaign runner: determinism and scaling of the work-sharding
// harness (src/harness/parallel.hpp).
//
// Not a paper figure — this bench guards the tooling the reproduction
// runs on. It runs the same fault-injection campaign serially (jobs=1)
// and sharded across one worker per hardware thread, checks the two
// reports are byte-identical (the determinism contract documented in
// fault::CampaignConfig), and reports the wall-clock speedup. A second
// section shards independent simulation repetitions with
// parallel_for_metrics and checks the merged per-worker metrics match
// the serial tally.
//
// Writes BENCH_parallel.json; the `extra` map carries jobs and speedup,
// and the campaign entries carry the coverage summary block (the merged
// fault-campaign coverage database is held to the same serial-vs-shard
// byte-identity contract as the report). Speedup tracks the machine (on
// a 1-core runner it is ~1.0), so no entry asserts a minimum —
// byte-identity is the hard check here.
//
// Each campaign entry also carries a per-phase wall-clock split
// (trial_setup_seconds / trial_run_seconds / engine_build_seconds,
// diffed from the span profiler around each section), so a jobs=1 vs
// jobs=hw comparison attributes *where* a disappointing speedup went
// instead of just totaling it. KOIKA_BENCH_NO_PROF=1 disables the
// profiler entirely — running the bench both ways is the overhead
// check for the disabled-ProfScope fast path (expected <2%).

#include <cstdio>

#include "bench_util.hpp"
#include "fault/fault.hpp"
#include "harness/parallel.hpp"
#include "sim/tiers.hpp"

namespace {

/** Per-phase totals (seconds) the campaign sections diff around
 *  themselves to attribute their own wall time. */
struct PhaseSplit
{
    double setup = 0, run = 0, build = 0;

    static PhaseSplit
    now()
    {
        koika::obs::Profiler& p = koika::obs::Profiler::instance();
        PhaseSplit s;
        s.setup = p.phase_total_seconds("trial/setup");
        s.run = p.phase_total_seconds("trial/run");
        s.build = p.phase_total_seconds("engine/build");
        return s;
    }

    PhaseSplit
    operator-(const PhaseSplit& base) const
    {
        return {setup - base.setup, run - base.run, build - base.build};
    }
};

koika::fault::CampaignReport
run_campaign(const koika::Design& d, int jobs, int count, uint64_t cycles,
             double* wall, PhaseSplit* phases)
{
    koika::fault::CampaignConfig config;
    config.seed = 0xC0FFEE;
    config.count = count;
    config.cycles = cycles;
    config.jobs = jobs;
    config.label = "bench_parallel";
    // Coverage rides along: the shard-merged database must honor the
    // same byte-identity contract as the report itself.
    config.collect_coverage = true;
    auto factory = koika::fault::closed_target([&d] {
        koika::obs::ProfScope span("engine/build");
        return koika::sim::make_engine(
            d, koika::sim::Tier::kT5StaticAnalysis);
    });
    PhaseSplit before = PhaseSplit::now();
    bench::Timer timer;
    koika::fault::CampaignReport report =
        koika::fault::run_campaign(d, factory, config);
    *wall = timer.seconds();
    *phases = PhaseSplit::now() - before;
    report.engine = "T5";
    return report;
}

void
record(const std::string& label, uint64_t cycles, double wall, int jobs,
       double speedup,
       const koika::obs::Json& coverage = koika::obs::Json(),
       const PhaseSplit* phases = nullptr)
{
    koika::obs::SimStats s;
    s.label = label;
    s.engine = "T5";
    s.cycles = cycles;
    s.wall_seconds = wall;
    s.extra["jobs"] = (double)jobs;
    s.extra["speedup_vs_serial"] = speedup;
    if (phases != nullptr) {
        // CPU-seconds summed across workers, so at jobs=N the phase
        // split can legitimately exceed this entry's wall clock — the
        // ratio between the two IS the parallelism actually achieved.
        s.extra["trial_setup_seconds"] = phases->setup;
        s.extra["trial_run_seconds"] = phases->run;
        s.extra["engine_build_seconds"] = phases->build;
    }
    s.coverage = coverage;
    bench::report().add(std::move(s));
}

} // namespace

int
main()
{
    bench::report_init("parallel");
    const int jobs = koika::harness::resolve_jobs(0);
    const int count = bench::scaled(192, 24);
    const uint64_t horizon = bench::scaled<uint64_t>(2'000, 200);
    const koika::Design& d = bench::design("collatz");

    std::printf("Parallel harness bench (%d hardware jobs)\n\n", jobs);

    // Fault campaign: serial vs sharded must agree byte for byte.
    double wall_serial = 0, wall_parallel = 0;
    PhaseSplit phases_serial, phases_parallel;
    koika::fault::CampaignReport serial =
        run_campaign(d, 1, count, horizon, &wall_serial, &phases_serial);
    koika::fault::CampaignReport parallel = run_campaign(
        d, jobs, count, horizon, &wall_parallel, &phases_parallel);
    if (serial.to_json().dump(2) != parallel.to_json().dump(2))
        koika::panic("sharded campaign report differs from serial run");
    if (serial.coverage.to_json().dump(2) !=
        parallel.coverage.to_json().dump(2))
        koika::panic("sharded coverage database differs from serial run");
    uint64_t campaign_cycles = (uint64_t)count * horizon * 2; // golden+faulted
    double speedup = wall_parallel > 0 ? wall_serial / wall_parallel : 0;
    record("parallel/fault-campaign/jobs=1", campaign_cycles, wall_serial,
           1, 1.0, serial.coverage.summary_json(), &phases_serial);
    record("parallel/fault-campaign/jobs=hw", campaign_cycles,
           wall_parallel, jobs, speedup,
           parallel.coverage.summary_json(), &phases_parallel);
    std::printf("fault campaign  %4d injections  serial %.3fs  "
                "jobs=%d %.3fs  speedup %.2fx  reports byte-identical\n",
                count, wall_serial, jobs, wall_parallel, speedup);
    std::printf("  per-phase     jobs=1  setup %.3fs  run %.3fs  "
                "(engine build %.3fs)\n",
                phases_serial.setup, phases_serial.run,
                phases_serial.build);
    std::printf("  (cpu-seconds) jobs=%d setup %.3fs  run %.3fs  "
                "(engine build %.3fs)\n",
                jobs, phases_parallel.setup, phases_parallel.run,
                phases_parallel.build);

    // Repetition sharding: per-worker metric registries, merged at join.
    const uint64_t reps = bench::scaled<uint64_t>(64, 8);
    auto one_rep = [&](uint64_t rep, koika::obs::MetricsRegistry& reg) {
        auto engine = koika::sim::make_engine(
            d, koika::sim::Tier::kT5StaticAnalysis);
        // Jobs-independent per-rep seed, even though collatz ignores it:
        // the idiom every stochastic repetition shard should follow.
        (void)koika::harness::derive_seed(0xC0FFEE, rep);
        for (uint64_t c = 0; c < horizon; ++c)
            engine->cycle();
        reg.inc("parallel.reps");
        reg.inc("parallel.cycles", horizon);
    };

    koika::obs::MetricsRegistry merged_serial;
    bench::Timer ts;
    koika::harness::parallel_for_metrics(reps, 1, merged_serial, one_rep);
    double rep_serial = ts.seconds();

    koika::obs::MetricsRegistry merged;
    bench::Timer tp;
    koika::harness::parallel_for_metrics(reps, jobs, merged, one_rep);
    double rep_parallel = tp.seconds();

    if (merged.to_json().dump(2) != merged_serial.to_json().dump(2))
        koika::panic("merged worker metrics differ from serial tally");
    double rep_speedup = rep_parallel > 0 ? rep_serial / rep_parallel : 0;
    record("parallel/repetitions/jobs=1", reps * horizon, rep_serial, 1,
           1.0);
    record("parallel/repetitions/jobs=hw", reps * horizon, rep_parallel,
           jobs, rep_speedup);
    std::printf("repetitions     %4llu runs        serial %.3fs  "
                "jobs=%d %.3fs  speedup %.2fx  metrics identical\n",
                (unsigned long long)reps, rep_serial, jobs, rep_parallel,
                rep_speedup);

    bench::report().write();
    return 0;
}
