// Figure 1: performance of Verilator and Cuttlesim models.
//
// For each Table 1 design, compares the Cuttlesim-generated C++ model
// ("cuttlesim") against the compiled cycle-based netlist simulation of
// the Kôika-generated circuit ("verilator-koika", our Verilator stand-in
// — see DESIGN.md substitutions). Combinational designs run free; the
// CPU designs run the primes benchmark to completion. items_per_second
// is simulated cycles per second (the paper's left panel); per-iteration
// time on the CPU rows is the program runtime (the right panel).

#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include "collatz.model.hpp"
#include "collatz_rtl.hpp"
#include "fft.model.hpp"
#include "fft_rtl.hpp"
#include "fir.model.hpp"
#include "fir_rtl.hpp"
#include "rv32e.model.hpp"
#include "rv32e_rtl.hpp"
#include "rv32i.model.hpp"
#include "rv32i_bp.model.hpp"
#include "rv32i_bp_rtl.hpp"
#include "rv32i_mc.model.hpp"
#include "rv32i_mc_rtl.hpp"
#include "rv32i_rtl.hpp"

namespace {

constexpr int kCombBatch = 200'000;

template <typename M>
void
bm_comb(benchmark::State& state)
{
    M m;
    for (auto _ : state) {
        for (int i = 0; i < kCombBatch; ++i)
            m.cycle();
        uint64_t sink[8];
        m.get_reg_words(0, sink);
        benchmark::DoNotOptimize(sink[0]);
    }
    state.SetItemsProcessed(state.iterations() * kCombBatch);
}

template <typename M>
void
bm_cpu(benchmark::State& state, const char* design_name, int cores)
{
    const koika::Design& d = bench::design(design_name);
    uint64_t cycles = 0;
    for (auto _ : state) {
        koika::codegen::GeneratedModel<M> m;
        cycles += bench::run_primes(d, m, cores);
    }
    state.SetItemsProcessed((int64_t)cycles);
    state.counters["cycles_per_run"] =
        (double)cycles / (double)state.iterations();
}

} // namespace

BENCHMARK_TEMPLATE(bm_comb, cuttlesim::models::collatz)
    ->Name("fig1/collatz/cuttlesim");
BENCHMARK_TEMPLATE(bm_comb, cuttlesim::models::collatz_rtl)
    ->Name("fig1/collatz/verilator-koika");
BENCHMARK_TEMPLATE(bm_comb, cuttlesim::models::fir)
    ->Name("fig1/fir/cuttlesim");
BENCHMARK_TEMPLATE(bm_comb, cuttlesim::models::fir_rtl)
    ->Name("fig1/fir/verilator-koika");
BENCHMARK_TEMPLATE(bm_comb, cuttlesim::models::fft)
    ->Name("fig1/fft/cuttlesim");
BENCHMARK_TEMPLATE(bm_comb, cuttlesim::models::fft_rtl)
    ->Name("fig1/fft/verilator-koika");

namespace {

template <typename M>
void
register_cpu(const char* bench_name, const char* design_name, int cores)
{
    benchmark::RegisterBenchmark(
        bench_name, [design_name, cores](benchmark::State& s) {
            bm_cpu<M>(s, design_name, cores);
        });
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace cuttlesim::models;
    register_cpu<rv32e>("fig1/rv32e-primes/cuttlesim", "rv32e", 1);
    register_cpu<rv32e_rtl>("fig1/rv32e-primes/verilator-koika", "rv32e",
                            1);
    register_cpu<rv32i>("fig1/rv32i-primes/cuttlesim", "rv32i", 1);
    register_cpu<rv32i_rtl>("fig1/rv32i-primes/verilator-koika", "rv32i",
                            1);
    register_cpu<rv32i_bp>("fig1/rv32i-bp-primes/cuttlesim", "rv32i-bp",
                           1);
    register_cpu<rv32i_bp_rtl>("fig1/rv32i-bp-primes/verilator-koika",
                               "rv32i-bp", 1);
    register_cpu<rv32i_mc>("fig1/rv32i-mc-primes/cuttlesim", "rv32i-mc",
                           2);
    register_cpu<rv32i_mc_rtl>("fig1/rv32i-mc-primes/verilator-koika",
                               "rv32i-mc", 2);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
