// Figure 1: performance of Verilator and Cuttlesim models.
//
// For each Table 1 design, compares the Cuttlesim-generated C++ model
// ("cuttlesim") against the compiled cycle-based netlist simulation of
// the Kôika-generated circuit ("verilator-koika", our Verilator stand-in
// — see DESIGN.md substitutions). Combinational designs run free; the
// CPU designs run the primes benchmark to completion. items_per_second
// is simulated cycles per second (the paper's left panel); per-iteration
// time on the CPU rows is the program runtime (the right panel).
//
// Besides the google-benchmark console output, each run writes
// BENCH_fig1.json: per-engine cycles/sec plus per-rule commit/abort
// counters collected through the observability layer.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include "collatz.model.hpp"
#include "collatz_rtl.hpp"
#include "fft.model.hpp"
#include "fft_rtl.hpp"
#include "fir.model.hpp"
#include "fir_rtl.hpp"
#include "rv32e.model.hpp"
#include "rv32e_rtl.hpp"
#include "rv32i.model.hpp"
#include "rv32i_bp.model.hpp"
#include "rv32i_bp_rtl.hpp"
#include "rv32i_mc.model.hpp"
#include "rv32i_mc_rtl.hpp"
#include "rv32i_rtl.hpp"

namespace {

/** KOIKA_BENCH_SMOKE shrinks batches and the primes workload so the
 *  bench-smoke ctest finishes in seconds (bench_util.hpp). */
const int kCombBatch = bench::scaled(200'000, 2'000);
const uint32_t kPrimes = bench::scaled<uint32_t>(bench::kPrimesBound, 100);

/** cuttlesim vs verilator-koika from a "fig1/<design>/<engine>" label. */
std::string
engine_of(const std::string& label)
{
    size_t slash = label.rfind('/');
    return slash == std::string::npos ? label : label.substr(slash + 1);
}

template <typename M>
void
bm_comb(benchmark::State& state, const char* label)
{
    // The hot loop runs on the raw model (no virtual dispatch); the
    // adapter is only used afterwards to read the rule counters out.
    koika::codegen::GeneratedModel<M> gm;
    M& m = gm.impl();
    bench::Timer timer;
    for (auto _ : state) {
        for (int i = 0; i < kCombBatch; ++i)
            m.cycle();
        uint64_t sink[8];
        m.get_reg_words(0, sink);
        benchmark::DoNotOptimize(sink[0]);
    }
    double wall = timer.seconds();
    state.SetItemsProcessed(state.iterations() * kCombBatch);
    bench::report().record(label, engine_of(label), gm, wall);
}

template <typename M>
void
bm_cpu(benchmark::State& state, const char* label,
       const char* design_name, int cores)
{
    const koika::Design& d = bench::design(design_name);
    uint64_t cycles = 0;
    double last_wall = 0;
    for (auto _ : state) {
        koika::codegen::GeneratedModel<M> m;
        bench::Timer timer;
        uint64_t run_cycles = bench::run_primes(d, m, cores, kPrimes);
        last_wall = timer.seconds();
        cycles += run_cycles;
        // Record the final iteration: one full program execution.
        bench::report().record(label, engine_of(label), m, last_wall);
    }
    state.SetItemsProcessed((int64_t)cycles);
    state.counters["cycles_per_run"] =
        (double)cycles / (double)state.iterations();
}

template <typename M>
void
register_comb(const char* bench_name)
{
    bench::smoke_iters(benchmark::RegisterBenchmark(
        bench_name, [bench_name](benchmark::State& s) {
            bm_comb<M>(s, bench_name);
        }));
}

template <typename M>
void
register_cpu(const char* bench_name, const char* design_name, int cores)
{
    bench::smoke_iters(benchmark::RegisterBenchmark(
        bench_name,
        [bench_name, design_name, cores](benchmark::State& s) {
            bm_cpu<M>(s, bench_name, design_name, cores);
        }));
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace cuttlesim::models;
    bench::report_init("fig1");
    register_comb<collatz>("fig1/collatz/cuttlesim");
    register_comb<collatz_rtl>("fig1/collatz/verilator-koika");
    register_comb<fir>("fig1/fir/cuttlesim");
    register_comb<fir_rtl>("fig1/fir/verilator-koika");
    register_comb<fft>("fig1/fft/cuttlesim");
    register_comb<fft_rtl>("fig1/fft/verilator-koika");
    register_cpu<rv32e>("fig1/rv32e-primes/cuttlesim", "rv32e", 1);
    register_cpu<rv32e_rtl>("fig1/rv32e-primes/verilator-koika", "rv32e",
                            1);
    register_cpu<rv32i>("fig1/rv32i-primes/cuttlesim", "rv32i", 1);
    register_cpu<rv32i_rtl>("fig1/rv32i-primes/verilator-koika", "rv32i",
                            1);
    register_cpu<rv32i_bp>("fig1/rv32i-bp-primes/cuttlesim", "rv32i-bp",
                           1);
    register_cpu<rv32i_bp_rtl>("fig1/rv32i-bp-primes/verilator-koika",
                               "rv32i-bp", 1);
    register_cpu<rv32i_mc>("fig1/rv32i-mc-primes/cuttlesim", "rv32i-mc",
                           2);
    register_cpu<rv32i_mc_rtl>("fig1/rv32i-mc-primes/verilator-koika",
                               "rv32i-mc", 2);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    bench::report().write();
    return 0;
}
