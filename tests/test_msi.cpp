// MSI cache-coherence system tests (case study 1's design).
//
// A watcher samples committed state every cycle and checks:
//  - the MSI invariant (at most one Modified copy; M excludes any other
//    non-Invalid copy),
//  - linearizable read values (a completed read returns the latest
//    completed write, with same-cycle write races allowed either order),
//  - forward progress of both cores' stimulus.
// The planted bug (silent downgrade drop) must produce exactly the
// deadlock the paper's debugging walkthrough observes: a cache stuck in
// WaitFillResp and the parent stuck in ConfirmDowngrades.

#include <gtest/gtest.h>

#include <map>

#include "designs/msi.hpp"
#include "harness/lockstep.hpp"
#include "interp/reference_model.hpp"
#include "sim/tiers.hpp"

using namespace koika;
using namespace koika::designs;
using koika::sim::make_engine;
using koika::sim::Tier;

namespace {

constexpr uint32_t kMemWords = 8;

struct Checker
{
    const Design& d;
    MsiProbe probe;
    std::map<uint32_t, uint32_t> golden;
    struct Op
    {
        bool valid = false;
        uint32_t addr = 0;
        bool write = false;
        uint32_t wdata = 0;
    };
    Op outstanding[2];
    bool prev_creq[2] = {false, false};
    bool prev_cresp[2] = {false, false};
    uint64_t reads_checked = 0;
    uint64_t writes_seen = 0;

    explicit Checker(const Design& design)
        : d(design), probe(msi_probe(design))
    {
        for (uint32_t a = 0; a < kMemWords; ++a)
            golden[a] = 0x100u + a;
    }

    /** True iff cache c currently holds addr in a non-I state. */
    int
    line_state(sim::Model& m, int c, uint32_t addr) const
    {
        uint32_t idx = addr & 3, tag = (addr >> 2) & 1;
        if (m.get_reg(probe.tag[c][idx]).to_u64() != tag)
            return 0; // wrong tag: effectively Invalid for addr
        return (int)m.get_reg(probe.state[c][idx]).to_u64();
    }

    void
    check_invariants(sim::Model& m) const
    {
        for (uint32_t a = 0; a < kMemWords; ++a) {
            int s0 = line_state(m, 0, a);
            int s1 = line_state(m, 1, a);
            // 2 = M, 1 = S, 0 = I.
            ASSERT_FALSE(s0 == 2 && s1 == 2)
                << "two Modified copies of address " << a;
            ASSERT_FALSE(s0 == 2 && s1 == 1)
                << "M beside S for address " << a;
            ASSERT_FALSE(s1 == 2 && s0 == 1)
                << "M beside S for address " << a;
        }
    }

    void
    observe(sim::Model& m)
    {
        check_invariants(m);
        // Track newly issued requests.
        for (int c = 0; c < 2; ++c) {
            bool creq =
                !m.get_reg(d.reg_index("l1_" + std::to_string(c) +
                                       "_creq_valid"))
                     .is_zero();
            if (creq && !prev_creq[c]) {
                outstanding[c].valid = true;
                outstanding[c].addr =
                    (uint32_t)m.get_reg(probe.creq_addr[c]).to_u64();
                outstanding[c].write =
                    !m.get_reg(probe.creq_write[c]).is_zero();
                outstanding[c].wdata =
                    (uint32_t)m.get_reg(probe.creq_wdata[c]).to_u64();
            }
            prev_creq[c] = creq;
        }
        // Completions: writes first, then reads (either order accepted
        // for same-cycle same-address races).
        std::map<uint32_t, uint32_t> before = golden;
        bool completed[2] = {false, false};
        for (int c = 0; c < 2; ++c) {
            bool cresp = !m.get_reg(probe.cresp_valid[c]).is_zero();
            completed[c] = cresp && !prev_cresp[c];
            prev_cresp[c] = cresp;
        }
        for (int c = 0; c < 2; ++c) {
            if (completed[c] && outstanding[c].valid &&
                outstanding[c].write) {
                golden[outstanding[c].addr] = outstanding[c].wdata;
                ++writes_seen;
                outstanding[c].valid = false;
            }
        }
        for (int c = 0; c < 2; ++c) {
            if (completed[c] && outstanding[c].valid &&
                !outstanding[c].write) {
                uint32_t got =
                    (uint32_t)m.get_reg(probe.cresp_data[c]).to_u64();
                uint32_t a = outstanding[c].addr;
                EXPECT_TRUE(got == golden[a] || got == before[a])
                    << "core " << c << " read of address " << a
                    << " returned " << got << ", expected "
                    << golden[a] << " (or racing " << before[a] << ")";
                ++reads_checked;
                outstanding[c].valid = false;
            }
        }
    }
};

} // namespace

TEST(Msi, CoherentUnderRandomStimulus)
{
    auto d = build_msi({});
    auto e = make_engine(*d, Tier::kT5StaticAnalysis);
    Checker checker(*d);
    for (int c = 0; c < 8000; ++c) {
        e->cycle();
        checker.observe(*e);
        if (::testing::Test::HasFatalFailure())
            FAIL() << "at cycle " << c;
    }
    // Both cores made real progress and reads were actually verified.
    MsiProbe probe = msi_probe(*d);
    EXPECT_GT(e->get_reg(probe.ops[0]).to_u64(), 100u);
    EXPECT_GT(e->get_reg(probe.ops[1]).to_u64(), 100u);
    EXPECT_GT(checker.reads_checked, 50u);
    EXPECT_GT(checker.writes_seen, 50u);
}

TEST(Msi, AllEnginesAgree)
{
    auto d = build_msi({});
    ReferenceModel ref(*d);
    auto t0 = make_engine(*d, Tier::kT0Naive);
    auto t5 = make_engine(*d, Tier::kT5StaticAnalysis);
    std::vector<sim::Model*> models = {&ref, t0.get(), t5.get()};
    auto result = harness::run_lockstep(*d, models, 2000);
    EXPECT_TRUE(result.ok) << result.detail;
}

TEST(Msi, BuggyVersionDeadlocksInConfirmDowngrades)
{
    auto d = build_msi({.bug_silent_drop = true});
    auto e = make_engine(*d, Tier::kT4MergedData);
    MsiProbe probe = msi_probe(*d);
    uint64_t last_ops = 0, stuck_for = 0;
    bool deadlocked = false;
    for (int c = 0; c < 20000; ++c) {
        e->cycle();
        uint64_t ops = e->get_reg(probe.ops[0]).to_u64() +
                       e->get_reg(probe.ops[1]).to_u64();
        stuck_for = ops == last_ops ? stuck_for + 1 : 0;
        last_ops = ops;
        if (stuck_for > 2000) {
            deadlocked = true;
            break;
        }
    }
    ASSERT_TRUE(deadlocked) << "expected the planted bug to deadlock";
    // The paper's observed symptom: parent in ConfirmDowngrades (1) and
    // at least one cache in WaitFillResp (2).
    EXPECT_EQ(e->get_reg(probe.parent_state).to_u64(), 1u);
    bool some_wait =
        e->get_reg(probe.mshr[0]).to_u64() == 2 ||
        e->get_reg(probe.mshr[1]).to_u64() == 2;
    EXPECT_TRUE(some_wait);
}

TEST(Msi, CorrectVersionNeverDeadlocks)
{
    auto d = build_msi({});
    auto e = make_engine(*d, Tier::kT4MergedData);
    MsiProbe probe = msi_probe(*d);
    uint64_t last_ops = 0, max_stall = 0, stuck_for = 0;
    for (int c = 0; c < 20000; ++c) {
        e->cycle();
        uint64_t ops = e->get_reg(probe.ops[0]).to_u64() +
                       e->get_reg(probe.ops[1]).to_u64();
        stuck_for = ops == last_ops ? stuck_for + 1 : 0;
        max_stall = std::max(max_stall, stuck_for);
        last_ops = ops;
    }
    EXPECT_LT(max_stall, 200u);
}
