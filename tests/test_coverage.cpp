// The unified design-coverage subsystem: the statement/branch-point
// classifier, CoverageMap shape/merge/persistence, CoverageCollector on
// every interpreter engine (reference + T0..T5), the LCOV exporter, and
// the summary block — plus the cross-engine agreement property the
// whole design rests on: any two engines produce the same database for
// the same run.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analysis/coverage_points.hpp"
#include "designs/designs.hpp"
#include "interp/reference_model.hpp"
#include "koika/builder.hpp"
#include "koika/typecheck.hpp"
#include "obs/coverage.hpp"
#include "sim/tiers.hpp"

using namespace koika;
using namespace koika::obs;
using analysis::CoverKind;
using sim::Tier;

namespace {

/**
 * A design with one of each statement shape in one rule body:
 *   seq [ let t = x + 1 in write0(x, t);
 *         if (c) { write0(y, 1) } else { write0(y, 2) };
 *         guard(c);
 *         write0(z, 3) ]
 */
struct Shapes
{
    std::unique_ptr<Design> d;
    Action* seq_node;
    Action* let_node;
    Action* if_node;
    Action* guard_node;
    Action* then_node;
    Action* else_node;
    Action* tail_node;

    Shapes()
    {
        d = std::make_unique<Design>("shapes");
        Builder b(*d);
        int c = b.reg("c", 1, 1);
        int x = b.reg("x", 8, 0);
        int y = b.reg("y", 8, 0);
        int z = b.reg("z", 8, 0);
        let_node = b.let("t", b.add(b.read0(x), b.k(8, 1)),
                         b.write0(x, b.var("t")));
        then_node = b.write0(y, b.k(8, 1));
        else_node = b.write0(y, b.k(8, 2));
        if_node = b.if_(b.read0(c), then_node, else_node);
        guard_node = b.guard(b.read0(c));
        tail_node = b.write0(z, b.k(8, 3));
        seq_node = b.seq({let_node, if_node, guard_node, tail_node});
        d->add_rule("r", seq_node);
        d->schedule("r");
        typecheck(*d);
    }
};

CoverageMap
collect(const Design& d, sim::Model& m, int cycles,
        const std::string& engine)
{
    CoverageCollector collector(d, m);
    for (int c = 0; c < cycles; ++c) {
        m.cycle();
        collector.sample();
    }
    return collector.take(engine);
}

} // namespace

TEST(Classifier, MarksStatementShapes)
{
    Shapes s;
    std::vector<CoverKind> kinds = analysis::coverage_points(*s.d);
    ASSERT_EQ(kinds.size(), s.d->num_nodes());
    // seq is glue, never a point; both its statement children are.
    EXPECT_EQ(kinds[(size_t)s.seq_node->id], CoverKind::kNone);
    EXPECT_EQ(kinds[(size_t)s.let_node->id], CoverKind::kStmt);
    EXPECT_EQ(kinds[(size_t)s.tail_node->id], CoverKind::kStmt);
    // if and guard each have two runtime outcomes.
    EXPECT_EQ(kinds[(size_t)s.if_node->id], CoverKind::kBranch);
    EXPECT_EQ(kinds[(size_t)s.guard_node->id], CoverKind::kBranch);
    // Both if arms are statement positions of their own.
    EXPECT_EQ(kinds[(size_t)s.then_node->id], CoverKind::kStmt);
    EXPECT_EQ(kinds[(size_t)s.else_node->id], CoverKind::kStmt);

    // 7 statements: let + its body write, if + both arms, guard, tail.
    analysis::CoverageShape shape = analysis::count_points(kinds);
    EXPECT_EQ(shape.statements, 7u);
    EXPECT_EQ(shape.branches, 2u); // if, guard
}

TEST(Classifier, FunctionBodiesAreNotPoints)
{
    // Every classified point must sit inside a rule body: functions are
    // combinational helpers, so nothing outside the rules is marked.
    auto d = designs::build_design("rv32i");
    std::vector<CoverKind> kinds = analysis::coverage_points(*d);
    analysis::CoverageShape shape = analysis::count_points(kinds);
    EXPECT_GT(shape.statements, 0u);
    uint64_t marked = 0;
    for (CoverKind k : kinds)
        marked += k != CoverKind::kNone;
    EXPECT_EQ(marked, shape.statements);
    // The rv32 design leans heavily on functions: far fewer statement
    // points than AST nodes.
    EXPECT_LT(shape.statements, kinds.size() / 4);
}

TEST(CoverageMap, ForDesignShape)
{
    auto d = designs::build_collatz();
    CoverageMap m = CoverageMap::for_design(*d);
    EXPECT_EQ(m.design, "collatz");
    EXPECT_EQ(m.nodes, d->num_nodes());
    EXPECT_EQ(m.stmt_count.size(), d->num_nodes());
    EXPECT_EQ(m.branch_taken.size(), d->num_nodes());
    EXPECT_EQ(m.branch_not_taken.size(), d->num_nodes());
    ASSERT_EQ(m.rules.size(), d->num_rules());
    ASSERT_EQ(m.regs.size(), d->num_registers());
    uint64_t bits = 0;
    for (const CoverageMap::RegToggles& r : m.regs) {
        EXPECT_EQ(r.rise.size(), r.width);
        EXPECT_EQ(r.fall.size(), r.width);
        bits += r.width;
    }
    EXPECT_EQ(m.toggle_bits, bits);
    EXPECT_EQ(m.cycles, 0u);
    EXPECT_TRUE(m.engines.empty());
}

TEST(CoverageMap, AddEngineSortedUniqueSkipsEmpty)
{
    auto d = designs::build_collatz();
    CoverageMap m = CoverageMap::for_design(*d);
    m.add_engine("zeta");
    m.add_engine("alpha");
    m.add_engine("zeta");
    m.add_engine(""); // unlabeled shard: no entry
    EXPECT_EQ(m.engines, (std::vector<std::string>{"alpha", "zeta"}));
}

TEST(Collector, AllInterpreterEnginesAgree)
{
    // The tentpole property: reference semantics and every tier produce
    // the same database for the same run. take("") keeps the engine set
    // empty so the JSON dumps are directly comparable.
    auto d = designs::build_collatz();
    ReferenceModel ref(*d);
    std::string expected = collect(*d, ref, 200, "").to_json().dump(2);
    for (int t = 0; t < sim::kNumTiers; ++t) {
        auto e = sim::make_engine(*d, (Tier)t);
        CoverageMap m = collect(*d, *e, 200, "");
        EXPECT_EQ(m.to_json().dump(2), expected)
            << "tier " << sim::tier_name((Tier)t)
            << " disagrees with the reference interpreter";
    }
}

TEST(Collector, CountsMatchKnownTrajectory)
{
    // collatz(27): one rule body per cycle; branch outcomes follow the
    // parity of the trajectory, toggles follow the register diffs.
    Shapes s;
    auto e = sim::make_engine(*s.d, Tier::kT5StaticAnalysis);
    CoverageMap m = collect(*s.d, *e, 10, "T5");
    EXPECT_EQ(m.cycles, 10u);
    EXPECT_EQ(m.engines, (std::vector<std::string>{"T5"}));
    // c is constant 1: every cycle takes the if and passes the guard.
    EXPECT_EQ(m.stmt_count[(size_t)s.let_node->id], 10u);
    EXPECT_EQ(m.branch_taken[(size_t)s.if_node->id], 10u);
    EXPECT_EQ(m.branch_not_taken[(size_t)s.if_node->id], 0u);
    EXPECT_EQ(m.stmt_count[(size_t)s.then_node->id], 10u);
    EXPECT_EQ(m.stmt_count[(size_t)s.else_node->id], 0u);
    EXPECT_EQ(m.branch_taken[(size_t)s.guard_node->id], 10u);
    ASSERT_EQ(m.rules.size(), 1u);
    EXPECT_EQ(m.rules[0].commits, 10u);
    EXPECT_EQ(m.rules[0].aborts, 0u);
    // x counts 0,1,2,...,10: bit 0 rises on every even->odd step.
    const CoverageMap::RegToggles* x = nullptr;
    for (const CoverageMap::RegToggles& r : m.regs)
        if (r.name == "x")
            x = &r;
    ASSERT_NE(x, nullptr);
    EXPECT_EQ(x->rise[0], 5u);
    EXPECT_EQ(x->fall[0], 5u);
    EXPECT_EQ(x->rise[7], 0u); // never reaches 128
}

TEST(CoverageMap, MergeIsCommutative)
{
    auto d = designs::build_collatz();
    auto e1 = sim::make_engine(*d, Tier::kT4MergedData);
    auto e2 = sim::make_engine(*d, Tier::kT5StaticAnalysis);
    CoverageMap a = collect(*d, *e1, 137, "T4");
    CoverageMap b = collect(*d, *e2, 263, "T5");

    CoverageMap ab = CoverageMap::for_design(*d);
    ab.merge(a);
    ab.merge(b);
    CoverageMap ba = CoverageMap::for_design(*d);
    ba.merge(b);
    ba.merge(a);
    EXPECT_EQ(ab.to_json().dump(2), ba.to_json().dump(2));
    EXPECT_EQ(ab.cycles, 400u);
    EXPECT_EQ(ab.engines, (std::vector<std::string>{"T4", "T5"}));
    // Element-wise addition, spot-checked on one vector.
    for (size_t i = 0; i < ab.stmt_count.size(); ++i)
        EXPECT_EQ(ab.stmt_count[i], a.stmt_count[i] + b.stmt_count[i]);
}

TEST(CoverageMap, MergeRejectsForeignDatabases)
{
    auto collatz = designs::build_collatz();
    auto fir = designs::build_design("fir");
    CoverageMap a = CoverageMap::for_design(*collatz);
    CoverageMap b = CoverageMap::for_design(*fir);
    EXPECT_THROW(a.merge(b), FatalError);
}

TEST(CoverageMap, JsonRoundTripIsByteIdentical)
{
    auto d = designs::build_design("fir");
    auto e = sim::make_engine(*d, Tier::kT5StaticAnalysis);
    CoverageMap m = collect(*d, *e, 300, "T5-static-analysis");
    std::string once = m.to_json().dump(2);
    CoverageMap back = CoverageMap::from_json(m.to_json());
    EXPECT_EQ(back.to_json().dump(2), once);

    // save/load goes through the same JSON, plus validation.
    std::string path = testing::TempDir() + "cov_roundtrip.json";
    m.save(path);
    CoverageMap loaded = CoverageMap::load(path);
    EXPECT_EQ(loaded.to_json().dump(2), once);
    std::remove(path.c_str());
}

TEST(CoverageMap, LoadRejectsGarbage)
{
    std::string path = testing::TempDir() + "cov_garbage.json";
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("{\"schema\": \"not-a-coverage-db\"}\n", f);
    fclose(f);
    EXPECT_THROW(CoverageMap::load(path), FatalError);
    std::remove(path.c_str());
}

TEST(CoverageMap, SummaryCountsCoveredPoints)
{
    Shapes s;
    auto e = sim::make_engine(*s.d, Tier::kT5StaticAnalysis);
    CoverageMap m = collect(*s.d, *e, 10, "T5");
    CoverageMap::Summary sum = m.summary();
    EXPECT_EQ(sum.stmt_points, 7u);
    // The else arm never executes: 6 of 7 statements covered.
    EXPECT_EQ(sum.stmt_covered, 6u);
    // 2 branches = 4 outcomes; if-not-taken and guard-fail never occur.
    EXPECT_EQ(sum.branch_outcomes, 4u);
    EXPECT_EQ(sum.branch_outcomes_covered, 2u);
    // c never toggles; y rises once (0->1) and never falls; z likewise.
    EXPECT_EQ(sum.toggle_dirs, 2u * (1 + 8 + 8 + 8));
    EXPECT_GT(sum.toggle_dirs_covered, 0u);
    EXPECT_LT(sum.toggle_dirs_covered, sum.toggle_dirs);
    EXPECT_TRUE(sum.uncovered_rules.empty());

    Json j = m.summary_json();
    EXPECT_EQ(j["statements"]["covered"].as_u64(), 6u);
    EXPECT_EQ(j["statements"]["total"].as_u64(), 7u);
}

TEST(CoverageMap, SummaryNamesRulesThatNeverCommit)
{
    // collatz(27) in 5 cycles: reload never fires.
    auto d = designs::build_collatz();
    auto e = sim::make_engine(*d, Tier::kT5StaticAnalysis);
    CoverageMap m = collect(*d, *e, 5, "T5");
    CoverageMap::Summary sum = m.summary();
    ASSERT_EQ(sum.uncovered_rules.size(), 1u);
    EXPECT_EQ(sum.uncovered_rules[0], "reload");
}

TEST(Lcov, ExportsGenhtmlCompatibleRecords)
{
    auto d = designs::build_collatz();
    auto e = sim::make_engine(*d, Tier::kT5StaticAnalysis);
    CoverageMap m = collect(*d, *e, 500, "T5");
    LcovReport lcov = lcov_export(*d, m, "collatz.cov.src");
    EXPECT_NE(lcov.info.find("TN:"), std::string::npos);
    EXPECT_NE(lcov.info.find("SF:collatz.cov.src"), std::string::npos);
    // One FN/FNDA pair per rule, with real commit counts.
    EXPECT_NE(lcov.info.find("FN:"), std::string::npos);
    EXPECT_NE(lcov.info.find("FNDA:"), std::string::npos);
    EXPECT_NE(lcov.info.find("DA:"), std::string::npos);
    EXPECT_NE(lcov.info.find("BRDA:"), std::string::npos);
    EXPECT_NE(lcov.info.find("end_of_record"), std::string::npos);
    // The listing is the pseudo-source the SF: line points at; every DA:
    // line number must exist in it.
    EXPECT_FALSE(lcov.listing.empty());
    size_t lines = 0;
    for (char c : lcov.listing)
        lines += c == '\n';
    size_t pos = 0;
    while ((pos = lcov.info.find("\nDA:", pos)) != std::string::npos) {
        size_t line = std::stoul(lcov.info.substr(pos + 4));
        EXPECT_GE(line, 1u);
        EXPECT_LE(line, lines);
        ++pos;
    }
}

TEST(Collector, FirAndMsiTiersAgreeToo)
{
    // Same agreement property on designs with functions (fir) and heavy
    // inter-rule conflicts (msi) — the masking must hold everywhere.
    for (const char* name : {"fir", "msi"}) {
        auto d = designs::build_design(name);
        auto t0 = sim::make_engine(*d, Tier::kT0Naive);
        std::string expected =
            collect(*d, *t0, 150, "").to_json().dump(2);
        for (int t = 1; t < sim::kNumTiers; ++t) {
            auto e = sim::make_engine(*d, (Tier)t);
            EXPECT_EQ(collect(*d, *e, 150, "").to_json().dump(2),
                      expected)
                << name << " tier " << sim::tier_name((Tier)t);
        }
    }
}
