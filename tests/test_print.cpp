// Pretty-printer tests: stable rendering of the paper's running example
// and the SLOC counter used by Table 1.

#include <gtest/gtest.h>

#include "koika/builder.hpp"
#include "koika/print.hpp"
#include "koika/typecheck.hpp"

using namespace koika;

namespace {

/** The paper's §2.1 two-state machine (simplified combinational fns). */
void
build_stm(Design& d)
{
    Builder b(d);
    auto st_t = make_enum("state", {"A", "B"});
    int st = d.add_register("st", st_t, Bits::of(1, 0));
    int x = b.reg("x", 32, 0);
    int input = b.reg("input", 32, 0);
    int output = b.reg("output", 32, 0);

    FunctionDef* fA = b.fn("fA", {{"x", bits_type(32)}, {"in", bits_type(32)}},
                           bits_type(32), b.add(b.var("x"), b.var("in")));
    FunctionDef* fB = b.fn("fB", {{"x", bits_type(32)}, {"in", bits_type(32)}},
                           bits_type(32), b.xor_(b.var("x"), b.var("in")));

    Action* rlA = b.seq(
        {b.guard(b.eq(b.read0(st), b.enum_k(st_t, "A"))),
         b.write0(st, b.enum_k(st_t, "B")),
         b.let("new_x", b.call(fA, {b.read0(x), b.read0(input)}),
               b.seq({b.write0(x, b.var("new_x")),
                      b.write0(output, b.var("new_x"))}))});
    Action* rlB = b.seq(
        {b.guard(b.eq(b.read0(st), b.enum_k(st_t, "B"))),
         b.write0(st, b.enum_k(st_t, "A")),
         b.let("new_x", b.call(fB, {b.read0(x), b.read0(input)}),
               b.seq({b.write0(x, b.var("new_x")),
                      b.write0(output, b.var("new_x"))}))});
    d.add_rule("rlA", rlA);
    d.add_rule("rlB", rlB);
    d.schedule("rlA");
    d.schedule("rlB");
    typecheck(d);
}

} // namespace

TEST(Print, DesignContainsDeclarations)
{
    Design d("stm");
    build_stm(d);
    std::string text = print_design(d);
    EXPECT_NE(text.find("design stm"), std::string::npos);
    EXPECT_NE(text.find("register st : enum state"), std::string::npos);
    EXPECT_NE(text.find("register x : bits<32>"), std::string::npos);
    EXPECT_NE(text.find("rule rlA"), std::string::npos);
    EXPECT_NE(text.find("schedule: rlA rlB"), std::string::npos);
}

TEST(Print, EnumConstantsPrintSymbolically)
{
    Design d("stm");
    build_stm(d);
    std::string text = print_design(d);
    EXPECT_NE(text.find("state::A"), std::string::npos);
    EXPECT_NE(text.find("state::B"), std::string::npos);
}

TEST(Print, ReadsAndWritesShowPorts)
{
    Design d("stm");
    build_stm(d);
    std::string text = print_design(d);
    EXPECT_NE(text.find("st.rd0()"), std::string::npos);
    EXPECT_NE(text.find("st.wr0("), std::string::npos);
}

TEST(Print, LetRendersBinding)
{
    Design d("stm");
    build_stm(d);
    std::string text = print_design(d);
    EXPECT_NE(text.find("let new_x :="), std::string::npos);
}

TEST(Print, SlocCountsNonBlankLines)
{
    Design d("stm");
    build_stm(d);
    size_t sloc = design_sloc(d);
    // Tiny design: a couple dozen lines, never zero, smaller than the
    // character count.
    EXPECT_GT(sloc, 10u);
    EXPECT_LT(sloc, 60u);
}

TEST(Print, IfWithoutElseOmitsElse)
{
    Design d("t");
    Builder b(d);
    int x = b.reg("x", 8, 0);
    d.add_rule("r", b.when(b.eq(b.read0(x), b.k(8, 0)),
                           b.write0(x, b.k(8, 1))));
    d.schedule("r");
    typecheck(d);
    std::string text = print_design(d);
    EXPECT_EQ(text.find("else"), std::string::npos);
}
