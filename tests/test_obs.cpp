// Observability layer tests: MetricsRegistry JSON round-trips, the
// tier engines agree on abort-reason attribution (guard vs read-port vs
// write-port conflict) for hand-built conflicts, and TraceWriter emits
// valid Chrome trace-event JSON.

#include <gtest/gtest.h>

#include <sstream>

#include "koika/builder.hpp"
#include "koika/typecheck.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"
#include "sim/tiers.hpp"

using namespace koika;
using namespace koika::obs;
using koika::sim::AbortReason;
using koika::sim::make_engine;
using koika::sim::Tier;

namespace {

const Tier kAllTiers[] = {Tier::kT0Naive,       Tier::kT1SplitSets,
                          Tier::kT2Accumulate,  Tier::kT3ResetOnFail,
                          Tier::kT4MergedData,  Tier::kT5StaticAnalysis};

/**
 * Run `d` for `cycles` on every tier and check each rule attributes its
 * aborts to exactly one expected reason — identically across tiers.
 * `expected[r]` is the reason rule r must abort with (or kGuard with
 * zero aborts when the rule never aborts; see `expect_aborts`).
 */
void
expect_reasons_all_tiers(const Design& d, uint64_t cycles,
                         const std::vector<AbortReason>& expected,
                         const std::vector<bool>& expect_aborts)
{
    for (Tier t : kAllTiers) {
        auto e = make_engine(d, t);
        for (uint64_t c = 0; c < cycles; ++c)
            e->cycle();
        SimStats s = collect_stats(*e);
        ASSERT_EQ(s.rules.size(), expected.size()) << sim::tier_name(t);
        for (size_t r = 0; r < expected.size(); ++r) {
            const RuleStats& rs = s.rules[r];
            ASSERT_TRUE(rs.has_reasons)
                << sim::tier_name(t) << " rule " << rs.name;
            EXPECT_EQ(rs.guard_aborts + rs.read_conflict_aborts +
                          rs.write_conflict_aborts,
                      rs.aborts)
                << sim::tier_name(t) << " rule " << rs.name;
            if (!expect_aborts[r]) {
                EXPECT_EQ(rs.aborts, 0u)
                    << sim::tier_name(t) << " rule " << rs.name;
                continue;
            }
            EXPECT_EQ(rs.aborts, cycles)
                << sim::tier_name(t) << " rule " << rs.name;
            EXPECT_EQ(rs.reason(expected[r]), cycles)
                << sim::tier_name(t) << " rule " << rs.name;
        }
    }
}

} // namespace

// -- MetricsRegistry --------------------------------------------------------

TEST(Metrics, CounterGaugeHistogramBasics)
{
    MetricsRegistry m;
    EXPECT_TRUE(m.empty());
    m.inc("a/b");
    m.inc("a/b", 4);
    EXPECT_EQ(m.counter("a/b"), 5u);
    EXPECT_EQ(m.counter("missing"), 0u);
    m.set_gauge("g", 2.5);
    EXPECT_DOUBLE_EQ(m.gauge("g"), 2.5);

    m.define_histogram("h", {1, 2, 4});
    m.observe("h", 0.5); // bucket 0 (<= 1)
    m.observe("h", 2.0); // bucket 1 (<= 2)
    m.observe("h", 9.0); // overflow bucket
    const Histogram* h = m.histogram("h");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->total, 3u);
    ASSERT_EQ(h->counts.size(), 4u);
    EXPECT_EQ(h->counts[0], 1u);
    EXPECT_EQ(h->counts[1], 1u);
    EXPECT_EQ(h->counts[2], 0u);
    EXPECT_EQ(h->counts[3], 1u);
    EXPECT_DOUBLE_EQ(h->mean(), (0.5 + 2.0 + 9.0) / 3.0);
}

TEST(Metrics, JsonRoundTrip)
{
    MetricsRegistry m;
    m.inc("sim/cycles", 123456789);
    m.inc("sim/rule/alpha/commits", 7);
    m.set_gauge("sim/cycles_per_sec", 1.5e6);
    m.set_gauge("negative", -0.25);
    m.define_histogram("lat", {1, 10, 100});
    m.observe("lat", 3);
    m.observe("lat", 250);

    std::string text = m.to_json().dump();
    MetricsRegistry back = MetricsRegistry::from_json(Json::parse(text));
    // Round-trip is exact: dumping again yields the same document.
    EXPECT_EQ(back.to_json().dump(), text);
    EXPECT_EQ(back.counter("sim/cycles"), 123456789u);
    EXPECT_DOUBLE_EQ(back.gauge("sim/cycles_per_sec"), 1.5e6);
    const Histogram* h = back.histogram("lat");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->total, 2u);
    EXPECT_DOUBLE_EQ(h->sum, 253.0);
}

TEST(Metrics, ToTextMentionsEveryMetric)
{
    MetricsRegistry m;
    m.inc("c1", 2);
    m.set_gauge("g1", 3);
    m.observe("h1", 1);
    std::string text = m.to_text();
    EXPECT_NE(text.find("c1"), std::string::npos);
    EXPECT_NE(text.find("g1"), std::string::npos);
    EXPECT_NE(text.find("h1"), std::string::npos);
}

// -- SimStats ---------------------------------------------------------------

TEST(SimStatsTest, JsonRoundTrip)
{
    SimStats s;
    s.label = "test/run";
    s.design = "collatz";
    s.engine = "T5";
    s.cycles = 1000;
    s.wall_seconds = 0.5;
    RuleStats r;
    r.name = "step";
    r.commits = 600;
    r.aborts = 400;
    r.has_reasons = true;
    r.guard_aborts = 100;
    r.read_conflict_aborts = 120;
    r.write_conflict_aborts = 180;
    s.rules.push_back(r);
    s.extra["events_per_cycle"] = 2.25;

    SimStats back = SimStats::from_json(
        Json::parse(s.to_json().dump()));
    EXPECT_EQ(back.to_json().dump(), s.to_json().dump());
    ASSERT_EQ(back.rules.size(), 1u);
    EXPECT_EQ(back.rules[0].reason(AbortReason::kReadConflict), 120u);
    EXPECT_DOUBLE_EQ(back.extra["events_per_cycle"], 2.25);
}

// -- Abort-reason attribution across tiers ----------------------------------

TEST(AbortReasons, GuardFailureIsAttributedToGuard)
{
    // "inc" only runs while x < 3; afterwards its guard aborts forever.
    Design d("t");
    Builder b(d);
    int x = b.reg("x", 8, 0);
    d.add_rule("inc",
               b.seq({b.guard(b.ltu(b.read0(x), b.k(8, 3))),
                      b.write0(x, b.add(b.read0(x), b.k(8, 1)))}));
    d.schedule("inc");
    typecheck(d);
    for (Tier t : kAllTiers) {
        auto e = make_engine(d, t);
        for (int c = 0; c < 10; ++c)
            e->cycle();
        SimStats s = collect_stats(*e);
        ASSERT_EQ(s.rules.size(), 1u);
        EXPECT_EQ(s.rules[0].commits, 3u) << sim::tier_name(t);
        EXPECT_EQ(s.rules[0].aborts, 7u) << sim::tier_name(t);
        EXPECT_EQ(s.rules[0].guard_aborts, 7u) << sim::tier_name(t);
        EXPECT_EQ(s.rules[0].read_conflict_aborts, 0u);
        EXPECT_EQ(s.rules[0].write_conflict_aborts, 0u);
    }
}

TEST(AbortReasons, ExplicitAbortIsAttributedToGuard)
{
    Design d("t");
    Builder b(d);
    b.reg("x", 8, 0);
    d.add_rule("never", b.abort());
    d.schedule("never");
    typecheck(d);
    expect_reasons_all_tiers(d, 25, {AbortReason::kGuard}, {true});
}

TEST(AbortReasons, ReadAfterWriteIsAReadConflict)
{
    // "writer" commits wr0(x) first in the schedule; "reader"'s rd0(x)
    // then conflicts with the committed write every cycle.
    Design d("t");
    Builder b(d);
    int x = b.reg("x", 8, 0);
    int y = b.reg("y", 8, 0);
    d.add_rule("writer", b.write0(x, b.add(b.read0(x), b.k(8, 1))));
    d.add_rule("reader", b.write0(y, b.read0(x)));
    d.schedule("writer");
    d.schedule("reader");
    typecheck(d);
    expect_reasons_all_tiers(
        d, 25, {AbortReason::kGuard, AbortReason::kReadConflict},
        {false, true});
}

TEST(AbortReasons, DoubleWriteIsAWriteConflict)
{
    // Both rules wr0 the same register; the second aborts at the write.
    Design d("t");
    Builder b(d);
    int x = b.reg("x", 8, 0);
    d.add_rule("first", b.write0(x, b.k(8, 1)));
    d.add_rule("second", b.write0(x, b.k(8, 2)));
    d.schedule("first");
    d.schedule("second");
    typecheck(d);
    expect_reasons_all_tiers(
        d, 25, {AbortReason::kGuard, AbortReason::kWriteConflict},
        {false, true});
}

// -- TraceWriter ------------------------------------------------------------

TEST(Trace, OutputIsValidChromeTraceJson)
{
    Design d("t");
    Builder b(d);
    int x = b.reg("x", 8, 0);
    d.add_rule("inc",
               b.seq({b.guard(b.ltu(b.read0(x), b.k(8, 2))),
                      b.write0(x, b.add(b.read0(x), b.k(8, 1)))}));
    d.add_rule("never", b.abort());
    d.schedule("inc");
    d.schedule("never");
    typecheck(d);

    std::ostringstream out;
    {
        auto e = make_engine(d, Tier::kT5StaticAnalysis);
        std::vector<std::string> names;
        for (size_t r = 0; r < e->num_rules(); ++r)
            names.push_back(e->rule_name((int)r));
        TraceWriter tw(out, names, "t");
        for (int c = 0; c < 5; ++c) {
            e->cycle();
            tw.sample(*e);
        }
        EXPECT_EQ(tw.cycles_recorded(), 5u);
        tw.finish();
        tw.finish(); // idempotent
    }

    Json doc = Json::parse(out.str());
    const Json* events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->is_array());
    size_t commits = 0, aborts = 0, meta = 0;
    for (size_t i = 0; i < events->size(); ++i) {
        const Json* ph_field = events->at(i).find("ph");
        ASSERT_NE(ph_field, nullptr);
        const std::string& ph = ph_field->as_string();
        if (ph == "M")
            ++meta;
        else if (ph == "X")
            ++commits;
        else if (ph == "i")
            ++aborts;
    }
    EXPECT_GE(meta, 3u);     // process_name + one thread_name per rule
    EXPECT_EQ(commits, 2u);  // "inc" fires in cycles 1 and 2 only
    EXPECT_EQ(aborts, 8u);   // inc x3 (guard) + never x5
}

TEST(Trace, RecordCycleExplicitPath)
{
    std::ostringstream out;
    TraceWriter tw(out, {"a", "b"});
    tw.record_cycle({true, false}, {nullptr, "guard"});
    tw.record_cycle({false, false}, {nullptr, nullptr});
    tw.finish();
    Json doc = Json::parse(out.str());
    const Json* events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    EXPECT_TRUE(events->is_array());
    EXPECT_EQ(tw.cycles_recorded(), 2u);
}

TEST(Trace, EmptyRuleSetStillEmitsValidJson)
{
    // A design with no rules (or a trace closed before any cycle) must
    // still produce a parseable document with the process metadata.
    std::ostringstream out;
    {
        TraceWriter tw(out, {}, "empty");
        tw.record_cycle({}, {});
        tw.finish();
    }
    Json doc = Json::parse(out.str());
    const Json* events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->is_array());
    bool saw_process = false;
    for (size_t i = 0; i < events->size(); ++i) {
        const Json* ph = events->at(i).find("ph");
        ASSERT_NE(ph, nullptr);
        // Only metadata can exist without rules.
        EXPECT_EQ(ph->as_string(), "M");
        saw_process = true;
    }
    EXPECT_TRUE(saw_process);
}

TEST(Trace, RuleNamesAreJsonEscaped)
{
    // Rule names are user-controlled strings; quotes, backslashes, and
    // control characters must round-trip through the emitted JSON.
    std::ostringstream out;
    {
        TraceWriter tw(out, {"we\"ird\\rule\tname"}, "esc\"proc");
        tw.record_cycle({true}, {nullptr});
        tw.record_cycle({false}, {"gu\"ard"});
        tw.finish();
    }
    Json doc = Json::parse(out.str()); // throws on malformed output
    const Json* events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    bool found_slice = false, found_lane = false, found_reason = false;
    for (size_t i = 0; i < events->size(); ++i) {
        const Json& e = events->at(i);
        const Json* name = e.find("name");
        if (name != nullptr && name->kind() == Json::Kind::kString &&
            name->as_string() == "we\"ird\\rule\tname")
            found_slice = true; // the commit slice carries the raw name
        const Json* args = e.find("args");
        if (args == nullptr)
            continue;
        const Json* aname = args->find("name");
        if (aname != nullptr &&
            aname->as_string() == "rule we\"ird\\rule\tname")
            found_lane = true; // the lane metadata prefixes "rule "
        const Json* reason = args->find("reason");
        if (reason != nullptr && reason->as_string() == "gu\"ard")
            found_reason = true;
    }
    EXPECT_TRUE(found_slice)
        << "escaped rule name did not survive the JSON round-trip";
    EXPECT_TRUE(found_lane);
    EXPECT_TRUE(found_reason);
}

TEST(Trace, StreamsInConstantMemory)
{
    // The writer must stream: events of early cycles land in the output
    // before finish(), and the document only becomes valid at finish().
    std::ostringstream out;
    TraceWriter tw(out, {"r"});
    tw.record_cycle({true}, {nullptr});
    size_t after_one = out.str().size();
    EXPECT_GT(after_one, 0u) << "nothing streamed before finish()";
    for (int c = 0; c < 999; ++c)
        tw.record_cycle({true}, {nullptr});
    // Monotone growth cycle by cycle — the buffered-until-finish
    // anti-pattern would keep the stream empty until the end.
    EXPECT_GT(out.str().size(), after_one);
    tw.finish();
    Json doc = Json::parse(out.str());
    const Json* events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    size_t slices = 0;
    for (size_t i = 0; i < events->size(); ++i) {
        const Json* ph = events->at(i).find("ph");
        if (ph != nullptr && ph->as_string() == "X")
            ++slices;
    }
    EXPECT_EQ(slices, 1000u);
    EXPECT_EQ(tw.cycles_recorded(), 1000u);
}
