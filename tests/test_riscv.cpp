// RISC-V substrate tests: instruction encodings, the assembler (labels,
// pseudo-instructions, addressing forms), the golden ISA simulator
// (per-instruction semantics), and the benchmark programs end to end.

#include <gtest/gtest.h>

#include "base/error.hpp"
#include "riscv/encoding.hpp"
#include "riscv/goldensim.hpp"
#include "riscv/programs.hpp"

using namespace koika::riscv;

// Spot-check encodings against known-good words (cross-checked with the
// RISC-V spec examples).
TEST(Encoding, KnownWords)
{
    EXPECT_EQ(nop(), 0x00000013u);
    EXPECT_EQ(addi(1, 0, 5), 0x00500093u);
    EXPECT_EQ(add(3, 1, 2), 0x002081B3u);
    EXPECT_EQ(sub(3, 1, 2), 0x402081B3u);
    EXPECT_EQ(lui(5, 0x12345), 0x123452B7u);
    EXPECT_EQ(lw(6, 2, 8), 0x00812303u);
    EXPECT_EQ(sw(7, 2, 12), 0x00712623u);
    EXPECT_EQ(ecall(), 0x00000073u);
    EXPECT_EQ(jal(0, 8), 0x0080006Fu);
    EXPECT_EQ(beq(1, 2, -4), 0xFE208EE3u);
    EXPECT_EQ(srai(4, 4, 3), 0x40325213u);
}

TEST(Encoding, BranchImmediateRoundTrip)
{
    // Decode what we encode for a range of offsets.
    for (int32_t off : {-4096, -2048, -4, 4, 16, 2046, 4094}) {
        uint32_t inst = beq(3, 4, off);
        int32_t imm = (int32_t)((((inst >> 8) & 0xF) << 1) |
                                (((inst >> 25) & 0x3F) << 5) |
                                (((inst >> 7) & 1) << 11) |
                                (((inst >> 31) & 1) << 12));
        if (imm & 0x1000)
            imm |= (int32_t)0xFFFFE000;
        EXPECT_EQ(imm, off) << "offset " << off;
    }
}

TEST(Assembler, RegisterNames)
{
    EXPECT_EQ(parse_register("x0"), 0);
    EXPECT_EQ(parse_register("x31"), 31);
    EXPECT_EQ(parse_register("zero"), 0);
    EXPECT_EQ(parse_register("ra"), 1);
    EXPECT_EQ(parse_register("sp"), 2);
    EXPECT_EQ(parse_register("a0"), 10);
    EXPECT_EQ(parse_register("t6"), 31);
    EXPECT_EQ(parse_register("fp"), 8);
    EXPECT_EQ(parse_register("x32"), -1);
    EXPECT_EQ(parse_register("q1"), -1);
}

TEST(Assembler, BasicProgram)
{
    Program p = assemble("addi x1, x0, 5\nadd x2, x1, x1\n");
    ASSERT_EQ(p.words.size(), 2u);
    EXPECT_EQ(p.words[0], addi(1, 0, 5));
    EXPECT_EQ(p.words[1], add(2, 1, 1));
}

TEST(Assembler, LabelsAndBranches)
{
    Program p = assemble("start: addi x1, x1, 1\n"
                         "beq x1, x2, start\n"
                         "j start\n");
    ASSERT_EQ(p.words.size(), 3u);
    EXPECT_EQ(p.labels.at("start"), 0u);
    EXPECT_EQ(p.words[1], beq(1, 2, -4));
    EXPECT_EQ(p.words[2], jal(0, -8));
}

TEST(Assembler, ForwardReferences)
{
    Program p = assemble("j end\nnop\nend: ecall\n");
    EXPECT_EQ(p.labels.at("end"), 8u);
    EXPECT_EQ(p.words[0], jal(0, 8));
}

TEST(Assembler, LoadStoreSyntax)
{
    Program p = assemble("lw a0, 8(sp)\nsw a1, -4(s0)\nlbu t0, 0(a0)\n");
    EXPECT_EQ(p.words[0], lw(10, 2, 8));
    EXPECT_EQ(p.words[1], sw(11, 8, -4));
    EXPECT_EQ(p.words[2], lbu(5, 10, 0));
}

TEST(Assembler, LiExpansion)
{
    Program small = assemble("li a0, 100\n");
    ASSERT_EQ(small.words.size(), 1u);
    EXPECT_EQ(small.words[0], addi(10, 0, 100));

    Program big = assemble("li a0, 0x40000000\n");
    ASSERT_EQ(big.words.size(), 2u);

    // Label addresses account for multi-word expansions.
    Program mixed = assemble("li a0, 0x12345678\nend: nop\n");
    EXPECT_EQ(mixed.labels.at("end"), 8u);
}

TEST(Assembler, LiValuesCorrectViaGoldenSim)
{
    for (int64_t v : {0L, 5L, -5L, 2047L, -2048L, 2048L, 0x12345678L,
                      -0x12345678L, 0x7FFFFFFFL, (int64_t)0xFFFFFFFF}) {
        GoldenSim sim;
        std::string src =
            "li a0, " + std::to_string(v) + "\necall\n";
        sim.load(assemble(src));
        sim.run(10);
        EXPECT_EQ(sim.reg(10), (uint32_t)v) << "li " << v;
    }
}

TEST(Assembler, Pseudos)
{
    Program p = assemble("nop\nmv a0, a1\nnot a2, a3\nneg a4, a5\n"
                         "ret\nbeqz a0, 0\nbnez a1, 0\n");
    EXPECT_EQ(p.words[0], nop());
    EXPECT_EQ(p.words[1], addi(10, 11, 0));
    EXPECT_EQ(p.words[2], xori(12, 13, -1));
    EXPECT_EQ(p.words[3], sub(14, 0, 15));
    EXPECT_EQ(p.words[4], jalr(0, 1, 0));
}

TEST(Assembler, WordDirectiveAndComments)
{
    Program p = assemble("# leading comment\n"
                         ".word 0xDEADBEEF  # trailing comment\n");
    ASSERT_EQ(p.words.size(), 1u);
    EXPECT_EQ(p.words[0], 0xDEADBEEFu);
}

TEST(Assembler, Errors)
{
    EXPECT_THROW(assemble("frobnicate x1, x2\n"), koika::FatalError);
    EXPECT_THROW(assemble("addi x1, x2, 5000\n"), koika::FatalError);
    EXPECT_THROW(assemble("beq x1, x2, nowhere\n"), koika::FatalError);
    EXPECT_THROW(assemble("add x1, q2, x3\n"), koika::FatalError);
}

// ---------------------------------------------------------------------------
// Golden simulator semantics.
// ---------------------------------------------------------------------------

namespace {

GoldenSim
run_asm(const std::string& src, uint64_t max_steps = 100000)
{
    GoldenSim sim;
    sim.load(assemble(src));
    sim.run(max_steps);
    return sim;
}

} // namespace

TEST(GoldenSim, ArithmeticAndLogic)
{
    GoldenSim s = run_asm("li a0, 7\nli a1, -3\n"
                          "add a2, a0, a1\n"  // 4
                          "sub a3, a0, a1\n"  // 10
                          "and a4, a0, a1\n"
                          "or a5, a0, a1\n"
                          "xor a6, a0, a1\n"
                          "ecall\n");
    EXPECT_EQ(s.reg(12), 4u);
    EXPECT_EQ(s.reg(13), 10u);
    EXPECT_EQ(s.reg(14), 7u & (uint32_t)-3);
    EXPECT_EQ(s.reg(15), 7u | (uint32_t)-3);
    EXPECT_EQ(s.reg(16), 7u ^ (uint32_t)-3);
    EXPECT_TRUE(s.halted());
}

TEST(GoldenSim, ShiftsAndCompares)
{
    GoldenSim s = run_asm("li a0, -8\n"
                          "srai a1, a0, 1\n"   // -4
                          "srli a2, a0, 1\n"   // 0x7FFFFFFC
                          "slli a3, a0, 2\n"   // -32
                          "slt a4, a0, zero\n" // 1 (signed)
                          "sltu a5, a0, zero\n" // 0
                          "slti a6, a0, -7\n"  // 1
                          "sltiu a7, zero, 1\n" // 1
                          "ecall\n");
    EXPECT_EQ(s.reg(11), (uint32_t)-4);
    EXPECT_EQ(s.reg(12), 0x7FFFFFFCu);
    EXPECT_EQ(s.reg(13), (uint32_t)-32);
    EXPECT_EQ(s.reg(14), 1u);
    EXPECT_EQ(s.reg(15), 0u);
    EXPECT_EQ(s.reg(16), 1u);
    EXPECT_EQ(s.reg(17), 1u);
}

TEST(GoldenSim, X0IsHardwiredZero)
{
    GoldenSim s = run_asm("addi x0, x0, 5\nadd a0, x0, x0\necall\n");
    EXPECT_EQ(s.reg(0), 0u);
    EXPECT_EQ(s.reg(10), 0u);
}

TEST(GoldenSim, LoadsStoresAllWidths)
{
    GoldenSim s = run_asm("li a0, 0x2000\n"
                          "li a1, 0x80FFEE11\n"
                          "sw a1, 0(a0)\n"
                          "lw a2, 0(a0)\n"
                          "lb a3, 3(a0)\n"   // 0x80 -> sign-extended
                          "lbu a4, 3(a0)\n"  // 0x80
                          "lh a5, 2(a0)\n"   // 0x80FF -> sign-extended
                          "lhu a6, 2(a0)\n"
                          "sb a1, 4(a0)\n"
                          "lbu a7, 4(a0)\n"  // 0x11
                          "sh a1, 8(a0)\n"
                          "lhu s0, 8(a0)\n"  // 0xEE11
                          "ecall\n");
    EXPECT_EQ(s.reg(12), 0x80FFEE11u);
    EXPECT_EQ(s.reg(13), 0xFFFFFF80u);
    EXPECT_EQ(s.reg(14), 0x80u);
    EXPECT_EQ(s.reg(15), 0xFFFF80FFu);
    EXPECT_EQ(s.reg(16), 0x80FFu);
    EXPECT_EQ(s.reg(17), 0x11u);
    EXPECT_EQ(s.reg(8), 0xEE11u);
}

TEST(GoldenSim, JumpsAndLinks)
{
    GoldenSim s = run_asm("call func\n"
                          "j end\n"
                          "func: li a0, 42\n"
                          "ret\n"
                          "end: ecall\n");
    EXPECT_EQ(s.reg(10), 42u);
    EXPECT_EQ(s.reg(1), 4u); // ra = return address after call
}

TEST(GoldenSim, AuipcComputesPcRelative)
{
    GoldenSim s = run_asm("nop\nauipc a0, 1\necall\n");
    EXPECT_EQ(s.reg(10), 4u + 0x1000u);
}

TEST(GoldenSim, BranchLoopSumsCorrectly)
{
    // sum 1..10 = 55
    GoldenSim s = run_asm("li a0, 0\nli t0, 1\nli t1, 11\n"
                          "loop: add a0, a0, t0\n"
                          "addi t0, t0, 1\n"
                          "blt t0, t1, loop\n"
                          "ecall\n");
    EXPECT_EQ(s.reg(10), 55u);
}

TEST(GoldenSim, TohostStream)
{
    GoldenSim s = run_asm("li t0, 0x40000000\n"
                          "li a0, 1\nsw a0, 0(t0)\n"
                          "li a0, 2\nsw a0, 0(t0)\n"
                          "ecall\n");
    ASSERT_EQ(s.tohost().size(), 2u);
    EXPECT_EQ(s.tohost()[0], 1u);
    EXPECT_EQ(s.tohost()[1], 2u);
}

// ---------------------------------------------------------------------------
// Benchmark programs on the golden simulator.
// ---------------------------------------------------------------------------

TEST(Programs, PrimesReportsCorrectCount)
{
    GoldenSim s;
    s.load(build_program(primes_source(1000)));
    s.run(10'000'000);
    ASSERT_TRUE(s.halted());
    ASSERT_EQ(s.tohost().size(), 1u);
    EXPECT_EQ(s.tohost()[0], 168u); // pi(1000) = 168
    EXPECT_EQ(s.tohost()[0], primes_below(1000));
}

TEST(Programs, PrimesSmallBounds)
{
    for (uint32_t bound : {10u, 50u, 200u}) {
        GoldenSim s;
        s.load(build_program(primes_source(bound)));
        s.run(10'000'000);
        ASSERT_TRUE(s.halted()) << bound;
        EXPECT_EQ(s.tohost()[0], primes_below(bound)) << bound;
    }
}

TEST(Programs, NopsRetireAndReport)
{
    GoldenSim s;
    s.load(build_program(nops_source(100)));
    s.run(10000);
    ASSERT_TRUE(s.halted());
    ASSERT_EQ(s.tohost().size(), 1u);
    EXPECT_EQ(s.tohost()[0], 0xD05Eu);
    // 100 nops + li(2) + li(1) + sw + ecall.
    EXPECT_GE(s.instructions_retired(), 104u);
}

TEST(Programs, BranchyAndChainedHalt)
{
    GoldenSim b;
    b.load(build_program(branchy_source(500)));
    b.run(1'000'000);
    ASSERT_TRUE(b.halted());
    EXPECT_EQ(b.tohost().size(), 1u);

    GoldenSim c;
    c.load(build_program(chained_source(100)));
    c.run(1'000'000);
    ASSERT_TRUE(c.halted());
    EXPECT_EQ(c.tohost().size(), 1u);
}
