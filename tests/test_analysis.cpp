// Static-analysis tests (§3.3): register classification, safe-register
// detection, footprints, may-fail flags, early-guard (clean-fail) points,
// and detection of the Goldbergian anti-pattern.

#include <gtest/gtest.h>

#include "analysis/analysis.hpp"
#include "koika/builder.hpp"
#include "koika/typecheck.hpp"

using namespace koika;
using namespace koika::analysis;

namespace {

struct Fixture
{
    Design d{"t"};
    Builder b{d};

    DesignAnalysis
    run()
    {
        typecheck(d);
        return analyze(d);
    }
};

} // namespace

TEST(Analysis, TriLattice)
{
    EXPECT_EQ(tri_join(Tri::kNo, Tri::kNo), Tri::kNo);
    EXPECT_EQ(tri_join(Tri::kYes, Tri::kYes), Tri::kYes);
    EXPECT_EQ(tri_join(Tri::kNo, Tri::kYes), Tri::kMaybe);
    EXPECT_EQ(tri_join(Tri::kMaybe, Tri::kYes), Tri::kMaybe);
    EXPECT_EQ(tri_after(Tri::kNo, Tri::kYes), Tri::kYes);
    EXPECT_EQ(tri_after(Tri::kMaybe, Tri::kNo), Tri::kMaybe);
}

TEST(Analysis, PlainRegisterClassification)
{
    Fixture f;
    int x = f.b.reg("x", 8, 0);
    f.d.add_rule("inc", f.b.write0(x, f.b.add(f.b.read0(x), f.b.k(8, 1))));
    f.d.schedule("inc");
    auto a = f.run();
    EXPECT_EQ(a.reg_class[(size_t)x], RegClass::kPlain);
}

TEST(Analysis, WireClassification)
{
    // w is written at port 0 by a producer and read at port 1 by a
    // consumer scheduled after it: a wire.
    Fixture f;
    int w = f.b.reg("w", 8, 0);
    int out = f.b.reg("out", 8, 0);
    f.d.add_rule("produce", f.b.write0(w, f.b.k(8, 7)));
    f.d.add_rule("consume", f.b.write0(out, f.b.read1(w)));
    f.d.schedule("produce");
    f.d.schedule("consume");
    auto a = f.run();
    EXPECT_EQ(a.reg_class[(size_t)w], RegClass::kWire);
    EXPECT_EQ(a.reg_class[(size_t)out], RegClass::kPlain);
}

TEST(Analysis, EhrClassification)
{
    Fixture f;
    int x = f.b.reg("x", 8, 0);
    f.d.add_rule("r", f.b.seq({f.b.write0(x, f.b.k(8, 1)),
                               f.b.write1(x, f.b.read1(x))}));
    f.d.schedule("r");
    auto a = f.run();
    EXPECT_EQ(a.reg_class[(size_t)x], RegClass::kEhr);
}

TEST(Analysis, UnusedRegister)
{
    Fixture f;
    int dead = f.b.reg("dead", 8, 0);
    int x = f.b.reg("x", 8, 0);
    f.d.add_rule("inc", f.b.write0(x, f.b.add(f.b.read0(x), f.b.k(8, 1))));
    f.d.schedule("inc");
    auto a = f.run();
    EXPECT_EQ(a.reg_class[(size_t)dead], RegClass::kUnused);
}

TEST(Analysis, SafeWhenOrderedCorrectly)
{
    // Producer wr0 before consumer rd1: neither op can fail.
    Fixture f;
    int w = f.b.reg("w", 8, 0);
    int out = f.b.reg("out", 8, 0);
    f.d.add_rule("produce", f.b.write0(w, f.b.k(8, 7)));
    f.d.add_rule("consume", f.b.write0(out, f.b.read1(w)));
    f.d.schedule("produce");
    f.d.schedule("consume");
    auto a = f.run();
    EXPECT_TRUE(a.reg_safe[(size_t)w]);
    EXPECT_TRUE(a.reg_safe[(size_t)out]);
    EXPECT_EQ(a.num_safe_registers(), 2u);
}

TEST(Analysis, UnsafeWhenWireOrderReversed)
{
    // Consumer rd1 scheduled before producer wr0: the wr0 may fail.
    Fixture f;
    int w = f.b.reg("w", 8, 0);
    int out = f.b.reg("out", 8, 0);
    f.d.add_rule("consume", f.b.write0(out, f.b.read1(w)));
    f.d.add_rule("produce", f.b.write0(w, f.b.k(8, 7)));
    f.d.schedule("consume");
    f.d.schedule("produce");
    auto a = f.run();
    EXPECT_FALSE(a.reg_safe[(size_t)w]);
    EXPECT_TRUE(a.rules[1].reg_may_fail[(size_t)w]);
    EXPECT_TRUE(a.rules[1].may_fail);
}

TEST(Analysis, TwoWr0sInDifferentRulesUnsafe)
{
    Fixture f;
    int x = f.b.reg("x", 8, 0);
    f.d.add_rule("w1", f.b.write0(x, f.b.k(8, 1)));
    f.d.add_rule("w2", f.b.write0(x, f.b.k(8, 2)));
    f.d.schedule("w1");
    f.d.schedule("w2");
    auto a = f.run();
    EXPECT_FALSE(a.reg_safe[(size_t)x]);
    // The first write cannot fail; the second may.
    EXPECT_FALSE(a.rules[0].may_fail);
    EXPECT_TRUE(a.rules[1].may_fail);
}

TEST(Analysis, GuardMakesRuleMayFail)
{
    Fixture f;
    int x = f.b.reg("x", 8, 0);
    f.d.add_rule("r", f.b.seq({f.b.guard(f.b.eq(f.b.read0(x), f.b.k(8, 0))),
                               f.b.write0(x, f.b.k(8, 1))}));
    f.d.schedule("r");
    auto a = f.run();
    EXPECT_TRUE(a.rules[0].may_fail);
    // But x itself is conflict-free.
    EXPECT_TRUE(a.reg_safe[(size_t)x]);
}

TEST(Analysis, ConstantTrueGuardCannotFail)
{
    Fixture f;
    int x = f.b.reg("x", 8, 0);
    f.d.add_rule("r", f.b.seq({f.b.guard(f.b.k(1, 1)),
                               f.b.write0(x, f.b.k(8, 1))}));
    f.d.schedule("r");
    auto a = f.run();
    EXPECT_FALSE(a.rules[0].may_fail);
}

TEST(Analysis, EarlyGuardIsCleanLaterGuardIsNot)
{
    Fixture f;
    int x = f.b.reg("x", 8, 0);
    int y = f.b.reg("y", 8, 0);
    Action* g1 = f.b.guard(f.b.eq(f.b.read0(x), f.b.k(8, 0)));
    Action* w = f.b.write0(y, f.b.k(8, 1));
    Action* g2 = f.b.guard(f.b.eq(f.b.read0(x), f.b.k(8, 0)));
    int g1_id = g1->id, g2_id = g2->id;
    f.d.add_rule("r", f.b.seq({g1, w, g2}));
    f.d.schedule("r");
    auto a = f.run();
    EXPECT_TRUE(a.ops[(size_t)g1_id].clean_at_fail);
    EXPECT_FALSE(a.ops[(size_t)g2_id].clean_at_fail);
}

TEST(Analysis, FootprintsListWritesAndTrackedReads)
{
    Fixture f;
    int x = f.b.reg("x", 8, 0);
    int y = f.b.reg("y", 8, 0);
    int z = f.b.reg("z", 8, 0);
    f.d.add_rule("w", f.b.write0(x, f.b.k(8, 1)));
    f.d.add_rule("r", f.b.write0(y, f.b.read1(x)));
    f.d.schedule("w");
    f.d.schedule("r");
    (void)z;
    auto a = f.run();
    EXPECT_EQ(a.rules[0].footprint_writes, (std::vector<int>{x}));
    EXPECT_EQ(a.rules[0].footprint_tracked, (std::vector<int>{x}));
    EXPECT_EQ(a.rules[1].footprint_writes, (std::vector<int>{y}));
    // r reads x at port 1 and writes y.
    EXPECT_EQ(a.rules[1].footprint_tracked, (std::vector<int>{x, y}));
}

TEST(Analysis, ConditionalWriteIsMaybe)
{
    Fixture f;
    int x = f.b.reg("x", 8, 0);
    int c = f.b.reg("c", 1, 0);
    f.d.add_rule("r", f.b.when(f.b.read0(c), f.b.write0(x, f.b.k(8, 1))));
    f.d.schedule("r");
    auto a = f.run();
    EXPECT_EQ(a.rules[0].log[(size_t)x].wr0, Tri::kMaybe);
    EXPECT_EQ(a.rules[0].log[(size_t)c].rd0, Tri::kYes);
    // Still part of the write footprint.
    EXPECT_EQ(a.rules[0].footprint_writes, (std::vector<int>{x}));
}

TEST(Analysis, ConstantConditionBranchPruned)
{
    Fixture f;
    int x = f.b.reg("x", 8, 0);
    int y = f.b.reg("y", 8, 0);
    f.d.add_rule("r", f.b.if_(f.b.k(1, 0), f.b.write0(x, f.b.k(8, 1)),
                              f.b.write0(y, f.b.k(8, 1))));
    f.d.schedule("r");
    auto a = f.run();
    EXPECT_EQ(a.rules[0].log[(size_t)x].wr0, Tri::kNo);
    EXPECT_EQ(a.rules[0].log[(size_t)y].wr0, Tri::kYes);
}

TEST(Analysis, BothBranchesWriteJoinsToMaybe)
{
    Fixture f;
    int x = f.b.reg("x", 8, 0);
    int c = f.b.reg("c", 1, 0);
    // Both branches write x, so overall the write happens iff the rule
    // runs; our join is conservative and reports Maybe.
    f.d.add_rule("r", f.b.if_(f.b.read0(c), f.b.write0(x, f.b.k(8, 1)),
                              f.b.write0(x, f.b.k(8, 2))));
    f.d.schedule("r");
    auto a = f.run();
    EXPECT_TRUE(tri_possible(a.rules[0].log[(size_t)x].wr0));
}

TEST(Analysis, GoldbergianPatternDetected)
{
    Fixture f;
    int r = f.b.reg("r", 8, 0);
    int out = f.b.reg("out", 8, 0);
    f.d.add_rule("rl", f.b.seq({f.b.write1(r, f.b.k(8, 2)),
                                f.b.write0(out, f.b.read1(r))}));
    f.d.schedule("rl");
    auto a = f.run();
    EXPECT_TRUE(a.goldbergian);
}

TEST(Analysis, NormalDesignNotGoldbergian)
{
    Fixture f;
    int r = f.b.reg("r", 8, 0);
    f.d.add_rule("rl", f.b.seq({f.b.write0(r, f.b.read1(r)),
                                f.b.write1(r, f.b.k(8, 2))}));
    f.d.schedule("rl");
    auto a = f.run();
    EXPECT_FALSE(a.goldbergian);
}

TEST(Analysis, Rd0AfterEarlierWriteMayFail)
{
    Fixture f;
    int x = f.b.reg("x", 8, 0);
    int y = f.b.reg("y", 8, 0);
    f.d.add_rule("w", f.b.write0(x, f.b.k(8, 1)));
    Action* rd = f.b.read0(x);
    int rd_id = rd->id;
    f.d.add_rule("r", f.b.write0(y, rd));
    f.d.schedule("w");
    f.d.schedule("r");
    auto a = f.run();
    EXPECT_TRUE(a.ops[(size_t)rd_id].may_fail);
    EXPECT_FALSE(a.reg_safe[(size_t)x]);
}

TEST(Analysis, CycleLogCombinesRules)
{
    Fixture f;
    int x = f.b.reg("x", 8, 0);
    int y = f.b.reg("y", 8, 0);
    f.d.add_rule("a", f.b.write0(x, f.b.k(8, 1)));
    f.d.add_rule("b", f.b.write1(y, f.b.k(8, 1)));
    f.d.schedule("a");
    f.d.schedule("b");
    auto a = f.run();
    // Rule "a" cannot fail, so its write is a definite Yes in the cycle
    // log; same for rule "b".
    EXPECT_EQ(a.cycle_log[(size_t)x].wr0, Tri::kYes);
    EXPECT_EQ(a.cycle_log[(size_t)y].wr1, Tri::kYes);
}

TEST(Analysis, MayFailingRuleContributesMaybe)
{
    Fixture f;
    int x = f.b.reg("x", 8, 0);
    int c = f.b.reg("c", 1, 0);
    f.d.add_rule("r", f.b.seq({f.b.guard(f.b.read0(c)),
                               f.b.write0(x, f.b.k(8, 1))}));
    f.d.schedule("r");
    auto a = f.run();
    EXPECT_EQ(a.cycle_log[(size_t)x].wr0, Tri::kMaybe);
}

TEST(Analysis, UnscheduledRuleGetsSummary)
{
    Fixture f;
    int x = f.b.reg("x", 8, 0);
    f.d.add_rule("ghost", f.b.write0(x, f.b.k(8, 1)));
    auto a = f.run();
    EXPECT_EQ(a.rules[0].footprint_writes, (std::vector<int>{x}));
    // Unscheduled rules do not affect classification.
    EXPECT_EQ(a.reg_class[(size_t)x], RegClass::kUnused);
}
