// Mid-cycle stepping tests (§3.2 "mid-cycle snapshots", case study 1's
// "stopping halfway through the execution of a cycle").
//
// A manually stepped cycle must be observationally identical to cycle(),
// and the intermediate view between rules must show exactly the writes
// committed so far in the open cycle.

#include <gtest/gtest.h>

#include "designs/designs.hpp"
#include "koika/builder.hpp"
#include "koika/typecheck.hpp"
#include "sim/tiers.hpp"

using namespace koika;
using namespace koika::sim;

namespace {

const Tier kAllTiers[] = {Tier::kT0Naive,       Tier::kT1SplitSets,
                          Tier::kT2Accumulate,  Tier::kT3ResetOnFail,
                          Tier::kT4MergedData,  Tier::kT5StaticAnalysis};

} // namespace

class Stepping : public ::testing::TestWithParam<Tier>
{
};

TEST_P(Stepping, SteppedCycleEqualsAtomicCycle)
{
    auto d = designs::build_design("collatz");
    auto atomic = make_engine(*d, GetParam());
    auto stepped = make_engine(*d, GetParam());
    for (int c = 0; c < 200; ++c) {
        atomic->cycle();
        stepped->begin_step_cycle();
        for (int r : d->schedule_order())
            stepped->step_rule(r);
        stepped->end_step_cycle();
        for (size_t r = 0; r < d->num_registers(); ++r)
            ASSERT_EQ(stepped->get_reg((int)r), atomic->get_reg((int)r))
                << "cycle " << c << " reg " << d->reg((int)r).name;
    }
    EXPECT_EQ(stepped->cycles_run(), atomic->cycles_run());
}

TEST_P(Stepping, MidCycleSnapshotShowsPartialCommits)
{
    // Two rules writing two registers: between them, only the first
    // write is visible in the intermediate view.
    Design d("t");
    Builder b(d);
    int x = b.reg("x", 8, 1);
    int y = b.reg("y", 8, 2);
    d.add_rule("wx", b.write0(x, b.k(8, 10)));
    d.add_rule("wy", b.write0(y, b.k(8, 20)));
    d.schedule("wx");
    d.schedule("wy");
    typecheck(d);

    auto e = make_engine(d, GetParam());
    e->begin_step_cycle();
    EXPECT_EQ(e->get_mid_reg(x).to_u64(), 1u);
    EXPECT_TRUE(e->step_rule(0));
    // Halfway through the cycle: x already updated, y not yet.
    EXPECT_EQ(e->get_mid_reg(x).to_u64(), 10u);
    EXPECT_EQ(e->get_mid_reg(y).to_u64(), 2u);
    EXPECT_TRUE(e->step_rule(1));
    EXPECT_EQ(e->get_mid_reg(y).to_u64(), 20u);
    e->end_step_cycle();
    EXPECT_EQ(e->get_reg(x).to_u64(), 10u);
    EXPECT_EQ(e->get_reg(y).to_u64(), 20u);
}

TEST_P(Stepping, AbortedRuleLeavesIntermediateUntouched)
{
    Design d("t");
    Builder b(d);
    int x = b.reg("x", 8, 5);
    d.add_rule("doomed",
               b.seq({b.write0(x, b.k(8, 99)), b.abort()}));
    d.schedule("doomed");
    typecheck(d);
    auto e = make_engine(d, GetParam());
    e->begin_step_cycle();
    EXPECT_FALSE(e->step_rule(0));
    EXPECT_EQ(e->get_mid_reg(x).to_u64(), 5u);
    e->end_step_cycle();
    EXPECT_EQ(e->get_reg(x).to_u64(), 5u);
}

INSTANTIATE_TEST_SUITE_P(
    AllTiers, Stepping, ::testing::ValuesIn(kAllTiers),
    [](const ::testing::TestParamInfo<Tier>& info) {
        std::string n = tier_name(info.param);
        for (char& c : n)
            if (c == '-')
                c = '_';
        return n;
    });
