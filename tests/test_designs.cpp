// Design-suite tests: functional correctness of every Table 1 design.
//
// The RISC-V cores are validated against the golden ISA simulator
// (tohost output, architectural registers, retired-instruction counts);
// fir against a C++ reference filter; collatz against the known
// trajectory of 27; and every design is checked for cross-engine
// cycle-accuracy (Cuttlesim tier vs RTL netlist) under live peripherals.

#include <gtest/gtest.h>

#include "designs/designs.hpp"
#include "designs/rv32.hpp"
#include "harness/memory.hpp"
#include "interp/reference_model.hpp"
#include "riscv/goldensim.hpp"
#include "riscv/programs.hpp"
#include "rtl/cyclesim.hpp"
#include "rtl/lower.hpp"
#include "sim/tiers.hpp"

using namespace koika;
using namespace koika::designs;
using namespace koika::riscv;
using koika::sim::make_engine;
using koika::sim::Tier;

TEST(Registry, AllDesignsBuildAndTypecheck)
{
    for (const std::string& name : design_names()) {
        auto d = build_design(name);
        EXPECT_TRUE(d->typechecked) << name;
        EXPECT_GT(d->num_rules(), 0u) << name;
        EXPECT_EQ(d->name(), name);
    }
    EXPECT_THROW(build_design("nonesuch"), FatalError);
}

TEST(Collatz, TrajectoryOf27)
{
    // 27 reaches 1 after exactly 111 Collatz steps.
    auto d = build_collatz();
    auto e = make_engine(*d, Tier::kT5StaticAnalysis);
    int x = d->reg_index("x");
    int steps = d->reg_index("steps");
    for (int i = 0; i < 111; ++i)
        e->cycle();
    EXPECT_EQ(e->get_reg(x).to_u64(), 1u);
    EXPECT_EQ(e->get_reg(steps).to_u64(), 111u);
    // The next cycle reloads from the LFSR.
    e->cycle();
    EXPECT_NE(e->get_reg(x).to_u64(), 1u);
    EXPECT_EQ(e->get_reg(d->reg_index("sequences")).to_u64(), 1u);
}

TEST(Collatz, ExactlyOneRuleFiresPerCycle)
{
    auto d = build_collatz();
    auto e = make_engine(*d, Tier::kT3ResetOnFail);
    for (int i = 0; i < 50; ++i) {
        e->cycle();
        int fired = 0;
        for (bool f : e->fired())
            fired += f;
        EXPECT_EQ(fired, 1) << "cycle " << i;
    }
}

TEST(Fir, MatchesReferenceConvolution)
{
    const int taps = 8;
    auto d = build_fir(taps);
    auto e = make_engine(*d, Tier::kT5StaticAnalysis);

    // Reference model: same LFSR, same coefficients.
    uint32_t lfsr = 0xBEEF;
    auto lfsr_next = [](uint32_t v) {
        uint32_t bit =
            ((v >> 0) ^ (v >> 2) ^ (v >> 3) ^ (v >> 5)) & 1;
        return ((v >> 1) | (bit << 15)) & 0xFFFF;
    };
    std::vector<uint32_t> coeffs;
    for (int i = 0; i < taps; ++i)
        coeffs.push_back((uint32_t)(std::min(i, taps - 1 - i) + 1) * 3);
    std::vector<uint32_t> delay(taps - 1, 0);

    int y = d->reg_index("y");
    for (int cycle = 0; cycle < 200; ++cycle) {
        uint32_t in = lfsr;
        uint32_t expect = coeffs[0] * in;
        for (int i = 1; i < taps; ++i)
            expect += coeffs[(size_t)i] * delay[(size_t)i - 1];
        e->cycle();
        EXPECT_EQ((uint32_t)e->get_reg(y).to_u64(), expect)
            << "cycle " << cycle;
        for (int i = taps - 2; i >= 1; --i)
            delay[(size_t)i] = delay[(size_t)i - 1];
        delay[0] = in;
        lfsr = lfsr_next(lfsr);
    }
}

TEST(Fft, EnergyFlowsAndEnginesAgree)
{
    auto d = build_fft(8);
    ReferenceModel ref(*d);
    auto t5 = make_engine(*d, Tier::kT5StaticAnalysis);
    rtl::CycleSim rtl(rtl::lower(*d));
    bool any_nonzero = false;
    for (int c = 0; c < 100; ++c) {
        ref.cycle();
        t5->cycle();
        rtl.cycle();
        for (size_t r = 0; r < d->num_registers(); ++r) {
            ASSERT_EQ(t5->get_reg((int)r), ref.get_reg((int)r))
                << "cycle " << c << " reg " << d->reg((int)r).name;
            ASSERT_EQ(rtl.get_reg((int)r), ref.get_reg((int)r))
                << "cycle " << c << " reg " << d->reg((int)r).name;
            if (!ref.get_reg((int)r).is_zero())
                any_nonzero = true;
        }
    }
    EXPECT_TRUE(any_nonzero);
}

// ---------------------------------------------------------------------------
// RISC-V cores vs the golden ISA simulator.
// ---------------------------------------------------------------------------

namespace {

struct CoreRun
{
    uint64_t cycles = 0;
    std::vector<uint32_t> tohost;
    uint64_t instret = 0;
};

CoreRun
run_core(const Design& d, sim::Model& model, const Program& prog,
         uint64_t max_cycles, int cores = 1)
{
    Rv32System sys(d, model, prog, cores);
    CoreRun r;
    r.cycles = sys.run(max_cycles);
    EXPECT_TRUE(sys.halted()) << d.name() << ": did not halt within "
                              << max_cycles << " cycles";
    r.tohost = sys.tohost(0);
    r.instret = sys.instret(0);
    return r;
}

void
expect_matches_golden(const std::string& design_name,
                      const std::string& source, uint64_t max_cycles)
{
    Program prog = build_program(source);
    GoldenSim golden;
    golden.load(prog);
    golden.run(10'000'000);
    ASSERT_TRUE(golden.halted());

    auto d = build_design(design_name);
    auto e = make_engine(*d, Tier::kT5StaticAnalysis);
    CoreRun run = run_core(*d, *e, prog, max_cycles);
    EXPECT_EQ(run.tohost, golden.tohost()) << design_name;
    EXPECT_EQ(run.instret, golden.instructions_retired()) << design_name;

    // Architectural registers match (x1..x15 to cover RV32E too).
    Rv32System sys_probe(*d, *e, prog, 1);
    for (int i = 1; i < 16; ++i)
        EXPECT_EQ(sys_probe.read_xreg(0, i), golden.reg(i))
            << design_name << " x" << i;
}

} // namespace

TEST(Rv32, SimpleArithmeticMatchesGolden)
{
    expect_matches_golden("rv32i",
                          "li a0, 7\nli a1, 35\nadd a2, a0, a1\n"
                          "sub a3, a1, a0\nxor a4, a2, a3\necall\n",
                          1000);
}

TEST(Rv32, LoadsAndStoresMatchGolden)
{
    expect_matches_golden(
        "rv32i",
        "li a0, 0x2000\nli a1, 0x80FFEE11\nsw a1, 0(a0)\n"
        "lw a2, 0(a0)\nlb a3, 3(a0)\nlbu a4, 3(a0)\nlh a5, 2(a0)\n"
        "sb a1, 8(a0)\nlbu s0, 8(a0)\nsh a1, 12(a0)\nlhu s1, 12(a0)\n"
        "ecall\n",
        2000);
}

TEST(Rv32, BranchesAndJumpsMatchGolden)
{
    expect_matches_golden("rv32i",
                          "li a0, 0\nli t0, 1\nli t1, 11\n"
                          "loop: add a0, a0, t0\naddi t0, t0, 1\n"
                          "blt t0, t1, loop\n"
                          "call func\nj end\n"
                          "func: addi a0, a0, 100\nret\n"
                          "end: ecall\n",
                          2000);
}

TEST(Rv32, ShiftAndCompareMatchGolden)
{
    expect_matches_golden("rv32i",
                          "li a0, -8\nsrai a1, a0, 1\nsrli a2, a0, 1\n"
                          "slli a3, a0, 2\nslt a4, a0, zero\n"
                          "sltu a5, a0, zero\nlui s0, 0x12345\n"
                          "auipc s1, 0\necall\n",
                          1000);
}

TEST(Rv32, PrimesSmallMatchesGolden)
{
    expect_matches_golden("rv32i", primes_source(100), 200'000);
}

TEST(Rv32, BranchyMatchesGolden)
{
    expect_matches_golden("rv32i", branchy_source(200), 200'000);
}

TEST(Rv32, ChainedMatchesGolden)
{
    expect_matches_golden("rv32i", chained_source(100), 200'000);
}

TEST(Rv32, Rv32eRunsPrimes)
{
    expect_matches_golden("rv32e", primes_source(100), 200'000);
}

TEST(Rv32, BranchPredictorVariantMatchesGolden)
{
    expect_matches_golden("rv32i-bp", branchy_source(200), 200'000);
    expect_matches_golden("rv32i-bp", primes_source(100), 200'000);
}

TEST(Rv32, BranchPredictorReducesCycles)
{
    Program prog = build_program(branchy_source(300));
    auto base = build_design("rv32i");
    auto bp = build_design("rv32i-bp");
    auto e1 = make_engine(*base, Tier::kT5StaticAnalysis);
    auto e2 = make_engine(*bp, Tier::kT5StaticAnalysis);
    CoreRun r1 = run_core(*base, *e1, prog, 500'000);
    CoreRun r2 = run_core(*bp, *e2, prog, 500'000);
    EXPECT_EQ(r1.tohost, r2.tohost);
    EXPECT_LT(r2.cycles, r1.cycles)
        << "BTB+BHT should beat PC+4 on branchy code";
}

TEST(Rv32, DualCoreBothCoresFinish)
{
    Program prog = build_program(primes_source(50));
    GoldenSim golden;
    golden.load(prog);
    golden.run(10'000'000);

    auto d = build_design("rv32i-mc");
    auto e = make_engine(*d, Tier::kT5StaticAnalysis);
    Rv32System sys(*d, *e, prog, 2);
    sys.run(2'000'000);
    ASSERT_TRUE(sys.halted());
    EXPECT_EQ(sys.tohost(0), golden.tohost());
    EXPECT_EQ(sys.tohost(1), golden.tohost());
}

TEST(Rv32, X0BugReproducesCaseStudy3)
{
    // 100 NOPs: the buggy scoreboard treats x0 as a real dependency and
    // roughly doubles the cycle count (paper: 203 vs ~1 IPC).
    Program prog = build_program(nops_source(100));
    auto good = build_rv32({});
    auto bad = build_rv32({.x0_bug = true});
    auto e1 = make_engine(*good, Tier::kT5StaticAnalysis);
    auto e2 = make_engine(*bad, Tier::kT5StaticAnalysis);
    CoreRun r1 = run_core(*good, *e1, prog, 10'000);
    CoreRun r2 = run_core(*bad, *e2, prog, 10'000);
    EXPECT_EQ(r1.tohost, r2.tohost); // functionally identical
    EXPECT_GT(r2.cycles, r1.cycles + 80)
        << "the x0 scoreboard bug should stall every NOP";
}

TEST(Rv32, CuttlesimAndRtlLockstepWithMemory)
{
    // The strongest cross-check: a T5 engine and the lowered netlist run
    // the same program with their own (identical) memories and must have
    // identical committed state every cycle.
    Program prog = build_program(primes_source(20));
    auto d = build_design("rv32i");
    auto t5 = make_engine(*d, Tier::kT5StaticAnalysis);
    rtl::CycleSim rtl(rtl::lower(*d));
    Rv32System sys1(*d, *t5, prog, 1);
    Rv32System sys2(*d, rtl, prog, 1);
    for (int c = 0; c < 1500 && !(sys1.halted() && sys2.halted()); ++c) {
        sys1.run(1);
        sys2.run(1);
        for (size_t r = 0; r < d->num_registers(); ++r)
            ASSERT_EQ(t5->get_reg((int)r), rtl.get_reg((int)r))
                << "cycle " << c << " reg " << d->reg((int)r).name;
    }
    EXPECT_TRUE(sys1.halted());
    EXPECT_EQ(sys1.tohost(0), sys2.tohost(0));
}
