// Fleet telemetry tests (src/obs/telemetry.hpp): writer/merge round
// trip, clock alignment of hand-written streams with differing epochs,
// corrupt-record counting (torn tails must not fail the merge), the
// --fault-status renderer, the --metrics artifact, and latest_snapshot
// (the supervisor's live per-worker utilization read).
//
// Like test_prof.cpp, every test arms the process-wide profiler first;
// the TelemetryWriter drains spans from it incrementally.

#include <gtest/gtest.h>

#include <fstream>

#include <stdlib.h>
#include <sys/stat.h>
#include <unistd.h>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/telemetry.hpp"

using namespace koika;
using namespace koika::obs;

namespace {

/** Fresh, enabled profiler state (singleton shared across tests). */
void
arm()
{
    Profiler& p = Profiler::instance();
    p.disable();
    p.reset();
    p.enable();
    p.set_thread_name("main");
}

std::string
fresh_campaign_dir()
{
    char tmpl[] = "/tmp/cuttlesim_telemetry_test_XXXXXX";
    const char* dir = mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr);
    return dir;
}

/** Append raw bytes to a telemetry file (hand-crafted records). */
void
append_raw(const std::string& path, const std::string& text)
{
    std::ofstream out(path, std::ios::app | std::ios::binary);
    ASSERT_TRUE(out.good()) << path;
    out << text;
}

/** A meta line with a chosen epoch, as the writer would emit it. */
std::string
meta_line(const std::string& proc, uint64_t epoch_ns)
{
    Json m = Json::object();
    m["schema"] = kTelemetrySchema;
    m["kind"] = "meta";
    m["proc"] = proc;
    m["pid"] = (uint64_t)4242;
    m["epoch_monotonic_ns"] = epoch_ns;
    m["start_unix"] = (uint64_t)1700000000;
    m["compiler"] = "cc (Test) 1.0";
    return m.dump() + "\n";
}

std::string
event_line(uint64_t seq, uint64_t ts_ns, const std::string& name)
{
    Json e = Json::object();
    e["kind"] = "event";
    e["seq"] = seq;
    e["ts_ns"] = ts_ns;
    e["name"] = name;
    e["args"] = Json::object();
    return e.dump() + "\n";
}

} // namespace

TEST(Telemetry, WriterMergeRoundTrip)
{
    arm();
    std::string dir = fresh_campaign_dir();
    MetricsRegistry metrics;
    metrics.inc("worker/trials", 8);
    {
        TelemetryWriter w(dir, "worker-0", "cc (Test) 1.0");
        ASSERT_TRUE(w.ok());
        w.event("worker/start");
        {
            ProfScope s("orch/chunk");
        }
        w.snapshot(metrics);
    }
    {
        TelemetryWriter sup(dir, "supervisor", "cc (Test) 1.0");
        ASSERT_TRUE(sup.ok());
        sup.event("drain/done");
        sup.snapshot(metrics);
    }

    FleetTelemetry fleet = merge_fleet_telemetry(dir);
    EXPECT_EQ(fleet.files, 2u);
    EXPECT_EQ(fleet.corrupt_records, 0u);
    EXPECT_GE(fleet.snapshots, 2u);
    // The chunk span recorded between the two snapshots lands in the
    // fleet-wide phase table; metrics fold in.
    Json rep = Json::parse(fleet.report.to_json().dump());
    const Json* phases = rep.find("phases");
    ASSERT_NE(phases, nullptr);
    EXPECT_NE(phases->find("orch/chunk"), nullptr);

    // The trace is valid JSON with a slice for the chunk span and a
    // journal instant for the events.
    Json trace = Json::parse(fleet.trace_json);
    const Json* events = trace.find("traceEvents");
    ASSERT_NE(events, nullptr);
    bool chunk_slice = false, start_instant = false;
    for (size_t i = 0; i < events->size(); ++i) {
        const Json* name = events->at(i).find("name");
        if (name == nullptr)
            continue;
        if (name->as_string() == "orch/chunk")
            chunk_slice = true;
        if (name->as_string() == "worker/start")
            start_instant = true;
    }
    EXPECT_TRUE(chunk_slice);
    EXPECT_TRUE(start_instant);

    // The journal carries both processes' events, time-sorted.
    const Json* evs = fleet.events.find("events");
    ASSERT_NE(evs, nullptr);
    ASSERT_GE(evs->size(), 2u);
    uint64_t prev = 0;
    for (size_t i = 0; i < evs->size(); ++i) {
        uint64_t ts = evs->at(i).find("ts_ns")->as_u64();
        EXPECT_GE(ts, prev) << "journal must be time-sorted";
        prev = ts;
    }
}

TEST(Telemetry, ClockAlignmentShiftsOntoSupervisorEpoch)
{
    std::string dir = fresh_campaign_dir();
    std::string tdir = telemetry_dir(dir);
    mkdir(tdir.c_str(), 0755);
    // Supervisor booted at machine-time 1ms; its event at local 100ns
    // is machine-time 1'000'100ns. The worker booted 4ms later; its
    // event at local 100ns is machine-time 5'000'100ns — so it must
    // sort AFTER the supervisor's even though the raw ts match.
    append_raw(telemetry_path(dir, "supervisor"),
               meta_line("supervisor", 1000000) +
                   event_line(0, 100, "sup/event"));
    append_raw(telemetry_path(dir, "worker-0"),
               meta_line("worker-0", 5000000) +
                   event_line(0, 100, "worker/event"));

    FleetTelemetry fleet = merge_fleet_telemetry(dir);
    EXPECT_EQ(fleet.corrupt_records, 0u);
    const Json* evs = fleet.events.find("events");
    ASSERT_NE(evs, nullptr);
    ASSERT_EQ(evs->size(), 2u);
    EXPECT_EQ(evs->at(0).find("name")->as_string(), "sup/event");
    EXPECT_EQ(evs->at(0).find("ts_ns")->as_u64(), 100u);
    EXPECT_EQ(evs->at(1).find("name")->as_string(), "worker/event");
    // Shifted by the 4ms epoch difference onto the supervisor's clock.
    EXPECT_EQ(evs->at(1).find("ts_ns")->as_u64(), 4000100u);
}

TEST(Telemetry, CorruptRecordsAreCountedNotFatal)
{
    std::string dir = fresh_campaign_dir();
    std::string tdir = telemetry_dir(dir);
    mkdir(tdir.c_str(), 0755);
    append_raw(telemetry_path(dir, "worker-0"),
               meta_line("worker-0", 1000) +
                   event_line(0, 10, "worker/start") +
                   "{\"kind\": \"event\", \"seq\": 1, TORN" // torn line
                   "\n" +
                   event_line(2, 30, "worker/done") +
                   "{\"kind\": \"snapsh"); // torn tail, no newline

    FleetTelemetry fleet = merge_fleet_telemetry(dir);
    EXPECT_EQ(fleet.files, 1u);
    EXPECT_EQ(fleet.corrupt_records, 2u);
    const Json* evs = fleet.events.find("events");
    ASSERT_NE(evs, nullptr);
    EXPECT_EQ(evs->size(), 2u) << "healthy records must survive";
}

TEST(Telemetry, MergeOfAbsentDirectoryIsEmpty)
{
    std::string dir = fresh_campaign_dir(); // no telemetry/ inside
    FleetTelemetry fleet = merge_fleet_telemetry(dir);
    EXPECT_EQ(fleet.files, 0u);
    EXPECT_EQ(fleet.corrupt_records, 0u);
    const Json* evs = fleet.events.find("events");
    ASSERT_NE(evs, nullptr);
    EXPECT_EQ(evs->size(), 0u);
    Json trace = Json::parse(fleet.trace_json); // still valid JSON
    EXPECT_NE(trace.find("traceEvents"), nullptr);
}

TEST(Telemetry, MetricsArtifactShape)
{
    MetricsRegistry m;
    m.inc("fault/trials", 54);
    m.set_gauge("orch/wall", 1.5);
    Json a = metrics_artifact("collatz", "T5", m);
    EXPECT_EQ(a.find("schema")->as_string(), kMetricsSchema);
    EXPECT_EQ(a.find("design")->as_string(), "collatz");
    EXPECT_EQ(a.find("engine")->as_string(), "T5");
    const Json* counters = a.find("metrics")->find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_EQ(counters->find("fault/trials")->as_u64(), 54u);
    // Design/engine may be empty (e.g. --list) but must be present.
    Json b = metrics_artifact("", "", m);
    ASSERT_NE(b.find("design"), nullptr);
    EXPECT_EQ(b.find("design")->as_string(), "");
}

TEST(Telemetry, RenderStatusTextShowsDrainState)
{
    Json s = Json::object();
    s["schema"] = kStatusSchema;
    s["state"] = "running";
    s["campaign"] = "collatz";
    s["design"] = "collatz";
    s["engine"] = "T5";
    s["wall_seconds"] = 1.5;
    s["trials_per_sec"] = 12.0;
    s["eta_seconds"] = 3.0;
    Json inj = Json::object();
    inj["done"] = (uint64_t)18;
    inj["total"] = (uint64_t)54;
    s["injections"] = inj;
    Json chunks = Json::object();
    chunks["total"] = (uint64_t)14;
    chunks["completed"] = (uint64_t)4;
    chunks["failed"] = (uint64_t)1;
    chunks["in_flight"] = (uint64_t)2;
    s["chunks"] = chunks;
    Json workers = Json::array();
    Json w = Json::object();
    w["slot"] = (uint64_t)0;
    w["pid"] = (uint64_t)100;
    w["up"] = true;
    w["restarts"] = (uint64_t)1;
    w["busy_seconds"] = 1.2;
    w["utilization"] = 0.8;
    workers.push_back(w);
    s["workers"] = workers;

    std::string text = render_status_text(s);
    EXPECT_NE(text.find("running"), std::string::npos);
    EXPECT_NE(text.find("collatz"), std::string::npos);
    EXPECT_NE(text.find("18"), std::string::npos);
    EXPECT_NE(text.find("54"), std::string::npos);

    // Partial documents render with placeholders, never throw.
    Json partial = Json::object();
    partial["schema"] = kStatusSchema;
    partial["state"] = "running";
    EXPECT_FALSE(render_status_text(partial).empty());
}

TEST(Telemetry, LatestSnapshotReturnsLastParseableRecord)
{
    arm();
    std::string dir = fresh_campaign_dir();
    EXPECT_EQ(latest_snapshot(dir, "worker-0").kind(),
              Json::Kind::kNull);

    MetricsRegistry m;
    TelemetryWriter w(dir, "worker-0", "cc");
    w.snapshot(m);
    m.inc("worker/chunks_published", 3);
    w.snapshot(m);
    append_raw(telemetry_path(dir, "worker-0"), "{\"kind\": \"sn");

    Json snap = latest_snapshot(dir, "worker-0");
    ASSERT_EQ(snap.kind(), Json::Kind::kObject);
    const Json* counters = snap.find("metrics")->find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_EQ(counters->find("worker/chunks_published")->as_u64(), 3u)
        << "must be the LAST snapshot, torn tail skipped";
}
