// Reference-interpreter tests: the specification semantics of §3.1.
//
// These pin down the port conflict matrix, intra-rule visibility, rule
// abortion and commit behaviour, and end-of-cycle register updates. Every
// other engine is later differential-tested against this interpreter, so
// these tests are the semantic anchor of the whole repository.

#include <gtest/gtest.h>

#include "interp/reference.hpp"
#include "koika/builder.hpp"
#include "koika/typecheck.hpp"

using namespace koika;

namespace {

struct Fixture
{
    Design d{"t"};
    Builder b{d};

    void
    finish()
    {
        typecheck(d);
    }
};

} // namespace

TEST(Reference, CounterIncrements)
{
    Fixture f;
    int x = f.b.reg("x", 8, 0);
    f.d.add_rule("inc", f.b.write0(x, f.b.add(f.b.read0(x), f.b.k(8, 1))));
    f.d.schedule("inc");
    f.finish();
    ReferenceSim sim(f.d);
    for (int i = 1; i <= 5; ++i) {
        sim.cycle();
        EXPECT_EQ(sim.reg(x).to_u64(), (uint64_t)i);
    }
    EXPECT_EQ(sim.cycles_run(), 5u);
}

TEST(Reference, Wr1BeatsWr0AtCommit)
{
    Fixture f;
    int x = f.b.reg("x", 8, 0);
    f.d.add_rule("r", f.b.seq({f.b.write0(x, f.b.k(8, 1)),
                               f.b.write1(x, f.b.k(8, 2))}));
    f.d.schedule("r");
    f.finish();
    ReferenceSim sim(f.d);
    sim.cycle();
    EXPECT_EQ(sim.reg(x).to_u64(), 2u);
}

TEST(Reference, GoldbergianContraption)
{
    // Paper §3.2: rule rl = r.wr0(1); r.wr1(2); r.rd0(); r.rd1()
    // succeeds, rd0 reads 0 and rd1 reads 1.
    Fixture f;
    int r = f.b.reg("r", 8, 0);
    int saw0 = f.b.reg("saw0", 8, 0xFF);
    int saw1 = f.b.reg("saw1", 8, 0xFF);
    f.d.add_rule(
        "rl", f.b.seq({f.b.write0(r, f.b.k(8, 1)),
                       f.b.write1(r, f.b.k(8, 2)),
                       f.b.write1(saw0, f.b.read0(r)),
                       f.b.write1(saw1, f.b.read1(r))}));
    f.d.schedule("rl");
    f.finish();
    ReferenceSim sim(f.d);
    sim.cycle();
    EXPECT_TRUE(sim.fired()[0]);
    EXPECT_EQ(sim.reg(saw0).to_u64(), 0u);
    EXPECT_EQ(sim.reg(saw1).to_u64(), 1u);
    EXPECT_EQ(sim.reg(r).to_u64(), 2u);
}

TEST(Reference, Rd0AfterEarlierRuleWriteAborts)
{
    // Rule w writes x at port 0; rule r then reads x at port 0 -> r must
    // abort (a rd0 cannot observe an earlier write in the same cycle).
    Fixture f;
    int x = f.b.reg("x", 8, 0);
    int y = f.b.reg("y", 8, 0);
    f.d.add_rule("w", f.b.write0(x, f.b.k(8, 1)));
    f.d.add_rule("r", f.b.write0(y, f.b.read0(x)));
    f.d.schedule("w");
    f.d.schedule("r");
    f.finish();
    ReferenceSim sim(f.d);
    sim.cycle();
    EXPECT_TRUE(sim.fired()[0]);
    EXPECT_FALSE(sim.fired()[1]);
    EXPECT_EQ(sim.reg(y).to_u64(), 0u);
}

TEST(Reference, Rd1SeesEarlierRuleWr0)
{
    Fixture f;
    int x = f.b.reg("x", 8, 0);
    int y = f.b.reg("y", 8, 0);
    f.d.add_rule("w", f.b.write0(x, f.b.k(8, 42)));
    f.d.add_rule("r", f.b.write0(y, f.b.read1(x)));
    f.d.schedule("w");
    f.d.schedule("r");
    f.finish();
    ReferenceSim sim(f.d);
    sim.cycle();
    EXPECT_TRUE(sim.fired()[1]);
    EXPECT_EQ(sim.reg(y).to_u64(), 42u);
}

TEST(Reference, Rd1AfterEarlierRuleWr1Aborts)
{
    Fixture f;
    int x = f.b.reg("x", 8, 0);
    int y = f.b.reg("y", 8, 0);
    f.d.add_rule("w", f.b.write1(x, f.b.k(8, 1)));
    f.d.add_rule("r", f.b.write0(y, f.b.read1(x)));
    f.d.schedule("w");
    f.d.schedule("r");
    f.finish();
    ReferenceSim sim(f.d);
    sim.cycle();
    EXPECT_FALSE(sim.fired()[1]);
}

TEST(Reference, Wr0AfterEarlierRuleRd1Aborts)
{
    // The accidental-conflict scenario of case study 1: a rd1 followed by
    // a later rule's wr0 is a linearity violation.
    Fixture f;
    int x = f.b.reg("x", 8, 0);
    int y = f.b.reg("y", 8, 0);
    f.d.add_rule("r", f.b.write0(y, f.b.read1(x)));
    f.d.add_rule("w", f.b.write0(x, f.b.k(8, 1)));
    f.d.schedule("r");
    f.d.schedule("w");
    f.finish();
    ReferenceSim sim(f.d);
    sim.cycle();
    EXPECT_TRUE(sim.fired()[0]);
    EXPECT_FALSE(sim.fired()[1]);
    EXPECT_EQ(sim.reg(x).to_u64(), 0u);
}

TEST(Reference, Wr0AfterEarlierRuleWr0Aborts)
{
    Fixture f;
    int x = f.b.reg("x", 8, 0);
    f.d.add_rule("w1", f.b.write0(x, f.b.k(8, 1)));
    f.d.add_rule("w2", f.b.write0(x, f.b.k(8, 2)));
    f.d.schedule("w1");
    f.d.schedule("w2");
    f.finish();
    ReferenceSim sim(f.d);
    sim.cycle();
    EXPECT_TRUE(sim.fired()[0]);
    EXPECT_FALSE(sim.fired()[1]);
    EXPECT_EQ(sim.reg(x).to_u64(), 1u);
}

TEST(Reference, TwoWr1sConflict)
{
    Fixture f;
    int x = f.b.reg("x", 8, 0);
    f.d.add_rule("w1", f.b.write1(x, f.b.k(8, 1)));
    f.d.add_rule("w2", f.b.write1(x, f.b.k(8, 2)));
    f.d.schedule("w1");
    f.d.schedule("w2");
    f.finish();
    ReferenceSim sim(f.d);
    sim.cycle();
    EXPECT_TRUE(sim.fired()[0]);
    EXPECT_FALSE(sim.fired()[1]);
    EXPECT_EQ(sim.reg(x).to_u64(), 1u);
}

TEST(Reference, Wr0ThenLaterRuleWr1Allowed)
{
    // wr0 then a *later rule's* wr1 is the classic forwarding pattern.
    Fixture f;
    int x = f.b.reg("x", 8, 0);
    f.d.add_rule("w0", f.b.write0(x, f.b.k(8, 1)));
    f.d.add_rule("w1", f.b.write1(x, f.b.k(8, 2)));
    f.d.schedule("w0");
    f.d.schedule("w1");
    f.finish();
    ReferenceSim sim(f.d);
    sim.cycle();
    EXPECT_TRUE(sim.fired()[0]);
    EXPECT_TRUE(sim.fired()[1]);
    EXPECT_EQ(sim.reg(x).to_u64(), 2u);
}

TEST(Reference, Wr1ThenLaterRuleWr0Conflicts)
{
    Fixture f;
    int x = f.b.reg("x", 8, 0);
    f.d.add_rule("w1", f.b.write1(x, f.b.k(8, 2)));
    f.d.add_rule("w0", f.b.write0(x, f.b.k(8, 1)));
    f.d.schedule("w1");
    f.d.schedule("w0");
    f.finish();
    ReferenceSim sim(f.d);
    sim.cycle();
    EXPECT_TRUE(sim.fired()[0]);
    EXPECT_FALSE(sim.fired()[1]);
    EXPECT_EQ(sim.reg(x).to_u64(), 2u);
}

TEST(Reference, AbortedRuleLeavesNoTrace)
{
    // A rule that writes, then aborts: its writes must be discarded and a
    // later rule must still be able to write.
    Fixture f;
    int x = f.b.reg("x", 8, 0);
    f.d.add_rule("doomed", f.b.seq({f.b.write0(x, f.b.k(8, 7)),
                                    f.b.abort()}));
    f.d.add_rule("after", f.b.write0(x, f.b.k(8, 9)));
    f.d.schedule("doomed");
    f.d.schedule("after");
    f.finish();
    ReferenceSim sim(f.d);
    sim.cycle();
    EXPECT_FALSE(sim.fired()[0]);
    EXPECT_TRUE(sim.fired()[1]);
    EXPECT_EQ(sim.reg(x).to_u64(), 9u);
}

TEST(Reference, GuardFalseAborts)
{
    Fixture f;
    int x = f.b.reg("x", 8, 0);
    f.d.add_rule("r", f.b.seq({f.b.guard(f.b.eq(f.b.read0(x), f.b.k(8, 1))),
                               f.b.write0(x, f.b.k(8, 5))}));
    f.d.schedule("r");
    f.finish();
    ReferenceSim sim(f.d);
    sim.cycle();
    EXPECT_FALSE(sim.fired()[0]);
    EXPECT_EQ(sim.reg(x).to_u64(), 0u);
    sim.set_reg(x, Bits::of(8, 1));
    sim.cycle();
    EXPECT_TRUE(sim.fired()[0]);
    EXPECT_EQ(sim.reg(x).to_u64(), 5u);
}

TEST(Reference, IntraRuleWr0ThenRd1SeesValue)
{
    Fixture f;
    int x = f.b.reg("x", 8, 0);
    int y = f.b.reg("y", 8, 0);
    f.d.add_rule("r", f.b.seq({f.b.write0(x, f.b.k(8, 3)),
                               f.b.write1(y, f.b.read1(x))}));
    f.d.schedule("r");
    f.finish();
    ReferenceSim sim(f.d);
    sim.cycle();
    EXPECT_EQ(sim.reg(y).to_u64(), 3u);
}

TEST(Reference, IntraRuleWr0ThenWr0Conflicts)
{
    Fixture f;
    int x = f.b.reg("x", 8, 0);
    f.d.add_rule("r", f.b.seq({f.b.write0(x, f.b.k(8, 1)),
                               f.b.write0(x, f.b.k(8, 2))}));
    f.d.schedule("r");
    f.finish();
    ReferenceSim sim(f.d);
    sim.cycle();
    EXPECT_FALSE(sim.fired()[0]);
    EXPECT_EQ(sim.reg(x).to_u64(), 0u);
}

TEST(Reference, TwoStateMachine)
{
    // The paper's §2.1 example: alternate rlA / rlB by state.
    Fixture f;
    auto st_t = make_enum("state", {"A", "B"});
    int st = f.d.add_register("st", st_t, Bits::of(1, 0));
    int x = f.b.reg("x", 32, 1);
    Action* rlA =
        f.b.seq({f.b.guard(f.b.eq(f.b.read0(st), f.b.enum_k(st_t, "A"))),
                 f.b.write0(st, f.b.enum_k(st_t, "B")),
                 f.b.write0(x, f.b.add(f.b.read0(x), f.b.k(32, 1)))});
    Action* rlB =
        f.b.seq({f.b.guard(f.b.eq(f.b.read0(st), f.b.enum_k(st_t, "B"))),
                 f.b.write0(st, f.b.enum_k(st_t, "A")),
                 f.b.write0(x, f.b.mul(f.b.read0(x), f.b.k(32, 2)))});
    f.d.add_rule("rlA", rlA);
    f.d.add_rule("rlB", rlB);
    f.d.schedule("rlA");
    f.d.schedule("rlB");
    f.finish();
    ReferenceSim sim(f.d);
    sim.cycle(); // A: x = 2
    EXPECT_TRUE(sim.fired()[0]);
    EXPECT_FALSE(sim.fired()[1]);
    EXPECT_EQ(sim.reg(x).to_u64(), 2u);
    sim.cycle(); // B: x = 4
    EXPECT_FALSE(sim.fired()[0]);
    EXPECT_TRUE(sim.fired()[1]);
    EXPECT_EQ(sim.reg(x).to_u64(), 4u);
    sim.cycle(); // A: x = 5
    EXPECT_EQ(sim.reg(x).to_u64(), 5u);
}

TEST(Reference, MutuallyExclusiveRulesOrderIrrelevant)
{
    // Case study 2's property on a small scale: for mutually exclusive
    // rules, any scheduler order produces the same behaviour.
    Fixture f;
    auto st_t = make_enum("state", {"A", "B"});
    int st = f.d.add_register("st", st_t, Bits::of(1, 0));
    int x = f.b.reg("x", 8, 0);
    Action* rlA =
        f.b.seq({f.b.guard(f.b.eq(f.b.read0(st), f.b.enum_k(st_t, "A"))),
                 f.b.write0(st, f.b.enum_k(st_t, "B")),
                 f.b.write0(x, f.b.add(f.b.read0(x), f.b.k(8, 1)))});
    Action* rlB =
        f.b.seq({f.b.guard(f.b.eq(f.b.read0(st), f.b.enum_k(st_t, "B"))),
                 f.b.write0(st, f.b.enum_k(st_t, "A")),
                 f.b.write0(x, f.b.add(f.b.read0(x), f.b.k(8, 10)))});
    f.d.add_rule("rlA", rlA);
    f.d.add_rule("rlB", rlB);
    f.d.schedule("rlA");
    f.d.schedule("rlB");
    f.finish();

    ReferenceSim fwd(f.d), rev(f.d);
    std::vector<int> reversed = {1, 0};
    for (int i = 0; i < 10; ++i) {
        fwd.cycle();
        rev.cycle_with_order(reversed);
        EXPECT_EQ(fwd.reg(x), rev.reg(x)) << "cycle " << i;
        EXPECT_EQ(fwd.reg(st), rev.reg(st)) << "cycle " << i;
    }
}

TEST(Reference, UnscheduledRuleNeverRuns)
{
    Fixture f;
    int x = f.b.reg("x", 8, 0);
    f.d.add_rule("never", f.b.write0(x, f.b.k(8, 99)));
    f.finish();
    ReferenceSim sim(f.d);
    sim.cycle();
    EXPECT_EQ(sim.reg(x).to_u64(), 0u);
}

TEST(Reference, AssignMutatesLocal)
{
    Fixture f;
    int x = f.b.reg("x", 8, 0);
    // let v := 1 in (if x == 0 then set v := 5); x.wr0(v)
    Action* body = f.b.let(
        "v", f.b.k(8, 1),
        f.b.seq({f.b.when(f.b.eq(f.b.read0(x), f.b.k(8, 0)),
                          f.b.assign("v", f.b.k(8, 5))),
                 f.b.write0(x, f.b.var("v"))}));
    f.d.add_rule("r", body);
    f.d.schedule("r");
    f.finish();
    ReferenceSim sim(f.d);
    sim.cycle();
    EXPECT_EQ(sim.reg(x).to_u64(), 5u);
    sim.cycle();
    EXPECT_EQ(sim.reg(x).to_u64(), 1u);
}

TEST(Reference, FunctionCallEvaluates)
{
    Fixture f;
    int x = f.b.reg("x", 8, 3);
    FunctionDef* sq = f.b.fn("sq", {{"a", bits_type(8)}}, bits_type(8),
                             f.b.mul(f.b.var("a"), f.b.var("a")));
    f.d.add_rule("r", f.b.write0(x, f.b.call(sq, {f.b.read0(x)})));
    f.d.schedule("r");
    f.finish();
    ReferenceSim sim(f.d);
    sim.cycle();
    EXPECT_EQ(sim.reg(x).to_u64(), 9u);
    sim.cycle();
    EXPECT_EQ(sim.reg(x).to_u64(), 81u);
}

TEST(Reference, StructFieldRoundTrip)
{
    Fixture f;
    auto t = make_struct("pkt", {{"hi", bits_type(8), 0},
                                 {"lo", bits_type(8), 0}});
    int p = f.d.add_register("p", t, Bits::zeroes(16));
    int out = f.b.reg("out", 8, 0);
    f.d.add_rule(
        "wr", f.b.write0(p, f.b.struct_init(t, {{"hi", f.b.k(8, 0xAB)},
                                                {"lo", f.b.k(8, 0xCD)}})));
    f.d.add_rule("rd", f.b.write0(out, f.b.get(f.b.read1(p), "hi")));
    f.d.schedule("wr");
    f.d.schedule("rd");
    f.finish();
    ReferenceSim sim(f.d);
    sim.cycle();
    EXPECT_EQ(sim.reg(p).to_u64(), 0xABCDu);
    EXPECT_EQ(sim.reg(out).to_u64(), 0xABu);
}

TEST(Reference, SubstFieldUpdatesOnlyThatField)
{
    Fixture f;
    auto t = make_struct("pkt", {{"hi", bits_type(8), 0},
                                 {"lo", bits_type(8), 0}});
    int p = f.d.add_register("p", t, Bits::of(16, 0x1234));
    f.d.add_rule("r",
                 f.b.write0(p, f.b.subst(f.b.read0(p), "hi", f.b.k(8, 0xFF))));
    f.d.schedule("r");
    f.finish();
    ReferenceSim sim(f.d);
    sim.cycle();
    EXPECT_EQ(sim.reg(p).to_u64(), 0xFF34u);
}
