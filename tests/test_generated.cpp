// Differential tests for the build-time generated models: the Cuttlesim
// C++ models and the compiled-netlist RTL models of every benchmark
// design must track the in-process T5 engine cycle by cycle, and the
// RISC-V generated models must run real programs to the same result as
// the golden ISA simulator.

#include <gtest/gtest.h>

#include "codegen/generated_model.hpp"
#include "designs/designs.hpp"
#include "designs/rv32.hpp"
#include "riscv/goldensim.hpp"
#include "riscv/programs.hpp"
#include "sim/tiers.hpp"

#include "collatz.model.hpp"
#include "collatz_rtl.hpp"
#include "collatz_rtlopt.hpp"
#include "fft.model.hpp"
#include "fft_rtl.hpp"
#include "fir.model.hpp"
#include "fir_rtl.hpp"
#include "rv32i.model.hpp"
#include "rv32i_bp.model.hpp"
#include "rv32i_rtl.hpp"
#include "rv32i_rtlopt.hpp"

using namespace koika;
using namespace koika::codegen;
using namespace koika::designs;
using namespace koika::riscv;
using koika::sim::make_engine;
using koika::sim::Tier;

namespace {

template <typename M>
void
expect_tracks_engine(const std::string& design_name, int cycles)
{
    auto d = build_design(design_name);
    auto engine = make_engine(*d, Tier::kT5StaticAnalysis);
    GeneratedModel<M> generated;
    ASSERT_EQ(generated.num_regs(), d->num_registers());
    for (int c = 0; c < cycles; ++c) {
        engine->cycle();
        generated.cycle();
        for (size_t r = 0; r < d->num_registers(); ++r)
            ASSERT_EQ(generated.get_reg((int)r), engine->get_reg((int)r))
                << design_name << " cycle " << c << " register "
                << d->reg((int)r).name;
    }
}

} // namespace

TEST(Generated, CollatzTracksEngine)
{
    expect_tracks_engine<cuttlesim::models::collatz>("collatz", 500);
}

TEST(Generated, CollatzRtlTracksEngine)
{
    expect_tracks_engine<cuttlesim::models::collatz_rtl>("collatz", 500);
}

TEST(Generated, CollatzRtlOptTracksEngine)
{
    expect_tracks_engine<cuttlesim::models::collatz_rtlopt>("collatz",
                                                            500);
}

TEST(Generated, FirTracksEngine)
{
    expect_tracks_engine<cuttlesim::models::fir>("fir", 300);
}

TEST(Generated, FirRtlTracksEngine)
{
    expect_tracks_engine<cuttlesim::models::fir_rtl>("fir", 300);
}

TEST(Generated, FftTracksEngine)
{
    expect_tracks_engine<cuttlesim::models::fft>("fft", 300);
}

TEST(Generated, FftRtlTracksEngine)
{
    expect_tracks_engine<cuttlesim::models::fft_rtl>("fft", 300);
}

TEST(Generated, Rv32iRunsPrimesToGoldenResult)
{
    Program prog = build_program(primes_source(200));
    GoldenSim golden;
    golden.load(prog);
    golden.run(10'000'000);
    ASSERT_TRUE(golden.halted());

    auto d = build_design("rv32i");
    GeneratedModel<cuttlesim::models::rv32i> m;
    Rv32System sys(*d, m, prog, 1);
    sys.run(2'000'000);
    ASSERT_TRUE(sys.halted());
    EXPECT_EQ(sys.tohost(0), golden.tohost());
    EXPECT_EQ(sys.instret(0), golden.instructions_retired());
}

TEST(Generated, Rv32iRtlRunsPrimesToGoldenResult)
{
    Program prog = build_program(primes_source(50));
    GoldenSim golden;
    golden.load(prog);
    golden.run(10'000'000);

    auto d = build_design("rv32i");
    GeneratedModel<cuttlesim::models::rv32i_rtl> m;
    Rv32System sys(*d, m, prog, 1);
    sys.run(2'000'000);
    ASSERT_TRUE(sys.halted());
    EXPECT_EQ(sys.tohost(0), golden.tohost());
}

TEST(Generated, Rv32iRtlOptMatchesRtlLockstep)
{
    Program prog = build_program(primes_source(30));
    auto d = build_design("rv32i");
    GeneratedModel<cuttlesim::models::rv32i_rtl> a;
    GeneratedModel<cuttlesim::models::rv32i_rtlopt> b;
    Rv32System sys_a(*d, a, prog, 1);
    Rv32System sys_b(*d, b, prog, 1);
    for (int c = 0; c < 3000 && !sys_a.halted(); ++c) {
        sys_a.run(1);
        sys_b.run(1);
        for (size_t r = 0; r < d->num_registers(); ++r)
            ASSERT_EQ(a.get_reg((int)r), b.get_reg((int)r))
                << "cycle " << c << " reg " << d->reg((int)r).name;
    }
    EXPECT_TRUE(sys_a.halted());
}

TEST(Generated, Rv32iBpRunsBranchyFasterThanBaseline)
{
    Program prog = build_program(branchy_source(300));
    auto base_d = build_design("rv32i");
    auto bp_d = build_design("rv32i-bp");
    GeneratedModel<cuttlesim::models::rv32i> base;
    GeneratedModel<cuttlesim::models::rv32i_bp> bp;
    Rv32System sys_base(*base_d, base, prog, 1);
    Rv32System sys_bp(*bp_d, bp, prog, 1);
    uint64_t cycles_base = sys_base.run(2'000'000);
    uint64_t cycles_bp = sys_bp.run(2'000'000);
    ASSERT_TRUE(sys_base.halted());
    ASSERT_TRUE(sys_bp.halted());
    EXPECT_EQ(sys_base.tohost(0), sys_bp.tohost(0));
    EXPECT_LT(cycles_bp, cycles_base);
}

TEST(Generated, CommitCountersCountRuleActivity)
{
    // Gcov-style statistics come for free (case study 4).
    GeneratedModel<cuttlesim::models::collatz> m;
    for (int i = 0; i < 111; ++i)
        m.cycle();
    auto& impl = m.impl();
    uint64_t commits = 0;
    for (size_t r = 0; r < impl.kNumRules; ++r)
        commits += impl.commit_count[r];
    EXPECT_EQ(commits, 111u); // exactly one rule commits per cycle
    uint64_t aborts = 0;
    for (size_t r = 0; r < impl.kNumRules; ++r)
        aborts += impl.abort_count[r];
    EXPECT_EQ(aborts, 2u * 111u); // the two non-matching rules abort
}
