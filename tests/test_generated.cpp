// Differential tests for the build-time generated models: the Cuttlesim
// C++ models and the compiled-netlist RTL models of every benchmark
// design must track the in-process T5 engine cycle by cycle, and the
// RISC-V generated models must run real programs to the same result as
// the golden ISA simulator.

#include <gtest/gtest.h>

#include <map>

#include "codegen/generated_model.hpp"
#include "designs/designs.hpp"
#include "designs/rv32.hpp"
#include "obs/coverage.hpp"
#include "obs/stats.hpp"
#include "replay/checkpoint.hpp"
#include "riscv/goldensim.hpp"
#include "riscv/programs.hpp"
#include "sim/tiers.hpp"

#include "collatz.model.hpp"
#include "collatz_rtl.hpp"
#include "collatz_rtlopt.hpp"
#include "fft.model.hpp"
#include "fft_rtl.hpp"
#include "fir.model.hpp"
#include "fir_rtl.hpp"
#include "msi_instr.model.hpp"
#include "rv32i.model.hpp"
#include "rv32i_bp.model.hpp"
#include "rv32i_instr.model.hpp"
#include "rv32i_rtl.hpp"
#include "rv32i_rtlopt.hpp"

using namespace koika;
using namespace koika::codegen;
using namespace koika::designs;
using namespace koika::riscv;
using koika::sim::make_engine;
using koika::sim::Tier;

namespace {

struct RuleActivity
{
    uint64_t commits = 0;
    uint64_t aborts = 0;
    uint64_t reasons[3] = {0, 0, 0};

    bool
    operator==(const RuleActivity& o) const
    {
        return commits == o.commits && aborts == o.aborts &&
               reasons[0] == o.reasons[0] && reasons[1] == o.reasons[1] &&
               reasons[2] == o.reasons[2];
    }
};

/**
 * Name-keyed per-rule activity. Tier engines index counters by rule id
 * while generated models index by schedule position, so cross-engine
 * comparison must go through rule names. Rules with no activity are
 * dropped (unscheduled rules exist only on the engine side).
 */
std::map<std::string, RuleActivity>
activity_by_name(const koika::sim::Model& m)
{
    std::map<std::string, RuleActivity> out;
    koika::obs::SimStats s = koika::obs::collect_stats(m);
    for (const koika::obs::RuleStats& r : s.rules) {
        if (r.commits == 0 && r.aborts == 0)
            continue;
        RuleActivity& a = out[r.name];
        a.commits += r.commits;
        a.aborts += r.aborts;
        a.reasons[0] += r.guard_aborts;
        a.reasons[1] += r.read_conflict_aborts;
        a.reasons[2] += r.write_conflict_aborts;
    }
    return out;
}

void
expect_same_activity(const std::map<std::string, RuleActivity>& engine,
                     const std::map<std::string, RuleActivity>& model)
{
    ASSERT_EQ(engine.size(), model.size());
    for (const auto& [name, a] : engine) {
        auto it = model.find(name);
        ASSERT_NE(it, model.end()) << "rule " << name;
        EXPECT_TRUE(a == it->second)
            << "rule " << name << ": engine " << a.commits << "/"
            << a.aborts << " [" << a.reasons[0] << "," << a.reasons[1]
            << "," << a.reasons[2] << "], model " << it->second.commits
            << "/" << it->second.aborts << " [" << it->second.reasons[0]
            << "," << it->second.reasons[1] << ","
            << it->second.reasons[2] << "]";
    }
}

template <typename M>
void
expect_tracks_engine(const std::string& design_name, int cycles)
{
    auto d = build_design(design_name);
    auto engine = make_engine(*d, Tier::kT5StaticAnalysis);
    GeneratedModel<M> generated;
    ASSERT_EQ(generated.num_regs(), d->num_registers());
    for (int c = 0; c < cycles; ++c) {
        engine->cycle();
        generated.cycle();
        for (size_t r = 0; r < d->num_registers(); ++r)
            ASSERT_EQ(generated.get_reg((int)r), engine->get_reg((int)r))
                << design_name << " cycle " << c << " register "
                << d->reg((int)r).name;
    }
}

} // namespace

TEST(Generated, CollatzTracksEngine)
{
    expect_tracks_engine<cuttlesim::models::collatz>("collatz", 500);
}

TEST(Generated, CollatzRtlTracksEngine)
{
    expect_tracks_engine<cuttlesim::models::collatz_rtl>("collatz", 500);
}

TEST(Generated, CollatzRtlOptTracksEngine)
{
    expect_tracks_engine<cuttlesim::models::collatz_rtlopt>("collatz",
                                                            500);
}

TEST(Generated, FirTracksEngine)
{
    expect_tracks_engine<cuttlesim::models::fir>("fir", 300);
}

TEST(Generated, FirRtlTracksEngine)
{
    expect_tracks_engine<cuttlesim::models::fir_rtl>("fir", 300);
}

TEST(Generated, FftTracksEngine)
{
    expect_tracks_engine<cuttlesim::models::fft>("fft", 300);
}

TEST(Generated, FftRtlTracksEngine)
{
    expect_tracks_engine<cuttlesim::models::fft_rtl>("fft", 300);
}

TEST(Generated, Rv32iRunsPrimesToGoldenResult)
{
    Program prog = build_program(primes_source(200));
    GoldenSim golden;
    golden.load(prog);
    golden.run(10'000'000);
    ASSERT_TRUE(golden.halted());

    auto d = build_design("rv32i");
    GeneratedModel<cuttlesim::models::rv32i> m;
    Rv32System sys(*d, m, prog, 1);
    sys.run(2'000'000);
    ASSERT_TRUE(sys.halted());
    EXPECT_EQ(sys.tohost(0), golden.tohost());
    EXPECT_EQ(sys.instret(0), golden.instructions_retired());
}

TEST(Generated, Rv32iRtlRunsPrimesToGoldenResult)
{
    Program prog = build_program(primes_source(50));
    GoldenSim golden;
    golden.load(prog);
    golden.run(10'000'000);

    auto d = build_design("rv32i");
    GeneratedModel<cuttlesim::models::rv32i_rtl> m;
    Rv32System sys(*d, m, prog, 1);
    sys.run(2'000'000);
    ASSERT_TRUE(sys.halted());
    EXPECT_EQ(sys.tohost(0), golden.tohost());
}

TEST(Generated, Rv32iRtlOptMatchesRtlLockstep)
{
    Program prog = build_program(primes_source(30));
    auto d = build_design("rv32i");
    GeneratedModel<cuttlesim::models::rv32i_rtl> a;
    GeneratedModel<cuttlesim::models::rv32i_rtlopt> b;
    Rv32System sys_a(*d, a, prog, 1);
    Rv32System sys_b(*d, b, prog, 1);
    for (int c = 0; c < 3000 && !sys_a.halted(); ++c) {
        sys_a.run(1);
        sys_b.run(1);
        for (size_t r = 0; r < d->num_registers(); ++r)
            ASSERT_EQ(a.get_reg((int)r), b.get_reg((int)r))
                << "cycle " << c << " reg " << d->reg((int)r).name;
    }
    EXPECT_TRUE(sys_a.halted());
}

TEST(Generated, Rv32iBpRunsBranchyFasterThanBaseline)
{
    Program prog = build_program(branchy_source(300));
    auto base_d = build_design("rv32i");
    auto bp_d = build_design("rv32i-bp");
    GeneratedModel<cuttlesim::models::rv32i> base;
    GeneratedModel<cuttlesim::models::rv32i_bp> bp;
    Rv32System sys_base(*base_d, base, prog, 1);
    Rv32System sys_bp(*bp_d, bp, prog, 1);
    uint64_t cycles_base = sys_base.run(2'000'000);
    uint64_t cycles_bp = sys_bp.run(2'000'000);
    ASSERT_TRUE(sys_base.halted());
    ASSERT_TRUE(sys_bp.halted());
    EXPECT_EQ(sys_base.tohost(0), sys_bp.tohost(0));
    EXPECT_LT(cycles_bp, cycles_base);
}

TEST(Generated, AdapterExposesRuleStatsInterface)
{
    // GeneratedModel implements sim::RuleStatsModel for counter-enabled
    // models: names, fired set, and per-rule counters all line up with
    // the underlying statics.
    GeneratedModel<cuttlesim::models::collatz> m;
    sim::RuleStatsModel& rs = m;
    ASSERT_EQ(rs.num_rules(),
              (size_t)cuttlesim::models::collatz::kNumRules);
    for (int i = 0; i < 40; ++i)
        m.cycle();
    const std::vector<bool>& fired = rs.fired();
    ASSERT_EQ(fired.size(), rs.num_rules());
    size_t fired_count = 0;
    for (bool f : fired)
        fired_count += f;
    EXPECT_EQ(fired_count, 1u); // exactly one collatz rule per cycle
    uint64_t commits = 0, aborts = 0;
    for (size_t r = 0; r < rs.num_rules(); ++r) {
        EXPECT_FALSE(rs.rule_name((int)r).empty());
        commits += rs.rule_commit_counts()[r];
        aborts += rs.rule_abort_counts()[r];
    }
    EXPECT_EQ(commits, 40u);
    EXPECT_EQ(aborts, 80u);
    // Plain (non --instrument) models track no abort reasons.
    EXPECT_TRUE(rs.rule_abort_reason_counts().empty());
}

TEST(Generated, InstrumentedMsiMatchesT5AbortReasons)
{
    // The instrumented generated model and the T5 interpreter must
    // attribute every abort to the same reason, rule by rule.
    auto d = build_design("msi");
    auto engine = make_engine(*d, Tier::kT5StaticAnalysis);
    GeneratedModel<cuttlesim::models::msi_instr> m;
    sim::RuleStatsModel& rs = m;
    constexpr int kCycles = 2000;
    for (int c = 0; c < kCycles; ++c) {
        engine->cycle();
        m.cycle();
    }
    ASSERT_FALSE(rs.rule_abort_reason_counts().empty());
    auto ea = activity_by_name(*engine);
    auto ma = activity_by_name(m);
    ASSERT_FALSE(ea.empty());
    expect_same_activity(ea, ma);
    // Sanity: the MSI protocol exercises real conflicts, not just
    // guards — at least one non-guard abort must appear.
    uint64_t conflicts = 0;
    for (const auto& [name, a] : ea)
        conflicts += a.reasons[1] + a.reasons[2];
    EXPECT_GT(conflicts, 0u);
}

TEST(Generated, InstrumentedRv32iMatchesT5AbortReasons)
{
    Program prog = build_program(primes_source(100));
    auto d = build_design("rv32i");

    auto engine = make_engine(*d, Tier::kT5StaticAnalysis);
    Rv32System sys_e(*d, *engine, prog, 1);
    sys_e.run(2'000'000);
    ASSERT_TRUE(sys_e.halted());

    GeneratedModel<cuttlesim::models::rv32i_instr> m;
    Rv32System sys_m(*d, m, prog, 1);
    sys_m.run(2'000'000);
    ASSERT_TRUE(sys_m.halted());

    auto ea = activity_by_name(*engine);
    auto ma = activity_by_name(m);
    ASSERT_FALSE(ea.empty());
    expect_same_activity(ea, ma);
}

TEST(Generated, InstrumentedMsiCoverageMatchesT5)
{
    // The unified coverage contract across the engine spectrum: the
    // --instrument compiled model and the T5 interpreter must produce
    // the exact same coverage database (statements, branch outcomes,
    // rules, toggles) for the same run. take("") leaves the engine set
    // empty so the JSON dumps compare directly.
    auto d = build_design("msi");
    auto engine = make_engine(*d, Tier::kT5StaticAnalysis);
    GeneratedModel<cuttlesim::models::msi_instr> m;
    obs::CoverageCollector ce(*d, *engine);
    obs::CoverageCollector cm(*d, m);
    for (int c = 0; c < 2000; ++c) {
        engine->cycle();
        m.cycle();
        ce.sample();
        cm.sample();
    }
    obs::CoverageMap from_engine = ce.take("");
    obs::CoverageMap from_model = cm.take("");
    // Both actually collected statement data (the instrumented model
    // compiles its count arrays in).
    obs::CoverageMap::Summary s = from_model.summary();
    ASSERT_GT(s.stmt_covered, 0u);
    ASSERT_GT(s.branch_outcomes_covered, 0u);
    EXPECT_EQ(from_model.to_json().dump(2),
              from_engine.to_json().dump(2));
}

TEST(Generated, InstrumentedRv32iCoverageMatchesT5)
{
    // Same property on the pipelined core running a real program.
    Program prog = build_program(primes_source(30));
    auto d = build_design("rv32i");

    auto engine = make_engine(*d, Tier::kT5StaticAnalysis);
    Rv32System sys_e(*d, *engine, prog, 1);
    GeneratedModel<cuttlesim::models::rv32i_instr> m;
    Rv32System sys_m(*d, m, prog, 1);

    obs::CoverageCollector ce(*d, *engine);
    obs::CoverageCollector cm(*d, m);
    for (int c = 0; c < 5000 && !sys_e.halted(); ++c) {
        sys_e.run(1);
        sys_m.run(1);
        ce.sample();
        cm.sample();
    }
    ASSERT_TRUE(sys_e.halted());
    ASSERT_TRUE(sys_m.halted());
    EXPECT_EQ(cm.take("").to_json().dump(2),
              ce.take("").to_json().dump(2));
}

TEST(Generated, CommitCountersCountRuleActivity)
{
    // Gcov-style statistics come for free (case study 4).
    GeneratedModel<cuttlesim::models::collatz> m;
    for (int i = 0; i < 111; ++i)
        m.cycle();
    auto& impl = m.impl();
    uint64_t commits = 0;
    for (size_t r = 0; r < impl.kNumRules; ++r)
        commits += impl.commit_count[r];
    EXPECT_EQ(commits, 111u); // exactly one rule commits per cycle
    uint64_t aborts = 0;
    for (size_t r = 0; r < impl.kNumRules; ++r)
        aborts += impl.abort_count[r];
    EXPECT_EQ(aborts, 2u * 111u); // the two non-matching rules abort
}

TEST(Generated, CheckpointRoundtrip)
{
    // The generated-model adapter is checkpointable like the
    // interpreter engines: capture through the cuttlesim-ckpt-v1 wire
    // format, restore into a fresh instance, and the two runs stay in
    // lockstep — registers, counters, and instrumented coverage alike.
    auto d = build_design("msi");
    GeneratedModel<cuttlesim::models::msi_instr> a;
    for (int i = 0; i < 70; ++i)
        a.cycle();
    replay::Checkpoint ck = replay::Checkpoint::deserialize(
        replay::Checkpoint::capture(*d, a).serialize());

    GeneratedModel<cuttlesim::models::msi_instr> b;
    ASSERT_TRUE(ck.restore_into(*d, b));
    ASSERT_EQ(b.cycles_run(), 70u);
    for (int i = 0; i < 70; ++i) {
        a.cycle();
        b.cycle();
    }
    for (size_t r = 0; r < d->num_registers(); ++r)
        ASSERT_EQ(a.get_reg((int)r), b.get_reg((int)r))
            << "reg " << d->reg((int)r).name;
    sim::RuleStatsModel &as = a, &bs = b;
    EXPECT_EQ(as.rule_commit_counts(), bs.rule_commit_counts());
    EXPECT_EQ(as.rule_abort_counts(), bs.rule_abort_counts());
    EXPECT_EQ(as.rule_abort_reason_counts(),
              bs.rule_abort_reason_counts());
    sim::CoverageModel &ac = a, &bc = b;
    EXPECT_EQ(ac.stmt_counts(), bc.stmt_counts());
    EXPECT_EQ(ac.branch_taken_counts(), bc.branch_taken_counts());

    // State keys name the layout: the instrumented model's section
    // advertises its extra counter/coverage arrays, and a plain model
    // writes a different key (so cross-restores degrade instead of
    // misparsing each other's byte streams).
    EXPECT_NE(ck.section("engine:generated-v1+counters+reasons"
                         "+coverage"),
              nullptr);
    GeneratedModel<cuttlesim::models::collatz> plain;
    auto cd = build_design("collatz");
    replay::Checkpoint pck = replay::Checkpoint::capture(*cd, plain);
    EXPECT_NE(pck.section("engine:generated-v1+counters"), nullptr);
    GeneratedModel<cuttlesim::models::collatz> plain2;
    EXPECT_TRUE(pck.restore_into(*cd, plain2));
}
