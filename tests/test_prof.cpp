// Host span profiler tests (src/obs/prof.hpp): ProfScope nesting and
// busy accounting, idle-span exclusion, same-named thread merging, JSON
// validity of both exporters, and the structure-parity contract (the
// phase set of a sharded run must not depend on the job count).
//
// The Profiler is a process-wide singleton; every test starts with
// arm(), which resets it under the quiescence contract (no pools are
// running between tests — every parallel_for joins before returning).

#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <thread>

#include "harness/parallel.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"

using koika::obs::Json;
using koika::obs::ProfScope;
using koika::obs::Profiler;
using koika::obs::SpanKind;

namespace {

/** Fresh, enabled profiler state (singleton shared across tests). */
void
arm()
{
    Profiler& p = Profiler::instance();
    p.disable();
    p.reset();
    p.enable();
    p.set_thread_name("main");
}

} // namespace

TEST(Prof, DisabledScopesRecordNothing)
{
    Profiler& p = Profiler::instance();
    p.disable();
    p.reset();
    {
        ProfScope outer("never/recorded");
        ProfScope inner("never/nested");
    }
    Profiler::Report rep = p.report();
    EXPECT_EQ(rep.phases.count("never/recorded"), 0u);
    EXPECT_EQ(rep.phases.count("never/nested"), 0u);
    EXPECT_EQ(p.busy_seconds(), 0.0);
}

TEST(Prof, NestedScopesDepthAndBusyAccounting)
{
    arm();
    {
        ProfScope outer("outer");
        {
            ProfScope inner("inner");
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
    }
    Profiler& p = Profiler::instance();
    Profiler::Report rep = p.report();
    ASSERT_EQ(rep.phases.count("outer"), 1u);
    ASSERT_EQ(rep.phases.count("inner"), 1u);
    EXPECT_EQ(rep.phases["outer"].count, 1u);
    EXPECT_EQ(rep.phases["inner"].count, 1u);
    double outer_total = rep.phases["outer"].total_seconds;
    double inner_total = rep.phases["inner"].total_seconds;
    EXPECT_GE(outer_total, inner_total);
    EXPECT_GT(inner_total, 0.0);
    // Only the depth-0 span counts as busy — nesting never
    // double-counts utilization.
    EXPECT_DOUBLE_EQ(p.busy_seconds(), outer_total);
    EXPECT_DOUBLE_EQ(p.phase_total_seconds("outer"), outer_total);
    // The recording thread is the sole worker, named by arm().
    ASSERT_EQ(rep.workers.size(), 1u);
    EXPECT_EQ(rep.workers[0].name, "main");
    EXPECT_EQ(rep.workers[0].spans, 2u);
    EXPECT_DOUBLE_EQ(rep.workers[0].busy_seconds, outer_total);
}

TEST(Prof, IdleSpansExcludedFromPhaseTable)
{
    arm();
    {
        ProfScope wait("pool/wait", SpanKind::kIdle);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    Profiler::Report rep = Profiler::instance().report();
    EXPECT_EQ(rep.phases.count("pool/wait"), 0u)
        << "idle spans must not create phases (their presence would "
           "make the report structure depend on --jobs)";
    ASSERT_EQ(rep.workers.size(), 1u);
    EXPECT_EQ(rep.workers[0].spans, 1u);
    EXPECT_GT(rep.workers[0].wait_seconds, 0.0);
    EXPECT_EQ(Profiler::instance().busy_seconds(), 0.0);
}

TEST(Prof, EarlyCloseIsIdempotent)
{
    arm();
    ProfScope span("closed/early");
    span.close();
    span.close();
    Profiler::Report rep = Profiler::instance().report();
    ASSERT_EQ(rep.phases.count("closed/early"), 1u);
    EXPECT_EQ(rep.phases["closed/early"].count, 1u);
}

TEST(Prof, SameNamedThreadGenerationsMergeSorted)
{
    arm();
    // Two pool "generations" reusing one logical lane name, plus a
    // second distinct lane — the report must show exactly two workers
    // beyond main, sorted, with the generations folded together.
    for (int gen = 0; gen < 2; ++gen) {
        std::thread t([] {
            Profiler::instance().set_thread_name("worker-007");
            ProfScope s("gen/work");
        });
        t.join();
    }
    std::thread u([] {
        Profiler::instance().set_thread_name("worker-001");
        ProfScope s("gen/work");
    });
    u.join();

    Profiler::Report rep = Profiler::instance().report();
    ASSERT_EQ(rep.phases.count("gen/work"), 1u);
    EXPECT_EQ(rep.phases["gen/work"].count, 3u);
    int hits = 0;
    for (const Profiler::WorkerStats& w : rep.workers) {
        if (w.name == "worker-007") {
            ++hits;
            EXPECT_EQ(w.spans, 2u);
        }
    }
    EXPECT_EQ(hits, 1) << "same-named generations must merge";
    for (size_t i = 1; i < rep.workers.size(); ++i)
        EXPECT_LT(rep.workers[i - 1].name, rep.workers[i].name);
}

TEST(Prof, ReportAndTraceJsonRoundTrip)
{
    arm();
    const char* weird =
        Profiler::instance().intern("we\"ird\\phase\nname");
    {
        ProfScope s(weird);
        ProfScope t("plain/phase");
    }
    Profiler& p = Profiler::instance();

    Json rep = Json::parse(p.report().to_json().dump(2));
    const Json* schema = rep.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->as_string(), "cuttlesim-prof-v1");
    const Json* phases = rep.find("phases");
    ASSERT_NE(phases, nullptr);
    EXPECT_NE(phases->find("we\"ird\\phase\nname"), nullptr)
        << "escaped phase name lost in the report";
    const Json* pool = rep.find("pool");
    ASSERT_NE(pool, nullptr);
    const Json* jutil = pool->find("utilization");
    ASSERT_NE(jutil, nullptr);
    double util = jutil->as_double();
    EXPECT_GE(util, 0.0);
    EXPECT_LE(util, 1.0);

    Json trace = Json::parse(p.trace_json()); // throws if malformed
    const Json* events = trace.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->is_array());
    bool main_lane = false, weird_slice = false;
    for (size_t i = 0; i < events->size(); ++i) {
        const Json* name = events->at(i).find("name");
        if (name != nullptr &&
            name->as_string() == "we\"ird\\phase\nname")
            weird_slice = true;
        const Json* args = events->at(i).find("args");
        if (args != nullptr && args->find("name") != nullptr &&
            args->find("name")->as_string() == "main")
            main_lane = true;
    }
    EXPECT_TRUE(main_lane);
    EXPECT_TRUE(weird_slice);
}

TEST(Prof, ExportToMetricsRegistry)
{
    arm();
    {
        ProfScope s("export/phase");
    }
    koika::obs::MetricsRegistry reg;
    Profiler::instance().report().export_to(reg, "prof");
    std::string dump = reg.to_json().dump();
    EXPECT_NE(dump.find("prof/phase/export/phase/count"),
              std::string::npos);
    EXPECT_NE(dump.find("prof/pool/utilization"), std::string::npos);
    EXPECT_NE(dump.find("prof/wall_seconds"), std::string::npos);
}

namespace {

/** The phase key set after a sharded run at `jobs` workers. */
std::set<std::string>
phase_keys(int jobs)
{
    arm();
    koika::harness::parallel_for(8, jobs, [](uint64_t) {
        ProfScope s("trial/run");
        ProfScope nested("trial/setup");
    });
    Profiler::Report rep = Profiler::instance().report();
    std::set<std::string> keys;
    for (const auto& [name, ph] : rep.phases)
        keys.insert(name);
    return keys;
}

} // namespace

TEST(Prof, PhaseSetIsIndependentOfJobCount)
{
    std::set<std::string> serial = phase_keys(1);
    std::set<std::string> sharded = phase_keys(4);
    EXPECT_EQ(serial, sharded)
        << "report structure must be identical at any --jobs";
    // Both paths route items through the pool's per-item span; queue
    // waits are kIdle and must not have leaked in as phases.
    EXPECT_EQ(serial.count("pool/item"), 1u);
    EXPECT_EQ(serial.count("trial/run"), 1u);
    EXPECT_EQ(serial.count("pool/wait"), 0u);
}
