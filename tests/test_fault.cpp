// Fault-injection campaign tests: outcome classification on designs
// engineered to mask, propagate, or detect corrupted state; determinism
// of seeded campaigns (the byte-identical-report contract); and the
// metrics-registry export.

#include <gtest/gtest.h>

#include "designs/designs.hpp"
#include "designs/targets.hpp"
#include "fault/fault.hpp"
#include "koika/builder.hpp"
#include "koika/typecheck.hpp"
#include "sim/tiers.hpp"

using namespace koika;
using namespace koika::fault;

namespace {

/** x += 1 every cycle, unguarded: a flip drifts the count forever. */
std::unique_ptr<Design>
counter_design()
{
    auto d = std::make_unique<Design>("counter");
    Builder b(*d);
    int x = b.reg("x", 8, 0);
    d->add_rule("inc", b.write0(x, b.add(b.read0(x), b.k(8, 1))));
    d->schedule("inc");
    typecheck(*d);
    return d;
}

/** x = 5 every cycle: any corruption of x is overwritten next cycle. */
std::unique_ptr<Design>
refresh_design()
{
    auto d = std::make_unique<Design>("refresh");
    Builder b(*d);
    int x = b.reg("x", 8, 0);
    d->add_rule("set", b.write0(x, b.k(8, 5)));
    d->schedule("set");
    typecheck(*d);
    return d;
}

/** inc guarded by x < 100: corrupting x past the bound trips the
 *  guard in cycles where the golden run still commits. */
std::unique_ptr<Design>
guarded_design()
{
    auto d = std::make_unique<Design>("guarded");
    Builder b(*d);
    int x = b.reg("x", 8, 0);
    d->add_rule("inc",
                b.seq({b.guard(b.ltu(b.read0(x), b.k(8, 100))),
                       b.write0(x, b.add(b.read0(x), b.k(8, 1)))}));
    d->schedule("inc");
    typecheck(*d);
    return d;
}

TargetFactory
tier_factory(const Design& d,
             sim::Tier tier = sim::Tier::kT5StaticAnalysis)
{
    return closed_target(
        [&d, tier]() { return sim::make_engine(d, tier); });
}

} // namespace

TEST(FaultInjection, BitFlipOnFreeCounterIsSdc)
{
    auto d = counter_design();
    FaultSpec spec{.cycle = 5, .reg = 0, .bit = 3,
                   .kind = FaultKind::kBitFlip};
    InjectionRecord rec =
        run_injection(*d, tier_factory(*d), spec, 50);
    EXPECT_EQ(rec.outcome, Outcome::kSilentDataCorruption);
    EXPECT_TRUE(rec.diverged);
    EXPECT_FALSE(rec.detected);
    EXPECT_FALSE(rec.final_state_matches);
    // The flip lands after cycle 5; the next scan (after cycle 6) sees
    // the drifted counter.
    EXPECT_EQ(rec.first_divergence_cycle, 6u);
    EXPECT_EQ(rec.first_divergence_reg, 0);
    EXPECT_EQ(rec.reg_name, "x");
}

TEST(FaultInjection, OverwrittenFlipIsMasked)
{
    auto d = refresh_design();
    FaultSpec spec{.cycle = 5, .reg = 0, .bit = 1,
                   .kind = FaultKind::kBitFlip};
    InjectionRecord rec =
        run_injection(*d, tier_factory(*d), spec, 50);
    EXPECT_EQ(rec.outcome, Outcome::kMasked);
    // The corrupted value never survives into a scanned cycle.
    EXPECT_FALSE(rec.diverged);
    EXPECT_FALSE(rec.detected);
    EXPECT_TRUE(rec.final_state_matches);
}

TEST(FaultInjection, StuckAtCurrentValueIsMasked)
{
    // x is 5 (0b101) every cycle; forcing bit 0 to 1 changes nothing.
    auto d = refresh_design();
    FaultSpec spec{.cycle = 5, .reg = 0, .bit = 0,
                   .kind = FaultKind::kStuckAt1, .stuck_cycles = 4};
    InjectionRecord rec =
        run_injection(*d, tier_factory(*d), spec, 50);
    EXPECT_EQ(rec.outcome, Outcome::kMasked);
    EXPECT_FALSE(rec.diverged);
}

TEST(FaultInjection, GuardDetectsCorruptedState)
{
    // Flip x's MSB at cycle 10: x jumps to ~139, the guard (x < 100)
    // fails while the golden run still commits — excess guard abort.
    auto d = guarded_design();
    FaultSpec spec{.cycle = 10, .reg = 0, .bit = 7,
                   .kind = FaultKind::kBitFlip};
    InjectionRecord rec =
        run_injection(*d, tier_factory(*d), spec, 60);
    EXPECT_EQ(rec.outcome, Outcome::kDetected);
    EXPECT_TRUE(rec.detected);
    EXPECT_EQ(rec.detect_cycle, 11u);
    EXPECT_NE(rec.detect_detail.find("inc"), std::string::npos);
    EXPECT_NE(rec.detect_detail.find("guard"), std::string::npos);
}

TEST(FaultInjection, DetectionWorksOnEveryTier)
{
    auto d = guarded_design();
    FaultSpec spec{.cycle = 10, .reg = 0, .bit = 7,
                   .kind = FaultKind::kBitFlip};
    for (int t = 0; t < sim::kNumTiers; ++t) {
        InjectionRecord rec = run_injection(
            *d, tier_factory(*d, (sim::Tier)t), spec, 60);
        EXPECT_EQ(rec.outcome, Outcome::kDetected)
            << "tier " << sim::tier_name((sim::Tier)t);
    }
}

TEST(FaultCampaign, GenerateFaultsIsSeededAndBounded)
{
    auto d = designs::build_design("collatz");
    CampaignConfig config;
    config.seed = 123;
    config.count = 40;
    config.cycles = 200;
    auto a = generate_faults(*d, config);
    auto b = generate_faults(*d, config);
    ASSERT_EQ(a.size(), 40u);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].cycle, b[i].cycle);
        EXPECT_EQ(a[i].reg, b[i].reg);
        EXPECT_EQ(a[i].bit, b[i].bit);
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_LT(a[i].cycle, config.cycles - 1);
        EXPECT_LT(a[i].bit,
                  d->reg(a[i].reg).type->width);
    }
    config.seed = 124;
    auto c = generate_faults(*d, config);
    bool any_different = false;
    for (size_t i = 0; i < a.size(); ++i)
        any_different |= a[i].cycle != c[i].cycle ||
                         a[i].reg != c[i].reg || a[i].bit != c[i].bit;
    EXPECT_TRUE(any_different);
}

TEST(FaultCampaign, TargetRegsRestrictInjection)
{
    auto d = designs::build_design("collatz");
    CampaignConfig config;
    config.seed = 5;
    config.count = 25;
    config.cycles = 100;
    config.target_regs = {1};
    for (const FaultSpec& spec : generate_faults(*d, config))
        EXPECT_EQ(spec.reg, 1);
}

TEST(FaultCampaign, ReportIsByteIdenticalAcrossRuns)
{
    auto d = designs::build_design("collatz");
    CampaignConfig config;
    config.seed = 99;
    config.count = 15;
    config.cycles = 200;
    auto factory = tier_factory(*d, sim::Tier::kT4MergedData);
    CampaignReport r1 = run_campaign(*d, factory, config);
    CampaignReport r2 = run_campaign(*d, factory, config);
    r1.engine = r2.engine = "T4";
    EXPECT_EQ(r1.to_json().dump(2), r2.to_json().dump(2));
}

TEST(FaultCampaign, EveryInjectionIsClassified)
{
    auto d = designs::build_design("collatz");
    CampaignConfig config;
    config.seed = 99;
    config.count = 15;
    config.cycles = 200;
    CampaignReport report =
        run_campaign(*d, tier_factory(*d), config);
    ASSERT_EQ(report.injections.size(), 15u);
    EXPECT_EQ(report.masked + report.sdc + report.detected, 15u);
    for (const InjectionRecord& rec : report.injections)
        EXPECT_TRUE(rec.outcome == Outcome::kMasked ||
                    rec.outcome == Outcome::kSilentDataCorruption ||
                    rec.outcome == Outcome::kDetected);
}

TEST(FaultCampaign, CountsExportToMetricsRegistry)
{
    auto d = designs::build_design("collatz");
    CampaignConfig config;
    config.seed = 42;
    config.count = 10;
    config.cycles = 150;
    CampaignReport report =
        run_campaign(*d, tier_factory(*d), config);

    obs::MetricsRegistry registry;
    report.export_to(registry, "fault/collatz");
    EXPECT_EQ(registry.counter("fault/collatz/injections"), 10u);
    EXPECT_EQ(registry.counter("fault/collatz/outcome/masked") +
                  registry.counter("fault/collatz/outcome/sdc") +
                  registry.counter("fault/collatz/outcome/detected"),
              10u);
}

TEST(FaultCampaign, ReportJsonHasTheDocumentedSchema)
{
    auto d = designs::build_design("fir");
    CampaignConfig config;
    config.seed = 3;
    config.count = 5;
    config.cycles = 80;
    CampaignReport report =
        run_campaign(*d, tier_factory(*d), config);
    report.engine = "T5";
    obs::Json j = report.to_json();
    ASSERT_TRUE(j.is_object());
    EXPECT_EQ(j.find("design")->as_string(), "fir");
    EXPECT_EQ(j.find("engine")->as_string(), "T5");
    const obs::Json* summary = j.find("summary");
    ASSERT_NE(summary, nullptr);
    EXPECT_EQ(summary->find("injections")->as_u64(), 5u);
    const obs::Json* injections = j.find("injections");
    ASSERT_NE(injections, nullptr);
    ASSERT_TRUE(injections->is_array());
}

TEST(FaultCampaign, ShardedReportIsByteIdenticalToSerial)
{
    auto d = designs::build_design("collatz");
    CampaignConfig config;
    config.seed = 2026;
    config.count = 30;
    config.cycles = 250;
    auto factory = tier_factory(*d);

    config.jobs = 1;
    CampaignReport serial = run_campaign(*d, factory, config);
    config.jobs = 8;
    CampaignReport sharded = run_campaign(*d, factory, config);
    serial.engine = sharded.engine = "T5";

    // The whole contract: the report must not betray the job count.
    EXPECT_EQ(serial.to_json().dump(2), sharded.to_json().dump(2));

    obs::MetricsRegistry ms, mp;
    serial.export_to(ms, "fault/collatz");
    sharded.export_to(mp, "fault/collatz");
    EXPECT_EQ(ms.to_json().dump(2), mp.to_json().dump(2));
}

TEST(FaultCampaign, JobsZeroResolvesToHardwareAndStaysDeterministic)
{
    auto d = designs::build_design("collatz");
    CampaignConfig config;
    config.seed = 11;
    config.count = 12;
    config.cycles = 150;
    auto factory = tier_factory(*d);

    CampaignReport serial = run_campaign(*d, factory, config);
    config.jobs = 0; // one worker per hardware thread
    CampaignReport sharded = run_campaign(*d, factory, config);
    serial.engine = sharded.engine = "T5";
    EXPECT_EQ(serial.to_json().dump(2), sharded.to_json().dump(2));
}

// -- TrialContext: the warm-worker restore path (ROADMAP item 2 fix).
// The contract under test: a trial run against a reused, checkpoint-
// restored context produces the same bytes — records AND coverage —
// as a trial that reconstructs both targets through the factory.

namespace {

/** Fault specs exercising divergence, masking, and the past-horizon
 *  shadow lane, drawn deterministically from the campaign sampler. */
std::vector<FaultSpec>
sampled_specs(const Design& d, int count, uint64_t cycles)
{
    CampaignConfig config;
    config.seed = 97;
    config.count = count;
    config.cycles = cycles;
    return generate_faults(d, config);
}

/**
 * Forwards the bare Model interface and nothing else: no
 * RuleStatsModel, no CoverageModel, no CheckpointableModel. A
 * TrialContext built over it must come up cold and fall back to
 * factory rebuilds — byte-identically.
 */
class OpaqueModel final : public sim::Model
{
  public:
    explicit OpaqueModel(std::unique_ptr<sim::Model> inner)
        : inner_(std::move(inner))
    {
    }

    void cycle() override { inner_->cycle(); }
    Bits get_reg(int reg) const override { return inner_->get_reg(reg); }
    void set_reg(int reg, const Bits& value) override
    {
        inner_->set_reg(reg, value);
    }
    uint64_t cycles_run() const override { return inner_->cycles_run(); }
    size_t num_regs() const override { return inner_->num_regs(); }

  private:
    std::unique_ptr<sim::Model> inner_;
};

} // namespace

TEST(TrialContext, RestoreMatchesReconstructOnEveryInProcessEngine)
{
    // ref + T0..T5, on a registry design with real rule structure.
    auto d = designs::build_design("collatz");
    std::vector<FaultSpec> specs = sampled_specs(*d, 8, 120);
    std::vector<std::string> engines = {"ref"};
    for (int t = 0; t < sim::kNumTiers; ++t)
        engines.push_back("T" + std::to_string(t));
    for (const std::string& engine : engines) {
        TargetFactory factory = designs::make_target_factory(*d, engine);
        TrialContext ctx(factory);
        EXPECT_TRUE(ctx.warm()) << engine;
        for (size_t i = 0; i < specs.size(); ++i) {
            obs::CoverageMap want_cov, got_cov;
            InjectionRecord want =
                run_injection(*d, factory, specs[i], 120, &want_cov);
            InjectionRecord got =
                run_injection(*d, ctx, specs[i], 120, &got_cov);
            EXPECT_EQ(injection_to_json(i, want).dump(2),
                      injection_to_json(i, got).dump(2))
                << engine << " trial " << i;
            EXPECT_EQ(want_cov.to_json().dump(2),
                      got_cov.to_json().dump(2))
                << engine << " trial " << i << " coverage";
        }
        // The whole point: the golden/faulted pair is built once per
        // context; every later trial is restores only.
        EXPECT_EQ(ctx.rebuilds(), 2u) << engine;
        EXPECT_GT(ctx.restores(), 0u) << engine;
    }
}

TEST(TrialContext, RestoreMatchesReconstructOnCompiledEngine)
{
    // The dlopened generated model is checkpointable too; the warm
    // path must hold for it (and the model build is per-thread, so
    // this test also exercises reuse of the dlopened library).
    auto d = designs::build_design("collatz");
    std::vector<FaultSpec> specs = sampled_specs(*d, 4, 100);
    TargetFactory factory = designs::make_target_factory(*d, "compiled");
    TrialContext ctx(factory);
    EXPECT_TRUE(ctx.warm());
    for (size_t i = 0; i < specs.size(); ++i) {
        obs::CoverageMap want_cov, got_cov;
        InjectionRecord want =
            run_injection(*d, factory, specs[i], 100, &want_cov);
        InjectionRecord got =
            run_injection(*d, ctx, specs[i], 100, &got_cov);
        EXPECT_EQ(injection_to_json(i, want).dump(2),
                  injection_to_json(i, got).dump(2))
            << "trial " << i;
        EXPECT_EQ(want_cov.to_json().dump(2), got_cov.to_json().dump(2))
            << "trial " << i << " coverage";
    }
    EXPECT_EQ(ctx.rebuilds(), 2u);
    EXPECT_GT(ctx.restores(), 0u);
}

TEST(TrialContext, NonCheckpointableTargetFallsBackToRebuilds)
{
    auto d = designs::build_design("collatz");
    TargetFactory factory = closed_target([&d]() {
        return std::make_unique<OpaqueModel>(
            sim::make_engine(*d, sim::Tier::kT5StaticAnalysis));
    });
    std::vector<FaultSpec> specs = sampled_specs(*d, 5, 100);
    TrialContext ctx(factory);
    EXPECT_FALSE(ctx.warm());
    for (size_t i = 0; i < specs.size(); ++i) {
        InjectionRecord want = run_injection(*d, factory, specs[i], 100);
        InjectionRecord got = run_injection(*d, ctx, specs[i], 100);
        EXPECT_EQ(injection_to_json(i, want).dump(2),
                  injection_to_json(i, got).dump(2))
            << "trial " << i;
    }
    // Cold context: no restores ever, a rebuild per golden handout.
    EXPECT_EQ(ctx.restores(), 0u);
    EXPECT_GT(ctx.rebuilds(), specs.size());
}

TEST(TrialContext, CampaignWithEnvCheckpointsMatchesFactoryPath)
{
    // rv32i targets carry save_env/load_env peripherals; a warm context
    // must restore those too. The campaign runs the context path
    // internally — compare against a fresh serial baseline re-run.
    auto d = designs::build_design("rv32i");
    TargetFactory factory = designs::make_target_factory(*d, "T3");
    TrialContext ctx(factory);
    EXPECT_TRUE(ctx.warm());

    CampaignConfig config;
    config.seed = 19;
    config.count = 6;
    config.cycles = 120;
    CampaignReport a = run_campaign(*d, factory, config);
    CampaignReport b = run_campaign(*d, factory, config);
    a.engine = b.engine = "T3";
    EXPECT_EQ(a.to_json().dump(2), b.to_json().dump(2));
}
