// Tests for the Kôika type system: bits, enums, structs, packing layout.

#include <gtest/gtest.h>

#include "koika/types.hpp"

using namespace koika;

TEST(Types, BitsTypeInterned)
{
    EXPECT_EQ(bits_type(32).get(), bits_type(32).get());
    EXPECT_EQ(bits_type(32)->width, 32u);
    EXPECT_TRUE(bits_type(7)->is_bits());
    EXPECT_EQ(bits_type(7)->str(), "bits<7>");
}

TEST(Types, UnitIsZeroWidthBits)
{
    EXPECT_EQ(unit_type()->width, 0u);
    EXPECT_TRUE(unit_type()->is_bits());
}

TEST(Types, EnumAutoWidth)
{
    auto t = make_enum("state", {"A", "B", "C"});
    EXPECT_TRUE(t->is_enum());
    EXPECT_EQ(t->width, 2u);
    EXPECT_EQ(t->members.size(), 3u);
    EXPECT_EQ(t->member_index("B"), 1);
    EXPECT_EQ(t->members[1].value, Bits::of(2, 1));
    EXPECT_EQ(t->member_index("missing"), -1);
    EXPECT_EQ(t->str(), "enum state");
}

TEST(Types, EnumTwoMembersWidthOne)
{
    auto t = make_enum("flag", {"lo", "hi"});
    EXPECT_EQ(t->width, 1u);
}

TEST(Types, EnumExplicitEncodings)
{
    auto t = make_enum_explicit(
        "opcode", {{"load", Bits::of(7, 0x03)}, {"store", Bits::of(7, 0x23)}});
    EXPECT_EQ(t->width, 7u);
    EXPECT_EQ(t->members[1].value.to_u64(), 0x23u);
}

TEST(Types, StructLayoutFirstFieldMostSignificant)
{
    auto t = make_struct("mshr", {{"tag", bits_type(2), 0},
                                  {"addr", bits_type(32), 0},
                                  {"valid", bits_type(1), 0}});
    EXPECT_TRUE(t->is_struct());
    EXPECT_EQ(t->width, 35u);
    // valid is the last field -> LSBs.
    EXPECT_EQ(t->fields[2].offset, 0u);
    EXPECT_EQ(t->fields[1].offset, 1u);
    EXPECT_EQ(t->fields[0].offset, 33u);
    EXPECT_EQ(t->field_index("addr"), 1);
    EXPECT_EQ(t->field_index("nope"), -1);
}

TEST(Types, NestedStructWidths)
{
    auto inner = make_struct("pair", {{"x", bits_type(8), 0},
                                      {"y", bits_type(8), 0}});
    auto outer = make_struct("wrap", {{"p", inner, 0},
                                      {"flag", bits_type(1), 0}});
    EXPECT_EQ(outer->width, 17u);
    EXPECT_EQ(outer->fields[0].offset, 1u);
}

TEST(Types, SameTypeStructuralForBitsNominalForNamed)
{
    EXPECT_TRUE(same_type(bits_type(8), bits_type(8)));
    EXPECT_FALSE(same_type(bits_type(8), bits_type(9)));
    auto e1 = make_enum("e", {"a", "b"});
    auto e2 = make_enum("e", {"a", "b"});
    auto e3 = make_enum("f", {"a", "b"});
    EXPECT_TRUE(same_type(e1, e2));
    EXPECT_FALSE(same_type(e1, e3));
    // An enum is never the same as bits of equal width.
    EXPECT_FALSE(same_type(e1, bits_type(1)));
}
