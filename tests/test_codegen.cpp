// Code-generator tests: textual properties of emitted models (the
// readability and minimized-tracking claims of §3/§4.2) and full-pipeline
// differential tests that emit, compile with the system C++ compiler, run
// the binary, and compare every cycle's committed state against the
// reference interpreter.

#include <gtest/gtest.h>

#include <cstdlib>

#include <unistd.h>

#include "codegen/compile.hpp"
#include "codegen/cpp_emit.hpp"
#include "harness/random_design.hpp"
#include "interp/reference.hpp"
#include "koika/builder.hpp"
#include "koika/typecheck.hpp"

using namespace koika;
using namespace koika::codegen;
using koika::harness::random_design;
using koika::harness::RandomDesignConfig;

namespace {

std::string
workdir()
{
    // ctest runs each test in its own process, so `counter` alone does
    // not make the directory unique under `ctest -j`; add the pid.
    static int counter = 0;
    return "/tmp/cuttlesim_codegen_test_" + std::to_string(getpid()) +
           "_" + std::to_string(counter++) + ".tmp";
}

/** The paper's two-state machine with an MSHR-style struct register. */
std::unique_ptr<Design>
showcase_design()
{
    auto d = std::make_unique<Design>("showcase");
    Builder b(*d);
    auto st_t = make_enum("state", {"A", "B"});
    auto mshr_t = make_struct("mshr", {{"tag", st_t, 0},
                                       {"addr", bits_type(16), 0}});
    int st = d->add_register("st", st_t, Bits::of(1, 0));
    int x = b.reg("x", 32, 1);
    int m = d->add_register("m", mshr_t, Bits::zeroes(17));
    FunctionDef* fA =
        b.fn("fA", {{"v", bits_type(32)}}, bits_type(32),
             b.add(b.var("v"), b.k(32, 3)));
    d->add_rule(
        "rlA",
        b.seq({b.guard(b.eq(b.read0(st), b.enum_k(st_t, "A"))),
               b.write0(st, b.enum_k(st_t, "B")),
               b.let("new_x", b.call(fA, {b.read0(x)}),
                     b.write0(x, b.var("new_x")))}));
    d->add_rule(
        "rlB",
        b.seq({b.guard(b.eq(b.read0(st), b.enum_k(st_t, "B"))),
               b.write0(st, b.enum_k(st_t, "A")),
               b.write0(m, b.struct_init(mshr_t,
                                         {{"tag", b.enum_k(st_t, "B")},
                                          {"addr", b.k(16, 0xBEEF)}}))}));
    d->schedule("rlA");
    d->schedule("rlB");
    typecheck(*d);
    return d;
}

/** Emit+compile+run `cycles` cycles and diff against the reference. */
void
expect_compiled_model_matches(const Design& d, unsigned cycles)
{
    CompileResult cr = compile_model_driver(d, workdir(),
                                            reg_dump_driver(d), "-O1");
    std::string out =
        run_binary(cr.binary, std::to_string(cycles));
    auto dump = parse_reg_dump(d, out);
    ASSERT_EQ(dump.size(), (size_t)cycles);
    ReferenceSim ref(d);
    for (unsigned c = 0; c < cycles; ++c) {
        ref.cycle();
        for (size_t r = 0; r < d.num_registers(); ++r)
            ASSERT_EQ(dump[c][r], ref.reg((int)r))
                << d.name() << " cycle " << c << " register "
                << d.reg((int)r).name;
    }
}

} // namespace

TEST(CodegenText, ModelIsReadable)
{
    auto d = showcase_design();
    std::string text = emit_model(*d);
    // Enums map to C++ enum classes with symbolic members (§4.2 CS1).
    EXPECT_NE(text.find("enum class state_t"), std::string::npos);
    EXPECT_NE(text.find("state_t::A"), std::string::npos);
    // Structs map to C++ structs with named fields.
    EXPECT_NE(text.find("struct mshr_t"), std::string::npos);
    EXPECT_NE(text.find("bits<16> addr{};"), std::string::npos);
    // One function per rule, early-exit style.
    EXPECT_NE(text.find("bool rule_rlA()"), std::string::npos);
    EXPECT_NE(text.find("return false;"), std::string::npos);
    // Combinational functions survive as named C++ functions.
    EXPECT_NE(text.find("static bits<32> fA("), std::string::npos);
    // Let-bound names survive.
    EXPECT_NE(text.find("new_x"), std::string::npos);
}

TEST(CodegenText, SafeRegistersHaveNoRwset)
{
    // A design whose registers are all provably safe generates no
    // read-write-set members at all (§3.3).
    Design d("safe");
    Builder b(d);
    int x = b.reg("x", 8, 0);
    d.add_rule("inc", b.write0(x, b.add(b.read0(x), b.k(8, 1))));
    d.schedule("inc");
    typecheck(d);
    std::string text = emit_model(d);
    EXPECT_NE(text.find("// all registers are safe"), std::string::npos);
    EXPECT_EQ(text.find("rwset_t x"), std::string::npos);
    // No conflict checks anywhere in the rule.
    EXPECT_EQ(text.find("fail_inc"), std::string::npos);
}

TEST(CodegenText, UnsafeRegistersKeepChecks)
{
    Design d("unsafe");
    Builder b(d);
    int x = b.reg("x", 8, 0);
    d.add_rule("w1", b.write0(x, b.k(8, 1)));
    d.add_rule("w2", b.write0(x, b.k(8, 2)));
    d.schedule("w1");
    d.schedule("w2");
    typecheck(d);
    std::string text = emit_model(d);
    EXPECT_NE(text.find("rwset_t x"), std::string::npos);
    // w2's write must check; its failure needs no rollback (clean).
    EXPECT_NE(text.find("if (log.rwset.x.rd1 | log.rwset.x.wr0 | "
                        "log.rwset.x.wr1) return false;"),
              std::string::npos);
}

TEST(CodegenText, EarlyGuardFailsWithoutRollback)
{
    Design d("early");
    Builder b(d);
    int x = b.reg("x", 8, 0);
    int y = b.reg("y", 8, 0);
    d.add_rule("r", b.seq({b.guard(b.eq(b.read0(x), b.k(8, 0))),
                           b.write0(y, b.k(8, 1)),
                           b.guard(b.eq(b.read0(x), b.k(8, 0)))}));
    // Make y unsafe so the rule has a real footprint to roll back.
    d.add_rule("r2", b.write0(y, b.k(8, 2)));
    d.schedule("r");
    d.schedule("r2");
    typecheck(d);
    std::string text = emit_model(d);
    // First guard: pristine log, plain return.
    EXPECT_NE(text.find("return false;"), std::string::npos);
    // Second guard (after the write): must roll back via fail_r().
    EXPECT_NE(text.find("return fail_r();"), std::string::npos);
}

TEST(CodegenText, CountersEmittedByDefault)
{
    auto d = showcase_design();
    std::string text = emit_model(*d);
    EXPECT_NE(text.find("commit_count"), std::string::npos);
    EmitOptions opts;
    opts.counters = false;
    EXPECT_EQ(emit_model(*d, opts).find("commit_count"),
              std::string::npos);
}

TEST(CodegenText, ModelSlocIsReasonable)
{
    auto d = showcase_design();
    size_t sloc = model_sloc(*d);
    EXPECT_GT(sloc, 50u);
    EXPECT_LT(sloc, 400u);
}

TEST(CodegenCompile, ShowcaseMatchesReference)
{
    auto d = showcase_design();
    expect_compiled_model_matches(*d, 20);
}

TEST(CodegenCompile, ConflictingRulesMatchReference)
{
    Design d("conflicts");
    Builder b(d);
    int x = b.reg("x", 8, 0);
    int c = b.reg("c", 1, 0);
    d.add_rule("flip", b.write0(c, b.not_(b.read0(c))));
    d.add_rule("w1", b.seq({b.guard(b.read1(c)),
                            b.write0(x, b.add(b.read0(x), b.k(8, 1)))}));
    d.add_rule("w2", b.write0(x, b.add(b.read0(x), b.k(8, 16))));
    d.schedule("flip");
    d.schedule("w1");
    d.schedule("w2");
    typecheck(d);
    expect_compiled_model_matches(d, 16);
}

TEST(CodegenCompile, GoldbergFriendlyPortsMatchReference)
{
    Design d("ports");
    Builder b(d);
    int r = b.reg("r", 8, 0);
    int saw0 = b.reg("saw0", 8, 0xFF);
    d.add_rule("rl", b.seq({b.write0(r, b.k(8, 1)),
                            b.write1(r, b.k(8, 2)),
                            b.write1(saw0, b.read0(r))}));
    d.schedule("rl");
    typecheck(d);
    expect_compiled_model_matches(d, 4);
}

class CodegenRandomSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(CodegenRandomSweep, CompiledRandomDesignMatchesReference)
{
    auto d = random_design(GetParam() * 7919 + 13);
    expect_compiled_model_matches(*d, 25);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodegenRandomSweep,
                         ::testing::Range<uint64_t>(1, 7));

TEST(CodegenCompile, WideRegistersMatchReference)
{
    RandomDesignConfig cfg;
    cfg.wide_registers = true;
    auto d = random_design(424243, cfg);
    expect_compiled_model_matches(*d, 20);
}
