// Compiled-netlist emitter tests: emitted RTL models (the Verilator
// stand-in) are compiled out of process and must match the reference
// interpreter cycle by cycle on random designs — both the plain lowering
// and the optimized netlist.

#include <gtest/gtest.h>

#include <unistd.h>

#include "codegen/compile.hpp"
#include "harness/random_design.hpp"
#include "interp/reference.hpp"
#include "koika/builder.hpp"
#include "koika/typecheck.hpp"
#include "rtl/lower.hpp"
#include "rtl/optimize.hpp"
#include "rtl/rtl_emit.hpp"

using namespace koika;
using koika::harness::random_design;
using koika::harness::RandomDesignConfig;

namespace {

std::string
rtl_driver(const Design& d, const std::string& cls)
{
    std::string out =
        "#include <cstdio>\n#include <cstdlib>\n#include \"" + cls +
        ".hpp\"\n"
        "int main(int argc, char** argv) {\n"
        "    unsigned long cycles = argc > 1 ? strtoul(argv[1], 0, 10) "
        ": 10;\n"
        "    cuttlesim::models::" +
        cls +
        " m;\n"
        "    for (unsigned long c = 0; c < cycles; ++c) {\n"
        "        m.cycle();\n"
        "        for (size_t r = 0; r < m.kNumRegs; ++r) {\n"
        "            uint64_t w[8];\n"
        "            m.get_reg_words(r, w);\n"
        "            std::printf(\"%lu %zu %llx %llx %llx %llx %llx "
        "%llx %llx %llx\\n\", c, r,\n"
        "                (unsigned long long)w[0], (unsigned long "
        "long)w[1], (unsigned long long)w[2],\n"
        "                (unsigned long long)w[3], (unsigned long "
        "long)w[4], (unsigned long long)w[5],\n"
        "                (unsigned long long)w[6], (unsigned long "
        "long)w[7]);\n"
        "        }\n"
        "    }\n"
        "    return 0;\n}\n";
    (void)d;
    return out;
}

void
expect_rtl_model_matches(const Design& d, const rtl::Netlist& nl,
                         const std::string& tag, unsigned cycles)
{
    static int counter = 0;
    std::string cls = "m" + std::to_string(counter++);
    // ctest runs each test in its own process, so `counter` alone does
    // not make the directory unique under `ctest -j`; add the pid.
    std::string dir = "/tmp/cuttlesim_rtl_emit_" +
                      std::to_string(getpid()) + "_" + cls + ".tmp";
    auto cr = codegen::compile_cpp(
        dir,
        {{cls + ".hpp", rtl::emit_rtl_model(nl, cls)},
         {"main.cpp", rtl_driver(d, cls)}},
        "main.cpp", "-O1");
    std::string out =
        codegen::run_binary(cr.binary, std::to_string(cycles));
    auto dump = codegen::parse_reg_dump(d, out);
    ASSERT_EQ(dump.size(), (size_t)cycles) << tag;
    ReferenceSim ref(d);
    for (unsigned c = 0; c < cycles; ++c) {
        ref.cycle();
        for (size_t r = 0; r < d.num_registers(); ++r)
            ASSERT_EQ(dump[c][r], ref.reg((int)r))
                << tag << " cycle " << c << " register "
                << d.reg((int)r).name;
    }
}

} // namespace

TEST(RtlEmit, TextHasChunkedEvaluation)
{
    Design d("t");
    Builder b(d);
    int x = b.reg("x", 8, 0);
    d.add_rule("inc", b.write0(x, b.add(b.read0(x), b.k(8, 1))));
    d.schedule("inc");
    typecheck(d);
    std::string text = rtl::emit_rtl_model(rtl::lower(d), "t");
    EXPECT_NE(text.find("void eval_0()"), std::string::npos);
    EXPECT_NE(text.find("void cycle()"), std::string::npos);
    EXPECT_NE(text.find("get_reg_words"), std::string::npos);
    // Registers latch after evaluation.
    EXPECT_NE(text.find("r0 = n"), std::string::npos);
}

class RtlEmitRandomSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RtlEmitRandomSweep, CompiledNetlistMatchesReference)
{
    auto d = random_design(GetParam() * 104729 + 17);
    expect_rtl_model_matches(*d, rtl::lower(*d), "plain", 25);
}

TEST_P(RtlEmitRandomSweep, CompiledOptimizedNetlistMatchesReference)
{
    auto d = random_design(GetParam() * 99991 + 5);
    expect_rtl_model_matches(*d, rtl::optimize(rtl::lower(*d)),
                             "optimized", 25);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RtlEmitRandomSweep,
                         ::testing::Range<uint64_t>(1, 5));

TEST(RtlEmit, WideRegistersCompile)
{
    RandomDesignConfig cfg;
    cfg.wide_registers = true;
    auto d = random_design(777777, cfg);
    expect_rtl_model_matches(*d, rtl::lower(*d), "wide", 20);
}
