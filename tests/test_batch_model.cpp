// The generated batched companion (<design>_batch<kLanes>, emitted by
// cpp_emit when EmitOptions::batch is on): lockstep identity against
// independent scalar models, GPU-warp-style lane masking (a masked
// lane's state freezes while the others advance), and the SoA register
// accessors.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "collatz.model.hpp"

using cuttlesim::models::collatz;

namespace {

constexpr std::size_t kLanes = 4;
using batch_t = cuttlesim::models::collatz_batch<kLanes>;

// get_reg_words fills an 8-word buffer (the harness ABI); word 0 is
// enough for every collatz register.
uint64_t
lane_reg(batch_t& b, std::size_t lane, std::size_t r)
{
    uint64_t w[8] = {};
    b.get_reg_words(lane, r, w);
    return w[0];
}

uint64_t
scalar_reg(const collatz& m, std::size_t r)
{
    uint64_t w[8] = {};
    m.get_reg_words(r, w);
    return w[0];
}

/** Seed lane `l` (and its scalar reference) with a distinct x so the
 *  lanes genuinely diverge from each other. Register 0 is x. */
void
seed(batch_t& b, std::array<collatz, kLanes>& scalars)
{
    for (std::size_t l = 0; l < kLanes; ++l) {
        uint64_t w[8] = {27 + 10 * (uint64_t)l};
        b.set_reg_words(l, 0, w);
        scalars[l].set_reg_words(0, w);
    }
}

} // namespace

TEST(BatchModel, LanesTrackIndependentScalarModels)
{
    batch_t b;
    std::array<collatz, kLanes> scalars{};
    seed(b, scalars);
    for (int c = 0; c < 64; ++c) {
        b.cycle();
        for (std::size_t l = 0; l < kLanes; ++l) {
            scalars[l].cycle();
            for (std::size_t r = 0; r < collatz::kNumRegs; ++r)
                EXPECT_EQ(lane_reg(b, l, r), scalar_reg(scalars[l], r))
                    << "cycle " << c << " lane " << l << " reg " << r;
        }
    }
}

TEST(BatchModel, MaskedLaneFreezesWhileOthersAdvance)
{
    batch_t b;
    std::array<collatz, kLanes> scalars{};
    seed(b, scalars);
    for (int c = 0; c < 10; ++c)
        b.cycle();

    // Mask lane 1: its registers must not move again.
    b.set_active(1, false);
    EXPECT_EQ(b.active_lanes(), kLanes - 1);
    std::array<uint64_t, collatz::kNumRegs> frozen;
    for (std::size_t r = 0; r < collatz::kNumRegs; ++r)
        frozen[r] = lane_reg(b, 1, r);

    for (int c = 0; c < 20; ++c)
        b.cycle();
    for (std::size_t r = 0; r < collatz::kNumRegs; ++r)
        EXPECT_EQ(lane_reg(b, 1, r), frozen[r]) << "reg " << r;
    EXPECT_EQ(b.lane_cycles(1), 10u);
    EXPECT_EQ(b.lane_cycles(0), 30u);

    // The surviving lanes still track their scalar references.
    for (int c = 0; c < 30; ++c)
        for (std::size_t l = 0; l < kLanes; ++l)
            if (l != 1)
                scalars[l].cycle();
    for (std::size_t l = 0; l < kLanes; ++l) {
        if (l == 1)
            continue;
        for (std::size_t r = 0; r < collatz::kNumRegs; ++r)
            EXPECT_EQ(lane_reg(b, l, r), scalar_reg(scalars[l], r))
                << "lane " << l << " reg " << r;
    }

    // Unmasking resumes from the frozen state, not from reset.
    b.set_active(1, true);
    b.cycle();
    for (int c = 0; c < 11; ++c)
        scalars[1].cycle();
    // lane 1 ran 10 cycles, froze for 30, then ran 1 more = 11 total;
    // the other lanes took one extra cycle with it.
    for (std::size_t r = 0; r < collatz::kNumRegs; ++r)
        EXPECT_EQ(lane_reg(b, 1, r), scalar_reg(scalars[1], r))
            << "reg " << r;
    EXPECT_EQ(b.lane_cycles(1), 11u);
}

TEST(BatchModel, AllLanesMaskedIsANoOp)
{
    batch_t b;
    for (std::size_t l = 0; l < kLanes; ++l)
        b.set_active(l, false);
    EXPECT_EQ(b.active_lanes(), 0u);
    std::array<uint64_t, kLanes> x_before;
    for (std::size_t l = 0; l < kLanes; ++l)
        x_before[l] = lane_reg(b, l, 0);
    for (int c = 0; c < 5; ++c)
        b.cycle();
    for (std::size_t l = 0; l < kLanes; ++l) {
        EXPECT_EQ(lane_reg(b, l, 0), x_before[l]);
        EXPECT_EQ(b.lane_cycles(l), 0u);
    }
}

TEST(BatchModel, CountersAggregateAcrossLanes)
{
    // The shared core accumulates per-rule counters and the cycle
    // count over every active lane: batch-aggregate statistics.
    batch_t b;
    std::array<collatz, kLanes> scalars{};
    seed(b, scalars);
    const int C = 16;
    for (int c = 0; c < C; ++c)
        b.cycle();
    EXPECT_EQ(b.core().cycles, (uint64_t)kLanes * C);
    uint64_t activity = 0;
    for (std::size_t r = 0; r < collatz::kNumRules; ++r)
        activity += b.core().commit_count[r] + b.core().abort_count[r];
    EXPECT_EQ(activity, (uint64_t)kLanes * C * collatz::kNumRules);
}
