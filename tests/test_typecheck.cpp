// Typechecker tests: acceptance of well-typed designs, rejection of
// ill-typed ones, slot assignment, function purity, tree-shape checks.

#include <gtest/gtest.h>

#include "koika/builder.hpp"
#include "koika/typecheck.hpp"

using namespace koika;

namespace {

/** Build a one-rule design around `body` and typecheck it. */
void
check_rule(Design& d, Action* body)
{
    d.add_rule("r", body);
    d.schedule("r");
    typecheck(d);
}

} // namespace

TEST(Typecheck, SimpleRuleTypes)
{
    Design d("t");
    Builder b(d);
    int x = b.reg("x", 8, 3);
    Action* body = b.write0(x, b.add(b.read0(x), b.k(8, 1)));
    check_rule(d, body);
    EXPECT_TRUE(d.typechecked);
    EXPECT_EQ(body->type->width, 0u);
    EXPECT_EQ(body->a0->type->width, 8u);
}

TEST(Typecheck, WidthMismatchRejected)
{
    Design d("t");
    Builder b(d);
    int x = b.reg("x", 8);
    EXPECT_THROW(check_rule(d, b.write0(x, b.k(9, 0))), FatalError);
}

TEST(Typecheck, BinopWidthMismatchRejected)
{
    Design d("t");
    Builder b(d);
    int x = b.reg("x", 8);
    EXPECT_THROW(check_rule(d, b.write0(x, b.add(b.read0(x), b.k(4, 1)))),
                 FatalError);
}

TEST(Typecheck, IfConditionMustBeOneBit)
{
    Design d("t");
    Builder b(d);
    int x = b.reg("x", 8);
    EXPECT_THROW(
        check_rule(d, b.if_(b.k(2, 1), b.write0(x, b.k(8, 0)), b.unit())),
        FatalError);
}

TEST(Typecheck, IfBranchesMustAgree)
{
    Design d("t");
    Builder b(d);
    int x = b.reg("x", 8);
    Action* body = b.write0(x, b.if_(b.k(1, 1), b.k(8, 1), b.k(7, 1)));
    EXPECT_THROW(check_rule(d, body), FatalError);
}

TEST(Typecheck, UnboundVariableRejected)
{
    Design d("t");
    Builder b(d);
    int x = b.reg("x", 8);
    EXPECT_THROW(check_rule(d, b.write0(x, b.var("ghost"))), FatalError);
}

TEST(Typecheck, LetScopingAndShadowing)
{
    Design d("t");
    Builder b(d);
    int x = b.reg("x", 8);
    // let v := 1 in (let v := v + 1 in x.wr0(v))
    Action* body =
        b.let("v", b.k(8, 1),
              b.let("v", b.add(b.var("v"), b.k(8, 1)),
                    b.write0(x, b.var("v"))));
    check_rule(d, body);
    EXPECT_EQ(d.rule(0).nslots, 2);
}

TEST(Typecheck, VariableOutOfScopeAfterLet)
{
    Design d("t");
    Builder b(d);
    int x = b.reg("x", 8);
    // (let v := 1 in v); x.wr0(v)  -- second v is out of scope.
    Action* body = b.seq({b.let("v", b.k(8, 1), b.var("v")),
                          b.write0(x, b.var("v"))});
    EXPECT_THROW(check_rule(d, body), FatalError);
}

TEST(Typecheck, AssignTypeMustMatch)
{
    Design d("t");
    Builder b(d);
    b.reg("x", 8);
    Action* body = b.let("v", b.k(8, 1), b.assign("v", b.k(9, 1)));
    EXPECT_THROW(check_rule(d, body), FatalError);
}

TEST(Typecheck, GuardMustBeOneBit)
{
    Design d("t");
    Builder b(d);
    b.reg("x", 8);
    EXPECT_THROW(check_rule(d, b.guard(b.k(8, 1))), FatalError);
}

TEST(Typecheck, EnumEqualityOkBitsEnumEqualityRejected)
{
    Design d("t");
    Builder b(d);
    auto st = make_enum("state", {"A", "B"});
    int s = d.add_register("s", st, Bits::of(1, 0));
    Action* ok = b.guard(b.eq(b.read0(s), b.enum_k(st, "A")));
    d.add_rule("ok", ok);
    d.schedule("ok");
    typecheck(d);

    Design d2("t2");
    Builder b2(d2);
    int s2 = d2.add_register("s", st, Bits::of(1, 0));
    Action* bad = b2.guard(b2.eq(b2.read0(s2), b2.k(1, 0)));
    d2.add_rule("bad", bad);
    d2.schedule("bad");
    EXPECT_THROW(typecheck(d2), FatalError);
}

TEST(Typecheck, StructFieldAccess)
{
    Design d("t");
    Builder b(d);
    auto t = make_struct("s", {{"hi", bits_type(8), 0},
                               {"lo", bits_type(4), 0}});
    int r = d.add_register("sr", t, Bits::zeroes(12));
    int out = b.reg("out", 8);
    check_rule(d, b.write0(out, b.get(b.read0(r), "hi")));
    EXPECT_TRUE(d.typechecked);
}

TEST(Typecheck, UnknownFieldRejected)
{
    Design d("t");
    Builder b(d);
    auto t = make_struct("s", {{"hi", bits_type(8), 0}});
    int r = d.add_register("sr", t, Bits::zeroes(8));
    int out = b.reg("out", 8);
    EXPECT_THROW(check_rule(d, b.write0(out, b.get(b.read0(r), "xx"))),
                 FatalError);
}

TEST(Typecheck, SubstFieldTypeChecked)
{
    Design d("t");
    Builder b(d);
    auto t = make_struct("s", {{"hi", bits_type(8), 0}});
    int r = d.add_register("sr", t, Bits::zeroes(8));
    EXPECT_THROW(
        check_rule(d, b.write0(r, b.subst(b.read0(r), "hi", b.k(9, 0)))),
        FatalError);
}

TEST(Typecheck, SliceOutOfRangeRejected)
{
    Design d("t");
    Builder b(d);
    int x = b.reg("x", 8);
    int out = b.reg("out", 4);
    EXPECT_THROW(check_rule(d, b.write0(out, b.slice(b.read0(x), 6, 4))),
                 FatalError);
}

TEST(Typecheck, FunctionsMustBePure)
{
    Design d("t");
    Builder b(d);
    int x = b.reg("x", 8);
    FunctionDef* f =
        b.fn("bad", {{"a", bits_type(8)}}, bits_type(8), b.read0(x));
    (void)f;
    d.add_rule("r", b.write0(x, b.call(f, {b.k(8, 0)})));
    d.schedule("r");
    EXPECT_THROW(typecheck(d), FatalError);
}

TEST(Typecheck, FunctionCallArityAndTypes)
{
    Design d("t");
    Builder b(d);
    int x = b.reg("x", 8);
    FunctionDef* f = b.fn("inc", {{"a", bits_type(8)}}, bits_type(8),
                          b.add(b.var("a"), b.k(8, 1)));
    d.add_rule("r", b.write0(x, b.call(f, {b.read0(x)})));
    d.schedule("r");
    typecheck(d);
    EXPECT_EQ(f->nslots, 1);

    Design d2("t2");
    Builder b2(d2);
    int x2 = b2.reg("x", 8);
    FunctionDef* f2 = b2.fn("inc", {{"a", bits_type(8)}}, bits_type(8),
                            b2.add(b2.var("a"), b2.k(8, 1)));
    d2.add_rule("r", b2.write0(x2, b2.call(f2, {b2.k(4, 0)})));
    d2.schedule("r");
    EXPECT_THROW(typecheck(d2), FatalError);
}

TEST(Typecheck, FunctionReturnTypeChecked)
{
    Design d("t");
    Builder b(d);
    b.reg("x", 8);
    b.fn("bad", {}, bits_type(8), b.k(4, 0));
    d.add_rule("r", b.k(0, 0));
    d.schedule("r");
    EXPECT_THROW(typecheck(d), FatalError);
}

TEST(Typecheck, SharedSubtreeRejected)
{
    Design d("t");
    Builder b(d);
    int x = b.reg("x", 8);
    Action* e = b.read0(x);
    // The same node used twice: must be rejected.
    EXPECT_THROW(check_rule(d, b.write0(x, b.add(e, e))), FatalError);
}

TEST(Typecheck, RuleScheduledTwiceRejected)
{
    Design d("t");
    Builder b(d);
    int x = b.reg("x", 1);
    int r = d.add_rule("flip", b.write0(x, b.not_(b.read0(x))));
    d.schedule(r);
    d.schedule(r);
    EXPECT_THROW(typecheck(d), FatalError);
}

TEST(TypecheckDiagnostics, ErrorsNameTheOffendingRule)
{
    Design d("bigdesign");
    Builder b(d);
    int x = b.reg("x", 8);
    d.add_rule("fine", b.write0(x, b.k(8, 1)));
    d.add_rule("broken", b.write0(x, b.var("ghost")));
    d.schedule("fine");
    d.schedule("broken");
    try {
        typecheck(d);
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        // "unbound variable 'ghost'" alone is useless against a
        // thousand-rule design: the rule and design must be named.
        EXPECT_NE(std::string(e.what()).find("in rule 'broken'"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("ghost"),
                  std::string::npos);
        EXPECT_EQ(e.diagnostic().phase, "typecheck");
        EXPECT_EQ(e.diagnostic().design, "bigdesign");
    }
}

TEST(TypecheckDiagnostics, ErrorsNameTheOffendingFunction)
{
    Design d("t");
    Builder b(d);
    b.fn("truncating", {}, bits_type(8), b.k(4, 0));
    d.add_rule("r", b.k(0, 0));
    d.schedule("r");
    try {
        typecheck(d);
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        EXPECT_NE(
            std::string(e.what()).find("in function 'truncating'"),
            std::string::npos);
    }
}

TEST(TypecheckDiagnostics, NullActionIsAnErrorNotACrash)
{
    // A hand-built AST with a null subtree must produce a diagnostic,
    // not dereference the null pointer.
    Design d("t");
    Builder b(d);
    Action* body = b.seq({b.guard(b.k(1, 1)), b.guard(b.k(1, 1))});
    body->a1 = nullptr;
    d.add_rule("r", body);
    d.schedule("r");
    try {
        typecheck(d);
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("null action"),
                  std::string::npos);
    }
}

TEST(TypecheckDiagnostics, InvalidActionKindIsAnErrorNotAnAbort)
{
    // An out-of-range kind field (corrupted or hand-built AST) used to
    // hit a panic() that aborts the process; it must report instead.
    Design d("t");
    Builder b(d);
    int x = b.reg("x", 8);
    Action* body = b.write0(x, b.k(8, 1));
    body->a0->kind = (ActionKind)99;
    d.add_rule("r", body);
    d.schedule("r");
    try {
        typecheck(d);
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("invalid kind"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("in rule 'r'"),
                  std::string::npos);
    }
}

TEST(Typecheck, NestedCallFramesSized)
{
    Design d("t");
    Builder b(d);
    int x = b.reg("x", 8);
    FunctionDef* inc = b.fn("inc", {{"a", bits_type(8)}}, bits_type(8),
                            b.add(b.var("a"), b.k(8, 1)));
    FunctionDef* inc2 = b.fn("inc2", {{"a", bits_type(8)}}, bits_type(8),
                             b.call(inc, {b.call(inc, {b.var("a")})}));
    d.add_rule("r", b.write0(x, b.call(inc2, {b.read0(x)})));
    d.schedule("r");
    typecheck(d);
    EXPECT_GE(inc2->nslots, 1);
}
