// Harness tooling tests: symbolic value formatting, Gcov-style coverage
// reports, the scripted debugger (break-on-fail, reverse watchpoints),
// and the VCD waveform writer.

#include <gtest/gtest.h>

#include <sstream>

#include "designs/designs.hpp"
#include "designs/msi.hpp"
#include "harness/coverage.hpp"
#include "harness/debug.hpp"
#include "harness/vcd.hpp"
#include "interp/reference.hpp"
#include "koika/builder.hpp"
#include "koika/typecheck.hpp"

using namespace koika;
using namespace koika::harness;

TEST(FormatValue, EnumsPrintSymbolically)
{
    auto t = make_enum("state", {"A", "B"});
    EXPECT_EQ(format_value(t, Bits::of(1, 0)), "state::A");
    EXPECT_EQ(format_value(t, Bits::of(1, 1)), "state::B");
}

TEST(FormatValue, StructsPrintFieldwise)
{
    auto st = make_enum("msi", {"I", "S", "M"});
    auto t = make_struct("mshr", {{"tag", st, 0},
                                  {"addr", bits_type(8), 0}});
    std::string s = format_value(t, Bits::of(10, (2u << 8) | 0x42));
    EXPECT_EQ(s, "mshr{tag = msi::M, addr = 8'b01000010}");
}

TEST(FormatValue, UnknownEnumValueFallsBack)
{
    auto t = make_enum_explicit("e", {{"only", Bits::of(4, 3)}});
    EXPECT_NE(format_value(t, Bits::of(4, 9)).find("(e)"),
              std::string::npos);
}

TEST(Coverage, CountsMatchRuleActivity)
{
    // collatz: exactly one rule body executes per cycle; guards of the
    // other rules still evaluate (that is what early exit means).
    auto d = designs::build_collatz();
    ReferenceSim sim(*d);
    sim.enable_coverage();
    for (int i = 0; i < 111; ++i)
        sim.cycle();
    std::string report = coverage_report(*d, sim.coverage());
    // Every cycle evaluates every rule's guard once.
    EXPECT_NE(report.find("rule step_even"), std::string::npos);
    EXPECT_NE(report.find("rule reload"), std::string::npos);
    // x == 1 never happened for the first 111 cycles, so the reload
    // rule's write never executed: its line shows 0.
    std::string reload = coverage_report_rule(
        *d, d->rule_index("reload"), sim.coverage());
    EXPECT_NE(reload.find("         0: "), std::string::npos);
}

TEST(Coverage, BranchCountsSplit)
{
    // A 50/50 branch: then/else counts must sum to the if count.
    Design d("t");
    Builder b(d);
    int c = b.reg("c", 1, 0);
    int x = b.reg("x", 8, 0);
    Action* then_w = b.write0(x, b.add(b.read0(x), b.k(8, 1)));
    Action* else_w = b.write0(x, b.sub(b.read0(x), b.k(8, 1)));
    int then_id = then_w->id, else_id = else_w->id;
    d.add_rule("flip", b.write0(c, b.not_(b.read0(c))));
    d.add_rule("r", b.if_(b.read1(c), then_w, else_w));
    d.schedule("flip");
    d.schedule("r");
    typecheck(d);
    ReferenceSim sim(d);
    sim.enable_coverage();
    for (int i = 0; i < 100; ++i)
        sim.cycle();
    EXPECT_EQ(sim.coverage()[(size_t)then_id], 50u);
    EXPECT_EQ(sim.coverage()[(size_t)else_id], 50u);
}

TEST(Coverage, AnnotatedListingGoldenText)
{
    // The exact Gcov-style rendering, from both count sources: raw
    // interpreter node counts and a CoverageMap harvested from a tier
    // engine. The `else` line is the one place they differ internally
    // (raw counts read the else-arm node, the map reads the branch's
    // not-taken count) — the rendered text must still be identical.
    Design d("probe");
    Builder b(d);
    int c = b.reg("c", 1, 1);
    int x = b.reg("x", 8, 0);
    int y = b.reg("y", 8, 0);
    Action* body = b.seq({
        b.let("t", b.add(b.read0(x), b.k(8, 1)),
              b.write0(x, b.var("t"))),
        b.if_(b.read0(c), b.write0(y, b.k(8, 7)),
              b.write0(y, b.k(8, 9))),
        b.guard(b.read0(c)),
    });
    d.add_rule("r", body);
    d.schedule("r");
    typecheck(d);

    const std::string golden =
        "rule r:\n"
        "        10:     let t := (x.rd0() + 8'b00000001) in\n"
        "        10:     x.wr0(t)\n"
        "        10:     if (c.rd0()) {\n"
        "        10:         y.wr0(8'b00000111)\n"
        "         0:     } else {\n"
        "         0:         y.wr0(8'b00001001)\n"
        "        10:     }\n"
        "        10:     guard(c.rd0())\n"
        "\n";

    ReferenceSim ref(d);
    ref.enable_coverage();
    for (int i = 0; i < 10; ++i)
        ref.cycle();
    EXPECT_EQ(coverage_report(d, ref.coverage()), golden);

    auto e = sim::make_engine(d, sim::Tier::kT5StaticAnalysis);
    obs::CoverageCollector collector(d, *e);
    for (int i = 0; i < 10; ++i) {
        e->cycle();
        collector.sample();
    }
    EXPECT_EQ(coverage_report(d, collector.take("T5")), golden);
}

TEST(Coverage, NodeCountOutOfRangeIsZero)
{
    // Counts vectors can be shorter than the node table (coverage off,
    // or a database from a smaller shape): out-of-range reads are 0,
    // never UB — the listing renders with zeros instead of crashing.
    auto d = designs::build_collatz();
    std::vector<uint64_t> empty;
    EXPECT_EQ(node_count(empty, d->rule(0).body), 0u);
    EXPECT_EQ(node_count(empty, nullptr), 0u);
    std::string report = coverage_report(*d, empty);
    EXPECT_NE(report.find("         0: "), std::string::npos);
    EXPECT_EQ(report.find("1:"), std::string::npos);
}

TEST(Debugger, BreakOnAbortAndCommit)
{
    auto d = designs::build_collatz();
    auto e = sim::make_engine(*d, sim::Tier::kT4MergedData);
    Debugger dbg(*d, *e);
    // collatz(27): first even step happens at step 2 (27 -> 82 -> 41).
    uint64_t cycles = dbg.break_on_commit("step_even", 1000);
    EXPECT_EQ(cycles, 2u);
    // reload aborts on the very first cycle (x != 1).
    auto d2 = designs::build_collatz();
    auto e2 = sim::make_engine(*d2, sim::Tier::kT4MergedData);
    Debugger dbg2(*d2, *e2);
    EXPECT_EQ(dbg2.break_on_abort("reload", 1000), 1u);
}

TEST(Debugger, SymbolicRegisterPrinting)
{
    auto d = designs::build_msi({});
    auto e = sim::make_engine(*d, sim::Tier::kT4MergedData);
    Debugger dbg(*d, *e);
    dbg.step();
    // MSHR tags print with their enum names, like gdb on the C++ model.
    std::string s = dbg.reg_str("l1_0_mshr");
    EXPECT_TRUE(s == "mshr_tag::Ready" || s == "mshr_tag::SendFillReq" ||
                s == "mshr_tag::WaitFillResp")
        << s;
}

TEST(Debugger, ReverseWatchpointFindsLastWrite)
{
    auto d = designs::build_collatz();
    auto e = sim::make_engine(*d, sim::Tier::kT4MergedData);
    Debugger dbg(*d, *e);
    for (int i = 0; i < 50; ++i)
        dbg.step();
    // x changes every cycle, so its last change is 0 cycles ago.
    LastChange x_change = dbg.last_change("x");
    EXPECT_EQ(x_change.status, LastChange::kFound);
    EXPECT_EQ(x_change.ago, 0u);
    // The LFSR has not changed yet (no reload in the first 50 steps of
    // the 27 trajectory); the whole run is recorded, so the debugger
    // can say "never changed" rather than "unknown".
    EXPECT_EQ(dbg.last_change("lfsr").status, LastChange::kNeverChanged);
    // Step history: exactly one rule fired last cycle.
    EXPECT_EQ(dbg.fired_rules_ago(0).size(), 1u);
    // Value inspection in the past matches re-simulation.
    auto e2 = sim::make_engine(*d, sim::Tier::kT4MergedData);
    for (int i = 0; i < 41; ++i)
        e2->cycle();
    EXPECT_EQ(dbg.reg_str_ago("x", 9),
              format_value(d->reg(d->reg_index("x")).type,
                           e2->get_reg(d->reg_index("x"))));
}

TEST(Vcd, EmitsHeaderAndChanges)
{
    auto d = designs::build_collatz();
    auto e = sim::make_engine(*d, sim::Tier::kT5StaticAnalysis);
    std::ostringstream os;
    VcdWriter vcd(*d, os);
    for (int i = 0; i < 5; ++i) {
        e->cycle();
        vcd.sample(*e);
    }
    std::string text = os.str();
    EXPECT_NE(text.find("$var wire 32"), std::string::npos);
    EXPECT_NE(text.find("$enddefinitions"), std::string::npos);
    EXPECT_NE(text.find("#0"), std::string::npos);
    EXPECT_NE(text.find("#4"), std::string::npos);
    // x = 82 after the first cycle (27 -> 82).
    EXPECT_NE(text.find("b00000000000000000000000001010010"),
              std::string::npos);
}

TEST(Vcd, UnchangedSignalsNotRedumped)
{
    auto d = designs::build_collatz();
    auto e = sim::make_engine(*d, sim::Tier::kT5StaticAnalysis);
    std::ostringstream os;
    VcdWriter vcd(*d, os);
    for (int i = 0; i < 10; ++i) {
        e->cycle();
        vcd.sample(*e);
    }
    // The lfsr never changes in this window; it should appear once (in
    // the first full dump) and never again.
    std::string text = os.str();
    size_t first = text.find("b1010110011100001");
    ASSERT_NE(first, std::string::npos);
    EXPECT_EQ(text.find("b1010110011100001", first + 1),
              std::string::npos);
}
