// Hardened-pipeline tests: the run_command watchdog (status decoding,
// timeouts, process-group kills), the transient-only retry policy, and
// the structured Diagnostics carried by FatalError when compilation or
// a generated binary fails.

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>

#include <sys/stat.h>
#include <unistd.h>
#include <utime.h>

#include "base/error.hpp"
#include "codegen/compile.hpp"

using namespace koika;
using namespace koika::codegen;

namespace {

std::string
workdir()
{
    static int counter = 0;
    return "/tmp/cuttlesim_compile_test_" + std::to_string(getpid()) +
           "_" + std::to_string(counter++) + ".tmp";
}

double
seconds_since(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

TEST(RunCommand, CapturesStdoutAndStderr)
{
    RunResult r = run_command("echo out; echo err >&2");
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_NE(r.output.find("out"), std::string::npos);
    EXPECT_NE(r.output.find("err"), std::string::npos);
}

TEST(RunCommand, DecodesExitCode)
{
    RunResult r = run_command("exit 3");
    EXPECT_TRUE(r.exited());
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.exit_code, 3);
    EXPECT_EQ(r.term_signal, 0);
    EXPECT_FALSE(r.timed_out);
    EXPECT_EQ(r.describe(), "exit code 3");
}

TEST(RunCommand, DecodesSignalDeath)
{
    // A SIGSEGV death must report the signal, never a fake exit code.
    RunResult r = run_command("kill -SEGV $$");
    EXPECT_FALSE(r.exited());
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.term_signal, SIGSEGV);
    EXPECT_EQ(r.exit_code, -1);
    EXPECT_NE(r.describe().find("killed by signal"), std::string::npos);
}

TEST(RunCommand, WatchdogKillsRunawayCommand)
{
    RunOptions opts;
    opts.timeout_seconds = 0.5;
    auto start = std::chrono::steady_clock::now();
    RunResult r = run_command("sleep 30", opts);
    double elapsed = seconds_since(start);
    EXPECT_TRUE(r.timed_out);
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.describe().find("killed by watchdog"),
              std::string::npos);
    // Far below the command's own 30s: the watchdog did the killing.
    EXPECT_LT(elapsed, 10.0);
}

TEST(RunCommand, WatchdogKillsWholeProcessGroup)
{
    // The shell spawns a grandchild holding the pipe's write end; if
    // only the shell were killed, the drain loop would hang for the
    // grandchild's full 30s sleep.
    RunOptions opts;
    opts.timeout_seconds = 0.5;
    auto start = std::chrono::steady_clock::now();
    RunResult r = run_command("sh -c 'sleep 30' & wait", opts);
    double elapsed = seconds_since(start);
    EXPECT_TRUE(r.timed_out);
    EXPECT_LT(elapsed, 10.0);
}

TEST(RunCommand, RetriesTransientSignalDeath)
{
    // First attempt kills itself; the retry finds the marker and
    // succeeds — the transient-failure path (OOM-kill, flaky box).
    std::string marker = workdir();
    RunOptions opts;
    opts.retries = 1;
    opts.backoff_seconds = 0.01;
    RunResult r = run_command("if [ -e " + marker +
                                  " ]; then echo recovered; "
                                  "else touch " +
                                  marker + "; kill -KILL $$; fi",
                              opts);
    unlink(marker.c_str());
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.attempts, 2);
    EXPECT_NE(r.output.find("recovered"), std::string::npos);
}

TEST(RunCommand, NeverRetriesDeterministicExit)
{
    // A nonzero exit is deterministic; retrying it only wastes time.
    RunOptions opts;
    opts.retries = 2;
    RunResult r = run_command("exit 1", opts);
    EXPECT_EQ(r.attempts, 1);
    EXPECT_EQ(r.exit_code, 1);
}

TEST(CompileCpp, BadFlagsThrowDiagnosticWithCompilerOutput)
{
    try {
        compile_cpp(workdir(), {{"main.cpp", "int main() { return 0; }"}},
                    "main.cpp", "-fno-such-flag-xyz", {.retries = 0});
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        EXPECT_EQ(e.diagnostic().phase, "compile");
        // The failing command and the compiler's own complaint both
        // travel with the error.
        EXPECT_NE(e.diagnostic().command.find("-fno-such-flag-xyz"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("-fno-such-flag-xyz"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("exit code"),
                  std::string::npos);
    }
}

TEST(CompileCpp, CompilesAndRunsTrivialProgram)
{
    CompileResult cr = compile_cpp(
        workdir(),
        {{"main.cpp",
          "#include <cstdio>\nint main() { std::puts(\"hi\"); }"}},
        "main.cpp", "-O0");
    EXPECT_EQ(cr.attempts, 1);
    std::string out = run_binary(cr.binary, "");
    EXPECT_NE(out.find("hi"), std::string::npos);
}

TEST(RunBinary, InfiniteLoopIsKilledWithinTimeout)
{
    CompileResult cr = compile_cpp(
        workdir(), {{"main.cpp", "int main() { for (;;) {} }"}},
        "main.cpp", "-O0");
    RunOptions opts;
    opts.timeout_seconds = 0.5;
    auto start = std::chrono::steady_clock::now();
    try {
        run_binary(cr.binary, "", opts);
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("timed out"),
                  std::string::npos);
        EXPECT_EQ(e.diagnostic().phase, "run");
    }
    EXPECT_LT(seconds_since(start), 10.0);
}

TEST(RunBinary, CrashReportsSignalNotExitCode)
{
    CompileResult cr = compile_cpp(
        workdir(),
        {{"main.cpp", "int main() { __builtin_trap(); }"}},
        "main.cpp", "-O0");
    try {
        run_binary(cr.binary, "");
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("killed by signal"),
                  std::string::npos);
    }
}

// -- Content-addressed compiled-model cache ----------------------------

#include <fstream>
#include <sstream>

namespace {

std::string
read_whole_file(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

CompileOptions
cached_opts(const std::string& cache_dir)
{
    CompileOptions opts;
    opts.cache.dir = cache_dir;
    return opts;
}

const std::vector<std::pair<std::string, std::string>> kHello = {
    {"main.cpp",
     "#include <cstdio>\nint main() { std::puts(\"cached hi\"); }"}};

} // namespace

TEST(CompileCache, SecondIdenticalCompileHitsAndReproducesTheBinary)
{
    std::string cache = workdir();
    uint64_t hits0 = compile_metrics().counter("compile.cache_hits");
    uint64_t ext0 =
        compile_metrics().counter("compile.external_compiles");

    CompileResult miss =
        compile_cpp(workdir(), kHello, "main.cpp", "-O0",
                    cached_opts(cache));
    EXPECT_FALSE(miss.cache_hit);
    ASSERT_FALSE(miss.cache_key.empty());

    CompileResult hit =
        compile_cpp(workdir(), kHello, "main.cpp", "-O0",
                    cached_opts(cache));
    EXPECT_TRUE(hit.cache_hit);
    EXPECT_EQ(hit.cache_key, miss.cache_key);
    EXPECT_EQ(hit.compile_seconds, 0.0);

    // The hit's binary is byte-identical to the compiled one and runs.
    EXPECT_EQ(read_whole_file(hit.binary), read_whole_file(miss.binary));
    EXPECT_NE(run_binary(hit.binary, "").find("cached hi"),
              std::string::npos);

    // Observable through the metrics registry (compile.cache_hits).
    EXPECT_EQ(compile_metrics().counter("compile.cache_hits"),
              hits0 + 1);
    EXPECT_EQ(compile_metrics().counter("compile.external_compiles"),
              ext0 + 1);
}

TEST(CompileCache, KeyTracksSourcesAndFlags)
{
    std::string cache = workdir();
    CompileResult a = compile_cpp(workdir(), kHello, "main.cpp", "-O0",
                                  cached_opts(cache));
    CompileResult b = compile_cpp(
        workdir(),
        {{"main.cpp",
          "#include <cstdio>\nint main() { std::puts(\"other\"); }"}},
        "main.cpp", "-O0", cached_opts(cache));
    CompileResult c = compile_cpp(workdir(), kHello, "main.cpp", "-O1",
                                  cached_opts(cache));
    EXPECT_NE(a.cache_key, b.cache_key);
    EXPECT_NE(a.cache_key, c.cache_key);
    EXPECT_FALSE(b.cache_hit);
    EXPECT_FALSE(c.cache_hit);
}

TEST(CompileCache, DisabledCacheNeverHitsAndLeavesKeyEmpty)
{
    CompileResult a = compile_cpp(workdir(), kHello, "main.cpp", "-O0");
    EXPECT_FALSE(a.cache_hit);
    EXPECT_TRUE(a.cache_key.empty());
}

TEST(CompileCache, SizeCapEvictsOldestEntries)
{
    std::string cache = workdir();
    CompileOptions opts = cached_opts(cache);
    opts.cache.max_bytes = 1; // every store evicts all older entries
    uint64_t evict0 =
        compile_metrics().counter("compile.cache_evictions");
    compile_cpp(workdir(), kHello, "main.cpp", "-O0", opts);
    compile_cpp(
        workdir(),
        {{"main.cpp",
          "#include <cstdio>\nint main() { std::puts(\"v2\"); }"}},
        "main.cpp", "-O0", opts);
    EXPECT_GT(compile_metrics().counter("compile.cache_evictions"),
              evict0);
}

TEST(RunCommand, TransientRetriesAreCounted)
{
    // Same marker trick as RetriesTransientSignalDeath, but checking
    // the observability side: each transient retry bumps the
    // compile.transient_retries counter (deterministic failures and
    // clean runs must not).
    uint64_t retries0 =
        compile_metrics().counter("compile.transient_retries");
    std::string marker = workdir();
    RunOptions opts;
    opts.retries = 1;
    opts.backoff_seconds = 0.01;
    RunResult r = run_command("if [ -e " + marker +
                                  " ]; then echo recovered; "
                                  "else touch " +
                                  marker + "; kill -KILL $$; fi",
                              opts);
    unlink(marker.c_str());
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(compile_metrics().counter("compile.transient_retries"),
              retries0 + 1);

    run_command("exit 1", opts); // deterministic: no retry, no count
    run_command("true", opts);   // clean: no count
    EXPECT_EQ(compile_metrics().counter("compile.transient_retries"),
              retries0 + 1);
}

TEST(CompileCache, StaleStoreTempsAreSweptDuringEviction)
{
    // A process killed mid-store leaves a `*.tmp.*` file behind; the
    // eviction scan reclaims it once it is an hour old, but must leave
    // fresh temps (a store racing right now) alone.
    std::string cache = workdir();
    ASSERT_EQ(mkdir(cache.c_str(), 0755), 0);
    std::string stale = cache + "/deadbeef.bin.tmp.12345.0";
    std::string fresh = cache + "/cafef00d.bin.tmp.12345.1";
    {
        std::ofstream(stale) << "orphaned partial store";
        std::ofstream(fresh) << "in-flight store";
    }
    // Backdate the stale temp past kStaleTempSeconds (one hour).
    struct stat st;
    ASSERT_EQ(stat(stale.c_str(), &st), 0);
    struct utimbuf times;
    times.actime = st.st_atime - 7200;
    times.modtime = st.st_mtime - 7200;
    ASSERT_EQ(utime(stale.c_str(), &times), 0);

    uint64_t swept0 =
        compile_metrics().counter("compile.cache_stale_temps_swept");
    // Any successful store triggers the eviction scan.
    compile_cpp(workdir(), kHello, "main.cpp", "-O0",
                cached_opts(cache));

    EXPECT_EQ(
        compile_metrics().counter("compile.cache_stale_temps_swept"),
        swept0 + 1);
    struct stat st2;
    EXPECT_NE(stat(stale.c_str(), &st2), 0); // swept
    EXPECT_EQ(stat(fresh.c_str(), &st2), 0); // spared
    unlink(fresh.c_str());
}

TEST(CompileCache, FailedCompilesAreNotCached)
{
    std::string cache = workdir();
    auto broken = std::vector<std::pair<std::string, std::string>>{
        {"main.cpp", "int main() { this does not parse; }"}};
    EXPECT_THROW(compile_cpp(workdir(), broken, "main.cpp", "-O0",
                             cached_opts(cache)),
                 koika::FatalError);
    // Same sources again: still a miss (nothing was published).
    uint64_t hits0 = compile_metrics().counter("compile.cache_hits");
    EXPECT_THROW(compile_cpp(workdir(), broken, "main.cpp", "-O0",
                             cached_opts(cache)),
                 koika::FatalError);
    EXPECT_EQ(compile_metrics().counter("compile.cache_hits"), hits0);
}

// -- In-process dlopened models (codegen/dlmodel.hpp): the compile
// pipeline must be a per-thread cost, not a per-trial one. The metrics
// registry exposes cache probes (hits + misses), so we can count them.

#include <thread>

#include "codegen/dlmodel.hpp"
#include "koika/builder.hpp"
#include "koika/typecheck.hpp"
#include "sim/model.hpp"

namespace {

std::unique_ptr<Design>
dl_counter_design()
{
    auto d = std::make_unique<Design>("dl_probe_counter");
    Builder b(*d);
    int x = b.reg("x", 8, 0);
    d->add_rule("inc", b.write0(x, b.add(b.read0(x), b.k(8, 1))));
    d->schedule("inc");
    typecheck(*d);
    return d;
}

uint64_t
cache_probes()
{
    return compile_metrics().counter("compile.cache_hits") +
           compile_metrics().counter("compile.cache_misses");
}

} // namespace

TEST(DlModel, OneCacheProbePerThreadNotPerLoad)
{
    auto d = dl_counter_design();
    DlModelOptions opts;
    opts.cache.dir = workdir();
    opts.workdir = workdir();

    uint64_t probes0 = cache_probes();
    auto m1 = load_compiled_model(*d, opts);
    ASSERT_NE(m1, nullptr);
    // First load on this thread: exactly one probe (a miss — the
    // cache directory is fresh).
    EXPECT_EQ(cache_probes(), probes0 + 1);

    // Second load, same thread, same options: served from the
    // thread-local library map with no cache probe and no compile.
    auto m2 = load_compiled_model(*d, opts);
    ASSERT_NE(m2, nullptr);
    EXPECT_EQ(cache_probes(), probes0 + 1);

    // A different thread (a new pool worker) probes once more — and
    // hits the on-disk cache rather than recompiling.
    uint64_t hits0 = compile_metrics().counter("compile.cache_hits");
    std::thread([&]() {
        auto m3 = load_compiled_model(*d, opts);
        ASSERT_NE(m3, nullptr);
    }).join();
    EXPECT_EQ(cache_probes(), probes0 + 2);
    EXPECT_EQ(compile_metrics().counter("compile.cache_hits"), hits0 + 1);

    // Both handles are live, independent models.
    m1->cycle();
    m1->cycle();
    EXPECT_EQ(m1->cycles_run(), 2u);
    EXPECT_EQ(m2->cycles_run(), 0u);
    EXPECT_EQ(m1->get_reg(0).to_u64(), 2u);
}
