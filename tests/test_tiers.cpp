// Differential tests for the Cuttlesim engine tiers (§3.2-3.3).
//
// Each tier must be observationally identical to the reference
// interpreter: the same committed register values after every cycle and
// the same set of fired rules. We check hand-written semantic corner
// cases and sweep hundreds of random designs.

#include <gtest/gtest.h>

#include "harness/lockstep.hpp"
#include "harness/random_design.hpp"
#include "interp/reference_model.hpp"
#include "koika/builder.hpp"
#include "koika/typecheck.hpp"
#include "sim/tiers.hpp"

using namespace koika;
using namespace koika::sim;
using koika::harness::random_design;
using koika::harness::RandomDesignConfig;
using koika::harness::run_lockstep;

namespace {

const Tier kAllTiers[] = {Tier::kT0Naive,       Tier::kT1SplitSets,
                          Tier::kT2Accumulate,  Tier::kT3ResetOnFail,
                          Tier::kT4MergedData,  Tier::kT5StaticAnalysis};

/** Run every tier against the reference for `cycles` cycles. */
void
expect_all_tiers_match(const Design& d, uint64_t cycles)
{
    ReferenceModel ref(d);
    std::vector<std::unique_ptr<TierModel>> engines;
    std::vector<Model*> models = {&ref};
    for (Tier t : kAllTiers) {
        engines.push_back(make_engine(d, t));
        models.push_back(engines.back().get());
    }
    auto result = run_lockstep(d, models, cycles);
    EXPECT_TRUE(result.ok) << d.name() << ": " << result.detail;
}

} // namespace

class TierSemantics : public ::testing::TestWithParam<Tier>
{
  protected:
    std::unique_ptr<TierModel>
    engine(const Design& d)
    {
        return make_engine(d, GetParam());
    }
};

TEST_P(TierSemantics, CounterIncrements)
{
    Design d("t");
    Builder b(d);
    int x = b.reg("x", 8, 0);
    d.add_rule("inc", b.write0(x, b.add(b.read0(x), b.k(8, 1))));
    d.schedule("inc");
    typecheck(d);
    auto e = engine(d);
    for (int i = 1; i <= 5; ++i) {
        e->cycle();
        EXPECT_EQ(e->get_reg(x).to_u64(), (uint64_t)i);
    }
    EXPECT_EQ(e->rule_commit_counts()[0], 5u);
    EXPECT_EQ(e->rule_abort_counts()[0], 0u);
}

TEST_P(TierSemantics, GoldbergianContraption)
{
    // §3.2: the one pattern merged-data tiers give up on is wr1-then-rd1
    // within a rule; this design uses the *allowed* orderings and must
    // agree everywhere.
    Design d("t");
    Builder b(d);
    int r = b.reg("r", 8, 0);
    int saw0 = b.reg("saw0", 8, 0xFF);
    d.add_rule("rl", b.seq({b.write0(r, b.k(8, 1)),
                            b.write1(r, b.k(8, 2)),
                            b.write1(saw0, b.read0(r))}));
    d.schedule("rl");
    typecheck(d);
    auto e = engine(d);
    e->cycle();
    EXPECT_EQ(e->get_reg(saw0).to_u64(), 0u);
    EXPECT_EQ(e->get_reg(r).to_u64(), 2u);
}

TEST_P(TierSemantics, ConflictAbortsSecondRule)
{
    Design d("t");
    Builder b(d);
    int x = b.reg("x", 8, 0);
    d.add_rule("w1", b.write0(x, b.k(8, 1)));
    d.add_rule("w2", b.write0(x, b.k(8, 2)));
    d.schedule("w1");
    d.schedule("w2");
    typecheck(d);
    auto e = engine(d);
    e->cycle();
    EXPECT_TRUE(e->fired()[0]);
    EXPECT_FALSE(e->fired()[1]);
    EXPECT_EQ(e->get_reg(x).to_u64(), 1u);
    EXPECT_EQ(e->rule_abort_counts()[1], 1u);
}

TEST_P(TierSemantics, FailedRuleRollsBackPartialWrites)
{
    // Write y, then abort: y must keep its old value and the next rule
    // must see clean logs.
    Design d("t");
    Builder b(d);
    int y = b.reg("y", 8, 5);
    int z = b.reg("z", 8, 0);
    d.add_rule("doomed", b.seq({b.write0(y, b.k(8, 77)), b.abort()}));
    d.add_rule("next", b.write0(z, b.read1(y)));
    d.schedule("doomed");
    d.schedule("next");
    typecheck(d);
    auto e = engine(d);
    e->cycle();
    EXPECT_EQ(e->get_reg(y).to_u64(), 5u);
    EXPECT_EQ(e->get_reg(z).to_u64(), 5u);
}

TEST_P(TierSemantics, FailedRuleRollsBackRd1Marks)
{
    // doomed reads y at port 1 then aborts; the next rule's wr0 to y must
    // still succeed (the rd1 mark must not leak into the cycle log).
    Design d("t");
    Builder b(d);
    int y = b.reg("y", 8, 5);
    int sink = b.reg("sink", 8, 0);
    d.add_rule("doomed", b.seq({b.write0(sink, b.read1(y)), b.abort()}));
    d.add_rule("wr", b.write0(y, b.k(8, 9)));
    d.schedule("doomed");
    d.schedule("wr");
    typecheck(d);
    auto e = engine(d);
    e->cycle();
    EXPECT_FALSE(e->fired()[0]);
    EXPECT_TRUE(e->fired()[1]);
    EXPECT_EQ(e->get_reg(y).to_u64(), 9u);
}

TEST_P(TierSemantics, SetRegBetweenCyclesVisible)
{
    Design d("t");
    Builder b(d);
    int x = b.reg("x", 8, 0);
    int y = b.reg("y", 8, 0);
    d.add_rule("copy", b.write0(y, b.read0(x)));
    d.schedule("copy");
    typecheck(d);
    auto e = engine(d);
    e->set_reg(x, Bits::of(8, 42));
    e->cycle();
    EXPECT_EQ(e->get_reg(y).to_u64(), 42u);
    // rd1 paths must also see the poked value.
    e->set_reg(x, Bits::of(8, 43));
    e->cycle();
    EXPECT_EQ(e->get_reg(y).to_u64(), 43u);
}

TEST_P(TierSemantics, PipelineForwardingThroughWire)
{
    // Producer wr0 -> consumer rd1 in the same cycle, every cycle.
    Design d("t");
    Builder b(d);
    int src = b.reg("src", 8, 0);
    int wire = b.reg("wire", 8, 0);
    int dst = b.reg("dst", 8, 0);
    d.add_rule("produce",
               b.seq({b.write0(src, b.add(b.read0(src), b.k(8, 1))),
                      b.write0(wire, b.read0(src))}));
    d.add_rule("consume", b.write0(dst, b.read1(wire)));
    d.schedule("produce");
    d.schedule("consume");
    typecheck(d);
    auto e = engine(d);
    for (int i = 0; i < 4; ++i)
        e->cycle();
    // In cycle i the wire carries src's old value (i).
    EXPECT_EQ(e->get_reg(dst).to_u64(), 3u);
    EXPECT_EQ(e->get_reg(src).to_u64(), 4u);
}

INSTANTIATE_TEST_SUITE_P(
    AllTiers, TierSemantics, ::testing::ValuesIn(kAllTiers),
    [](const ::testing::TestParamInfo<Tier>& info) {
        std::string n = tier_name(info.param);
        for (char& c : n)
            if (c == '-')
                c = '_';
        return n;
    });

TEST(Tiers, CustomOrderSupportedBelowT5)
{
    Design d("t");
    Builder b(d);
    int x = b.reg("x", 8, 0);
    d.add_rule("a", b.write0(x, b.k(8, 1)));
    d.add_rule("b", b.write0(x, b.k(8, 2)));
    d.schedule("a");
    d.schedule("b");
    typecheck(d);
    auto e = make_engine(d, Tier::kT4MergedData);
    e->cycle_with_order({1, 0});
    EXPECT_EQ(e->get_reg(x).to_u64(), 2u);
    auto t5 = make_engine(d, Tier::kT5StaticAnalysis);
    EXPECT_THROW(t5->cycle_with_order({1, 0}), FatalError);
}

TEST(Tiers, RandomOrderMatchesReferenceOrder)
{
    // Any explicit order agrees with the reference run under that order.
    auto d = random_design(7777);
    ReferenceSim ref(*d);
    auto e = make_engine(*d, Tier::kT3ResetOnFail);
    std::mt19937_64 rng(1);
    std::vector<int> order;
    for (size_t i = 0; i < d->num_rules(); ++i)
        order.push_back((int)i);
    for (int c = 0; c < 50; ++c) {
        std::shuffle(order.begin(), order.end(), rng);
        ref.cycle_with_order(order);
        e->cycle_with_order(order);
        for (size_t i = 0; i < d->num_registers(); ++i)
            ASSERT_EQ(e->get_reg((int)i), ref.reg((int)i))
                << "cycle " << c << " reg " << d->reg((int)i).name;
    }
}

// ---------------------------------------------------------------------------
// Random-design differential sweep: all tiers vs the reference.
// ---------------------------------------------------------------------------

class TierRandomSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(TierRandomSweep, AllTiersMatchReference)
{
    uint64_t base_seed = GetParam();
    for (uint64_t s = 0; s < 8; ++s) {
        auto d = random_design(base_seed * 100 + s);
        expect_all_tiers_match(*d, 40);
    }
}

TEST_P(TierRandomSweep, WideRegistersMatchReference)
{
    RandomDesignConfig cfg;
    cfg.wide_registers = true;
    auto d = random_design(GetParam() * 31 + 5, cfg);
    expect_all_tiers_match(*d, 40);
}

TEST_P(TierRandomSweep, RandomOrdersMatchReference)
{
    // Schedule-independent tiers must track the reference under a fresh
    // random rule order every cycle (case study 2's methodology).
    auto d = random_design(GetParam() * 523 + 9);
    ReferenceSim ref(*d);
    auto t0 = make_engine(*d, Tier::kT0Naive);
    auto t4 = make_engine(*d, Tier::kT4MergedData);
    std::mt19937_64 rng(GetParam());
    std::vector<int> order;
    for (size_t i = 0; i < d->num_rules(); ++i)
        order.push_back((int)i);
    for (int c = 0; c < 30; ++c) {
        std::shuffle(order.begin(), order.end(), rng);
        ref.cycle_with_order(order);
        t0->cycle_with_order(order);
        t4->cycle_with_order(order);
        for (size_t r = 0; r < d->num_registers(); ++r) {
            ASSERT_EQ(t0->get_reg((int)r), ref.reg((int)r))
                << "T0 cycle " << c;
            ASSERT_EQ(t4->get_reg((int)r), ref.reg((int)r))
                << "T4 cycle " << c;
        }
    }
}

TEST_P(TierRandomSweep, StimulusMatchesReference)
{
    // External pokes between cycles (the peripheral pattern) must keep
    // engines in lockstep too.
    auto d = random_design(GetParam() * 17 + 3);
    ReferenceModel ref(*d);
    auto t5 = make_engine(*d, Tier::kT5StaticAnalysis);
    std::vector<sim::Model*> models = {&ref, t5.get()};
    uint64_t seed = GetParam();
    auto stimulus = [&](sim::Model& m, uint64_t c) {
        std::mt19937_64 rng(seed * 1000 + c);
        int reg = (int)(rng() % d->num_registers());
        uint32_t w = d->reg(reg).type->width;
        m.set_reg(reg, Bits::of(w, rng()));
    };
    auto result = run_lockstep(*d, models, 30, stimulus);
    EXPECT_TRUE(result.ok) << result.detail;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TierRandomSweep,
                         ::testing::Range<uint64_t>(1, 26));
