// Tests for the design builder: node construction, register declaration,
// helpers (seq folding, struct_init, mux_read/mux_write, clone).

#include <gtest/gtest.h>

#include "koika/builder.hpp"
#include "koika/typecheck.hpp"

using namespace koika;

TEST(Builder, RegisterDeclaration)
{
    Design d("t");
    Builder b(d);
    int r = b.reg("pc", 32, 0x80000000u);
    EXPECT_EQ(r, 0);
    EXPECT_EQ(d.reg(r).name, "pc");
    EXPECT_EQ(d.reg(r).init.to_u64(), 0x80000000u);
    EXPECT_EQ(d.reg_index("pc"), 0);
    EXPECT_EQ(d.reg_index("nope"), -1);
}

TEST(Builder, DuplicateRegisterRejected)
{
    Design d("t");
    Builder b(d);
    b.reg("x", 8);
    EXPECT_THROW(b.reg("x", 8), FatalError);
}

TEST(Builder, RegArrayNames)
{
    Design d("t");
    Builder b(d);
    auto regs = b.reg_array("rf", 4, bits_type(32), Bits::zeroes(32));
    EXPECT_EQ(regs.size(), 4u);
    EXPECT_EQ(d.reg(regs[3]).name, "rf3");
}

TEST(Builder, InitWidthMismatchRejected)
{
    Design d("t");
    Builder b(d);
    EXPECT_THROW(d.add_register("x", bits_type(8), Bits::of(9, 0)),
                 FatalError);
}

TEST(Builder, SeqFoldsRightAssociative)
{
    Design d("t");
    Builder b(d);
    int r = b.reg("x", 8);
    Action* s = b.seq({b.write0(r, b.k(8, 1)), b.write1(r, b.k(8, 2)),
                       b.read1(r)});
    EXPECT_EQ(s->kind, ActionKind::kSeq);
    EXPECT_EQ(s->a1->kind, ActionKind::kSeq);
    EXPECT_EQ(s->a1->a1->kind, ActionKind::kRead);
}

TEST(Builder, EnumConstant)
{
    Design d("t");
    Builder b(d);
    auto st = make_enum("state", {"A", "B"});
    Action* a = b.enum_k(st, "B");
    EXPECT_EQ(a->value, Bits::of(1, 1));
    EXPECT_TRUE(a->const_type->is_enum());
    EXPECT_THROW(b.enum_k(st, "C"), FatalError);
}

TEST(Builder, StructInitSetsNamedFields)
{
    Design d("t");
    Builder b(d);
    auto t = make_struct("s", {{"hi", bits_type(8), 0},
                               {"lo", bits_type(8), 0}});
    int r = d.add_register("sr", t, Bits::zeroes(16));
    Action* v = b.struct_init(t, {{"hi", b.k(8, 0xAB)},
                                  {"lo", b.k(8, 0xCD)}});
    int rl = d.add_rule("init", b.write0(r, v));
    d.schedule(rl);
    typecheck(d);
    EXPECT_TRUE(d.typechecked);
}

TEST(Builder, CloneProducesDisjointTree)
{
    Design d("t");
    Builder b(d);
    int r = b.reg("x", 8);
    Action* e = b.add(b.read0(r), b.k(8, 1));
    Action* c = b.clone(e);
    EXPECT_NE(c, e);
    EXPECT_NE(c->a0, e->a0);
    EXPECT_EQ(c->kind, e->kind);
    EXPECT_EQ(c->a0->reg, e->a0->reg);
    // Distinct node ids so analyses can tell them apart.
    EXPECT_NE(c->id, e->id);
}

TEST(Builder, MuxReadTypechecks)
{
    Design d("t");
    Builder b(d);
    auto rf = b.reg_array("rf", 4, bits_type(32), Bits::zeroes(32));
    int out = b.reg("out", 32);
    Action* body =
        b.let("i", b.k(2, 3),
              b.write0(out, b.mux_read(rf, b.var("i"), Port::p0)));
    d.add_rule("rd", body);
    d.schedule("rd");
    typecheck(d);
    EXPECT_TRUE(d.typechecked);
}

TEST(Builder, MuxWriteTypechecks)
{
    Design d("t");
    Builder b(d);
    auto rf = b.reg_array("rf", 5, bits_type(32), Bits::zeroes(32));
    Action* body =
        b.let("i", b.k(3, 4),
              b.mux_write(rf, b.var("i"), b.k(32, 99), Port::p0));
    d.add_rule("wr", body);
    d.schedule("wr");
    typecheck(d);
    EXPECT_TRUE(d.typechecked);
}

TEST(Builder, ScheduleByName)
{
    Design d("t");
    Builder b(d);
    int r = b.reg("x", 1);
    d.add_rule("flip", b.write0(r, b.not_(b.read0(r))));
    d.schedule("flip");
    EXPECT_EQ(d.schedule_order().size(), 1u);
    EXPECT_THROW(d.schedule("missing"), FatalError);
}
