// Orchestrator protocol tests: lease-claim arbitration (exactly one
// concurrent winner), heartbeat staleness and reclamation after a
// simulated hang, and the supervisor's graceful degradation when the
// worker fleet can never make progress. The full drain — real worker
// processes, chaos crashes, byte-identity against the single-process
// report — is exercised by the cuttlec_orchestrate_* CLI tests.

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <thread>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>
#include <utime.h>

#include "base/error.hpp"
#include "base/io.hpp"
#include "obs/json.hpp"
#include "orchestrate/orchestrator.hpp"

using namespace koika;
using namespace koika::orchestrate;

namespace {

std::string
fresh_campaign_dir()
{
    char tmpl[] = "/tmp/cuttlesim_orch_test_XXXXXX";
    const char* dir = mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr);
    std::string d = dir;
    mkdir((d + "/chunks").c_str(), 0755);
    mkdir((d + "/leases").c_str(), 0755);
    mkdir((d + "/logs").c_str(), 0755);
    return d;
}

bool
exists(const std::string& path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

/** Backdate a file's mtime by `seconds` (simulates a stale heartbeat
 *  without waiting out a real timeout). */
void
backdate(const std::string& path, long seconds)
{
    struct stat st;
    ASSERT_EQ(::stat(path.c_str(), &st), 0) << path;
    struct utimbuf times;
    times.actime = st.st_atime - seconds;
    times.modtime = st.st_mtime - seconds;
    ASSERT_EQ(::utime(path.c_str(), &times), 0) << path;
}

} // namespace

TEST(LeaseClaim, ExactlyOneConcurrentClaimerWins)
{
    std::string dir = fresh_campaign_dir();
    constexpr int kClaimers = 8;
    for (int chunk = 0; chunk < 6; ++chunk) {
        std::atomic<int> ready{0};
        std::atomic<int> winners{0};
        std::atomic<int> winner_id{-1};
        std::vector<std::thread> threads;
        for (int w = 0; w < kClaimers; ++w)
            threads.emplace_back([&, w] {
                // Spin barrier: maximize the real race window.
                ready.fetch_add(1);
                while (ready.load() < kClaimers) {
                }
                if (try_claim_lease(dir, chunk, w)) {
                    winners.fetch_add(1);
                    winner_id.store(w);
                }
            });
        for (std::thread& t : threads)
            t.join();
        EXPECT_EQ(winners.load(), 1) << "chunk " << chunk;
        // The lease on disk names the one winner.
        LeaseInfo lease;
        ASSERT_TRUE(read_lease(lease_path(dir, chunk), &lease));
        EXPECT_EQ(lease.chunk, chunk);
        EXPECT_EQ(lease.worker, winner_id.load());
        EXPECT_EQ(lease.pid, getpid());
    }
}

TEST(LeaseClaim, ReadRoundtripReleaseAndReclaim)
{
    std::string dir = fresh_campaign_dir();

    LeaseInfo lease;
    EXPECT_FALSE(read_lease(lease_path(dir, 0), &lease)); // no file yet

    ASSERT_TRUE(try_claim_lease(dir, 0, 3));
    EXPECT_FALSE(try_claim_lease(dir, 0, 4)); // held: second claim loses
    ASSERT_TRUE(read_lease(lease_path(dir, 0), &lease));
    EXPECT_EQ(lease.chunk, 0);
    EXPECT_EQ(lease.worker, 3);

    release_lease(dir, 0);
    release_lease(dir, 0); // idempotent
    EXPECT_FALSE(exists(lease_path(dir, 0)));
    EXPECT_TRUE(try_claim_lease(dir, 0, 4)); // claimable again

    // Malformed lease content parses as "no lease" (the supervisor
    // falls back to mtime-based staleness for those).
    write_file_atomic(lease_path(dir, 1), "not json\n");
    EXPECT_FALSE(read_lease(lease_path(dir, 1), &lease));
}

TEST(Heartbeat, AgeTracksBeatsAndFallsBackToLeaseMtime)
{
    std::string dir = fresh_campaign_dir();

    EXPECT_LT(heartbeat_age_seconds(dir, 0), 0); // neither file exists

    // Before the first beat the lease's own mtime bounds the age.
    ASSERT_TRUE(try_claim_lease(dir, 0, 1));
    double age = heartbeat_age_seconds(dir, 0);
    EXPECT_GE(age, 0);
    EXPECT_LT(age, 30);

    touch_heartbeat(dir, 0);
    EXPECT_LT(heartbeat_age_seconds(dir, 0), 30);

    backdate(heartbeat_path(dir, 0), 100);
    EXPECT_GT(heartbeat_age_seconds(dir, 0), 50);

    release_lease(dir, 0);
    EXPECT_LT(heartbeat_age_seconds(dir, 0), 0);
}

TEST(Heartbeat, StaleLeaseIsReclaimableAfterRelease)
{
    std::string dir = fresh_campaign_dir();

    // Worker 1 claims, beats once, then "hangs" (stops beating).
    ASSERT_TRUE(try_claim_lease(dir, 0, 1));
    touch_heartbeat(dir, 0);
    backdate(lease_path(dir, 0), 100);
    backdate(heartbeat_path(dir, 0), 100);

    // Supervisor side: the heartbeat is stale past any sane timeout,
    // so the lease is reclaimed (released) and another worker wins it.
    EXPECT_GT(heartbeat_age_seconds(dir, 0), 10);
    release_lease(dir, 0);
    ASSERT_TRUE(try_claim_lease(dir, 0, 2));
    LeaseInfo lease;
    ASSERT_TRUE(read_lease(lease_path(dir, 0), &lease));
    EXPECT_EQ(lease.worker, 2);
}

TEST(Orchestrator, DegradesGracefullyWhenWorkersNeverWork)
{
    // A fleet that exits immediately without claiming anything (the
    // worker binary is /bin/false) exhausts its respawn budget; the
    // supervisor must mark every chunk failed and still produce a
    // well-formed orchestrate.json with an `incomplete` block instead
    // of hanging or aborting.
    std::string dir = fresh_campaign_dir();
    OrchestratorConfig config;
    config.dir = dir;
    config.design = "collatz";
    config.engine = "T5";
    config.campaign.count = 8;
    config.campaign.cycles = 100;
    config.chunk_size = 4;
    config.workers = 2;
    config.max_retries = 0;
    config.worker_timeout_seconds = 1;
    config.worker_binary = "/bin/false";

    OrchestratorReport report = run_orchestrator(config);

    EXPECT_FALSE(report.complete());
    EXPECT_FALSE(report.interrupted);
    EXPECT_EQ(report.chunks_total, 2u);
    EXPECT_EQ(report.chunks_completed, 0u);
    EXPECT_EQ(report.chunks_failed, 2u);
    EXPECT_EQ(report.failed_chunks, (std::vector<int>{0, 1}));
    EXPECT_EQ(report.missing_injections.size(), 8u);
    EXPECT_EQ(report.metrics.counter("orch/chunks_failed"), 2u);
    EXPECT_GE(report.metrics.counter("orch/workers_spawned"), 2u);

    EXPECT_TRUE(exists(chunk_failed_path(dir, 0)));
    EXPECT_TRUE(exists(chunk_failed_path(dir, 1)));

    // The report file exists and names the missing work.
    obs::Json j = obs::Json::parse(read_file(dir + "/orchestrate.json"));
    EXPECT_EQ(j["schema"].as_string(), "cuttlesim-orch-v1");
    EXPECT_EQ(j["summary"]["missing"].as_u64(), 8u);
    ASSERT_NE(j.find("incomplete"), nullptr);
    EXPECT_EQ(j["incomplete"]["failed_chunks"].size(), 2u);
    EXPECT_EQ(j["incomplete"]["missing_injections"].size(), 8u);
    // The embedded fault report carries no fabricated records.
    EXPECT_EQ(j["report"]["injections"].size(), 0u);
}

TEST(Orchestrator, ManifestMismatchIsFatalOnResume)
{
    std::string dir = fresh_campaign_dir();
    OrchestratorConfig config;
    config.dir = dir;
    config.design = "collatz";
    config.engine = "T5";
    config.campaign.count = 4;
    config.campaign.cycles = 50;
    config.chunk_size = 4;
    config.workers = 1;
    config.max_retries = 0;
    config.worker_binary = "/bin/false";
    run_orchestrator(config); // seeds the manifest (and fails fast)

    // Same directory, different fault list: must refuse, not corrupt.
    OrchestratorConfig other = config;
    other.campaign.seed = 99;
    EXPECT_THROW(run_orchestrator(other), FatalError);
    other = config;
    other.chunk_size = 2;
    EXPECT_THROW(run_orchestrator(other), FatalError);

    // Supervision knobs are not identity: changing them is fine.
    OrchestratorConfig tweaked = config;
    tweaked.max_retries = 1;
    tweaked.worker_timeout_seconds = 2;
    OrchestratorReport report = run_orchestrator(tweaked);
    EXPECT_EQ(report.chunks_total, 1u);
}
