// The deterministic work-sharding harness (src/harness/parallel.hpp):
// static sharding, inline serial degeneration, exception surfacing,
// jobs-independent seed derivation, and the per-worker metrics merge.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "harness/parallel.hpp"
#include "obs/metrics.hpp"

using namespace koika;
using namespace koika::harness;

TEST(ResolveJobs, PositivePassesThroughZeroMeansHardware)
{
    EXPECT_EQ(resolve_jobs(1), 1);
    EXPECT_EQ(resolve_jobs(7), 7);
    int hw = resolve_jobs(0);
    EXPECT_GE(hw, 1);
    EXPECT_EQ(resolve_jobs(-3), hw);
}

TEST(DeriveSeed, IsDeterministicAndSpreadsItems)
{
    EXPECT_EQ(derive_seed(42, 0), derive_seed(42, 0));
    std::set<uint64_t> seeds;
    for (uint64_t i = 0; i < 1000; ++i)
        seeds.insert(derive_seed(42, i));
    EXPECT_EQ(seeds.size(), 1000u);
    // Different base seeds diverge too.
    EXPECT_NE(derive_seed(42, 5), derive_seed(43, 5));
}

TEST(ParallelFor, VisitsEveryItemExactlyOnce)
{
    for (int jobs : {1, 2, 8}) {
        std::vector<std::atomic<int>> visits(100);
        parallel_for(100, jobs, [&](uint64_t i) { visits[i]++; });
        for (auto& v : visits)
            EXPECT_EQ(v.load(), 1) << "jobs=" << jobs;
    }
}

TEST(ParallelFor, ZeroItemsIsANoOp)
{
    parallel_for(0, 4, [&](uint64_t) { FAIL(); });
}

TEST(ThreadPool, StaticShardingItemToWorkerIsIModJobs)
{
    ThreadPool pool(4);
    ASSERT_EQ(pool.jobs(), 4);
    std::vector<int> worker_of(64, -1);
    pool.run(64, [&](uint64_t i, int w) { worker_of[i] = w; });
    for (uint64_t i = 0; i < 64; ++i)
        EXPECT_EQ(worker_of[i], (int)(i % 4));
}

TEST(ThreadPool, EachWorkerWalksItsItemsInIncreasingOrder)
{
    ThreadPool pool(3);
    std::mutex mu;
    std::vector<std::vector<uint64_t>> order(3);
    pool.run(50, [&](uint64_t i, int w) {
        std::lock_guard<std::mutex> lock(mu);
        order[w].push_back(i);
    });
    for (int w = 0; w < 3; ++w) {
        for (size_t k = 1; k < order[w].size(); ++k)
            EXPECT_LT(order[w][k - 1], order[w][k]);
    }
}

TEST(ThreadPool, SerialPoolRunsInlineOnTheCallingThread)
{
    ThreadPool pool(1);
    std::thread::id caller = std::this_thread::get_id();
    bool inline_run = false;
    pool.run(5, [&](uint64_t, int worker) {
        inline_run = std::this_thread::get_id() == caller && worker == 0;
    });
    EXPECT_TRUE(inline_run);
}

TEST(ThreadPool, IsReusableAcrossRuns)
{
    ThreadPool pool(2);
    std::atomic<int> total{0};
    for (int round = 0; round < 10; ++round)
        pool.run(7, [&](uint64_t, int) { total++; });
    EXPECT_EQ(total.load(), 70);
}

TEST(ThreadPool, RethrowsLowestItemsExceptionLikeASerialRun)
{
    for (int jobs : {1, 4}) {
        ThreadPool pool(jobs);
        std::atomic<int> ran{0};
        try {
            pool.run(20, [&](uint64_t i, int) {
                ran++;
                if (i == 3 || i == 11)
                    throw std::runtime_error("item " +
                                             std::to_string(i));
            });
            FAIL() << "expected an exception (jobs=" << jobs << ")";
        } catch (const std::runtime_error& e) {
            EXPECT_STREQ(e.what(), "item 3") << "jobs=" << jobs;
        }
        // The pool joins before rethrowing: every item still ran.
        EXPECT_EQ(ran.load(), 20) << "jobs=" << jobs;
    }
}

TEST(ParallelForMetrics, MergedCountersMatchSerialTally)
{
    auto work = [](uint64_t i, obs::MetricsRegistry& m) {
        m.inc("items");
        m.inc("weighted", i);
        m.observe("value", (double)(i % 5));
    };
    obs::MetricsRegistry serial;
    parallel_for_metrics(40, 1, serial, work);
    obs::MetricsRegistry sharded;
    parallel_for_metrics(40, 8, sharded, work);
    EXPECT_EQ(serial.to_json().dump(2), sharded.to_json().dump(2));
    EXPECT_EQ(sharded.counter("items"), 40u);
    EXPECT_EQ(sharded.counter("weighted"), (uint64_t)40 * 39 / 2);
}

TEST(MetricsMerge, CountersAddGaugesTakeOtherHistogramsFold)
{
    obs::MetricsRegistry a, b;
    a.inc("c", 2);
    b.inc("c", 3);
    b.inc("only_b");
    a.set_gauge("g", 1.0);
    b.set_gauge("g", 7.0);
    a.observe("h", 0.5);
    b.observe("h", 2.0);
    a.merge_from(b);
    EXPECT_EQ(a.counter("c"), 5u);
    EXPECT_EQ(a.counter("only_b"), 1u);
    EXPECT_EQ(a.gauge("g"), 7.0);
    ASSERT_NE(a.histogram("h"), nullptr);
    EXPECT_EQ(a.histogram("h")->total, 2u);
    EXPECT_DOUBLE_EQ(a.histogram("h")->sum, 2.5);
}

TEST(MetricsMerge, MergingAnEmptyRegistryIsIdentity)
{
    obs::MetricsRegistry a, empty;
    a.inc("c", 4);
    a.set_gauge("g", 2.5);
    std::string before = a.to_json().dump(2);
    a.merge_from(empty);
    EXPECT_EQ(a.to_json().dump(2), before);
}

// -- Per-worker contexts (WorkerContext/ContextFactory): the hooks the
// warm fault-trial loop hangs its per-worker state on. Contexts must be
// created lazily on the owning worker, be stable for every item that
// worker handles, and live exactly as long as one run() batch.

namespace {

struct CountingContext final : WorkerContext
{
    explicit CountingContext(std::atomic<int>* live) : live_(live)
    {
        ++*live_;
    }
    ~CountingContext() override { --*live_; }
    std::atomic<int>* live_;
};

} // namespace

TEST(ThreadPool, ContextsLiveExactlyOneRunBatch)
{
    std::atomic<int> live{0};
    std::atomic<int> created{0};
    ContextFactory make = [&](int) {
        created++;
        return std::make_unique<CountingContext>(&live);
    };
    ThreadPool pool(3);
    for (int round = 0; round < 2; ++round) {
        pool.run(12, make,
                 [&](uint64_t, int, WorkerContext* ctx) {
                     ASSERT_NE(ctx, nullptr);
                     EXPECT_GE(live.load(), 1);
                 });
        // Teardown happens before run() returns — never later: a
        // context may pin a whole model pair, and the next batch may
        // use a different factory.
        EXPECT_EQ(live.load(), 0) << "round " << round;
    }
    // Fresh contexts each round: 3 workers x 2 rounds.
    EXPECT_EQ(created.load(), 6);
}

TEST(ThreadPool, EachWorkerSeesOneStableContextPerRun)
{
    std::atomic<int> live{0};
    ThreadPool pool(4);
    std::vector<WorkerContext*> ctx_of(40, nullptr);
    pool.run(40,
             [&](int) { return std::make_unique<CountingContext>(&live); },
             [&](uint64_t i, int, WorkerContext* ctx) {
                 ctx_of[i] = ctx;
             });
    // Static sharding: item i belongs to worker i % 4, and every item
    // of a worker saw the same context object.
    for (uint64_t i = 0; i < 40; ++i) {
        ASSERT_NE(ctx_of[i], nullptr) << "item " << i;
        EXPECT_EQ(ctx_of[i], ctx_of[i % 4]) << "item " << i;
    }
    std::set<WorkerContext*> distinct(ctx_of.begin(), ctx_of.end());
    EXPECT_EQ(distinct.size(), 4u);
    EXPECT_EQ(live.load(), 0);
}

TEST(ThreadPool, SerialContextRunStaysInlineAndTearsDown)
{
    std::atomic<int> live{0};
    ThreadPool pool(1);
    std::thread::id caller = std::this_thread::get_id();
    bool inline_run = false;
    pool.run(5,
             [&](int) { return std::make_unique<CountingContext>(&live); },
             [&](uint64_t, int, WorkerContext* ctx) {
                 ASSERT_NE(ctx, nullptr);
                 inline_run = std::this_thread::get_id() == caller;
             });
    EXPECT_TRUE(inline_run);
    EXPECT_EQ(live.load(), 0);
}

TEST(ParallelForCtx, ContextsTornDownEvenWhenAnItemThrows)
{
    std::atomic<int> live{0};
    try {
        parallel_for_ctx(
            16, 4,
            [&](int) { return std::make_unique<CountingContext>(&live); },
            [&](uint64_t i, WorkerContext*) {
                if (i == 5)
                    throw std::runtime_error("item 5");
            });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "item 5");
    }
    EXPECT_EQ(live.load(), 0);
}

TEST(ParallelForMetrics, CompletedShardsMergeEvenWhenAnItemThrows)
{
    // A failed campaign must still report accurate trial counters:
    // the merge happens before the lowest-item exception resurfaces.
    obs::MetricsRegistry merged;
    std::atomic<int> ran{0};
    try {
        parallel_for_metrics(24, 4, merged,
                             [&](uint64_t i, obs::MetricsRegistry& m) {
                                 ran++;
                                 m.inc("trials");
                                 if (i == 7)
                                     throw std::runtime_error("item 7");
                             });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "item 7");
    }
    // The pool joins before rethrowing, so every item ran and every
    // shard's counters — the throwing one's included — are merged.
    EXPECT_EQ(ran.load(), 24);
    EXPECT_EQ(merged.counter("trials"), 24u);
}
