// Checkpoint/replay tests: cuttlesim-ckpt-v1 roundtrips on every
// engine family, corruption/tamper rejection, first-divergence
// bisection, debugger ring spill, and resumable fault campaigns.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "base/io.hpp"
#include "designs/designs.hpp"
#include "fault/fault.hpp"
#include "harness/debug.hpp"
#include "interp/reference_model.hpp"
#include "replay/bisect.hpp"
#include "replay/checkpoint.hpp"
#include "sim/state.hpp"
#include "sim/tiers.hpp"

using namespace koika;
using replay::Checkpoint;

namespace {

// Engine family under test: -1 is the reference interpreter, 0..5 the
// tier engines. GeneratedModel roundtrips live in test_generated.cpp
// (they need the build-time model headers).
std::unique_ptr<sim::Model>
make_model(const Design& d, int engine)
{
    if (engine < 0)
        return std::make_unique<ReferenceModel>(d);
    return sim::make_engine(d, (sim::Tier)engine);
}

std::string
tmp_path(const std::string& name)
{
    return ::testing::TempDir() + name;
}

void
expect_same_state(const Design& d, const sim::Model& a,
                  const sim::Model& b, const char* what)
{
    EXPECT_EQ(a.cycles_run(), b.cycles_run()) << what;
    for (size_t r = 0; r < d.num_registers(); ++r)
        EXPECT_EQ(a.get_reg((int)r), b.get_reg((int)r))
            << what << ": register " << d.reg((int)r).name;
}

} // namespace

TEST(Checkpoint, RoundtripOnEveryEngine)
{
    auto d = designs::build_collatz();
    for (int engine = -1; engine <= 5; ++engine) {
        SCOPED_TRACE(engine < 0 ? std::string("ref")
                                : "T" + std::to_string(engine));
        auto a = make_model(*d, engine);
        auto* acov = dynamic_cast<sim::CoverageModel*>(a.get());
        ASSERT_NE(acov, nullptr);
        acov->enable_coverage();
        for (int i = 0; i < 60; ++i)
            a->cycle();

        // Serialize through the on-disk format, not just the object.
        Checkpoint ck =
            Checkpoint::deserialize(Checkpoint::capture(*d, *a)
                                        .serialize());
        EXPECT_EQ(ck.design, d->name());
        EXPECT_EQ(ck.cycle, 60u);

        auto b = make_model(*d, engine);
        EXPECT_TRUE(ck.restore_into(*d, *b));
        expect_same_state(*d, *a, *b, "after restore");

        // The restored engine must continue exactly like the original:
        // state, firing history, counters, and coverage all line up.
        for (int i = 0; i < 60; ++i) {
            a->cycle();
            b->cycle();
        }
        expect_same_state(*d, *a, *b, "after 60 more cycles");
        auto* as = dynamic_cast<sim::RuleStatsModel*>(a.get());
        auto* bs = dynamic_cast<sim::RuleStatsModel*>(b.get());
        ASSERT_NE(as, nullptr);
        ASSERT_NE(bs, nullptr);
        EXPECT_EQ(as->rule_commit_counts(), bs->rule_commit_counts());
        EXPECT_EQ(as->rule_abort_counts(), bs->rule_abort_counts());
        EXPECT_EQ(as->fired(), bs->fired());
        auto* bcov = dynamic_cast<sim::CoverageModel*>(b.get());
        ASSERT_NE(bcov, nullptr);
        EXPECT_EQ(acov->stmt_counts(), bcov->stmt_counts());
        EXPECT_EQ(acov->branch_taken_counts(),
                  bcov->branch_taken_counts());
    }
}

TEST(Checkpoint, SectionsSurviveSerialization)
{
    auto d = designs::build_collatz();
    auto m = make_model(*d, 5);
    for (int i = 0; i < 10; ++i)
        m->cycle();
    Checkpoint ck = Checkpoint::capture(*d, *m);
    sim::StateWriter w;
    w.put_u64(0xDEADBEEFu);
    w.put_string("pending response");
    ck.set_section("env", w.take());

    Checkpoint back = Checkpoint::deserialize(ck.serialize());
    EXPECT_EQ(back.fingerprint, replay::design_fingerprint(*d));
    EXPECT_EQ(back.widths, ck.widths);
    EXPECT_EQ(back.regs, ck.regs);
    ASSERT_NE(back.section("engine:tier-v1"), nullptr);
    EXPECT_EQ(back.section("missing"), nullptr);
    const std::string* env = back.section("env");
    ASSERT_NE(env, nullptr);
    sim::StateReader r(*env);
    EXPECT_EQ(r.get_u64(), 0xDEADBEEFu);
    EXPECT_EQ(r.get_string(), "pending response");
    EXPECT_TRUE(r.done());
}

TEST(Checkpoint, RejectsCorruptionAndTamper)
{
    auto d = designs::build_collatz();
    auto m = make_model(*d, 5);
    for (int i = 0; i < 20; ++i)
        m->cycle();
    const std::string bytes = Checkpoint::capture(*d, *m).serialize();

    // Bad magic.
    std::string bad = bytes;
    bad[0] = 'X';
    EXPECT_THROW(Checkpoint::deserialize(bad), FatalError);
    // Flipped payload byte: the trailing SHA-256 must catch it.
    bad = bytes;
    bad[bytes.size() / 2] ^= 0x40;
    EXPECT_THROW(Checkpoint::deserialize(bad), FatalError);
    // Truncation, both mid-payload and mid-checksum.
    EXPECT_THROW(Checkpoint::deserialize(bytes.substr(
                     0, bytes.size() / 2)),
                 FatalError);
    EXPECT_THROW(Checkpoint::deserialize(bytes.substr(
                     0, bytes.size() - 7)),
                 FatalError);
    // The pristine bytes still load (the cases above really were the
    // corruption, not a broken serializer).
    EXPECT_NO_THROW(Checkpoint::deserialize(bytes));
}

TEST(Checkpoint, RejectsWrongDesign)
{
    auto collatz = designs::build_collatz();
    auto fir = designs::build_fir();
    auto m = make_model(*collatz, 5);
    for (int i = 0; i < 20; ++i)
        m->cycle();
    Checkpoint ck = Checkpoint::capture(*collatz, *m);

    // A checkpoint from another design must be refused outright.
    auto other = make_model(*fir, 5);
    EXPECT_THROW(ck.restore_into(*fir, *other), FatalError);

    // Same design name, tampered fingerprint: a stale checkpoint from
    // an edited design must not restore either.
    Checkpoint stale = ck;
    stale.fingerprint[0] = stale.fingerprint[0] == 'a' ? 'b' : 'a';
    auto fresh = make_model(*collatz, 5);
    EXPECT_THROW(stale.restore_into(*collatz, *fresh), FatalError);
}

TEST(Checkpoint, CrossEngineFamilyRestoresRegistersOnly)
{
    auto d = designs::build_collatz();
    auto tier = make_model(*d, 5);
    for (int i = 0; i < 30; ++i)
        tier->cycle();
    Checkpoint ck = Checkpoint::capture(*d, *tier);

    // A tier checkpoint restored into the reference interpreter:
    // registers carry over, engine counters cannot (different family),
    // and restore_into says so by returning false.
    ReferenceModel ref(*d);
    EXPECT_FALSE(ck.restore_into(*d, ref));
    for (size_t r = 0; r < d->num_registers(); ++r)
        EXPECT_EQ(ref.get_reg((int)r), tier->get_reg((int)r));
    EXPECT_EQ(ref.cycles_run(), 0u);

    // Same family restores everything.
    auto tier2 = make_model(*d, 5);
    EXPECT_TRUE(ck.restore_into(*d, *tier2));
    EXPECT_EQ(tier2->cycles_run(), 30u);
}

TEST(Checkpoint, SaveLoadThroughDisk)
{
    auto d = designs::build_collatz();
    auto m = make_model(*d, 3);
    for (int i = 0; i < 25; ++i)
        m->cycle();
    Checkpoint ck = Checkpoint::capture(*d, *m);
    std::string path = tmp_path("replay_roundtrip.ckpt");
    ck.save(path);
    Checkpoint back = Checkpoint::load(path);
    EXPECT_EQ(back.serialize(), ck.serialize());
    std::remove(path.c_str());
    EXPECT_THROW(Checkpoint::load(path), FatalError);
}

TEST(SpillStream, RoundtripsRecordsInOrder)
{
    auto d = designs::build_collatz();
    auto m = make_model(*d, 5);
    std::string stream;
    for (int i = 0; i < 3; ++i) {
        m->cycle();
        replay::append_spill_record(stream,
                                    Checkpoint::capture(*d, *m));
    }
    std::vector<Checkpoint> records =
        replay::parse_spill_stream(stream);
    ASSERT_EQ(records.size(), 3u);
    for (size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(records[i].cycle, i + 1);
        EXPECT_EQ(records[i].design, d->name());
    }
    // A truncated stream is corruption, not a shorter history.
    EXPECT_THROW(replay::parse_spill_stream(
                     stream.substr(0, stream.size() - 3)),
                 FatalError);
}

namespace {

replay::SubjectFactory
tier_subject(const Design& d,
             sim::Tier tier = sim::Tier::kT5StaticAnalysis)
{
    return [&d, tier]() {
        replay::Subject s;
        s.model = sim::make_engine(d, tier);
        return s;
    };
}

} // namespace

TEST(Bisect, FindsExactPerturbedCycleAndRegister)
{
    auto d = designs::build_collatz();
    int x = d->reg_index("x");
    ASSERT_GE(x, 0);
    replay::BisectConfig cfg;
    cfg.horizon = 200;
    // Deterministic single-bit upset after 70 committed cycles; the
    // bisector must name that exact cycle and register without ever
    // being told where it is.
    cfg.perturb_b = [x](sim::Model& m, uint64_t committed) {
        if (committed == 70) {
            Bits v = m.get_reg(x);
            m.set_reg(x, v.with_bit(2, !v.bit(2)));
        }
    };
    replay::DivergenceReport rep = replay::bisect_divergence(
        *d, tier_subject(*d), tier_subject(*d), cfg);
    EXPECT_TRUE(rep.diverged);
    EXPECT_EQ(rep.cycle, 70u);
    EXPECT_EQ(rep.reg, x);
    EXPECT_EQ(rep.reg_name, "x");
    EXPECT_NE(rep.value_a, rep.value_b);
    // The scan + binary search must beat the naive per-cycle compare.
    EXPECT_LT(rep.state_compares, 70u);
    EXPECT_GT(rep.checkpoints, 0u);
}

TEST(Bisect, AgreeingEnginesReportNoDivergence)
{
    auto d = designs::build_collatz();
    replay::BisectConfig cfg;
    cfg.horizon = 150;
    replay::DivergenceReport rep = replay::bisect_divergence(
        *d, tier_subject(*d, sim::Tier::kT0Naive),
        tier_subject(*d, sim::Tier::kT4MergedData), cfg);
    EXPECT_FALSE(rep.diverged);
    EXPECT_GT(rep.state_compares, 0u);
}

TEST(Debugger, SpillExtendsReverseWatchpointPastRing)
{
    auto d = designs::build_collatz();
    int seq = d->reg_index("sequences");
    ASSERT_GE(seq, 0);

    // Independently find the cycle where `sequences` last changes in
    // the first 120 cycles (the reload after x reaches 1), so the test
    // asserts the exact distance rather than just "found".
    auto probe = sim::make_engine(*d, sim::Tier::kT4MergedData);
    uint64_t change_cycle = 0;
    Bits prev = probe->get_reg(seq);
    for (uint64_t c = 1; c <= 120; ++c) {
        probe->cycle();
        Bits cur = probe->get_reg(seq);
        if (cur != prev)
            change_cycle = c;
        prev = cur;
    }
    ASSERT_GT(change_cycle, 0u);
    uint64_t expected_ago = 120 - change_cycle;

    // A 6-frame ring cannot hold that change...
    ASSERT_GT(expected_ago, 6u);
    auto e1 = sim::make_engine(*d, sim::Tier::kT4MergedData);
    harness::Debugger plain(*d, *e1, 6);
    for (int i = 0; i < 120; ++i)
        plain.step();
    EXPECT_GT(plain.dropped(), 0u);
    // ...so without a spill the honest answer is "unknowable".
    EXPECT_EQ(plain.last_change("sequences").status,
              harness::LastChange::kTruncated);

    // With a spill stream the evicted frames stay consultable and the
    // watchpoint reports the exact distance.
    auto e2 = sim::make_engine(*d, sim::Tier::kT4MergedData);
    harness::Debugger spilling(*d, *e2, 6);
    std::string path = tmp_path("replay_dbg.spill");
    spilling.enable_spill(path);
    for (int i = 0; i < 120; ++i)
        spilling.step();
    harness::LastChange lc = spilling.last_change("sequences");
    EXPECT_EQ(lc.status, harness::LastChange::kFound);
    EXPECT_EQ(lc.ago, expected_ago);
    // `steps` resets on the same reload and then keeps counting: it
    // changes every cycle, found at distance 0 straight from the ring.
    EXPECT_EQ(spilling.last_change("x").status,
              harness::LastChange::kFound);
    EXPECT_EQ(spilling.last_change("x").ago, 0u);
    std::remove(path.c_str());
}

TEST(Debugger, NeverChangedNeedsCompleteHistory)
{
    auto d = designs::build_collatz();
    // 20 cycles from 27 never reload: lfsr is genuinely constant.
    auto e1 = sim::make_engine(*d, sim::Tier::kT4MergedData);
    harness::Debugger plain(*d, *e1, 8);
    for (int i = 0; i < 20; ++i)
        plain.step();
    // Frames were dropped and no spill exists: "never changed" would
    // be a guess, so the debugger refuses to make it.
    EXPECT_GT(plain.dropped(), 0u);
    EXPECT_EQ(plain.last_change("lfsr").status,
              harness::LastChange::kTruncated);

    auto e2 = sim::make_engine(*d, sim::Tier::kT4MergedData);
    harness::Debugger spilling(*d, *e2, 8);
    std::string path = tmp_path("replay_dbg2.spill");
    spilling.enable_spill(path);
    for (int i = 0; i < 20; ++i)
        spilling.step();
    EXPECT_EQ(spilling.last_change("lfsr").status,
              harness::LastChange::kNeverChanged);
    std::remove(path.c_str());
}

TEST(Debugger, DrivesAnyModelWithCapabilityChecks)
{
    // The debugger takes any sim::Model now; the reference interpreter
    // exposes rule stats (breakpoints work) but cannot step mid-cycle,
    // and asking for that is a clean fatal, not UB.
    auto d = designs::build_collatz();
    ReferenceModel ref(*d);
    harness::Debugger dbg(*d, ref);
    EXPECT_EQ(dbg.break_on_commit("step_even", 1000), 2u);
    harness::LastChange lc = dbg.last_change("x");
    EXPECT_EQ(lc.status, harness::LastChange::kFound);
    EXPECT_FALSE(dbg.can_step_rules());
    EXPECT_THROW(dbg.tier_model(), FatalError);

    auto tier = sim::make_engine(*d, sim::Tier::kT5StaticAnalysis);
    harness::Debugger tdbg(*d, *tier);
    EXPECT_TRUE(tdbg.can_step_rules());
    EXPECT_NO_THROW(tdbg.tier_model());
}

TEST(StateCodec, PrimitivesRoundtripAndShortReadsFail)
{
    sim::StateWriter w;
    w.put_u32(7);
    w.put_u64(0x0123456789ABCDEFull);
    w.put_string(std::string("hello\0world", 11));
    w.put_u64_vec({1, 2, 3});
    w.put_bool_vec({true, false, true, true});
    std::string bytes = w.take();

    sim::StateReader r(bytes);
    EXPECT_EQ(r.get_u32(), 7u);
    EXPECT_EQ(r.get_u64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(r.get_string(), std::string("hello\0world", 11));
    EXPECT_EQ(r.get_u64_vec(), (std::vector<uint64_t>{1, 2, 3}));
    EXPECT_EQ(r.get_bool_vec(),
              (std::vector<bool>{true, false, true, true}));
    EXPECT_TRUE(r.done());

    // Reading past the end is corruption, reported as such.
    sim::StateReader short_r(bytes.substr(0, 6));
    short_r.get_u32();
    EXPECT_THROW(short_r.get_u64(), FatalError);
}

TEST(FaultCampaign, ResumesMidCampaignByteIdentically)
{
    auto d = designs::build_collatz();
    fault::TargetFactory factory = fault::closed_target([&d]() {
        return sim::make_engine(*d, sim::Tier::kT5StaticAnalysis);
    });
    fault::CampaignConfig config;
    config.seed = 11;
    config.count = 10;
    config.cycles = 120;

    std::string baseline =
        fault::run_campaign(*d, factory, config).to_json().dump(2);

    std::string path = tmp_path("replay_fault.ckpt");
    std::remove(path.c_str());
    config.checkpoint_file = path;
    config.checkpoint_every = 3;
    fault::CampaignReport first =
        fault::run_campaign(*d, factory, config);
    EXPECT_EQ(first.resumed, 0u);
    EXPECT_EQ(first.to_json().dump(2), baseline);

    // Rewind the progress file to 4 completed injections — exactly
    // what a kill mid-campaign leaves behind (saves are atomic, so the
    // file is always a valid prefix) — and resume.
    obs::Json full = obs::Json::parse(read_file(path));
    obs::Json partial = obs::Json::object();
    partial["schema"] = *full.find("schema");
    partial["design"] = *full.find("design");
    partial["config"] = *full.find("config");
    partial["completed"] = (uint64_t)4;
    obs::Json list = obs::Json::array();
    for (size_t i = 0; i < 4; ++i)
        list.push_back(full.find("injections")->at(i));
    partial["injections"] = std::move(list);
    write_file_atomic(path, partial.dump(2) + "\n");

    fault::CampaignReport resumed =
        fault::run_campaign(*d, factory, config);
    EXPECT_EQ(resumed.resumed, 4u);
    EXPECT_EQ(resumed.to_json().dump(2), baseline);

    // A checkpoint from different flags must be refused, not resumed.
    fault::CampaignConfig other = config;
    other.seed = 12;
    EXPECT_THROW(fault::run_campaign(*d, factory, other), FatalError);
    std::remove(path.c_str());
}
