// RTL pipeline tests: lowering correctness (differential vs reference),
// the optimizer's semantics preservation and shrinkage, the event-driven
// simulator, and the Verilog emitter.

#include <gtest/gtest.h>

#include "harness/lockstep.hpp"
#include "harness/random_design.hpp"
#include "interp/reference_model.hpp"
#include "koika/builder.hpp"
#include "koika/typecheck.hpp"
#include "rtl/cyclesim.hpp"
#include "rtl/eventsim.hpp"
#include "rtl/lower.hpp"
#include "rtl/optimize.hpp"
#include "rtl/verilog.hpp"

using namespace koika;
using namespace koika::rtl;
using koika::harness::random_design;
using koika::harness::RandomDesignConfig;
using koika::harness::run_lockstep;

namespace {

std::unique_ptr<Design>
counter_design()
{
    auto d = std::make_unique<Design>("counter");
    Builder b(*d);
    int x = b.reg("x", 8, 0);
    d->add_rule("inc", b.write0(x, b.add(b.read0(x), b.k(8, 1))));
    d->schedule("inc");
    typecheck(*d);
    return d;
}

std::unique_ptr<Design>
conflict_design()
{
    auto d = std::make_unique<Design>("conflict");
    Builder b(*d);
    int x = b.reg("x", 8, 0);
    int c = b.reg("c", 1, 0);
    d->add_rule("flip", b.write0(c, b.not_(b.read0(c))));
    d->add_rule("w1", b.seq({b.guard(b.read1(c)),
                             b.write0(x, b.k(8, 1))}));
    d->add_rule("w2", b.write0(x, b.add(b.read0(x), b.k(8, 2))));
    d->schedule("flip");
    d->schedule("w1");
    d->schedule("w2");
    typecheck(*d);
    return d;
}

} // namespace

TEST(RtlLower, CounterMatchesReference)
{
    auto d = counter_design();
    CycleSim rtl(lower(*d));
    for (int i = 1; i <= 10; ++i) {
        rtl.cycle();
        EXPECT_EQ(rtl.get_reg(0).to_u64(), (uint64_t)i);
    }
}

TEST(RtlLower, AllRulesComputedEveryCycle)
{
    // The lowered netlist's size is independent of which rules fire: the
    // §2.3 observation that RTL always pays for every rule.
    auto d = conflict_design();
    Netlist nl = lower(*d);
    EXPECT_GT(nl.num_nodes(), 15u);
    // Every register has a next-value node.
    for (size_t r = 0; r < d->num_registers(); ++r)
        EXPECT_GE(nl.reg_next((int)r), 0);
}

TEST(RtlLower, ConflictsResolvedLikeReference)
{
    auto d = conflict_design();
    ReferenceModel ref(*d);
    CycleSim rtl(lower(*d));
    std::vector<sim::Model*> models = {&ref, &rtl};
    auto result = run_lockstep(*d, models, 20);
    EXPECT_TRUE(result.ok) << result.detail;
}

TEST(RtlLower, GoldbergianContraptionMatches)
{
    // The full log semantics, including intra-rule port interactions,
    // must survive lowering.
    Design d("gold");
    Builder b(d);
    int r = b.reg("r", 8, 0);
    int saw0 = b.reg("saw0", 8, 0xFF);
    int saw1 = b.reg("saw1", 8, 0xFF);
    d.add_rule("rl", b.seq({b.write0(r, b.k(8, 1)),
                            b.write1(r, b.k(8, 2)),
                            b.write1(saw0, b.read0(r)),
                            b.write1(saw1, b.read1(r))}));
    d.schedule("rl");
    typecheck(d);
    CycleSim rtl(lower(d));
    rtl.cycle();
    EXPECT_EQ(rtl.get_reg(saw0).to_u64(), 0u);
    EXPECT_EQ(rtl.get_reg(saw1).to_u64(), 1u);
    EXPECT_EQ(rtl.get_reg(r).to_u64(), 2u);
}

TEST(RtlOptimize, PreservesSemantics)
{
    auto d = conflict_design();
    CycleSim plain(lower(*d));
    CycleSim opt(optimize(lower(*d)));
    std::vector<sim::Model*> models = {&plain, &opt};
    auto result = run_lockstep(*d, models, 30);
    EXPECT_TRUE(result.ok) << result.detail;
}

TEST(RtlOptimize, ShrinksNetlist)
{
    auto d = conflict_design();
    Netlist plain = lower(*d);
    Netlist opt = optimize(plain);
    EXPECT_LT(opt.num_nodes(), plain.num_nodes());
}

TEST(RtlOptimize, CseMergesDuplicateNodes)
{
    Design d("cse");
    Builder b(d);
    int x = b.reg("x", 8, 0);
    int y = b.reg("y", 8, 0);
    // Two rules computing the same expression x+3.
    d.add_rule("a", b.write0(y, b.add(b.read0(x), b.k(8, 3))));
    d.add_rule("bb", b.write1(x, b.add(b.read0(x), b.k(8, 3))));
    d.schedule("a");
    d.schedule("bb");
    typecheck(d);
    Netlist opt = optimize(lower(d));
    // Count adders: the x+3 must appear exactly once.
    int adders = 0;
    for (size_t i = 0; i < opt.num_nodes(); ++i)
        if (opt.node((int)i).kind == NodeKind::kBinop &&
            opt.node((int)i).op == Op::kAdd)
            ++adders;
    EXPECT_EQ(adders, 1);
}

TEST(RtlEventSim, MatchesCycleSim)
{
    auto d = conflict_design();
    CycleSim cyc(lower(*d));
    EventSim evt(lower(*d));
    std::vector<sim::Model*> models = {&cyc, &evt};
    auto result = run_lockstep(*d, models, 50);
    EXPECT_TRUE(result.ok) << result.detail;
}

TEST(RtlEventSim, QuiescentDesignProcessesFewEvents)
{
    // A design whose state stops changing should stop generating events.
    Design d("quiet");
    Builder b(d);
    int x = b.reg("x", 8, 0);
    // Saturating: x stays at 3 forever after 3 cycles.
    d.add_rule("sat", b.seq({b.guard(b.ltu(b.read0(x), b.k(8, 3))),
                             b.write0(x, b.add(b.read0(x), b.k(8, 1)))}));
    d.schedule("sat");
    typecheck(d);
    EventSim evt(lower(d));
    for (int i = 0; i < 10; ++i)
        evt.cycle();
    uint64_t events_at_10 = evt.events_processed();
    for (int i = 0; i < 100; ++i)
        evt.cycle();
    // After quiescence, no node re-evaluations at all.
    EXPECT_EQ(evt.events_processed(), events_at_10);
    EXPECT_EQ(evt.get_reg(x).to_u64(), 3u);
}

TEST(RtlVerilog, EmitsStructuralModule)
{
    auto d = counter_design();
    std::string v = emit_verilog(lower(*d), "counter");
    EXPECT_NE(v.find("module counter(input wire CLK);"),
              std::string::npos);
    EXPECT_NE(v.find("reg [7:0] x = 8'h0;"), std::string::npos);
    EXPECT_NE(v.find("always @(posedge CLK)"), std::string::npos);
    EXPECT_NE(v.find("endmodule"), std::string::npos);
    EXPECT_GT(verilog_sloc(lower(*d)), 5u);
}

TEST(RtlVerilog, SignedOpsUseSystemFunctions)
{
    Design d("s");
    Builder b(d);
    int x = b.reg("x", 8, 0);
    int y = b.reg("y", 1, 0);
    d.add_rule("r", b.write0(y, b.lts(b.read0(x), b.k(8, 3))));
    d.schedule("r");
    typecheck(d);
    std::string v = emit_verilog(lower(d), "s");
    EXPECT_NE(v.find("$signed"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Random differential sweeps: lowered netlists (plain and optimized) and
// the event simulator against the reference interpreter.
// ---------------------------------------------------------------------------

class RtlRandomSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RtlRandomSweep, LoweringMatchesReference)
{
    for (uint64_t s = 0; s < 4; ++s) {
        auto d = random_design(GetParam() * 1000 + s);
        ReferenceModel ref(*d);
        CycleSim rtl(lower(*d));
        std::vector<sim::Model*> models = {&ref, &rtl};
        auto result = run_lockstep(*d, models, 30);
        EXPECT_TRUE(result.ok) << d->name() << ": " << result.detail;
    }
}

TEST_P(RtlRandomSweep, OptimizedMatchesReference)
{
    auto d = random_design(GetParam() * 733 + 11);
    ReferenceModel ref(*d);
    CycleSim rtl(optimize(lower(*d)));
    std::vector<sim::Model*> models = {&ref, &rtl};
    auto result = run_lockstep(*d, models, 30);
    EXPECT_TRUE(result.ok) << d->name() << ": " << result.detail;
}

TEST_P(RtlRandomSweep, EventSimMatchesReference)
{
    auto d = random_design(GetParam() * 377 + 7);
    ReferenceModel ref(*d);
    EventSim evt(lower(*d));
    std::vector<sim::Model*> models = {&ref, &evt};
    auto result = run_lockstep(*d, models, 30);
    EXPECT_TRUE(result.ok) << d->name() << ": " << result.detail;
}

TEST_P(RtlRandomSweep, WideRegistersThroughRtl)
{
    RandomDesignConfig cfg;
    cfg.wide_registers = true;
    auto d = random_design(GetParam() * 13 + 2, cfg);
    ReferenceModel ref(*d);
    CycleSim rtl(optimize(lower(*d)));
    std::vector<sim::Model*> models = {&ref, &rtl};
    auto result = run_lockstep(*d, models, 20);
    EXPECT_TRUE(result.ok) << d->name() << ": " << result.detail;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RtlRandomSweep,
                         ::testing::Range<uint64_t>(1, 26));
