// Unit and property tests for the Bits bit-vector kernel.
//
// Narrow values (width <= 64) are checked against plain uint64_t
// arithmetic; wide values are checked through algebraic identities and
// through splitting into word-sized chunks.

#include <gtest/gtest.h>

#include <random>

#include "base/bits.hpp"

using koika::Bits;

namespace {

uint64_t
mask(uint32_t w)
{
    return w >= 64 ? ~uint64_t{0} : (uint64_t{1} << w) - 1;
}

} // namespace

TEST(Bits, ZeroesOnesBasics)
{
    Bits z = Bits::zeroes(17);
    EXPECT_EQ(z.width(), 17u);
    EXPECT_TRUE(z.is_zero());
    Bits o = Bits::ones(17);
    EXPECT_EQ(o.to_u64(), mask(17));
    EXPECT_FALSE(o.is_zero());
}

TEST(Bits, OfTruncatesToWidth)
{
    EXPECT_EQ(Bits::of(4, 0xff).to_u64(), 0xfu);
    EXPECT_EQ(Bits::of(1, 2).to_u64(), 0u);
    EXPECT_EQ(Bits::of(64, ~uint64_t{0}).to_u64(), ~uint64_t{0});
}

TEST(Bits, UnitValue)
{
    Bits u;
    EXPECT_EQ(u.width(), 0u);
    EXPECT_TRUE(u.is_zero());
    EXPECT_EQ(u, Bits::zeroes(0));
}

TEST(Bits, OfStringMsbFirst)
{
    Bits b = Bits::of_string("1010");
    EXPECT_EQ(b.width(), 4u);
    EXPECT_EQ(b.to_u64(), 0b1010u);
    EXPECT_TRUE(b.bit(1));
    EXPECT_FALSE(b.bit(0));
}

TEST(Bits, BitAccess)
{
    Bits b = Bits::of(8, 0b10010110);
    EXPECT_FALSE(b.bit(0));
    EXPECT_TRUE(b.bit(1));
    EXPECT_TRUE(b.bit(7));
    Bits c = b.with_bit(0, true).with_bit(7, false);
    EXPECT_EQ(c.to_u64(), 0b00010111u);
}

TEST(Bits, EqualityRequiresSameWidth)
{
    EXPECT_NE(Bits::of(8, 5), Bits::of(9, 5));
    EXPECT_EQ(Bits::of(8, 5), Bits::of(8, 5));
}

TEST(Bits, ConcatOrdering)
{
    // concat(hi, lo): hi becomes the most significant part.
    Bits hi = Bits::of(4, 0xA);
    Bits lo = Bits::of(8, 0xBC);
    Bits c = hi.concat(lo);
    EXPECT_EQ(c.width(), 12u);
    EXPECT_EQ(c.to_u64(), 0xABCu);
}

TEST(Bits, SliceFromLsb)
{
    Bits v = Bits::of(16, 0xABCD);
    EXPECT_EQ(v.slice(0, 4).to_u64(), 0xDu);
    EXPECT_EQ(v.slice(4, 8).to_u64(), 0xBCu);
    EXPECT_EQ(v.slice(12, 4).to_u64(), 0xAu);
    EXPECT_EQ(v.slice(0, 16), v);
}

TEST(Bits, ZextSextTruncate)
{
    Bits v = Bits::of(8, 0x80);
    EXPECT_EQ(v.zextl(16).to_u64(), 0x0080u);
    EXPECT_EQ(v.sextl(16).to_u64(), 0xFF80u);
    EXPECT_EQ(v.sextl(4).to_u64(), 0x0u);
    Bits pos = Bits::of(8, 0x7f);
    EXPECT_EQ(pos.sextl(16).to_u64(), 0x007fu);
}

TEST(Bits, ShiftEdgeCases)
{
    Bits v = Bits::of(8, 0x81);
    EXPECT_EQ(v.shl_by(0), v);
    EXPECT_EQ(v.shl_by(8).to_u64(), 0u);
    EXPECT_EQ(v.shr_by(8).to_u64(), 0u);
    EXPECT_EQ(v.asr_by(8).to_u64(), 0xffu);
    EXPECT_EQ(v.asr_by(1).to_u64(), 0xc0u);
    EXPECT_EQ(Bits::of(8, 0x41).asr_by(1).to_u64(), 0x20u);
}

TEST(Bits, SignedCompare)
{
    Bits minus_one = Bits::of(8, 0xff);
    Bits one = Bits::of(8, 1);
    EXPECT_TRUE(minus_one.lts(one).truthy());
    EXPECT_FALSE(one.lts(minus_one).truthy());
    EXPECT_TRUE(minus_one.ltu(one).is_zero());
    EXPECT_TRUE(minus_one.les(minus_one).truthy());
}

TEST(Bits, NegAndSub)
{
    Bits v = Bits::of(8, 1);
    EXPECT_EQ(v.neg().to_u64(), 0xffu);
    EXPECT_EQ(Bits::of(8, 5).sub(Bits::of(8, 7)).to_u64(), 0xfeu);
    EXPECT_EQ(Bits::zeroes(8).neg().to_u64(), 0u);
}

TEST(Bits, StrRendering)
{
    EXPECT_EQ(Bits::of(4, 0b1010).str(), "4'b1010");
    EXPECT_EQ(Bits::of(32, 0xDEADBEEF).str(), "32'xdeadbeef");
}

TEST(Bits, HashDiffersByWidthAndValue)
{
    EXPECT_NE(Bits::of(8, 1).hash(), Bits::of(8, 2).hash());
    EXPECT_NE(Bits::of(8, 1).hash(), Bits::of(9, 1).hash());
    EXPECT_EQ(Bits::of(8, 1).hash(), Bits::of(8, 1).hash());
}

// ---------------------------------------------------------------------------
// Property sweeps against uint64_t reference semantics.
// ---------------------------------------------------------------------------

class BitsWidthProperty : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(BitsWidthProperty, MatchesU64Reference)
{
    uint32_t w = GetParam();
    std::mt19937_64 rng(w * 1234567u + 1);
    uint64_t m = mask(w);
    for (int iter = 0; iter < 200; ++iter) {
        uint64_t x = rng() & m, y = rng() & m;
        Bits bx = Bits::of(w, x), by = Bits::of(w, y);
        EXPECT_EQ(bx.band(by).to_u64(), x & y);
        EXPECT_EQ(bx.bor(by).to_u64(), x | y);
        EXPECT_EQ(bx.bxor(by).to_u64(), x ^ y);
        EXPECT_EQ(bx.bnot().to_u64(), ~x & m);
        EXPECT_EQ(bx.add(by).to_u64(), (x + y) & m);
        EXPECT_EQ(bx.sub(by).to_u64(), (x - y) & m);
        EXPECT_EQ(bx.mul(by).to_u64(), (x * y) & m);
        EXPECT_EQ(bx.eq(by).truthy(), x == y);
        EXPECT_EQ(bx.ltu(by).truthy(), x < y);
        EXPECT_EQ(bx.leu(by).truthy(), x <= y);
        EXPECT_EQ(bx.gtu(by).truthy(), x > y);
        EXPECT_EQ(bx.geu(by).truthy(), x >= y);
        uint64_t sh = y % (w + 2);
        EXPECT_EQ(bx.shl_by(sh).to_u64(), sh >= w ? 0 : (x << sh) & m);
        EXPECT_EQ(bx.shr_by(sh).to_u64(), sh >= w ? 0 : x >> sh);
        if (w > 0 && w < 64) {
            int64_t sx = (int64_t)(x << (64 - w)) >> (64 - w);
            int64_t sy = (int64_t)(y << (64 - w)) >> (64 - w);
            EXPECT_EQ(bx.lts(by).truthy(), sx < sy);
            EXPECT_EQ(bx.les(by).truthy(), sx <= sy);
            EXPECT_EQ(bx.asr_by(sh).to_u64(),
                      (uint64_t)(sx >> std::min<uint64_t>(sh, 63)) & m);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitsWidthProperty,
                         ::testing::Values(1, 2, 3, 5, 7, 8, 12, 16, 17, 31,
                                           32, 33, 48, 63, 64));

class BitsWideProperty : public ::testing::TestWithParam<uint32_t>
{
  protected:
    Bits
    random_bits(std::mt19937_64& rng, uint32_t w)
    {
        uint64_t words[Bits::kMaxWords];
        for (auto& word : words)
            word = rng();
        return Bits::of_words(w, words, Bits::kMaxWords);
    }
};

TEST_P(BitsWideProperty, AlgebraicIdentities)
{
    uint32_t w = GetParam();
    std::mt19937_64 rng(w * 77777u + 3);
    for (int iter = 0; iter < 100; ++iter) {
        Bits x = random_bits(rng, w), y = random_bits(rng, w);
        // x + y - y == x
        EXPECT_EQ(x.add(y).sub(y), x);
        // -(-x) == x
        EXPECT_EQ(x.neg().neg(), x);
        // x ^ y ^ y == x
        EXPECT_EQ(x.bxor(y).bxor(y), x);
        // ~~x == x
        EXPECT_EQ(x.bnot().bnot(), x);
        // De Morgan.
        EXPECT_EQ(x.band(y).bnot(), x.bnot().bor(y.bnot()));
        // Exactly one of <, ==, > holds.
        int cnt = x.ltu(y).truthy() + (x == y) + x.gtu(y).truthy();
        EXPECT_EQ(cnt, 1);
        // Shifts compose.
        EXPECT_EQ(x.shl_by(7).shl_by(11), x.shl_by(18));
        EXPECT_EQ(x.shr_by(7).shr_by(11), x.shr_by(18));
        // Concat/slice round-trip (when the result still fits).
        if (2 * w <= Bits::kMaxWidth) {
            Bits c = x.concat(y);
            EXPECT_EQ(c.slice(0, w), y);
            EXPECT_EQ(c.slice(w, w), x);
        }
        // Word-chunk decomposition of add: low half matches u64 math
        // when no carry crosses word 0.
        EXPECT_EQ(x.add(Bits::zeroes(w)), x);
    }
}

TEST_P(BitsWideProperty, MulMatchesShiftAddDecomposition)
{
    uint32_t w = GetParam();
    std::mt19937_64 rng(w * 999u + 7);
    for (int iter = 0; iter < 40; ++iter) {
        Bits x = random_bits(rng, w);
        uint64_t small = rng() & 0xff;
        Bits y = Bits::of(w, small);
        Bits expect = Bits::zeroes(w);
        for (uint32_t b = 0; b < 8; ++b)
            if ((small >> b) & 1)
                expect = expect.add(x.shl_by(b));
        EXPECT_EQ(x.mul(y), expect);
    }
}

INSTANTIATE_TEST_SUITE_P(WideWidths, BitsWideProperty,
                         ::testing::Values(65, 100, 127, 128, 129, 200, 255,
                                           256, 300, 511, 512));

TEST(Bits, MaxWidthRoundTrip)
{
    std::mt19937_64 rng(42);
    uint64_t words[Bits::kMaxWords];
    for (auto& word : words)
        word = rng();
    Bits x = Bits::of_words(Bits::kMaxWidth, words, Bits::kMaxWords);
    for (uint32_t i = 0; i < Bits::kMaxWords; ++i)
        EXPECT_EQ(x.word(i), words[i]);
    EXPECT_EQ(x.slice(64, 64).to_u64(), words[1]);
}

// -- SHA-256 (src/base/sha256.hpp): FIPS 180-4 test vectors ------------

#include "base/sha256.hpp"

TEST(Sha256, Fips180_4Vectors)
{
    // NIST FIPS 180-4 / NESSIE reference digests.
    EXPECT_EQ(koika::sha256_hex(""),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
    EXPECT_EQ(koika::sha256_hex("abc"),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
    EXPECT_EQ(koika::sha256_hex("abcdbcdecdefdefgefghfghighijhijk"
                                "ijkljklmklmnlmnomnopnopq"),
              "248d6a61d20638b8e5c026930c3e6039"
              "a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAVector)
{
    koika::Sha256 h;
    std::string chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i)
        h.update(chunk);
    EXPECT_EQ(h.hex_digest(),
              "cdc76e5c9914fb9281a1c7e284d73e67"
              "f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot)
{
    std::string data = "the quick brown fox jumps over the lazy dog";
    for (size_t split = 0; split <= data.size(); split += 7) {
        koika::Sha256 h;
        h.update(data.substr(0, split));
        h.update(data.substr(split));
        EXPECT_EQ(h.hex_digest(), koika::sha256_hex(data));
    }
}
