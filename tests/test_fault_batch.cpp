// Batched fault-injection tests (src/fault/batch.cpp): lane-masking
// edge cases and the byte-identity contract. Every record and coverage
// map a batch produces must match what the scalar run_injection path
// produces for the same specs — at any lane count, any job count,
// whether lanes fork from the shared golden or fall back to running
// from cycle 0, and whether they fault out mid-batch.

#include <gtest/gtest.h>

#include <stdexcept>

#include "designs/designs.hpp"
#include "fault/fault.hpp"
#include "koika/builder.hpp"
#include "koika/typecheck.hpp"
#include "sim/tiers.hpp"

using namespace koika;
using namespace koika::fault;

namespace {

/** x += 1 every cycle, unguarded: a flip drifts the count forever. */
std::unique_ptr<Design>
counter_design()
{
    auto d = std::make_unique<Design>("counter");
    Builder b(*d);
    int x = b.reg("x", 8, 0);
    d->add_rule("inc", b.write0(x, b.add(b.read0(x), b.k(8, 1))));
    d->schedule("inc");
    typecheck(*d);
    return d;
}

TargetFactory
tier_factory(const Design& d)
{
    return closed_target([&d]() {
        return sim::make_engine(d, sim::Tier::kT5StaticAnalysis);
    });
}

/** Same engine, but the stimulus asserts on corrupted state: it throws
 *  once x's top bit is set, which only the faulted runs ever do.
 *  Mimics a peripheral tripping on bad state (= "engine fault"). */
TargetFactory
asserting_factory(const Design& d)
{
    return [&d]() {
        FaultTarget t;
        t.model = sim::make_engine(d, sim::Tier::kT5StaticAnalysis);
        t.stimulus = [](sim::Model& m, uint64_t) {
            if (m.get_reg(0).bit(7))
                throw std::runtime_error("peripheral assertion: x MSB");
        };
        return t;
    };
}

/** A target the batch engine cannot fork: it carries live context with
 *  no save_env/load_env, so lanes must re-run from cycle 0. */
TargetFactory
unforkable_factory(const Design& d)
{
    return [&d]() {
        FaultTarget t;
        t.model = sim::make_engine(d, sim::Tier::kT5StaticAnalysis);
        t.context = std::make_shared<int>(0);
        return t;
    };
}

/** Records from the scalar reference path, one run_injection per spec. */
std::vector<InjectionRecord>
scalar_records(const Design& d, const TargetFactory& factory,
               const std::vector<FaultSpec>& specs, uint64_t cycles,
               std::vector<obs::CoverageMap>* coverage = nullptr)
{
    std::vector<InjectionRecord> out;
    if (coverage != nullptr)
        coverage->resize(specs.size());
    for (size_t i = 0; i < specs.size(); ++i)
        out.push_back(run_injection(
            d, factory, specs[i], cycles,
            coverage != nullptr ? &(*coverage)[i] : nullptr));
    return out;
}

/** The byte-identity check: serialized records must match slot by slot. */
void
expect_identical(const std::vector<InjectionRecord>& scalar,
                 const std::vector<InjectionRecord>& batched)
{
    ASSERT_EQ(scalar.size(), batched.size());
    for (size_t i = 0; i < scalar.size(); ++i)
        EXPECT_EQ(injection_to_json(i, scalar[i]).dump(2),
                  injection_to_json(i, batched[i]).dump(2))
            << "record " << i;
}

} // namespace

TEST(FaultBatch, LaneDivergingOnCycleZeroMatchesScalar)
{
    // Injection boundary at cycle 0: the lane forks before a single
    // cycle of shared-golden prefix exists and diverges immediately.
    auto d = counter_design();
    auto factory = tier_factory(*d);
    std::vector<FaultSpec> specs;
    for (uint32_t bit = 0; bit < 4; ++bit)
        specs.push_back({.cycle = 0, .reg = 0, .bit = bit,
                         .kind = FaultKind::kBitFlip});
    std::vector<InjectionRecord> batched(specs.size());
    run_injection_batch(*d, factory, specs.data(), specs.size(), 40,
                        batched.data());
    expect_identical(scalar_records(*d, factory, specs, 40), batched);
    for (const InjectionRecord& rec : batched)
        EXPECT_EQ(rec.first_divergence_cycle, 1u);
}

TEST(FaultBatch, InjectionPastHorizonIsMaskedShadowLane)
{
    // A spec whose injection boundary never arrives: the lane IS the
    // golden run (never instantiated), classified masked with a
    // matching final state — same as the scalar path.
    auto d = counter_design();
    auto factory = tier_factory(*d);
    std::vector<FaultSpec> specs = {
        {.cycle = 100, .reg = 0, .bit = 2, .kind = FaultKind::kBitFlip},
        {.cycle = 5, .reg = 0, .bit = 2, .kind = FaultKind::kBitFlip},
    };
    std::vector<InjectionRecord> batched(specs.size());
    run_injection_batch(*d, factory, specs.data(), specs.size(), 50,
                        batched.data());
    expect_identical(scalar_records(*d, factory, specs, 50), batched);
    EXPECT_EQ(batched[0].outcome, Outcome::kMasked);
    EXPECT_TRUE(batched[0].final_state_matches);
}

TEST(FaultBatch, AllLanesFinishingEarlyMatchesScalar)
{
    // Every lane trips the asserting stimulus within a few cycles of
    // its injection and is masked out of the batch; the remaining
    // cycles advance only the golden. Records (detected, with the
    // engine-fault detail) must still match the scalar path.
    auto d = counter_design();
    auto factory = asserting_factory(*d);
    std::vector<FaultSpec> specs;
    for (uint64_t c = 2; c <= 5; ++c)
        specs.push_back({.cycle = c, .reg = 0, .bit = 7,
                         .kind = FaultKind::kBitFlip});
    std::vector<InjectionRecord> batched(specs.size());
    run_injection_batch(*d, factory, specs.data(), specs.size(), 60,
                        batched.data());
    expect_identical(scalar_records(*d, factory, specs, 60), batched);
    for (const InjectionRecord& rec : batched) {
        EXPECT_EQ(rec.outcome, Outcome::kDetected);
        EXPECT_NE(rec.detect_detail.find("engine fault"),
                  std::string::npos);
    }
}

TEST(FaultBatch, UnforkableTargetFallsBackByteIdentical)
{
    // Live context without save_env/load_env: lanes cannot fork from
    // the golden and re-run from cycle 0 — slower, same bytes.
    auto d = counter_design();
    auto factory = unforkable_factory(*d);
    std::vector<FaultSpec> specs = {
        {.cycle = 3, .reg = 0, .bit = 1, .kind = FaultKind::kBitFlip},
        {.cycle = 7, .reg = 0, .bit = 4, .kind = FaultKind::kStuckAt1,
         .stuck_cycles = 5},
        {.cycle = 12, .reg = 0, .bit = 0, .kind = FaultKind::kStuckAt0,
         .stuck_cycles = 3},
    };
    std::vector<InjectionRecord> batched(specs.size());
    run_injection_batch(*d, factory, specs.data(), specs.size(), 40,
                        batched.data());
    expect_identical(scalar_records(*d, factory, specs, 40), batched);
}

TEST(FaultBatch, CampaignCountNotDivisibleByLanes)
{
    // 7 injections at batch=4: a full batch plus a ragged tail of 3.
    // The report must not betray the lane count.
    auto d = designs::build_design("collatz");
    auto factory = tier_factory(*d);
    CampaignConfig config;
    config.seed = 77;
    config.count = 7;
    config.cycles = 200;
    CampaignReport scalar = run_campaign(*d, factory, config);
    config.batch = 4;
    CampaignReport batched = run_campaign(*d, factory, config);
    scalar.engine = batched.engine = "T5";
    EXPECT_EQ(scalar.to_json().dump(2), batched.to_json().dump(2));
}

TEST(FaultBatch, CampaignCoverageByteIdentity)
{
    // The per-trial coverage maps unpacked from the lanes must merge
    // to the same database bytes as the scalar campaign's.
    auto d = designs::build_design("collatz");
    auto factory = tier_factory(*d);
    CampaignConfig config;
    config.seed = 31;
    config.count = 10;
    config.cycles = 150;
    config.collect_coverage = true;
    CampaignReport scalar = run_campaign(*d, factory, config);
    config.batch = 3;
    CampaignReport batched = run_campaign(*d, factory, config);
    scalar.engine = batched.engine = "T5";
    EXPECT_EQ(scalar.to_json().dump(2), batched.to_json().dump(2));
    ASSERT_TRUE(scalar.has_coverage);
    ASSERT_TRUE(batched.has_coverage);
    EXPECT_EQ(scalar.coverage.to_json().dump(2),
              batched.coverage.to_json().dump(2));
}

TEST(FaultBatch, BatchComposesWithJobs)
{
    // Each pool worker drives one whole lockstep batch; the report is
    // byte-identical at any (batch, jobs) combination.
    auto d = designs::build_design("collatz");
    auto factory = tier_factory(*d);
    CampaignConfig config;
    config.seed = 42;
    config.count = 18;
    config.cycles = 200;
    config.collect_coverage = true;
    CampaignReport scalar = run_campaign(*d, factory, config);
    config.batch = 2;
    config.jobs = 4;
    CampaignReport batched = run_campaign(*d, factory, config);
    scalar.engine = batched.engine = "T5";
    EXPECT_EQ(scalar.to_json().dump(2), batched.to_json().dump(2));
    EXPECT_EQ(scalar.coverage.to_json().dump(2),
              batched.coverage.to_json().dump(2));
}

TEST(FaultBatch, PerTrialCoverageMapsMatchScalar)
{
    // Per-trial maps (not just the merged database) are part of the
    // contract: the orchestrator and the campaign merge them itself.
    auto d = counter_design();
    auto factory = tier_factory(*d);
    std::vector<FaultSpec> specs = {
        {.cycle = 2, .reg = 0, .bit = 0, .kind = FaultKind::kBitFlip},
        {.cycle = 9, .reg = 0, .bit = 3, .kind = FaultKind::kBitFlip},
        {.cycle = 80, .reg = 0, .bit = 5, .kind = FaultKind::kBitFlip},
    };
    std::vector<obs::CoverageMap> want_cov;
    std::vector<InjectionRecord> want =
        scalar_records(*d, factory, specs, 50, &want_cov);
    std::vector<InjectionRecord> batched(specs.size());
    std::vector<obs::CoverageMap> got_cov(specs.size());
    run_injection_batch(*d, factory, specs.data(), specs.size(), 50,
                        batched.data(), got_cov.data());
    expect_identical(want, batched);
    for (size_t i = 0; i < specs.size(); ++i)
        EXPECT_EQ(want_cov[i].to_json().dump(2),
                  got_cov[i].to_json().dump(2))
            << "coverage map " << i;
}
