#include "base/error.hpp"

#include <cstdarg>
#include <vector>

namespace koika {

namespace {

std::string
vformat(const char* fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

} // namespace

void
fatal(const char* fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    throw FatalError(msg);
}

void
panic(const char* fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

} // namespace koika
