#include "base/error.hpp"

#include <cstdarg>
#include <sstream>
#include <vector>

namespace koika {

namespace {

std::string
vformat(const char* fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

} // namespace

std::string
Diagnostic::render() const
{
    if (empty())
        return "";
    std::ostringstream os;
    if (!phase.empty())
        os << "\n  phase:   " << phase;
    if (!design.empty())
        os << "\n  design:  " << design;
    if (!command.empty())
        os << "\n  command: " << command;
    if (!detail.empty()) {
        os << "\n  output:";
        // Indent the captured output so it reads as one block.
        std::istringstream is(detail);
        std::string line;
        while (std::getline(is, line))
            os << "\n    " << line;
    }
    return os.str();
}

namespace {

// Built with += (not operator+) to dodge a GCC 12 -Wrestrict false
// positive on string concatenation.
std::string
compose_what(const std::string& message, const Diagnostic& diag)
{
    std::string what = message;
    what += diag.render();
    return what;
}

} // namespace

FatalError::FatalError(const std::string& message, Diagnostic diag)
    : std::runtime_error(compose_what(message, diag)),
      diag_(std::move(diag)),
      message_(message)
{
}

void
fatal(const char* fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    throw FatalError(msg);
}

void
fatal_diag(Diagnostic diag, const char* fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    throw FatalError(msg, std::move(diag));
}

void
panic(const char* fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

} // namespace koika
