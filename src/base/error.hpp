/**
 * @file
 * Error-reporting helpers shared across the toolchain.
 *
 * Following the gem5 convention we distinguish between internal invariant
 * violations (panic — a bug in this library) and user-facing errors
 * (fatal — a malformed design, a type error, a bad CLI invocation).
 *
 * User-facing errors can carry a structured Diagnostic: which pipeline
 * phase failed, for which design, running which external command, with
 * what captured output. The out-of-process compile harness
 * (src/codegen/compile.cpp) threads this context through every failure so
 * a wedged generated binary or a broken compiler invocation is
 * attributable without re-running anything.
 */
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace koika {

/**
 * Structured context attached to a FatalError. All fields are optional;
 * empty fields are omitted from the rendered message.
 */
struct Diagnostic
{
    /** Pipeline phase that failed: "typecheck", "compile", "run", ... */
    std::string phase;
    /** Design or model-class involved, when known. */
    std::string design;
    /** External command that was executing, when one was. */
    std::string command;
    /** Captured output (compiler stderr, binary stdout, ...). */
    std::string detail;

    bool
    empty() const
    {
        return phase.empty() && design.empty() && command.empty() &&
               detail.empty();
    }

    /** Multi-line "  phase: ..." context block ("" when empty). */
    std::string render() const;
};

/** Error raised for user-facing problems (type errors, bad designs). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& what)
        : std::runtime_error(what), message_(what)
    {
    }

    /** what() becomes `message` followed by the rendered diagnostic. */
    FatalError(const std::string& message, Diagnostic diag);

    const Diagnostic& diagnostic() const { return diag_; }

    /** The message without the diagnostic context block. */
    const std::string& message() const { return message_; }

  private:
    Diagnostic diag_;
    std::string message_;
};

/** Raise a FatalError with a printf-style message. */
[[noreturn]] void fatal(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Raise a FatalError carrying `diag` with a printf-style message. */
[[noreturn]] void fatal_diag(Diagnostic diag, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** Abort the process on an internal invariant violation. */
[[noreturn]] void panic(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Like assert(), but always on, for cheap internal invariants. */
#define KOIKA_CHECK(cond, ...)                                               \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::koika::panic("check failed at %s:%d: %s", __FILE__, __LINE__,  \
                           #cond);                                           \
        }                                                                    \
    } while (0)

} // namespace koika
