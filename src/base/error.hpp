/**
 * @file
 * Error-reporting helpers shared across the toolchain.
 *
 * Following the gem5 convention we distinguish between internal invariant
 * violations (panic — a bug in this library) and user-facing errors
 * (fatal — a malformed design, a type error, a bad CLI invocation).
 */
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace koika {

/** Error raised for user-facing problems (type errors, bad designs). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& what) : std::runtime_error(what) {}
};

/** Raise a FatalError with a printf-style message. */
[[noreturn]] void fatal(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Abort the process on an internal invariant violation. */
[[noreturn]] void panic(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Like assert(), but always on, for cheap internal invariants. */
#define KOIKA_CHECK(cond, ...)                                               \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::koika::panic("check failed at %s:%d: %s", __FILE__, __LINE__,  \
                           #cond);                                           \
        }                                                                    \
    } while (0)

} // namespace koika
