#include "base/io.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "base/error.hpp"

namespace koika {

namespace {

Diagnostic
io_diag(const char* phase, const std::string& path)
{
    Diagnostic diag;
    diag.phase = phase;
    diag.command = path;
    diag.detail = std::strerror(errno);
    return diag;
}

} // namespace

std::string
read_file(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal_diag(io_diag("read-input", path), "cannot read %s",
                   path.c_str());
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad())
        fatal_diag(io_diag("read-input", path), "error reading %s",
                   path.c_str());
    return buf.str();
}

void
write_file_atomic(const std::string& path, const std::string& bytes)
{
    static std::atomic<uint64_t> counter{0};
    std::string tmp = path + ".tmp." + std::to_string(getpid()) + "." +
                      std::to_string(counter.fetch_add(1));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            fatal_diag(io_diag("write-output", path),
                       "cannot write %s (temp file %s)", path.c_str(),
                       tmp.c_str());
        }
        out.write(bytes.data(), (std::streamsize)bytes.size());
        out.flush();
        if (!out) {
            std::remove(tmp.c_str());
            fatal_diag(io_diag("write-output", path),
                       "error writing %s", path.c_str());
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        Diagnostic diag = io_diag("write-output", path);
        std::remove(tmp.c_str());
        fatal_diag(std::move(diag), "cannot publish %s", path.c_str());
    }
}

bool
publish_file_exclusive(const std::string& path, const std::string& bytes)
{
    static std::atomic<uint64_t> counter{0};
    std::string tmp = path + ".tmp." + std::to_string(getpid()) + "." +
                      std::to_string(counter.fetch_add(1));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            fatal_diag(io_diag("write-output", path),
                       "cannot write %s (temp file %s)", path.c_str(),
                       tmp.c_str());
        }
        out.write(bytes.data(), (std::streamsize)bytes.size());
        out.flush();
        if (!out) {
            std::remove(tmp.c_str());
            fatal_diag(io_diag("write-output", path),
                       "error writing %s", path.c_str());
        }
    }
    // link(2) fails with EEXIST when the destination exists — the
    // one-winner arbitration rename(2) cannot provide.
    if (::link(tmp.c_str(), path.c_str()) == 0) {
        std::remove(tmp.c_str());
        return true;
    }
    int err = errno;
    std::remove(tmp.c_str());
    if (err == EEXIST)
        return false;
    errno = err;
    fatal_diag(io_diag("write-output", path), "cannot claim %s",
               path.c_str());
}

} // namespace koika
