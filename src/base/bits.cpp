#include "base/bits.hpp"

#include <algorithm>

namespace koika {

void
Bits::canonicalize()
{
    uint32_t nw = nwords();
    if (width_ % 64 != 0 && nw > 0) {
        words_[nw - 1] &= (~uint64_t{0}) >> (64 - width_ % 64);
    }
    for (uint32_t i = nw; i < kMaxWords; ++i)
        words_[i] = 0;
}

Bits
Bits::zeroes(uint32_t width)
{
    KOIKA_CHECK(width <= kMaxWidth);
    Bits b;
    b.width_ = width;
    b.words_.fill(0);
    return b;
}

Bits
Bits::ones(uint32_t width)
{
    Bits b = zeroes(width);
    b.words_.fill(~uint64_t{0});
    b.canonicalize();
    return b;
}

Bits
Bits::of(uint32_t width, uint64_t v)
{
    Bits b = zeroes(width);
    b.words_[0] = v;
    b.canonicalize();
    return b;
}

Bits
Bits::of_words(uint32_t width, const uint64_t* words, size_t n)
{
    Bits b = zeroes(width);
    for (size_t i = 0; i < n && i < kMaxWords; ++i)
        b.words_[i] = words[i];
    b.canonicalize();
    return b;
}

Bits
Bits::of_string(const std::string& binary)
{
    KOIKA_CHECK(binary.size() <= kMaxWidth);
    Bits b = zeroes(static_cast<uint32_t>(binary.size()));
    uint32_t pos = b.width_;
    for (char c : binary) {
        --pos;
        KOIKA_CHECK(c == '0' || c == '1');
        if (c == '1')
            b.words_[pos / 64] |= uint64_t{1} << (pos % 64);
    }
    return b;
}

uint64_t
Bits::to_u64() const
{
    KOIKA_CHECK(width_ <= 64);
    return words_[0];
}

bool
Bits::bit(uint32_t i) const
{
    KOIKA_CHECK(i < width_);
    return (words_[i / 64] >> (i % 64)) & 1;
}

Bits
Bits::with_bit(uint32_t i, bool v) const
{
    KOIKA_CHECK(i < width_);
    Bits b = *this;
    if (v)
        b.words_[i / 64] |= uint64_t{1} << (i % 64);
    else
        b.words_[i / 64] &= ~(uint64_t{1} << (i % 64));
    return b;
}

bool
Bits::is_zero() const
{
    for (uint32_t i = 0; i < nwords(); ++i)
        if (words_[i] != 0)
            return false;
    return true;
}

bool
Bits::operator==(const Bits& o) const
{
    if (width_ != o.width_)
        return false;
    for (uint32_t i = 0; i < nwords(); ++i)
        if (words_[i] != o.words_[i])
            return false;
    return true;
}

Bits
Bits::band(const Bits& o) const
{
    KOIKA_CHECK(width_ == o.width_);
    Bits b = *this;
    for (uint32_t i = 0; i < nwords(); ++i)
        b.words_[i] &= o.words_[i];
    return b;
}

Bits
Bits::bor(const Bits& o) const
{
    KOIKA_CHECK(width_ == o.width_);
    Bits b = *this;
    for (uint32_t i = 0; i < nwords(); ++i)
        b.words_[i] |= o.words_[i];
    return b;
}

Bits
Bits::bxor(const Bits& o) const
{
    KOIKA_CHECK(width_ == o.width_);
    Bits b = *this;
    for (uint32_t i = 0; i < nwords(); ++i)
        b.words_[i] ^= o.words_[i];
    return b;
}

Bits
Bits::bnot() const
{
    Bits b = *this;
    for (uint32_t i = 0; i < nwords(); ++i)
        b.words_[i] = ~b.words_[i];
    b.canonicalize();
    return b;
}

Bits
Bits::add(const Bits& o) const
{
    KOIKA_CHECK(width_ == o.width_);
    Bits b = zeroes(width_);
    uint64_t carry = 0;
    for (uint32_t i = 0; i < nwords(); ++i) {
        uint64_t s1 = words_[i] + o.words_[i];
        uint64_t c1 = s1 < words_[i];
        uint64_t s2 = s1 + carry;
        uint64_t c2 = s2 < s1;
        b.words_[i] = s2;
        carry = c1 | c2;
    }
    b.canonicalize();
    return b;
}

Bits
Bits::sub(const Bits& o) const
{
    return add(o.neg());
}

Bits
Bits::neg() const
{
    return bnot().add(Bits::of(width_, width_ == 0 ? 0 : 1));
}

Bits
Bits::mul(const Bits& o) const
{
    KOIKA_CHECK(width_ == o.width_);
    Bits b = zeroes(width_);
    // Schoolbook 64x64->128 partial products, keeping the low width_ bits.
    uint32_t nw = nwords();
    for (uint32_t i = 0; i < nw; ++i) {
        uint64_t carry = 0;
        for (uint32_t j = 0; i + j < nw; ++j) {
            unsigned __int128 p =
                (unsigned __int128)words_[i] * o.words_[j] +
                b.words_[i + j] + carry;
            b.words_[i + j] = (uint64_t)p;
            carry = (uint64_t)(p >> 64);
        }
    }
    b.canonicalize();
    return b;
}

Bits
Bits::ltu(const Bits& o) const
{
    KOIKA_CHECK(width_ == o.width_);
    for (int i = (int)nwords() - 1; i >= 0; --i) {
        if (words_[i] != o.words_[i])
            return from_bool(words_[i] < o.words_[i]);
    }
    return from_bool(false);
}

Bits
Bits::leu(const Bits& o) const
{
    return from_bool(ltu(o).truthy() || *this == o);
}

Bits
Bits::lts(const Bits& o) const
{
    KOIKA_CHECK(width_ == o.width_ && width_ > 0);
    bool sa = bit(width_ - 1), sb = o.bit(width_ - 1);
    if (sa != sb)
        return from_bool(sa);
    return ltu(o);
}

Bits
Bits::les(const Bits& o) const
{
    return from_bool(lts(o).truthy() || *this == o);
}

Bits
Bits::shl_by(uint64_t n) const
{
    if (n >= width_)
        return zeroes(width_);
    Bits b = zeroes(width_);
    uint32_t wordshift = (uint32_t)(n / 64), bitshift = (uint32_t)(n % 64);
    for (uint32_t i = 0; i < nwords(); ++i) {
        uint64_t v = i >= wordshift ? words_[i - wordshift] << bitshift : 0;
        if (bitshift != 0 && i > wordshift)
            v |= words_[i - wordshift - 1] >> (64 - bitshift);
        b.words_[i] = v;
    }
    b.canonicalize();
    return b;
}

Bits
Bits::shr_by(uint64_t n) const
{
    if (n >= width_)
        return zeroes(width_);
    Bits b = zeroes(width_);
    uint32_t wordshift = (uint32_t)(n / 64), bitshift = (uint32_t)(n % 64);
    uint32_t nw = nwords();
    for (uint32_t i = 0; i < nw; ++i) {
        uint64_t v =
            i + wordshift < nw ? words_[i + wordshift] >> bitshift : 0;
        if (bitshift != 0 && i + wordshift + 1 < nw)
            v |= words_[i + wordshift + 1] << (64 - bitshift);
        b.words_[i] = v;
    }
    return b;
}

Bits
Bits::asr_by(uint64_t n) const
{
    if (width_ == 0)
        return *this;
    bool sign = bit(width_ - 1);
    if (n >= width_)
        return sign ? ones(width_) : zeroes(width_);
    Bits b = shr_by(n);
    if (sign)
        b = b.bor(ones(width_).shl_by(width_ - n));
    return b;
}

Bits
Bits::concat(const Bits& low) const
{
    KOIKA_CHECK(width_ + low.width_ <= kMaxWidth);
    Bits b = zextl(width_ + low.width_).shl_by(low.width_);
    Bits lo = low.zextl(width_ + low.width_);
    return b.bor(lo);
}

Bits
Bits::slice(uint32_t offset, uint32_t width) const
{
    KOIKA_CHECK(offset + width <= width_);
    Bits b = shr_by(offset);
    return b.zextl(width);
}

Bits
Bits::zextl(uint32_t width) const
{
    KOIKA_CHECK(width <= kMaxWidth);
    Bits b = *this;
    b.width_ = width;
    b.canonicalize();
    return b;
}

Bits
Bits::sextl(uint32_t width) const
{
    KOIKA_CHECK(width <= kMaxWidth);
    if (width <= width_ || width_ == 0)
        return zextl(width);
    Bits b = zextl(width);
    if (bit(width_ - 1))
        b = b.bor(ones(width).shl_by(width_));
    return b;
}

std::string
Bits::str() const
{
    if (width_ <= 16) {
        std::string s = std::to_string(width_) + "'b";
        for (int i = (int)width_ - 1; i >= 0; --i)
            s += bit((uint32_t)i) ? '1' : '0';
        return s;
    }
    std::string s = std::to_string(width_) + "'x";
    char buf[17];
    bool started = false;
    for (int i = (int)nwords() - 1; i >= 0; --i) {
        std::snprintf(buf, sizeof buf, started ? "%016lx" : "%lx",
                      (unsigned long)words_[i]);
        if (!started && words_[i] == 0 && i != 0)
            continue;
        s += buf;
        started = true;
    }
    return s;
}

size_t
Bits::hash() const
{
    size_t h = 1469598103934665603ull;
    auto mix = [&h](uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    mix(width_);
    for (uint32_t i = 0; i < nwords(); ++i)
        mix(words_[i]);
    return h;
}

} // namespace koika
