#include "base/signal.hpp"

#include <csignal>

#include <unistd.h>

namespace koika {

namespace {

volatile std::sig_atomic_t g_shutdown_signal = 0;

extern "C" void
handle_shutdown(int signo)
{
    if (g_shutdown_signal != 0)
        _exit(128 + signo); // second signal: stop waiting, die now
    g_shutdown_signal = signo;
}

} // namespace

void
install_shutdown_handlers()
{
    struct sigaction sa = {};
    sa.sa_handler = handle_shutdown;
    sigemptyset(&sa.sa_mask);
    // No SA_RESTART: blocking reads/sleeps in the work loop should wake
    // with EINTR so the shutdown flag gets polled promptly.
    sa.sa_flags = 0;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

bool
shutdown_requested()
{
    return g_shutdown_signal != 0;
}

int
shutdown_signal()
{
    return (int)g_shutdown_signal;
}

void
request_shutdown(int signo)
{
    g_shutdown_signal = signo;
}

} // namespace koika
