/**
 * @file
 * Cooperative shutdown on SIGINT/SIGTERM.
 *
 * Long-running commands (fault campaigns, campaign orchestration) must
 * be interruptible without corrupting their artifacts: every durable
 * file in this repo is published atomically (base/io.hpp), so the only
 * thing a signal handler has to do is *ask* the work loop to stop at
 * the next safe boundary. The handler sets one async-signal-safe flag;
 * loops poll shutdown_requested() between chunks, flush whatever
 * checkpoint/profile/metrics artifacts are in flight through the usual
 * atomic writers, and exit with kExitInterrupted so callers (and ctest)
 * can tell "interrupted but resumable" from success or failure.
 *
 * A second SIGINT/SIGTERM while the graceful path is still draining
 * force-exits with the conventional 128+signo code — the escape hatch
 * when the safe boundary is too far away.
 */
#pragma once

namespace koika {

/**
 * Exit code for "interrupted by SIGINT/SIGTERM after flushing
 * progress": BSD's EX_TEMPFAIL. Distinct from success (0), generic
 * failure (1), usage (2), and incomplete orchestration
 * (orchestrate::kExitIncomplete), so scripts can retry/resume exactly
 * the interrupted case.
 */
constexpr int kExitInterrupted = 75;

/**
 * Install the SIGINT/SIGTERM handlers (idempotent). First signal sets
 * the shutdown flag; a second one _exits with 128+signo immediately.
 */
void install_shutdown_handlers();

/** True once a shutdown signal arrived. Safe from any thread. */
bool shutdown_requested();

/** The signal that requested shutdown (0 when none arrived). */
int shutdown_signal();

/**
 * Testing hook: arm or clear the shutdown flag as if a signal had
 * arrived. Lets unit tests drive the graceful-shutdown paths without
 * racing a real kill().
 */
void request_shutdown(int signo);

} // namespace koika
