/**
 * @file
 * Durable file IO helpers shared by every tool that writes artifacts.
 *
 * All user-visible outputs (stats/coverage/fault-report JSON, checkpoint
 * files, merged databases) go through write_file_atomic: the bytes land
 * in a temp file next to the destination and are published with a single
 * rename(2), exactly like the compiled-model cache publishes binaries.
 * A failed or interrupted write therefore never leaves a truncated
 * artifact under the final name — readers either see the old file or the
 * complete new one. Failures raise FatalError with a structured
 * Diagnostic (phase "write-output") so CLI drivers exit nonzero with an
 * attributable message instead of silently dropping data.
 */
#pragma once

#include <string>

namespace koika {

/** Read a whole file; FatalError (phase "read-input") when unreadable. */
std::string read_file(const std::string& path);

/**
 * Write `bytes` to `path` atomically: temp file in the same directory,
 * fsync-free rename publish. Throws FatalError with a Diagnostic naming
 * the path and the OS error on any failure, after removing the temp
 * file; the destination is never left partially written.
 */
void write_file_atomic(const std::string& path, const std::string& bytes);

} // namespace koika
