/**
 * @file
 * Durable file IO helpers shared by every tool that writes artifacts.
 *
 * All user-visible outputs (stats/coverage/fault-report JSON, checkpoint
 * files, merged databases) go through write_file_atomic: the bytes land
 * in a temp file next to the destination and are published with a single
 * rename(2), exactly like the compiled-model cache publishes binaries.
 * A failed or interrupted write therefore never leaves a truncated
 * artifact under the final name — readers either see the old file or the
 * complete new one. Failures raise FatalError with a structured
 * Diagnostic (phase "write-output") so CLI drivers exit nonzero with an
 * attributable message instead of silently dropping data.
 */
#pragma once

#include <string>

namespace koika {

/** Read a whole file; FatalError (phase "read-input") when unreadable. */
std::string read_file(const std::string& path);

/**
 * Write `bytes` to `path` atomically: temp file in the same directory,
 * fsync-free rename publish. Throws FatalError with a Diagnostic naming
 * the path and the OS error on any failure, after removing the temp
 * file; the destination is never left partially written.
 */
void write_file_atomic(const std::string& path, const std::string& bytes);

/**
 * Atomic *exclusive* publish: like write_file_atomic, but the final
 * name is claimed with link(2) instead of rename(2), so when several
 * processes race to publish the same path, exactly one wins. Returns
 * true for the winner; false when `path` already existed (the loser's
 * temp file is removed and the destination is untouched). rename(2)
 * silently replaces an existing file, so it cannot arbitrate a claim —
 * this is the primitive lease files need. Throws FatalError only on
 * real IO errors (unwritable directory, disk full), never on losing
 * the race.
 */
bool publish_file_exclusive(const std::string& path,
                            const std::string& bytes);

} // namespace koika
