/**
 * @file
 * SHA-256, self-contained (FIPS 180-4).
 *
 * The compiled-model cache (src/codegen/compile.hpp) is content
 * addressed: the cache key is the SHA-256 of the emitted C++, the
 * compiler identity, and the flags. The container ships no crypto
 * library, so the digest is implemented here — ~60 lines of fully
 * specified arithmetic, validated against the FIPS test vectors in
 * tests/test_bits.cpp.
 */
#pragma once

#include <cstdint>
#include <string>

namespace koika {

class Sha256
{
  public:
    Sha256();

    /** Absorb more input (streaming; call any number of times). */
    void update(const void* data, size_t len);
    void update(const std::string& s) { update(s.data(), s.size()); }

    /** Finish and return the digest as 64 lowercase hex characters.
     *  The object must not be reused afterwards. */
    std::string hex_digest();

  private:
    void compress(const uint8_t* block);

    uint32_t state_[8];
    uint64_t length_ = 0;
    uint8_t buffer_[64];
    size_t buffered_ = 0;
};

/** One-shot convenience: hex SHA-256 of `data`. */
std::string sha256_hex(const std::string& data);

} // namespace koika
