/**
 * @file
 * Arbitrary-width bit-vector values.
 *
 * Every runtime value manipulated by the Kôika toolchain — register
 * contents, intermediate expression results, packed structs and enums —
 * is a Bits: a width-annotated unsigned bit vector of up to kMaxWidth
 * bits, stored inline (no heap allocation) so that logs and register
 * files can be copied with memcpy-like efficiency.
 *
 * All operations follow hardware semantics: arithmetic is modulo 2^width,
 * comparisons are unsigned unless the signed variant is requested, and
 * every result is kept canonical (bits above the width are zero).
 */
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <string>

#include "base/error.hpp"

namespace koika {

class Bits
{
  public:
    /** Widest representable value, in bits. */
    static constexpr uint32_t kMaxWidth = 512;
    /** Number of 64-bit words backing a value. */
    static constexpr uint32_t kMaxWords = kMaxWidth / 64;

    /** The zero-width (unit) value. */
    Bits() : width_(0) { words_.fill(0); }

    /** An all-zero value of the given width. */
    static Bits zeroes(uint32_t width);
    /** An all-ones value of the given width. */
    static Bits ones(uint32_t width);
    /** A value of the given width holding v (mod 2^width). */
    static Bits of(uint32_t width, uint64_t v);
    /** A value assembled from little-endian 64-bit words. */
    static Bits of_words(uint32_t width, const uint64_t* words, size_t n);
    /** Parse a binary string, MSB first ("1010" -> 4'b1010). */
    static Bits of_string(const std::string& binary);

    uint32_t width() const { return width_; }
    /** Number of 64-bit words actually used by this width. */
    uint32_t nwords() const { return (width_ + 63) / 64; }
    const uint64_t* words() const { return words_.data(); }

    /** The value as a uint64_t; width must be <= 64. */
    uint64_t to_u64() const;
    /** Word i of the value (zero beyond nwords()). */
    uint64_t word(uint32_t i) const { return i < kMaxWords ? words_[i] : 0; }

    bool bit(uint32_t i) const;
    Bits with_bit(uint32_t i, bool v) const;

    /** True iff all bits are zero. */
    bool is_zero() const;
    /** True iff width is 1 and the bit is set (guard helper). */
    bool truthy() const { return !is_zero(); }

    bool operator==(const Bits& o) const;
    bool operator!=(const Bits& o) const { return !(*this == o); }

    // -- Bitwise --------------------------------------------------------
    Bits band(const Bits& o) const;
    Bits bor(const Bits& o) const;
    Bits bxor(const Bits& o) const;
    Bits bnot() const;

    // -- Arithmetic (modulo 2^width) ------------------------------------
    Bits add(const Bits& o) const;
    Bits sub(const Bits& o) const;
    Bits mul(const Bits& o) const;
    Bits neg() const;

    // -- Comparisons (1-bit results) ------------------------------------
    Bits eq(const Bits& o) const { return from_bool(*this == o); }
    Bits ne(const Bits& o) const { return from_bool(*this != o); }
    Bits ltu(const Bits& o) const;
    Bits leu(const Bits& o) const;
    Bits gtu(const Bits& o) const { return o.ltu(*this); }
    Bits geu(const Bits& o) const { return o.leu(*this); }
    Bits lts(const Bits& o) const;
    Bits les(const Bits& o) const;
    Bits gts(const Bits& o) const { return o.lts(*this); }
    Bits ges(const Bits& o) const { return o.les(*this); }

    // -- Shifts (shift amount taken as unsigned value of o) --------------
    Bits shl(const Bits& o) const { return shl_by(o.low_u64()); }
    Bits shr(const Bits& o) const { return shr_by(o.low_u64()); }
    Bits asr(const Bits& o) const { return asr_by(o.low_u64()); }
    Bits shl_by(uint64_t n) const;
    Bits shr_by(uint64_t n) const;
    Bits asr_by(uint64_t n) const;

    // -- Structural ------------------------------------------------------
    /** Concatenation: *this becomes the most-significant part. */
    Bits concat(const Bits& low) const;
    /** Contiguous bit-field [offset, offset+width) counted from LSB. */
    Bits slice(uint32_t offset, uint32_t width) const;
    /** Zero-extend (or truncate) to the given width. */
    Bits zextl(uint32_t width) const;
    /** Sign-extend (or truncate) to the given width. */
    Bits sextl(uint32_t width) const;

    /** A 1-bit value from a bool. */
    static Bits from_bool(bool b) { return of(1, b ? 1 : 0); }

    /** Render as 0b... (short values) or 0x... */
    std::string str() const;

    /** FNV-style hash over width and payload words. */
    size_t hash() const;

  private:
    /** Low 64 bits regardless of width (for shift amounts). */
    uint64_t low_u64() const { return words_[0]; }
    /** Zero all bits at positions >= width_. */
    void canonicalize();

    uint32_t width_;
    std::array<uint64_t, kMaxWords> words_;
};

} // namespace koika
