/**
 * @file
 * VCD (Value Change Dump) waveform writer.
 *
 * The traditional RTL debugging flow the paper contrasts against
 * (GTKWave-style wave analysis) is still occasionally useful; any engine
 * can dump its committed registers as a standard VCD file, one sample
 * per cycle.
 */
#pragma once

#include <ostream>

#include "koika/design.hpp"
#include "sim/model.hpp"

namespace koika::harness {

class VcdWriter
{
  public:
    VcdWriter(const Design& design, std::ostream& out)
        : d_(design), out_(out), prev_(design.num_registers())
    {
        out_ << "$timescale 1ns $end\n$scope module "
             << sanitize(d_.name()) << " $end\n";
        for (size_t r = 0; r < d_.num_registers(); ++r) {
            out_ << "$var wire " << d_.reg((int)r).type->width << " "
                 << ident(r) << " " << sanitize(d_.reg((int)r).name)
                 << " $end\n";
        }
        out_ << "$upscope $end\n$enddefinitions $end\n";
    }

    /** Emit one sample of the model's committed state. */
    void
    sample(const sim::Model& model)
    {
        // The first sample dumps every signal inside a $dumpvars block
        // (VCD spec §21.7.2.2): viewers show defined values from time 0
        // instead of 'x' until the first change.
        bool initial = time_ == 0;
        out_ << "#" << time_++ << "\n";
        if (initial)
            out_ << "$dumpvars\n";
        for (size_t r = 0; r < d_.num_registers(); ++r) {
            Bits v = model.get_reg((int)r);
            if (!initial && v == prev_[r])
                continue;
            prev_[r] = v;
            uint32_t w = v.width();
            if (w == 1) {
                out_ << (v.is_zero() ? "0" : "1") << ident(r) << "\n";
            } else {
                out_ << "b";
                for (uint32_t i = w; i-- > 0;)
                    out_ << (v.bit(i) ? '1' : '0');
                out_ << " " << ident(r) << "\n";
            }
        }
        if (initial)
            out_ << "$end\n";
    }

  private:
    static std::string
    sanitize(const std::string& name)
    {
        std::string out;
        for (char c : name)
            out += std::isalnum((unsigned char)c) ? c : '_';
        return out;
    }

    /** Short printable identifier for register r. */
    static std::string
    ident(size_t r)
    {
        std::string id;
        do {
            id += (char)('!' + (r % 90));
            r /= 90;
        } while (r != 0);
        return id;
    }

    const Design& d_;
    std::ostream& out_;
    std::vector<Bits> prev_;
    uint64_t time_ = 0;
};

} // namespace koika::harness
