/**
 * @file
 * Peripherals: external devices driven in lockstep with a design.
 *
 * Kôika designs in this repository do all external I/O through
 * registers: a design exposes request registers that a peripheral
 * observes (and clears) between cycles, and response registers that the
 * peripheral fills. Because peripherals only ever see and touch
 * *committed* state, the same peripheral drives every engine (reference
 * interpreter, Cuttlesim tiers, generated models, RTL simulators)
 * identically — preserving cycle-accuracy across the whole comparison
 * matrix (see DESIGN.md, substitutions).
 */
#pragma once

#include <functional>

#include "obs/prof.hpp"
#include "sim/model.hpp"
#include "sim/state.hpp"

namespace koika::harness {

class Peripheral
{
  public:
    virtual ~Peripheral() = default;
    /** Called after every design cycle, on committed state. */
    virtual void tick(sim::Model& model) = 0;

    /**
     * Checkpoint hooks: serialize any device state not held in design
     * registers (RAM contents, pending responses). Stateless
     * peripherals keep the no-op defaults. save/load must agree on
     * layout; restore happens on a freshly constructed peripheral.
     */
    virtual void save_state(sim::StateWriter&) const {}
    virtual void load_state(sim::StateReader&) {}
};

/**
 * Drive a model with peripherals until `stop` returns true or
 * `max_cycles` elapse. Returns the number of cycles run.
 */
inline uint64_t
run_system(sim::Model& model, const std::vector<Peripheral*>& peripherals,
           uint64_t max_cycles,
           const std::function<bool(sim::Model&)>& stop = nullptr)
{
    // One span per system run (never per cycle): the engines' top-level
    // run loop shows up on the host profile without per-cycle overhead.
    obs::ProfScope span("sim/system-run");
    for (uint64_t c = 0; c < max_cycles; ++c) {
        model.cycle();
        for (Peripheral* p : peripherals)
            p->tick(model);
        if (stop && stop(model))
            return c + 1;
    }
    return max_cycles;
}

} // namespace koika::harness
