/**
 * @file
 * Deterministic work sharding across a fixed thread pool.
 *
 * The repository's expensive workloads — fault-injection campaigns
 * (src/fault/), scheduler-fuzz trials, bench repetitions — are
 * embarrassingly parallel: N independent items, each producing a result
 * that only depends on its index. This module shards such work across a
 * fixed pool of worker threads *without* giving up the repo's hard
 * determinism contracts:
 *
 *   - Sharding is static: item i always runs on worker (i % jobs), and
 *     each worker processes its items in increasing index order. Which
 *     thread computes an item never depends on timing.
 *   - Results are owned per item (the caller indexes a pre-sized
 *     vector), so the assembled output is identical to a serial run.
 *   - Observability is per worker: each worker fills a private
 *     obs::MetricsRegistry and the shards are merged in worker order at
 *     join (obs::MetricsRegistry::merge_from), so merged metrics are
 *     byte-identical no matter how threads interleave.
 *   - Stochastic work derives per-item seeds from one base seed
 *     (derive_seed, a splitmix64 step), so results are independent of
 *     the job count — `--jobs=8` replays `--jobs=1` exactly.
 *
 * Worker callables must only touch their own item's state (plus
 * read-only shared inputs such as a typechecked Design); the pool
 * provides no locking for shared mutable state.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "obs/metrics.hpp"

namespace koika::harness {

/**
 * Base class for per-worker state that outlives a single item but not a
 * run() batch: warm fault-trial model pairs (fault::TrialContext),
 * opened compile-cache handles, scratch arenas. The pool creates one
 * lazily per worker (on the worker's own thread, the first time that
 * worker receives an item) and destroys all of them when run() returns
 * — contexts live exactly as long as one run() batch, so state can
 * never leak across campaigns that happen to reuse a pool.
 */
class WorkerContext
{
  public:
    virtual ~WorkerContext() = default;
};

/**
 * Builds worker `id`'s context. Called on the worker's own thread
 * (thread-affine resources like dlopen handles or thread-local caches
 * land on the thread that will use them). May return nullptr to run
 * that worker context-free; a throwing factory fails the worker's first
 * item (surfaced via the pool's usual lowest-index error contract).
 */
using ContextFactory =
    std::function<std::unique_ptr<WorkerContext>(int worker)>;

/**
 * Resolve a --jobs request: values >= 1 pass through; 0 (or negative)
 * means one job per hardware thread. Always returns >= 1.
 */
int resolve_jobs(int jobs);

/**
 * Per-item seed derivation (splitmix64 over base + item). Use one base
 * seed per campaign/sweep and one derived seed per item so the draw for
 * item i is the same whether items run serially or sharded.
 */
uint64_t derive_seed(uint64_t base, uint64_t item);

/**
 * A fixed pool of `jobs` worker threads. Threads are started once and
 * reused across run() calls (the "fixed thread pool" of the campaign
 * runner); a pool of one job degenerates to inline execution on the
 * calling thread, so serial runs stay single-threaded and debuggable.
 */
class ThreadPool
{
  public:
    /** `jobs` as for resolve_jobs (0 = hardware concurrency). */
    explicit ThreadPool(int jobs = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    int jobs() const { return jobs_; }

    /**
     * Run fn(item, worker) for every item in [0, n), item i on worker
     * (i % jobs), each worker walking its items in increasing order.
     * Blocks until all items finished. If workers threw, rethrows the
     * exception of the lowest-indexed failing item after the join (the
     * same exception a serial run would have surfaced first); the
     * remaining items still run.
     */
    void run(uint64_t n,
             const std::function<void(uint64_t item, int worker)>& fn);

    /**
     * run() with per-worker contexts: worker w's context is created by
     * make(w) on w's own thread just before its first item, passed to
     * every fn(item, w, ctx) on that worker, and destroyed (all
     * workers') when this call returns — normally or by rethrow. A
     * null `make` passes nullptr contexts. Item→worker sharding,
     * ordering, and the lowest-index error contract are unchanged, so
     * any fn whose observable output does not depend on context reuse
     * (the fault trial-loop restore contract) produces byte-identical
     * results to the context-free overload.
     */
    void run(uint64_t n, const ContextFactory& make,
             const std::function<void(uint64_t item, int worker,
                                      WorkerContext* ctx)>& fn);

  private:
    struct Impl;
    Impl* impl_;
    int jobs_;
};

/**
 * One-shot sharded loop: fn(i) for i in [0, n) across `jobs` threads
 * (static sharding as in ThreadPool::run). Convenience wrapper that
 * builds a transient pool; hot callers reuse a ThreadPool.
 */
void parallel_for(uint64_t n, int jobs,
                  const std::function<void(uint64_t item)>& fn);

/**
 * Sharded loop over contiguous groups: items [0, n) are cut into
 * ceil(n / group) consecutive groups of `group` items (the last group
 * may be short) and fn(first, count) runs once per group, group g on
 * worker (g % jobs). This is the batched-execution shard shape: each
 * pool worker drives one whole lockstep batch (src/fault/batch.cpp),
 * and because groups are contiguous index ranges the caller's
 * per-item result slots are filled exactly as a serial run would.
 */
void parallel_for_groups(
    uint64_t n, uint64_t group, int jobs,
    const std::function<void(uint64_t first, uint64_t count)>& fn);

/**
 * Sharded loop with per-worker metrics: fn(i, registry) writes into its
 * worker's private registry; at join the shards are folded into
 * `merged` in worker order (deterministic merge). If items threw, the
 * completed shards are still merged before the lowest-indexed failure
 * is rethrown, so a failed campaign reports accurate counters for the
 * work that did finish.
 */
void parallel_for_metrics(
    uint64_t n, int jobs, obs::MetricsRegistry& merged,
    const std::function<void(uint64_t item, obs::MetricsRegistry& metrics)>&
        fn);

/**
 * parallel_for with per-worker contexts (ThreadPool::run context
 * overload): one make(worker) per worker that receives items, contexts
 * destroyed at return.
 */
void parallel_for_ctx(
    uint64_t n, int jobs, const ContextFactory& make,
    const std::function<void(uint64_t item, WorkerContext* ctx)>& fn);

/**
 * parallel_for_groups with per-worker contexts: group g runs on worker
 * (g % jobs) with that worker's context.
 */
void parallel_for_groups_ctx(
    uint64_t n, uint64_t group, int jobs, const ContextFactory& make,
    const std::function<void(uint64_t first, uint64_t count,
                             WorkerContext* ctx)>& fn);

} // namespace koika::harness
