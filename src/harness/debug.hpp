/**
 * @file
 * Interactive-style debugging utilities over any engine (case studies
 * 1 and 3).
 *
 * The paper's debugging experience comes from running Cuttlesim models
 * under gdb/rr: breakpoints on FAIL(), watchpoints on read-write sets,
 * reverse execution to find a previous write, symbolic printing of enums
 * and structs. This harness reproduces the same moves programmatically
 * on top of the committed-state interface, so the examples can script
 * the case studies end to end:
 *
 *  - Debugger::step() advances one cycle and records a snapshot ring
 *    buffer (rr's reverse execution over committed state);
 *  - break_on_abort acts like `break FAIL` for a chosen rule;
 *  - last_change acts like a hardware watchpoint run backwards ("which
 *    cycle last wrote this register, and what did the write change?");
 *  - reg_str prints registers with enum members and struct fields
 *    resolved symbolically, like gdb on the generated C++ types.
 */
#pragma once

#include <deque>
#include <functional>

#include "koika/print.hpp"
#include "sim/tiers.hpp"

namespace koika::harness {

class Debugger
{
  public:
    Debugger(const Design& design, sim::TierModel& model,
             size_t history = 256)
        : d_(design), m_(model), capacity_(history)
    {
    }

    /** Advance one cycle, recording history. */
    void
    step()
    {
        m_.cycle();
        Frame frame;
        frame.cycle = m_.cycles_run();
        frame.state = m_.snapshot();
        frame.fired = m_.fired();
        history_.push_back(std::move(frame));
        if (history_.size() > capacity_)
            history_.pop_front();
    }

    /** Run until `pred` holds (checked after each cycle) or budget. */
    uint64_t
    run_until(const std::function<bool()>& pred, uint64_t max_cycles)
    {
        for (uint64_t c = 0; c < max_cycles; ++c) {
            step();
            if (pred())
                return c + 1;
        }
        return max_cycles;
    }

    /** `break FAIL` for one rule: run until it aborts. */
    uint64_t
    break_on_abort(const std::string& rule_name, uint64_t max_cycles)
    {
        int rule = d_.rule_index(rule_name);
        KOIKA_CHECK(rule >= 0);
        uint64_t before = m_.rule_abort_counts()[(size_t)rule];
        return run_until(
            [&] {
                return m_.rule_abort_counts()[(size_t)rule] > before;
            },
            max_cycles);
    }

    /** Run until a rule commits. */
    uint64_t
    break_on_commit(const std::string& rule_name, uint64_t max_cycles)
    {
        int rule = d_.rule_index(rule_name);
        KOIKA_CHECK(rule >= 0);
        uint64_t before = m_.rule_commit_counts()[(size_t)rule];
        return run_until(
            [&] {
                return m_.rule_commit_counts()[(size_t)rule] > before;
            },
            max_cycles);
    }

    /** Committed register value, printed symbolically. */
    std::string
    reg_str(const std::string& name) const
    {
        int reg = d_.reg_index(name);
        KOIKA_CHECK(reg >= 0);
        return format_value(d_.reg(reg).type, m_.get_reg(reg));
    }

    /**
     * Reverse watchpoint: how many recorded cycles ago did this
     * register last change? 0 means the new value first appeared in
     * the most recent recorded frame. That frame itself is excluded
     * from the search — it only supplies the reference value being
     * compared against older frames. Returns -1 if the register never
     * changed within the recorded window.
     */
    int
    last_change(const std::string& name) const
    {
        int reg = d_.reg_index(name);
        KOIKA_CHECK(reg >= 0);
        if (history_.empty())
            return -1;
        const Bits& current = history_.back().state[(size_t)reg];
        for (size_t i = history_.size(); i-- > 1;) {
            if (history_[i - 1].state[(size_t)reg] != current)
                return (int)(history_.size() - 1 - i);
        }
        return -1;
    }

    /** Register value as of `ago` recorded cycles back. */
    std::string
    reg_str_ago(const std::string& name, size_t ago) const
    {
        int reg = d_.reg_index(name);
        KOIKA_CHECK(reg >= 0 && ago < history_.size());
        const Bits& v =
            history_[history_.size() - 1 - ago].state[(size_t)reg];
        return format_value(d_.reg(reg).type, v);
    }

    /** Which rules committed, `ago` recorded cycles back. */
    std::vector<std::string>
    fired_rules_ago(size_t ago) const
    {
        KOIKA_CHECK(ago < history_.size());
        const Frame& f = history_[history_.size() - 1 - ago];
        std::vector<std::string> names;
        for (size_t r = 0; r < f.fired.size(); ++r)
            if (f.fired[r])
                names.push_back(d_.rule((int)r).name);
        return names;
    }

    sim::TierModel& model() { return m_; }
    const Design& design() const { return d_; }
    size_t recorded() const { return history_.size(); }

  private:
    struct Frame
    {
        uint64_t cycle;
        std::vector<Bits> state;
        std::vector<bool> fired;
    };

    const Design& d_;
    sim::TierModel& m_;
    size_t capacity_;
    std::deque<Frame> history_;
};

} // namespace koika::harness
