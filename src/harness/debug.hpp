/**
 * @file
 * Interactive-style debugging utilities over any engine (case studies
 * 1 and 3).
 *
 * The paper's debugging experience comes from running Cuttlesim models
 * under gdb/rr: breakpoints on FAIL(), watchpoints on read-write sets,
 * reverse execution to find a previous write, symbolic printing of enums
 * and structs. This harness reproduces the same moves programmatically
 * on top of the committed-state interface, so the examples can script
 * the case studies end to end:
 *
 *  - Debugger::step() advances one cycle and records a snapshot ring
 *    buffer (rr's reverse execution over committed state);
 *  - break_on_abort acts like `break FAIL` for a chosen rule;
 *  - last_change acts like a hardware watchpoint run backwards ("which
 *    cycle last wrote this register, and what did the write change?");
 *  - reg_str prints registers with enum members and struct fields
 *    resolved symbolically, like gdb on the generated C++ types.
 *
 * The debugger drives any sim::Model. Optional capabilities are
 * discovered by dynamic_cast, the same way the observability layer
 * does: rule breakpoints and fired-set history need RuleStatsModel,
 * mid-cycle stepping needs a TierModel (check can_step_rules() or call
 * tier_model()). History beyond the ring is durable when spilling is
 * enabled: evicted frames are appended to a cuttlesim-ckpt-v1 spill
 * stream (replay/checkpoint.hpp), so reverse watchpoints keep working
 * past the ring capacity instead of silently losing the answer.
 */
#pragma once

#include <deque>
#include <fstream>
#include <functional>
#include <typeinfo>

#include "base/io.hpp"
#include "koika/print.hpp"
#include "replay/checkpoint.hpp"
#include "sim/tiers.hpp"

namespace koika::harness {

/**
 * Result of a reverse watchpoint. The old int convention (ago, or -1
 * for "no change") conflated "this register genuinely never changed"
 * with "the change fell off the history ring"; rr would never do that,
 * and case study 3 needs the distinction.
 */
struct LastChange
{
    enum Status {
        /** Change located: new value first appeared `ago` frames back. */
        kFound,
        /** Complete recorded history, and the value never changed. */
        kNeverChanged,
        /** Frames were dropped without a spill stream: unknowable. */
        kTruncated,
    };

    Status status = kTruncated;
    /** Recorded cycles back (0 = changed into the most recent frame).
     *  Meaningful only when status == kFound. */
    uint64_t ago = 0;

    bool found() const { return status == kFound; }
};

class Debugger
{
  public:
    Debugger(const Design& design, sim::Model& model,
             size_t history = 256)
        : d_(design), m_(model),
          stats_(dynamic_cast<sim::RuleStatsModel*>(&model)),
          tier_(dynamic_cast<sim::TierModel*>(&model)),
          capacity_(history)
    {
    }

    /**
     * Spill evicted frames to `path` (truncated now, appended to as
     * the ring wraps) instead of dropping them. With a spill stream,
     * last_change never reports kTruncated.
     */
    void
    enable_spill(const std::string& path)
    {
        spill_path_ = path;
        spill_fp_ = replay::design_fingerprint(d_);
        std::ofstream out(path,
                          std::ios::binary | std::ios::trunc);
        if (!out)
            fatal("cannot open debugger spill file '%s'", path.c_str());
    }

    /** Advance one cycle, recording history. */
    void
    step()
    {
        m_.cycle();
        Frame frame;
        frame.cycle = m_.cycles_run();
        frame.state.reserve(d_.num_registers());
        for (size_t r = 0; r < d_.num_registers(); ++r)
            frame.state.push_back(m_.get_reg((int)r));
        if (stats_ != nullptr)
            frame.fired = stats_->fired();
        history_.push_back(std::move(frame));
        if (history_.size() > capacity_) {
            if (!spill_path_.empty())
                spill(history_.front());
            history_.pop_front();
            ++dropped_;
        }
    }

    /** Run until `pred` holds (checked after each cycle) or budget. */
    uint64_t
    run_until(const std::function<bool()>& pred, uint64_t max_cycles)
    {
        for (uint64_t c = 0; c < max_cycles; ++c) {
            step();
            if (pred())
                return c + 1;
        }
        return max_cycles;
    }

    /** `break FAIL` for one rule: run until it aborts. */
    uint64_t
    break_on_abort(const std::string& rule_name, uint64_t max_cycles)
    {
        sim::RuleStatsModel& rs = require_stats();
        int rule = d_.rule_index(rule_name);
        KOIKA_CHECK(rule >= 0);
        uint64_t before = rs.rule_abort_counts()[(size_t)rule];
        return run_until(
            [&] {
                return rs.rule_abort_counts()[(size_t)rule] > before;
            },
            max_cycles);
    }

    /** Run until a rule commits. */
    uint64_t
    break_on_commit(const std::string& rule_name, uint64_t max_cycles)
    {
        sim::RuleStatsModel& rs = require_stats();
        int rule = d_.rule_index(rule_name);
        KOIKA_CHECK(rule >= 0);
        uint64_t before = rs.rule_commit_counts()[(size_t)rule];
        return run_until(
            [&] {
                return rs.rule_commit_counts()[(size_t)rule] > before;
            },
            max_cycles);
    }

    /** Committed register value, printed symbolically. */
    std::string
    reg_str(const std::string& name) const
    {
        int reg = d_.reg_index(name);
        KOIKA_CHECK(reg >= 0);
        return format_value(d_.reg(reg).type, m_.get_reg(reg));
    }

    /**
     * Reverse watchpoint: how many recorded cycles ago did this
     * register last change? ago == 0 means the new value first
     * appeared in the most recent recorded frame; that frame itself
     * only supplies the reference value compared against older frames.
     * Searches the ring first, then the spill stream when one is
     * enabled. kNeverChanged is only claimed when the recorded history
     * is complete back to the first step() of this debugger.
     */
    LastChange
    last_change(const std::string& name) const
    {
        int reg = d_.reg_index(name);
        KOIKA_CHECK(reg >= 0);
        LastChange lc;
        if (history_.empty())
            return lc; // nothing recorded: kTruncated
        const Bits& current = history_.back().state[(size_t)reg];
        for (size_t i = history_.size(); i-- > 1;) {
            if (history_[i - 1].state[(size_t)reg] != current) {
                lc.status = LastChange::kFound;
                lc.ago = history_.size() - 1 - i;
                return lc;
            }
        }
        if (dropped_ == 0) {
            lc.status = LastChange::kNeverChanged;
            return lc;
        }
        if (spill_path_.empty())
            return lc; // frames lost, no spill: kTruncated
        // Spilled frames are consecutive cycles ending right before the
        // oldest ring frame; walk them newest-first.
        std::vector<replay::Checkpoint> spilled = replay::
            parse_spill_stream(read_file(spill_path_));
        uint64_t back = history_.back().cycle;
        for (size_t i = spilled.size(); i-- > 0;) {
            if (spilled[i].regs[(size_t)reg] != current) {
                lc.status = LastChange::kFound;
                lc.ago = back - (spilled[i].cycle + 1);
                return lc;
            }
        }
        lc.status = LastChange::kNeverChanged;
        return lc;
    }

    /** Register value as of `ago` recorded cycles back. */
    std::string
    reg_str_ago(const std::string& name, size_t ago) const
    {
        int reg = d_.reg_index(name);
        KOIKA_CHECK(reg >= 0 && ago < history_.size());
        const Bits& v =
            history_[history_.size() - 1 - ago].state[(size_t)reg];
        return format_value(d_.reg(reg).type, v);
    }

    /** Which rules committed, `ago` recorded cycles back. */
    std::vector<std::string>
    fired_rules_ago(size_t ago) const
    {
        KOIKA_CHECK(ago < history_.size());
        const Frame& f = history_[history_.size() - 1 - ago];
        std::vector<std::string> names;
        for (size_t r = 0; r < f.fired.size(); ++r)
            if (f.fired[r])
                names.push_back(d_.rule((int)r).name);
        return names;
    }

    sim::Model& model() { return m_; }

    /** True when the engine supports mid-cycle rule stepping. */
    bool can_step_rules() const { return tier_ != nullptr; }

    /** The TierModel interface (begin_step_cycle/step_rule/...);
     *  FatalError when this engine cannot step mid-cycle. */
    sim::TierModel&
    tier_model()
    {
        if (tier_ == nullptr)
            fatal("this engine does not support mid-cycle stepping "
                  "(needs an interpreter tier, not '%s')",
                  typeid(m_).name());
        return *tier_;
    }

    const Design& design() const { return d_; }
    size_t recorded() const { return history_.size(); }
    /** Frames evicted from the ring so far (spilled or lost). */
    uint64_t dropped() const { return dropped_; }

  private:
    struct Frame
    {
        uint64_t cycle;
        std::vector<Bits> state;
        std::vector<bool> fired;
    };

    sim::RuleStatsModel&
    require_stats()
    {
        if (stats_ == nullptr)
            fatal("this engine does not expose rule statistics "
                  "(RuleStatsModel), so rule breakpoints are "
                  "unavailable");
        return *stats_;
    }

    void
    spill(const Frame& frame)
    {
        replay::Checkpoint ck;
        ck.design = d_.name();
        ck.fingerprint = spill_fp_;
        ck.cycle = frame.cycle;
        for (size_t r = 0; r < frame.state.size(); ++r) {
            ck.widths.push_back(d_.reg((int)r).type->width);
            ck.regs.push_back(frame.state[r]);
        }
        sim::StateWriter w;
        w.put_bool_vec(frame.fired);
        ck.set_section("fired", w.take());
        std::string record;
        replay::append_spill_record(record, ck);
        std::ofstream out(spill_path_,
                          std::ios::binary | std::ios::app);
        if (!out || !out.write(record.data(),
                               (std::streamsize)record.size()))
            fatal("cannot append to debugger spill file '%s'",
                  spill_path_.c_str());
    }

    const Design& d_;
    sim::Model& m_;
    sim::RuleStatsModel* stats_;
    sim::TierModel* tier_;
    size_t capacity_;
    std::deque<Frame> history_;
    uint64_t dropped_ = 0;
    std::string spill_path_;
    std::string spill_fp_;
};

} // namespace koika::harness
