/**
 * @file
 * Gcov-style coverage reports for Kôika designs (case study 4).
 *
 * The paper's insight: because the generated model matches the source
 * design nearly line by line, plain code-coverage counts ARE detailed
 * architectural statistics — mispredictions, stall rates, rule activity
 * — with zero added hardware. This module renders a design's rules with
 * per-statement execution counts in the style of the paper's Gcov
 * listings:
 *
 *     14890635: if (nextPc != decoded.ppc) {
 *      2071903:     pc.wr0(nextPc);
 */
#pragma once

#include <string>

#include "interp/reference.hpp"
#include "obs/coverage.hpp"

namespace koika::harness {

/** Annotated source listing of one rule, with execution counts. */
std::string coverage_report_rule(const Design& design, int rule,
                                 const std::vector<uint64_t>& counts);

/** Annotated listing of every scheduled rule. */
std::string coverage_report(const Design& design,
                            const std::vector<uint64_t>& counts);

/**
 * Annotated listing rendered from a coverage database instead of raw
 * interpreter counts. Works for ANY engine a CoverageMap was collected
 * from (tier interpreters, reference sim, instrumented compiled
 * models): statement lines show the masked statement count, and `else`
 * lines show the branch's not-taken count, which is exact even though
 * the database only stores counts at classified points.
 */
std::string coverage_report_rule(const Design& design, int rule,
                                 const obs::CoverageMap& cov);

/** CoverageMap-based listing of every scheduled rule. */
std::string coverage_report(const Design& design,
                            const obs::CoverageMap& cov);

/** Execution count of a node id (0 if coverage was off). */
inline uint64_t
node_count(const std::vector<uint64_t>& counts, const Action* node)
{
    return node != nullptr && (size_t)node->id < counts.size()
               ? counts[(size_t)node->id]
               : 0;
}

} // namespace koika::harness
