/**
 * @file
 * Lockstep differential execution of multiple engines.
 *
 * Cycle-accuracy across engines is the paper's core correctness claim
 * (§1): every state element must be updated in the same cycle in every
 * model. This harness drives any number of Model implementations in
 * lockstep, applying the same external stimulus to each, and reports the
 * first divergence with a readable diagnosis.
 */
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "koika/design.hpp"
#include "sim/model.hpp"

namespace koika::harness {

struct LockstepResult
{
    bool ok = true;
    /** First divergent cycle (counting from 0). */
    uint64_t cycle = 0;
    /** Index of the first divergent register. */
    int reg = -1;
    /** Human-readable diagnosis. */
    std::string detail;
};

/**
 * Run `cycles` cycles on every model; after each cycle, apply `stimulus`
 * (if given) to each model identically, then compare all committed
 * registers against the first model.
 */
LockstepResult
run_lockstep(const koika::Design& design,
             const std::vector<sim::Model*>& models, uint64_t cycles,
             const std::function<void(sim::Model&, uint64_t)>& stimulus =
                 nullptr);

} // namespace koika::harness
