/**
 * @file
 * Magic memory: the byte-addressable RAM peripheral behind the RISC-V
 * cores' instruction and data ports.
 *
 * A MemPort implements a one-outstanding-request register handshake:
 * the design commits {valid, addr, wstrb, data} request registers; the
 * port consumes the request between cycles, performs the access on a
 * shared MemoryDevice, and delivers load responses through {valid, data}
 * response registers as soon as they are free — giving the idealized
 * single-cycle memory of case study 3. A word store to kTohostAddr is
 * captured as benchmark output instead of hitting RAM.
 */
#pragma once

#include <optional>
#include <vector>

#include "harness/peripheral.hpp"

namespace koika::harness {

class MemoryDevice
{
  public:
    static constexpr uint32_t kTohostAddr = 0x40000000;

    explicit MemoryDevice(size_t bytes = 1 << 16) : mem_(bytes, 0) {}

    void
    load_words(const std::vector<uint32_t>& words, uint32_t base)
    {
        for (size_t i = 0; i < words.size(); ++i)
            write(base + 4 * (uint32_t)i, words[i], 0xF);
    }

    uint32_t
    read32(uint32_t addr) const
    {
        addr &= ~3u;
        if (addr + 3 >= mem_.size())
            return 0;
        return (uint32_t)mem_[addr] | ((uint32_t)mem_[addr + 1] << 8) |
               ((uint32_t)mem_[addr + 2] << 16) |
               ((uint32_t)mem_[addr + 3] << 24);
    }

    /** Word-aligned write under a 4-bit byte strobe. */
    void
    write(uint32_t addr, uint32_t data, uint32_t wstrb)
    {
        if (addr == kTohostAddr && wstrb == 0xF) {
            tohost_.push_back(data);
            return;
        }
        addr &= ~3u;
        if (addr + 3 >= mem_.size())
            return;
        for (uint32_t b = 0; b < 4; ++b)
            if ((wstrb >> b) & 1)
                mem_[addr + b] = (uint8_t)(data >> (8 * b));
    }

    const std::vector<uint32_t>& tohost() const { return tohost_; }
    const std::vector<uint8_t>& bytes() const { return mem_; }

    /** Checkpoint the full RAM image and captured tohost stream. */
    void
    save_state(sim::StateWriter& w) const
    {
        w.put_string(std::string(mem_.begin(), mem_.end()));
        w.put_u64(tohost_.size());
        for (uint32_t v : tohost_)
            w.put_u64(v);
    }

    void
    load_state(sim::StateReader& r)
    {
        std::string bytes = r.get_string();
        mem_.assign(bytes.begin(), bytes.end());
        tohost_.clear();
        uint64_t n = r.get_u64();
        for (uint64_t i = 0; i < n; ++i)
            tohost_.push_back((uint32_t)r.get_u64());
    }

  private:
    std::vector<uint8_t> mem_;
    std::vector<uint32_t> tohost_;
};

/** Register indices of one memory port in a design. */
struct MemPortRegs
{
    int req_valid = -1;
    int req_addr = -1;
    int req_data = -1;  ///< -1 for read-only (instruction) ports.
    int req_wstrb = -1; ///< -1 for read-only ports.
    int resp_valid = -1;
    int resp_data = -1;
};

class MemPort final : public Peripheral
{
  public:
    MemPort(MemoryDevice& device, MemPortRegs regs)
        : dev_(device), r_(regs)
    {
    }

    void
    tick(sim::Model& m) override
    {
        // Deliver an already-pending response first.
        if (pending_.has_value() &&
            m.get_reg(r_.resp_valid).is_zero()) {
            m.set_reg(r_.resp_data, Bits::of(32, *pending_));
            m.set_reg(r_.resp_valid, Bits::of(1, 1));
            pending_.reset();
        }
        // Accept at most one outstanding request.
        if (!pending_.has_value() &&
            !m.get_reg(r_.req_valid).is_zero()) {
            uint32_t addr = (uint32_t)m.get_reg(r_.req_addr).to_u64();
            uint32_t wstrb =
                r_.req_wstrb >= 0
                    ? (uint32_t)m.get_reg(r_.req_wstrb).to_u64()
                    : 0;
            m.set_reg(r_.req_valid, Bits::of(1, 0));
            if (wstrb == 0) {
                uint32_t value = dev_.read32(addr);
                if (m.get_reg(r_.resp_valid).is_zero()) {
                    m.set_reg(r_.resp_data, Bits::of(32, value));
                    m.set_reg(r_.resp_valid, Bits::of(1, 1));
                } else {
                    pending_ = value;
                }
            } else {
                uint32_t data =
                    (uint32_t)m.get_reg(r_.req_data).to_u64();
                dev_.write(addr, data, wstrb);
            }
        }
    }

    // The shared MemoryDevice is serialized once by its owner; the
    // port itself only carries the in-flight response.
    void
    save_state(sim::StateWriter& w) const override
    {
        w.put_u64(pending_.has_value() ? 1 : 0);
        w.put_u64(pending_.value_or(0));
    }

    void
    load_state(sim::StateReader& r) override
    {
        bool has = r.get_u64() != 0;
        uint64_t value = r.get_u64();
        pending_ = has ? std::optional<uint32_t>((uint32_t)value)
                       : std::nullopt;
    }

  private:
    MemoryDevice& dev_;
    MemPortRegs r_;
    std::optional<uint32_t> pending_;
};

} // namespace koika::harness
