#include "harness/parallel.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "base/error.hpp"
#include "obs/prof.hpp"

namespace koika::harness {

namespace {

/** Canonical worker lane name: zero-padded so report ordering is
 *  lexicographic == numeric ("worker-003"). */
std::string
worker_lane_name(int id)
{
    char name[32];
    std::snprintf(name, sizeof name, "worker-%03d", id);
    return name;
}

} // namespace

int
resolve_jobs(int jobs)
{
    if (jobs >= 1)
        return jobs;
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : (int)hw;
}

uint64_t
derive_seed(uint64_t base, uint64_t item)
{
    // splitmix64: the statistically-solid mixer behind std::seed_seq
    // alternatives; fully defined arithmetic, so derived seeds are the
    // same on every platform (the determinism contract).
    uint64_t z = base + (item + 1) * 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

struct ThreadPool::Impl
{
    std::mutex mutex;
    std::condition_variable start_cv;
    std::condition_variable done_cv;
    std::vector<std::thread> threads;

    // Current batch, published under `mutex` with a new generation.
    uint64_t generation = 0;
    uint64_t n = 0;
    const std::function<void(uint64_t, int)>* fn = nullptr;
    int remaining = 0;
    bool shutdown = false;

    // First failure per worker; item index picks the winner at join.
    std::vector<std::exception_ptr> errors;
    std::vector<uint64_t> error_items;

    void
    worker(int id, int jobs)
    {
        uint64_t seen = 0;
        // Profiler enable-generation at the last naming (0 = never
        // named). A plain once-latch would miss profilers enabled
        // after this pool's first batch — or re-enabled between
        // batches — leaving the lane as an anonymous "thread-N" id
        // that breaks fleet lane-merge by name.
        uint64_t named_gen = 0;
        for (;;) {
            uint64_t batch_n;
            const std::function<void(uint64_t, int)>* batch_fn;
            {
                // Queue wait is measured idleness (SpanKind::kIdle): it
                // shows on the worker's timeline lane and in its
                // wait_seconds, but stays out of the phase table so the
                // report structure is --jobs-independent.
                obs::ProfScope wait("pool/wait", obs::SpanKind::kIdle);
                std::unique_lock<std::mutex> lock(mutex);
                start_cv.wait(lock, [&] {
                    return shutdown || generation != seen;
                });
                if (shutdown)
                    return;
                seen = generation;
                batch_n = n;
                batch_fn = fn;
            }
            obs::Profiler& prof = obs::Profiler::instance();
            if (prof.enabled() && named_gen != prof.enable_generation()) {
                prof.set_thread_name(worker_lane_name(id));
                named_gen = prof.enable_generation();
            }
            for (uint64_t item = (uint64_t)id; item < batch_n;
                 item += (uint64_t)jobs) {
                obs::ProfScope span("pool/item");
                try {
                    (*batch_fn)(item, id);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(mutex);
                    if (errors[(size_t)id] == nullptr) {
                        errors[(size_t)id] = std::current_exception();
                        error_items[(size_t)id] = item;
                    }
                }
            }
            std::lock_guard<std::mutex> lock(mutex);
            if (--remaining == 0)
                done_cv.notify_all();
        }
    }
};

ThreadPool::ThreadPool(int jobs)
    : impl_(nullptr), jobs_(resolve_jobs(jobs))
{
    if (jobs_ == 1)
        return; // serial pool: run() executes inline, no threads.
    impl_ = new Impl();
    impl_->errors.resize((size_t)jobs_);
    impl_->error_items.resize((size_t)jobs_);
    for (int w = 0; w < jobs_; ++w)
        impl_->threads.emplace_back(
            [this, w] { impl_->worker(w, jobs_); });
}

ThreadPool::~ThreadPool()
{
    if (impl_ == nullptr)
        return;
    {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        impl_->shutdown = true;
    }
    impl_->start_cv.notify_all();
    for (std::thread& t : impl_->threads)
        t.join();
    delete impl_;
}

void
ThreadPool::run(uint64_t n,
                const std::function<void(uint64_t, int)>& fn)
{
    if (n == 0)
        return;
    if (impl_ == nullptr) {
        // Single-job pool: plain loop on the calling thread. Same
        // error contract as the threaded path — every item runs, the
        // lowest-indexed failure is rethrown after the walk — so
        // jobs=1 and jobs=N are observably identical.
        std::exception_ptr first_inline;
        for (uint64_t item = 0; item < n; ++item) {
            // Same "pool/item" span as the threaded path, so a jobs=1
            // profile has the identical phase set.
            obs::ProfScope span("pool/item");
            try {
                fn(item, 0);
            } catch (...) {
                if (first_inline == nullptr)
                    first_inline = std::current_exception();
            }
        }
        if (first_inline != nullptr)
            std::rethrow_exception(first_inline);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        impl_->n = n;
        impl_->fn = &fn;
        impl_->remaining = jobs_;
        std::fill(impl_->errors.begin(), impl_->errors.end(), nullptr);
        ++impl_->generation;
    }
    impl_->start_cv.notify_all();
    {
        std::unique_lock<std::mutex> lock(impl_->mutex);
        impl_->done_cv.wait(lock,
                            [&] { return impl_->remaining == 0; });
    }
    // Deterministic error surfacing: the failure a serial run would
    // have hit first (lowest item index) wins.
    std::exception_ptr first;
    uint64_t first_item = 0;
    for (size_t w = 0; w < impl_->errors.size(); ++w) {
        if (impl_->errors[w] == nullptr)
            continue;
        if (first == nullptr || impl_->error_items[w] < first_item) {
            first = impl_->errors[w];
            first_item = impl_->error_items[w];
        }
    }
    if (first != nullptr)
        std::rethrow_exception(first);
}

void
ThreadPool::run(uint64_t n, const ContextFactory& make,
                const std::function<void(uint64_t, int, WorkerContext*)>&
                    fn)
{
    // Contexts are created lazily on each worker's own thread (inside
    // its first item's "pool/item" span, so construction cost is
    // attributed to that worker's lane) and destroyed when this frame
    // unwinds — exactly one run() batch, even on rethrow. Worker w is
    // the only writer of slot w while the batch is in flight, and the
    // pool's join synchronizes the slots back to this thread.
    std::vector<std::unique_ptr<WorkerContext>> contexts((size_t)jobs_);
    run(n, [&](uint64_t item, int worker) {
        std::unique_ptr<WorkerContext>& slot = contexts[(size_t)worker];
        if (slot == nullptr && make != nullptr)
            slot = make(worker);
        fn(item, worker, slot.get());
    });
}

void
parallel_for(uint64_t n, int jobs,
             const std::function<void(uint64_t)>& fn)
{
    ThreadPool pool(jobs);
    pool.run(n, [&fn](uint64_t item, int) { fn(item); });
}

void
parallel_for_groups(uint64_t n, uint64_t group, int jobs,
                    const std::function<void(uint64_t, uint64_t)>& fn)
{
    if (group < 1)
        group = 1;
    uint64_t groups = (n + group - 1) / group;
    ThreadPool pool(jobs);
    pool.run(groups, [&fn, n, group](uint64_t g, int) {
        uint64_t first = g * group;
        fn(first, std::min(group, n - first));
    });
}

void
parallel_for_metrics(
    uint64_t n, int jobs, obs::MetricsRegistry& merged,
    const std::function<void(uint64_t, obs::MetricsRegistry&)>& fn)
{
    ThreadPool pool(jobs);
    std::vector<obs::MetricsRegistry> shards((size_t)pool.jobs());
    // run() captures per-item failures and rethrows the lowest-indexed
    // one after every item has executed — but the shards hold the
    // counters of everything that DID finish. Merge before rethrowing
    // so a failed campaign still reports accurate trial/* metrics.
    std::exception_ptr failure;
    try {
        pool.run(n, [&fn, &shards](uint64_t item, int worker) {
            fn(item, shards[(size_t)worker]);
        });
    } catch (...) {
        failure = std::current_exception();
    }
    {
        obs::ProfScope span("pool/merge");
        for (const obs::MetricsRegistry& shard : shards)
            merged.merge_from(shard);
    }
    if (failure != nullptr)
        std::rethrow_exception(failure);
}

void
parallel_for_ctx(uint64_t n, int jobs, const ContextFactory& make,
                 const std::function<void(uint64_t, WorkerContext*)>& fn)
{
    ThreadPool pool(jobs);
    pool.run(n, make, [&fn](uint64_t item, int, WorkerContext* ctx) {
        fn(item, ctx);
    });
}

void
parallel_for_groups_ctx(
    uint64_t n, uint64_t group, int jobs, const ContextFactory& make,
    const std::function<void(uint64_t, uint64_t, WorkerContext*)>& fn)
{
    if (group < 1)
        group = 1;
    uint64_t groups = (n + group - 1) / group;
    ThreadPool pool(jobs);
    pool.run(groups, make,
             [&fn, n, group](uint64_t g, int, WorkerContext* ctx) {
                 uint64_t first = g * group;
                 fn(first, std::min(group, n - first), ctx);
             });
}

} // namespace koika::harness
