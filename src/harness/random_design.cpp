#include "harness/random_design.hpp"

#include "koika/builder.hpp"
#include "koika/typecheck.hpp"

namespace koika::harness {

namespace {

class Generator
{
  public:
    Generator(uint64_t seed, const RandomDesignConfig& config)
        : cfg_(config), rng_(seed),
          design_(std::make_unique<Design>("random" +
                                           std::to_string(seed))),
          b_(*design_)
    {
    }

    std::unique_ptr<Design>
    run()
    {
        make_registers();
        int nrules = 1 + (int)(rng_() % (uint64_t)cfg_.num_rules);
        for (int i = 0; i < nrules; ++i) {
            rule_wr1_.assign(widths_.size(), false);
            let_depth_ = 0;
            Action* body = statements(1 + (int)(rng_() % (uint64_t)
                                                cfg_.max_stmts_per_rule));
            design_->add_rule("rl" + std::to_string(i), body);
            design_->schedule("rl" + std::to_string(i));
        }
        typecheck(*design_);
        return std::move(design_);
    }

  private:
    uint32_t
    pick_width()
    {
        static const uint32_t narrow[] = {1, 2, 4, 7, 8, 12, 16, 32, 64};
        static const uint32_t wide[] = {65, 96, 128, 200};
        if (cfg_.wide_registers && rng_() % 4 == 0)
            return wide[rng_() % 4];
        return narrow[rng_() % 9];
    }

    void
    make_registers()
    {
        int n = 2 + (int)(rng_() % (uint64_t)cfg_.num_registers);
        for (int i = 0; i < n; ++i) {
            uint32_t w = pick_width();
            uint64_t init = rng_();
            regs_.push_back(
                b_.reg("r" + std::to_string(i), w, init));
            widths_.push_back(w);
        }
    }

    /** A register with exactly the given width, or -1. */
    int
    reg_of_width(uint32_t w)
    {
        std::vector<int> candidates;
        for (size_t i = 0; i < widths_.size(); ++i)
            if (widths_[i] == w)
                candidates.push_back(regs_[i]);
        if (candidates.empty())
            return -1;
        return candidates[rng_() % candidates.size()];
    }

    int
    any_reg()
    {
        return regs_[rng_() % regs_.size()];
    }

    Action*
    read_expr(int reg)
    {
        // Avoid the Goldbergian pattern: no rd1 after a wr1 on the same
        // register within this rule.
        bool rd1_ok = !rule_wr1_[reg_slot(reg)];
        bool use_rd1 = rd1_ok && (rng_() % 2 == 0);
        return use_rd1 ? b_.read1(reg) : b_.read0(reg);
    }

    /** Random pure expression of the requested width. */
    Action*
    expr(uint32_t w, int depth)
    {
        uint64_t choice = rng_() % 10;
        if (depth <= 0 || choice < 2)
            return b_.konst(random_bits(w));
        if (choice < 5) {
            int r = reg_of_width(w);
            if (r >= 0)
                return read_expr(r);
            return b_.konst(random_bits(w));
        }
        if (choice < 8) {
            static const Op binops[] = {Op::kAnd, Op::kOr, Op::kXor,
                                        Op::kAdd, Op::kSub};
            Op op = binops[rng_() % 5];
            return b_.binop(op, expr(w, depth - 1), expr(w, depth - 1));
        }
        if (choice == 8)
            return b_.not_(expr(w, depth - 1));
        // Slice or extend from a different width.
        uint32_t src_w = pick_width();
        if (src_w >= w && src_w > 0) {
            uint32_t max_off = src_w - w;
            uint32_t off = (uint32_t)(rng_() % (uint64_t)(max_off + 1));
            Action* s = expr(src_w, depth - 1);
            return b_.slice(s, off, w);
        }
        return rng_() % 2 ? b_.zextl(expr(src_w, depth - 1), w)
                          : b_.sextl(expr(src_w, depth - 1), w);
    }

    /** Random 1-bit expression (conditions, guards). */
    Action*
    cond(int depth)
    {
        uint64_t choice = rng_() % 6;
        if (choice < 2)
            return expr(1, depth);
        uint32_t w = pick_width();
        static const Op cmps[] = {Op::kEq, Op::kNe, Op::kLtu, Op::kGeu,
                                  Op::kLts};
        Op op = cmps[rng_() % 5];
        if (op == Op::kLts && w == 0)
            op = Op::kEq;
        return b_.binop(op, expr(w, depth - 1), expr(w, depth - 1));
    }

    Action*
    statement(int depth)
    {
        uint64_t choice = rng_() % 10;
        if (choice < 5) {
            int r = any_reg();
            uint32_t w = widths_[reg_slot(r)];
            bool wr1 = rng_() % 3 == 0;
            if (wr1)
                rule_wr1_[(size_t)reg_slot(r)] = true;
            Action* v = expr(w, cfg_.max_expr_depth);
            return wr1 ? b_.write1(r, v) : b_.write0(r, v);
        }
        if (choice < 7) {
            // Guards that mostly pass keep traces interesting.
            Action* c = cond(2);
            return b_.guard(b_.or_(c, b_.konst(Bits::of(1, rng_() % 4
                                                               ? 1
                                                               : 0))));
        }
        if (choice < 9 && depth > 0) {
            return b_.if_(cond(2), statements(2, depth - 1),
                          statements(2, depth - 1));
        }
        if (let_depth_ < 3) {
            ++let_depth_;
            uint32_t w = pick_width();
            std::string name = "v" + std::to_string(rng_() % 1000);
            Action* body =
                b_.seq({statement(depth > 0 ? depth - 1 : 0),
                        b_.when(b_.eq(b_.var(name),
                                      b_.konst(random_bits(w))),
                                statement(0))});
            --let_depth_;
            return b_.let(name, expr(w, 2), body);
        }
        return statement(0);
    }

    Action*
    statements(int n, int depth = 2)
    {
        std::vector<Action*> stmts;
        for (int i = 0; i < n; ++i)
            stmts.push_back(statement(depth));
        return b_.seq(std::move(stmts));
    }

    size_t
    reg_slot(int reg)
    {
        for (size_t i = 0; i < regs_.size(); ++i)
            if (regs_[i] == reg)
                return i;
        panic("unknown register");
    }

    Bits
    random_bits(uint32_t w)
    {
        uint64_t words[Bits::kMaxWords];
        for (auto& word : words)
            word = rng_();
        return Bits::of_words(w, words, Bits::kMaxWords);
    }

    RandomDesignConfig cfg_;
    std::mt19937_64 rng_;
    std::unique_ptr<Design> design_;
    Builder b_;
    std::vector<int> regs_;
    std::vector<uint32_t> widths_;
    /** Registers written at port 1 in the current rule. */
    std::vector<bool> rule_wr1_;
    int let_depth_ = 0;
};

} // namespace

std::unique_ptr<Design>
random_design(uint64_t seed, const RandomDesignConfig& config)
{
    return Generator(seed, config).run();
}

} // namespace koika::harness
