#include "harness/coverage.hpp"

#include <sstream>

#include "koika/print.hpp"

namespace koika::harness {

namespace {

/** Statement-level annotated printer (count column + Kôika text). */
class AnnotatedPrinter
{
  public:
    AnnotatedPrinter(const Design& d, const std::vector<uint64_t>& counts)
        : d_(d), counts_(counts)
    {
    }

    std::string
    rule(int r)
    {
        os_.str("");
        os_ << "rule " << d_.rule(r).name << ":\n";
        block(d_.rule(r).body, 1);
        return os_.str();
    }

  private:
    void
    emit_line(uint64_t count, int indent, const std::string& text)
    {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%10llu: ",
                      (unsigned long long)count);
        os_ << buf << std::string((size_t)indent * 4, ' ') << text
            << "\n";
    }

    uint64_t
    count(const Action* a) const
    {
        return node_count(counts_, a);
    }

    void
    block(const Action* a, int indent)
    {
        switch (a->kind) {
          case ActionKind::kSeq:
            block(a->a0, indent);
            block(a->a1, indent);
            return;
          case ActionKind::kLet:
            emit_line(count(a), indent,
                      "let " + a->var + " := " + print_action(a->a0, &d_) +
                          " in");
            block(a->a1, indent);
            return;
          case ActionKind::kIf: {
            emit_line(count(a), indent,
                      "if (" + print_action(a->a0, &d_) + ") {");
            block(a->a1, indent + 1);
            if (a->a2->kind == ActionKind::kConst &&
                a->a2->value.width() == 0) {
                emit_line(count(a), indent, "}");
            } else {
                emit_line(count(a->a2), indent, "} else {");
                block(a->a2, indent + 1);
                emit_line(count(a), indent, "}");
            }
            return;
          }
          default:
            // Leaf statement: one annotated line. The count column is
            // the node's execution count — exactly what Gcov shows on
            // the corresponding generated-C++ line.
            emit_line(count(a), indent, print_action(a, &d_));
            return;
        }
    }

    const Design& d_;
    const std::vector<uint64_t>& counts_;
    std::ostringstream os_;
};

} // namespace

std::string
coverage_report_rule(const Design& design, int rule,
                     const std::vector<uint64_t>& counts)
{
    return AnnotatedPrinter(design, counts).rule(rule);
}

std::string
coverage_report(const Design& design,
                const std::vector<uint64_t>& counts)
{
    std::string out;
    for (int r : design.schedule_order())
        out += coverage_report_rule(design, r, counts) + "\n";
    return out;
}

} // namespace koika::harness
