#include "harness/coverage.hpp"

#include <sstream>

#include "koika/print.hpp"

namespace koika::harness {

namespace {

/**
 * Where the annotated printer gets its numbers. The two sources differ
 * only on `else` lines: raw interpreter counts use the else-arm node's
 * own execution count, while a coverage database (which stores counts
 * only at classified points) uses the `if` node's not-taken count —
 * the same number, reached from the other side.
 */
struct CountSource
{
    virtual ~CountSource() = default;
    virtual uint64_t line(const Action* a) const = 0;
    virtual uint64_t else_line(const Action* if_node) const = 0;
};

struct RawCounts final : CountSource
{
    explicit RawCounts(const std::vector<uint64_t>& counts)
        : counts_(counts)
    {
    }
    uint64_t
    line(const Action* a) const override
    {
        return node_count(counts_, a);
    }
    uint64_t
    else_line(const Action* if_node) const override
    {
        return node_count(counts_, if_node->a2);
    }
    const std::vector<uint64_t>& counts_;
};

struct MapCounts final : CountSource
{
    explicit MapCounts(const obs::CoverageMap& cov) : cov_(cov) {}
    uint64_t
    line(const Action* a) const override
    {
        return node_count(cov_.stmt_count, a);
    }
    uint64_t
    else_line(const Action* if_node) const override
    {
        return node_count(cov_.branch_not_taken, if_node);
    }
    const obs::CoverageMap& cov_;
};

/** Statement-level annotated printer (count column + Kôika text). */
class AnnotatedPrinter
{
  public:
    AnnotatedPrinter(const Design& d, const CountSource& counts)
        : d_(d), counts_(counts)
    {
    }

    std::string
    rule(int r)
    {
        os_.str("");
        os_ << "rule " << d_.rule(r).name << ":\n";
        block(d_.rule(r).body, 1);
        return os_.str();
    }

  private:
    void
    emit_line(uint64_t count, int indent, const std::string& text)
    {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%10llu: ",
                      (unsigned long long)count);
        os_ << buf << std::string((size_t)indent * 4, ' ') << text
            << "\n";
    }

    void
    block(const Action* a, int indent)
    {
        switch (a->kind) {
          case ActionKind::kSeq:
            block(a->a0, indent);
            block(a->a1, indent);
            return;
          case ActionKind::kLet:
            emit_line(counts_.line(a), indent,
                      "let " + a->var + " := " + print_action(a->a0, &d_) +
                          " in");
            block(a->a1, indent);
            return;
          case ActionKind::kIf: {
            emit_line(counts_.line(a), indent,
                      "if (" + print_action(a->a0, &d_) + ") {");
            block(a->a1, indent + 1);
            if (a->a2->kind == ActionKind::kConst &&
                a->a2->value.width() == 0) {
                emit_line(counts_.line(a), indent, "}");
            } else {
                emit_line(counts_.else_line(a), indent, "} else {");
                block(a->a2, indent + 1);
                emit_line(counts_.line(a), indent, "}");
            }
            return;
          }
          default:
            // Leaf statement: one annotated line. The count column is
            // the node's execution count — exactly what Gcov shows on
            // the corresponding generated-C++ line.
            emit_line(counts_.line(a), indent, print_action(a, &d_));
            return;
        }
    }

    const Design& d_;
    const CountSource& counts_;
    std::ostringstream os_;
};

} // namespace

std::string
coverage_report_rule(const Design& design, int rule,
                     const std::vector<uint64_t>& counts)
{
    RawCounts src(counts);
    return AnnotatedPrinter(design, src).rule(rule);
}

std::string
coverage_report(const Design& design,
                const std::vector<uint64_t>& counts)
{
    std::string out;
    for (int r : design.schedule_order())
        out += coverage_report_rule(design, r, counts) + "\n";
    return out;
}

std::string
coverage_report_rule(const Design& design, int rule,
                     const obs::CoverageMap& cov)
{
    MapCounts src(cov);
    return AnnotatedPrinter(design, src).rule(rule);
}

std::string
coverage_report(const Design& design, const obs::CoverageMap& cov)
{
    std::string out;
    for (int r : design.schedule_order())
        out += coverage_report_rule(design, r, cov) + "\n";
    return out;
}

} // namespace koika::harness
