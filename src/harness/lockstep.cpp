#include "harness/lockstep.hpp"

#include <sstream>

namespace koika::harness {

LockstepResult
run_lockstep(const koika::Design& design,
             const std::vector<sim::Model*>& models, uint64_t cycles,
             const std::function<void(sim::Model&, uint64_t)>& stimulus)
{
    LockstepResult result;
    KOIKA_CHECK(!models.empty());
    for (uint64_t c = 0; c < cycles; ++c) {
        for (sim::Model* m : models)
            m->cycle();
        if (stimulus)
            for (sim::Model* m : models)
                stimulus(*m, c);
        for (size_t i = 0; i < design.num_registers(); ++i) {
            Bits expect = models[0]->get_reg((int)i);
            for (size_t m = 1; m < models.size(); ++m) {
                Bits got = models[m]->get_reg((int)i);
                if (got != expect) {
                    std::ostringstream os;
                    os << "cycle " << c << ": register '"
                       << design.reg((int)i).name << "' diverges: model 0 = "
                       << expect.str() << ", model " << m << " = "
                       << got.str();
                    result.ok = false;
                    result.cycle = c;
                    result.reg = (int)i;
                    result.detail = os.str();
                    return result;
                }
            }
        }
    }
    return result;
}

} // namespace koika::harness
