/**
 * @file
 * Seeded random well-typed Kôika designs.
 *
 * Used by the differential property tests: every engine (reference
 * interpreter, Cuttlesim tiers, generated models, RTL simulators) must
 * produce identical committed register traces on thousands of random
 * designs. The generator deliberately produces conflicting rules, failing
 * guards, port mixes, and nested control flow, but avoids the Goldbergian
 * wr1-then-rd1 pattern that merged-data engines do not support (the
 * paper's Cuttlesim warns about and ignores that pattern, §3.2).
 */
#pragma once

#include <memory>
#include <random>

#include "koika/design.hpp"

namespace koika::harness {

struct RandomDesignConfig
{
    int num_registers = 6;
    int num_rules = 5;
    int max_stmts_per_rule = 6;
    int max_expr_depth = 4;
    /** Allow wide (>64-bit) registers. */
    bool wide_registers = false;
};

/** Build a typechecked random design from a seed. */
std::unique_ptr<koika::Design>
random_design(uint64_t seed, const RandomDesignConfig& config = {});

} // namespace koika::harness
