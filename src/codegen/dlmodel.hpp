/**
 * @file
 * In-process loading of compiled Cuttlesim models.
 *
 * The out-of-process pipeline (compile.hpp) runs generated models as
 * standalone binaries — right for differential tests and benches, but a
 * fault campaign needs a sim::Model it can step, poke, and checkpoint
 * from the harness process. This module closes that gap: it emits the
 * model with full instrumentation, compiles it into a shared object
 * through the same content-addressed cache, dlopens it, and hands back
 * a GeneratedModel adapter — so compiled engines plug into the exact
 * trial loop the interpreter tiers use (RuleStats, Coverage, and
 * Checkpointable interfaces included, which makes them warm-context and
 * batch-forkable).
 *
 * Amortization contract: the compile-cache probe, the dlopen, and the
 * symbol resolution happen once per (design, flags, cache) per thread —
 * a fault campaign's per-worker TrialContext triggers exactly one probe
 * when it builds its golden, and every later model on that worker is a
 * plain constructor call through the cached factory function. Loaded
 * libraries are deliberately never dlclosed: model destructors may run
 * arbitrarily late (FaultTarget teardown order), and code must outlive
 * every object it created.
 */
#pragma once

#include <memory>
#include <string>

#include "codegen/compile.hpp"
#include "koika/design.hpp"
#include "sim/model.hpp"

namespace koika::codegen {

/** Policy for building and caching an in-process compiled model. */
struct DlModelOptions
{
    /** Optimization/diagnostic flags for the external compiler (the
     *  loader appends -fPIC -shared and its include paths). Part of the
     *  content-addressed cache key. */
    std::string cxxflags = "-O2";
    /** Compiled-object cache; empty dir disables caching. */
    CacheConfig cache{default_cache_dir()};
    /** Scratch directory for emitted sources (each thread uses a
     *  private subdirectory). Empty = a per-process /tmp default. */
    std::string workdir;
};

/**
 * Emit, compile (or fetch from cache), dlopen, and instantiate `design`
 * as an in-process model. The returned model implements
 * sim::RuleStatsModel, sim::CoverageModel, and sim::CheckpointableModel
 * (instrumentation is always emitted; the compiled engine must be a
 * drop-in for the T5 interpreter everywhere, warm trial contexts
 * included). Repeated calls on one thread with the same options reuse
 * the already-loaded library: no cache probe, no dlopen, just a
 * constructor call. Throws FatalError (with compiler or loader detail)
 * when the pipeline fails.
 */
std::unique_ptr<sim::Model>
load_compiled_model(const Design& design, const DlModelOptions& options = {});

} // namespace koika::codegen
