#include "codegen/cpp_emit.hpp"

#include <map>
#include <set>
#include <sstream>

#include "analysis/coverage_points.hpp"

namespace koika::codegen {

namespace {

const std::set<std::string>&
cpp_keywords()
{
    static const std::set<std::string> kw = {
        "alignas", "auto",   "bool",     "break",  "case",    "catch",
        "char",    "class",  "const",    "continue", "default", "delete",
        "do",      "double", "else",     "enum",   "explicit", "extern",
        "false",   "float",  "for",      "friend", "goto",    "if",
        "inline",  "int",    "long",     "mutable", "namespace", "new",
        "operator", "private", "protected", "public", "register",
        "return",  "short",  "signed",   "sizeof", "static",  "struct",
        "switch",  "template", "this",   "throw",  "true",    "try",
        "typedef", "typename", "union",  "unsigned", "using", "virtual",
        "void",    "volatile", "while",  "log",    "Log",     "cycle",
        "cycles",
    };
    return kw;
}

std::string
sanitize(const std::string& name)
{
    std::string out;
    for (char c : name)
        out += (std::isalnum((unsigned char)c) || c == '_') ? c : '_';
    if (out.empty() || std::isdigit((unsigned char)out[0]))
        out = "_" + out;
    if (cpp_keywords().count(out))
        out += "_";
    return out;
}

std::string
hex_u64(uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%llxull", (unsigned long long)v);
    return buf;
}

std::string
underlying_type(uint32_t width)
{
    if (width <= 8)
        return "uint8_t";
    if (width <= 16)
        return "uint16_t";
    if (width <= 32)
        return "uint32_t";
    return "uint64_t";
}

class Emitter
{
  public:
    Emitter(const Design& d, const analysis::DesignAnalysis& an,
            const EmitOptions& options)
        : d_(d), an_(an), opts_(options)
    {
        if (opts_.coverage)
            cov_kinds_ = analysis::coverage_points(d);
    }

    std::string
    run()
    {
        size_t pos = 0;
        for (int r : d_.schedule_order())
            sched_pos_.emplace(r, pos++);
        collect_types();
        name_registers();
        header();
        emit_types();
        emit_registers_struct();
        emit_rwsets();
        emit_log();
        emit_members();
        emit_functions();
        for (int r : d_.schedule_order())
            emit_rule(r);
        emit_cycle();
        emit_pack_unpack();
        footer();
        return out_.str();
    }

  private:
    // -- Output helpers -----------------------------------------------------
    void
    line(const std::string& text = "")
    {
        if (!text.empty())
            out_ << std::string((size_t)indent_ * 4, ' ') << text;
        out_ << "\n";
    }

    struct Indent
    {
        explicit Indent(Emitter& e) : e_(e) { ++e_.indent_; }
        ~Indent() { --e_.indent_; }
        Emitter& e_;
    };

    // -- Naming ---------------------------------------------------------------
    std::string
    class_name() const
    {
        return opts_.class_name.empty() ? model_class_name(d_)
                                        : opts_.class_name;
    }

    static std::string
    string_literal(const std::string& s)
    {
        std::string out = "\"";
        for (char c : s) {
            if (c == '"' || c == '\\')
                out += '\\';
            out += c;
        }
        return out + "\"";
    }

    std::string
    reg_name(int r) const
    {
        return reg_names_[(size_t)r];
    }

    void
    name_registers()
    {
        std::set<std::string> used;
        for (size_t r = 0; r < d_.num_registers(); ++r) {
            std::string n = sanitize(d_.reg((int)r).name);
            while (used.count(n))
                n += "_";
            used.insert(n);
            reg_names_.push_back(n);
        }
    }

    std::string
    type_cpp(const TypePtr& t)
    {
        if (t->is_bits())
            return "bits<" + std::to_string(t->width) + ">";
        auto it = type_names_.find(t->name);
        KOIKA_CHECK(it != type_names_.end());
        return it->second;
    }

    // -- Type collection -----------------------------------------------------
    void
    collect_type(const TypePtr& t)
    {
        if (t == nullptr || t->is_bits() ||
            type_names_.count(t->name))
            return;
        if (t->is_struct())
            for (const Field& f : t->fields)
                collect_type(f.type);
        std::string n = sanitize(t->name) + "_t";
        static const std::set<std::string> reserved = {
            "registers_t", "rwsets_t", "rwset_t", "log_t"};
        while (reserved.count(n) || used_type_names_.count(n))
            n += "_";
        used_type_names_.insert(n);
        type_names_[t->name] = n;
        ordered_types_.push_back(t);
    }

    void
    collect_types_in(const Action* a)
    {
        if (a == nullptr)
            return;
        collect_type(a->type);
        collect_type(a->const_type);
        collect_types_in(a->a0);
        collect_types_in(a->a1);
        collect_types_in(a->a2);
        for (const Action* arg : a->args)
            collect_types_in(arg);
    }

    void
    collect_types()
    {
        for (size_t r = 0; r < d_.num_registers(); ++r)
            collect_type(d_.reg((int)r).type);
        for (const auto& f : d_.functions()) {
            for (const auto& [n, t] : f->params)
                collect_type(t);
            collect_type(f->ret);
            collect_types_in(f->body);
        }
        for (size_t r = 0; r < d_.num_rules(); ++r)
            collect_types_in(d_.rule((int)r).body);
    }

    // -- Constants ----------------------------------------------------------
    std::string
    const_expr(const TypePtr& t, const Bits& v)
    {
        if (t->is_bits()) {
            if (t->width <= 64)
                return "bits<" + std::to_string(t->width) + ">(" +
                       hex_u64(v.word(0)) + ")";
            std::string words;
            for (uint32_t i = 0; i < (t->width + 63) / 64; ++i) {
                if (i)
                    words += ", ";
                words += hex_u64(v.word(i));
            }
            return "bits<" + std::to_string(t->width) + ">::of_words({" +
                   words + "})";
        }
        if (t->is_enum()) {
            for (const EnumMember& m : t->members)
                if (m.value == v)
                    return type_cpp(t) + "::" + sanitize(m.name);
            return "(" + type_cpp(t) + ")" + hex_u64(v.word(0));
        }
        // Struct literal, fields in declaration order.
        std::string expr = type_cpp(t) + "{";
        for (size_t i = 0; i < t->fields.size(); ++i) {
            const Field& f = t->fields[i];
            if (i)
                expr += ", ";
            expr += "." + sanitize(f.name) + " = " +
                    const_expr(f.type, v.slice(f.offset, f.type->width));
        }
        return expr + "}";
    }

    // -- Skeleton -------------------------------------------------------------
    void
    header()
    {
        line("// Generated by cuttlec from Koika design '" + d_.name() +
             "'.");
        line("// A cycle-accurate, debuggable C++ model: one function per");
        line("// rule, early exits on conflicts and aborts, minimized");
        line("// read-write sets (see DESIGN.md and the paper, section 3).");
        line("#pragma once");
        line();
        line("#include <cstdint>");
        line("#include <cstring>");
        if (opts_.batch) {
            line("#include <array>");
            line("#include <cstddef>");
            line("#include <utility>");
        }
        line();
        line("#include \"cuttlesim.hpp\"");
        line();
        line("namespace cuttlesim::models {");
        line();
        line("class " + class_name() + " {");
        line("  public:");
        ++indent_;
    }

    void
    footer()
    {
        --indent_;
        line("};");
        line();
        if (opts_.batch)
            emit_batch();
        line("} // namespace cuttlesim::models");
    }

    // -- Batched multi-instance companion (SIMD across trials) ---------------
    void
    emit_batch()
    {
        std::string cls = class_name();
        line("// Batched multi-instance execution: kLanes independent");
        line("// trials of '" + cls + "' advance in lockstep, one cycle");
        line("// per cycle() call. Register state is struct-of-arrays —");
        line("// one contiguous per-register array across lanes — so");
        line("// per-register sweeps stream linearly through memory,");
        line("// while rule evaluation runs in a single shared core");
        line("// whose logs and read-write sets stay cache-resident");
        line("// across lanes. Finished or diverged lanes are masked");
        line("// out GPU-warp style: cycle() skips them and their lane");
        line("// state freezes at the masking point. Counters and");
        line("// coverage accumulate in the shared core, i.e. as");
        line("// aggregate statistics over the whole batch.");
        line("template <std::size_t kLanes>");
        line("class " + cls + "_batch {");
        line("  public:");
        ++indent_;
        line("using scalar_model = " + cls + ";");
        line("static constexpr std::size_t lane_count = kLanes;");
        line();
        line("// Lane l's value of register R lives in soa_.R[l].");
        line("struct soa_registers_t {");
        {
            Indent in(*this);
            for (size_t r = 0; r < d_.num_registers(); ++r)
                line("std::array<decltype(std::declval<scalar_model::"
                     "registers_t&>()." +
                     reg_name((int)r) + "), kLanes> " + reg_name((int)r) +
                     "{};");
        }
        line("};");
        line();
        line(cls + "_batch() {");
        {
            Indent in(*this);
            line("// Broadcast the scalar reset values to every lane.");
            line("for (std::size_t l = 0; l < kLanes; ++l) {");
            line("    active_[l] = true;");
            line("    store_lane(l);");
            line("}");
        }
        line("}");
        line();
        line("// -- Lane mask ------------------------------------------");
        line("bool active(std::size_t lane) const { return "
             "active_[lane]; }");
        line("void set_active(std::size_t lane, bool on) { "
             "active_[lane] = on; }");
        line("std::size_t active_lanes() const {");
        line("    std::size_t n = 0;");
        line("    for (bool a : active_) n += a ? 1 : 0;");
        line("    return n;");
        line("}");
        line("uint64_t lane_cycles(std::size_t lane) const { return "
             "lane_cycles_[lane]; }");
        line();
        line("// -- Lockstep advance -----------------------------------");
        line("void cycle() {");
        {
            Indent in(*this);
            line("for (std::size_t l = 0; l < kLanes; ++l) {");
            line("    if (!active_[l]) continue;");
            line("    load_lane(l);");
            line("    core_.cycle();");
            line("    store_lane(l);");
            line("    ++lane_cycles_[l];");
            line("}");
        }
        line("}");
        line();
        line("// -- Per-lane state transfer ----------------------------");
        line("void load_lane(std::size_t l) {");
        {
            Indent in(*this);
            for (size_t r = 0; r < d_.num_registers(); ++r)
                line("core_.Log.data." + reg_name((int)r) + " = soa_." +
                     reg_name((int)r) + "[l];");
            line("core_.log.data = core_.Log.data;");
        }
        line("}");
        line("void store_lane(std::size_t l) {");
        {
            Indent in(*this);
            for (size_t r = 0; r < d_.num_registers(); ++r)
                line("soa_." + reg_name((int)r) + "[l] = core_.Log.data." +
                     reg_name((int)r) + ";");
        }
        line("}");
        line();
        line("// Flat per-lane register access, same word layout as the");
        line("// scalar model's get_reg_words/set_reg_words.");
        line("void get_reg_words(std::size_t lane, std::size_t r, "
             "uint64_t* out) {");
        line("    load_lane(lane);");
        line("    core_.get_reg_words(r, out);");
        line("}");
        line("void set_reg_words(std::size_t lane, std::size_t r, "
             "const uint64_t* in) {");
        line("    load_lane(lane);");
        line("    core_.set_reg_words(r, in);");
        line("    store_lane(lane);");
        line("}");
        line();
        line("// The shared evaluation core (aggregate counters and");
        line("// coverage for the whole batch live here).");
        line("scalar_model& core() { return core_; }");
        line("const scalar_model& core() const { return core_; }");
        line();
        --indent_;
        line("  private:");
        ++indent_;
        line("scalar_model core_{};");
        line("soa_registers_t soa_{};");
        line("std::array<bool, kLanes> active_{};");
        line("std::array<uint64_t, kLanes> lane_cycles_{};");
        --indent_;
        line("};");
        line();
    }

    void
    emit_types()
    {
        for (const TypePtr& t : ordered_types_) {
            if (t->is_enum()) {
                KOIKA_CHECK(t->width <= 64);
                std::string decl = "enum class " + type_cpp(t) + " : " +
                                   underlying_type(t->width) + " { ";
                for (size_t i = 0; i < t->members.size(); ++i) {
                    if (i)
                        decl += ", ";
                    decl += sanitize(t->members[i].name) + " = " +
                            std::to_string(t->members[i].value.to_u64());
                }
                line(decl + " };");
            } else {
                line("struct " + type_cpp(t) + " {");
                {
                    Indent in(*this);
                    for (const Field& f : t->fields)
                        line(type_cpp(f.type) + " " + sanitize(f.name) +
                             "{};");
                    line("bool operator==(const " + type_cpp(t) +
                         "&) const = default;");
                }
                line("};");
            }
            line();
        }
    }

    void
    emit_registers_struct()
    {
        line("// Architectural state; initializers are the reset values.");
        line("struct registers_t {");
        {
            Indent in(*this);
            for (size_t r = 0; r < d_.num_registers(); ++r) {
                const RegInfo& reg = d_.reg((int)r);
                line(type_cpp(reg.type) + " " + reg_name((int)r) + " = " +
                     const_expr(reg.type, reg.init) + ";");
            }
        }
        line("};");
        line();
    }

    bool
    reg_tracked(int r) const
    {
        return !an_.reg_safe[(size_t)r];
    }

    void
    emit_rwsets()
    {
        line("// Read-write sets, kept only for registers the static");
        line("// analysis could not prove conflict-free.");
        line("struct rwset_t {");
        {
            Indent in(*this);
            line("bool rd1 : 1 = false;");
            line("bool wr0 : 1 = false;");
            line("bool wr1 : 1 = false;");
        }
        line("};");
        line("struct rwsets_t {");
        {
            Indent in(*this);
            bool any = false;
            for (size_t r = 0; r < d_.num_registers(); ++r) {
                if (reg_tracked((int)r)) {
                    line("rwset_t " + reg_name((int)r) + "{};");
                    any = true;
                }
            }
            if (!any)
                line("// all registers are safe");
        }
        line("};");
        line();
    }

    void
    emit_log()
    {
        line("struct log_t {");
        {
            Indent in(*this);
            line("rwsets_t rwset{};");
            line("registers_t data{};");
        }
        line("};");
        line();
        line("// Cycle log (committed) and accumulated rule log; their");
        line("// data fields double as the architectural state (merged");
        line("// data representation, paper section 3.2).");
        line("log_t Log{};");
        line("log_t log{};");
        line();
    }

    void
    emit_members()
    {
        size_t nsched = d_.schedule_order().size();
        line("uint64_t cycles = 0;");
        line("static constexpr size_t kNumRegs = " +
             std::to_string(d_.num_registers()) + ";");
        line("static constexpr size_t kNumRules = " +
             std::to_string(nsched) + ";");
        std::string widths;
        for (size_t r = 0; r < d_.num_registers(); ++r) {
            if (r)
                widths += ", ";
            widths += std::to_string(d_.reg((int)r).type->width);
        }
        line("static constexpr uint32_t kRegWidths[kNumRegs] = {" +
             widths + "};");
        if (nsched > 0) {
            std::string names;
            for (int r : d_.schedule_order()) {
                if (!names.empty())
                    names += ", ";
                names += string_literal(d_.rule(r).name);
            }
            line("static constexpr const char* kRuleNames[kNumRules] = {" +
                 names + "};");
        }
        if (opts_.counters && nsched > 0) {
            line("// Per-rule commit/abort counters: free architectural");
            line("// statistics (case study 4).");
            line("uint64_t commit_count[kNumRules] = {};");
            line("uint64_t abort_count[kNumRules] = {};");
            line("// Rules that committed during the most recent cycle.");
            line("bool last_fired[kNumRules] = {};");
        }
        if (opts_.counters && opts_.abort_reasons && nsched > 0) {
            line("// Why each abort happened (--instrument):");
            line("// [rule * num_abort_reasons + reason], reasons as in");
            line("// cuttlesim.hpp (guard, read conflict, write conflict).");
            line("uint64_t abort_reason_count[kNumRules * "
                 "num_abort_reasons] = {};");
        }
        if (opts_.coverage) {
            line("// Statement/branch coverage (--instrument): one slot");
            line("// per source AST node; increments only at classified");
            line("// statement and branch points, so counts line up with");
            line("// the interpreter tiers point by point.");
            line("static constexpr size_t kNumNodes = " +
                 std::to_string(d_.num_nodes()) + ";");
            line("uint64_t stmt_count[kNumNodes] = {};");
            line("uint64_t branch_taken_count[kNumNodes] = {};");
            line("uint64_t branch_not_taken_count[kNumNodes] = {};");
        }
        line();
    }

    // -- Combinational functions ------------------------------------------
    void
    emit_functions()
    {
        for (const auto& f : d_.functions()) {
            std::string sig = "static " + type_cpp(f->ret) + " " +
                              sanitize(f->name) + "(";
            scope_.assign((size_t)f->nslots, "");
            for (size_t i = 0; i < f->params.size(); ++i) {
                if (i)
                    sig += ", ";
                std::string pn = sanitize(f->params[i].first);
                sig += type_cpp(f->params[i].second) + " " + pn;
                scope_[i] = pn;
            }
            line(sig + ") {");
            {
                Indent in(*this);
                rule_ctx_ = -1; // pure context: no FAIL possible
                std::string result = materialize(f->body);
                line("return " + result + ";");
            }
            line("}");
            line();
        }
    }

    // -- Purity (w.r.t. C++ emission) ---------------------------------------
    bool
    is_pure(const Action* a)
    {
        switch (a->kind) {
          case ActionKind::kConst:
          case ActionKind::kVar:
            return true;
          case ActionKind::kRead:
            if (an_.ops[(size_t)a->id].may_fail)
                return false;
            // rd1 on a tracked register must record its mark.
            if (a->port == Port::p1 && reg_tracked(a->reg))
                return false;
            return true;
          case ActionKind::kUnop:
          case ActionKind::kGetField:
            return is_pure(a->a0);
          case ActionKind::kBinop:
            return is_pure(a->a0) && is_pure(a->a1);
          case ActionKind::kIf:
            return is_pure(a->a0) && is_pure(a->a1) && is_pure(a->a2);
          case ActionKind::kCall:
            for (const Action* arg : a->args)
                if (!is_pure(arg))
                    return false;
            return true;
          default:
            return false;
        }
    }

    // -- Pure expression rendering ------------------------------------------
    std::string
    emit_pure(const Action* a)
    {
        switch (a->kind) {
          case ActionKind::kConst:
            return const_expr(a->const_type, a->value);
          case ActionKind::kVar:
            return scope_[(size_t)a->slot];
          case ActionKind::kRead:
            return (a->port == Port::p0 ? "Log.data." : "log.data.") +
                   reg_name(a->reg);
          case ActionKind::kUnop:
            switch (a->op) {
              case Op::kNot:
                return "~" + paren(emit_pure(a->a0));
              case Op::kNeg:
                return paren(emit_pure(a->a0)) + ".neg()";
              case Op::kZExtL:
                return "zextl<" + std::to_string(a->imm0) + ">(" +
                       emit_pure(a->a0) + ")";
              case Op::kSExtL:
                return "sextl<" + std::to_string(a->imm0) + ">(" +
                       emit_pure(a->a0) + ")";
              case Op::kSlice:
                return "slice<" + std::to_string(a->imm0) + ", " +
                       std::to_string(a->imm1) + ">(" + emit_pure(a->a0) +
                       ")";
              default:
                panic("bad unop");
            }
          case ActionKind::kBinop:
            return emit_binop(a, emit_pure(a->a0), emit_pure(a->a1));
          case ActionKind::kGetField:
            return paren(emit_pure(a->a0)) + "." + sanitize(a->field);
          case ActionKind::kIf:
            return "(" + emit_pure(a->a0) + " ? " + emit_pure(a->a1) +
                   " : " + emit_pure(a->a2) + ")";
          case ActionKind::kCall: {
            std::string call = sanitize(a->fn->name) + "(";
            for (size_t i = 0; i < a->args.size(); ++i) {
                if (i)
                    call += ", ";
                call += emit_pure(a->args[i]);
            }
            return call + ")";
          }
          default:
            panic("emit_pure on impure node");
        }
    }

    static std::string
    paren(const std::string& e)
    {
        return "(" + e + ")";
    }

    std::string
    emit_binop(const Action* a, const std::string& x, const std::string& y)
    {
        auto infix = [&](const char* op) {
            return paren(x) + " " + op + " " + paren(y);
        };
        auto cmp = [&](const char* op) {
            return "bits<1>(" + infix(op) + ")";
        };
        switch (a->op) {
          case Op::kAnd: return infix("&");
          case Op::kOr: return infix("|");
          case Op::kXor: return infix("^");
          case Op::kAdd: return infix("+");
          case Op::kSub: return infix("-");
          case Op::kMul: return infix("*");
          case Op::kEq: return cmp("==");
          case Op::kNe: return cmp("!=");
          case Op::kLtu: return cmp("<");
          case Op::kLeu: return cmp("<=");
          case Op::kGtu: return cmp(">");
          case Op::kGeu: return cmp(">=");
          case Op::kLts: return "bits<1>(lts(" + x + ", " + y + "))";
          case Op::kLes: return "bits<1>(les(" + x + ", " + y + "))";
          case Op::kGts: return "bits<1>(gts(" + x + ", " + y + "))";
          case Op::kGes: return "bits<1>(ges(" + x + ", " + y + "))";
          case Op::kLsl: return infix("<<");
          case Op::kLsr: return infix(">>");
          case Op::kAsr: return "asr(" + x + ", " + y + ")";
          case Op::kConcat: return "concat(" + x + ", " + y + ")";
          default: panic("bad binop");
        }
    }

    // -- Statement rendering --------------------------------------------------
    std::string
    fresh(const std::string& stem)
    {
        return stem + "_" + std::to_string(temp_counter_++);
    }

    /** Produce a C++ expression (possibly a temp) holding a's value. */
    std::string
    materialize(const Action* a)
    {
        if (is_pure(a))
            return emit_pure(a);
        std::string t = fresh("t");
        line(type_cpp(a->type) + " " + t + "{};");
        emit_stmt(a, &t);
        return t;
    }

    std::string
    fail_expr(const Action* fail_node)
    {
        KOIKA_CHECK(rule_ctx_ >= 0);
        std::string ret =
            an_.ops[(size_t)fail_node->id].clean_at_fail
                ? "return false;" // nothing to roll back
                : "return fail_" + sanitize(d_.rule(rule_ctx_).name) +
                      "();";
        if (!(opts_.counters && opts_.abort_reasons))
            return ret;
        const char* reason = "abort_guard";
        if (fail_node->kind == ActionKind::kRead)
            reason = "abort_read_conflict";
        else if (fail_node->kind == ActionKind::kWrite)
            reason = "abort_write_conflict";
        size_t pos = sched_pos_.at(rule_ctx_);
        return "{ ++abort_reason_count[" + std::to_string(pos) +
               " * num_abort_reasons + " + reason + "]; " + ret + " }";
    }

    void
    emit_stmt(const Action* a, const std::string* target)
    {
        // Coverage points count on entry, before the node can abort,
        // matching the interpreters (which count at eval entry). Marked
        // branch nodes must also emit a real if/else so both outcomes
        // have increment sites, so they bypass the pure shortcut.
        analysis::CoverKind ck =
            cov_kinds_.empty() ? analysis::CoverKind::kNone
                               : cov_kinds_[(size_t)a->id];
        if (ck != analysis::CoverKind::kNone)
            line("++stmt_count[" + std::to_string(a->id) + "];");
        if (is_pure(a) && ck != analysis::CoverKind::kBranch) {
            if (target != nullptr)
                line(*target + " = " + emit_pure(a) + ";");
            return;
        }
        switch (a->kind) {
          case ActionKind::kLet: {
            std::string vn =
                sanitize(a->var) + "_" + std::to_string(a->id);
            if (is_pure(a->a0)) {
                line(type_cpp(a->a0->type) + " " + vn + " = " +
                     emit_pure(a->a0) + ";");
            } else {
                line(type_cpp(a->a0->type) + " " + vn + "{};");
                emit_stmt(a->a0, &vn);
            }
            scope_[(size_t)a->slot] = vn;
            emit_stmt(a->a1, target);
            return;
          }

          case ActionKind::kAssign: {
            std::string vn = scope_[(size_t)a->slot];
            emit_stmt(a->a0, &vn);
            return;
          }

          case ActionKind::kSeq:
            emit_stmt(a->a0, nullptr);
            emit_stmt(a->a1, target);
            return;

          case ActionKind::kIf: {
            bool branch_point = ck == analysis::CoverKind::kBranch;
            std::string c = materialize(a->a0);
            line("if (" + c + ") {");
            {
                Indent in(*this);
                if (branch_point)
                    line("++branch_taken_count[" +
                         std::to_string(a->id) + "];");
                emit_stmt(a->a1, target);
            }
            // A branch point needs the else arm as an increment site
            // even when it would otherwise be elided.
            bool trivial_else = !branch_point && target == nullptr &&
                                a->a2->kind == ActionKind::kConst;
            if (trivial_else) {
                line("}");
            } else {
                line("} else {");
                {
                    Indent in(*this);
                    if (branch_point)
                        line("++branch_not_taken_count[" +
                             std::to_string(a->id) + "];");
                    emit_stmt(a->a2, target);
                }
                line("}");
            }
            return;
          }

          case ActionKind::kRead: {
            const analysis::OpInfo& op = an_.ops[(size_t)a->id];
            std::string rn = reg_name(a->reg);
            if (a->port == Port::p0) {
                if (op.may_fail)
                    line("if (Log.rwset." + rn + ".wr0 | Log.rwset." +
                         rn + ".wr1) " + fail_expr(a));
                if (target != nullptr)
                    line(*target + " = Log.data." + rn + ";");
            } else {
                if (op.may_fail)
                    line("if (Log.rwset." + rn + ".wr1) " + fail_expr(a));
                if (reg_tracked(a->reg))
                    line("log.rwset." + rn + ".rd1 = true;");
                if (target != nullptr)
                    line(*target + " = log.data." + rn + ";");
            }
            return;
          }

          case ActionKind::kWrite: {
            std::string v = materialize(a->a0);
            const analysis::OpInfo& op = an_.ops[(size_t)a->id];
            std::string rn = reg_name(a->reg);
            if (a->port == Port::p0) {
                if (op.may_fail)
                    line("if (log.rwset." + rn + ".rd1 | log.rwset." +
                         rn + ".wr0 | log.rwset." + rn + ".wr1) " +
                         fail_expr(a));
                if (reg_tracked(a->reg))
                    line("log.rwset." + rn + ".wr0 = true;");
            } else {
                if (op.may_fail)
                    line("if (log.rwset." + rn + ".wr1) " + fail_expr(a));
                if (reg_tracked(a->reg))
                    line("log.rwset." + rn + ".wr1 = true;");
            }
            line("log.data." + rn + " = " + v + ";");
            return;
          }

          case ActionKind::kGuard: {
            std::string c = materialize(a->a0);
            if (ck == analysis::CoverKind::kBranch) {
                // The fail path always returns, so the pass counter
                // after the if only increments when the guard holds.
                line("if (!" + paren(c) + ") { ++branch_not_taken_count[" +
                     std::to_string(a->id) + "]; " + fail_expr(a) + " }");
                line("++branch_taken_count[" + std::to_string(a->id) +
                     "];");
            } else {
                line("if (!" + paren(c) + ") " + fail_expr(a));
            }
            return;
          }

          case ActionKind::kUnop:
          case ActionKind::kBinop:
          case ActionKind::kGetField: {
            // Impure children: materialize them, then compose.
            std::string x = materialize(a->a0);
            std::string y =
                a->kind == ActionKind::kBinop ? materialize(a->a1) : "";
            if (target == nullptr)
                return; // value unused; children side effects done
            std::string expr;
            if (a->kind == ActionKind::kBinop) {
                expr = emit_binop(a, x, y);
            } else if (a->kind == ActionKind::kGetField) {
                expr = paren(x) + "." + sanitize(a->field);
            } else {
                expr = emit_unop_around(a, x);
            }
            line(*target + " = " + expr + ";");
            return;
          }

          case ActionKind::kSubstField: {
            std::string s = materialize(a->a0);
            std::string v = materialize(a->a1);
            if (target == nullptr)
                return;
            line(*target + " = " + s + ";");
            line(*target + "." + sanitize(a->field) + " = " + v + ";");
            return;
          }

          case ActionKind::kCall: {
            std::vector<std::string> args;
            for (const Action* arg : a->args)
                args.push_back(materialize(arg));
            if (target == nullptr)
                return;
            std::string call = sanitize(a->fn->name) + "(";
            for (size_t i = 0; i < args.size(); ++i) {
                if (i)
                    call += ", ";
                call += args[i];
            }
            line(*target + " = " + call + ");");
            return;
          }

          default:
            panic("unexpected impure node kind %s",
                  action_kind_name(a->kind));
        }
    }

    std::string
    emit_unop_around(const Action* a, const std::string& x)
    {
        switch (a->op) {
          case Op::kNot: return "~" + paren(x);
          case Op::kNeg: return paren(x) + ".neg()";
          case Op::kZExtL:
            return "zextl<" + std::to_string(a->imm0) + ">(" + x + ")";
          case Op::kSExtL:
            return "sextl<" + std::to_string(a->imm0) + ">(" + x + ")";
          case Op::kSlice:
            return "slice<" + std::to_string(a->imm0) + ", " +
                   std::to_string(a->imm1) + ">(" + x + ")";
          default:
            panic("bad unop");
        }
    }

    // -- Rules -----------------------------------------------------------------
    void
    emit_rule(int r)
    {
        const Rule& rule = d_.rule(r);
        const analysis::RuleSummary& summary = an_.rules[(size_t)r];
        std::string rn = sanitize(rule.name);

        // Footprint plans (§3.3 "Restrict commits and rollbacks").
        std::vector<int> fp_flags, fp_data;
        for (int reg : summary.footprint_tracked)
            if (reg_tracked(reg))
                fp_flags.push_back(reg);
        fp_data = summary.footprint_writes;
        bool full = fp_data.size() * 2 > d_.num_registers();

        line("// rule " + rule.name);
        if (summary.may_fail) {
            line("bool fail_" + rn + "() {");
            {
                Indent in(*this);
                if (full) {
                    line("log = Log;");
                } else {
                    for (int reg : fp_flags)
                        line("log.rwset." + reg_name(reg) +
                             " = Log.rwset." + reg_name(reg) + ";");
                    for (int reg : fp_data)
                        line("log.data." + reg_name(reg) + " = Log.data." +
                             reg_name(reg) + ";");
                }
                line("return false;");
            }
            line("}");
        }
        line("void commit_" + rn + "() {");
        {
            Indent in(*this);
            if (full) {
                line("Log = log;");
            } else {
                for (int reg : fp_flags)
                    line("Log.rwset." + reg_name(reg) + " = log.rwset." +
                         reg_name(reg) + ";");
                for (int reg : fp_data)
                    line("Log.data." + reg_name(reg) + " = log.data." +
                         reg_name(reg) + ";");
            }
        }
        line("}");
        line("bool rule_" + rn + "() {");
        {
            Indent in(*this);
            rule_ctx_ = r;
            scope_.assign((size_t)rule.nslots, "");
            emit_stmt(rule.body, nullptr);
            line("commit_" + rn + "();");
            line("return true;");
            rule_ctx_ = -1;
        }
        line("}");
        line();
    }

    void
    emit_cycle()
    {
        line("void cycle() {");
        {
            Indent in(*this);
            line("Log.rwset = {};");
            line("log.rwset = {};");
            size_t pos = 0;
            for (int r : d_.schedule_order()) {
                std::string call =
                    "rule_" + sanitize(d_.rule(r).name) + "()";
                if (opts_.counters) {
                    std::string p = std::to_string(pos);
                    line("last_fired[" + p + "] = " + call + ";");
                    line("if (last_fired[" + p + "]) ++commit_count[" + p +
                         "]; else ++abort_count[" + p + "];");
                } else {
                    line(call + ";");
                }
                ++pos;
            }
            line("++cycles;");
        }
        line("}");
        line();
    }

    // -- Pack / unpack for the harness ---------------------------------------
    void
    emit_pack_value(const TypePtr& t, const std::string& expr)
    {
        if (t->is_bits()) {
            line("wr.put_bits(" + expr + ");");
        } else if (t->is_enum()) {
            line("wr.put((uint64_t)" + expr + ", " +
                 std::to_string(t->width) + ");");
        } else {
            // LSB-first: last declared field first.
            for (size_t i = t->fields.size(); i-- > 0;)
                emit_pack_value(t->fields[i].type,
                                expr + "." + sanitize(t->fields[i].name));
        }
    }

    void
    emit_unpack_value(const TypePtr& t, const std::string& target)
    {
        if (t->is_bits()) {
            line(target + " = rd.get_bits<" + std::to_string(t->width) +
                 ">();");
        } else if (t->is_enum()) {
            line(target + " = (" + type_cpp(t) + ")rd.get(" +
                 std::to_string(t->width) + ");");
        } else {
            for (size_t i = t->fields.size(); i-- > 0;)
                emit_unpack_value(t->fields[i].type,
                                  target + "." +
                                      sanitize(t->fields[i].name));
        }
    }

    void
    emit_pack_unpack()
    {
        line("// Flat register access for the test/bench harness.");
        line("void get_reg_words(size_t r, uint64_t* out) const {");
        {
            Indent in(*this);
            line("std::memset(out, 0, 8 * sizeof(uint64_t));");
            line("word_writer wr{out};");
            line("switch (r) {");
            for (size_t r = 0; r < d_.num_registers(); ++r) {
                line("  case " + std::to_string(r) + ": {");
                {
                    Indent in2(*this);
                    emit_pack_value(d_.reg((int)r).type,
                                    "Log.data." + reg_name((int)r));
                    line("break;");
                }
                line("  }");
            }
            line("}");
            line("(void)wr;");
        }
        line("}");
        line();
        line("void set_reg_words(size_t r, const uint64_t* in) {");
        {
            Indent in(*this);
            line("word_reader rd{in};");
            line("switch (r) {");
            for (size_t r = 0; r < d_.num_registers(); ++r) {
                line("  case " + std::to_string(r) + ": {");
                {
                    Indent in2(*this);
                    emit_unpack_value(d_.reg((int)r).type,
                                      "Log.data." + reg_name((int)r));
                    line("log.data." + reg_name((int)r) + " = Log.data." +
                         reg_name((int)r) + ";");
                    line("break;");
                }
                line("  }");
            }
            line("}");
            line("(void)rd;");
        }
        line("}");
    }

    const Design& d_;
    const analysis::DesignAnalysis& an_;
    EmitOptions opts_;
    std::ostringstream out_;
    int indent_ = 0;
    int temp_counter_ = 0;
    int rule_ctx_ = -1;
    std::map<int, size_t> sched_pos_;
    std::vector<std::string> reg_names_;
    std::vector<std::string> scope_;
    std::map<std::string, std::string> type_names_;
    std::set<std::string> used_type_names_;
    std::vector<TypePtr> ordered_types_;
    /** Empty unless opts_.coverage (then indexed by Action::id). */
    std::vector<analysis::CoverKind> cov_kinds_;
};

} // namespace

std::string
model_class_name(const Design& design)
{
    return sanitize(design.name());
}

std::string
emit_model(const Design& design, const analysis::DesignAnalysis& an,
           const EmitOptions& options)
{
    KOIKA_CHECK(design.typechecked);
    return Emitter(design, an, options).run();
}

std::string
emit_model(const Design& design, const EmitOptions& options)
{
    return emit_model(design, analysis::analyze(design), options);
}

size_t
model_sloc(const Design& design)
{
    // Scalar model only: Table 1 compares against the paper's numbers,
    // which predate the batched companion template.
    EmitOptions opts;
    opts.batch = false;
    std::string text = emit_model(design, opts);
    size_t lines = 0;
    bool nonblank = false;
    for (char c : text) {
        if (c == '\n') {
            if (nonblank)
                ++lines;
            nonblank = false;
        } else if (c != ' ') {
            nonblank = true;
        }
    }
    return lines;
}

} // namespace koika::codegen
