/**
 * @file
 * Runtime support for Cuttlesim-generated C++ models.
 *
 * Generated models (src/codegen/cpp_emit.*) are self-contained, readable
 * C++ translations of Kôika designs, in the style of the paper's appendix:
 * one class per design, one member function per rule, early exits on
 * conflicts and guards, and minimized read-write sets. This header
 * provides the few zero-cost vocabulary types they use:
 *
 *  - bits<N>: a fixed-width bit vector over the smallest unsigned integer
 *    (or a word array for N > 64) with hardware (mod-2^N) semantics;
 *  - concat / slice / zextl / sextl / signed comparisons;
 *  - word_writer / word_reader, used by the generated pack/unpack helpers
 *    that expose registers to the harness in flat form.
 *
 * Everything is header-only and trivially inlinable: the C++ compiler is
 * the second half of the Cuttlesim pipeline (§3).
 */
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace cuttlesim {

/**
 * Abort-reason indices used by instrumented models (`cuttlec
 * --instrument`): `abort_reason_count[rule * num_abort_reasons + r]`.
 * Values mirror koika::sim::AbortReason so interpreted and compiled
 * engines compare entry by entry.
 */
enum abort_reason : uint32_t {
    abort_guard = 0,
    abort_read_conflict = 1,
    abort_write_conflict = 2,
};
constexpr uint32_t num_abort_reasons = 3;

namespace detail {

template <uint32_t N>
using storage_t = std::conditional_t<
    (N <= 8), uint8_t,
    std::conditional_t<(N <= 16), uint16_t,
                       std::conditional_t<(N <= 32), uint32_t, uint64_t>>>;

constexpr uint64_t
mask64(uint32_t n)
{
    return n >= 64 ? ~uint64_t{0} : (uint64_t{1} << n) - 1;
}

} // namespace detail

template <uint32_t N, bool Wide = (N > 64)>
struct bits_impl;

/** Narrow bit vectors: one unsigned integer, masked to N bits. */
template <uint32_t N>
struct bits_impl<N, false>
{
    using T = detail::storage_t<N>;
    static constexpr T kMask = (T)detail::mask64(N);

    T v = 0;

    constexpr bits_impl() = default;
    constexpr explicit bits_impl(uint64_t x) : v((T)(x & kMask)) {}

    static constexpr bits_impl
    of(uint64_t x)
    {
        return bits_impl(x);
    }

    constexpr uint64_t u64() const { return v; }

    // Hardware arithmetic: everything is mod 2^N.
    friend constexpr bits_impl
    operator+(bits_impl a, bits_impl b)
    {
        return bits_impl((uint64_t)a.v + b.v);
    }
    friend constexpr bits_impl
    operator-(bits_impl a, bits_impl b)
    {
        return bits_impl((uint64_t)a.v - b.v);
    }
    friend constexpr bits_impl
    operator*(bits_impl a, bits_impl b)
    {
        return bits_impl((uint64_t)a.v * b.v);
    }
    friend constexpr bits_impl
    operator&(bits_impl a, bits_impl b)
    {
        return bits_impl((uint64_t)(a.v & b.v));
    }
    friend constexpr bits_impl
    operator|(bits_impl a, bits_impl b)
    {
        return bits_impl((uint64_t)(a.v | b.v));
    }
    friend constexpr bits_impl
    operator^(bits_impl a, bits_impl b)
    {
        return bits_impl((uint64_t)(a.v ^ b.v));
    }
    constexpr bits_impl operator~() const { return bits_impl((uint64_t)~v); }
    constexpr bits_impl
    neg() const
    {
        return bits_impl((uint64_t)0 - (uint64_t)v);
    }

    friend constexpr bool
    operator==(bits_impl a, bits_impl b)
    {
        return a.v == b.v;
    }
    friend constexpr bool
    operator!=(bits_impl a, bits_impl b)
    {
        return a.v != b.v;
    }
    friend constexpr bool
    operator<(bits_impl a, bits_impl b)
    {
        return a.v < b.v;
    }
    friend constexpr bool
    operator<=(bits_impl a, bits_impl b)
    {
        return a.v <= b.v;
    }
    friend constexpr bool
    operator>(bits_impl a, bits_impl b)
    {
        return a.v > b.v;
    }
    friend constexpr bool
    operator>=(bits_impl a, bits_impl b)
    {
        return a.v >= b.v;
    }

    constexpr int64_t
    to_signed() const
    {
        if (N == 0)
            return 0;
        uint64_t x = v;
        uint64_t sign = uint64_t{1} << (N - 1);
        return (int64_t)((x ^ sign)) - (int64_t)sign;
    }

    template <uint32_t M>
    friend constexpr bits_impl
    operator<<(bits_impl a, bits_impl<M, (M > 64)> b)
    {
        return b.u64() >= N ? bits_impl() : bits_impl((uint64_t)a.v
                                                      << b.u64());
    }
    template <uint32_t M>
    friend constexpr bits_impl
    operator>>(bits_impl a, bits_impl<M, (M > 64)> b)
    {
        return b.u64() >= N ? bits_impl()
                            : bits_impl((uint64_t)a.v >> b.u64());
    }

    /** 1-bit values are usable directly as conditions. */
    constexpr explicit operator bool() const
    {
        static_assert(N == 1, "only bits<1> converts to bool");
        return v != 0;
    }
};

/** Wide bit vectors: little-endian word arrays. */
template <uint32_t N>
struct bits_impl<N, true>
{
    static constexpr uint32_t kWords = (N + 63) / 64;
    std::array<uint64_t, kWords> w{};

    constexpr bits_impl() = default;
    constexpr explicit bits_impl(uint64_t x) { w[0] = x; }

    static constexpr bits_impl
    of_words(std::array<uint64_t, kWords> words)
    {
        bits_impl r;
        r.w = words;
        r.canonicalize();
        return r;
    }

    constexpr uint64_t u64() const { return w[0]; }

    constexpr void
    canonicalize()
    {
        if (N % 64 != 0)
            w[kWords - 1] &= detail::mask64(N % 64);
    }

    friend bits_impl
    operator+(const bits_impl& a, const bits_impl& b)
    {
        bits_impl r;
        uint64_t carry = 0;
        for (uint32_t i = 0; i < kWords; ++i) {
            uint64_t s1 = a.w[i] + b.w[i];
            uint64_t c1 = s1 < a.w[i];
            r.w[i] = s1 + carry;
            carry = c1 | (r.w[i] < s1);
        }
        r.canonicalize();
        return r;
    }
    friend bits_impl
    operator-(const bits_impl& a, const bits_impl& b)
    {
        return a + b.neg();
    }
    friend bits_impl
    operator*(const bits_impl& a, const bits_impl& b)
    {
        bits_impl r;
        for (uint32_t i = 0; i < kWords; ++i) {
            uint64_t carry = 0;
            for (uint32_t j = 0; i + j < kWords; ++j) {
                unsigned __int128 p =
                    (unsigned __int128)a.w[i] * b.w[j] + r.w[i + j] +
                    carry;
                r.w[i + j] = (uint64_t)p;
                carry = (uint64_t)(p >> 64);
            }
        }
        r.canonicalize();
        return r;
    }
    friend bits_impl
    operator&(const bits_impl& a, const bits_impl& b)
    {
        bits_impl r;
        for (uint32_t i = 0; i < kWords; ++i)
            r.w[i] = a.w[i] & b.w[i];
        return r;
    }
    friend bits_impl
    operator|(const bits_impl& a, const bits_impl& b)
    {
        bits_impl r;
        for (uint32_t i = 0; i < kWords; ++i)
            r.w[i] = a.w[i] | b.w[i];
        return r;
    }
    friend bits_impl
    operator^(const bits_impl& a, const bits_impl& b)
    {
        bits_impl r;
        for (uint32_t i = 0; i < kWords; ++i)
            r.w[i] = a.w[i] ^ b.w[i];
        return r;
    }
    bits_impl
    operator~() const
    {
        bits_impl r;
        for (uint32_t i = 0; i < kWords; ++i)
            r.w[i] = ~w[i];
        r.canonicalize();
        return r;
    }
    bits_impl
    neg() const
    {
        bits_impl one;
        one.w[0] = 1;
        return ~*this + one;
    }

    friend bool
    operator==(const bits_impl& a, const bits_impl& b)
    {
        return a.w == b.w;
    }
    friend bool
    operator!=(const bits_impl& a, const bits_impl& b)
    {
        return !(a == b);
    }
    friend bool
    operator<(const bits_impl& a, const bits_impl& b)
    {
        for (uint32_t i = kWords; i-- > 0;)
            if (a.w[i] != b.w[i])
                return a.w[i] < b.w[i];
        return false;
    }
    friend bool
    operator<=(const bits_impl& a, const bits_impl& b)
    {
        return !(b < a);
    }
    friend bool
    operator>(const bits_impl& a, const bits_impl& b)
    {
        return b < a;
    }
    friend bool
    operator>=(const bits_impl& a, const bits_impl& b)
    {
        return b <= a;
    }

    bool
    sign_bit() const
    {
        return (w[(N - 1) / 64] >> ((N - 1) % 64)) & 1;
    }

    template <uint32_t M>
    friend bits_impl
    operator<<(const bits_impl& a, bits_impl<M, (M > 64)> b)
    {
        uint64_t n = b.u64();
        bits_impl r;
        if (n >= N)
            return r;
        uint32_t ws = (uint32_t)(n / 64), bs = (uint32_t)(n % 64);
        for (uint32_t i = 0; i < kWords; ++i) {
            uint64_t v = i >= ws ? a.w[i - ws] << bs : 0;
            if (bs != 0 && i > ws)
                v |= a.w[i - ws - 1] >> (64 - bs);
            r.w[i] = v;
        }
        r.canonicalize();
        return r;
    }
    template <uint32_t M>
    friend bits_impl
    operator>>(const bits_impl& a, bits_impl<M, (M > 64)> b)
    {
        uint64_t n = b.u64();
        bits_impl r;
        if (n >= N)
            return r;
        uint32_t ws = (uint32_t)(n / 64), bs = (uint32_t)(n % 64);
        for (uint32_t i = 0; i < kWords; ++i) {
            uint64_t v = i + ws < kWords ? a.w[i + ws] >> bs : 0;
            if (bs != 0 && i + ws + 1 < kWords)
                v |= a.w[i + ws + 1] << (64 - bs);
            r.w[i] = v;
        }
        return r;
    }
};

template <uint32_t N>
using bits = bits_impl<N>;

// -- Signed comparisons ------------------------------------------------------

template <uint32_t N>
constexpr bool
lts(bits<N> a, bits<N> b)
{
    if constexpr (N <= 64) {
        return a.to_signed() < b.to_signed();
    } else {
        bool sa = a.sign_bit(), sb = b.sign_bit();
        if (sa != sb)
            return sa;
        return a < b;
    }
}

template <uint32_t N>
constexpr bool
les(bits<N> a, bits<N> b)
{
    return lts(a, b) || a == b;
}

template <uint32_t N>
constexpr bool
gts(bits<N> a, bits<N> b)
{
    return lts(b, a);
}

template <uint32_t N>
constexpr bool
ges(bits<N> a, bits<N> b)
{
    return les(b, a);
}

// -- Structural operations ---------------------------------------------------

namespace detail {

template <uint32_t N>
constexpr uint64_t
word_of(const bits<N>& x, uint32_t i)
{
    if constexpr (N <= 64) {
        return i == 0 ? (uint64_t)x.v : 0;
    } else {
        return i < bits<N>::kWords ? x.w[i] : 0;
    }
}

template <uint32_t N>
constexpr void
set_word(bits<N>& x, uint32_t i, uint64_t v)
{
    if constexpr (N <= 64) {
        if (i == 0)
            x.v = (typename bits<N>::T)(v & bits<N>::kMask);
    } else {
        if (i < bits<N>::kWords)
            x.w[i] = v;
    }
}

/** Copy `width` bits from src (starting at src_off) into dst at dst_off. */
template <uint32_t NS, uint32_t ND>
constexpr void
copy_bits(const bits<NS>& src, uint32_t src_off, bits<ND>& dst,
          uint32_t dst_off, uint32_t width)
{
    for (uint32_t k = 0; k < width;) {
        uint32_t sw = src_off + k, dw = dst_off + k;
        uint32_t chunk = std::min({width - k, 64 - sw % 64, 64 - dw % 64});
        uint64_t piece =
            (word_of(src, sw / 64) >> (sw % 64)) & mask64(chunk);
        uint64_t old = word_of(dst, dw / 64);
        old &= ~(mask64(chunk) << (dw % 64));
        old |= piece << (dw % 64);
        set_word(dst, dw / 64, old);
        k += chunk;
    }
}

} // namespace detail

/** hi becomes the most-significant part. */
template <uint32_t NA, uint32_t NB>
constexpr bits<NA + NB>
concat(const bits<NA>& hi, const bits<NB>& lo)
{
    bits<NA + NB> r;
    detail::copy_bits(lo, 0, r, 0, NB);
    detail::copy_bits(hi, 0, r, NB, NA);
    if constexpr (NA + NB > 64)
        r.canonicalize();
    return r;
}

template <uint32_t Off, uint32_t W, uint32_t N>
constexpr bits<W>
slice(const bits<N>& x)
{
    static_assert(Off + W <= N, "slice out of range");
    bits<W> r;
    detail::copy_bits(x, Off, r, 0, W);
    return r;
}

template <uint32_t W, uint32_t N>
constexpr bits<W>
zextl(const bits<N>& x)
{
    bits<W> r;
    detail::copy_bits(x, 0, r, 0, W < N ? W : N);
    return r;
}

template <uint32_t W, uint32_t N>
constexpr bits<W>
sextl(const bits<N>& x)
{
    bits<W> r = zextl<W>(x);
    if constexpr (W > N && N > 0) {
        bool sign;
        if constexpr (N <= 64)
            sign = (x.v >> (N - 1)) & 1;
        else
            sign = x.sign_bit();
        if (sign) {
            // Fill bits [N, W) with ones.
            for (uint32_t k = N; k < W;) {
                uint32_t chunk = std::min(64 - k % 64, W - k);
                uint64_t old = detail::word_of(r, k / 64);
                old |= detail::mask64(chunk) << (k % 64);
                detail::set_word(r, k / 64, old);
                k += chunk;
            }
        }
    }
    return r;
}

/** Arithmetic shift right. */
template <uint32_t N, uint32_t M>
constexpr bits<N>
asr(const bits<N> a, bits<M> b)
{
    bool sign;
    if constexpr (N <= 64)
        sign = N > 0 && ((a.v >> (N - 1)) & 1);
    else
        sign = a.sign_bit();
    uint64_t n = b.u64() >= N ? N : b.u64();
    bits<N> r = a >> bits<M>(n >= N ? 0 : n);
    if (b.u64() >= N) {
        r = bits<N>();
    }
    if (sign) {
        for (uint32_t k = (uint32_t)(N - n); k < N;) {
            uint32_t chunk = std::min<uint32_t>(64 - k % 64, N - k);
            uint64_t old = detail::word_of(r, k / 64);
            old |= detail::mask64(chunk) << (k % 64);
            detail::set_word(r, k / 64, old);
            k += chunk;
        }
    }
    return r;
}

// -- Flat packing for the harness interface ----------------------------------

/** Appends fields LSB-first into a word buffer. */
struct word_writer
{
    uint64_t* out;
    uint32_t pos = 0;

    void
    put(uint64_t v, uint32_t width)
    {
        for (uint32_t k = 0; k < width;) {
            uint32_t p = pos + k;
            uint32_t chunk = std::min(width - k, 64 - p % 64);
            uint64_t piece = (v >> k) & detail::mask64(chunk);
            out[p / 64] &= ~(detail::mask64(chunk) << (p % 64));
            out[p / 64] |= piece << (p % 64);
            k += chunk;
        }
        pos += width;
    }

    template <uint32_t N>
    void
    put_bits(const bits<N>& v)
    {
        for (uint32_t i = 0; i * 64 < N; ++i)
            put(detail::word_of(v, i), std::min<uint32_t>(64, N - i * 64));
    }
};

/** Reads fields LSB-first from a word buffer. */
struct word_reader
{
    const uint64_t* in;
    uint32_t pos = 0;

    uint64_t
    get(uint32_t width)
    {
        uint64_t v = 0;
        for (uint32_t k = 0; k < width;) {
            uint32_t p = pos + k;
            uint32_t chunk = std::min(width - k, 64 - p % 64);
            uint64_t piece = (in[p / 64] >> (p % 64)) & detail::mask64(chunk);
            v |= piece << k;
            k += chunk;
        }
        pos += width;
        return v;
    }

    template <uint32_t N>
    bits<N>
    get_bits()
    {
        bits<N> r;
        for (uint32_t i = 0; i * 64 < N; ++i)
            detail::set_word(r, i,
                             get(std::min<uint32_t>(64, N - i * 64)));
        return r;
    }
};

} // namespace cuttlesim
