/**
 * @file
 * The Cuttlesim code generator: Kôika -> readable, optimized C++.
 *
 * This is the paper's headline artifact (§3). Each design becomes one
 * self-contained C++ class whose structure matches the source design
 * nearly line-by-line (§4.2): enums and structs map to native C++ enums
 * and structs (gdb prints them symbolically with no custom
 * pretty-printers), each rule becomes a member function that exits early
 * on conflicts and explicit aborts, and the transaction machinery is the
 * final form of §3.2/§3.3:
 *
 *  - two logs only (cycle log `Log`, accumulated rule log `log`), each a
 *    read-write-set struct plus a data struct;
 *  - merged data fields and no separate beginning-of-cycle state;
 *  - read-write sets only for registers the static analysis cannot prove
 *    conflict-free, checks only where they can actually fail;
 *  - per-rule commit/rollback helpers restricted to the rule's footprint
 *    (whole-log copies when the footprint is wide);
 *  - rollback-free `return false` for failures with a pristine log.
 *
 * The emitted file includes only cuttlesim.hpp (header-only runtime) and
 * is deliberately debuggable: breakpoints on rule functions, watchpoints
 * on `log.rwset.*`, and step-through of individual rules all behave as
 * described in the paper's case studies.
 */
#pragma once

#include <string>

#include "analysis/analysis.hpp"
#include "koika/design.hpp"

namespace koika::codegen {

struct EmitOptions
{
    /** Emit per-rule commit/abort counters (Gcov-style statistics). */
    bool counters = true;

    /**
     * Instrument every early-exit branch with an abort-reason counter
     * (guard vs. read-port conflict vs. write-port conflict), indexed
     * like koika::sim::AbortReason. Off by default: the extra increment
     * on the failure path perturbs the inlining story (§3), so the
     * observability layer asks for it explicitly (`cuttlec
     * --instrument`). Implies nothing when `counters` is off.
     */
    bool abort_reasons = false;

    /**
     * Emit statement/branch coverage arrays (`stmt_count`,
     * `branch_taken_count`, `branch_not_taken_count`, one slot per AST
     * node, increments only at the points analysis::coverage_points
     * classifies). GeneratedModel exposes them through
     * sim::CoverageModel, so compiled models feed the same coverage
     * databases as the interpreter tiers. Off by default for the same
     * reason as abort_reasons; `cuttlec --instrument` turns it on.
     */
    bool coverage = false;

    /**
     * Also emit `<class>_batch<kLanes>`, the batched multi-instance
     * companion: register state is struct-of-arrays across kLanes
     * trial lanes and cycle() advances every unmasked lane in lockstep
     * through the scalar model's rule code (finished/diverged lanes
     * are masked out GPU-warp style). Header-only and templated, so
     * leaving it on costs nothing unless a lane count is instantiated.
     * model_sloc() turns it off: the paper's Table 1 counts the scalar
     * model alone.
     */
    bool batch = true;

    /** Override the emitted class name (empty = model_class_name()). */
    std::string class_name;
};

/** C++ class name for a design ("rv32i-bp" -> "rv32i_bp"). */
std::string model_class_name(const Design& design);

/** Generate the full model header text. */
std::string emit_model(const Design& design,
                       const analysis::DesignAnalysis& an,
                       const EmitOptions& options = {});

/** Convenience: analyze + emit. */
std::string emit_model(const Design& design,
                       const EmitOptions& options = {});

/** Non-blank line count of the generated model (Table 1 column). */
size_t model_sloc(const Design& design);

} // namespace koika::codegen
