/**
 * @file
 * Out-of-process compilation of generated models, hardened.
 *
 * Cuttlesim's full pipeline is "emit C++, hand it to a C++ compiler"
 * (§3). The in-tree benchmarks pre-generate models at build time, but the
 * differential tests and the compiler-sensitivity experiment (Fig. 3)
 * exercise the real pipeline: emit the model header plus a small driver,
 * invoke the system C++ compiler with chosen flags, and run the binary.
 *
 * Because that pipeline leaves the process — and certified-compiler work
 * (Fe-Si) teaches us to distrust everything outside it — every external
 * step runs under a watchdog: commands execute in their own process
 * group, are killed wholesale when they exceed a timeout, have their exit
 * status decoded properly (a SIGSEGV in a generated binary reports
 * "killed by signal 11", never a bogus exit code), and transient failures
 * (signal deaths, timeouts) are retried once with backoff. Failures throw
 * FatalError carrying a structured Diagnostic (phase, design, command,
 * captured output).
 *
 * The pipeline's dominant cost — invoking the external compiler — is
 * amortized by a content-addressed cache (CacheConfig): the key is the
 * SHA-256 of the sources, the runtime header, the compiler identity,
 * and the flags, so a hit is guaranteed to reproduce the exact binary
 * the compiler would have produced and skips the fork/exec pipeline
 * entirely. Entries are published with write-to-temp + atomic rename,
 * which keeps the cache safe under concurrent cuttlec invocations.
 */
#pragma once

#include <string>
#include <vector>

#include <sys/types.h>

#include "codegen/cpp_emit.hpp"
#include "koika/design.hpp"
#include "obs/metrics.hpp"

namespace koika::codegen {

/** Policy knobs for one external command. */
struct RunOptions
{
    /** Kill the command's process group after this many seconds. */
    double timeout_seconds = 120;
    /** Extra attempts after the first, for transient failures only
     *  (signal deaths and timeouts; ordinary nonzero exits are
     *  deterministic and never retried). */
    int retries = 0;
    /** Sleep before the first retry; doubled for each further one. */
    double backoff_seconds = 0.1;
};

/** Decoded outcome of one external command. */
struct RunResult
{
    /** Interleaved stdout+stderr of the last attempt. */
    std::string output;
    /** WEXITSTATUS when the command exited; -1 otherwise. */
    int exit_code = -1;
    /** WTERMSIG when the command died on a signal; 0 otherwise. */
    int term_signal = 0;
    /** True when the watchdog killed the command. */
    bool timed_out = false;
    /** Attempts made (1 = no retry was needed). */
    int attempts = 1;
    /** Wall-clock seconds of the last attempt. */
    double seconds = 0;

    bool exited() const { return !timed_out && term_signal == 0; }
    bool ok() const { return exited() && exit_code == 0; }

    /** "exit code 3" / "killed by signal 11 (SIGSEGV)" /
     *  "timed out after 5s (killed by watchdog)". */
    std::string describe() const;
};

/**
 * Run `command` through /bin/sh under the watchdog, capturing
 * stdout+stderr. Never throws on command failure: decode `RunResult`.
 * Retries (per `opts`) apply only to transient failures; each retry
 * sleeps the (jittered, doubling) backoff and increments the
 * `compile.transient_retries` counter in compile_metrics().
 */
RunResult run_command(const std::string& command,
                      const RunOptions& opts = {});

/**
 * A supervised child process, for callers that manage several children
 * concurrently (the campaign orchestrator) instead of blocking in
 * run_command. The child runs in its own process group — the same
 * containment run_command's watchdog uses — so kill_process_group
 * takes out the child and everything it spawned in one shot.
 */
struct ChildProcess
{
    pid_t pid = -1;
    /** The argv[0]..argv[n] line, for diagnostics. */
    std::string command;
};

/**
 * fork/exec `argv` (argv[0] is the executable path; no shell) with
 * stdin from /dev/null and stdout+stderr appended to `log_path` (or
 * /dev/null when empty). The child is its own process group leader.
 * Throws FatalError when the fork/open fails; an exec failure surfaces
 * as the child exiting 127.
 */
ChildProcess spawn_process(const std::vector<std::string>& argv,
                           const std::string& log_path);

/** SIGKILL the child's whole process group (idempotent, best effort). */
void kill_process_group(const ChildProcess& child);

/**
 * Non-blocking reap: false while the child is still running. On true,
 * `exit_code` is the exit status (-1 if signaled) and `term_signal`
 * the terminating signal (0 if exited) — the same decoding RunResult
 * uses. A child may be reaped exactly once.
 */
bool try_reap(ChildProcess& child, int* exit_code, int* term_signal);

/**
 * The compiled-model cache. Content addressed: key = SHA-256 of the
 * written sources, the cuttlesim runtime header, the compiler identity
 * (path + `--version` banner), and the flags. A hit copies the cached
 * binary into the workdir without running the compiler; a miss
 * compiles, then publishes the binary into the cache via temp-file +
 * atomic rename (safe under concurrent cuttlec invocations sharing one
 * cache directory). The directory is size-capped: after a store, the
 * oldest entries (by mtime; hits re-touch) are evicted until the cap
 * holds.
 *
 * Activity is observable through compile_metrics(): counters
 * `compile.cache_hits`, `compile.cache_misses`, `compile.cache_stores`,
 * `compile.cache_evictions`, `compile.cache_stale_temps_swept`, and
 * `compile.external_compiles`.
 *
 * A process killed mid-store leaves its `*.tmp.<pid>.<n>` file behind;
 * eviction also sweeps temps older than an hour (counted under
 * `compile.cache_stale_temps_swept`), so crashes cannot leak disk in
 * the shared cache directory.
 */
struct CacheConfig
{
    /** Cache directory; empty disables the cache entirely. */
    std::string dir;
    /** Evict oldest entries beyond this many bytes (0 = uncapped). */
    uint64_t max_bytes = 2ull * 1024 * 1024 * 1024;
};

/**
 * The conventional cache location: $CUTTLESIM_CACHE_DIR if set, else
 * $XDG_CACHE_HOME/cuttlesim, else ~/.cache/cuttlesim (empty string when
 * no home directory is resolvable, which disables the cache).
 */
std::string default_cache_dir();

/**
 * Process-wide compile-pipeline metrics (cache hit/miss/store/eviction
 * counts, external compiler invocations). Increments are internally
 * serialized, so the pipeline may run from pool workers; snapshot the
 * registry only while no compile is in flight.
 */
obs::MetricsRegistry& compile_metrics();

/**
 * The compiler's identity string — absolute path plus the first line of
 * its `--version` banner, newline-separated. This is the same string
 * the cache key hashes (so two processes agree on identity iff they
 * would share cache entries); benches embed it in their `host` block so
 * results are comparable across machines. Computed once per process
 * (the first call forks the compiler).
 */
const std::string& compiler_identity();

/**
 * compiler_identity() flattened to one line (newlines become spaces) —
 * the form embedded in single-line contexts: bench `host` blocks and
 * telemetry meta records.
 */
const std::string& compiler_identity_line();

struct CompileResult
{
    /** Path of the produced executable. */
    std::string binary;
    /** Wall-clock seconds spent in the C++ compiler (last attempt);
     *  0 on a cache hit. */
    double compile_seconds = 0;
    /** Compiler attempts made (>1 after a transient-failure retry). */
    int attempts = 1;
    /** True when the binary came out of the cache (no compiler run). */
    bool cache_hit = false;
    /** Content hash of (sources, runtime, compiler, flags); empty when
     *  the cache was disabled. */
    std::string cache_key;
};

/** Policy knobs for out-of-process model compilation. */
struct CompileOptions
{
    /** Kill the compiler after this many seconds. */
    double timeout_seconds = 300;
    /** Retries for transient compiler failures (OOM-kill, timeout). */
    int retries = 1;
    double backoff_seconds = 0.25;
    /** Design name for diagnostics (defaults to the main file). */
    std::string design;
    /** Compiled-model cache; disabled unless `cache.dir` is set. */
    CacheConfig cache;
    /**
     * How compile_model_driver emits the model (counters, abort-reason
     * and coverage instrumentation). `class_name` is ignored: the model
     * file is always named after model_class_name(design). The emit
     * options participate in the cache key through the emitted source,
     * so instrumented and plain builds never collide.
     */
    EmitOptions emit;
};

/**
 * Emit the model for `design` into `workdir`, together with `driver_cpp`
 * (a main() that may include "<class>.model.hpp"), compile both with the
 * system compiler and `flags`, and return the binary path. Throws
 * FatalError with the compiler output on failure.
 */
CompileResult compile_model_driver(const Design& design,
                                   const std::string& workdir,
                                   const std::string& driver_cpp,
                                   const std::string& flags = "-O2",
                                   const CompileOptions& opts = {});

/**
 * Lower-level entry: write `files` (name -> contents) into workdir,
 * compile `main_file` (which may include the others and the cuttlesim
 * runtime) with `flags`, and return the binary. Used by the Fig. 3
 * compiler-sensitivity bench to build both Cuttlesim and RTL models at
 * several optimization levels.
 */
CompileResult compile_cpp(const std::string& workdir,
                          const std::vector<std::pair<std::string,
                                                      std::string>>& files,
                          const std::string& main_file,
                          const std::string& flags,
                          const CompileOptions& opts = {});

/**
 * A generic driver: runs argv[1] cycles and dumps every register (as hex
 * words) after each cycle — the format parse_reg_dump understands.
 */
std::string reg_dump_driver(const Design& design);

/**
 * Run a binary, capture stdout; throws FatalError (with signal/timeout
 * detail and the captured output) on anything but a clean exit 0.
 */
std::string run_binary(const std::string& binary, const std::string& args,
                       const RunOptions& opts = {});

/** Wall-clock seconds to run a binary (stdout discarded). */
double time_binary(const std::string& binary, const std::string& args,
                   const RunOptions& opts = {});

/**
 * Parse reg_dump_driver output into per-cycle register snapshots.
 * result[c][r] is register r's value after cycle c.
 */
std::vector<std::vector<Bits>> parse_reg_dump(const Design& design,
                                              const std::string& output);

} // namespace koika::codegen
