/**
 * @file
 * Out-of-process compilation of generated models.
 *
 * Cuttlesim's full pipeline is "emit C++, hand it to a C++ compiler"
 * (§3). The in-tree benchmarks pre-generate models at build time, but the
 * differential tests and the compiler-sensitivity experiment (Fig. 3)
 * exercise the real pipeline: emit the model header plus a small driver,
 * invoke the system C++ compiler with chosen flags, and run the binary.
 */
#pragma once

#include <string>

#include "koika/design.hpp"

namespace koika::codegen {

struct CompileResult
{
    /** Path of the produced executable. */
    std::string binary;
    /** Wall-clock seconds spent in the C++ compiler. */
    double compile_seconds = 0;
};

/**
 * Emit the model for `design` into `workdir`, together with `driver_cpp`
 * (a main() that may include "<class>.model.hpp"), compile both with the
 * system compiler and `flags`, and return the binary path. Throws
 * FatalError with the compiler output on failure.
 */
CompileResult compile_model_driver(const Design& design,
                                   const std::string& workdir,
                                   const std::string& driver_cpp,
                                   const std::string& flags = "-O2");

/**
 * Lower-level entry: write `files` (name -> contents) into workdir,
 * compile `main_file` (which may include the others and the cuttlesim
 * runtime) with `flags`, and return the binary. Used by the Fig. 3
 * compiler-sensitivity bench to build both Cuttlesim and RTL models at
 * several optimization levels.
 */
CompileResult compile_cpp(const std::string& workdir,
                          const std::vector<std::pair<std::string,
                                                      std::string>>& files,
                          const std::string& main_file,
                          const std::string& flags);

/**
 * A generic driver: runs argv[1] cycles and dumps every register (as hex
 * words) after each cycle — the format parse_reg_dump understands.
 */
std::string reg_dump_driver(const Design& design);

/** Run a binary, capture stdout; throws on nonzero exit. */
std::string run_binary(const std::string& binary,
                       const std::string& args);

/** Wall-clock seconds to run a binary (stdout discarded). */
double time_binary(const std::string& binary, const std::string& args);

/**
 * Parse reg_dump_driver output into per-cycle register snapshots.
 * result[c][r] is register r's value after cycle c.
 */
std::vector<std::vector<Bits>> parse_reg_dump(const Design& design,
                                              const std::string& output);

} // namespace koika::codegen
