#include "codegen/dlmodel.hpp"

#include <dlfcn.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <sstream>
#include <unordered_map>

#include "base/error.hpp"
#include "base/io.hpp"
#include "base/sha256.hpp"
#include "codegen/cpp_emit.hpp"
#include "obs/prof.hpp"

#ifndef CUTTLESIM_SRC_DIR
#error "CUTTLESIM_SRC_DIR must be defined by the build system"
#endif

namespace koika::codegen {

namespace {

/** A loaded model library: the create() entry point plus the handle we
 *  keep forever (see the never-dlclose contract in dlmodel.hpp). */
struct LoadedLib
{
    void* handle = nullptr;
    sim::Model* (*create)() = nullptr;
};

/**
 * The shim translation unit compiled into the shared object. It is
 * self-contained by construction: the emitted model header pulls in the
 * cuttlesim runtime, GeneratedModel pulls in the sim interfaces, and
 * the two base .cpp files provide the only out-of-line symbols those
 * headers reference (Bits and error plumbing). Everything resolves
 * inside the object, so dlopen(RTLD_LOCAL) needs nothing from the host
 * beyond libstdc++.
 */
/**
 * Digest of every in-tree file the shim includes (transitively). The
 * content-addressed cache hashes the workdir sources and the runtime
 * header, but NOT arbitrary -I trees — embedding this digest in the
 * shim source folds the harness headers into the cache key, so editing
 * GeneratedModel or Bits invalidates cached shared objects exactly like
 * editing the model itself would.
 */
std::string
tree_digest()
{
    static const std::string digest = [] {
        const char* files[] = {
            "/codegen/generated_model.hpp", "/sim/model.hpp",
            "/sim/state.hpp",               "/base/bits.hpp",
            "/base/bits.cpp",               "/base/error.hpp",
            "/base/error.cpp",
        };
        Sha256 h;
        for (const char* f : files)
            h.update(read_file(std::string(CUTTLESIM_SRC_DIR) + f));
        return h.hex_digest();
    }();
    return digest;
}

std::string
shim_source(const std::string& cls, const std::string& design_name)
{
    std::ostringstream os;
    os << "// cuttlesim-dlmodel-v1 tree:" << tree_digest() << "\n"
       << "#include \"" << cls << ".model.hpp\"\n"
       << "#include \"codegen/generated_model.hpp\"\n"
       << "#include \"base/bits.cpp\"\n"
       << "#include \"base/error.cpp\"\n"
       << "\n"
       << "extern \"C\" const char*\n"
       << "cuttlesim_model_design()\n"
       << "{\n"
       << "    return \"" << design_name << "\";\n"
       << "}\n"
       << "\n"
       << "extern \"C\" koika::sim::Model*\n"
       << "cuttlesim_model_create()\n"
       << "{\n"
       << "    return new koika::codegen::GeneratedModel<\n"
       << "        cuttlesim::models::" << cls << ">();\n"
       << "}\n";
    return os.str();
}

/**
 * Per-thread scratch directory under `base`: emitted sources are
 * rewritten on every (thread-local) cache miss, so two pool workers
 * loading the same design concurrently must not share a workdir. The
 * thread index is a process-wide counter, not the TID, so paths stay
 * short and stable within a run.
 */
std::string
thread_workdir(const std::string& base)
{
    static std::atomic<uint64_t> next_thread{0};
    thread_local uint64_t id = next_thread.fetch_add(1);
    ::mkdir(base.c_str(), 0755);
    std::string dir = base + "/t" + std::to_string(id);
    ::mkdir(dir.c_str(), 0755);
    return dir;
}

LoadedLib
load_library(const Design& design, const DlModelOptions& options)
{
    std::string cls = model_class_name(design);
    std::string base = options.workdir;
    if (base.empty())
        base = "/tmp/cuttlesim_dl_" + std::to_string((long)::getpid());
    std::string workdir = thread_workdir(base);

    CompileOptions copts;
    copts.design = design.name();
    copts.cache = options.cache;
    // Full instrumentation, always: the in-process engine must expose
    // the same counters, abort reasons, and coverage arrays as the T5
    // interpreter, or campaign reports would depend on the engine.
    EmitOptions eopts;
    eopts.counters = true;
    eopts.abort_reasons = true;
    eopts.coverage = true;
    obs::ProfScope emit_span("compile/emit");
    std::string model = emit_model(design, eopts);
    std::string shim = shim_source(cls, design.name());
    emit_span.close();

    // -fPIC -shared turns the "binary" into a shared object (dlopen
    // does not care about the .bin suffix); the src include path
    // resolves generated_model.hpp and the two base .cpp includes. The
    // flags are hashed into the content-addressed cache key, so shared
    // objects and standalone binaries can never collide in the cache.
    std::string flags =
        options.cxxflags + " -fPIC -shared -I " CUTTLESIM_SRC_DIR;
    CompileResult compiled =
        compile_cpp(workdir,
                    {{cls + ".model.hpp", std::move(model)},
                     {cls + ".shim.cpp", std::move(shim)}},
                    cls + ".shim.cpp", flags, copts);

    obs::ProfScope load_span("compile/dlopen");
    // RTLD_LOCAL keeps each model library's symbols private (several
    // designs can be loaded side by side); cross-boundary dynamic_cast
    // still works because libstdc++ compares type_info by name.
    void* handle =
        ::dlopen(compiled.binary.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (handle == nullptr) {
        const char* err = ::dlerror();
        fatal_diag(Diagnostic{.phase = "dlopen",
                              .design = design.name(),
                              .command = "",
                              .detail = err != nullptr ? err : ""},
                   "cannot load compiled model '%s'",
                   compiled.binary.c_str());
    }
    auto* design_fn = reinterpret_cast<const char* (*)()>(
        ::dlsym(handle, "cuttlesim_model_design"));
    auto* create_fn = reinterpret_cast<sim::Model* (*)()>(
        ::dlsym(handle, "cuttlesim_model_create"));
    if (design_fn == nullptr || create_fn == nullptr)
        fatal_diag(Diagnostic{.phase = "dlopen",
                              .design = design.name(),
                              .command = "",
                              .detail = compiled.binary},
                   "compiled model is missing its entry points");
    if (std::strcmp(design_fn(), design.name().c_str()) != 0)
        fatal_diag(Diagnostic{.phase = "dlopen",
                              .design = design.name(),
                              .command = "",
                              .detail = compiled.binary},
                   "compiled model was built for design '%s'",
                   design_fn());
    return LoadedLib{handle, create_fn};
}

} // namespace

std::unique_ptr<sim::Model>
load_compiled_model(const Design& design, const DlModelOptions& options)
{
    // One probe + dlopen per (design, flags, cache) per thread: a pool
    // worker's first model pays the pipeline, every later one is a
    // constructor call. thread_local (not a locked global) so workers
    // never serialize on a map mutex in the trial hot path. Handles are
    // never released — see the header's never-dlclose contract.
    thread_local std::unordered_map<std::string, LoadedLib> libs;
    std::string key = design.name() + "\n" + options.cxxflags + "\n" +
                      options.cache.dir + "\n" + options.workdir;
    auto it = libs.find(key);
    if (it == libs.end())
        it = libs.emplace(key, load_library(design, options)).first;
    return std::unique_ptr<sim::Model>(it->second.create());
}

} // namespace koika::codegen
