#include "codegen/compile.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <atomic>
#include <cstring>
#include <fstream>
#include <mutex>
#include <random>
#include <sstream>
#include <thread>

#include <dirent.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include "base/sha256.hpp"
#include "codegen/cpp_emit.hpp"
#include "obs/prof.hpp"

#ifndef CUTTLESIM_RUNTIME_DIR
#error "CUTTLESIM_RUNTIME_DIR must be defined by the build system"
#endif
#ifndef CUTTLESIM_CXX
#define CUTTLESIM_CXX "c++"
#endif

namespace koika::codegen {

namespace {

void
write_file(const std::string& path, const std::string& text)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write %s", path.c_str());
    out << text;
}

void
sleep_seconds(double seconds)
{
    if (seconds <= 0)
        return;
    struct timespec ts;
    ts.tv_sec = (time_t)seconds;
    ts.tv_nsec = (long)((seconds - (double)ts.tv_sec) * 1e9);
    while (nanosleep(&ts, &ts) == -1 && errno == EINTR)
        continue;
}

/**
 * One attempt: fork, exec `sh -c command` in a fresh process group with
 * stdout+stderr on a pipe, read under a deadline, SIGKILL the whole
 * group when the deadline passes, and decode the wait status.
 */
RunResult
run_once(const std::string& command, double timeout_seconds)
{
    RunResult result;

    int fds[2];
    if (pipe(fds) != 0)
        fatal("pipe failed: %s", std::strerror(errno));

    auto start = std::chrono::steady_clock::now();
    pid_t pid = fork();
    if (pid < 0)
        fatal("fork failed: %s", std::strerror(errno));
    if (pid == 0) {
        // Child: own process group so the watchdog can kill the shell
        // together with anything it spawned (cc1plus, the binary, ...).
        setpgid(0, 0);
        dup2(fds[1], STDOUT_FILENO);
        dup2(fds[1], STDERR_FILENO);
        close(fds[0]);
        close(fds[1]);
        int devnull = open("/dev/null", O_RDONLY);
        if (devnull >= 0)
            dup2(devnull, STDIN_FILENO);
        execl("/bin/sh", "sh", "-c", command.c_str(), (char*)nullptr);
        _exit(127);
    }
    // Both sides race to setpgid so the group exists before any kill.
    setpgid(pid, pid);
    close(fds[1]);

    auto deadline =
        start + std::chrono::duration<double>(timeout_seconds);
    bool killed = false;
    char buf[4096];
    struct pollfd pfd = {fds[0], POLLIN, 0};
    for (;;) {
        int wait_ms = 50;
        if (!killed) {
            auto remaining = std::chrono::duration<double>(
                                 deadline - std::chrono::steady_clock::now())
                                 .count();
            if (remaining <= 0) {
                // Watchdog: kill the whole group, then drain the pipe
                // until every writer is gone.
                kill(-pid, SIGKILL);
                kill(pid, SIGKILL);
                killed = true;
            } else {
                wait_ms = (int)(remaining * 1000) + 1;
                if (wait_ms > 200)
                    wait_ms = 200;
            }
        }
        int rv = poll(&pfd, 1, wait_ms);
        if (rv < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (rv == 0)
            continue;
        ssize_t n = read(fds[0], buf, sizeof buf);
        if (n > 0) {
            result.output.append(buf, (size_t)n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        break; // EOF: every process holding the write end has exited.
    }
    close(fds[0]);

    int status = 0;
    while (waitpid(pid, &status, 0) == -1 && errno == EINTR)
        continue;
    result.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    if (killed) {
        result.timed_out = true;
    } else if (WIFSIGNALED(status)) {
        result.term_signal = WTERMSIG(status);
    } else if (WIFEXITED(status)) {
        result.exit_code = WEXITSTATUS(status);
    } else {
        // Neither exited nor signaled (stopped?): report as a signal
        // death so it is never mistaken for a clean exit.
        result.term_signal = SIGKILL;
    }
    return result;
}

std::string
compile_command(const std::string& workdir, const std::string& main_file,
                const std::string& binary, const std::string& flags)
{
    std::ostringstream cmd;
    cmd << CUTTLESIM_CXX << " -std=c++20 " << flags << " -I "
        << CUTTLESIM_RUNTIME_DIR << " -I " << workdir << " -o " << binary
        << " " << workdir << "/" << main_file;
    return cmd.str();
}

// -- Compiled-model cache ----------------------------------------------------

/** Serializes compile_metrics() updates and cache bookkeeping. */
std::mutex&
cache_mutex()
{
    static std::mutex* m = new std::mutex();
    return *m;
}

void
cache_count(const char* name, uint64_t delta = 1)
{
    std::lock_guard<std::mutex> lock(cache_mutex());
    compile_metrics().inc(name, delta);
}

std::string
read_file(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return "";
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/**
 * Compiler identity for the cache key: absolute path plus the first
 * line of `--version` (so upgrading the toolchain in place invalidates
 * entries). Computed once per process.
 */
const std::string&
compiler_id()
{
    static const std::string* id = [] {
        std::string banner;
        RunOptions opts;
        opts.timeout_seconds = 20;
        RunResult r =
            run_command(std::string(CUTTLESIM_CXX) + " --version", opts);
        if (r.ok()) {
            size_t eol = r.output.find('\n');
            banner = r.output.substr(0, eol);
        }
        return new std::string(std::string(CUTTLESIM_CXX) + "\n" +
                               banner);
    }();
    return *id;
}

/**
 * The cache key: a SHA-256 over every input that determines the binary
 * — compiler identity, flags, the runtime header the -I path exposes,
 * and each (name, contents) source pair. Field separators are length
 * prefixes, so concatenation ambiguity cannot alias two keys.
 */
std::string
cache_key_for(const std::vector<std::pair<std::string, std::string>>& files,
              const std::string& main_file, const std::string& flags)
{
    Sha256 h;
    auto field = [&h](const std::string& s) {
        uint64_t len = s.size();
        h.update(&len, sizeof len);
        h.update(s);
    };
    field(compiler_id());
    field(flags);
    field(main_file);
    field(read_file(std::string(CUTTLESIM_RUNTIME_DIR) +
                    "/cuttlesim.hpp"));
    for (const auto& [name, contents] : files) {
        field(name);
        field(contents);
    }
    return h.hex_digest();
}

/** Copy `src` to `dst` byte-for-byte, executable. False on any error. */
bool
copy_binary(const std::string& src, const std::string& dst)
{
    std::string data = read_file(src);
    if (data.empty())
        return false;
    static std::atomic<uint64_t> counter{0};
    std::string tmp = dst + ".tmp." + std::to_string(getpid()) + "." +
                      std::to_string(counter.fetch_add(1));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out << data;
        if (!out)
            return false;
    }
    if (chmod(tmp.c_str(), 0755) != 0 ||
        rename(tmp.c_str(), dst.c_str()) != 0) {
        unlink(tmp.c_str());
        return false;
    }
    return true;
}

/**
 * A store temp is stale once it is older than this: no healthy
 * copy_binary keeps one alive for more than seconds, so an hour-old
 * temp can only be the leavings of a killed process.
 */
constexpr time_t kStaleTempSeconds = 3600;

/**
 * Enforce the size cap: delete the oldest entries (mtime order; hits
 * re-touch their entry) until the directory fits. Racing invocations
 * may both try to delete the same entry; unlink of a missing file is
 * harmless. The same scan sweeps stale `*.tmp.*` files orphaned by
 * processes killed mid-store, so crashes cannot leak disk here.
 */
void
cache_evict(const CacheConfig& cache)
{
    struct Entry
    {
        std::string path;
        uint64_t bytes;
        time_t mtime;
    };
    std::vector<Entry> entries;
    uint64_t total = 0;
    time_t now = time(nullptr);
    DIR* dir = opendir(cache.dir.c_str());
    if (dir == nullptr)
        return;
    while (struct dirent* ent = readdir(dir)) {
        std::string name = ent->d_name;
        std::string path = cache.dir + "/" + name;
        if (name.find(".tmp.") != std::string::npos) {
            struct stat st;
            if (stat(path.c_str(), &st) == 0 &&
                now - st.st_mtime > kStaleTempSeconds &&
                unlink(path.c_str()) == 0)
                cache_count("compile.cache_stale_temps_swept");
            continue;
        }
        if (name.size() < 5 ||
            name.compare(name.size() - 4, 4, ".bin") != 0)
            continue;
        struct stat st;
        if (stat(path.c_str(), &st) != 0)
            continue;
        entries.push_back({path, (uint64_t)st.st_size, st.st_mtime});
        total += (uint64_t)st.st_size;
    }
    closedir(dir);
    if (cache.max_bytes == 0 || total <= cache.max_bytes)
        return;
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) {
                  return a.mtime != b.mtime ? a.mtime < b.mtime
                                            : a.path < b.path;
              });
    for (const Entry& e : entries) {
        if (total <= cache.max_bytes)
            break;
        if (unlink(e.path.c_str()) == 0)
            cache_count("compile.cache_evictions");
        total -= e.bytes;
    }
}

std::string
cache_entry_path(const CacheConfig& cache, const std::string& key)
{
    return cache.dir + "/" + key + ".bin";
}

/** Try to satisfy the compile from the cache. True on a hit, with the
 *  cached binary copied to `binary`. */
bool
cache_lookup(const CacheConfig& cache, const std::string& key,
             const std::string& binary)
{
    std::string entry = cache_entry_path(cache, key);
    struct stat st;
    if (stat(entry.c_str(), &st) != 0)
        return false;
    if (!copy_binary(entry, binary))
        return false;
    // Touch the entry so eviction treats it as recently used.
    utimensat(AT_FDCWD, entry.c_str(), nullptr, 0);
    return true;
}

/** mkdir -p: create `path` and any missing parents. */
void
mkdir_p(const std::string& path)
{
    for (size_t i = 1; i <= path.size(); ++i)
        if (i == path.size() || path[i] == '/')
            ::mkdir(path.substr(0, i).c_str(), 0755);
}

/** Publish a freshly compiled binary: temp file + atomic rename. */
void
cache_store(const CacheConfig& cache, const std::string& key,
            const std::string& binary)
{
    mkdir_p(cache.dir);
    if (copy_binary(binary, cache_entry_path(cache, key))) {
        cache_count("compile.cache_stores");
        cache_evict(cache);
    }
}

} // namespace

std::string
default_cache_dir()
{
    if (const char* dir = std::getenv("CUTTLESIM_CACHE_DIR"))
        return dir;
    if (const char* xdg = std::getenv("XDG_CACHE_HOME"))
        return std::string(xdg) + "/cuttlesim";
    if (const char* home = std::getenv("HOME"))
        return std::string(home) + "/.cache/cuttlesim";
    return "";
}

obs::MetricsRegistry&
compile_metrics()
{
    static obs::MetricsRegistry* registry = new obs::MetricsRegistry();
    return *registry;
}

const std::string&
compiler_identity()
{
    return compiler_id();
}

const std::string&
compiler_identity_line()
{
    static const std::string* line = [] {
        std::string* s = new std::string(compiler_identity());
        for (char& c : *s)
            if (c == '\n')
                c = ' ';
        return s;
    }();
    return *line;
}

std::string
RunResult::describe() const
{
    std::ostringstream os;
    if (timed_out) {
        os << "timed out after " << seconds << "s (killed by watchdog)";
    } else if (term_signal != 0) {
        os << "killed by signal " << term_signal;
        const char* name = strsignal(term_signal);
        if (name != nullptr)
            os << " (" << name << ")";
    } else {
        os << "exit code " << exit_code;
    }
    if (attempts > 1)
        os << " after " << attempts << " attempts";
    return os.str();
}

RunResult
run_command(const std::string& command, const RunOptions& opts)
{
    double backoff = opts.backoff_seconds;
    RunResult result;
    for (int attempt = 0;; ++attempt) {
        result = run_once(command, opts.timeout_seconds);
        result.attempts = attempt + 1;
        if (result.ok() || attempt >= opts.retries)
            return result;
        // Only signal deaths and watchdog kills are plausibly transient
        // (OOM killer, flaky box); a nonzero exit is deterministic.
        bool transient = result.timed_out || result.term_signal != 0;
        if (!transient)
            return result;
        cache_count("compile.transient_retries");
        // Jitter [0.5, 1.5)x so a herd of retriers (parallel campaign
        // workers all OOM-killed by the same spike) de-synchronizes
        // instead of re-colliding in lockstep.
        static thread_local std::mt19937_64 rng(
            std::random_device{}() ^
            ((uint64_t)getpid() << 17) ^
            std::hash<std::thread::id>{}(std::this_thread::get_id()));
        double jitter =
            0.5 + (double)(rng() >> 11) / (double)(1ull << 53);
        sleep_seconds(backoff * jitter);
        backoff *= 2;
    }
}

ChildProcess
spawn_process(const std::vector<std::string>& argv,
              const std::string& log_path)
{
    KOIKA_CHECK(!argv.empty());
    ChildProcess child;
    for (const std::string& a : argv) {
        if (!child.command.empty())
            child.command += ' ';
        child.command += a;
    }
    int log_fd = -1;
    if (!log_path.empty()) {
        log_fd = open(log_path.c_str(),
                      O_WRONLY | O_CREAT | O_APPEND, 0644);
        if (log_fd < 0)
            fatal("cannot open log file %s: %s", log_path.c_str(),
                  std::strerror(errno));
    }
    pid_t pid = fork();
    if (pid < 0) {
        if (log_fd >= 0)
            close(log_fd);
        fatal("fork failed: %s", std::strerror(errno));
    }
    if (pid == 0) {
        // Child: own process group, same containment as run_once, so a
        // kill of the group takes out anything the worker spawned too.
        setpgid(0, 0);
        int devnull = open("/dev/null", O_RDWR);
        if (devnull >= 0)
            dup2(devnull, STDIN_FILENO);
        int out = log_fd >= 0 ? log_fd : devnull;
        if (out >= 0) {
            dup2(out, STDOUT_FILENO);
            dup2(out, STDERR_FILENO);
        }
        if (devnull >= 0 && devnull > STDERR_FILENO)
            close(devnull);
        if (log_fd >= 0 && log_fd > STDERR_FILENO)
            close(log_fd);
        std::vector<char*> cargv;
        cargv.reserve(argv.size() + 1);
        for (const std::string& a : argv)
            cargv.push_back(const_cast<char*>(a.c_str()));
        cargv.push_back(nullptr);
        execv(cargv[0], cargv.data());
        _exit(127);
    }
    if (log_fd >= 0)
        close(log_fd);
    // Both sides race to setpgid so the group exists before any kill.
    setpgid(pid, pid);
    child.pid = pid;
    return child;
}

void
kill_process_group(const ChildProcess& child)
{
    if (child.pid <= 0)
        return;
    kill(-child.pid, SIGKILL);
    kill(child.pid, SIGKILL);
}

bool
try_reap(ChildProcess& child, int* exit_code, int* term_signal)
{
    *exit_code = -1;
    *term_signal = 0;
    if (child.pid <= 0)
        return false;
    int status = 0;
    pid_t rv = waitpid(child.pid, &status, WNOHANG);
    if (rv == 0)
        return false;
    if (rv < 0) {
        // Already reaped elsewhere (shouldn't happen): report SIGKILL
        // so the caller never mistakes it for a clean exit.
        *term_signal = SIGKILL;
        child.pid = -1;
        return true;
    }
    if (WIFEXITED(status))
        *exit_code = WEXITSTATUS(status);
    else if (WIFSIGNALED(status))
        *term_signal = WTERMSIG(status);
    else
        *term_signal = SIGKILL;
    child.pid = -1;
    return true;
}

CompileResult
compile_cpp(const std::string& workdir,
            const std::vector<std::pair<std::string, std::string>>& files,
            const std::string& main_file, const std::string& flags,
            const CompileOptions& opts)
{
    ::mkdir(workdir.c_str(), 0755);
    for (const auto& [name, contents] : files)
        write_file(workdir + "/" + name, contents);
    std::string binary = workdir + "/" + main_file + ".bin";

    CompileResult result;
    result.binary = binary;
    bool caching = !opts.cache.dir.empty();
    if (caching) {
        obs::ProfScope probe("compile/cache-probe");
        result.cache_key = cache_key_for(files, main_file, flags);
        if (cache_lookup(opts.cache, result.cache_key, binary)) {
            cache_count("compile.cache_hits");
            result.cache_hit = true;
            return result;
        }
        cache_count("compile.cache_misses");
    }

    std::string cmd = compile_command(workdir, main_file, binary, flags);
    RunOptions run_opts;
    run_opts.timeout_seconds = opts.timeout_seconds;
    run_opts.retries = opts.retries;
    run_opts.backoff_seconds = opts.backoff_seconds;
    obs::ProfScope fork_span("compile/external");
    RunResult run = run_command(cmd, run_opts);
    fork_span.close();
    cache_count("compile.external_compiles");
    if (!run.ok())
        fatal_diag(Diagnostic{.phase = "compile",
                              .design = opts.design.empty() ? main_file
                                                            : opts.design,
                              .command = cmd,
                              .detail = run.output},
                   "compiling generated model failed (%s)",
                   run.describe().c_str());

    result.compile_seconds = run.seconds;
    result.attempts = run.attempts;
    if (caching) {
        obs::ProfScope store_span("compile/cache-store");
        cache_store(opts.cache, result.cache_key, binary);
    }
    return result;
}

CompileResult
compile_model_driver(const Design& design, const std::string& workdir,
                     const std::string& driver_cpp,
                     const std::string& flags, const CompileOptions& opts)
{
    std::string cls = model_class_name(design);
    CompileOptions with_design = opts;
    if (with_design.design.empty())
        with_design.design = design.name();
    EmitOptions eopts = opts.emit;
    eopts.class_name.clear(); // the file is named after the design
    obs::ProfScope emit_span("compile/emit");
    std::string model = emit_model(design, eopts);
    emit_span.close();
    return compile_cpp(workdir,
                       {{cls + ".model.hpp", std::move(model)},
                        {cls + ".driver.cpp", driver_cpp}},
                       cls + ".driver.cpp", flags, with_design);
}

std::string
reg_dump_driver(const Design& design)
{
    std::string cls = model_class_name(design);
    std::ostringstream os;
    os << "#include <cstdio>\n#include <cstdlib>\n";
    os << "#include \"" << cls << ".model.hpp\"\n";
    os << "int main(int argc, char** argv) {\n";
    os << "    unsigned long cycles = argc > 1 ? strtoul(argv[1], "
          "nullptr, 10) : 10;\n";
    os << "    cuttlesim::models::" << cls << " m;\n";
    os << "    for (unsigned long c = 0; c < cycles; ++c) {\n";
    os << "        m.cycle();\n";
    os << "        for (size_t r = 0; r < m.kNumRegs; ++r) {\n";
    os << "            uint64_t w[8];\n";
    os << "            m.get_reg_words(r, w);\n";
    os << "            std::printf(\"%lu %zu %llx %llx %llx %llx %llx "
          "%llx %llx %llx\\n\", c, r,\n";
    os << "                (unsigned long long)w[0], (unsigned long "
          "long)w[1], (unsigned long long)w[2],\n";
    os << "                (unsigned long long)w[3], (unsigned long "
          "long)w[4], (unsigned long long)w[5],\n";
    os << "                (unsigned long long)w[6], (unsigned long "
          "long)w[7]);\n";
    os << "        }\n";
    os << "    }\n";
    os << "    return 0;\n";
    os << "}\n";
    return os.str();
}

std::string
run_binary(const std::string& binary, const std::string& args,
           const RunOptions& opts)
{
    // exec, so the shell is replaced by the binary and a crash is
    // decoded as the binary's own signal death, not as the shell's
    // 128+N exit-code convention.
    std::string cmd = "exec " + binary + " " + args;
    obs::ProfScope span("binary/run");
    RunResult run = run_command(cmd, opts);
    span.close();
    if (!run.ok())
        fatal_diag(Diagnostic{.phase = "run",
                              .command = cmd,
                              .detail = run.output},
                   "binary %s failed (%s)", binary.c_str(),
                   run.describe().c_str());
    return run.output;
}

double
time_binary(const std::string& binary, const std::string& args,
            const RunOptions& opts)
{
    std::string cmd = "exec " + binary + " " + args + " > /dev/null";
    obs::ProfScope span("binary/run");
    RunResult run = run_command(cmd, opts);
    span.close();
    if (!run.ok())
        fatal_diag(Diagnostic{.phase = "run",
                              .command = cmd,
                              .detail = run.output},
                   "binary %s failed (%s)", binary.c_str(),
                   run.describe().c_str());
    return run.seconds;
}

std::vector<std::vector<Bits>>
parse_reg_dump(const Design& design, const std::string& output)
{
    std::vector<std::vector<Bits>> cycles;
    std::istringstream is(output);
    std::string line;
    while (std::getline(is, line)) {
        unsigned long c, r;
        unsigned long long w[8];
        if (std::sscanf(line.c_str(),
                        "%lu %lu %llx %llx %llx %llx %llx %llx %llx %llx",
                        &c, &r, &w[0], &w[1], &w[2], &w[3], &w[4], &w[5],
                        &w[6], &w[7]) != 10)
            continue;
        if (cycles.size() <= c)
            cycles.resize(c + 1,
                          std::vector<Bits>(design.num_registers()));
        uint64_t words[8];
        for (int i = 0; i < 8; ++i)
            words[i] = w[i];
        cycles[c][r] =
            Bits::of_words(design.reg((int)r).type->width, words, 8);
    }
    return cycles;
}

} // namespace koika::codegen
