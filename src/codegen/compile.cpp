#include "codegen/compile.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <sys/stat.h>

#include "codegen/cpp_emit.hpp"

#ifndef CUTTLESIM_RUNTIME_DIR
#error "CUTTLESIM_RUNTIME_DIR must be defined by the build system"
#endif
#ifndef CUTTLESIM_CXX
#define CUTTLESIM_CXX "c++"
#endif

namespace koika::codegen {

namespace {

void
write_file(const std::string& path, const std::string& text)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write %s", path.c_str());
    out << text;
}

std::string
capture_command(const std::string& cmd, int* exit_code)
{
    std::string output;
    FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
    if (pipe == nullptr)
        fatal("popen failed for: %s", cmd.c_str());
    char buf[4096];
    size_t n;
    while ((n = fread(buf, 1, sizeof buf, pipe)) > 0)
        output.append(buf, n);
    int status = pclose(pipe);
    *exit_code = status;
    return output;
}

} // namespace

CompileResult
compile_cpp(const std::string& workdir,
            const std::vector<std::pair<std::string, std::string>>& files,
            const std::string& main_file, const std::string& flags)
{
    ::mkdir(workdir.c_str(), 0755);
    for (const auto& [name, contents] : files)
        write_file(workdir + "/" + name, contents);
    std::string binary = workdir + "/" + main_file + ".bin";

    std::ostringstream cmd;
    cmd << CUTTLESIM_CXX << " -std=c++20 " << flags << " -I "
        << CUTTLESIM_RUNTIME_DIR << " -I " << workdir << " -o " << binary
        << " " << workdir << "/" << main_file;

    auto start = std::chrono::steady_clock::now();
    int exit_code = 0;
    std::string output = capture_command(cmd.str(), &exit_code);
    auto end = std::chrono::steady_clock::now();
    if (exit_code != 0)
        fatal("compiling generated model failed:\n%s\n%s",
              cmd.str().c_str(), output.c_str());

    CompileResult result;
    result.binary = binary;
    result.compile_seconds =
        std::chrono::duration<double>(end - start).count();
    return result;
}

CompileResult
compile_model_driver(const Design& design, const std::string& workdir,
                     const std::string& driver_cpp,
                     const std::string& flags)
{
    std::string cls = model_class_name(design);
    return compile_cpp(workdir,
                       {{cls + ".model.hpp", emit_model(design)},
                        {cls + ".driver.cpp", driver_cpp}},
                       cls + ".driver.cpp", flags);
}

std::string
reg_dump_driver(const Design& design)
{
    std::string cls = model_class_name(design);
    std::ostringstream os;
    os << "#include <cstdio>\n#include <cstdlib>\n";
    os << "#include \"" << cls << ".model.hpp\"\n";
    os << "int main(int argc, char** argv) {\n";
    os << "    unsigned long cycles = argc > 1 ? strtoul(argv[1], "
          "nullptr, 10) : 10;\n";
    os << "    cuttlesim::models::" << cls << " m;\n";
    os << "    for (unsigned long c = 0; c < cycles; ++c) {\n";
    os << "        m.cycle();\n";
    os << "        for (size_t r = 0; r < m.kNumRegs; ++r) {\n";
    os << "            uint64_t w[8];\n";
    os << "            m.get_reg_words(r, w);\n";
    os << "            std::printf(\"%lu %zu %llx %llx %llx %llx %llx "
          "%llx %llx %llx\\n\", c, r,\n";
    os << "                (unsigned long long)w[0], (unsigned long "
          "long)w[1], (unsigned long long)w[2],\n";
    os << "                (unsigned long long)w[3], (unsigned long "
          "long)w[4], (unsigned long long)w[5],\n";
    os << "                (unsigned long long)w[6], (unsigned long "
          "long)w[7]);\n";
    os << "        }\n";
    os << "    }\n";
    os << "    return 0;\n";
    os << "}\n";
    return os.str();
}

std::string
run_binary(const std::string& binary, const std::string& args)
{
    int exit_code = 0;
    std::string output = capture_command(binary + " " + args, &exit_code);
    if (exit_code != 0)
        fatal("binary %s failed (status %d):\n%s", binary.c_str(),
              exit_code, output.c_str());
    return output;
}

double
time_binary(const std::string& binary, const std::string& args)
{
    auto start = std::chrono::steady_clock::now();
    int exit_code = 0;
    capture_command(binary + " " + args + " > /dev/null", &exit_code);
    auto end = std::chrono::steady_clock::now();
    if (exit_code != 0)
        fatal("binary %s failed (status %d)", binary.c_str(), exit_code);
    return std::chrono::duration<double>(end - start).count();
}

std::vector<std::vector<Bits>>
parse_reg_dump(const Design& design, const std::string& output)
{
    std::vector<std::vector<Bits>> cycles;
    std::istringstream is(output);
    std::string line;
    while (std::getline(is, line)) {
        unsigned long c, r;
        unsigned long long w[8];
        if (std::sscanf(line.c_str(),
                        "%lu %lu %llx %llx %llx %llx %llx %llx %llx %llx",
                        &c, &r, &w[0], &w[1], &w[2], &w[3], &w[4], &w[5],
                        &w[6], &w[7]) != 10)
            continue;
        if (cycles.size() <= c)
            cycles.resize(c + 1,
                          std::vector<Bits>(design.num_registers()));
        uint64_t words[8];
        for (int i = 0; i < 8; ++i)
            words[i] = w[i];
        cycles[c][r] =
            Bits::of_words(design.reg((int)r).type->width, words, 8);
    }
    return cycles;
}

} // namespace koika::codegen
