/**
 * @file
 * Model adapter for Cuttlesim-generated classes.
 *
 * Generated models are plain classes with no virtual calls (the C++
 * compiler must be free to inline across rules, §3). This template wraps
 * one in the harness-facing sim::Model interface, translating between the
 * model's flat word representation and koika::Bits.
 */
#pragma once

#include "sim/model.hpp"

namespace koika::codegen {

template <typename M>
class GeneratedModel final : public sim::Model
{
  public:
    M& impl() { return impl_; }
    const M& impl() const { return impl_; }

    void cycle() override { impl_.cycle(); }

    Bits
    get_reg(int reg) const override
    {
        uint64_t words[8];
        impl_.get_reg_words((size_t)reg, words);
        return Bits::of_words(M::kRegWidths[(size_t)reg], words, 8);
    }

    void
    set_reg(int reg, const Bits& value) override
    {
        KOIKA_CHECK(value.width() == M::kRegWidths[(size_t)reg]);
        uint64_t words[8];
        for (uint32_t i = 0; i < 8; ++i)
            words[i] = value.word(i);
        impl_.set_reg_words((size_t)reg, words);
    }

    uint64_t cycles_run() const override { return impl_.cycles; }
    size_t num_regs() const override { return M::kNumRegs; }

  private:
    M impl_;
};

} // namespace koika::codegen
