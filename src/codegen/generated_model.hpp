/**
 * @file
 * Model adapter for Cuttlesim-generated classes.
 *
 * Generated models are plain classes with no virtual calls (the C++
 * compiler must be free to inline across rules, §3). This template wraps
 * one in the harness-facing sim::Model interface, translating between the
 * model's flat word representation and koika::Bits.
 *
 * The adapter implements sim::RuleStatsModel, so harness and
 * observability tooling (src/obs/) works identically on compiled and
 * interpreted engines. Which counters are available depends on how the
 * model was emitted, detected at compile time from the class shape:
 * commit/abort counts and the fired set need `counters` (the default),
 * abort-reason attribution needs `cuttlec --instrument`. Absent counters
 * surface as empty vectors, matching the RuleStatsModel contract.
 */
#pragma once

#include <string>
#include <vector>

#include "sim/model.hpp"
#include "sim/state.hpp"

namespace koika::codegen {

template <typename M>
class GeneratedModel final : public sim::RuleStatsModel,
                             public sim::CoverageModel,
                             public sim::CheckpointableModel
{
    // RTL netlist models expose no rule structure at all; Cuttlesim
    // models always have kNumRules/kRuleNames, counters unless emitted
    // with --no-counters, and abort reasons plus coverage arrays only
    // with --instrument.
    static constexpr bool kHasRules = requires { M::kNumRules; };
    static constexpr bool kHasCounters = requires(const M& m) {
        m.commit_count[0];
        m.abort_count[0];
        m.last_fired[0];
    };
    static constexpr bool kHasAbortReasons = requires(const M& m) {
        m.abort_reason_count[0];
    };
    static constexpr bool kHasCoverage = requires(const M& m) {
        M::kNumNodes;
        m.stmt_count[0];
        m.branch_taken_count[0];
        m.branch_not_taken_count[0];
    };

    static constexpr size_t
    static_num_rules()
    {
        if constexpr (kHasRules)
            return M::kNumRules;
        else
            return 0;
    }

  public:
    M& impl() { return impl_; }
    const M& impl() const { return impl_; }

    void cycle() override { impl_.cycle(); }

    Bits
    get_reg(int reg) const override
    {
        uint64_t words[8];
        impl_.get_reg_words((size_t)reg, words);
        return Bits::of_words(M::kRegWidths[(size_t)reg], words, 8);
    }

    void
    set_reg(int reg, const Bits& value) override
    {
        KOIKA_CHECK(value.width() == M::kRegWidths[(size_t)reg]);
        uint64_t words[8];
        for (uint32_t i = 0; i < 8; ++i)
            words[i] = value.word(i);
        impl_.set_reg_words((size_t)reg, words);
    }

    uint64_t cycles_run() const override { return impl_.cycles; }
    size_t num_regs() const override { return M::kNumRegs; }

    // -- RuleStatsModel -----------------------------------------------------
    // Rules are indexed by schedule position (the generated counters'
    // native order); compare against interpreter counters via
    // rule_name(), not raw indices.
    size_t num_rules() const override { return static_num_rules(); }

    std::string
    rule_name(int rule) const override
    {
        if constexpr (static_num_rules() > 0)
            return M::kRuleNames[(size_t)rule];
        (void)rule;
        return {};
    }

    const std::vector<bool>&
    fired() const override
    {
        fired_.clear();
        if constexpr (kHasCounters)
            fired_.assign(impl_.last_fired,
                          impl_.last_fired + static_num_rules());
        return fired_;
    }

    const std::vector<uint64_t>&
    rule_commit_counts() const override
    {
        commits_.clear();
        if constexpr (kHasCounters)
            commits_.assign(impl_.commit_count,
                            impl_.commit_count + static_num_rules());
        return commits_;
    }

    const std::vector<uint64_t>&
    rule_abort_counts() const override
    {
        aborts_.clear();
        if constexpr (kHasCounters)
            aborts_.assign(impl_.abort_count,
                           impl_.abort_count + static_num_rules());
        return aborts_;
    }

    const std::vector<uint64_t>&
    rule_abort_reason_counts() const override
    {
        reasons_.clear();
        if constexpr (kHasAbortReasons)
            reasons_.assign(impl_.abort_reason_count,
                            impl_.abort_reason_count +
                                static_num_rules() *
                                    (size_t)sim::kNumAbortReasons);
        return reasons_;
    }

    // -- CoverageModel ------------------------------------------------------
    // Coverage-instrumented models count unconditionally (the arrays
    // are compiled in), so enabling is a no-op; models emitted without
    // coverage return empty vectors per the CoverageModel contract.
    void enable_coverage() override {}

    size_t
    num_nodes() const override
    {
        if constexpr (kHasCoverage)
            return M::kNumNodes;
        else
            return 0;
    }

    const std::vector<uint64_t>&
    stmt_counts() const override
    {
        stmt_.clear();
        if constexpr (kHasCoverage)
            stmt_.assign(impl_.stmt_count,
                         impl_.stmt_count + M::kNumNodes);
        return stmt_;
    }

    const std::vector<uint64_t>&
    branch_taken_counts() const override
    {
        taken_.clear();
        if constexpr (kHasCoverage)
            taken_.assign(impl_.branch_taken_count,
                          impl_.branch_taken_count + M::kNumNodes);
        return taken_;
    }

    const std::vector<uint64_t>&
    branch_not_taken_counts() const override
    {
        not_taken_.clear();
        if constexpr (kHasCoverage)
            not_taken_.assign(impl_.branch_not_taken_count,
                              impl_.branch_not_taken_count + M::kNumNodes);
        return not_taken_;
    }

    // -- CheckpointableModel ------------------------------------------------
    // The key records which counter families this compiled shape
    // carries; a checkpoint taken on a differently-instrumented build
    // (or another engine family) restores registers only.
    std::string
    state_key() const override
    {
        std::string key = "generated-v1";
        if constexpr (kHasCounters)
            key += "+counters";
        if constexpr (kHasAbortReasons)
            key += "+reasons";
        if constexpr (kHasCoverage)
            key += "+coverage";
        return key;
    }

    void
    save_extra_state(sim::StateWriter& w) const override
    {
        w.put_u64(impl_.cycles);
        if constexpr (kHasCounters) {
            w.put_bool_vec(fired());
            w.put_u64_vec(rule_commit_counts());
            w.put_u64_vec(rule_abort_counts());
        }
        if constexpr (kHasAbortReasons)
            w.put_u64_vec(rule_abort_reason_counts());
        if constexpr (kHasCoverage) {
            w.put_u64_vec(stmt_counts());
            w.put_u64_vec(branch_taken_counts());
            w.put_u64_vec(branch_not_taken_counts());
        }
    }

    void
    load_extra_state(sim::StateReader& r) override
    {
        impl_.cycles = r.get_u64();
        if constexpr (kHasCounters) {
            std::vector<bool> fired = r.get_bool_vec();
            std::vector<uint64_t> commits = r.get_u64_vec();
            std::vector<uint64_t> aborts = r.get_u64_vec();
            KOIKA_CHECK(fired.size() == static_num_rules() &&
                        commits.size() == static_num_rules() &&
                        aborts.size() == static_num_rules());
            for (size_t i = 0; i < static_num_rules(); ++i) {
                impl_.last_fired[i] = fired[i];
                impl_.commit_count[i] = commits[i];
                impl_.abort_count[i] = aborts[i];
            }
        }
        if constexpr (kHasAbortReasons) {
            std::vector<uint64_t> reasons = r.get_u64_vec();
            KOIKA_CHECK(reasons.size() ==
                        static_num_rules() *
                            (size_t)sim::kNumAbortReasons);
            for (size_t i = 0; i < reasons.size(); ++i)
                impl_.abort_reason_count[i] = reasons[i];
        }
        if constexpr (kHasCoverage) {
            std::vector<uint64_t> stmt = r.get_u64_vec();
            std::vector<uint64_t> taken = r.get_u64_vec();
            std::vector<uint64_t> not_taken = r.get_u64_vec();
            KOIKA_CHECK(stmt.size() == (size_t)M::kNumNodes &&
                        taken.size() == (size_t)M::kNumNodes &&
                        not_taken.size() == (size_t)M::kNumNodes);
            for (size_t i = 0; i < (size_t)M::kNumNodes; ++i) {
                impl_.stmt_count[i] = stmt[i];
                impl_.branch_taken_count[i] = taken[i];
                impl_.branch_not_taken_count[i] = not_taken[i];
            }
        }
    }

  private:
    M impl_;
    // Scratch vectors bridging the model's C arrays to the interface's
    // vector returns; refreshed on every accessor call.
    mutable std::vector<bool> fired_;
    mutable std::vector<uint64_t> commits_, aborts_, reasons_;
    mutable std::vector<uint64_t> stmt_, taken_, not_taken_;
};

} // namespace koika::codegen
