/**
 * @file
 * cuttlec: the Cuttlesim compiler driver.
 *
 * The paper's workflow tool: compile a Kôika design to (a) a fast,
 * readable, debuggable C++ model for simulation (the Cuttlesim pipeline)
 * and, completely separately, (b) RTL for synthesis (here: a netlist,
 * emitted as Verilog and as a compiled cycle-based C++ simulation that
 * plays the Verilator role in the benchmarks).
 *
 *   cuttlec --design rv32i --out build/generated
 *       writes rv32i.model.hpp      (Cuttlesim C++ model)
 *              rv32i_rtl.hpp        (compiled netlist simulation)
 *              rv32i_rtlopt.hpp     (same, after netlist optimization)
 *              rv32i.v              (structural Verilog)
 *   cuttlec --design rv32i --instrument --out build/generated
 *       writes rv32i_instr.model.hpp only (class rv32i_instr, counters
 *       plus abort-reason attribution for the observability layer)
 *   cuttlec --list
 *   cuttlec --design fir --stats    (sizes only, no files)
 *   cuttlec --design fir --print-koika
 *
 * Observability (see README "Observability"): the driver can also run
 * the design on the T5 interpreter and report what happened:
 *   cuttlec --design fir --cycles 5000 --stats=fir-stats.json
 *       per-rule commit/abort/abort-reason statistics as JSON
 *   cuttlec --design fir --cycles 200 --trace=fir.json
 *       Chrome trace-event rule activity, viewable in ui.perfetto.dev
 */
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>

#include "codegen/cpp_emit.hpp"
#include "designs/designs.hpp"
#include "koika/print.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"
#include "rtl/lower.hpp"
#include "rtl/optimize.hpp"
#include "rtl/rtl_emit.hpp"
#include "rtl/verilog.hpp"
#include "sim/tiers.hpp"

namespace {

void
write_file(const std::string& path, const std::string& text)
{
    std::ofstream out(path);
    if (!out)
        koika::fatal("cannot write %s", path.c_str());
    out << text;
}

int
usage()
{
    std::cerr
        << "usage: cuttlec --design NAME [--out DIR] [--stats]\n"
           "               [--print-koika] [--no-counters] [--instrument]\n"
           "               [--cycles N] [--stats=FILE] [--trace=FILE]\n"
           "       cuttlec --list\n"
           "\n"
           "  --stats=FILE  simulate (T5 interpreter) and write per-rule\n"
           "                commit/abort/abort-reason stats as JSON\n"
           "  --trace=FILE  simulate and write a Chrome trace-event JSON\n"
           "                (open in ui.perfetto.dev)\n"
           "  --cycles N    simulation length for --stats=/--trace=\n"
           "                (default 1000)\n"
           "  --instrument  emit only NAME_instr.model.hpp: a model with\n"
           "                counters plus abort-reason instrumentation\n";
    return 2;
}

/** Run `design` on the T5 interpreter, writing stats/trace as asked. */
int
simulate(const koika::Design& design, uint64_t cycles,
         const std::string& stats_file, const std::string& trace_file)
{
    auto engine = koika::sim::make_engine(
        design, koika::sim::Tier::kT5StaticAnalysis);

    std::ofstream trace_out;
    std::unique_ptr<koika::obs::TraceWriter> trace;
    if (!trace_file.empty()) {
        trace_out.open(trace_file);
        if (!trace_out)
            koika::fatal("cannot write %s", trace_file.c_str());
        std::vector<std::string> rule_names;
        for (size_t r = 0; r < engine->num_rules(); ++r)
            rule_names.push_back(engine->rule_name((int)r));
        trace = std::make_unique<koika::obs::TraceWriter>(
            trace_out, std::move(rule_names), design.name());
    }

    koika::obs::MetricsRegistry metrics;
    metrics.define_histogram("rules_fired_per_cycle", [&] {
        std::vector<double> bounds;
        for (size_t r = 0; r <= engine->num_rules(); ++r)
            bounds.push_back((double)r);
        return bounds;
    }());

    auto t0 = std::chrono::steady_clock::now();
    for (uint64_t c = 0; c < cycles; ++c) {
        engine->cycle();
        if (trace != nullptr)
            trace->sample(*engine);
        if (!stats_file.empty()) {
            size_t fired = 0;
            for (bool f : engine->fired())
                fired += f;
            metrics.observe("rules_fired_per_cycle", (double)fired);
        }
    }
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();

    if (trace != nullptr)
        trace->finish();

    koika::obs::SimStats stats = koika::obs::collect_stats(*engine);
    stats.design = design.name();
    stats.engine = "T5";
    stats.wall_seconds = wall;

    if (!stats_file.empty()) {
        koika::obs::Json j = stats.to_json();
        j["metrics"] = metrics.to_json();
        write_file(stats_file, j.dump(2) + "\n");
    }
    std::cout << stats.to_text();
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string design_name, out_dir, stats_file, trace_file;
    bool stats = false, print_koika = false, counters = true;
    bool instrument = false;
    uint64_t cycles = 1000;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--list") {
            for (const auto& name : koika::designs::design_names())
                std::cout << name << "\n";
            return 0;
        }
        if (arg == "--design" && i + 1 < argc) {
            design_name = argv[++i];
        } else if (arg == "--out" && i + 1 < argc) {
            out_dir = argv[++i];
        } else if (arg == "--stats") {
            stats = true;
        } else if (arg.rfind("--stats=", 0) == 0) {
            stats_file = arg.substr(std::strlen("--stats="));
        } else if (arg.rfind("--trace=", 0) == 0) {
            trace_file = arg.substr(std::strlen("--trace="));
        } else if (arg == "--cycles" && i + 1 < argc) {
            cycles = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--print-koika") {
            print_koika = true;
        } else if (arg == "--no-counters") {
            counters = false;
        } else if (arg == "--instrument") {
            instrument = true;
        } else {
            return usage();
        }
    }
    if (design_name.empty())
        return usage();

    try {
        auto design = koika::designs::build_design(design_name);
        std::string cls = koika::codegen::model_class_name(*design);

        if (print_koika) {
            std::cout << koika::print_design(*design);
            return 0;
        }

        if (!stats_file.empty() || !trace_file.empty())
            return simulate(*design, cycles, stats_file, trace_file);

        if (instrument) {
            if (out_dir.empty())
                return usage();
            koika::codegen::EmitOptions opts;
            opts.counters = true;
            opts.abort_reasons = true;
            opts.class_name = cls + "_instr";
            write_file(out_dir + "/" + cls + "_instr.model.hpp",
                       koika::codegen::emit_model(*design, opts));
            return 0;
        }

        koika::rtl::Netlist netlist = koika::rtl::lower(*design);
        koika::rtl::Netlist optimized = koika::rtl::optimize(netlist);

        if (stats || out_dir.empty()) {
            std::cout << "design " << design->name() << ": "
                      << design->num_registers() << " registers, "
                      << design->num_rules() << " rules, "
                      << koika::design_sloc(*design) << " Koika SLOC, "
                      << koika::codegen::model_sloc(*design)
                      << " Cuttlesim SLOC, netlist "
                      << netlist.num_nodes() << " nodes ("
                      << optimized.num_nodes() << " optimized), "
                      << koika::rtl::verilog_sloc(netlist)
                      << " Verilog SLOC\n";
            if (out_dir.empty())
                return 0;
        }

        koika::codegen::EmitOptions opts;
        opts.counters = counters;
        write_file(out_dir + "/" + cls + ".model.hpp",
                   koika::codegen::emit_model(*design, opts));
        write_file(out_dir + "/" + cls + "_rtl.hpp",
                   koika::rtl::emit_rtl_model(netlist, cls + "_rtl"));
        write_file(out_dir + "/" + cls + "_rtlopt.hpp",
                   koika::rtl::emit_rtl_model(optimized,
                                              cls + "_rtlopt"));
        write_file(out_dir + "/" + cls + ".v",
                   koika::rtl::emit_verilog(netlist, cls));
        return 0;
    } catch (const koika::FatalError& err) {
        std::cerr << "cuttlec: " << err.what() << "\n";
        return 1;
    }
}
