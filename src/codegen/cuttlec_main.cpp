/**
 * @file
 * cuttlec: the Cuttlesim compiler driver.
 *
 * The paper's workflow tool: compile a Kôika design to (a) a fast,
 * readable, debuggable C++ model for simulation (the Cuttlesim pipeline)
 * and, completely separately, (b) RTL for synthesis (here: a netlist,
 * emitted as Verilog and as a compiled cycle-based C++ simulation that
 * plays the Verilator role in the benchmarks).
 *
 *   cuttlec --design rv32i --out build/generated
 *       writes rv32i.model.hpp      (Cuttlesim C++ model)
 *              rv32i_rtl.hpp        (compiled netlist simulation)
 *              rv32i_rtlopt.hpp     (same, after netlist optimization)
 *              rv32i.v              (structural Verilog)
 *   cuttlec --design rv32i --instrument --out build/generated
 *       writes rv32i_instr.model.hpp only (class rv32i_instr, counters
 *       plus abort-reason attribution for the observability layer)
 *   cuttlec --list
 *   cuttlec --design fir --stats    (sizes only, no files)
 *   cuttlec --design fir --print-koika
 *
 * Observability (see README "Observability"): the driver can also run
 * the design and report what happened:
 *   cuttlec --design fir --cycles 5000 --stats=fir-stats.json
 *       per-rule commit/abort/abort-reason statistics as JSON
 *   cuttlec --design fir --cycles 200 --trace=fir.json
 *       Chrome trace-event rule activity, viewable in ui.perfetto.dev
 * The engine is selectable: --engine=T0..T5 picks an interpreter tier,
 * --engine=compiled emits the model, compiles it with the system C++
 * compiler and times the real binary. When that out-of-process pipeline
 * fails (broken flags, wedged toolchain), cuttlec degrades gracefully:
 * it warns and falls back to the T5 interpreter tier.
 *
 * Resilience (README "Fault-injection campaigns"):
 *   cuttlec --design rv32i --fault-campaign=SEED --fault-count=100 \
 *           --cycles 2000 --fault-report=rv32i-faults.json --jobs=8
 *       seeded, deterministic SEU/stuck-at campaign in lockstep against
 *       a golden copy; every injection classified masked / sdc /
 *       detected, counts exported through the obs metrics registry.
 *       --jobs shards injections across worker threads; the report
 *       stays byte-identical to a serial run (same seed ⇒ same bytes).
 *
 * Scaling: --engine=compiled reuses previously compiled models through
 * a content-addressed cache (--cache-dir, default ~/.cache/cuttlesim;
 * --no-cache disables). A warm hit skips the external compiler
 * entirely; the compile.cache_* counters in the output say which path
 * ran.
 */
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>

#include <unistd.h>

#include "codegen/compile.hpp"
#include "codegen/cpp_emit.hpp"
#include "designs/designs.hpp"
#include "designs/rv32.hpp"
#include "fault/fault.hpp"
#include "harness/memory.hpp"
#include "koika/print.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"
#include "riscv/programs.hpp"
#include "rtl/lower.hpp"
#include "rtl/optimize.hpp"
#include "rtl/rtl_emit.hpp"
#include "rtl/verilog.hpp"
#include "sim/tiers.hpp"

namespace {

void
write_file(const std::string& path, const std::string& text)
{
    std::ofstream out(path);
    if (!out)
        koika::fatal("cannot write %s", path.c_str());
    out << text;
}

int
usage()
{
    std::cerr
        << "usage: cuttlec --design NAME [--out DIR] [--stats]\n"
           "               [--print-koika] [--no-counters] [--instrument]\n"
           "               [--cycles N] [--stats=FILE] [--trace=FILE]\n"
           "               [--engine=T0..T5|compiled] [--cxxflags=FLAGS]\n"
           "               [--fault-campaign=SEED] [--fault-count=N]\n"
           "               [--fault-report=FILE] [--jobs=N]\n"
           "               [--cache-dir=DIR] [--no-cache]\n"
           "       cuttlec --list\n"
           "\n"
           "  --stats=FILE  simulate and write per-rule commit/abort/\n"
           "                abort-reason stats as JSON\n"
           "  --trace=FILE  simulate and write a Chrome trace-event JSON\n"
           "                (open in ui.perfetto.dev)\n"
           "  --cycles N    simulation length / fault-campaign horizon\n"
           "                (default 1000)\n"
           "  --engine=E    simulation engine: an interpreter tier\n"
           "                (T0..T5, default T5) or 'compiled' (emit,\n"
           "                compile with the system C++ compiler, run the\n"
           "                binary; falls back to T5 with a warning when\n"
           "                the out-of-process pipeline fails)\n"
           "  --cxxflags=F  flags for --engine=compiled (default -O2)\n"
           "  --fault-campaign=SEED\n"
           "                run a deterministic fault-injection campaign\n"
           "                (SEU bit-flips + stuck-at faults) against a\n"
           "                golden copy; classify masked / sdc / detected\n"
           "  --fault-count=N   injections per campaign (default 100)\n"
           "  --fault-report=FILE   write the campaign report as JSON\n"
           "  --jobs=N      shard fault injections across N worker\n"
           "                threads (0 = one per hardware thread;\n"
           "                default 1). The report is byte-identical\n"
           "                at any job count\n"
           "  --cache-dir=DIR   compiled-model cache for\n"
           "                --engine=compiled (default\n"
           "                ~/.cache/cuttlesim; a warm hit skips the\n"
           "                external compiler)\n"
           "  --no-cache    disable the compiled-model cache\n"
           "  --instrument  emit only NAME_instr.model.hpp: a model with\n"
           "                counters plus abort-reason instrumentation\n";
    return 2;
}

bool
parse_tier(const std::string& engine, koika::sim::Tier* tier)
{
    if (engine.size() == 2 && engine[0] == 'T' && engine[1] >= '0' &&
        engine[1] <= '5') {
        *tier = (koika::sim::Tier)(engine[1] - '0');
        return true;
    }
    return false;
}

/**
 * A fresh-system factory for fault campaigns and golden runs. RISC-V
 * designs get per-instance magic memories preloaded with a small primes
 * program (the design is meaningless without a stimulus); every other
 * registry design is closed and needs none.
 */
koika::fault::TargetFactory
make_target_factory(const koika::Design& design, koika::sim::Tier tier)
{
    using koika::designs::Rv32CorePorts;
    if (design.name().rfind("rv32", 0) != 0)
        return [&design, tier]() {
            koika::fault::FaultTarget t;
            t.model = koika::sim::make_engine(design, tier);
            return t;
        };

    int cores = design.name().find("-mc") != std::string::npos ? 2 : 1;
    auto program = std::make_shared<koika::riscv::Program>(
        koika::riscv::build_program(koika::riscv::primes_source(20)));
    auto ports = std::make_shared<std::vector<Rv32CorePorts>>();
    for (int core = 0; core < cores; ++core)
        ports->push_back(koika::designs::rv32_ports(design, core, cores));

    return [&design, tier, program, ports]() {
        struct Ctx
        {
            std::vector<std::unique_ptr<koika::harness::MemoryDevice>>
                mems;
            std::vector<std::unique_ptr<koika::harness::MemPort>>
                mem_ports;
        };
        auto ctx = std::make_shared<Ctx>();
        for (const Rv32CorePorts& p : *ports) {
            auto mem =
                std::make_unique<koika::harness::MemoryDevice>();
            mem->load_words(program->words, program->base);
            ctx->mem_ports.push_back(
                std::make_unique<koika::harness::MemPort>(*mem,
                                                          p.imem));
            ctx->mem_ports.push_back(
                std::make_unique<koika::harness::MemPort>(*mem,
                                                          p.dmem));
            ctx->mems.push_back(std::move(mem));
        }
        koika::fault::FaultTarget t;
        t.model = koika::sim::make_engine(design, tier);
        t.stimulus = [ctx](koika::sim::Model& m, uint64_t) {
            for (auto& port : ctx->mem_ports)
                port->tick(m);
        };
        t.context = ctx;
        return t;
    };
}

/** Seeded fault-injection campaign against a golden copy. */
int
fault_campaign(const koika::Design& design, koika::sim::Tier tier,
               uint64_t seed, int count, uint64_t cycles, int jobs,
               const std::string& report_file)
{
    koika::fault::CampaignConfig config;
    config.seed = seed;
    config.count = count;
    config.cycles = cycles;
    config.jobs = jobs;

    koika::fault::CampaignReport report = koika::fault::run_campaign(
        design, make_target_factory(design, tier), config);
    report.engine = koika::sim::tier_name(tier);

    koika::obs::MetricsRegistry metrics;
    report.export_to(metrics, "fault/" + design.name());

    if (!report_file.empty()) {
        koika::obs::Json j = report.to_json();
        j["metrics"] = metrics.to_json();
        write_file(report_file, j.dump(2) + "\n");
    }
    std::cout << report.to_text() << metrics.to_text();
    return 0;
}

/**
 * The compiled engine: emit the model, compile it out-of-process, time
 * a run of the real binary. Per-rule statistics are an interpreter
 * feature; the compiled path reports cycles and wall time only (the
 * SimStats schema degrades to cycles-only, as documented).
 */
int
simulate_compiled(const koika::Design& design, uint64_t cycles,
                  const std::string& stats_file,
                  const std::string& trace_file,
                  const std::string& cxxflags,
                  const std::string& out_dir,
                  const std::string& cache_dir)
{
    if (!trace_file.empty())
        koika::fatal("--trace= needs an interpreter engine "
                     "(--engine=T0..T5); the compiled engine has no "
                     "per-rule activity feed");

    std::string workdir =
        out_dir.empty() ? "/tmp/cuttlec_run_" + design.name() + "_" +
                              std::to_string(getpid())
                        : out_dir;
    // A silent driver: run N cycles, print nothing (reg dumps would
    // dominate the timing and the output).
    std::string cls = koika::codegen::model_class_name(design);
    std::string driver = "#include <cstdlib>\n#include \"" + cls +
                         ".model.hpp\"\n"
                         "int main(int argc, char** argv) {\n"
                         "    unsigned long n = argc > 1 ? "
                         "strtoul(argv[1], nullptr, 10) : 1000;\n"
                         "    cuttlesim::models::" +
                         cls +
                         " m;\n"
                         "    for (unsigned long c = 0; c < n; ++c) "
                         "m.cycle();\n"
                         "    return 0;\n"
                         "}\n";

    koika::codegen::CompileOptions copts;
    copts.cache.dir = cache_dir;
    koika::codegen::CompileResult cr =
        koika::codegen::compile_model_driver(design, workdir, driver,
                                             cxxflags, copts);
    double wall = koika::codegen::time_binary(cr.binary,
                                              std::to_string(cycles));

    koika::obs::SimStats stats;
    stats.design = design.name();
    stats.engine = "cuttlesim";
    stats.cycles = cycles;
    stats.wall_seconds = wall;
    stats.extra["compile_seconds"] = cr.compile_seconds;
    stats.extra["compile_cache_hit"] = cr.cache_hit ? 1 : 0;

    if (!stats_file.empty()) {
        koika::obs::Json j = stats.to_json();
        j["compile_metrics"] =
            koika::codegen::compile_metrics().to_json();
        write_file(stats_file, j.dump(2) + "\n");
    }
    std::cout << stats.to_text()
              << koika::codegen::compile_metrics().to_text();
    return 0;
}

/** Run `design` on an interpreter tier, writing stats/trace as asked. */
int
simulate(const koika::Design& design, koika::sim::Tier tier,
         uint64_t cycles, const std::string& stats_file,
         const std::string& trace_file)
{
    auto engine = koika::sim::make_engine(design, tier);

    std::ofstream trace_out;
    std::unique_ptr<koika::obs::TraceWriter> trace;
    if (!trace_file.empty()) {
        trace_out.open(trace_file);
        if (!trace_out)
            koika::fatal("cannot write %s", trace_file.c_str());
        std::vector<std::string> rule_names;
        for (size_t r = 0; r < engine->num_rules(); ++r)
            rule_names.push_back(engine->rule_name((int)r));
        trace = std::make_unique<koika::obs::TraceWriter>(
            trace_out, std::move(rule_names), design.name());
    }

    koika::obs::MetricsRegistry metrics;
    metrics.define_histogram("rules_fired_per_cycle", [&] {
        std::vector<double> bounds;
        for (size_t r = 0; r <= engine->num_rules(); ++r)
            bounds.push_back((double)r);
        return bounds;
    }());

    auto t0 = std::chrono::steady_clock::now();
    for (uint64_t c = 0; c < cycles; ++c) {
        engine->cycle();
        if (trace != nullptr)
            trace->sample(*engine);
        if (!stats_file.empty()) {
            size_t fired = 0;
            for (bool f : engine->fired())
                fired += f;
            metrics.observe("rules_fired_per_cycle", (double)fired);
        }
    }
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();

    if (trace != nullptr)
        trace->finish();

    koika::obs::SimStats stats = koika::obs::collect_stats(*engine);
    stats.design = design.name();
    stats.engine = koika::sim::tier_name(tier);
    stats.wall_seconds = wall;

    if (!stats_file.empty()) {
        koika::obs::Json j = stats.to_json();
        j["metrics"] = metrics.to_json();
        write_file(stats_file, j.dump(2) + "\n");
    }
    std::cout << stats.to_text();
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string design_name, out_dir, stats_file, trace_file;
    std::string engine = "T5", cxxflags = "-O2", fault_report;
    std::string cache_dir = koika::codegen::default_cache_dir();
    bool stats = false, print_koika = false, counters = true;
    bool instrument = false, fault = false;
    uint64_t cycles = 1000, fault_seed = 1;
    int fault_count = 100, jobs = 1;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--list") {
            for (const auto& name : koika::designs::design_names())
                std::cout << name << "\n";
            return 0;
        }
        if (arg == "--design" && i + 1 < argc) {
            design_name = argv[++i];
        } else if (arg == "--out" && i + 1 < argc) {
            out_dir = argv[++i];
        } else if (arg == "--stats") {
            stats = true;
        } else if (arg.rfind("--stats=", 0) == 0) {
            stats_file = arg.substr(std::strlen("--stats="));
        } else if (arg.rfind("--trace=", 0) == 0) {
            trace_file = arg.substr(std::strlen("--trace="));
        } else if (arg.rfind("--engine=", 0) == 0) {
            engine = arg.substr(std::strlen("--engine="));
        } else if (arg.rfind("--cxxflags=", 0) == 0) {
            cxxflags = arg.substr(std::strlen("--cxxflags="));
        } else if (arg.rfind("--fault-campaign=", 0) == 0) {
            fault = true;
            fault_seed = std::strtoull(
                arg.c_str() + std::strlen("--fault-campaign="), nullptr,
                10);
        } else if (arg.rfind("--fault-count=", 0) == 0) {
            fault_count = (int)std::strtoul(
                arg.c_str() + std::strlen("--fault-count="), nullptr,
                10);
        } else if (arg.rfind("--fault-report=", 0) == 0) {
            fault_report = arg.substr(std::strlen("--fault-report="));
        } else if (arg.rfind("--jobs=", 0) == 0) {
            jobs = (int)std::strtol(arg.c_str() + std::strlen("--jobs="),
                                    nullptr, 10);
        } else if (arg.rfind("--cache-dir=", 0) == 0) {
            cache_dir = arg.substr(std::strlen("--cache-dir="));
        } else if (arg == "--no-cache") {
            cache_dir.clear();
        } else if (arg == "--cycles" && i + 1 < argc) {
            cycles = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--print-koika") {
            print_koika = true;
        } else if (arg == "--no-counters") {
            counters = false;
        } else if (arg == "--instrument") {
            instrument = true;
        } else {
            return usage();
        }
    }
    if (design_name.empty())
        return usage();

    koika::sim::Tier tier = koika::sim::Tier::kT5StaticAnalysis;
    bool compiled_engine = engine == "compiled";
    if (!compiled_engine && !parse_tier(engine, &tier)) {
        std::cerr << "cuttlec: unknown engine '" << engine << "'\n";
        return usage();
    }

    try {
        auto design = koika::designs::build_design(design_name);
        std::string cls = koika::codegen::model_class_name(*design);

        if (print_koika) {
            std::cout << koika::print_design(*design);
            return 0;
        }

        if (fault) {
            if (compiled_engine) {
                // Fault injection pokes registers between cycles, which
                // needs an in-process model; the out-of-process compiled
                // engine cannot do that.
                std::cerr << "cuttlec: warning: fault campaigns run on "
                             "interpreter tiers; using T5\n";
                tier = koika::sim::Tier::kT5StaticAnalysis;
            }
            return fault_campaign(*design, tier, fault_seed,
                                  fault_count, cycles, jobs,
                                  fault_report);
        }

        if (!stats_file.empty() || !trace_file.empty()) {
            if (compiled_engine) {
                try {
                    return simulate_compiled(*design, cycles,
                                             stats_file, trace_file,
                                             cxxflags, out_dir,
                                             cache_dir);
                } catch (const koika::FatalError& err) {
                    std::cerr
                        << "cuttlec: warning: compiled engine failed: "
                        << err.message() << "\n"
                        << "cuttlec: warning: falling back to the T5 "
                           "interpreter tier\n";
                    tier = koika::sim::Tier::kT5StaticAnalysis;
                }
            }
            return simulate(*design, tier, cycles, stats_file,
                            trace_file);
        }

        if (instrument) {
            if (out_dir.empty())
                return usage();
            koika::codegen::EmitOptions opts;
            opts.counters = true;
            opts.abort_reasons = true;
            opts.class_name = cls + "_instr";
            write_file(out_dir + "/" + cls + "_instr.model.hpp",
                       koika::codegen::emit_model(*design, opts));
            return 0;
        }

        koika::rtl::Netlist netlist = koika::rtl::lower(*design);
        koika::rtl::Netlist optimized = koika::rtl::optimize(netlist);

        if (stats || out_dir.empty()) {
            std::cout << "design " << design->name() << ": "
                      << design->num_registers() << " registers, "
                      << design->num_rules() << " rules, "
                      << koika::design_sloc(*design) << " Koika SLOC, "
                      << koika::codegen::model_sloc(*design)
                      << " Cuttlesim SLOC, netlist "
                      << netlist.num_nodes() << " nodes ("
                      << optimized.num_nodes() << " optimized), "
                      << koika::rtl::verilog_sloc(netlist)
                      << " Verilog SLOC\n";
            if (out_dir.empty())
                return 0;
        }

        koika::codegen::EmitOptions opts;
        opts.counters = counters;
        write_file(out_dir + "/" + cls + ".model.hpp",
                   koika::codegen::emit_model(*design, opts));
        write_file(out_dir + "/" + cls + "_rtl.hpp",
                   koika::rtl::emit_rtl_model(netlist, cls + "_rtl"));
        write_file(out_dir + "/" + cls + "_rtlopt.hpp",
                   koika::rtl::emit_rtl_model(optimized,
                                              cls + "_rtlopt"));
        write_file(out_dir + "/" + cls + ".v",
                   koika::rtl::emit_verilog(netlist, cls));
        return 0;
    } catch (const koika::FatalError& err) {
        std::cerr << "cuttlec: " << err.what() << "\n";
        return 1;
    }
}
