/**
 * @file
 * cuttlec: the Cuttlesim compiler driver.
 *
 * The paper's workflow tool: compile a Kôika design to (a) a fast,
 * readable, debuggable C++ model for simulation (the Cuttlesim pipeline)
 * and, completely separately, (b) RTL for synthesis (here: a netlist,
 * emitted as Verilog and as a compiled cycle-based C++ simulation that
 * plays the Verilator role in the benchmarks).
 *
 *   cuttlec --design rv32i --out build/generated
 *       writes rv32i.model.hpp      (Cuttlesim C++ model)
 *              rv32i_rtl.hpp        (compiled netlist simulation)
 *              rv32i_rtlopt.hpp     (same, after netlist optimization)
 *              rv32i.v              (structural Verilog)
 *   cuttlec --design rv32i --instrument --out build/generated
 *       writes rv32i_instr.model.hpp only (class rv32i_instr, counters
 *       plus abort-reason attribution and statement/branch coverage
 *       arrays for the observability layer)
 *   cuttlec --list
 *   cuttlec --design fir --stats    (sizes only, no files)
 *   cuttlec --design fir --print-koika
 *
 * Observability (see README "Observability"): the driver can also run
 * the design and report what happened:
 *   cuttlec --design fir --cycles 5000 --stats=fir-stats.json
 *       per-rule commit/abort/abort-reason statistics as JSON
 *   cuttlec --design fir --cycles 200 --trace=fir.json
 *       Chrome trace-event rule activity, viewable in ui.perfetto.dev
 *   cuttlec --design fir --cycles 200 --vcd=fir.vcd
 *       committed-register waveform for GTKWave (interpreter engines)
 *   cuttlec --design rv32i --cycles 2000 --coverage=rv32i.cov.json
 *       design-coverage database (statements, branch outcomes, rule
 *       activity, register toggles) in the cuttlesim-cov-v1 schema;
 *       --coverage-lcov= renders LCOV for genhtml, --coverage-report=
 *       writes the Gcov-style annotated listing
 *   cuttlec --coverage-merge OUT IN...
 *       fold coverage shards (fault campaigns, fuzz workers, bench
 *       reps) into one database; merging is commutative, so any shard
 *       order produces the same bytes
 * The engine is selectable: --engine=T0..T5 picks an interpreter tier,
 * --engine=compiled emits the model, compiles it with the system C++
 * compiler and times the real binary. With --trace= or --coverage=, the
 * compiled engine emits an instrumented model plus an observing driver
 * that streams per-cycle rule activity and a final coverage record over
 * stdout, which cuttlec replays into the same trace/coverage files the
 * interpreter tiers write. When that out-of-process pipeline fails
 * (broken flags, wedged toolchain), cuttlec degrades gracefully: it
 * warns and falls back to the T5 interpreter tier.
 *
 * Resilience (README "Fault-injection campaigns"):
 *   cuttlec --design rv32i --fault-campaign=SEED --fault-count=100 \
 *           --cycles 2000 --fault-report=rv32i-faults.json --jobs=8
 *       seeded, deterministic SEU/stuck-at campaign in lockstep against
 *       a golden copy; every injection classified masked / sdc /
 *       detected, counts exported through the obs metrics registry.
 *       --jobs shards injections across worker threads; the report
 *       stays byte-identical to a serial run (same seed ⇒ same bytes).
 *       Adding --coverage=FILE accumulates a coverage database over the
 *       faulted runs, also byte-identical at any job count.
 *   cuttlec --design rv32i --fault-orchestrate=DIR --fault-count=400 \
 *           --workers=4 --fault-report=rv32i-faults.json
 *       the same campaign drained by a supervised fleet of worker
 *       *processes* over a shared campaign directory (lease-claimed
 *       chunks, heartbeats, crash/hang reclaim with retry + backoff;
 *       src/orchestrate). The merged report is byte-identical to the
 *       single-process run; --chaos=P makes the workers crash/hang on
 *       purpose to prove it. Interrupting either flavor with SIGINT or
 *       SIGTERM shuts down gracefully (exit 75): in-flight progress is
 *       flushed and a rerun with the same flags resumes.
 *
 * Scaling: --engine=compiled reuses previously compiled models through
 * a content-addressed cache (--cache-dir, default ~/.cache/cuttlesim;
 * --no-cache disables). A warm hit skips the external compiler
 * entirely; the compile.cache_* counters in the output say which path
 * ran.
 *
 * Host-side profiling (docs/OBSERVABILITY.md): --profile=FILE writes a
 * cuttlesim-prof-v1 wall-clock report of the run itself (per-phase
 * totals, per-worker busy/idle, pool utilization), --profile-trace=FILE
 * writes the matching Chrome trace-event host timeline, and --progress
 * paints a live trials/sec + ETA heartbeat on stderr during fault
 * campaigns. All three observe only the host; every deterministic
 * artifact (reports, coverage, checkpoints) is byte-identical with or
 * without them.
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include <unistd.h>

#include "base/io.hpp"
#include "base/signal.hpp"
#include "codegen/compile.hpp"
#include "codegen/cpp_emit.hpp"
#include "designs/designs.hpp"
#include "designs/rv32.hpp"
#include "designs/targets.hpp"
#include "fault/fault.hpp"
#include "harness/coverage.hpp"
#include "harness/memory.hpp"
#include "harness/vcd.hpp"
#include "interp/reference_model.hpp"
#include "koika/print.hpp"
#include "obs/coverage.hpp"
#include "obs/prof.hpp"
#include "obs/stats.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "orchestrate/orchestrator.hpp"
#include "replay/bisect.hpp"
#include "replay/checkpoint.hpp"
#include "riscv/programs.hpp"
#include "rtl/lower.hpp"
#include "rtl/optimize.hpp"
#include "rtl/rtl_emit.hpp"
#include "rtl/verilog.hpp"
#include "sim/tiers.hpp"

namespace {

/** All whole-file artifacts publish atomically (temp file + rename). */
void
write_file(const std::string& path, const std::string& text)
{
    koika::write_file_atomic(path, text);
}

/**
 * Registry every command path merges its final counters into, so
 * --metrics=FILE can dump the whole invocation whatever dispatch path
 * ran (the compile metrics are merged in at write time).
 */
koika::obs::MetricsRegistry&
run_metrics()
{
    static koika::obs::MetricsRegistry r;
    return r;
}

/** `cuttlec --metrics=FILE`: the standalone cuttlesim-metrics-v1 dump. */
void
publish_metrics(const std::string& file, const std::string& design,
                const std::string& engine)
{
    koika::obs::MetricsRegistry merged;
    merged.merge_from(run_metrics());
    merged.merge_from(koika::codegen::compile_metrics());
    write_file(file,
               koika::obs::metrics_artifact(design, engine, merged)
                       .dump(2) +
                   "\n");
    std::cerr << "cuttlec: wrote metrics '" << file << "'\n";
}

/**
 * Streaming writer (traces, VCD waveforms) with the same atomic
 * publish discipline: bytes stream into `path + ".tmp.<pid>"` and the
 * final name appears only on a healthy close. FatalError with a
 * "write-output" diagnostic (nonzero exit) on any stream failure, so a
 * full disk cannot silently truncate an artifact.
 */
class AtomicStream
{
  public:
    void
    open(const std::string& path)
    {
        path_ = path;
        tmp_ = path + ".tmp." + std::to_string(getpid());
        out_.open(tmp_, std::ios::binary);
        if (!out_)
            fail("cannot open for writing");
    }

    bool is_open() const { return out_.is_open(); }
    std::ofstream& stream() { return out_; }

    void
    publish()
    {
        out_.flush();
        if (!out_)
            fail("stream write failed");
        out_.close();
        if (std::rename(tmp_.c_str(), path_.c_str()) != 0)
            fail(std::strerror(errno));
    }

  private:
    [[noreturn]] void
    fail(const std::string& detail)
    {
        std::remove(tmp_.c_str());
        koika::Diagnostic diag;
        diag.phase = "write-output";
        diag.command = path_;
        diag.detail = detail;
        koika::fatal_diag(std::move(diag), "cannot write '%s'",
                          path_.c_str());
    }

    std::string path_, tmp_;
    std::ofstream out_;
};

int
usage()
{
    std::cerr
        << "usage: cuttlec --design NAME [--out DIR] [--stats]\n"
           "               [--print-koika] [--no-counters] [--instrument]\n"
           "               [--cycles N] [--stats=FILE] [--trace=FILE]\n"
           "               [--vcd=FILE] [--coverage=FILE]\n"
           "               [--coverage-lcov=FILE] [--coverage-report=FILE]\n"
           "               [--engine=T0..T5|ref|compiled] [--cxxflags=FLAGS]\n"
           "               [--fault-campaign=SEED] [--fault-count=N]\n"
           "               [--fault-report=FILE] [--fault-checkpoint=FILE]\n"
           "               [--fault-orchestrate=DIR] [--workers=N]\n"
           "               [--chunk-size=N] [--worker-timeout=SEC]\n"
           "               [--max-retries=K] [--chaos=P]\n"
           "               [--jobs=N] [--batch=N]\n"
           "               [--cache-dir=DIR] [--no-cache]\n"
           "               [--checkpoint=FILE] [--checkpoint-every=N]\n"
           "               [--restore=FILE] [--run-to=CYCLE]\n"
           "               [--profile=FILE] [--profile-trace=FILE]\n"
           "               [--progress] [--metrics=FILE]\n"
           "       cuttlec --design NAME --bisect-divergence A B\n"
           "               [--perturb=CYCLE:REG:BIT] [--cycles N]\n"
           "               [--bisect-report=FILE]\n"
           "       cuttlec --coverage-merge OUT IN...\n"
           "       cuttlec --fault-status=DIR\n"
           "       cuttlec --list\n"
           "\n"
           "  --stats=FILE  simulate and write per-rule commit/abort/\n"
           "                abort-reason stats as JSON (includes a\n"
           "                coverage summary when --coverage= also ran)\n"
           "  --trace=FILE  simulate and write a Chrome trace-event JSON\n"
           "                (open in ui.perfetto.dev); works on every\n"
           "                engine, including --engine=compiled\n"
           "  --vcd=FILE    simulate and write a VCD waveform of the\n"
           "                committed registers (interpreter engines)\n"
           "  --coverage=FILE\n"
           "                simulate and write a cuttlesim-cov-v1 design\n"
           "                coverage database: statement counts, branch\n"
           "                taken/not-taken counts, per-rule activity,\n"
           "                per-bit register toggles. Works on every\n"
           "                engine; combine with --fault-campaign= to\n"
           "                accumulate coverage over the faulted runs\n"
           "  --coverage-lcov=FILE   also render the database as an LCOV\n"
           "                tracefile (genhtml-compatible; the listing it\n"
           "                refers to is written next to it as FILE.src)\n"
           "  --coverage-report=FILE  also write the Gcov-style annotated\n"
           "                source listing with execution counts\n"
           "  --coverage-merge OUT IN...\n"
           "                merge coverage databases into OUT (shards\n"
           "                from --jobs workers, fuzz trials, bench reps)\n"
           "  --cycles N    simulation length / fault-campaign horizon\n"
           "                (default 1000)\n"
           "  --engine=E    simulation engine: an interpreter tier\n"
           "                (T0..T5, default T5) or 'compiled' (emit,\n"
           "                compile with the system C++ compiler, run the\n"
           "                binary; falls back to T5 with a warning when\n"
           "                the out-of-process pipeline fails). Fault\n"
           "                campaigns run 'compiled' in process: the\n"
           "                instrumented model is built once, dlopened,\n"
           "                and driven through the same trial loop as\n"
           "                the tiers (byte-identical reports at any\n"
           "                --jobs/--batch)\n"
           "  --cxxflags=F  flags for --engine=compiled (default -O2)\n"
           "  --fault-campaign=SEED\n"
           "                run a deterministic fault-injection campaign\n"
           "                (SEU bit-flips + stuck-at faults) against a\n"
           "                golden copy; classify masked / sdc / detected\n"
           "  --fault-count=N   injections per campaign (default 100)\n"
           "  --fault-report=FILE   write the campaign report as JSON\n"
           "  --jobs=N      shard fault injections across N worker\n"
           "                threads (0 = one per hardware thread;\n"
           "                default 1). Reports and coverage databases\n"
           "                are byte-identical at any job count\n"
           "  --batch=N     advance N fault trials per worker in lockstep\n"
           "                lanes sharing one golden run (finished or\n"
           "                faulted lanes are masked out). Composes with\n"
           "                --jobs; reports and coverage databases stay\n"
           "                byte-identical at any lane count (default 1)\n"
           "  --fault-checkpoint=FILE\n"
           "                resumable campaigns: progress is saved to\n"
           "                FILE after each chunk of injections and a\n"
           "                matching file resumes instead of re-running;\n"
           "                the final report is byte-identical either way\n"
           "  --fault-orchestrate=DIR\n"
           "                drain the campaign with a supervised fleet of\n"
           "                worker processes over campaign directory DIR\n"
           "                (lease-claimed chunks, heartbeats, crash/hang\n"
           "                reclaim). The merged report is byte-identical\n"
           "                to the single-process run; exit 4 when chunks\n"
           "                exhausted their retries (see DIR/orchestrate\n"
           "                .json's `incomplete` block). A rerun with the\n"
           "                same flags resumes from the completed chunks.\n"
           "                --jobs= is the per-worker thread count here\n"
           "  --workers=N   worker processes to supervise (default 2)\n"
           "  --chunk-size=N    injections per lease-claimed chunk\n"
           "                (default 16)\n"
           "  --worker-timeout=SEC   reclaim a chunk whose worker's\n"
           "                heartbeat is older than SEC (default 10)\n"
           "  --max-retries=K   per-chunk reclaim budget and per-slot\n"
           "                respawn budget (default 3); past it the chunk\n"
           "                is marked failed and the report degrades\n"
           "                gracefully instead of aborting\n"
           "  --chaos=P     self-test: workers crash mid-chunk, hang, or\n"
           "                crash after publishing with probability P per\n"
           "                claim (default 0)\n"
           "  --fault-status=DIR\n"
           "                pretty-print the live status.json a running\n"
           "                --fault-orchestrate supervisor publishes in\n"
           "                DIR (state, trials/sec, ETA, per-worker\n"
           "                utilization, incomplete chunks); exit 1 when\n"
           "                no status has been published yet\n"
           "  --checkpoint=FILE\n"
           "                save a cuttlesim-ckpt-v1 checkpoint of the\n"
           "                full simulation state (registers, engine\n"
           "                counters, peripherals, coverage, metrics) at\n"
           "                the end of the run (in-process engines)\n"
           "  --checkpoint-every=N\n"
           "                also save FILE.<cycle> every N cycles\n"
           "  --restore=FILE    resume from a checkpoint; stats and\n"
           "                coverage match an uninterrupted run\n"
           "  --run-to=CYCLE    run to an absolute committed-cycle\n"
           "                count (instead of --cycles more)\n"
           "  --bisect-divergence A B\n"
           "                find the first cycle where engines A and B\n"
           "                (T0..T5 or 'ref') commit different state:\n"
           "                checkpointed scan + binary search + 1-cycle\n"
           "                replay; reports cycle, register, firing sets\n"
           "  --perturb=CYCLE:REG:BIT\n"
           "                deterministically flip one bit in engine B\n"
           "                after CYCLE commits (bisector self-test)\n"
           "  --bisect-report=FILE  write the bisection result as JSON\n"
           "  --cache-dir=DIR   compiled-model cache for\n"
           "                --engine=compiled (default\n"
           "                ~/.cache/cuttlesim; a warm hit skips the\n"
           "                external compiler)\n"
           "  --no-cache    disable the compiled-model cache\n"
           "  --profile=FILE\n"
           "                write a cuttlesim-prof-v1 host wall-clock\n"
           "                profile of this invocation: per-phase\n"
           "                total/count/mean/max, per-worker busy vs.\n"
           "                idle, pool utilization. Structure is\n"
           "                identical at any --jobs value\n"
           "  --profile-trace=FILE\n"
           "                write the matching Chrome trace-event host\n"
           "                timeline (one lane per worker thread; open\n"
           "                in ui.perfetto.dev)\n"
           "  --progress    live heartbeat on stderr during fault\n"
           "                campaigns: injections done, trials/sec, ETA,\n"
           "                worker busy % (with --profile*)\n"
           "  --metrics=FILE\n"
           "                write the invocation's metrics registry (run\n"
           "                counters merged with the compile metrics) as\n"
           "                a standalone cuttlesim-metrics-v1 JSON\n"
           "                artifact; works with every engine and\n"
           "                subcommand, and is written even when the\n"
           "                command fails\n"
           "  --instrument  emit only NAME_instr.model.hpp: a model with\n"
           "                counters, abort-reason attribution, and\n"
           "                statement/branch coverage arrays\n";
    return 2;
}

using koika::designs::engine_label;
using koika::designs::make_target_factory;
using koika::designs::parse_tier;

/** Files one simulation run should produce (empty = not asked for). */
struct RunOutputs
{
    std::string stats;
    std::string trace;
    std::string vcd;
    std::string coverage;
    std::string coverage_lcov;
    std::string coverage_report;
    std::string checkpoint;        ///< --checkpoint=FILE
    uint64_t checkpoint_every = 0; ///< --checkpoint-every=N
    std::string restore;           ///< --restore=FILE
    uint64_t run_to = 0;           ///< --run-to=CYCLE (0 = unset)

    bool
    wants_coverage() const
    {
        return !coverage.empty() || !coverage_lcov.empty() ||
               !coverage_report.empty();
    }

    bool
    wants_replay() const
    {
        return !checkpoint.empty() || !restore.empty() || run_to != 0;
    }

    bool
    wants_run() const
    {
        return !stats.empty() || !trace.empty() || !vcd.empty() ||
               wants_coverage() || wants_replay();
    }
};

/**
 * Write every coverage artifact that was asked for and return the
 * summary block for embedding into SimStats.
 */
koika::obs::Json
write_coverage_outputs(const koika::Design& design,
                       const koika::obs::CoverageMap& map,
                       const RunOutputs& out)
{
    if (!out.coverage.empty())
        map.save(out.coverage);
    if (!out.coverage_lcov.empty()) {
        std::string src = out.coverage_lcov + ".src";
        koika::obs::LcovReport rep =
            koika::obs::lcov_export(design, map, src);
        write_file(out.coverage_lcov, rep.info);
        write_file(src, rep.listing);
    }
    if (!out.coverage_report.empty())
        write_file(out.coverage_report,
                   koika::harness::coverage_report(design, map));
    return map.summary_json();
}

/** Seeded fault-injection campaign against a golden copy. */
int
fault_campaign(const koika::Design& design, const std::string& engine,
               const koika::codegen::DlModelOptions& dlopts,
               uint64_t seed, int count, uint64_t cycles, int jobs,
               int batch, bool progress, const std::string& report_file,
               const std::string& checkpoint_file, const RunOutputs& out)
{
    koika::fault::CampaignConfig config;
    config.seed = seed;
    config.count = count;
    config.cycles = cycles;
    config.jobs = jobs;
    config.batch = batch;
    config.progress = progress;
    config.collect_coverage = out.wants_coverage();
    config.checkpoint_file = checkpoint_file;

    koika::install_shutdown_handlers();
    koika::fault::CampaignReport report = koika::fault::run_campaign(
        design, make_target_factory(design, engine, dlopts), config);
    report.engine = engine_label(engine);
    if (report.resumed > 0)
        std::cerr << "cuttlec: resumed fault campaign from '"
                  << checkpoint_file << "' (" << report.resumed << "/"
                  << count << " injections already done)\n";

    if (report.interrupted) {
        // Completed records up to the chunk boundary are already
        // flushed to the checkpoint file (atomically); the final
        // artifacts must not be written from a partial record set.
        std::cerr << "cuttlec: fault campaign interrupted";
        if (!checkpoint_file.empty())
            std::cerr << "; progress saved — rerun with the same flags "
                         "to resume from '"
                      << checkpoint_file << "'";
        std::cerr << "\n";
        return koika::kExitInterrupted;
    }

    koika::obs::MetricsRegistry metrics =
        koika::fault::campaign_metrics(report);

    koika::obs::ProfScope write_span("campaign/report-write");
    if (report.has_coverage) {
        report.coverage.add_engine(report.engine);
        write_coverage_outputs(design, report.coverage, out);
    }

    if (!report_file.empty())
        write_file(report_file,
                   koika::fault::campaign_report_json(report, metrics)
                           .dump(2) +
                       "\n");
    write_span.close();
    run_metrics().merge_from(metrics);
    std::cout << report.to_text() << metrics.to_text();
    return 0;
}

/**
 * `cuttlec --fault-orchestrate=DIR`: the same campaign, drained by a
 * supervised multi-process worker fleet (src/orchestrate). The merged
 * --fault-report bytes are identical to fault_campaign's because both
 * paths assemble them with fault::campaign_report_json over the same
 * record set; here the report is only written when the campaign is
 * complete (a degraded campaign's partial report lives in
 * DIR/orchestrate.json under its `incomplete` block).
 */
int
fault_orchestrate_cmd(const koika::Design& design,
                      const std::string& engine, const std::string& dir,
                      uint64_t seed, int count, uint64_t cycles, int jobs,
                      int batch, int workers, int chunk_size,
                      double worker_timeout,
                      int max_retries, double chaos,
                      const std::string& report_file, const RunOutputs& out)
{
    koika::orchestrate::OrchestratorConfig config;
    config.dir = dir;
    config.design = design.name();
    config.engine = engine;
    config.campaign.seed = seed;
    config.campaign.count = count;
    config.campaign.cycles = cycles;
    config.campaign.jobs = jobs;
    config.campaign.batch = batch;
    config.campaign.collect_coverage = out.wants_coverage();
    config.workers = workers;
    config.chunk_size = chunk_size;
    config.worker_timeout_seconds = worker_timeout;
    config.max_retries = max_retries;
    config.chaos = chaos;

    koika::orchestrate::OrchestratorReport report =
        koika::orchestrate::run_orchestrator(config);

    if (report.interrupted) {
        std::cerr << "cuttlec: orchestrated campaign interrupted; "
                     "completed chunks are kept — rerun with the same "
                     "flags to resume from '"
                  << dir << "'\n";
        std::cout << report.to_text();
        return koika::kExitInterrupted;
    }

    koika::obs::ProfScope write_span("campaign/report-write");
    if (report.campaign.has_coverage)
        write_coverage_outputs(design, report.campaign.coverage, out);

    if (!report_file.empty()) {
        if (report.complete()) {
            write_file(report_file,
                       koika::fault::campaign_report_json(
                           report.campaign,
                           koika::fault::campaign_metrics(report.campaign))
                               .dump(2) +
                           "\n");
        } else {
            std::cerr << "cuttlec: warning: campaign incomplete ("
                      << report.missing_injections.size()
                      << " injections missing); '" << report_file
                      << "' not written — see " << dir
                      << "/orchestrate.json\n";
        }
    }
    write_span.close();
    run_metrics().merge_from(report.metrics);
    std::cout << report.to_text() << report.metrics.to_text();
    return report.complete() ? 0 : koika::orchestrate::kExitIncomplete;
}

/**
 * The driver emitted for an observing --engine=compiled run: besides
 * cycling the model, it streams what the interpreter tiers can report
 * in-process. One "T <chars>" line per cycle when tracing (one char per
 * scheduled rule: '*' committed, 'g'/'r'/'w' guard/read/write-conflict
 * abort, '.' idle), and one final "COV {json}" record when collecting
 * coverage (sparse statement/branch counts straight from the model's
 * instrumentation arrays, per-rule totals, per-bit toggle counts
 * computed by diffing committed state each cycle). cuttlec parses that
 * stdout and replays it into the same TraceWriter/CoverageMap files an
 * interpreter run writes.
 */
std::string
observing_driver(const koika::Design& design, bool want_trace,
                 bool want_cov)
{
    std::string cls = koika::codegen::model_class_name(design);
    std::ostringstream os;
    os << "#include <cstdint>\n#include <cstdio>\n#include <cstdlib>\n"
          "#include <cstring>\n"
          "#include \""
       << cls << ".model.hpp\"\n"
       << "using model_t = cuttlesim::models::" << cls << ";\n"
       << "int main(int argc, char** argv) {\n"
          "    unsigned long n = argc > 1 ? strtoul(argv[1], nullptr, "
          "10) : 1000;\n"
          "    static model_t m;\n";
    if (want_cov)
        os << "    static uint64_t prev[model_t::kNumRegs][8];\n"
              "    static uint64_t now[8];\n"
              "    static size_t off[model_t::kNumRegs + 1];\n"
              "    for (size_t r = 0; r < model_t::kNumRegs; ++r) {\n"
              "        m.get_reg_words(r, prev[r]);\n"
              "        off[r + 1] = off[r] + model_t::kRegWidths[r];\n"
              "    }\n"
              "    uint64_t* rise = (uint64_t*)calloc(\n"
              "        off[model_t::kNumRegs] + 1, sizeof(uint64_t));\n"
              "    uint64_t* fall = (uint64_t*)calloc(\n"
              "        off[model_t::kNumRegs] + 1, sizeof(uint64_t));\n";
    if (want_trace)
        os << "    static uint64_t prev_reason[model_t::kNumRules * "
              "3];\n"
              "    static char lbuf[model_t::kNumRules + 1];\n";
    os << "    for (unsigned long c = 0; c < n; ++c) {\n"
          "        m.cycle();\n";
    if (want_cov)
        os << "        for (size_t r = 0; r < model_t::kNumRegs; ++r) "
              "{\n"
              "            m.get_reg_words(r, now);\n"
              "            for (size_t b = 0; b < model_t::kRegWidths[r]; "
              "++b) {\n"
              "                uint64_t ob = (prev[r][b >> 6] >> (b & "
              "63)) & 1;\n"
              "                uint64_t nb = (now[b >> 6] >> (b & 63)) "
              "& 1;\n"
              "                if (ob != nb) ++(nb ? rise : "
              "fall)[off[r] + b];\n"
              "            }\n"
              "            std::memcpy(prev[r], now, sizeof now);\n"
              "        }\n";
    if (want_trace)
        os << "        for (size_t r = 0; r < model_t::kNumRules; ++r) "
              "{\n"
              "            char ch = '.';\n"
              "            if (m.last_fired[r]) ch = '*';\n"
              "            else {\n"
              "                const char k[3] = {'g', 'r', 'w'};\n"
              "                for (int j = 0; j < 3; ++j)\n"
              "                    if (m.abort_reason_count[r * 3 + "
              "(size_t)j] != prev_reason[r * 3 + (size_t)j]) { ch = "
              "k[j]; break; }\n"
              "            }\n"
              "            lbuf[r] = ch;\n"
              "        }\n"
              "        lbuf[model_t::kNumRules] = 0;\n"
              "        std::memcpy(prev_reason, m.abort_reason_count, "
              "sizeof prev_reason);\n"
              "        std::printf(\"T %s\\n\", lbuf);\n";
    os << "    }\n";
    if (want_cov) {
        os << "    const char* sep;\n"
              "    std::printf(\"COV {\");\n";
        auto sparse = [&](const char* key, const char* array) {
            os << "    std::printf(\"\\\"" << key << "\\\":{\");\n"
               << "    sep = \"\";\n"
               << "    for (size_t i = 0; i < model_t::kNumNodes; ++i)\n"
               << "        if (m." << array << "[i]) {\n"
               << "            std::printf(\"%s\\\"%zu\\\":%llu\", sep, "
                  "i, (unsigned long long)m."
               << array << "[i]);\n"
               << "            sep = \",\";\n"
               << "        }\n"
               << "    std::printf(\"},\");\n";
        };
        sparse("stmt", "stmt_count");
        sparse("taken", "branch_taken_count");
        sparse("not_taken", "branch_not_taken_count");
        os << "    std::printf(\"\\\"rules\\\":{\");\n"
              "    sep = \"\";\n"
              "    for (size_t r = 0; r < model_t::kNumRules; ++r) {\n"
              "        std::printf(\"%s\\\"%s\\\":[%llu,%llu]\", sep, "
              "model_t::kRuleNames[r],\n"
              "                    (unsigned long "
              "long)m.commit_count[r],\n"
              "                    (unsigned long "
              "long)m.abort_count[r]);\n"
              "        sep = \",\";\n"
              "    }\n"
              "    std::printf(\"},\");\n";
        auto toggles = [&](const char* key, const char* array) {
            os << "    std::printf(\"\\\"" << key << "\\\":[\");\n"
               << "    for (size_t r = 0; r < model_t::kNumRegs; ++r) "
                  "{\n"
               << "        std::printf(\"%s[\", r ? \",\" : \"\");\n"
               << "        for (size_t b = 0; b < "
                  "model_t::kRegWidths[r]; ++b)\n"
               << "            std::printf(\"%s%llu\", b ? \",\" : "
                  "\"\", (unsigned long long)"
               << array << "[off[r] + b]);\n"
               << "        std::printf(\"]\");\n"
               << "    }\n"
               << "    std::printf(\"]\");\n";
        };
        toggles("rise", "rise");
        os << "    std::printf(\",\");\n";
        toggles("fall", "fall");
        os << "    std::printf(\"}\\n\");\n";
    }
    os << "    return 0;\n}\n";
    return os.str();
}

/** Turn the observing driver's "COV {json}" record into a database. */
koika::obs::CoverageMap
parse_compiled_coverage(const koika::Design& design,
                        const std::string& json, uint64_t cycles)
{
    koika::obs::Json j = koika::obs::Json::parse(json);
    koika::obs::CoverageMap map =
        koika::obs::CoverageMap::for_design(design);
    map.cycles = cycles;
    map.add_engine("cuttlesim");
    auto fill = [&](const char* key, std::vector<uint64_t>& dst) {
        if (const koika::obs::Json* o = j.find(key))
            for (const auto& [k, v] : o->items()) {
                size_t id = (size_t)std::stoull(k);
                if (id < dst.size())
                    dst[id] = v.as_u64();
            }
    };
    fill("stmt", map.stmt_count);
    fill("taken", map.branch_taken);
    fill("not_taken", map.branch_not_taken);
    if (const koika::obs::Json* rules = j.find("rules"))
        for (const auto& [name, v] : rules->items())
            for (koika::obs::CoverageMap::RuleCov& rc : map.rules)
                if (rc.name == name) {
                    rc.commits = v.at(0).as_u64();
                    rc.aborts = v.at(1).as_u64();
                    break;
                }
    auto fill_bits = [&](const char* key, bool is_rise) {
        const koika::obs::Json* arr = j.find(key);
        if (arr == nullptr)
            return;
        for (size_t r = 0; r < arr->size() && r < map.regs.size();
             ++r) {
            const koika::obs::Json& a = arr->at(r);
            std::vector<uint64_t>& dst =
                is_rise ? map.regs[r].rise : map.regs[r].fall;
            for (size_t b = 0; b < a.size() && b < dst.size(); ++b)
                dst[b] = a.at(b).as_u64();
        }
    };
    fill_bits("rise", true);
    fill_bits("fall", false);
    return map;
}

/**
 * The compiled engine: emit the model, compile it out-of-process, run
 * the real binary. A plain --stats= run times a silent driver (no
 * instrumentation, no output — the benchmark configuration). With
 * --trace= or --coverage= the model is emitted instrumented and driven
 * by an observing driver whose stdout cuttlec replays into the same
 * artifacts an interpreter run writes.
 */
int
simulate_compiled(const koika::Design& design, uint64_t cycles,
                  const RunOutputs& out, const std::string& cxxflags,
                  const std::string& out_dir,
                  const std::string& cache_dir)
{
    if (!out.vcd.empty())
        koika::fatal("--vcd= needs an interpreter engine "
                     "(--engine=T0..T5): waveforms sample committed "
                     "state in-process every cycle");
    if (out.wants_replay())
        koika::fatal("--checkpoint/--restore/--run-to need an "
                     "in-process engine (--engine=T0..T5 or ref): "
                     "checkpoints snapshot committed state between "
                     "cycles");

    bool want_trace = !out.trace.empty();
    bool want_cov = out.wants_coverage();
    bool observe = want_trace || want_cov;

    std::string workdir =
        out_dir.empty() ? "/tmp/cuttlec_run_" + design.name() + "_" +
                              std::to_string(getpid())
                        : out_dir;
    std::string cls = koika::codegen::model_class_name(design);

    koika::codegen::CompileOptions copts;
    copts.cache.dir = cache_dir;

    if (!observe) {
        // A silent driver: run N cycles, print nothing (reg dumps would
        // dominate the timing and the output).
        std::string driver = "#include <cstdlib>\n#include \"" + cls +
                             ".model.hpp\"\n"
                             "int main(int argc, char** argv) {\n"
                             "    unsigned long n = argc > 1 ? "
                             "strtoul(argv[1], nullptr, 10) : 1000;\n"
                             "    cuttlesim::models::" +
                             cls +
                             " m;\n"
                             "    for (unsigned long c = 0; c < n; ++c) "
                             "m.cycle();\n"
                             "    return 0;\n"
                             "}\n";
        koika::codegen::CompileResult cr =
            koika::codegen::compile_model_driver(design, workdir,
                                                 driver, cxxflags,
                                                 copts);
        double wall = koika::codegen::time_binary(
            cr.binary, std::to_string(cycles));

        koika::obs::SimStats stats;
        stats.design = design.name();
        stats.engine = "cuttlesim";
        stats.cycles = cycles;
        stats.wall_seconds = wall;
        stats.extra["compile_seconds"] = cr.compile_seconds;
        stats.extra["compile_cache_hit"] = cr.cache_hit ? 1 : 0;

        if (!out.stats.empty()) {
            koika::obs::Json j = stats.to_json();
            j["compile_metrics"] =
                koika::codegen::compile_metrics().to_json();
            write_file(out.stats, j.dump(2) + "\n");
        }
        std::cout << stats.to_text()
                  << koika::codegen::compile_metrics().to_text();
        return 0;
    }

    copts.emit.counters = true;
    copts.emit.abort_reasons = want_trace;
    copts.emit.coverage = want_cov;
    koika::codegen::CompileResult cr =
        koika::codegen::compile_model_driver(
            design, workdir, observing_driver(design, want_trace,
                                              want_cov),
            cxxflags, copts);

    auto t0 = std::chrono::steady_clock::now();
    std::string output =
        koika::codegen::run_binary(cr.binary, std::to_string(cycles));
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();

    // Replay the observing driver's stdout.
    std::vector<std::string> rule_names;
    for (int r : design.schedule_order())
        rule_names.push_back(design.rule(r).name);

    AtomicStream trace_out;
    std::unique_ptr<koika::obs::TraceWriter> trace;
    if (want_trace) {
        trace_out.open(out.trace);
        trace = std::make_unique<koika::obs::TraceWriter>(
            trace_out.stream(), rule_names, design.name());
    }

    koika::obs::SimStats stats;
    stats.design = design.name();
    stats.engine = "cuttlesim";
    stats.cycles = cycles;
    stats.wall_seconds = wall;
    stats.extra["compile_seconds"] = cr.compile_seconds;
    stats.extra["compile_cache_hit"] = cr.cache_hit ? 1 : 0;

    std::istringstream lines(output);
    std::string line;
    bool saw_cov = false;
    while (std::getline(lines, line)) {
        if (line.rfind("T ", 0) == 0 && trace != nullptr) {
            std::vector<bool> fired(rule_names.size(), false);
            std::vector<const char*> reasons(rule_names.size(),
                                             nullptr);
            for (size_t r = 0;
                 r < rule_names.size() && r + 2 < line.size(); ++r) {
                switch (line[r + 2]) {
                  case '*': fired[r] = true; break;
                  case 'g':
                    reasons[r] = koika::sim::abort_reason_name(
                        koika::sim::AbortReason::kGuard);
                    break;
                  case 'r':
                    reasons[r] = koika::sim::abort_reason_name(
                        koika::sim::AbortReason::kReadConflict);
                    break;
                  case 'w':
                    reasons[r] = koika::sim::abort_reason_name(
                        koika::sim::AbortReason::kWriteConflict);
                    break;
                  default: break;
                }
            }
            trace->record_cycle(fired, reasons);
        } else if (line.rfind("COV ", 0) == 0 && want_cov) {
            koika::obs::CoverageMap map = parse_compiled_coverage(
                design, line.substr(4), cycles);
            stats.coverage = write_coverage_outputs(design, map, out);
            for (const koika::obs::CoverageMap::RuleCov& rc :
                 map.rules) {
                koika::obs::RuleStats rs;
                rs.name = rc.name;
                rs.commits = rc.commits;
                rs.aborts = rc.aborts;
                stats.rules.push_back(std::move(rs));
            }
            saw_cov = true;
        }
    }
    if (trace != nullptr) {
        trace->finish();
        trace_out.publish();
    }
    if (want_cov && !saw_cov)
        koika::fatal("compiled run of '%s' produced no COV record "
                     "(driver output was %zu bytes)",
                     design.name().c_str(), output.size());

    if (!out.stats.empty()) {
        koika::obs::Json j = stats.to_json();
        j["compile_metrics"] =
            koika::codegen::compile_metrics().to_json();
        write_file(out.stats, j.dump(2) + "\n");
    }
    std::cout << stats.to_text()
              << koika::codegen::compile_metrics().to_text();
    return 0;
}

/**
 * Capture the full simulation state between cycles: committed
 * registers and engine counters (Checkpoint::capture), peripheral
 * state ("env"), coverage-collector accumulators ("coverage"), and the
 * metrics registry ("metrics"). Everything a byte-identical resume
 * needs.
 */
koika::replay::Checkpoint
capture_system(const koika::Design& design,
               const koika::fault::FaultTarget& target,
               const koika::obs::CoverageCollector* cov,
               const koika::obs::MetricsRegistry& metrics)
{
    koika::replay::Checkpoint ck =
        koika::replay::Checkpoint::capture(design, *target.model);
    if (target.save_env) {
        koika::sim::StateWriter w;
        target.save_env(w);
        ck.set_section("env", w.take());
    }
    if (cov != nullptr) {
        koika::sim::StateWriter w;
        cov->save_state(w);
        ck.set_section("coverage", w.take());
    }
    ck.set_section("metrics", metrics.to_json().dump());
    return ck;
}

/** Run `design` on an in-process engine, writing artifacts as asked. */
int
simulate(const koika::Design& design, const std::string& engine,
         uint64_t cycles, const RunOutputs& out)
{
    std::string label = engine_label(engine);
    // Same stimulus routing as fault campaigns and golden runs: rv32
    // designs run the primes program out of magic memories, closed
    // designs run bare.
    koika::obs::ProfScope setup_span("sim/setup");
    koika::fault::FaultTarget target =
        make_target_factory(design, engine)();
    koika::sim::Model& model = *target.model;
    auto* rs = dynamic_cast<koika::sim::RuleStatsModel*>(&model);

    // Restore committed registers + engine counters + peripherals
    // before any observer attaches, so collectors snapshot the
    // restored state as their baseline.
    uint64_t start = 0;
    std::unique_ptr<koika::replay::Checkpoint> restored;
    if (!out.restore.empty()) {
        restored = std::make_unique<koika::replay::Checkpoint>(
            koika::replay::Checkpoint::load(out.restore));
        if (!restored->restore_into(design, model))
            std::cerr << "cuttlec: warning: checkpoint engine state "
                         "was captured by a different engine family; "
                         "registers restored, counters restart at "
                         "zero\n";
        if (const std::string* env = restored->section("env")) {
            KOIKA_CHECK(target.load_env != nullptr);
            koika::sim::StateReader r(*env);
            target.load_env(r);
        }
        start = restored->cycle;
    }
    uint64_t end = out.run_to != 0 ? out.run_to : start + cycles;
    if (end < start)
        koika::fatal("--run-to=%llu is before the checkpoint's cycle "
                     "%llu",
                     (unsigned long long)end,
                     (unsigned long long)start);

    AtomicStream trace_out;
    std::unique_ptr<koika::obs::TraceWriter> trace;
    if (!out.trace.empty()) {
        KOIKA_CHECK(rs != nullptr);
        trace_out.open(out.trace);
        std::vector<std::string> rule_names;
        for (size_t r = 0; r < rs->num_rules(); ++r)
            rule_names.push_back(rs->rule_name((int)r));
        trace = std::make_unique<koika::obs::TraceWriter>(
            trace_out.stream(), std::move(rule_names), design.name());
    }

    AtomicStream vcd_out;
    std::unique_ptr<koika::harness::VcdWriter> vcd;
    if (!out.vcd.empty()) {
        vcd_out.open(out.vcd);
        vcd = std::make_unique<koika::harness::VcdWriter>(
            design, vcd_out.stream());
        vcd->sample(model); // time 0: the initial committed state
    }

    std::unique_ptr<koika::obs::CoverageCollector> cov;
    if (out.wants_coverage())
        cov = std::make_unique<koika::obs::CoverageCollector>(design,
                                                              model);

    koika::obs::MetricsRegistry metrics;
    if (rs != nullptr)
        metrics.define_histogram("rules_fired_per_cycle", [&] {
            std::vector<double> bounds;
            for (size_t r = 0; r <= rs->num_rules(); ++r)
                bounds.push_back((double)r);
            return bounds;
        }());

    // Replay the observers' accumulated state so a restored run's
    // stats and coverage files come out byte-identical (minus
    // wall-clock) to an uninterrupted run's.
    if (restored != nullptr) {
        if (cov != nullptr) {
            if (const std::string* s = restored->section("coverage")) {
                koika::sim::StateReader r(*s);
                cov->load_state(r);
            }
        }
        if (const std::string* s = restored->section("metrics"))
            metrics = koika::obs::MetricsRegistry::from_json(
                koika::obs::Json::parse(*s));
    }

    setup_span.close();
    koika::install_shutdown_handlers();
    bool interrupted = false;
    uint64_t reached = start;
    koika::obs::ProfScope run_span("sim/run");
    auto t0 = std::chrono::steady_clock::now();
    for (uint64_t c = start; c < end; ++c) {
        if (koika::shutdown_requested()) {
            // Stop at a committed-cycle boundary: every artifact below
            // (trace, VCD, checkpoint, stats, coverage) is flushed
            // atomically for the cycles that did run, and --restore on
            // the checkpoint resumes from exactly here.
            interrupted = true;
            break;
        }
        reached = c + 1;
        model.cycle();
        if (target.stimulus)
            target.stimulus(model, c);
        if (trace != nullptr)
            trace->sample(*rs);
        if (vcd != nullptr)
            vcd->sample(model);
        if (cov != nullptr)
            cov->sample();
        if (!out.stats.empty() && rs != nullptr) {
            size_t fired = 0;
            for (bool f : rs->fired())
                fired += f;
            metrics.observe("rules_fired_per_cycle", (double)fired);
        }
        if (!out.checkpoint.empty() && out.checkpoint_every != 0 &&
            (c + 1) % out.checkpoint_every == 0 && c + 1 != end)
            capture_system(design, target, cov.get(), metrics)
                .save(out.checkpoint + "." + std::to_string(c + 1));
    }
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    run_span.close();
    koika::obs::ProfScope out_span("sim/write-output");

    if (trace != nullptr) {
        trace->finish();
        trace_out.publish();
    }
    if (vcd != nullptr)
        vcd_out.publish();

    if (!out.checkpoint.empty())
        capture_system(design, target, cov.get(), metrics)
            .save(out.checkpoint);

    koika::obs::SimStats stats = koika::obs::collect_stats(model);
    stats.design = design.name();
    stats.engine = label;
    stats.wall_seconds = wall;

    if (cov != nullptr) {
        koika::obs::CoverageMap map = cov->take(label);
        stats.coverage = write_coverage_outputs(design, map, out);
    }

    if (!out.stats.empty()) {
        koika::obs::Json j = stats.to_json();
        j["metrics"] = metrics.to_json();
        write_file(out.stats, j.dump(2) + "\n");
    }
    run_metrics().merge_from(metrics);
    std::cout << stats.to_text();
    if (interrupted) {
        std::cerr << "cuttlec: interrupted at cycle " << reached
                  << " of " << end << "; artifacts cover the cycles "
                     "that ran";
        if (!out.checkpoint.empty())
            std::cerr << " — resume with --restore=" << out.checkpoint
                      << " --run-to=" << end;
        std::cerr << "\n";
        return koika::kExitInterrupted;
    }
    return 0;
}

/**
 * `cuttlec --bisect-divergence A B`: locate the first committed cycle
 * where two engines disagree, by checkpointed scan + binary search +
 * single-cycle replay (replay/bisect.hpp). --perturb injects a
 * deterministic bit flip into engine B so the machinery can be
 * demonstrated (and tested) on engines that genuinely agree.
 */
int
bisect_divergence_cmd(const koika::Design& design,
                      const std::string& engine_a,
                      const std::string& engine_b, uint64_t cycles,
                      const std::string& perturb,
                      const std::string& report_file)
{
    koika::replay::BisectConfig config;
    config.horizon = cycles;
    if (!perturb.empty()) {
        // CYCLE:REG:BIT — flip one bit of B's committed state right
        // after cycle CYCLE commits. A pure function of the committed
        // cycle count, so restore+replay reproduces it exactly.
        uint64_t pcycle = 0;
        unsigned pbit = 0;
        char preg[128] = {0};
        if (std::sscanf(perturb.c_str(), "%llu:%127[^:]:%u",
                        (unsigned long long*)&pcycle, preg,
                        &pbit) != 3)
            koika::fatal("--perturb wants CYCLE:REG:BIT, got '%s'",
                         perturb.c_str());
        int reg = design.reg_index(preg);
        if (reg < 0)
            koika::fatal("--perturb: no register '%s' in design '%s'",
                         preg, design.name().c_str());
        config.perturb_b = [pcycle, reg,
                            pbit](koika::sim::Model& m,
                                  uint64_t committed) {
            if (committed == pcycle) {
                koika::Bits v = m.get_reg(reg);
                m.set_reg(reg, v.with_bit(pbit, !v.bit(pbit)));
            }
        };
    }

    auto subject_factory = [&design](const std::string& engine) {
        koika::fault::TargetFactory tf =
            make_target_factory(design, engine);
        return [tf]() {
            koika::fault::FaultTarget t = tf();
            koika::replay::Subject s;
            s.model = std::move(t.model);
            s.stimulus = t.stimulus;
            s.save_env = t.save_env;
            s.load_env = t.load_env;
            s.context = t.context;
            return s;
        };
    };

    koika::replay::DivergenceReport rep =
        koika::replay::bisect_divergence(design,
                                         subject_factory(engine_a),
                                         subject_factory(engine_b),
                                         config);
    rep.engine_a = engine_label(engine_a);
    rep.engine_b = engine_label(engine_b);

    if (!report_file.empty()) {
        koika::obs::Json j = rep.to_json();
        j["design"] = design.name();
        write_file(report_file, j.dump(2) + "\n");
    }
    std::cout << rep.to_text();
    return 0;
}

/** `cuttlec --coverage-merge OUT IN...`: fold shards into OUT. */
int
coverage_merge(int argc, char** argv, int i)
{
    if (i + 2 > argc - 1) {
        std::cerr << "cuttlec: --coverage-merge needs OUT and at "
                     "least one IN\n";
        return usage();
    }
    std::string out_path = argv[i + 1];
    try {
        koika::obs::CoverageMap merged =
            koika::obs::CoverageMap::load(argv[i + 2]);
        for (int k = i + 3; k < argc; ++k)
            merged.merge(koika::obs::CoverageMap::load(argv[k]));
        merged.save(out_path);
        koika::obs::CoverageMap::Summary s = merged.summary();
        std::cout << "merged " << (argc - i - 2) << " databases into "
                  << out_path << ": " << s.stmt_covered << "/"
                  << s.stmt_points << " statements, "
                  << s.branch_outcomes_covered << "/"
                  << s.branch_outcomes << " branch outcomes, "
                  << s.toggle_dirs_covered << "/" << s.toggle_dirs
                  << " toggle directions\n";
        return 0;
    } catch (const koika::FatalError& err) {
        std::cerr << "cuttlec: " << err.what() << "\n";
        return 1;
    }
}

} // namespace

int
main(int argc, char** argv)
{
    std::string design_name, out_dir;
    std::string engine = "T5", cxxflags = "-O2", fault_report;
    std::string cache_dir = koika::codegen::default_cache_dir();
    std::string fault_checkpoint, fault_orchestrate, fault_worker;
    std::string bisect_a, bisect_b, perturb, bisect_report;
    std::string profile_file, profile_trace;
    std::string fault_status, metrics_file;
    RunOutputs outputs;
    bool stats = false, print_koika = false, counters = true;
    bool instrument = false, fault = false, bisect = false;
    bool progress = false;
    uint64_t cycles = 1000, fault_seed = 1;
    int fault_count = 100, jobs = 1, batch = 1;
    int worker_id = 0, workers = 2, chunk_size = 16, max_retries = 3;
    double worker_timeout = 10, chaos = 0;
    // --metrics= is pre-scanned so the subcommands that return straight
    // out of the parse loop (--list, --coverage-merge) still honor it.
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--metrics=", 0) == 0)
            metrics_file = arg.substr(std::strlen("--metrics="));
    }
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--list") {
            for (const auto& name : koika::designs::design_names())
                std::cout << name << "\n";
            if (!metrics_file.empty())
                publish_metrics(metrics_file, "", "");
            return 0;
        }
        if (arg == "--coverage-merge") {
            int rc = coverage_merge(argc, argv, i);
            if (!metrics_file.empty())
                publish_metrics(metrics_file, "", "");
            return rc;
        }
        if (arg == "--design" && i + 1 < argc) {
            design_name = argv[++i];
        } else if (arg == "--out" && i + 1 < argc) {
            out_dir = argv[++i];
        } else if (arg == "--stats") {
            stats = true;
        } else if (arg.rfind("--stats=", 0) == 0) {
            outputs.stats = arg.substr(std::strlen("--stats="));
        } else if (arg.rfind("--trace=", 0) == 0) {
            outputs.trace = arg.substr(std::strlen("--trace="));
        } else if (arg.rfind("--vcd=", 0) == 0) {
            outputs.vcd = arg.substr(std::strlen("--vcd="));
        } else if (arg.rfind("--coverage=", 0) == 0) {
            outputs.coverage = arg.substr(std::strlen("--coverage="));
        } else if (arg.rfind("--coverage-lcov=", 0) == 0) {
            outputs.coverage_lcov =
                arg.substr(std::strlen("--coverage-lcov="));
        } else if (arg.rfind("--coverage-report=", 0) == 0) {
            outputs.coverage_report =
                arg.substr(std::strlen("--coverage-report="));
        } else if (arg.rfind("--engine=", 0) == 0) {
            engine = arg.substr(std::strlen("--engine="));
        } else if (arg.rfind("--cxxflags=", 0) == 0) {
            cxxflags = arg.substr(std::strlen("--cxxflags="));
        } else if (arg.rfind("--fault-campaign=", 0) == 0) {
            fault = true;
            fault_seed = std::strtoull(
                arg.c_str() + std::strlen("--fault-campaign="), nullptr,
                10);
        } else if (arg.rfind("--fault-count=", 0) == 0) {
            fault_count = (int)std::strtoul(
                arg.c_str() + std::strlen("--fault-count="), nullptr,
                10);
        } else if (arg.rfind("--fault-report=", 0) == 0) {
            fault_report = arg.substr(std::strlen("--fault-report="));
        } else if (arg.rfind("--fault-checkpoint=", 0) == 0) {
            fault_checkpoint =
                arg.substr(std::strlen("--fault-checkpoint="));
        } else if (arg.rfind("--fault-orchestrate=", 0) == 0) {
            fault = true;
            fault_orchestrate =
                arg.substr(std::strlen("--fault-orchestrate="));
        } else if (arg.rfind("--fault-worker=", 0) == 0) {
            fault_worker = arg.substr(std::strlen("--fault-worker="));
        } else if (arg.rfind("--worker-id=", 0) == 0) {
            worker_id = (int)std::strtol(
                arg.c_str() + std::strlen("--worker-id="), nullptr, 10);
        } else if (arg.rfind("--workers=", 0) == 0) {
            workers = (int)std::strtol(
                arg.c_str() + std::strlen("--workers="), nullptr, 10);
        } else if (arg.rfind("--chunk-size=", 0) == 0) {
            chunk_size = (int)std::strtol(
                arg.c_str() + std::strlen("--chunk-size="), nullptr, 10);
        } else if (arg.rfind("--worker-timeout=", 0) == 0) {
            worker_timeout = std::strtod(
                arg.c_str() + std::strlen("--worker-timeout="), nullptr);
        } else if (arg.rfind("--max-retries=", 0) == 0) {
            max_retries = (int)std::strtol(
                arg.c_str() + std::strlen("--max-retries="), nullptr, 10);
        } else if (arg.rfind("--chaos=", 0) == 0) {
            chaos = std::strtod(arg.c_str() + std::strlen("--chaos="),
                                nullptr);
        } else if (arg.rfind("--checkpoint=", 0) == 0) {
            outputs.checkpoint =
                arg.substr(std::strlen("--checkpoint="));
        } else if (arg.rfind("--checkpoint-every=", 0) == 0) {
            outputs.checkpoint_every = std::strtoull(
                arg.c_str() + std::strlen("--checkpoint-every="),
                nullptr, 10);
        } else if (arg.rfind("--restore=", 0) == 0) {
            outputs.restore = arg.substr(std::strlen("--restore="));
        } else if (arg.rfind("--run-to=", 0) == 0) {
            outputs.run_to = std::strtoull(
                arg.c_str() + std::strlen("--run-to="), nullptr, 10);
        } else if (arg == "--bisect-divergence" && i + 2 < argc) {
            bisect = true;
            bisect_a = argv[++i];
            bisect_b = argv[++i];
        } else if (arg.rfind("--perturb=", 0) == 0) {
            perturb = arg.substr(std::strlen("--perturb="));
        } else if (arg.rfind("--bisect-report=", 0) == 0) {
            bisect_report =
                arg.substr(std::strlen("--bisect-report="));
        } else if (arg.rfind("--jobs=", 0) == 0) {
            jobs = (int)std::strtol(arg.c_str() + std::strlen("--jobs="),
                                    nullptr, 10);
        } else if (arg.rfind("--batch=", 0) == 0) {
            batch = (int)std::strtol(
                arg.c_str() + std::strlen("--batch="), nullptr, 10);
        } else if (arg.rfind("--profile=", 0) == 0) {
            profile_file = arg.substr(std::strlen("--profile="));
        } else if (arg.rfind("--profile-trace=", 0) == 0) {
            profile_trace = arg.substr(std::strlen("--profile-trace="));
        } else if (arg.rfind("--fault-status=", 0) == 0) {
            fault_status = arg.substr(std::strlen("--fault-status="));
        } else if (arg.rfind("--metrics=", 0) == 0) {
            // already pre-scanned above
        } else if (arg == "--progress") {
            progress = true;
        } else if (arg.rfind("--cache-dir=", 0) == 0) {
            cache_dir = arg.substr(std::strlen("--cache-dir="));
        } else if (arg == "--no-cache") {
            cache_dir.clear();
        } else if (arg == "--cycles" && i + 1 < argc) {
            cycles = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--print-koika") {
            print_koika = true;
        } else if (arg == "--no-counters") {
            counters = false;
        } else if (arg == "--instrument") {
            instrument = true;
        } else {
            return usage();
        }
    }
    // Live campaign introspection: pretty-print the status.json a
    // running (or finished) supervisor published. Like worker mode it
    // needs no --design; everything comes from the campaign directory.
    if (!fault_status.empty()) {
        try {
            koika::obs::Json s = koika::obs::Json::parse(koika::read_file(
                koika::orchestrate::status_path(fault_status)));
            std::cout << koika::obs::render_status_text(s);
            return 0;
        } catch (const std::exception& err) {
            std::cerr << "cuttlec: cannot read campaign status from '"
                      << fault_status << "': " << err.what() << "\n";
            return 1;
        }
    }
    // Worker mode: everything the worker needs (design, engine, fault
    // list, chunking) comes from the campaign directory's manifest, so
    // it is handled before the --design requirement below.
    if (!fault_worker.empty()) {
        try {
            return koika::orchestrate::run_worker(fault_worker, worker_id);
        } catch (const koika::FatalError& err) {
            std::cerr << "cuttlec[worker " << worker_id
                      << "]: " << err.what() << "\n";
            return 1;
        }
    }

    if (design_name.empty())
        return usage();

    if (!fault_orchestrate.empty() && !fault_checkpoint.empty()) {
        std::cerr << "cuttlec: --fault-orchestrate manages its own "
                     "progress (the chunk files in the campaign "
                     "directory); --fault-checkpoint does not apply\n";
        return usage();
    }

    koika::sim::Tier tier = koika::sim::Tier::kT5StaticAnalysis;
    bool compiled_engine = engine == "compiled";
    if (!compiled_engine && engine != "ref" &&
        !parse_tier(engine, &tier)) {
        std::cerr << "cuttlec: unknown engine '" << engine << "'\n";
        return usage();
    }

    // Arm the profiler before any profiled work (design build included)
    // so the report accounts for the whole invocation.
    bool profiling = !profile_file.empty() || !profile_trace.empty();
    if (profiling) {
        koika::obs::Profiler::instance().enable();
        koika::obs::Profiler::instance().set_thread_name("main");
    }
    // Every command path funnels through this lambda so the profile
    // artifacts can be written once, after the command finishes,
    // whatever return statement it took.
    auto dispatch = [&]() -> int {
        auto design = [&] {
            koika::obs::ProfScope span("design-build");
            return koika::designs::build_design(design_name);
        }();
        std::string cls = koika::codegen::model_class_name(*design);

        if (print_koika) {
            std::cout << koika::print_design(*design);
            return 0;
        }

        if (bisect) {
            if (bisect_a == "compiled" || bisect_b == "compiled")
                koika::fatal("--bisect-divergence needs in-process "
                             "engines (T0..T5 or ref); the compiled "
                             "engine runs out of process");
            return bisect_divergence_cmd(*design, bisect_a, bisect_b,
                                         cycles, perturb,
                                         bisect_report);
        }

        if (fault) {
            // The compiled engine participates like any tier: the
            // model is dlopened into the process (codegen/dlmodel.hpp)
            // with full instrumentation, so register pokes, counters,
            // and checkpoint-restore all work. --cxxflags/--cache-dir
            // pick its build flavor.
            koika::codegen::DlModelOptions dlopts;
            dlopts.cxxflags = cxxflags;
            dlopts.cache.dir = cache_dir;
            if (!fault_orchestrate.empty())
                return fault_orchestrate_cmd(
                    *design, engine, fault_orchestrate, fault_seed,
                    fault_count, cycles, jobs, batch, workers,
                    chunk_size, worker_timeout, max_retries, chaos,
                    fault_report, outputs);
            return fault_campaign(*design, engine, dlopts, fault_seed,
                                  fault_count, cycles, jobs, batch,
                                  progress, fault_report,
                                  fault_checkpoint, outputs);
        }

        if (outputs.wants_run()) {
            if (compiled_engine) {
                try {
                    return simulate_compiled(*design, cycles, outputs,
                                             cxxflags, out_dir,
                                             cache_dir);
                } catch (const koika::FatalError& err) {
                    std::cerr
                        << "cuttlec: warning: compiled engine failed: "
                        << err.message() << "\n"
                        << "cuttlec: warning: falling back to the T5 "
                           "interpreter tier\n";
                    engine = "T5";
                }
            }
            return simulate(*design, engine, cycles, outputs);
        }

        if (instrument) {
            if (out_dir.empty())
                return usage();
            koika::codegen::EmitOptions opts;
            opts.counters = true;
            opts.abort_reasons = true;
            opts.coverage = true;
            opts.class_name = cls + "_instr";
            write_file(out_dir + "/" + cls + "_instr.model.hpp",
                       koika::codegen::emit_model(*design, opts));
            return 0;
        }

        koika::rtl::Netlist netlist = koika::rtl::lower(*design);
        koika::rtl::Netlist optimized = koika::rtl::optimize(netlist);

        if (stats || out_dir.empty()) {
            std::cout << "design " << design->name() << ": "
                      << design->num_registers() << " registers, "
                      << design->num_rules() << " rules, "
                      << koika::design_sloc(*design) << " Koika SLOC, "
                      << koika::codegen::model_sloc(*design)
                      << " Cuttlesim SLOC, netlist "
                      << netlist.num_nodes() << " nodes ("
                      << optimized.num_nodes() << " optimized), "
                      << koika::rtl::verilog_sloc(netlist)
                      << " Verilog SLOC\n";
            if (out_dir.empty())
                return 0;
        }

        koika::codegen::EmitOptions opts;
        opts.counters = counters;
        write_file(out_dir + "/" + cls + ".model.hpp",
                   koika::codegen::emit_model(*design, opts));
        write_file(out_dir + "/" + cls + "_rtl.hpp",
                   koika::rtl::emit_rtl_model(netlist, cls + "_rtl"));
        write_file(out_dir + "/" + cls + "_rtlopt.hpp",
                   koika::rtl::emit_rtl_model(optimized,
                                              cls + "_rtlopt"));
        write_file(out_dir + "/" + cls + ".v",
                   koika::rtl::emit_verilog(netlist, cls));
        return 0;
    };

    int rc;
    try {
        rc = dispatch();
    } catch (const koika::FatalError& err) {
        std::cerr << "cuttlec: " << err.what() << "\n";
        rc = 1;
    }

    // Profile artifacts are written even when the command failed: a
    // profile of the part that did run is exactly what a slow-or-stuck
    // investigation needs.
    if (profiling) {
        try {
            koika::obs::Profiler& prof =
                koika::obs::Profiler::instance();
            if (!profile_file.empty()) {
                write_file(profile_file,
                           prof.report().to_json().dump(2) + "\n");
                std::cerr << "cuttlec: wrote host profile '"
                          << profile_file << "'\n";
            }
            if (!profile_trace.empty()) {
                write_file(profile_trace, prof.trace_json());
                std::cerr << "cuttlec: wrote host timeline '"
                          << profile_trace << "'\n";
            }
        } catch (const koika::FatalError& err) {
            std::cerr << "cuttlec: " << err.what() << "\n";
            rc = 1;
        }
    }

    // Like the profile artifacts, the metrics dump is written even when
    // the command failed: the counters of the part that ran are data.
    if (!metrics_file.empty()) {
        try {
            publish_metrics(metrics_file, design_name,
                            engine_label(engine));
        } catch (const koika::FatalError& err) {
            std::cerr << "cuttlec: " << err.what() << "\n";
            rc = 1;
        }
    }
    return rc;
}
