/**
 * @file
 * cuttlec: the Cuttlesim compiler driver.
 *
 * The paper's workflow tool: compile a Kôika design to (a) a fast,
 * readable, debuggable C++ model for simulation (the Cuttlesim pipeline)
 * and, completely separately, (b) RTL for synthesis (here: a netlist,
 * emitted as Verilog and as a compiled cycle-based C++ simulation that
 * plays the Verilator role in the benchmarks).
 *
 *   cuttlec --design rv32i --out build/generated
 *       writes rv32i.model.hpp      (Cuttlesim C++ model)
 *              rv32i_rtl.hpp        (compiled netlist simulation)
 *              rv32i_rtlopt.hpp     (same, after netlist optimization)
 *              rv32i.v              (structural Verilog)
 *   cuttlec --list
 *   cuttlec --design fir --stats    (sizes only, no files)
 *   cuttlec --design fir --print-koika
 */
#include <cstring>
#include <fstream>
#include <iostream>

#include "codegen/cpp_emit.hpp"
#include "designs/designs.hpp"
#include "koika/print.hpp"
#include "rtl/lower.hpp"
#include "rtl/optimize.hpp"
#include "rtl/rtl_emit.hpp"
#include "rtl/verilog.hpp"

namespace {

void
write_file(const std::string& path, const std::string& text)
{
    std::ofstream out(path);
    if (!out)
        koika::fatal("cannot write %s", path.c_str());
    out << text;
}

int
usage()
{
    std::cerr
        << "usage: cuttlec --design NAME [--out DIR] [--stats]\n"
           "               [--print-koika] [--no-counters]\n"
           "       cuttlec --list\n";
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string design_name, out_dir;
    bool stats = false, print_koika = false, counters = true;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--list") {
            for (const auto& name : koika::designs::design_names())
                std::cout << name << "\n";
            return 0;
        }
        if (arg == "--design" && i + 1 < argc) {
            design_name = argv[++i];
        } else if (arg == "--out" && i + 1 < argc) {
            out_dir = argv[++i];
        } else if (arg == "--stats") {
            stats = true;
        } else if (arg == "--print-koika") {
            print_koika = true;
        } else if (arg == "--no-counters") {
            counters = false;
        } else {
            return usage();
        }
    }
    if (design_name.empty())
        return usage();

    try {
        auto design = koika::designs::build_design(design_name);
        std::string cls = koika::codegen::model_class_name(*design);

        if (print_koika) {
            std::cout << koika::print_design(*design);
            return 0;
        }

        koika::rtl::Netlist netlist = koika::rtl::lower(*design);
        koika::rtl::Netlist optimized = koika::rtl::optimize(netlist);

        if (stats || out_dir.empty()) {
            std::cout << "design " << design->name() << ": "
                      << design->num_registers() << " registers, "
                      << design->num_rules() << " rules, "
                      << koika::design_sloc(*design) << " Koika SLOC, "
                      << koika::codegen::model_sloc(*design)
                      << " Cuttlesim SLOC, netlist "
                      << netlist.num_nodes() << " nodes ("
                      << optimized.num_nodes() << " optimized), "
                      << koika::rtl::verilog_sloc(netlist)
                      << " Verilog SLOC\n";
            if (out_dir.empty())
                return 0;
        }

        koika::codegen::EmitOptions opts;
        opts.counters = counters;
        write_file(out_dir + "/" + cls + ".model.hpp",
                   koika::codegen::emit_model(*design, opts));
        write_file(out_dir + "/" + cls + "_rtl.hpp",
                   koika::rtl::emit_rtl_model(netlist, cls + "_rtl"));
        write_file(out_dir + "/" + cls + "_rtlopt.hpp",
                   koika::rtl::emit_rtl_model(optimized,
                                              cls + "_rtlopt"));
        write_file(out_dir + "/" + cls + ".v",
                   koika::rtl::emit_verilog(netlist, cls));
        return 0;
    } catch (const koika::FatalError& err) {
        std::cerr << "cuttlec: " << err.what() << "\n";
        return 1;
    }
}
