/**
 * @file
 * A small two-pass RV32I assembler.
 *
 * Replaces the RISC-V GNU toolchain for building the paper's benchmark
 * programs (see DESIGN.md, substitutions). Supports the RV32I base ISA
 * (minus system instructions, which our cores treat as a halt marker),
 * labels, ABI register names, the common pseudo-instructions, `.word`,
 * and `#` comments.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace koika::riscv {

struct Program
{
    /** Instruction/data words, starting at `base`. */
    std::vector<uint32_t> words;
    /** Label addresses. */
    std::map<std::string, uint32_t> labels;
    uint32_t base = 0;
};

/**
 * Assemble RV32I source text. Throws FatalError with a line number on
 * syntax errors, unknown mnemonics, or out-of-range immediates.
 */
Program assemble(const std::string& source, uint32_t base = 0);

/** Parse a register name ("x7", "t0", "a5", ...); -1 if not one. */
int parse_register(const std::string& name);

} // namespace koika::riscv
