#include "riscv/assembler.hpp"

#include <sstream>

#include "base/error.hpp"
#include "riscv/encoding.hpp"

namespace koika::riscv {

int
parse_register(const std::string& name)
{
    static const std::map<std::string, int> abi = {
        {"zero", 0}, {"ra", 1},  {"sp", 2},  {"gp", 3},  {"tp", 4},
        {"t0", 5},   {"t1", 6},  {"t2", 7},  {"s0", 8},  {"fp", 8},
        {"s1", 9},   {"a0", 10}, {"a1", 11}, {"a2", 12}, {"a3", 13},
        {"a4", 14},  {"a5", 15}, {"a6", 16}, {"a7", 17}, {"s2", 18},
        {"s3", 19},  {"s4", 20}, {"s5", 21}, {"s6", 22}, {"s7", 23},
        {"s8", 24},  {"s9", 25}, {"s10", 26}, {"s11", 27}, {"t3", 28},
        {"t4", 29},  {"t5", 30}, {"t6", 31}};
    auto it = abi.find(name);
    if (it != abi.end())
        return it->second;
    if (name.size() >= 2 && name[0] == 'x') {
        int n = 0;
        for (size_t i = 1; i < name.size(); ++i) {
            if (!std::isdigit((unsigned char)name[i]))
                return -1;
            n = n * 10 + (name[i] - '0');
        }
        return n <= 31 ? n : -1;
    }
    return -1;
}

namespace {

struct Stmt
{
    int line;
    std::string mnemonic;
    std::vector<std::string> operands;
    uint32_t addr = 0;
};

[[noreturn]] void
err(int line, const std::string& msg)
{
    fatal("assembler: line %d: %s", line, msg.c_str());
}

bool
parse_int(const std::string& text, int64_t* out)
{
    if (text.empty())
        return false;
    size_t pos = 0;
    bool negate = false;
    if (text[0] == '-' || text[0] == '+') {
        negate = text[0] == '-';
        pos = 1;
    }
    if (pos >= text.size())
        return false;
    int base = 10;
    if (text.size() > pos + 2 && text[pos] == '0' &&
        (text[pos + 1] == 'x' || text[pos + 1] == 'X')) {
        base = 16;
        pos += 2;
    }
    int64_t value = 0;
    for (; pos < text.size(); ++pos) {
        char c = (char)std::tolower((unsigned char)text[pos]);
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (base == 16 && c >= 'a' && c <= 'f')
            digit = 10 + c - 'a';
        else
            return false;
        value = value * base + digit;
    }
    *out = negate ? -value : value;
    return true;
}

class Assembler
{
  public:
    Assembler(const std::string& source, uint32_t base)
        : source_(source)
    {
        program_.base = base;
    }

    Program
    run()
    {
        parse();
        layout();
        encode();
        return std::move(program_);
    }

  private:
    void
    parse()
    {
        std::istringstream is(source_);
        std::string text;
        int line = 0;
        while (std::getline(is, text)) {
            ++line;
            size_t hash = text.find('#');
            if (hash != std::string::npos)
                text = text.substr(0, hash);
            // Pull off any labels ("name:") at the start.
            for (;;) {
                size_t start = text.find_first_not_of(" \t");
                if (start == std::string::npos) {
                    text.clear();
                    break;
                }
                size_t colon = text.find(':');
                size_t word_end = text.find_first_of(" \t", start);
                if (colon != std::string::npos &&
                    (word_end == std::string::npos || colon < word_end)) {
                    std::string label =
                        text.substr(start, colon - start);
                    if (label.empty())
                        err(line, "empty label");
                    pending_labels_.push_back(label);
                    stmt_labels_.push_back((int)stmts_.size());
                    text = text.substr(colon + 1);
                } else {
                    break;
                }
            }
            // Tokenize the remaining statement.
            size_t start = text.find_first_not_of(" \t");
            if (start == std::string::npos)
                continue;
            size_t mn_end = text.find_first_of(" \t", start);
            Stmt s;
            s.line = line;
            s.mnemonic = text.substr(start, mn_end == std::string::npos
                                                ? std::string::npos
                                                : mn_end - start);
            if (mn_end != std::string::npos) {
                std::string rest = text.substr(mn_end);
                std::string token;
                for (char c : rest) {
                    if (c == ',' || c == '(' || c == ')' || c == ' ' ||
                        c == '\t') {
                        if (!token.empty()) {
                            s.operands.push_back(token);
                            token.clear();
                        }
                    } else {
                        token += c;
                    }
                }
                if (!token.empty())
                    s.operands.push_back(token);
            }
            stmts_.push_back(std::move(s));
        }
    }

    /** Number of words a statement expands to. */
    uint32_t
    stmt_words(const Stmt& s)
    {
        if (s.mnemonic == "li") {
            if (s.operands.size() != 2)
                err(s.line, "li needs 2 operands");
            int64_t imm;
            if (!parse_int(s.operands[1], &imm))
                err(s.line, "li needs a numeric immediate");
            return (imm >= -2048 && imm <= 2047) ? 1 : 2;
        }
        return 1;
    }

    void
    layout()
    {
        uint32_t addr = program_.base;
        size_t label_idx = 0;
        for (size_t i = 0; i < stmts_.size(); ++i) {
            while (label_idx < stmt_labels_.size() &&
                   stmt_labels_[label_idx] == (int)i) {
                program_.labels[pending_labels_[label_idx]] = addr;
                ++label_idx;
            }
            stmts_[i].addr = addr;
            addr += 4 * stmt_words(stmts_[i]);
        }
        while (label_idx < stmt_labels_.size()) {
            program_.labels[pending_labels_[label_idx]] = addr;
            ++label_idx;
        }
    }

    int
    reg_op(const Stmt& s, size_t i)
    {
        if (i >= s.operands.size())
            err(s.line, "missing register operand");
        int r = parse_register(s.operands[i]);
        if (r < 0)
            err(s.line, "bad register '" + s.operands[i] + "'");
        return r;
    }

    int64_t
    imm_op(const Stmt& s, size_t i, int64_t lo, int64_t hi)
    {
        if (i >= s.operands.size())
            err(s.line, "missing immediate operand");
        int64_t v;
        if (!parse_int(s.operands[i], &v)) {
            auto it = program_.labels.find(s.operands[i]);
            if (it == program_.labels.end())
                err(s.line, "bad immediate '" + s.operands[i] + "'");
            v = it->second;
        }
        if (v < lo || v > hi)
            err(s.line, "immediate out of range");
        return v;
    }

    /** Branch/jump target: label (PC-relative) or numeric offset. */
    int64_t
    target_op(const Stmt& s, size_t i)
    {
        if (i >= s.operands.size())
            err(s.line, "missing branch target");
        int64_t v;
        if (parse_int(s.operands[i], &v))
            return v;
        auto it = program_.labels.find(s.operands[i]);
        if (it == program_.labels.end())
            err(s.line, "unknown label '" + s.operands[i] + "'");
        return (int64_t)it->second - (int64_t)s.addr;
    }

    void
    emit(uint32_t word)
    {
        program_.words.push_back(word);
    }

    void
    encode()
    {
        for (const Stmt& s : stmts_)
            encode_stmt(s);
    }

    void
    encode_stmt(const Stmt& s)
    {
        const std::string& m = s.mnemonic;
        auto r = [&](size_t i) { return (uint32_t)reg_op(s, i); };

        // Directives.
        if (m == ".word") {
            emit((uint32_t)imm_op(s, 0, INT32_MIN, UINT32_MAX));
            return;
        }

        // R-type.
        static const std::map<std::string,
                              uint32_t (*)(uint32_t, uint32_t, uint32_t)>
            rtype = {{"add", add},   {"sub", sub},   {"sll", sll},
                     {"slt", slt},   {"sltu", sltu}, {"xor", xor_},
                     {"srl", srl},   {"sra", sra},   {"or", or_},
                     {"and", and_}};
        auto rt = rtype.find(m);
        if (rt != rtype.end()) {
            emit(rt->second(r(0), r(1), r(2)));
            return;
        }

        // I-type ALU.
        static const std::map<std::string,
                              uint32_t (*)(uint32_t, uint32_t, int32_t)>
            itype = {{"addi", addi}, {"slti", slti},   {"sltiu", sltiu},
                     {"xori", xori}, {"ori", ori},     {"andi", andi}};
        auto it = itype.find(m);
        if (it != itype.end()) {
            emit(it->second(r(0), r(1),
                            (int32_t)imm_op(s, 2, -2048, 2047)));
            return;
        }
        if (m == "slli" || m == "srli" || m == "srai") {
            uint32_t sh = (uint32_t)imm_op(s, 2, 0, 31);
            emit(m == "slli" ? slli(r(0), r(1), sh)
                 : m == "srli" ? srli(r(0), r(1), sh)
                               : srai(r(0), r(1), sh));
            return;
        }

        // Upper immediates.
        if (m == "lui" || m == "auipc") {
            int32_t imm = (int32_t)imm_op(s, 1, 0, 0xFFFFF);
            emit(m == "lui" ? lui(r(0), imm) : auipc(r(0), imm));
            return;
        }

        // Jumps.
        if (m == "jal") {
            if (s.operands.size() == 1)
                emit(jal(1, (int32_t)target_op(s, 0)));
            else
                emit(jal(r(0), (int32_t)target_op(s, 1)));
            return;
        }
        if (m == "jalr") {
            if (s.operands.size() == 1) {
                emit(jalr(1, r(0), 0));
            } else if (s.operands.size() == 2) {
                emit(jalr(r(0), r(1), 0));
            } else {
                // jalr rd, imm(rs1) tokenizes as rd, imm, rs1.
                int64_t imm;
                if (parse_int(s.operands[1], &imm))
                    emit(jalr(r(0), r(2), (int32_t)imm));
                else
                    emit(jalr(r(0), r(1),
                              (int32_t)imm_op(s, 2, -2048, 2047)));
            }
            return;
        }

        // Branches.
        static const std::map<std::string,
                              uint32_t (*)(uint32_t, uint32_t, int32_t)>
            btype = {{"beq", beq},   {"bne", bne},   {"blt", blt},
                     {"bge", bge},   {"bltu", bltu}, {"bgeu", bgeu}};
        auto bt = btype.find(m);
        if (bt != btype.end()) {
            emit(bt->second(r(0), r(1), (int32_t)target_op(s, 2)));
            return;
        }
        if (m == "ble") {
            emit(bge(r(1), r(0), (int32_t)target_op(s, 2)));
            return;
        }
        if (m == "bgt") {
            emit(blt(r(1), r(0), (int32_t)target_op(s, 2)));
            return;
        }
        if (m == "beqz") {
            emit(beq(r(0), 0, (int32_t)target_op(s, 1)));
            return;
        }
        if (m == "bnez") {
            emit(bne(r(0), 0, (int32_t)target_op(s, 1)));
            return;
        }

        // Loads and stores: "lw rd, imm(rs1)" tokenizes as rd, imm, rs1.
        static const std::map<std::string,
                              uint32_t (*)(uint32_t, uint32_t, int32_t)>
            loads = {{"lb", lb}, {"lh", lh}, {"lw", lw},
                     {"lbu", lbu}, {"lhu", lhu}};
        auto lt = loads.find(m);
        if (lt != loads.end()) {
            emit(lt->second(r(0), r(2),
                            (int32_t)imm_op(s, 1, -2048, 2047)));
            return;
        }
        static const std::map<std::string,
                              uint32_t (*)(uint32_t, uint32_t, int32_t)>
            stores = {{"sb", sb}, {"sh", sh}, {"sw", sw}};
        auto st = stores.find(m);
        if (st != stores.end()) {
            emit(st->second(r(0), r(2),
                            (int32_t)imm_op(s, 1, -2048, 2047)));
            return;
        }

        // Pseudo-instructions.
        if (m == "nop") {
            emit(nop());
            return;
        }
        if (m == "mv") {
            emit(addi(r(0), r(1), 0));
            return;
        }
        if (m == "not") {
            emit(xori(r(0), r(1), -1));
            return;
        }
        if (m == "neg") {
            emit(sub(r(0), 0, r(1)));
            return;
        }
        if (m == "j") {
            emit(jal(0, (int32_t)target_op(s, 0)));
            return;
        }
        if (m == "ret") {
            emit(jalr(0, 1, 0));
            return;
        }
        if (m == "call") {
            emit(jal(1, (int32_t)target_op(s, 0)));
            return;
        }
        if (m == "li") {
            int64_t imm = imm_op(s, 1, INT32_MIN, UINT32_MAX);
            if (imm >= -2048 && imm <= 2047) {
                emit(addi(r(0), 0, (int32_t)imm));
            } else {
                uint32_t u = (uint32_t)imm;
                uint32_t hi = (u + 0x800) >> 12;
                int32_t lo = (int32_t)(u & 0xFFF);
                if (lo >= 0x800)
                    lo -= 0x1000;
                emit(lui(r(0), (int32_t)(hi & 0xFFFFF)));
                emit(addi(r(0), r(0), lo));
            }
            return;
        }
        if (m == "ecall" || m == "halt") {
            emit(ecall());
            return;
        }

        err(s.line, "unknown mnemonic '" + m + "'");
    }

    const std::string& source_;
    Program program_;
    std::vector<Stmt> stmts_;
    std::vector<std::string> pending_labels_;
    std::vector<int> stmt_labels_;
};

} // namespace

Program
assemble(const std::string& source, uint32_t base)
{
    return Assembler(source, base).run();
}

} // namespace koika::riscv
