/**
 * @file
 * RV32I instruction encoders.
 *
 * The paper evaluates embedded cores running "a simple integer arithmetic
 * benchmark"; with no RISC-V cross-compiler available offline, this
 * module (with the assembler) is the from-scratch toolchain substrate
 * that produces those benchmark binaries. Encodings follow the RISC-V
 * unprivileged spec for RV32I minus system instructions (the subset the
 * paper's cores implement).
 */
#pragma once

#include <cstdint>

namespace koika::riscv {

// Instruction formats.
uint32_t enc_r(uint32_t opcode, uint32_t rd, uint32_t funct3, uint32_t rs1,
               uint32_t rs2, uint32_t funct7);
uint32_t enc_i(uint32_t opcode, uint32_t rd, uint32_t funct3, uint32_t rs1,
               int32_t imm);
uint32_t enc_s(uint32_t opcode, uint32_t funct3, uint32_t rs1, uint32_t rs2,
               int32_t imm);
uint32_t enc_b(uint32_t opcode, uint32_t funct3, uint32_t rs1, uint32_t rs2,
               int32_t imm);
uint32_t enc_u(uint32_t opcode, uint32_t rd, int32_t imm);
uint32_t enc_j(uint32_t opcode, uint32_t rd, int32_t imm);

// R-type ALU.
uint32_t add(uint32_t rd, uint32_t rs1, uint32_t rs2);
uint32_t sub(uint32_t rd, uint32_t rs1, uint32_t rs2);
uint32_t sll(uint32_t rd, uint32_t rs1, uint32_t rs2);
uint32_t slt(uint32_t rd, uint32_t rs1, uint32_t rs2);
uint32_t sltu(uint32_t rd, uint32_t rs1, uint32_t rs2);
uint32_t xor_(uint32_t rd, uint32_t rs1, uint32_t rs2);
uint32_t srl(uint32_t rd, uint32_t rs1, uint32_t rs2);
uint32_t sra(uint32_t rd, uint32_t rs1, uint32_t rs2);
uint32_t or_(uint32_t rd, uint32_t rs1, uint32_t rs2);
uint32_t and_(uint32_t rd, uint32_t rs1, uint32_t rs2);

// I-type ALU.
uint32_t addi(uint32_t rd, uint32_t rs1, int32_t imm);
uint32_t slti(uint32_t rd, uint32_t rs1, int32_t imm);
uint32_t sltiu(uint32_t rd, uint32_t rs1, int32_t imm);
uint32_t xori(uint32_t rd, uint32_t rs1, int32_t imm);
uint32_t ori(uint32_t rd, uint32_t rs1, int32_t imm);
uint32_t andi(uint32_t rd, uint32_t rs1, int32_t imm);
uint32_t slli(uint32_t rd, uint32_t rs1, uint32_t shamt);
uint32_t srli(uint32_t rd, uint32_t rs1, uint32_t shamt);
uint32_t srai(uint32_t rd, uint32_t rs1, uint32_t shamt);

// Upper immediates and jumps.
uint32_t lui(uint32_t rd, int32_t imm20);
uint32_t auipc(uint32_t rd, int32_t imm20);
uint32_t jal(uint32_t rd, int32_t offset);
uint32_t jalr(uint32_t rd, uint32_t rs1, int32_t imm);

// Branches (offset relative to the branch instruction).
uint32_t beq(uint32_t rs1, uint32_t rs2, int32_t offset);
uint32_t bne(uint32_t rs1, uint32_t rs2, int32_t offset);
uint32_t blt(uint32_t rs1, uint32_t rs2, int32_t offset);
uint32_t bge(uint32_t rs1, uint32_t rs2, int32_t offset);
uint32_t bltu(uint32_t rs1, uint32_t rs2, int32_t offset);
uint32_t bgeu(uint32_t rs1, uint32_t rs2, int32_t offset);

// Loads / stores.
uint32_t lb(uint32_t rd, uint32_t rs1, int32_t imm);
uint32_t lh(uint32_t rd, uint32_t rs1, int32_t imm);
uint32_t lw(uint32_t rd, uint32_t rs1, int32_t imm);
uint32_t lbu(uint32_t rd, uint32_t rs1, int32_t imm);
uint32_t lhu(uint32_t rd, uint32_t rs1, int32_t imm);
uint32_t sb(uint32_t rs2, uint32_t rs1, int32_t imm);
uint32_t sh(uint32_t rs2, uint32_t rs1, int32_t imm);
uint32_t sw(uint32_t rs2, uint32_t rs1, int32_t imm);

// System (used only as a halt marker by our cores).
uint32_t ecall();
uint32_t nop();

} // namespace koika::riscv
