#include "riscv/goldensim.hpp"

#include "base/error.hpp"

namespace koika::riscv {

GoldenSim::GoldenSim(size_t mem_bytes) : mem_(mem_bytes, 0) {}

void
GoldenSim::load(const Program& program)
{
    for (size_t i = 0; i < program.words.size(); ++i)
        write32(program.base + 4 * (uint32_t)i, program.words[i]);
    pc_ = program.base;
}

void
GoldenSim::set_reg(int i, uint32_t v)
{
    if (i != 0)
        regs_[(size_t)i] = v;
}

uint8_t
GoldenSim::read8(uint32_t addr) const
{
    if (addr >= mem_.size())
        fatal("golden sim: load from unmapped address 0x%x", addr);
    return mem_[addr];
}

void
GoldenSim::write8(uint32_t addr, uint8_t value)
{
    if (addr >= mem_.size())
        fatal("golden sim: store to unmapped address 0x%x", addr);
    mem_[addr] = value;
}

uint32_t
GoldenSim::read32(uint32_t addr) const
{
    return (uint32_t)read8(addr) | ((uint32_t)read8(addr + 1) << 8) |
           ((uint32_t)read8(addr + 2) << 16) |
           ((uint32_t)read8(addr + 3) << 24);
}

void
GoldenSim::write32(uint32_t addr, uint32_t value)
{
    write8(addr, (uint8_t)value);
    write8(addr + 1, (uint8_t)(value >> 8));
    write8(addr + 2, (uint8_t)(value >> 16));
    write8(addr + 3, (uint8_t)(value >> 24));
}

bool
GoldenSim::step()
{
    if (halted_)
        return false;
    uint32_t inst = read32(pc_);
    uint32_t opcode = inst & 0x7F;
    uint32_t rd = (inst >> 7) & 0x1F;
    uint32_t f3 = (inst >> 12) & 0x7;
    uint32_t rs1 = (inst >> 15) & 0x1F;
    uint32_t rs2 = (inst >> 20) & 0x1F;
    uint32_t f7 = inst >> 25;
    uint32_t v1 = regs_[rs1], v2 = regs_[rs2];
    int32_t imm_i = (int32_t)inst >> 20;
    int32_t imm_s = (int32_t)((inst >> 25) << 5 | ((inst >> 7) & 0x1F));
    if (inst & 0x80000000)
        imm_s |= (int32_t)0xFFFFF000;
    int32_t imm_b = (int32_t)((((inst >> 8) & 0xF) << 1) |
                              (((inst >> 25) & 0x3F) << 5) |
                              (((inst >> 7) & 1) << 11) |
                              (((inst >> 31) & 1) << 12));
    if (imm_b & 0x1000)
        imm_b |= (int32_t)0xFFFFE000;
    int32_t imm_j = (int32_t)((((inst >> 21) & 0x3FF) << 1) |
                              (((inst >> 20) & 1) << 11) |
                              (((inst >> 12) & 0xFF) << 12) |
                              (((inst >> 31) & 1) << 20));
    if (imm_j & 0x100000)
        imm_j |= (int32_t)0xFFE00000;

    uint32_t next_pc = pc_ + 4;
    uint32_t result = 0;
    bool writes_rd = false;

    switch (opcode) {
      case 0x33: { // OP
        writes_rd = true;
        switch (f3) {
          case 0: result = f7 == 0x20 ? v1 - v2 : v1 + v2; break;
          case 1: result = v1 << (v2 & 31); break;
          case 2: result = (int32_t)v1 < (int32_t)v2; break;
          case 3: result = v1 < v2; break;
          case 4: result = v1 ^ v2; break;
          case 5:
            result = f7 == 0x20 ? (uint32_t)((int32_t)v1 >> (v2 & 31))
                                : v1 >> (v2 & 31);
            break;
          case 6: result = v1 | v2; break;
          case 7: result = v1 & v2; break;
        }
        break;
      }
      case 0x13: { // OP-IMM
        writes_rd = true;
        uint32_t sh = rs2;
        switch (f3) {
          case 0: result = v1 + (uint32_t)imm_i; break;
          case 1: result = v1 << sh; break;
          case 2: result = (int32_t)v1 < imm_i; break;
          case 3: result = v1 < (uint32_t)imm_i; break;
          case 4: result = v1 ^ (uint32_t)imm_i; break;
          case 5:
            result = (inst >> 30) & 1
                         ? (uint32_t)((int32_t)v1 >> sh)
                         : v1 >> sh;
            break;
          case 6: result = v1 | (uint32_t)imm_i; break;
          case 7: result = v1 & (uint32_t)imm_i; break;
        }
        break;
      }
      case 0x37: // LUI
        writes_rd = true;
        result = inst & 0xFFFFF000;
        break;
      case 0x17: // AUIPC
        writes_rd = true;
        result = pc_ + (inst & 0xFFFFF000);
        break;
      case 0x6F: // JAL
        writes_rd = true;
        result = pc_ + 4;
        next_pc = pc_ + (uint32_t)imm_j;
        break;
      case 0x67: // JALR
        writes_rd = true;
        result = pc_ + 4;
        next_pc = (v1 + (uint32_t)imm_i) & ~1u;
        break;
      case 0x63: { // BRANCH
        bool taken = false;
        switch (f3) {
          case 0: taken = v1 == v2; break;
          case 1: taken = v1 != v2; break;
          case 4: taken = (int32_t)v1 < (int32_t)v2; break;
          case 5: taken = (int32_t)v1 >= (int32_t)v2; break;
          case 6: taken = v1 < v2; break;
          case 7: taken = v1 >= v2; break;
          default: fatal("golden sim: bad branch funct3 %u", f3);
        }
        if (taken)
            next_pc = pc_ + (uint32_t)imm_b;
        break;
      }
      case 0x03: { // LOAD
        writes_rd = true;
        uint32_t addr = v1 + (uint32_t)imm_i;
        switch (f3) {
          case 0: result = (uint32_t)(int32_t)(int8_t)read8(addr); break;
          case 1:
            result = (uint32_t)(int32_t)(int16_t)(
                read8(addr) | ((uint16_t)read8(addr + 1) << 8));
            break;
          case 2: result = read32(addr); break;
          case 4: result = read8(addr); break;
          case 5:
            result = read8(addr) | ((uint32_t)read8(addr + 1) << 8);
            break;
          default: fatal("golden sim: bad load funct3 %u", f3);
        }
        break;
      }
      case 0x23: { // STORE
        uint32_t addr = v1 + (uint32_t)imm_s;
        if (addr == kTohostAddr && f3 == 2) {
            tohost_.push_back(v2);
            break;
        }
        switch (f3) {
          case 0: write8(addr, (uint8_t)v2); break;
          case 1:
            write8(addr, (uint8_t)v2);
            write8(addr + 1, (uint8_t)(v2 >> 8));
            break;
          case 2: write32(addr, v2); break;
          default: fatal("golden sim: bad store funct3 %u", f3);
        }
        break;
      }
      case 0x73: // SYSTEM: halt marker
        halted_ = true;
        ++retired_;
        return false;
      default:
        fatal("golden sim: unsupported opcode 0x%x at pc 0x%x", opcode,
              pc_);
    }

    if (writes_rd && rd != 0)
        regs_[rd] = result;
    pc_ = next_pc;
    ++retired_;
    return true;
}

uint64_t
GoldenSim::run(uint64_t max_steps)
{
    uint64_t start = retired_;
    for (uint64_t i = 0; i < max_steps && step(); ++i) {
    }
    return retired_ - start;
}

} // namespace koika::riscv
