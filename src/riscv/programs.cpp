#include "riscv/programs.hpp"

#include <sstream>

namespace koika::riscv {

std::string
primes_source(uint32_t bound)
{
    std::ostringstream os;
    os << "# Sieve of Eratosthenes: count primes below " << bound << "\n";
    os << "# a0 = sieve base, a1 = bound, t-regs = scratch\n";
    os << "        li   a0, 0x1000       # sieve array (byte per n)\n";
    os << "        li   a1, " << bound << "\n";
    os << "# clear the sieve\n";
    os << "        mv   t0, a0\n";
    os << "        add  t1, a0, a1\n";
    os << "clear:  sb   zero, 0(t0)\n";
    os << "        addi t0, t0, 1\n";
    os << "        blt  t0, t1, clear\n";
    os << "# main sieve loop: for i in 2..bound\n";
    os << "        li   t0, 2            # i\n";
    os << "outer:  bge  t0, a1, done\n";
    os << "        add  t2, a0, t0\n";
    os << "        lbu  a2, 0(t2)\n";
    os << "        bnez a2, next         # composite, skip\n";
    os << "# mark multiples: j = i + i; while j < bound: sieve[j] = 1\n";
    os << "        add  a3, t0, t0\n";
    os << "mark:   bge  a3, a1, next\n";
    os << "        add  a4, a0, a3\n";
    os << "        li   a5, 1\n";
    os << "        sb   a5, 0(a4)\n";
    os << "        add  a3, a3, t0\n";
    os << "        j    mark\n";
    os << "next:   addi t0, t0, 1\n";
    os << "        j    outer\n";
    os << "# count zeros in sieve[2..bound)\n";
    os << "done:   li   t0, 2\n";
    os << "        li   s0, 0            # count\n";
    os << "count:  bge  t0, a1, report\n";
    os << "        add  t2, a0, t0\n";
    os << "        lbu  a2, 0(t2)\n";
    os << "        bnez a2, skip\n";
    os << "        addi s0, s0, 1\n";
    os << "skip:   addi t0, t0, 1\n";
    os << "        j    count\n";
    os << "report: li   t1, 0x40000000   # tohost\n";
    os << "        sw   s0, 0(t1)\n";
    os << "        ecall\n";
    return os.str();
}

uint32_t
primes_below(uint32_t bound)
{
    if (bound < 3)
        return 0;
    std::vector<bool> composite(bound, false);
    uint32_t count = 0;
    for (uint32_t i = 2; i < bound; ++i) {
        if (composite[i])
            continue;
        ++count;
        for (uint32_t j = i + i; j < bound; j += i)
            composite[j] = true;
    }
    return count;
}

std::string
nops_source(unsigned n)
{
    std::ostringstream os;
    os << "# " << n << " NOPs (ADDI x0, x0, 0): case study 3 workload\n";
    for (unsigned i = 0; i < n; ++i)
        os << "        nop\n";
    os << "        li   t1, 0x40000000\n";
    os << "        li   t2, 0xD05E\n";
    os << "        sw   t2, 0(t1)\n";
    os << "        ecall\n";
    return os.str();
}

std::string
branchy_source(uint32_t iterations)
{
    std::ostringstream os;
    os << "# Branch-heavy kernel: data-dependent taken/not-taken mix.\n";
    os << "        li   s0, 0            # checksum\n";
    os << "        li   t0, 0            # i\n";
    os << "        li   t1, " << iterations << "\n";
    os << "loop:   andi t2, t0, 1\n";
    os << "        beqz t2, even\n";
    os << "        addi s0, s0, 3\n";
    os << "        j    join1\n";
    os << "even:   addi s0, s0, 1\n";
    os << "join1:  andi t2, t0, 7\n";
    os << "        bnez t2, common       # taken 7/8 of the time\n";
    os << "        slli s0, s0, 1\n";
    os << "        srli s0, s0, 1\n";
    os << "common: andi t2, t0, 3\n";
    os << "        addi a3, zero, 2\n";
    os << "        blt  t2, a3, low\n";
    os << "        xori s0, s0, 0x55\n";
    os << "        j    join2\n";
    os << "low:    xori s0, s0, 0x2A\n";
    os << "join2:  addi t0, t0, 1\n";
    os << "        blt  t0, t1, loop\n";
    os << "        li   t1, 0x40000000\n";
    os << "        sw   s0, 0(t1)\n";
    os << "        ecall\n";
    return os.str();
}

std::string
chained_source(uint32_t iterations)
{
    std::ostringstream os;
    os << "# Back-to-back dependent ALU ops (RAW hazards galore).\n";
    os << "        li   s0, 1\n";
    os << "        li   t0, 0\n";
    os << "        li   t1, " << iterations << "\n";
    os << "loop:   addi s0, s0, 7\n";
    os << "        xori s0, s0, 0x111\n";
    os << "        slli s1, s0, 3\n";
    os << "        add  s0, s0, s1\n";
    os << "        srli s1, s0, 2\n";
    os << "        sub  s0, s0, s1\n";
    os << "        addi t0, t0, 1\n";
    os << "        blt  t0, t1, loop\n";
    os << "        li   t1, 0x40000000\n";
    os << "        sw   s0, 0(t1)\n";
    os << "        ecall\n";
    return os.str();
}

Program
build_program(const std::string& source)
{
    return assemble(source, 0);
}

} // namespace koika::riscv
