/**
 * @file
 * Benchmark and case-study programs, written in RV32I assembly.
 *
 * - primes: the paper's "simple integer arithmetic benchmark" (§4.1) —
 *   a sieve of Eratosthenes counting primes below a bound, reporting the
 *   count through tohost before halting.
 * - nops: case study 3's workload — N NOPs, used to expose the x0
 *   scoreboard dependency bug (100 NOPs should take ~100+fill cycles,
 *   203 with the bug).
 * - branchy: case study 4's workload — a loop with data-dependent
 *   branches that a BTB+BHT predictor captures well but "PC+4" does not.
 * - chained: back-to-back dependent arithmetic, exposing scoreboard
 *   stalls due to missing bypass paths (discussed in case study 4).
 */
#pragma once

#include <string>

#include "riscv/assembler.hpp"

namespace koika::riscv {

/** Sieve of Eratosthenes; writes the prime count to tohost and halts. */
std::string primes_source(uint32_t bound = 1000);

/** The expected prime count for a bound (for checking results). */
uint32_t primes_below(uint32_t bound);

/** n NOPs, then writes the marker 0xD05E to tohost and halts. */
std::string nops_source(unsigned n = 100);

/** Branch-heavy loop; writes a checksum to tohost and halts. */
std::string branchy_source(uint32_t iterations = 5000);

/** Long chains of dependent ALU ops; writes a result and halts. */
std::string chained_source(uint32_t iterations = 1000);

/** Assemble one of the above at the standard code base (0x0). */
Program build_program(const std::string& source);

} // namespace koika::riscv
