/**
 * @file
 * Golden RV32I instruction-set simulator.
 *
 * The functional reference for the pipelined cores in src/designs/rv32:
 * every Kôika core is validated instruction-for-instruction against this
 * simulator (final architectural state and tohost output must match).
 * Implements RV32I minus system instructions; `ecall` halts, and a store
 * to kTohostAddr appends to the tohost stream (the same conventions the
 * cores and their memory peripheral use).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "riscv/assembler.hpp"

namespace koika::riscv {

class GoldenSim
{
  public:
    static constexpr uint32_t kTohostAddr = 0x40000000;

    explicit GoldenSim(size_t mem_bytes = 1 << 16);

    void load(const Program& program);

    /** Execute one instruction; false once halted. */
    bool step();
    /** Run up to max_steps; returns instructions retired. */
    uint64_t run(uint64_t max_steps);

    bool halted() const { return halted_; }
    uint32_t pc() const { return pc_; }
    uint32_t reg(int i) const { return regs_[(size_t)i]; }
    void set_reg(int i, uint32_t v);
    uint64_t instructions_retired() const { return retired_; }

    const std::vector<uint32_t>& tohost() const { return tohost_; }

    uint32_t read32(uint32_t addr) const;
    void write32(uint32_t addr, uint32_t value);
    const std::vector<uint8_t>& memory() const { return mem_; }

  private:
    uint8_t read8(uint32_t addr) const;
    void write8(uint32_t addr, uint8_t value);

    std::vector<uint8_t> mem_;
    uint32_t regs_[32] = {};
    uint32_t pc_ = 0;
    bool halted_ = false;
    uint64_t retired_ = 0;
    std::vector<uint32_t> tohost_;
};

} // namespace koika::riscv
