#include "riscv/encoding.hpp"

namespace koika::riscv {

namespace {
constexpr uint32_t kOpImm = 0x13;
constexpr uint32_t kOp = 0x33;
constexpr uint32_t kLui = 0x37;
constexpr uint32_t kAuipc = 0x17;
constexpr uint32_t kJal = 0x6F;
constexpr uint32_t kJalr = 0x67;
constexpr uint32_t kBranch = 0x63;
constexpr uint32_t kLoad = 0x03;
constexpr uint32_t kStore = 0x23;
constexpr uint32_t kSystem = 0x73;
} // namespace

uint32_t
enc_r(uint32_t opcode, uint32_t rd, uint32_t funct3, uint32_t rs1,
      uint32_t rs2, uint32_t funct7)
{
    return opcode | (rd << 7) | (funct3 << 12) | (rs1 << 15) |
           (rs2 << 20) | (funct7 << 25);
}

uint32_t
enc_i(uint32_t opcode, uint32_t rd, uint32_t funct3, uint32_t rs1,
      int32_t imm)
{
    return opcode | (rd << 7) | (funct3 << 12) | (rs1 << 15) |
           (((uint32_t)imm & 0xFFF) << 20);
}

uint32_t
enc_s(uint32_t opcode, uint32_t funct3, uint32_t rs1, uint32_t rs2,
      int32_t imm)
{
    uint32_t u = (uint32_t)imm;
    return opcode | ((u & 0x1F) << 7) | (funct3 << 12) | (rs1 << 15) |
           (rs2 << 20) | (((u >> 5) & 0x7F) << 25);
}

uint32_t
enc_b(uint32_t opcode, uint32_t funct3, uint32_t rs1, uint32_t rs2,
      int32_t imm)
{
    uint32_t u = (uint32_t)imm;
    return opcode | (((u >> 11) & 1) << 7) | (((u >> 1) & 0xF) << 8) |
           (funct3 << 12) | (rs1 << 15) | (rs2 << 20) |
           (((u >> 5) & 0x3F) << 25) | (((u >> 12) & 1) << 31);
}

uint32_t
enc_u(uint32_t opcode, uint32_t rd, int32_t imm)
{
    return opcode | (rd << 7) | (((uint32_t)imm & 0xFFFFF) << 12);
}

uint32_t
enc_j(uint32_t opcode, uint32_t rd, int32_t imm)
{
    uint32_t u = (uint32_t)imm;
    return opcode | (rd << 7) | (((u >> 12) & 0xFF) << 12) |
           (((u >> 11) & 1) << 20) | (((u >> 1) & 0x3FF) << 21) |
           (((u >> 20) & 1) << 31);
}

uint32_t add(uint32_t rd, uint32_t rs1, uint32_t rs2) { return enc_r(kOp, rd, 0, rs1, rs2, 0); }
uint32_t sub(uint32_t rd, uint32_t rs1, uint32_t rs2) { return enc_r(kOp, rd, 0, rs1, rs2, 0x20); }
uint32_t sll(uint32_t rd, uint32_t rs1, uint32_t rs2) { return enc_r(kOp, rd, 1, rs1, rs2, 0); }
uint32_t slt(uint32_t rd, uint32_t rs1, uint32_t rs2) { return enc_r(kOp, rd, 2, rs1, rs2, 0); }
uint32_t sltu(uint32_t rd, uint32_t rs1, uint32_t rs2) { return enc_r(kOp, rd, 3, rs1, rs2, 0); }
uint32_t xor_(uint32_t rd, uint32_t rs1, uint32_t rs2) { return enc_r(kOp, rd, 4, rs1, rs2, 0); }
uint32_t srl(uint32_t rd, uint32_t rs1, uint32_t rs2) { return enc_r(kOp, rd, 5, rs1, rs2, 0); }
uint32_t sra(uint32_t rd, uint32_t rs1, uint32_t rs2) { return enc_r(kOp, rd, 5, rs1, rs2, 0x20); }
uint32_t or_(uint32_t rd, uint32_t rs1, uint32_t rs2) { return enc_r(kOp, rd, 6, rs1, rs2, 0); }
uint32_t and_(uint32_t rd, uint32_t rs1, uint32_t rs2) { return enc_r(kOp, rd, 7, rs1, rs2, 0); }

uint32_t addi(uint32_t rd, uint32_t rs1, int32_t imm) { return enc_i(kOpImm, rd, 0, rs1, imm); }
uint32_t slti(uint32_t rd, uint32_t rs1, int32_t imm) { return enc_i(kOpImm, rd, 2, rs1, imm); }
uint32_t sltiu(uint32_t rd, uint32_t rs1, int32_t imm) { return enc_i(kOpImm, rd, 3, rs1, imm); }
uint32_t xori(uint32_t rd, uint32_t rs1, int32_t imm) { return enc_i(kOpImm, rd, 4, rs1, imm); }
uint32_t ori(uint32_t rd, uint32_t rs1, int32_t imm) { return enc_i(kOpImm, rd, 6, rs1, imm); }
uint32_t andi(uint32_t rd, uint32_t rs1, int32_t imm) { return enc_i(kOpImm, rd, 7, rs1, imm); }
uint32_t slli(uint32_t rd, uint32_t rs1, uint32_t shamt) { return enc_i(kOpImm, rd, 1, rs1, (int32_t)shamt); }
uint32_t srli(uint32_t rd, uint32_t rs1, uint32_t shamt) { return enc_i(kOpImm, rd, 5, rs1, (int32_t)shamt); }
uint32_t srai(uint32_t rd, uint32_t rs1, uint32_t shamt) { return enc_i(kOpImm, rd, 5, rs1, (int32_t)(shamt | 0x400)); }

uint32_t lui(uint32_t rd, int32_t imm20) { return enc_u(kLui, rd, imm20); }
uint32_t auipc(uint32_t rd, int32_t imm20) { return enc_u(kAuipc, rd, imm20); }
uint32_t jal(uint32_t rd, int32_t offset) { return enc_j(kJal, rd, offset); }
uint32_t jalr(uint32_t rd, uint32_t rs1, int32_t imm) { return enc_i(kJalr, rd, 0, rs1, imm); }

uint32_t beq(uint32_t rs1, uint32_t rs2, int32_t offset) { return enc_b(kBranch, 0, rs1, rs2, offset); }
uint32_t bne(uint32_t rs1, uint32_t rs2, int32_t offset) { return enc_b(kBranch, 1, rs1, rs2, offset); }
uint32_t blt(uint32_t rs1, uint32_t rs2, int32_t offset) { return enc_b(kBranch, 4, rs1, rs2, offset); }
uint32_t bge(uint32_t rs1, uint32_t rs2, int32_t offset) { return enc_b(kBranch, 5, rs1, rs2, offset); }
uint32_t bltu(uint32_t rs1, uint32_t rs2, int32_t offset) { return enc_b(kBranch, 6, rs1, rs2, offset); }
uint32_t bgeu(uint32_t rs1, uint32_t rs2, int32_t offset) { return enc_b(kBranch, 7, rs1, rs2, offset); }

uint32_t lb(uint32_t rd, uint32_t rs1, int32_t imm) { return enc_i(kLoad, rd, 0, rs1, imm); }
uint32_t lh(uint32_t rd, uint32_t rs1, int32_t imm) { return enc_i(kLoad, rd, 1, rs1, imm); }
uint32_t lw(uint32_t rd, uint32_t rs1, int32_t imm) { return enc_i(kLoad, rd, 2, rs1, imm); }
uint32_t lbu(uint32_t rd, uint32_t rs1, int32_t imm) { return enc_i(kLoad, rd, 4, rs1, imm); }
uint32_t lhu(uint32_t rd, uint32_t rs1, int32_t imm) { return enc_i(kLoad, rd, 5, rs1, imm); }
uint32_t sb(uint32_t rs2, uint32_t rs1, int32_t imm) { return enc_s(kStore, 0, rs1, rs2, imm); }
uint32_t sh(uint32_t rs2, uint32_t rs1, int32_t imm) { return enc_s(kStore, 1, rs1, rs2, imm); }
uint32_t sw(uint32_t rs2, uint32_t rs1, int32_t imm) { return enc_s(kStore, 2, rs1, rs2, imm); }

uint32_t ecall() { return enc_i(kSystem, 0, 0, 0, 0); }
uint32_t nop() { return addi(0, 0, 0); }

} // namespace koika::riscv
