/**
 * @file
 * Design coverage as a first-class, engine-agnostic observability
 * artifact (case study 4, promoted to a subsystem).
 *
 * The paper's observation is that a Cuttlesim model matches the source
 * design nearly line by line, so plain code coverage *is* detailed
 * architectural statistics at zero hardware cost. This module makes
 * that uniform across every engine:
 *
 *   - CoverageMap: statement counts (per classified AST node), branch
 *     outcome counts (taken/not-taken per `if`/`guard`), per-rule
 *     commit/abort counts, and per-bit register toggle counts
 *     (0→1 rises and 1→0 falls). Persisted as a versioned
 *     "cuttlesim-cov-v1" JSON database; `merge()` is commutative
 *     element-wise addition, so sharded producers (fault campaigns,
 *     fuzz trials, bench reps under --jobs=N) accumulate coverage
 *     byte-identically to a serial run.
 *   - CoverageCollector: harvests a CoverageMap from any sim::Model.
 *     Statement/branch counts come from the CoverageModel mixin
 *     (tier engines, the reference interpreter, instrumented generated
 *     models), masked through analysis::coverage_points so engines
 *     that count every visited node and engines that only instrument
 *     statement points report identical databases. Rule activity comes
 *     from RuleStatsModel; toggles are computed here by diffing
 *     committed state across cycles, which works on every engine.
 *   - lcov_export: renders the map as an LCOV .info file over a
 *     generated pseudo-source listing, so standard tooling (genhtml)
 *     produces browsable reports.
 *
 * The database deliberately contains only exact integers (no wall-clock
 * and no floats), which is what makes `--jobs=1` vs `--jobs=8` and
 * repeated runs byte-comparable. Percentages live in summaries
 * (`summary_json`), which feed `--stats=` and BENCH_*.json.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/coverage_points.hpp"
#include "koika/design.hpp"
#include "obs/json.hpp"
#include "sim/model.hpp"
#include "sim/state.hpp"

namespace koika::obs {

class CoverageMap
{
  public:
    /** The database schema tag ("cuttlesim-cov-v1"). */
    static const char* schema();

    CoverageMap() = default;

    /**
     * An all-zero map shaped for `design`: dense per-node count
     * vectors, one rule entry per rule, one toggle entry per register.
     */
    static CoverageMap for_design(const Design& design);

    // -- Identity and shape (merge() requires these to agree). --------
    std::string design;
    uint64_t nodes = 0;        ///< AST node count (vector lengths).
    uint64_t stmt_points = 0;  ///< Classified statement points.
    uint64_t branch_points = 0; ///< Classified branch points.
    uint64_t toggle_bits = 0;  ///< Total register bits.

    // -- Accumulated counts. -------------------------------------------
    uint64_t cycles = 0;
    /** Engines that contributed (sorted, unique). */
    std::vector<std::string> engines;
    std::vector<uint64_t> stmt_count;       ///< [node id]
    std::vector<uint64_t> branch_taken;     ///< [node id]
    std::vector<uint64_t> branch_not_taken; ///< [node id]

    struct RuleCov
    {
        std::string name;
        uint64_t commits = 0;
        uint64_t aborts = 0;
    };
    std::vector<RuleCov> rules;

    struct RegToggles
    {
        std::string name;
        uint32_t width = 0;
        std::vector<uint64_t> rise; ///< [bit] 0→1 transitions.
        std::vector<uint64_t> fall; ///< [bit] 1→0 transitions.
    };
    std::vector<RegToggles> regs;

    /** Record a contributing engine (kept sorted and unique). */
    void add_engine(const std::string& engine);

    /**
     * Fold `other` into this map: counts add element-wise, cycles add,
     * engine sets union. Addition is commutative and associative, so
     * any merge order over the same shards produces the same database.
     * Raises FatalError when the maps describe different designs or
     * shapes (the guard against merging unrelated databases).
     */
    void merge(const CoverageMap& other);

    // -- Summary (percentages; for --stats= and bench reports). --------
    struct Summary
    {
        uint64_t stmt_points = 0, stmt_covered = 0;
        uint64_t branch_outcomes = 0, branch_outcomes_covered = 0;
        uint64_t toggle_dirs = 0, toggle_dirs_covered = 0;
        std::vector<std::string> uncovered_rules; ///< Never committed.
    };
    Summary summary() const;
    /** The summary block embedded in SimStats ("coverage": {...}). */
    Json summary_json() const;

    // -- Persistence. --------------------------------------------------
    Json to_json() const;
    static CoverageMap from_json(const Json& j);
    /** Write the database (pretty-printed, trailing newline). */
    void save(const std::string& path) const;
    /** Read and validate a database; FatalError on any problem. */
    static CoverageMap load(const std::string& path);
};

/**
 * Harvest coverage from a live model. Construct before running (the
 * constructor snapshots initial state and enables CoverageModel
 * collection when the engine supports it), call sample() after every
 * cycle() (toggle accounting), then take() once at the end.
 */
class CoverageCollector
{
  public:
    CoverageCollector(const Design& design, sim::Model& model);

    /** Account register toggles for the cycle that just ran. */
    void sample();

    /** Build the final map; `engine` names the contributing engine. */
    CoverageMap take(const std::string& engine) const;

    /**
     * Checkpoint hooks for the collector's own accumulators (toggle
     * counts and sampled-cycle tally). Statement/branch counts live in
     * the engine and are checkpointed there; `prev_` is re-snapshotted
     * by the constructor, so build the collector only after restoring
     * the model.
     */
    void save_state(sim::StateWriter& w) const;
    void load_state(sim::StateReader& r);

  private:
    const Design& d_;
    sim::Model& m_;
    sim::CoverageModel* cov_ = nullptr;
    std::vector<analysis::CoverKind> kinds_;
    std::vector<Bits> prev_;
    std::vector<std::vector<uint64_t>> rise_, fall_;
    uint64_t cycles_ = 0;
};

/** LCOV rendering of a CoverageMap (see lcov_export). */
struct LcovReport
{
    /** Pseudo-source listing the .info refers to (one statement per
     *  line, laid out exactly like the classifier walks rule bodies). */
    std::string listing;
    /** LCOV tracefile contents (genhtml-compatible). */
    std::string info;
};

/**
 * Render `map` as LCOV over a generated listing of `design`;
 * `source_path` is the path recorded on the SF: line (where the caller
 * will write `listing`).
 */
LcovReport lcov_export(const Design& design, const CoverageMap& map,
                       const std::string& source_path);

} // namespace koika::obs
