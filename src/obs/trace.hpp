/**
 * @file
 * TraceWriter: Chrome trace-event (Perfetto-compatible) rule activity
 * traces.
 *
 * Each simulated cycle maps to one microsecond of trace time and each
 * rule to one "thread", so opening the output in https://ui.perfetto.dev
 * (or chrome://tracing) shows a swim lane per rule: a 1 µs duration slice
 * when the rule committed that cycle, and an instant event annotated with
 * the abort reason when it aborted. This is the visual form of the
 * paper's performance-debugging case study (§6, case study 3): "why does
 * my design stutter" becomes a glanceable gap in the lanes.
 *
 * Events are streamed — the writer never buffers more than one event, so
 * long simulations trace in O(1) memory. JSON validity is guaranteed by
 * finish() (also called from the destructor).
 */
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/model.hpp"

namespace koika::obs {

class TraceWriter
{
  public:
    /**
     * Start a trace of rules named `rule_names` (lane order). `process`
     * labels the trace's single process, e.g. the design name.
     */
    TraceWriter(std::ostream& out, std::vector<std::string> rule_names,
                std::string process = "koika");

    ~TraceWriter();

    TraceWriter(const TraceWriter&) = delete;
    TraceWriter& operator=(const TraceWriter&) = delete;

    /**
     * Record the model's most recent cycle (call after each cycle()).
     * Reads fired() for commits and the abort-reason count deltas for
     * aborts; the model's rule order must match `rule_names`.
     */
    void sample(const sim::RuleStatsModel& model);

    /**
     * Record one cycle explicitly (engine-agnostic path): `fired[r]`
     * per rule, plus (optionally) the abort reason of each non-fired
     * rule that aborted this cycle (nullptr entries mean "did not run"
     * and produce no event).
     */
    void record_cycle(const std::vector<bool>& fired,
                      const std::vector<const char*>& abort_reasons);

    /** Close the JSON document. Idempotent. */
    void finish();

    uint64_t cycles_recorded() const { return cycle_; }

  private:
    void emit(const std::string& event);
    void emit_metadata();

    std::ostream& out_;
    std::vector<std::string> rule_names_;
    std::string process_;
    uint64_t cycle_ = 0;
    bool first_ = true;
    bool finished_ = false;
    /** Previous abort/abort-reason counters, for per-cycle deltas. */
    std::vector<uint64_t> prev_aborts_;
    std::vector<uint64_t> prev_reasons_;
};

} // namespace koika::obs
