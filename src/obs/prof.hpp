/**
 * @file
 * Host-side wall-clock span profiler.
 *
 * Everything else in src/obs/ observes *simulated* time (rule commits,
 * abort reasons, coverage). This module observes the toolchain itself:
 * where the host's wall-clock seconds go when a campaign, bench, or
 * cuttlec invocation runs — per-trial model construction, compile
 * forks, cache probes, pool queue-wait, report merging. It exists to
 * turn "jobs=hw is only 1.05x faster" from a mystery into an
 * attributed measurement (ROADMAP item 2).
 *
 * Design:
 *
 *   - ProfScope is an RAII timer. When the process-wide Profiler is
 *     disabled (the default), constructing one costs a single relaxed
 *     atomic load — cheap enough to leave in hot-ish paths like the
 *     thread pool's per-item dispatch. When enabled, the scope records
 *     one ProfSpan (phase name, start, duration, nesting depth) into a
 *     lock-free thread-local buffer at destruction.
 *   - Span buffers are chunked singly-linked lists: the owning thread
 *     appends and publishes a span count with a release store; readers
 *     (report/trace flushers) walk the committed prefix with an acquire
 *     load. No locks on the record path, no reallocation races.
 *   - Phase names are '/'-separated paths (the same convention as
 *     MetricsRegistry), so reports are hierarchical by construction:
 *     "trial/setup", "compile/cache-probe", "pool/item".
 *   - Two exporters: trace_json() renders a Chrome trace-event /
 *     Perfetto host timeline (one lane per thread, one slice per span
 *     — the host-side twin of obs::TraceWriter's simulated-time view),
 *     and report() builds the versioned `cuttlesim-prof-v1` summary
 *     (per-phase total/count/mean/max, per-worker busy vs. idle, pool
 *     utilization) that cuttlec --profile= writes and every
 *     BENCH_*.json embeds. Report structure is deterministic: phases
 *     and workers are sorted by name and same-named worker threads
 *     (pool generations reuse "worker-NNN") are merged, so the report
 *     is structurally identical at any --jobs value.
 *
 * Concurrency contract: record() (via ProfScope) is safe from any
 * thread at any time. enable()/reset() must run while no other thread
 * is recording (in practice: before pools spin up or after they join —
 * every pool in this repo is joined before its caller returns).
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace koika::obs {

/** How a span counts in the busy/idle ledger. */
enum class SpanKind : uint8_t {
    /** Productive work: counts toward its worker's busy time. */
    kWork = 0,
    /** Measured idleness (queue wait): excluded from the phase table so
     *  the report's phase set does not depend on --jobs; surfaces as
     *  the worker's wait_seconds instead. */
    kIdle = 1,
};

/** One recorded interval on one thread. */
struct ProfSpan
{
    /** Phase path; must outlive the profiler (string literal or
     *  Profiler::intern result). */
    const char* phase;
    /** Start, nanoseconds since the profiler epoch. */
    uint64_t start_ns;
    uint64_t dur_ns;
    /** ProfScope nesting depth on the recording thread (0 = top level;
     *  only depth-0 kWork spans count as busy, so nested attribution
     *  never double-counts utilization). */
    uint32_t depth;
    SpanKind kind;
};

class Profiler
{
  public:
    /** Per-thread span storage (opaque; defined in prof.cpp). */
    struct ThreadBuf;

    /** The process-wide profiler (never destroyed). */
    static Profiler& instance();

    /** Arm recording and restart the epoch. Quiescence required. */
    void enable();
    void disable();
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Monotonic count of enable() calls. Long-lived threads (pool
     * workers) cache this alongside their lane name: when the profiler
     * is re-enabled mid-flight the generation moves, telling the worker
     * its naming may predate the current recording epoch and should be
     * re-asserted. Starts at 0 (never enabled).
     */
    uint64_t
    enable_generation() const
    {
        return enable_gen_.load(std::memory_order_relaxed);
    }

    /** Nanoseconds since the profiler epoch (monotonic). */
    uint64_t now_ns() const;

    /**
     * Name the calling thread's lane ("main", "worker-003"). Creates
     * the thread buffer if needed and sticks even while the profiler is
     * disabled (buffers are immortal, so a name set before enable() is
     * what the eventual report sees). Threads that record without
     * naming themselves appear as "thread-<index>".
     */
    void set_thread_name(const std::string& name);

    /** Copy a dynamic phase name into stable storage. */
    const char* intern(const std::string& phase);

    /** Append one span to the calling thread's buffer. */
    void record(const char* phase, uint64_t start_ns, uint64_t end_ns,
                uint32_t depth, SpanKind kind);

    // -- Reporting -----------------------------------------------------------

    struct PhaseStats
    {
        uint64_t count = 0;
        double total_seconds = 0;
        double max_seconds = 0;
        double
        mean_seconds() const
        {
            return count ? total_seconds / (double)count : 0.0;
        }
    };

    struct WorkerStats
    {
        std::string name;
        uint64_t spans = 0;
        /** Sum of depth-0 kWork spans on this thread. */
        double busy_seconds = 0;
        /** Sum of kIdle spans (measured queue wait). */
        double wait_seconds = 0;
        /** wall - busy, clamped at 0 (includes wait_seconds). */
        double idle_seconds = 0;
        /** busy / wall. */
        double utilization = 0;
    };

    /** The cuttlesim-prof-v1 summary (see docs/OBSERVABILITY.md). */
    struct Report
    {
        double wall_seconds = 0;
        /** Sorted by phase path; kIdle spans excluded. */
        std::map<std::string, PhaseStats> phases;
        /** Sorted by worker name; same-named threads merged. */
        std::vector<WorkerStats> workers;
        double pool_busy_seconds = 0;
        double pool_idle_seconds = 0;
        /** sum(busy) / (workers * wall). */
        double pool_utilization = 0;

        Json to_json() const;
        std::string to_text() const;
        /**
         * Mirror into a MetricsRegistry under `prefix`:
         * <prefix>/phase/<path>/{count,total_seconds,max_seconds},
         * <prefix>/worker/<name>/{busy_seconds,utilization},
         * <prefix>/pool/utilization. Counter/gauge names are a pure
         * function of the span structure, so per-shard registries merge
         * deterministically like coverage databases do.
         */
        void export_to(MetricsRegistry& registry,
                       const std::string& prefix) const;
    };

    /** Snapshot everything recorded so far (safe while recording). */
    Report report() const;

    /** Spans of one thread, for incremental export (telemetry). */
    struct ThreadSpans
    {
        std::string thread;
        std::vector<ProfSpan> spans;
    };

    /**
     * Incremental span export for the fleet telemetry pipeline
     * (src/obs/telemetry.hpp): return every span committed since the
     * last call with the same cursor map, grouped by thread name, and
     * advance the cursors. Safe while recording (reads the committed
     * prefix like report()); a fresh cursor map drains from the start.
     * Threads with no new spans are omitted.
     */
    std::vector<ThreadSpans>
    drain_since(std::map<const void*, uint64_t>& cursors) const;

    /**
     * The profiler epoch as raw CLOCK_MONOTONIC/steady_clock
     * nanoseconds. The monotonic clock is machine-wide, so publishing
     * this value lets another process on the same host translate this
     * process's span timestamps into its own profiler timeline — the
     * clock-alignment key for merging multi-process telemetry.
     */
    uint64_t epoch_monotonic_ns() const;

    /** Total kWork seconds recorded for one phase path so far. */
    double phase_total_seconds(const std::string& phase) const;

    /**
     * Running sum of depth-0 kWork seconds across all threads — an O(1)
     * aggregate for progress heartbeats (utilization without walking
     * the span buffers).
     */
    double busy_seconds() const;

    /**
     * Chrome trace-event JSON of the host timeline: one "thread" lane
     * per recorded thread, one "X" slice per span (ts/dur in
     * microseconds). Open in https://ui.perfetto.dev.
     */
    std::string trace_json() const;

    /** Drop all spans and restart the epoch. Quiescence required. */
    void reset();

  private:
    Profiler();
    ThreadBuf& local_buf();
    /** Committed spans of `buf`, oldest first. */
    static void snapshot(const ThreadBuf& buf,
                         std::vector<ProfSpan>& out);

    std::atomic<bool> enabled_{false};
    std::atomic<uint64_t> enable_gen_{0};
    std::atomic<uint64_t> busy_ns_{0};
    std::atomic<int64_t> epoch_ns_{0};
    mutable std::mutex mutex_; ///< buffer registry + interned names
    std::vector<ThreadBuf*> bufs_;
    std::vector<std::string>* interned_;
};

/**
 * RAII span: times from construction to close()/destruction and
 * records into the calling thread's buffer. Near-free when the
 * profiler is disabled.
 */
class ProfScope
{
  public:
    explicit ProfScope(const char* phase,
                       SpanKind kind = SpanKind::kWork);
    ~ProfScope() { close(); }

    ProfScope(const ProfScope&) = delete;
    ProfScope& operator=(const ProfScope&) = delete;

    /** End the span early (idempotent). */
    void close();

  private:
    const char* phase_ = nullptr;
    uint64_t start_ns_ = 0;
    uint32_t depth_ = 0;
    SpanKind kind_ = SpanKind::kWork;
    bool active_ = false;
};

} // namespace koika::obs
