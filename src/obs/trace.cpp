#include "obs/trace.hpp"

#include "base/error.hpp"
#include "obs/json.hpp"

namespace koika::obs {

TraceWriter::TraceWriter(std::ostream& out,
                         std::vector<std::string> rule_names,
                         std::string process)
    : out_(out), rule_names_(std::move(rule_names)),
      process_(std::move(process))
{
    out_ << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
    emit_metadata();
}

TraceWriter::~TraceWriter()
{
    finish();
}

void
TraceWriter::emit(const std::string& event)
{
    if (!first_)
        out_ << ",";
    first_ = false;
    out_ << "\n" << event;
}

void
TraceWriter::emit_metadata()
{
    {
        Json e = Json::object();
        e["ph"] = "M";
        e["pid"] = 1;
        e["tid"] = 0;
        e["name"] = "process_name";
        e["args"] = Json::object();
        e["args"]["name"] = process_;
        emit(e.dump());
    }
    for (size_t r = 0; r < rule_names_.size(); ++r) {
        Json e = Json::object();
        e["ph"] = "M";
        e["pid"] = 1;
        e["tid"] = (int64_t)r;
        e["name"] = "thread_name";
        e["args"] = Json::object();
        e["args"]["name"] = "rule " + rule_names_[r];
        emit(e.dump());
    }
}

void
TraceWriter::record_cycle(const std::vector<bool>& fired,
                          const std::vector<const char*>& abort_reasons)
{
    KOIKA_CHECK(!finished_);
    size_t n = rule_names_.size();
    KOIKA_CHECK(fired.size() >= n);
    for (size_t r = 0; r < n; ++r) {
        if (fired[r]) {
            Json e = Json::object();
            e["ph"] = "X";
            e["pid"] = 1;
            e["tid"] = (int64_t)r;
            e["ts"] = (int64_t)cycle_;
            e["dur"] = 1;
            e["name"] = rule_names_[r];
            emit(e.dump());
        } else if (r < abort_reasons.size() &&
                   abort_reasons[r] != nullptr) {
            Json e = Json::object();
            e["ph"] = "i";
            e["pid"] = 1;
            e["tid"] = (int64_t)r;
            e["ts"] = (int64_t)cycle_;
            e["s"] = "t"; // thread-scoped instant
            e["name"] = "abort";
            e["args"] = Json::object();
            e["args"]["reason"] = abort_reasons[r];
            emit(e.dump());
        }
    }
    ++cycle_;
}

void
TraceWriter::sample(const sim::RuleStatsModel& model)
{
    size_t n = rule_names_.size();
    KOIKA_CHECK(model.num_rules() == n);

    const std::vector<uint64_t>& aborts = model.rule_abort_counts();
    const std::vector<uint64_t>& reasons = model.rule_abort_reason_counts();
    bool has_reasons =
        reasons.size() >= n * (size_t)sim::kNumAbortReasons;
    prev_aborts_.resize(n, 0);
    if (has_reasons)
        prev_reasons_.resize(n * (size_t)sim::kNumAbortReasons, 0);

    std::vector<const char*> abort_reason(n, nullptr);
    for (size_t r = 0; r < n && r < aborts.size(); ++r) {
        if (aborts[r] > prev_aborts_[r]) {
            abort_reason[r] = "abort";
            if (has_reasons) {
                size_t base = r * (size_t)sim::kNumAbortReasons;
                for (int k = 0; k < sim::kNumAbortReasons; ++k) {
                    if (reasons[base + (size_t)k] >
                        prev_reasons_[base + (size_t)k]) {
                        abort_reason[r] =
                            sim::abort_reason_name((sim::AbortReason)k);
                        break;
                    }
                }
            }
        }
        prev_aborts_[r] = aborts[r];
    }
    if (has_reasons)
        prev_reasons_.assign(reasons.begin(),
                             reasons.begin() +
                                 (long)(n * (size_t)sim::kNumAbortReasons));

    record_cycle(model.fired(), abort_reason);
}

void
TraceWriter::finish()
{
    if (finished_)
        return;
    finished_ = true;
    out_ << "\n]}\n";
    out_.flush();
}

} // namespace koika::obs
