#include "obs/coverage.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "base/error.hpp"
#include "base/io.hpp"
#include "koika/print.hpp"

namespace koika::obs {

const char*
CoverageMap::schema()
{
    return "cuttlesim-cov-v1";
}

CoverageMap
CoverageMap::for_design(const Design& design)
{
    CoverageMap m;
    m.design = design.name();
    m.nodes = design.num_nodes();
    analysis::CoverageShape shape =
        analysis::count_points(analysis::coverage_points(design));
    m.stmt_points = shape.statements;
    m.branch_points = shape.branches;
    m.stmt_count.assign(m.nodes, 0);
    m.branch_taken.assign(m.nodes, 0);
    m.branch_not_taken.assign(m.nodes, 0);
    m.rules.resize(design.num_rules());
    for (size_t r = 0; r < design.num_rules(); ++r)
        m.rules[r].name = design.rule((int)r).name;
    m.regs.resize(design.num_registers());
    for (size_t r = 0; r < design.num_registers(); ++r) {
        RegToggles& t = m.regs[r];
        t.name = design.reg((int)r).name;
        t.width = design.reg((int)r).type->width;
        t.rise.assign(t.width, 0);
        t.fall.assign(t.width, 0);
        m.toggle_bits += t.width;
    }
    return m;
}

void
CoverageMap::add_engine(const std::string& engine)
{
    if (engine.empty())
        return; // unlabeled shard; the merger names the engine
    auto it = std::lower_bound(engines.begin(), engines.end(), engine);
    if (it == engines.end() || *it != engine)
        engines.insert(it, engine);
}

void
CoverageMap::merge(const CoverageMap& other)
{
    if (design != other.design)
        fatal("coverage merge: databases describe different designs "
              "('%s' vs '%s')",
              design.c_str(), other.design.c_str());
    if (nodes != other.nodes || stmt_points != other.stmt_points ||
        branch_points != other.branch_points ||
        toggle_bits != other.toggle_bits ||
        rules.size() != other.rules.size() ||
        regs.size() != other.regs.size())
        fatal("coverage merge: databases for design '%s' have "
              "incompatible shapes (different design versions?)",
              design.c_str());
    for (size_t i = 0; i < rules.size(); ++i)
        if (rules[i].name != other.rules[i].name)
            fatal("coverage merge: rule %zu is '%s' in one database and "
                  "'%s' in the other",
                  i, rules[i].name.c_str(), other.rules[i].name.c_str());
    for (size_t i = 0; i < regs.size(); ++i)
        if (regs[i].name != other.regs[i].name ||
            regs[i].width != other.regs[i].width)
            fatal("coverage merge: register %zu differs between the "
                  "databases",
                  i);

    cycles += other.cycles;
    for (const std::string& e : other.engines)
        add_engine(e);
    for (size_t i = 0; i < stmt_count.size(); ++i) {
        stmt_count[i] += other.stmt_count[i];
        branch_taken[i] += other.branch_taken[i];
        branch_not_taken[i] += other.branch_not_taken[i];
    }
    for (size_t i = 0; i < rules.size(); ++i) {
        rules[i].commits += other.rules[i].commits;
        rules[i].aborts += other.rules[i].aborts;
    }
    for (size_t i = 0; i < regs.size(); ++i) {
        for (uint32_t b = 0; b < regs[i].width; ++b) {
            regs[i].rise[b] += other.regs[i].rise[b];
            regs[i].fall[b] += other.regs[i].fall[b];
        }
    }
}

CoverageMap::Summary
CoverageMap::summary() const
{
    Summary s;
    s.stmt_points = stmt_points;
    s.branch_outcomes = 2 * branch_points;
    s.toggle_dirs = 2 * toggle_bits;
    for (uint64_t c : stmt_count)
        if (c > 0)
            ++s.stmt_covered;
    for (size_t i = 0; i < branch_taken.size(); ++i) {
        if (branch_taken[i] > 0)
            ++s.branch_outcomes_covered;
        if (branch_not_taken[i] > 0)
            ++s.branch_outcomes_covered;
    }
    for (const RegToggles& t : regs) {
        for (uint32_t b = 0; b < t.width; ++b) {
            if (t.rise[b] > 0)
                ++s.toggle_dirs_covered;
            if (t.fall[b] > 0)
                ++s.toggle_dirs_covered;
        }
    }
    for (const RuleCov& r : rules)
        if (r.commits == 0)
            s.uncovered_rules.push_back(r.name);
    return s;
}

namespace {

double
pct(uint64_t covered, uint64_t total)
{
    return total == 0 ? 100.0 : 100.0 * (double)covered / (double)total;
}

Json
pct_block(uint64_t covered, uint64_t total)
{
    Json j = Json::object();
    j["covered"] = covered;
    j["total"] = total;
    j["pct"] = pct(covered, total);
    return j;
}

} // namespace

Json
CoverageMap::summary_json() const
{
    Summary s = summary();
    Json j = Json::object();
    j["statements"] = pct_block(s.stmt_covered, s.stmt_points);
    j["branches"] =
        pct_block(s.branch_outcomes_covered, s.branch_outcomes);
    j["toggles"] = pct_block(s.toggle_dirs_covered, s.toggle_dirs);
    Json uncovered = Json::array();
    for (const std::string& name : s.uncovered_rules)
        uncovered.push_back(name);
    j["uncovered_rules"] = std::move(uncovered);
    return j;
}

Json
CoverageMap::to_json() const
{
    Json j = Json::object();
    j["schema"] = std::string(schema());
    j["design"] = design;
    j["nodes"] = nodes;
    j["cycles"] = cycles;
    Json eng = Json::array();
    for (const std::string& e : engines)
        eng.push_back(e);
    j["engines"] = std::move(eng);
    Json points = Json::object();
    points["statements"] = stmt_points;
    points["branches"] = branch_points;
    points["toggle_bits"] = toggle_bits;
    j["points"] = std::move(points);
    // Sparse maps keyed by node id; ids ascend, so the insertion-ordered
    // object dumps deterministically.
    Json stmts = Json::object();
    for (size_t i = 0; i < stmt_count.size(); ++i)
        if (stmt_count[i] > 0)
            stmts[std::to_string(i)] = stmt_count[i];
    j["statements"] = std::move(stmts);
    Json branches = Json::object();
    for (size_t i = 0; i < branch_taken.size(); ++i) {
        if (branch_taken[i] == 0 && branch_not_taken[i] == 0)
            continue;
        Json pair = Json::array();
        pair.push_back(branch_taken[i]);
        pair.push_back(branch_not_taken[i]);
        branches[std::to_string(i)] = std::move(pair);
    }
    j["branches"] = std::move(branches);
    Json jrules = Json::array();
    for (const RuleCov& r : rules) {
        Json jr = Json::object();
        jr["name"] = r.name;
        jr["commits"] = r.commits;
        jr["aborts"] = r.aborts;
        jrules.push_back(std::move(jr));
    }
    j["rules"] = std::move(jrules);
    Json jregs = Json::array();
    for (const RegToggles& t : regs) {
        Json jt = Json::object();
        jt["name"] = t.name;
        jt["width"] = (uint64_t)t.width;
        Json rise = Json::array(), fall = Json::array();
        for (uint32_t b = 0; b < t.width; ++b) {
            rise.push_back(t.rise[b]);
            fall.push_back(t.fall[b]);
        }
        jt["rise"] = std::move(rise);
        jt["fall"] = std::move(fall);
        jregs.push_back(std::move(jt));
    }
    j["toggles"] = std::move(jregs);
    return j;
}

namespace {

const Json&
require(const Json& j, const char* key)
{
    const Json* v = j.find(key);
    if (v == nullptr)
        fatal("coverage database: missing field '%s'", key);
    return *v;
}

} // namespace

CoverageMap
CoverageMap::from_json(const Json& j)
{
    if (!j.is_object())
        fatal("coverage database: root must be an object");
    const Json* tag = j.find("schema");
    if (tag == nullptr || tag->as_string() != schema())
        fatal("coverage database: schema tag must be '%s'", schema());
    CoverageMap m;
    m.design = require(j, "design").as_string();
    m.nodes = require(j, "nodes").as_u64();
    m.cycles = require(j, "cycles").as_u64();
    for (size_t i = 0; i < require(j, "engines").size(); ++i)
        m.add_engine(require(j, "engines").at(i).as_string());
    const Json& points = require(j, "points");
    m.stmt_points = require(points, "statements").as_u64();
    m.branch_points = require(points, "branches").as_u64();
    m.toggle_bits = require(points, "toggle_bits").as_u64();
    m.stmt_count.assign(m.nodes, 0);
    m.branch_taken.assign(m.nodes, 0);
    m.branch_not_taken.assign(m.nodes, 0);
    for (const auto& [key, value] : require(j, "statements").items()) {
        size_t id = (size_t)std::stoull(key);
        if (id >= m.nodes)
            fatal("coverage database: statement id %zu out of range", id);
        m.stmt_count[id] = value.as_u64();
    }
    for (const auto& [key, value] : require(j, "branches").items()) {
        size_t id = (size_t)std::stoull(key);
        if (id >= m.nodes || value.size() != 2)
            fatal("coverage database: bad branch entry '%s'", key.c_str());
        m.branch_taken[id] = value.at(0).as_u64();
        m.branch_not_taken[id] = value.at(1).as_u64();
    }
    const Json& jrules = require(j, "rules");
    m.rules.resize(jrules.size());
    for (size_t i = 0; i < jrules.size(); ++i) {
        const Json& jr = jrules.at(i);
        m.rules[i].name = require(jr, "name").as_string();
        m.rules[i].commits = require(jr, "commits").as_u64();
        m.rules[i].aborts = require(jr, "aborts").as_u64();
    }
    const Json& jregs = require(j, "toggles");
    m.regs.resize(jregs.size());
    for (size_t i = 0; i < jregs.size(); ++i) {
        const Json& jt = jregs.at(i);
        RegToggles& t = m.regs[i];
        t.name = require(jt, "name").as_string();
        t.width = (uint32_t)require(jt, "width").as_u64();
        const Json& rise = require(jt, "rise");
        const Json& fall = require(jt, "fall");
        if (rise.size() != t.width || fall.size() != t.width)
            fatal("coverage database: toggle arrays for '%s' do not "
                  "match its width",
                  t.name.c_str());
        t.rise.resize(t.width);
        t.fall.resize(t.width);
        for (uint32_t b = 0; b < t.width; ++b) {
            t.rise[b] = rise.at(b).as_u64();
            t.fall[b] = fall.at(b).as_u64();
        }
    }
    return m;
}

void
CoverageMap::save(const std::string& path) const
{
    write_file_atomic(path, to_json().dump(2) + "\n");
}

CoverageMap
CoverageMap::load(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot read coverage database '%s'", path.c_str());
    std::stringstream buf;
    buf << in.rdbuf();
    return from_json(Json::parse(buf.str()));
}

// ---------------------------------------------------------------------------
// CoverageCollector.
// ---------------------------------------------------------------------------

CoverageCollector::CoverageCollector(const Design& design,
                                     sim::Model& model)
    : d_(design), m_(model), kinds_(analysis::coverage_points(design))
{
    cov_ = dynamic_cast<sim::CoverageModel*>(&model);
    if (cov_ != nullptr)
        cov_->enable_coverage();
    prev_.reserve(design.num_registers());
    rise_.resize(design.num_registers());
    fall_.resize(design.num_registers());
    for (size_t r = 0; r < design.num_registers(); ++r) {
        prev_.push_back(model.get_reg((int)r));
        uint32_t w = design.reg((int)r).type->width;
        rise_[r].assign(w, 0);
        fall_[r].assign(w, 0);
    }
}

void
CoverageCollector::sample()
{
    for (size_t r = 0; r < prev_.size(); ++r) {
        Bits now = m_.get_reg((int)r);
        const Bits& old = prev_[r];
        uint32_t w = now.width();
        for (uint32_t word = 0; word * 64 < w; ++word) {
            uint64_t diff = now.word(word) ^ old.word(word);
            while (diff != 0) {
                uint32_t bit =
                    word * 64 + (uint32_t)__builtin_ctzll(diff);
                diff &= diff - 1;
                if (bit >= w)
                    break;
                if (now.bit(bit))
                    ++rise_[r][bit];
                else
                    ++fall_[r][bit];
            }
        }
        prev_[r] = std::move(now);
    }
    ++cycles_;
}

void
CoverageCollector::save_state(sim::StateWriter& w) const
{
    w.put_u64(cycles_);
    w.put_u64(rise_.size());
    for (size_t r = 0; r < rise_.size(); ++r) {
        w.put_u64_vec(rise_[r]);
        w.put_u64_vec(fall_[r]);
    }
}

void
CoverageCollector::load_state(sim::StateReader& r)
{
    cycles_ = r.get_u64();
    uint64_t nregs = r.get_u64();
    if (nregs != rise_.size())
        fatal("checkpoint coverage section does not match this "
              "design's register count");
    for (size_t i = 0; i < rise_.size(); ++i) {
        std::vector<uint64_t> rise = r.get_u64_vec();
        std::vector<uint64_t> fall = r.get_u64_vec();
        if (rise.size() != rise_[i].size() ||
            fall.size() != fall_[i].size())
            fatal("checkpoint coverage section does not match register "
                  "'%s' width", d_.reg((int)i).name.c_str());
        rise_[i] = std::move(rise);
        fall_[i] = std::move(fall);
    }
}

CoverageMap
CoverageCollector::take(const std::string& engine) const
{
    CoverageMap m = CoverageMap::for_design(d_);
    m.cycles = cycles_;
    m.add_engine(engine);
    if (cov_ != nullptr && !cov_->stmt_counts().empty()) {
        const std::vector<uint64_t>& stmt = cov_->stmt_counts();
        const std::vector<uint64_t>& taken = cov_->branch_taken_counts();
        const std::vector<uint64_t>& not_taken =
            cov_->branch_not_taken_counts();
        // Mask down to the classified points: engines are free to count
        // every node they visit, but only the common vocabulary is kept,
        // so all engines produce identical databases for the same run.
        for (size_t i = 0; i < m.nodes && i < stmt.size(); ++i) {
            if (kinds_[i] == analysis::CoverKind::kNone)
                continue;
            m.stmt_count[i] = stmt[i];
            if (kinds_[i] == analysis::CoverKind::kBranch) {
                m.branch_taken[i] = taken[i];
                m.branch_not_taken[i] = not_taken[i];
            }
        }
    }
    if (const auto* rs = dynamic_cast<const sim::RuleStatsModel*>(&m_)) {
        // Match rules by name, not index: generated models order their
        // counters by schedule position, the map by design rule order.
        const std::vector<uint64_t> commits = rs->rule_commit_counts();
        const std::vector<uint64_t> aborts = rs->rule_abort_counts();
        size_t n = std::min(commits.size(), aborts.size());
        for (size_t r = 0; r < rs->num_rules() && r < n; ++r) {
            std::string name = rs->rule_name((int)r);
            for (CoverageMap::RuleCov& rc : m.rules) {
                if (rc.name == name) {
                    rc.commits += commits[r];
                    rc.aborts += aborts[r];
                    break;
                }
            }
        }
    }
    for (size_t r = 0; r < m.regs.size(); ++r) {
        m.regs[r].rise = rise_[r];
        m.regs[r].fall = fall_[r];
    }
    return m;
}

// ---------------------------------------------------------------------------
// LCOV export.
// ---------------------------------------------------------------------------

namespace {

/**
 * Builds the pseudo-source listing and the LCOV records in one walk.
 * The layout mirrors analysis::coverage_points / the annotated listing
 * in harness/coverage.cpp: one statement per line, `if` lines carry the
 * two branch outcomes.
 */
class LcovBuilder
{
  public:
    LcovBuilder(const Design& d, const CoverageMap& m) : d_(d), m_(m) {}

    LcovReport
    build(const std::string& source_path)
    {
        for (size_t r = 0; r < d_.num_rules(); ++r) {
            emit_line("rule " + d_.rule((int)r).name + " {");
            fn_.push_back({line_, d_.rule((int)r).name,
                           m_.rules.size() > r ? m_.rules[r].commits : 0});
            indent_ = 1;
            block(d_.rule((int)r).body);
            indent_ = 0;
            emit_line("}");
            emit_line("");
        }

        std::string info;
        info += "TN:\n";
        info += "SF:" + source_path + "\n";
        uint64_t fnh = 0;
        for (const Fn& f : fn_)
            info += "FN:" + std::to_string(f.line) + "," + f.name + "\n";
        for (const Fn& f : fn_) {
            info += "FNDA:" + std::to_string(f.hits) + "," + f.name + "\n";
            if (f.hits > 0)
                ++fnh;
        }
        info += "FNF:" + std::to_string(fn_.size()) + "\n";
        info += "FNH:" + std::to_string(fnh) + "\n";
        uint64_t brh = 0;
        for (const Branch& b : branches_) {
            info += "BRDA:" + std::to_string(b.line) + ",0,0," +
                    (b.executed ? std::to_string(b.taken) : "-") + "\n";
            info += "BRDA:" + std::to_string(b.line) + ",0,1," +
                    (b.executed ? std::to_string(b.not_taken) : "-") + "\n";
            brh += (b.taken > 0) + (b.not_taken > 0);
        }
        info += "BRF:" + std::to_string(2 * branches_.size()) + "\n";
        info += "BRH:" + std::to_string(brh) + "\n";
        uint64_t lh = 0;
        for (const Da& da : da_) {
            info += "DA:" + std::to_string(da.line) + "," +
                    std::to_string(da.count) + "\n";
            if (da.count > 0)
                ++lh;
        }
        info += "LF:" + std::to_string(da_.size()) + "\n";
        info += "LH:" + std::to_string(lh) + "\n";
        info += "end_of_record\n";
        return LcovReport{std::move(listing_), std::move(info)};
    }

  private:
    struct Fn
    {
        uint64_t line;
        std::string name;
        uint64_t hits;
    };
    struct Da
    {
        uint64_t line;
        uint64_t count;
    };
    struct Branch
    {
        uint64_t line;
        bool executed;
        uint64_t taken, not_taken;
    };

    uint64_t count(const Action* a) const
    {
        size_t id = (size_t)a->id;
        return id < m_.stmt_count.size() ? m_.stmt_count[id] : 0;
    }

    void
    emit_line(const std::string& text)
    {
        ++line_;
        for (int i = 0; i < indent_; ++i)
            listing_ += "    ";
        listing_ += text;
        listing_ += "\n";
    }

    void
    stmt_line(const Action* a, const std::string& text)
    {
        emit_line(text);
        da_.push_back({line_, count(a)});
    }

    void
    branch_line(const Action* a, const std::string& text)
    {
        stmt_line(a, text);
        size_t id = (size_t)a->id;
        branches_.push_back({line_, count(a) > 0,
                             id < m_.branch_taken.size()
                                 ? m_.branch_taken[id]
                                 : 0,
                             id < m_.branch_not_taken.size()
                                 ? m_.branch_not_taken[id]
                                 : 0});
    }

    void
    block(const Action* a)
    {
        switch (a->kind) {
          case ActionKind::kSeq:
            block(a->a0);
            block(a->a1);
            return;
          case ActionKind::kLet:
            stmt_line(a, "let " + a->var +
                             " := " + print_action(a->a0, &d_) + " in");
            block(a->a1);
            return;
          case ActionKind::kIf: {
            branch_line(a, "if (" + print_action(a->a0, &d_) + ") {");
            ++indent_;
            block(a->a1);
            --indent_;
            bool trivial_else = a->a2->kind == ActionKind::kConst &&
                                a->a2->type->width == 0;
            if (trivial_else) {
                emit_line("}");
            } else {
                emit_line("} else {");
                ++indent_;
                block(a->a2);
                --indent_;
                emit_line("}");
            }
            return;
          }
          case ActionKind::kGuard:
            branch_line(a,
                        "guard(" + print_action(a->a0, &d_) + ")");
            return;
          default:
            stmt_line(a, print_action(a, &d_));
            return;
        }
    }

    const Design& d_;
    const CoverageMap& m_;
    std::string listing_;
    uint64_t line_ = 0;
    int indent_ = 0;
    std::vector<Fn> fn_;
    std::vector<Da> da_;
    std::vector<Branch> branches_;
};

} // namespace

LcovReport
lcov_export(const Design& design, const CoverageMap& map,
            const std::string& source_path)
{
    return LcovBuilder(design, map).build(source_path);
}

} // namespace koika::obs
