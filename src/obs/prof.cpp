#include "obs/prof.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace koika::obs {

namespace {

uint64_t
steady_now_ns()
{
    return (uint64_t)std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** ProfScope nesting level of the calling thread. */
thread_local uint32_t tl_depth = 0;

/** Append a JSON-escaped string literal (quotes included) to `out`. */
void
append_json_string(std::string& out, const char* s)
{
    out += '"';
    for (const char* p = s; *p; ++p) {
        unsigned char c = (unsigned char)*p;
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += (char)c;
            }
        }
    }
    out += '"';
}

} // namespace

/**
 * Per-thread span storage: a singly-linked list of fixed-size chunks.
 * Only the owning thread appends; `committed` is the publication point
 * (release store after the span is fully written), so readers can walk
 * the first `committed` spans without locking. Buffers are registered
 * once and never freed — a thread that dies leaves its spans behind for
 * the final report, and pool generations that reuse a worker name are
 * merged at report time.
 */
struct Profiler::ThreadBuf
{
    static constexpr size_t kChunkSpans = 2048;

    struct Chunk
    {
        ProfSpan spans[kChunkSpans];
        std::atomic<Chunk*> next{nullptr};
    };

    explicit ThreadBuf(std::string n) : name(std::move(n))
    {
        head = tail = new Chunk();
    }
    ~ThreadBuf()
    {
        for (Chunk* c = head; c;) {
            Chunk* next = c->next.load(std::memory_order_relaxed);
            delete c;
            c = next;
        }
    }

    void
    push(const ProfSpan& span)
    {
        if (tail_used == kChunkSpans) {
            Chunk* fresh = new Chunk();
            tail->next.store(fresh, std::memory_order_release);
            tail = fresh;
            tail_used = 0;
        }
        tail->spans[tail_used++] = span;
        committed.fetch_add(1, std::memory_order_release);
    }

    std::string name;          ///< guarded by Profiler::mutex_
    Chunk* head;
    Chunk* tail = nullptr;     ///< owner thread only
    size_t tail_used = 0;      ///< owner thread only
    std::atomic<uint64_t> committed{0};
};

namespace {
/** The calling thread's buffer, once registered (never dangles:
 *  ThreadBufs are immortal). */
thread_local Profiler::ThreadBuf* tl_buf = nullptr;
} // namespace

Profiler::Profiler() : interned_(new std::vector<std::string>())
{
    epoch_ns_.store((int64_t)steady_now_ns(), std::memory_order_relaxed);
}

Profiler&
Profiler::instance()
{
    static Profiler* p = new Profiler(); // leaked: outlives all threads
    return *p;
}

void
Profiler::enable()
{
    epoch_ns_.store((int64_t)steady_now_ns(), std::memory_order_relaxed);
    busy_ns_.store(0, std::memory_order_relaxed);
    enable_gen_.fetch_add(1, std::memory_order_relaxed);
    enabled_.store(true, std::memory_order_relaxed);
}

void
Profiler::disable()
{
    enabled_.store(false, std::memory_order_relaxed);
}

uint64_t
Profiler::now_ns() const
{
    uint64_t now = steady_now_ns();
    uint64_t epoch = (uint64_t)epoch_ns_.load(std::memory_order_relaxed);
    return now >= epoch ? now - epoch : 0;
}

Profiler::ThreadBuf&
Profiler::local_buf()
{
    if (tl_buf)
        return *tl_buf;
    std::lock_guard<std::mutex> lock(mutex_);
    char fallback[32];
    std::snprintf(fallback, sizeof fallback, "thread-%zu", bufs_.size());
    tl_buf = new ThreadBuf(fallback);
    bufs_.push_back(tl_buf);
    return *tl_buf;
}

void
Profiler::set_thread_name(const std::string& name)
{
    // Deliberately NOT gated on enabled(): a lane named before (or
    // between) recording epochs must keep its name, or the fleet
    // lane-merge by name falls back to anonymous "thread-N" ids.
    ThreadBuf& buf = local_buf();
    std::lock_guard<std::mutex> lock(mutex_);
    buf.name = name;
}

const char*
Profiler::intern(const std::string& phase)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const std::string& s : *interned_)
        if (s == phase)
            return s.c_str();
    interned_->push_back(phase);
    return interned_->back().c_str();
}

void
Profiler::record(const char* phase, uint64_t start_ns, uint64_t end_ns,
                 uint32_t depth, SpanKind kind)
{
    if (end_ns < start_ns)
        end_ns = start_ns;
    ProfSpan span{phase, start_ns, end_ns - start_ns, depth, kind};
    local_buf().push(span);
    if (depth == 0 && kind == SpanKind::kWork)
        busy_ns_.fetch_add(span.dur_ns, std::memory_order_relaxed);
}

void
Profiler::snapshot(const ThreadBuf& buf, std::vector<ProfSpan>& out)
{
    uint64_t committed = buf.committed.load(std::memory_order_acquire);
    const ThreadBuf::Chunk* chunk = buf.head;
    for (uint64_t i = 0; i < committed; ++i) {
        size_t slot = (size_t)(i % ThreadBuf::kChunkSpans);
        out.push_back(chunk->spans[slot]);
        if (slot + 1 == ThreadBuf::kChunkSpans && i + 1 < committed)
            chunk = chunk->next.load(std::memory_order_acquire);
    }
}

Profiler::Report
Profiler::report() const
{
    Report rep;
    rep.wall_seconds = (double)now_ns() * 1e-9;

    std::vector<std::pair<std::string, const ThreadBuf*>> bufs;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const ThreadBuf* b : bufs_)
            bufs.emplace_back(b->name, b);
    }

    // Same-named threads merge: every pool generation's "worker-003" is
    // the same logical lane, so the worker list (and thus the report
    // structure) depends only on the maximum pool width ever used.
    std::map<std::string, WorkerStats> workers;
    for (const auto& [name, buf] : bufs) {
        std::vector<ProfSpan> spans;
        snapshot(*buf, spans);
        WorkerStats& w = workers[name];
        w.name = name;
        for (const ProfSpan& s : spans) {
            double secs = (double)s.dur_ns * 1e-9;
            w.spans++;
            if (s.kind == SpanKind::kIdle) {
                w.wait_seconds += secs;
                continue;
            }
            if (s.depth == 0)
                w.busy_seconds += secs;
            PhaseStats& ph = rep.phases[s.phase];
            ph.count++;
            ph.total_seconds += secs;
            ph.max_seconds = std::max(ph.max_seconds, secs);
        }
    }

    double wall = rep.wall_seconds;
    for (auto& [name, w] : workers) {
        w.idle_seconds = std::max(0.0, wall - w.busy_seconds);
        w.utilization = wall > 0 ? w.busy_seconds / wall : 0.0;
        rep.pool_busy_seconds += w.busy_seconds;
        rep.pool_idle_seconds += w.idle_seconds;
        rep.workers.push_back(w);
    }
    double capacity = (double)rep.workers.size() * wall;
    rep.pool_utilization = capacity > 0 ? rep.pool_busy_seconds / capacity
                                        : 0.0;
    return rep;
}

std::vector<Profiler::ThreadSpans>
Profiler::drain_since(std::map<const void*, uint64_t>& cursors) const
{
    std::vector<std::pair<std::string, const ThreadBuf*>> bufs;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const ThreadBuf* b : bufs_)
            bufs.emplace_back(b->name, b);
    }
    std::vector<ThreadSpans> out;
    for (const auto& [name, buf] : bufs) {
        uint64_t committed = buf->committed.load(std::memory_order_acquire);
        uint64_t& from = cursors[(const void*)buf];
        if (from >= committed)
            continue;
        ThreadSpans ts;
        ts.thread = name;
        // Chunks are immortal while recording (only reset() frees them,
        // under the quiescence contract), so replaying the walk from
        // head and skipping the already-drained prefix is safe.
        const ThreadBuf::Chunk* chunk = buf->head;
        for (uint64_t i = 0; i < committed; ++i) {
            size_t slot = (size_t)(i % ThreadBuf::kChunkSpans);
            if (i >= from)
                ts.spans.push_back(chunk->spans[slot]);
            if (slot + 1 == ThreadBuf::kChunkSpans && i + 1 < committed)
                chunk = chunk->next.load(std::memory_order_acquire);
        }
        from = committed;
        out.push_back(std::move(ts));
    }
    return out;
}

uint64_t
Profiler::epoch_monotonic_ns() const
{
    return (uint64_t)epoch_ns_.load(std::memory_order_relaxed);
}

double
Profiler::phase_total_seconds(const std::string& phase) const
{
    std::vector<const ThreadBuf*> bufs;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        bufs.assign(bufs_.begin(), bufs_.end());
    }
    double total = 0;
    std::vector<ProfSpan> spans;
    for (const ThreadBuf* buf : bufs) {
        spans.clear();
        snapshot(*buf, spans);
        for (const ProfSpan& s : spans)
            if (s.kind == SpanKind::kWork && phase == s.phase)
                total += (double)s.dur_ns * 1e-9;
    }
    return total;
}

double
Profiler::busy_seconds() const
{
    return (double)busy_ns_.load(std::memory_order_relaxed) * 1e-9;
}

Json
Profiler::Report::to_json() const
{
    Json root = Json::object();
    root["schema"] = "cuttlesim-prof-v1";
    root["wall_seconds"] = wall_seconds;

    Json jphases = Json::object();
    for (const auto& [name, ph] : phases) {
        Json p = Json::object();
        p["count"] = ph.count;
        p["total_seconds"] = ph.total_seconds;
        p["mean_seconds"] = ph.mean_seconds();
        p["max_seconds"] = ph.max_seconds;
        jphases[name] = std::move(p);
    }
    root["phases"] = std::move(jphases);

    Json jworkers = Json::array();
    for (const WorkerStats& w : workers) {
        Json jw = Json::object();
        jw["name"] = w.name;
        jw["spans"] = w.spans;
        jw["busy_seconds"] = w.busy_seconds;
        jw["wait_seconds"] = w.wait_seconds;
        jw["idle_seconds"] = w.idle_seconds;
        jw["utilization"] = w.utilization;
        jworkers.push_back(std::move(jw));
    }
    root["workers"] = std::move(jworkers);

    Json pool = Json::object();
    pool["workers"] = (uint64_t)workers.size();
    pool["busy_seconds"] = pool_busy_seconds;
    pool["idle_seconds"] = pool_idle_seconds;
    pool["utilization"] = pool_utilization;
    root["pool"] = std::move(pool);
    return root;
}

std::string
Profiler::Report::to_text() const
{
    std::string out;
    char line[256];
    std::snprintf(line, sizeof line,
                  "host profile: wall %.3fs, %zu worker(s), pool "
                  "utilization %.1f%%\n",
                  wall_seconds, workers.size(), pool_utilization * 100.0);
    out += line;

    size_t width = 16;
    for (const auto& [name, ph] : phases)
        width = std::max(width, name.size());
    for (const auto& [name, ph] : phases) {
        std::snprintf(line, sizeof line,
                      "  %-*s  total %9.3fs  count %8" PRIu64
                      "  mean %10.6fs  max %9.3fs\n",
                      (int)width, name.c_str(), ph.total_seconds, ph.count,
                      ph.mean_seconds(), ph.max_seconds);
        out += line;
    }
    for (const WorkerStats& w : workers) {
        std::snprintf(line, sizeof line,
                      "  %-*s  busy  %9.3fs  wait %8.3fs  idle "
                      "%9.3fs  (%5.1f%% busy)\n",
                      (int)width, w.name.c_str(), w.busy_seconds,
                      w.wait_seconds, w.idle_seconds, w.utilization * 100.0);
        out += line;
    }
    return out;
}

void
Profiler::Report::export_to(MetricsRegistry& registry,
                            const std::string& prefix) const
{
    for (const auto& [name, ph] : phases) {
        const std::string base = prefix + "/phase/" + name;
        registry.inc(base + "/count", ph.count);
        registry.set_gauge(base + "/total_seconds", ph.total_seconds);
        registry.set_gauge(base + "/max_seconds", ph.max_seconds);
    }
    for (const WorkerStats& w : workers) {
        const std::string base = prefix + "/worker/" + w.name;
        registry.set_gauge(base + "/busy_seconds", w.busy_seconds);
        registry.set_gauge(base + "/utilization", w.utilization);
    }
    registry.set_gauge(prefix + "/pool/utilization", pool_utilization);
    registry.set_gauge(prefix + "/wall_seconds", wall_seconds);
}

std::string
Profiler::trace_json() const
{
    std::vector<std::pair<std::string, const ThreadBuf*>> bufs;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const ThreadBuf* b : bufs_)
            bufs.emplace_back(b->name, b);
    }
    // Stable lane numbering: sorted by name, ties (same-named pool
    // generations) share a tid so the timeline shows one lane per
    // logical worker.
    std::vector<std::pair<std::string, const ThreadBuf*>> sorted = bufs;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const auto& a, const auto& b) {
                         return a.first < b.first;
                     });
    std::map<std::string, int> tids;
    for (const auto& [name, buf] : sorted)
        if (!tids.count(name))
            tids.emplace(name, (int)tids.size() + 1);

    std::string out;
    out += "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
    out += "{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": "
           "\"process_name\", \"args\": {\"name\": \"cuttlesim host\"}}";
    for (const auto& [name, tid] : tids) {
        char head[96];
        std::snprintf(head, sizeof head,
                      ",\n{\"ph\": \"M\", \"pid\": 1, \"tid\": %d, "
                      "\"name\": \"thread_name\", \"args\": {\"name\": ",
                      tid);
        out += head;
        append_json_string(out, name.c_str());
        out += "}}";
    }
    std::vector<ProfSpan> spans;
    for (const auto& [name, buf] : sorted) {
        int tid = tids.at(name);
        spans.clear();
        snapshot(*buf, spans);
        for (const ProfSpan& s : spans) {
            char head[128];
            std::snprintf(head, sizeof head,
                          ",\n{\"ph\": \"X\", \"pid\": 1, \"tid\": %d, "
                          "\"ts\": %.3f, \"dur\": %.3f, \"name\": ",
                          tid, (double)s.start_ns * 1e-3,
                          (double)s.dur_ns * 1e-3);
            out += head;
            append_json_string(out, s.phase);
            if (s.kind == SpanKind::kIdle)
                out += ", \"cat\": \"idle\"";
            out += "}";
        }
    }
    out += "\n]}\n";
    return out;
}

void
Profiler::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (ThreadBuf* buf : bufs_) {
        // Quiescence contract: no thread is recording, so mutating the
        // owner-side cursor from here is safe.
        for (ThreadBuf::Chunk* c =
                 buf->head->next.load(std::memory_order_relaxed);
             c;) {
            ThreadBuf::Chunk* next = c->next.load(std::memory_order_relaxed);
            delete c;
            c = next;
        }
        buf->head->next.store(nullptr, std::memory_order_relaxed);
        buf->tail = buf->head;
        buf->tail_used = 0;
        buf->committed.store(0, std::memory_order_relaxed);
    }
    busy_ns_.store(0, std::memory_order_relaxed);
    epoch_ns_.store((int64_t)steady_now_ns(), std::memory_order_relaxed);
}

ProfScope::ProfScope(const char* phase, SpanKind kind)
{
    Profiler& prof = Profiler::instance();
    if (!prof.enabled())
        return;
    phase_ = phase;
    kind_ = kind;
    depth_ = tl_depth++;
    start_ns_ = prof.now_ns();
    active_ = true;
}

void
ProfScope::close()
{
    if (!active_)
        return;
    active_ = false;
    Profiler& prof = Profiler::instance();
    uint64_t end_ns = prof.now_ns();
    --tl_depth;
    prof.record(phase_, start_ns_, end_ns, depth_, kind_);
}

} // namespace koika::obs
