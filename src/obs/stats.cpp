#include "obs/stats.hpp"

#include <algorithm>
#include <cstdio>

#include "base/error.hpp"

namespace koika::obs {

uint64_t
RuleStats::reason(sim::AbortReason r) const
{
    switch (r) {
      case sim::AbortReason::kGuard: return guard_aborts;
      case sim::AbortReason::kReadConflict: return read_conflict_aborts;
      case sim::AbortReason::kWriteConflict: return write_conflict_aborts;
    }
    return 0;
}

Json
SimStats::to_json() const
{
    Json j = Json::object();
    if (!label.empty())
        j["label"] = label;
    if (!design.empty())
        j["design"] = design;
    if (!engine.empty())
        j["engine"] = engine;
    j["cycles"] = cycles;
    j["wall_seconds"] = wall_seconds;
    j["cycles_per_sec"] = cycles_per_sec();
    if (!rules.empty()) {
        Json arr = Json::array();
        for (const RuleStats& r : rules) {
            Json rj = Json::object();
            rj["name"] = r.name;
            rj["commits"] = r.commits;
            rj["aborts"] = r.aborts;
            if (r.has_reasons) {
                Json reasons = Json::object();
                reasons["guard"] = r.guard_aborts;
                reasons["read_conflict"] = r.read_conflict_aborts;
                reasons["write_conflict"] = r.write_conflict_aborts;
                rj["abort_reasons"] = std::move(reasons);
            }
            arr.push_back(std::move(rj));
        }
        j["rules"] = std::move(arr);
    }
    if (!extra.empty()) {
        Json ej = Json::object();
        for (const auto& [k, v] : extra)
            ej[k] = v;
        j["extra"] = std::move(ej);
    }
    if (coverage.kind() != Json::Kind::kNull)
        j["coverage"] = coverage;
    return j;
}

SimStats
SimStats::from_json(const Json& j)
{
    SimStats s;
    if (const Json* v = j.find("label"))
        s.label = v->as_string();
    if (const Json* v = j.find("design"))
        s.design = v->as_string();
    if (const Json* v = j.find("engine"))
        s.engine = v->as_string();
    if (const Json* v = j.find("cycles"))
        s.cycles = v->as_u64();
    if (const Json* v = j.find("wall_seconds"))
        s.wall_seconds = v->as_double();
    if (const Json* rules = j.find("rules")) {
        for (size_t i = 0; i < rules->size(); ++i) {
            const Json& rj = rules->at(i);
            RuleStats r;
            if (const Json* v = rj.find("name"))
                r.name = v->as_string();
            if (const Json* v = rj.find("commits"))
                r.commits = v->as_u64();
            if (const Json* v = rj.find("aborts"))
                r.aborts = v->as_u64();
            if (const Json* reasons = rj.find("abort_reasons")) {
                r.has_reasons = true;
                if (const Json* v = reasons->find("guard"))
                    r.guard_aborts = v->as_u64();
                if (const Json* v = reasons->find("read_conflict"))
                    r.read_conflict_aborts = v->as_u64();
                if (const Json* v = reasons->find("write_conflict"))
                    r.write_conflict_aborts = v->as_u64();
            }
            s.rules.push_back(std::move(r));
        }
    }
    if (const Json* extra = j.find("extra"))
        for (const auto& [k, v] : extra->items())
            s.extra[k] = v.as_double();
    if (const Json* cov = j.find("coverage"))
        s.coverage = *cov;
    return s;
}

std::string
SimStats::to_text() const
{
    std::string out;
    char buf[256];

    std::string head = label;
    if (!engine.empty())
        head += head.empty() ? engine : " [" + engine + "]";
    if (!head.empty())
        out += head + "\n";

    std::snprintf(buf, sizeof buf, "  cycles       %llu\n",
                  (unsigned long long)cycles);
    out += buf;
    if (wall_seconds > 0) {
        std::snprintf(buf, sizeof buf, "  wall time    %.4f s\n",
                      wall_seconds);
        out += buf;
        std::snprintf(buf, sizeof buf, "  cycles/sec   %.3e\n",
                      cycles_per_sec());
        out += buf;
    }
    for (const auto& [k, v] : extra) {
        std::snprintf(buf, sizeof buf, "  %-12s %.6g\n", k.c_str(), v);
        out += buf;
    }

    if (coverage.is_object()) {
        auto cov_line = [&](const char* key, const char* label) {
            const Json* b = coverage.find(key);
            if (b == nullptr || !b->is_object())
                return;
            const Json* p = b->find("pct");
            const Json* c = b->find("covered");
            const Json* t = b->find("total");
            if (p == nullptr || c == nullptr || t == nullptr)
                return;
            std::snprintf(buf, sizeof buf,
                          "  %-12s %6.2f%% (%llu/%llu)\n", label,
                          p->as_double(),
                          (unsigned long long)c->as_u64(),
                          (unsigned long long)t->as_u64());
            out += buf;
        };
        cov_line("statements", "% stmts");
        cov_line("branches", "% branches");
        cov_line("toggles", "% toggles");
        if (const Json* u = coverage.find("uncovered_rules")) {
            if (u->is_array() && u->size() > 0) {
                out += "  uncovered rules:";
                for (size_t i = 0; i < u->size(); ++i)
                    out += " " + u->at(i).as_string();
                out += '\n';
            }
        }
    }

    if (!rules.empty()) {
        size_t width = 4;
        for (const RuleStats& r : rules)
            width = std::max(width, r.name.size());
        std::snprintf(buf, sizeof buf,
                      "  %-*s %12s %12s  %s\n", (int)width, "rule",
                      "commits", "aborts", "abort breakdown");
        out += buf;
        for (const RuleStats& r : rules) {
            std::snprintf(buf, sizeof buf, "  %-*s %12llu %12llu",
                          (int)width, r.name.c_str(),
                          (unsigned long long)r.commits,
                          (unsigned long long)r.aborts);
            out += buf;
            if (r.has_reasons && r.aborts > 0) {
                std::snprintf(
                    buf, sizeof buf,
                    "  guard=%llu read_conflict=%llu write_conflict=%llu",
                    (unsigned long long)r.guard_aborts,
                    (unsigned long long)r.read_conflict_aborts,
                    (unsigned long long)r.write_conflict_aborts);
                out += buf;
            }
            out += '\n';
        }
    }
    return out;
}

void
SimStats::export_to(MetricsRegistry& registry,
                    const std::string& prefix) const
{
    registry.inc(prefix + "/cycles", cycles);
    registry.set_gauge(prefix + "/wall_seconds", wall_seconds);
    registry.set_gauge(prefix + "/cycles_per_sec", cycles_per_sec());
    for (const auto& [k, v] : extra)
        registry.set_gauge(prefix + "/" + k, v);
    for (const RuleStats& r : rules) {
        const std::string base = prefix + "/rule/" + r.name;
        registry.inc(base + "/commits", r.commits);
        registry.inc(base + "/aborts", r.aborts);
        if (r.has_reasons) {
            registry.inc(base + "/aborts/guard", r.guard_aborts);
            registry.inc(base + "/aborts/read_conflict",
                         r.read_conflict_aborts);
            registry.inc(base + "/aborts/write_conflict",
                         r.write_conflict_aborts);
        }
    }
}

SimStats
collect_stats(const sim::Model& model)
{
    SimStats s;
    s.cycles = model.cycles_run();

    const auto* rs = dynamic_cast<const sim::RuleStatsModel*>(&model);
    if (rs == nullptr)
        return s;

    const std::vector<uint64_t>& commits = rs->rule_commit_counts();
    const std::vector<uint64_t>& aborts = rs->rule_abort_counts();
    const std::vector<uint64_t>& reasons = rs->rule_abort_reason_counts();
    size_t n = rs->num_rules();
    if (commits.size() < n || aborts.size() < n)
        return s; // counters not compiled in
    bool has_reasons = reasons.size() >= n * (size_t)sim::kNumAbortReasons;

    for (size_t r = 0; r < n; ++r) {
        RuleStats rule;
        rule.name = rs->rule_name((int)r);
        rule.commits = commits[r];
        rule.aborts = aborts[r];
        if (has_reasons) {
            rule.has_reasons = true;
            size_t base = r * (size_t)sim::kNumAbortReasons;
            rule.guard_aborts =
                reasons[base + (size_t)sim::AbortReason::kGuard];
            rule.read_conflict_aborts =
                reasons[base + (size_t)sim::AbortReason::kReadConflict];
            rule.write_conflict_aborts =
                reasons[base + (size_t)sim::AbortReason::kWriteConflict];
        }
        s.rules.push_back(std::move(rule));
    }
    return s;
}

} // namespace koika::obs
