/**
 * @file
 * SimStats: one uniform statistics record per simulation run.
 *
 * Collected the same way from every engine — tier interpreters,
 * instrumented generated models, and the RTL cycle/event sims — via the
 * sim::RuleStatsModel interface when the engine implements it, and
 * degrading to cycles-only when it does not. This is the paper's
 * "architectural statistics for free" story (case study 4) packaged so
 * benches, the cuttlec driver, and tests all report through one schema.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "sim/model.hpp"

namespace koika::obs {

/** Per-rule activity, with optional abort-reason attribution. */
struct RuleStats
{
    std::string name;
    uint64_t commits = 0;
    uint64_t aborts = 0;

    /** True when the engine tracked abort reasons (the three fields
     *  below then sum to `aborts`). */
    bool has_reasons = false;
    uint64_t guard_aborts = 0;
    uint64_t read_conflict_aborts = 0;
    uint64_t write_conflict_aborts = 0;

    uint64_t reason(sim::AbortReason r) const;
};

struct SimStats
{
    /** Free-form label, e.g. "fig1/rv32i-primes". */
    std::string label;
    /** Design name, when known. */
    std::string design;
    /** Engine name: "T0".."T5", "cuttlesim", "rtl-cycle", ... */
    std::string engine;

    uint64_t cycles = 0;
    double wall_seconds = 0;

    /** Empty when the engine exposes no per-rule counters. */
    std::vector<RuleStats> rules;

    /** Additional engine-specific gauges (events/cycle, ...). */
    std::map<std::string, double> extra;

    /**
     * Coverage summary block (CoverageMap::summary_json: % statements,
     * % branches, % toggles, uncovered rules). kNull when the run did
     * not collect coverage; emitted as "coverage" in to_json, so it
     * flows into --stats= files and BENCH_*.json unchanged.
     */
    Json coverage;

    double
    cycles_per_sec() const
    {
        return wall_seconds > 0 ? (double)cycles / wall_seconds : 0.0;
    }

    Json to_json() const;
    static SimStats from_json(const Json& j);

    /** Multi-line human-readable report (per-rule table included). */
    std::string to_text() const;

    /**
     * Mirror into a MetricsRegistry under `prefix`, e.g.
     * `<prefix>/cycles`, `<prefix>/rule/<name>/commits`,
     * `<prefix>/rule/<name>/aborts/guard`.
     */
    void export_to(MetricsRegistry& registry, const std::string& prefix) const;
};

/**
 * Read per-rule counters out of a model. Engine-agnostic: uses
 * dynamic_cast to sim::RuleStatsModel, so it works on tier engines,
 * instrumented generated models, or anything else that opts in; for a
 * plain Model only `cycles` is filled in.
 */
SimStats collect_stats(const sim::Model& model);

} // namespace koika::obs
