#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "base/error.hpp"

namespace koika::obs {

std::vector<double>
Histogram::default_bounds()
{
    return {1, 2, 4, 8, 16, 32, 64, 128, 256};
}

Histogram::Histogram(std::vector<double> bucket_bounds)
    : bounds(std::move(bucket_bounds)), counts(bounds.size() + 1, 0)
{
    KOIKA_CHECK(std::is_sorted(bounds.begin(), bounds.end()));
}

void
Histogram::observe(double value)
{
    size_t i = 0;
    while (i < bounds.size() && value > bounds[i])
        ++i;
    ++counts[i];
    ++total;
    sum += value;
}

void
MetricsRegistry::inc(const std::string& name, uint64_t delta)
{
    counters_[name] += delta;
}

uint64_t
MetricsRegistry::counter(const std::string& name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

void
MetricsRegistry::set_gauge(const std::string& name, double value)
{
    gauges_[name] = value;
}

double
MetricsRegistry::gauge(const std::string& name) const
{
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
}

Histogram&
MetricsRegistry::define_histogram(const std::string& name,
                                  std::vector<double> bounds)
{
    return histograms_.insert_or_assign(name, Histogram(std::move(bounds)))
        .first->second;
}

void
MetricsRegistry::observe(const std::string& name, double value)
{
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_.emplace(name, Histogram()).first;
    it->second.observe(value);
}

const Histogram*
MetricsRegistry::histogram(const std::string& name) const
{
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

void
MetricsRegistry::merge_from(const MetricsRegistry& other)
{
    for (const auto& [name, value] : other.counters_)
        counters_[name] += value;
    for (const auto& [name, value] : other.gauges_)
        gauges_[name] = value;
    for (const auto& [name, h] : other.histograms_) {
        auto it = histograms_.find(name);
        if (it == histograms_.end()) {
            histograms_.emplace(name, h);
            continue;
        }
        Histogram& mine = it->second;
        KOIKA_CHECK(mine.bounds == h.bounds);
        for (size_t i = 0; i < mine.counts.size(); ++i)
            mine.counts[i] += h.counts[i];
        mine.total += h.total;
        mine.sum += h.sum;
    }
}

Json
MetricsRegistry::to_json() const
{
    Json root = Json::object();
    Json counters = Json::object();
    for (const auto& [name, value] : counters_)
        counters[name] = Json(value);
    root["counters"] = std::move(counters);
    Json gauges = Json::object();
    for (const auto& [name, value] : gauges_)
        gauges[name] = Json(value);
    root["gauges"] = std::move(gauges);
    Json histograms = Json::object();
    for (const auto& [name, h] : histograms_) {
        Json hj = Json::object();
        Json bounds = Json::array();
        for (double b : h.bounds)
            bounds.push_back(Json(b));
        Json counts = Json::array();
        for (uint64_t c : h.counts)
            counts.push_back(Json(c));
        hj["bounds"] = std::move(bounds);
        hj["counts"] = std::move(counts);
        hj["total"] = Json(h.total);
        hj["sum"] = Json(h.sum);
        histograms[name] = std::move(hj);
    }
    root["histograms"] = std::move(histograms);
    return root;
}

MetricsRegistry
MetricsRegistry::from_json(const Json& j)
{
    MetricsRegistry reg;
    if (const Json* counters = j.find("counters"))
        for (const auto& [name, v] : counters->items())
            reg.counters_[name] = v.as_u64();
    if (const Json* gauges = j.find("gauges"))
        for (const auto& [name, v] : gauges->items())
            reg.gauges_[name] = v.as_double();
    if (const Json* histograms = j.find("histograms")) {
        for (const auto& [name, hj] : histograms->items()) {
            const Json* bounds = hj.find("bounds");
            const Json* counts = hj.find("counts");
            KOIKA_CHECK(bounds != nullptr && counts != nullptr);
            std::vector<double> bs;
            for (size_t i = 0; i < bounds->size(); ++i)
                bs.push_back(bounds->at(i).as_double());
            Histogram h(std::move(bs));
            KOIKA_CHECK(counts->size() == h.counts.size());
            for (size_t i = 0; i < counts->size(); ++i)
                h.counts[i] = counts->at(i).as_u64();
            if (const Json* total = hj.find("total"))
                h.total = total->as_u64();
            if (const Json* sum = hj.find("sum"))
                h.sum = sum->as_double();
            reg.histograms_.insert_or_assign(name, std::move(h));
        }
    }
    return reg;
}

std::string
MetricsRegistry::to_text() const
{
    size_t width = 0;
    for (const auto& [name, _] : counters_)
        width = std::max(width, name.size());
    for (const auto& [name, _] : gauges_)
        width = std::max(width, name.size());
    for (const auto& [name, _] : histograms_)
        width = std::max(width, name.size());

    std::string out;
    char buf[128];
    for (const auto& [name, value] : counters_) {
        std::snprintf(buf, sizeof buf, "%-*s %llu\n", (int)width,
                      name.c_str(), (unsigned long long)value);
        out += buf;
    }
    for (const auto& [name, value] : gauges_) {
        std::snprintf(buf, sizeof buf, "%-*s %.6g\n", (int)width,
                      name.c_str(), value);
        out += buf;
    }
    for (const auto& [name, h] : histograms_) {
        std::snprintf(buf, sizeof buf, "%-*s total=%llu mean=%.3g [",
                      (int)width, name.c_str(),
                      (unsigned long long)h.total, h.mean());
        out += buf;
        for (size_t i = 0; i < h.counts.size(); ++i) {
            if (i)
                out += ' ';
            std::snprintf(buf, sizeof buf, "%llu",
                          (unsigned long long)h.counts[i]);
            out += buf;
        }
        out += "]\n";
    }
    return out;
}

} // namespace koika::obs
