#include "obs/telemetry.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <exception>
#include <vector>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "base/error.hpp"
#include "base/io.hpp"

namespace koika::obs {

namespace {

/** A span parsed back from a snapshot record (phase owned here, start
 *  already shifted onto the supervisor's clock). */
struct MergedSpan
{
    std::string phase;
    int64_t start_ns = 0;
    uint64_t dur_ns = 0;
    uint32_t depth = 0;
    bool idle = false;
};

/** A journal entry parsed from an event record (ts aligned). */
struct MergedEvent
{
    int64_t ts_ns = 0;
    std::string proc;
    uint64_t seq = 0;
    std::string name;
    Json args;
};

/** One process's contribution to the fleet trace. */
struct ProcStream
{
    std::string proc;
    /** lane (thread name) -> aligned spans, in commit order. */
    std::map<std::string, std::vector<MergedSpan>> lanes;
    std::vector<MergedEvent> events;
};

/** Trace track id: supervisor is pid 1, worker slot K is pid K + 2,
 *  anything else lands past 1000 in name order. */
int
proc_pid(const std::string& proc, int* next_other)
{
    if (proc == "supervisor")
        return 1;
    if (proc.rfind("worker-", 0) == 0) {
        const char* digits = proc.c_str() + 7;
        char* end = nullptr;
        long slot = std::strtol(digits, &end, 10);
        if (end != digits && *end == '\0' && slot >= 0)
            return (int)slot + 2;
    }
    return (*next_other)++;
}

const Json*
jfind(const Json& j, const char* key)
{
    return j.find(key);
}

uint64_t
ju64(const Json& j, const char* key)
{
    const Json* v = j.find(key);
    if (v == nullptr || !v->is_number())
        throw FatalError(std::string("telemetry: missing field ") + key);
    return v->as_u64();
}

const std::string&
jstr(const Json& j, const char* key)
{
    const Json* v = j.find(key);
    if (v == nullptr)
        throw FatalError(std::string("telemetry: missing field ") + key);
    return v->as_string();
}

} // namespace

std::string
telemetry_dir(const std::string& campaign_dir)
{
    return campaign_dir + "/telemetry";
}

std::string
telemetry_path(const std::string& campaign_dir, const std::string& proc)
{
    return telemetry_dir(campaign_dir) + "/" + proc + ".jsonl";
}

TelemetryWriter::TelemetryWriter(const std::string& campaign_dir,
                                 const std::string& proc,
                                 const std::string& compiler_identity)
{
    // Best-effort directory creation: the supervisor normally makes
    // these, but a worker racing a fresh campaign dir must not die over
    // telemetry. EEXIST and every other failure fall through to the
    // open(2), whose failure just disarms the writer.
    ::mkdir(campaign_dir.c_str(), 0777);
    ::mkdir(telemetry_dir(campaign_dir).c_str(), 0777);
    std::string path = telemetry_path(campaign_dir, proc);
    fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                 0644);
    if (fd_ < 0)
        return;
    Profiler& prof = Profiler::instance();
    Json meta = Json::object();
    meta["schema"] = kTelemetrySchema;
    meta["kind"] = "meta";
    meta["proc"] = proc;
    meta["pid"] = (uint64_t)::getpid();
    meta["epoch_monotonic_ns"] = prof.epoch_monotonic_ns();
    meta["start_unix"] = (uint64_t)::time(nullptr);
    meta["compiler"] = compiler_identity;
    append_line(meta.dump());
}

TelemetryWriter::~TelemetryWriter()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
TelemetryWriter::append_line(const std::string& line)
{
    if (fd_ < 0)
        return;
    // One write(2) per record: a crash tears at most the final line,
    // which the merger skips and counts.
    std::string bytes = line;
    bytes += '\n';
    ssize_t rc = ::write(fd_, bytes.data(), bytes.size());
    (void)rc;
}

void
TelemetryWriter::event(const std::string& name, Json args)
{
    if (fd_ < 0)
        return;
    Profiler& prof = Profiler::instance();
    Json rec = Json::object();
    rec["kind"] = "event";
    rec["seq"] = seq_++;
    rec["ts_ns"] = prof.now_ns();
    rec["name"] = name;
    rec["args"] = std::move(args);
    append_line(rec.dump());
}

void
TelemetryWriter::snapshot(const MetricsRegistry& metrics)
{
    if (fd_ < 0)
        return;
    Profiler& prof = Profiler::instance();
    Json rec = Json::object();
    rec["kind"] = "snapshot";
    rec["seq"] = seq_++;
    rec["ts_ns"] = prof.now_ns();
    rec["busy_seconds"] = prof.busy_seconds();
    rec["wall_seconds"] = (double)prof.now_ns() * 1e-9;
    Json threads = Json::array();
    for (const Profiler::ThreadSpans& ts : prof.drain_since(cursors_)) {
        Json t = Json::object();
        t["name"] = ts.thread;
        Json spans = Json::array();
        for (const ProfSpan& s : ts.spans) {
            Json span = Json::array();
            span.push_back(std::string(s.phase));
            span.push_back(s.start_ns);
            span.push_back(s.dur_ns);
            span.push_back((uint64_t)s.depth);
            span.push_back((uint64_t)(s.kind == SpanKind::kIdle ? 1 : 0));
            spans.push_back(std::move(span));
        }
        t["spans"] = std::move(spans);
        threads.push_back(std::move(t));
    }
    rec["threads"] = std::move(threads);
    rec["metrics"] = metrics.to_json();
    append_line(rec.dump());
}

FleetTelemetry
merge_fleet_telemetry(const std::string& campaign_dir)
{
    FleetTelemetry fleet;

    // Collect the telemetry files, sorted by process name so the merge
    // (and thus every artifact) is deterministic.
    std::vector<std::string> procs;
    if (DIR* dir = opendir(telemetry_dir(campaign_dir).c_str())) {
        while (struct dirent* ent = readdir(dir)) {
            std::string name = ent->d_name;
            if (name.size() > 6 &&
                name.compare(name.size() - 6, 6, ".jsonl") == 0)
                procs.push_back(name.substr(0, name.size() - 6));
        }
        closedir(dir);
    }
    std::sort(procs.begin(), procs.end());

    // Pass 1: read everything and find the alignment base — the
    // supervisor's first epoch, falling back to the earliest epoch seen
    // (a merge of worker files alone still lines up).
    std::vector<std::pair<std::string, std::string>> contents;
    uint64_t base_epoch = 0;
    bool base_from_supervisor = false;
    bool base_set = false;
    for (const std::string& proc : procs) {
        std::string bytes;
        try {
            bytes = read_file(telemetry_path(campaign_dir, proc));
        } catch (const std::exception&) {
            fleet.corrupt_records++;
            continue;
        }
        fleet.files++;
        size_t pos = 0;
        while (pos < bytes.size()) {
            size_t nl = bytes.find('\n', pos);
            if (nl == std::string::npos)
                break;
            std::string line = bytes.substr(pos, nl - pos);
            pos = nl + 1;
            try {
                Json rec = Json::parse(line);
                const Json* kind = jfind(rec, "kind");
                if (kind == nullptr || kind->as_string() != "meta")
                    continue;
                uint64_t epoch = ju64(rec, "epoch_monotonic_ns");
                bool is_sup = proc == "supervisor";
                if (!base_set || (is_sup && !base_from_supervisor) ||
                    (is_sup == base_from_supervisor && epoch < base_epoch)) {
                    base_epoch = epoch;
                    base_from_supervisor = is_sup;
                    base_set = true;
                }
            } catch (const std::exception&) {
                // Counted in pass 2.
            }
        }
        contents.emplace_back(proc, std::move(bytes));
    }

    // Pass 2: parse records, shifting timestamps onto the base clock.
    std::map<std::string, ProcStream> streams;
    for (const auto& [proc, bytes] : contents) {
        ProcStream& stream = streams[proc];
        stream.proc = proc;
        int64_t shift = 0;
        bool have_epoch = false;
        size_t pos = 0;
        while (pos <= bytes.size()) {
            size_t nl = bytes.find('\n', pos);
            std::string line = nl == std::string::npos
                                   ? bytes.substr(pos)
                                   : bytes.substr(pos, nl - pos);
            pos = nl == std::string::npos ? bytes.size() + 1 : nl + 1;
            if (line.empty())
                continue;
            try {
                Json rec = Json::parse(line);
                const std::string& kind = jstr(rec, "kind");
                if (kind == "meta") {
                    if (jstr(rec, "schema") != kTelemetrySchema)
                        throw FatalError("telemetry: wrong schema");
                    uint64_t epoch = ju64(rec, "epoch_monotonic_ns");
                    shift = (int64_t)epoch - (int64_t)base_epoch;
                    have_epoch = true;
                    continue;
                }
                if (!have_epoch)
                    throw FatalError("telemetry: record before meta");
                if (kind == "event") {
                    MergedEvent ev;
                    ev.ts_ns = (int64_t)ju64(rec, "ts_ns") + shift;
                    ev.proc = proc;
                    ev.seq = ju64(rec, "seq");
                    ev.name = jstr(rec, "name");
                    if (const Json* args = jfind(rec, "args"))
                        ev.args = *args;
                    stream.events.push_back(std::move(ev));
                    continue;
                }
                if (kind != "snapshot")
                    throw FatalError("telemetry: unknown record kind");
                const Json* threads = jfind(rec, "threads");
                if (threads == nullptr || !threads->is_array())
                    throw FatalError("telemetry: snapshot without threads");
                // Parse fully before appending: a torn or tampered
                // snapshot is skipped whole, never half-folded.
                std::map<std::string, std::vector<MergedSpan>> parsed;
                for (size_t t = 0; t < threads->size(); ++t) {
                    const Json& thread = threads->at(t);
                    const std::string& lane = jstr(thread, "name");
                    const Json* spans = jfind(thread, "spans");
                    if (spans == nullptr || !spans->is_array())
                        throw FatalError("telemetry: thread without spans");
                    std::vector<MergedSpan>& out = parsed[lane];
                    for (size_t i = 0; i < spans->size(); ++i) {
                        const Json& s = spans->at(i);
                        if (!s.is_array() || s.size() != 5)
                            throw FatalError("telemetry: malformed span");
                        MergedSpan span;
                        span.phase = s.at(0).as_string();
                        span.start_ns = (int64_t)s.at(1).as_u64() + shift;
                        span.dur_ns = s.at(2).as_u64();
                        span.depth = (uint32_t)s.at(3).as_u64();
                        span.idle = s.at(4).as_u64() != 0;
                        out.push_back(std::move(span));
                    }
                }
                for (auto& [lane, spans] : parsed) {
                    std::vector<MergedSpan>& dst = stream.lanes[lane];
                    for (MergedSpan& s : spans)
                        dst.push_back(std::move(s));
                }
                fleet.snapshots++;
            } catch (const std::exception&) {
                fleet.corrupt_records++;
            }
        }
    }

    // Fleet cuttlesim-prof-v1 report: lanes merge by *thread name*
    // across processes (every incarnation of every worker process names
    // its main thread "worker"), so the worker set — and with it the
    // report structure — is independent of worker count and crash
    // schedule, exactly like pool generations within one process.
    std::map<std::string, Profiler::WorkerStats> workers;
    int64_t max_end_ns = 0;
    for (const auto& [proc, stream] : streams) {
        for (const auto& [lane, spans] : stream.lanes) {
            Profiler::WorkerStats& w = workers[lane];
            w.name = lane;
            for (const MergedSpan& s : spans) {
                double secs = (double)s.dur_ns * 1e-9;
                w.spans++;
                max_end_ns = std::max(max_end_ns,
                                      s.start_ns + (int64_t)s.dur_ns);
                if (s.idle) {
                    w.wait_seconds += secs;
                    continue;
                }
                if (s.depth == 0)
                    w.busy_seconds += secs;
                Profiler::PhaseStats& ph = fleet.report.phases[s.phase];
                ph.count++;
                ph.total_seconds += secs;
                ph.max_seconds = std::max(ph.max_seconds, secs);
            }
        }
        for (const MergedEvent& ev : stream.events)
            max_end_ns = std::max(max_end_ns, ev.ts_ns);
    }
    double wall = (double)std::max<int64_t>(max_end_ns, 0) * 1e-9;
    fleet.report.wall_seconds = wall;
    for (auto& [lane, w] : workers) {
        w.idle_seconds = std::max(0.0, wall - w.busy_seconds);
        w.utilization = wall > 0 ? w.busy_seconds / wall : 0.0;
        fleet.report.pool_busy_seconds += w.busy_seconds;
        fleet.report.pool_idle_seconds += w.idle_seconds;
        fleet.report.workers.push_back(w);
    }
    double capacity = (double)fleet.report.workers.size() * wall;
    fleet.report.pool_utilization =
        capacity > 0 ? fleet.report.pool_busy_seconds / capacity : 0.0;

    // The events journal: one global timeline, ordered by aligned
    // timestamp (ties broken by process then sequence, so the order is
    // total and deterministic).
    // Copy, not move: the trace builder below re-reads stream.events to
    // render the per-track instants.
    std::vector<MergedEvent> journal;
    for (auto& [proc, stream] : streams)
        for (const MergedEvent& ev : stream.events)
            journal.push_back(ev);
    std::sort(journal.begin(), journal.end(),
              [](const MergedEvent& a, const MergedEvent& b) {
                  if (a.ts_ns != b.ts_ns)
                      return a.ts_ns < b.ts_ns;
                  if (a.proc != b.proc)
                      return a.proc < b.proc;
                  return a.seq < b.seq;
              });
    fleet.events = Json::object();
    fleet.events["schema"] = kEventsSchema;
    Json jevents = Json::array();
    for (const MergedEvent& ev : journal) {
        Json e = Json::object();
        e["ts_ns"] = (int64_t)std::max<int64_t>(ev.ts_ns, 0);
        e["proc"] = ev.proc;
        e["seq"] = ev.seq;
        e["name"] = ev.name;
        e["args"] = ev.args;
        jevents.push_back(std::move(e));
    }
    fleet.events["events"] = std::move(jevents);

    // The fleet Chrome trace: one process track per participant
    // (supervisor pid 1, worker slot K pid K+2), one lane per thread
    // within the track, journal events rendered as instant events on
    // the owning track.
    Json trace_events = Json::array();
    int next_other = 1001;
    std::vector<std::pair<int, const ProcStream*>> tracks;
    for (const auto& [proc, stream] : streams)
        tracks.emplace_back(proc_pid(proc, &next_other), &stream);
    std::sort(tracks.begin(), tracks.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [pid, stream] : tracks) {
        Json pmeta = Json::object();
        pmeta["ph"] = "M";
        pmeta["pid"] = (uint64_t)pid;
        pmeta["tid"] = (uint64_t)0;
        pmeta["name"] = "process_name";
        Json pargs = Json::object();
        pargs["name"] = stream->proc;
        pmeta["args"] = std::move(pargs);
        trace_events.push_back(std::move(pmeta));

        int tid = 0;
        if (!stream->events.empty()) {
            Json tmeta = Json::object();
            tmeta["ph"] = "M";
            tmeta["pid"] = (uint64_t)pid;
            tmeta["tid"] = (uint64_t)0;
            tmeta["name"] = "thread_name";
            Json targs = Json::object();
            targs["name"] = "events";
            tmeta["args"] = std::move(targs);
            trace_events.push_back(std::move(tmeta));
        }
        for (const auto& [lane, spans] : stream->lanes) {
            ++tid;
            Json tmeta = Json::object();
            tmeta["ph"] = "M";
            tmeta["pid"] = (uint64_t)pid;
            tmeta["tid"] = (uint64_t)tid;
            tmeta["name"] = "thread_name";
            Json targs = Json::object();
            targs["name"] = lane;
            tmeta["args"] = std::move(targs);
            trace_events.push_back(std::move(tmeta));
            for (const MergedSpan& s : spans) {
                Json e = Json::object();
                e["ph"] = "X";
                e["pid"] = (uint64_t)pid;
                e["tid"] = (uint64_t)tid;
                e["ts"] = (double)std::max<int64_t>(s.start_ns, 0) * 1e-3;
                e["dur"] = (double)s.dur_ns * 1e-3;
                e["name"] = s.phase;
                if (s.idle)
                    e["cat"] = "idle";
                trace_events.push_back(std::move(e));
            }
        }
        for (const MergedEvent& ev : stream->events) {
            Json e = Json::object();
            e["ph"] = "i";
            e["pid"] = (uint64_t)pid;
            e["tid"] = (uint64_t)0;
            e["ts"] = (double)std::max<int64_t>(ev.ts_ns, 0) * 1e-3;
            e["s"] = "t";
            e["name"] = ev.name;
            e["args"] = ev.args;
            trace_events.push_back(std::move(e));
        }
    }
    Json trace = Json::object();
    trace["displayTimeUnit"] = "ms";
    trace["traceEvents"] = std::move(trace_events);
    fleet.trace_json = trace.dump();
    fleet.trace_json += '\n';
    return fleet;
}

Json
metrics_artifact(const std::string& design, const std::string& engine,
                 const MetricsRegistry& metrics)
{
    Json root = Json::object();
    root["schema"] = kMetricsSchema;
    root["design"] = design;
    root["engine"] = engine;
    root["metrics"] = metrics.to_json();
    return root;
}

std::string
render_status_text(const Json& status)
{
    auto num = [&](const char* key, const Json& j) -> double {
        const Json* v = j.find(key);
        return v != nullptr && v->is_number() ? v->as_double() : 0.0;
    };
    auto str = [&](const char* key, const Json& j) -> std::string {
        const Json* v = j.find(key);
        return v != nullptr && v->kind() == Json::Kind::kString
                   ? v->as_string()
                   : std::string("?");
    };

    std::string out;
    char line[256];
    std::string state = str("state", status);
    std::string campaign = str("campaign", status);
    uint64_t done = 0, total = 0;
    if (const Json* inj = status.find("injections")) {
        done = (uint64_t)num("done", *inj);
        total = (uint64_t)num("total", *inj);
    }
    double pct = total > 0 ? 100.0 * (double)done / (double)total : 0.0;
    std::snprintf(line, sizeof line,
                  "campaign %s: %s — %" PRIu64 "/%" PRIu64
                  " injections (%.1f%%)\n",
                  campaign.c_str(), state.c_str(), done, total, pct);
    out += line;
    std::snprintf(line, sizeof line,
                  "  %.1f trials/sec, ETA %.1fs, wall %.1fs\n",
                  num("trials_per_sec", status), num("eta_seconds", status),
                  num("wall_seconds", status));
    out += line;
    if (const Json* chunks = status.find("chunks")) {
        std::snprintf(line, sizeof line,
                      "  chunks: %" PRIu64 "/%" PRIu64
                      " complete, %" PRIu64 " failed, %" PRIu64
                      " in flight\n",
                      (uint64_t)num("completed", *chunks),
                      (uint64_t)num("total", *chunks),
                      (uint64_t)num("failed", *chunks),
                      (uint64_t)num("in_flight", *chunks));
        out += line;
    }
    if (const Json* workers = status.find("workers");
        workers != nullptr && workers->is_array()) {
        for (size_t i = 0; i < workers->size(); ++i) {
            const Json& w = workers->at(i);
            const Json* up = w.find("up");
            // pid 0 = reaped and not (yet) respawned.
            char pid_text[24] = "-";
            if (num("pid", w) > 0)
                std::snprintf(pid_text, sizeof pid_text, "%" PRIu64,
                              (uint64_t)num("pid", w));
            std::snprintf(line, sizeof line,
                          "  worker-%03d  pid %-7s %-5s restarts "
                          "%" PRIu64 "  busy %5.1f%%\n",
                          (int)num("slot", w), pid_text,
                          up != nullptr && up->as_bool() ? "up" : "down",
                          (uint64_t)num("restarts", w),
                          num("utilization", w) * 100.0);
            out += line;
        }
    }
    if (const Json* inc = status.find("incomplete_chunks");
        inc != nullptr && inc->is_array() && inc->size() > 0) {
        out += "  incomplete chunks:";
        for (size_t i = 0; i < inc->size(); ++i) {
            std::snprintf(line, sizeof line, " %" PRIu64,
                          inc->at(i).as_u64());
            out += line;
        }
        out += '\n';
    }
    return out;
}

Json
latest_snapshot(const std::string& campaign_dir, const std::string& proc)
{
    std::string bytes;
    try {
        bytes = read_file(telemetry_path(campaign_dir, proc));
    } catch (const std::exception&) {
        return Json();
    }
    Json latest;
    size_t pos = 0;
    while (pos < bytes.size()) {
        size_t nl = bytes.find('\n', pos);
        if (nl == std::string::npos)
            break;
        std::string line = bytes.substr(pos, nl - pos);
        pos = nl + 1;
        try {
            Json rec = Json::parse(line);
            const Json* kind = rec.find("kind");
            if (kind != nullptr && kind->as_string() == "snapshot")
                latest = std::move(rec);
        } catch (const std::exception&) {
            // Torn tail or tampering: the previous snapshot stands.
        }
    }
    return latest;
}

} // namespace koika::obs
