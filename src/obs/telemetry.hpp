/**
 * @file
 * Fleet-wide telemetry for multi-process campaigns.
 *
 * The span profiler (obs/prof.hpp) and the metrics registry observe one
 * process; the orchestrator (src/orchestrate/) runs many. This module
 * closes the gap: every process in a campaign — the supervisor and each
 * worker incarnation — appends its prof spans, metrics snapshots, and
 * structured lifecycle events to an append-only JSONL file under
 * `<campaign_dir>/telemetry/`, and the supervisor merges the files
 * after the drain into
 *
 *   - one Chrome trace with a track per worker process plus supervisor
 *     lanes (`fleet.trace.json`), journal events rendered as instant
 *     events for crash forensics,
 *   - one fleet-wide `cuttlesim-prof-v1` report (`fleet.prof.json`)
 *     whose phase/worker structure is identical at any worker count,
 *     chunk size, or crash schedule (workers merge by *thread name*
 *     across processes, exactly like pool generations merge by lane
 *     name within one process),
 *   - a `cuttlesim-events-v1` journal (`events.json`): lease claims
 *     and conflicts, worker spawn/exit/signal, chunk retries and
 *     reclaim backoff, interruption — globally ordered on one aligned
 *     clock.
 *
 * Clock alignment: CLOCK_MONOTONIC (std::steady_clock on Linux) is
 * machine-wide, so each process's `meta` record carries its raw
 * profiler epoch (Profiler::epoch_monotonic_ns) and the merge step
 * shifts every timestamp onto the supervisor's timeline. No
 * cross-process handshake is needed.
 *
 * Crash tolerance is the same discipline as the rest of
 * src/orchestrate/: files are append-only and each record is written
 * with a single write(2), so a crashed worker leaves at most one torn
 * final line. The merger skips malformed records and *counts* them
 * (FleetTelemetry::corrupt_records -> the `orch/telemetry_corrupt`
 * metric); it never throws on bad telemetry.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"

namespace koika::obs {

/** Schema tags of the four telemetry artifacts. */
inline constexpr const char* kTelemetrySchema = "cuttlesim-telemetry-v1";
inline constexpr const char* kEventsSchema = "cuttlesim-events-v1";
inline constexpr const char* kStatusSchema = "cuttlesim-status-v1";
inline constexpr const char* kMetricsSchema = "cuttlesim-metrics-v1";

/** `<campaign_dir>/telemetry` (created on demand by TelemetryWriter). */
std::string telemetry_dir(const std::string& campaign_dir);

/** The per-process snapshot file, `<campaign_dir>/telemetry/<proc>.jsonl`.
 *  `proc` is "supervisor" or "worker-NNN"; every incarnation of a worker
 *  slot appends to the same file (each writes its own meta record). */
std::string telemetry_path(const std::string& campaign_dir,
                           const std::string& proc);

/**
 * Appends one process's telemetry stream (cuttlesim-telemetry-v1).
 *
 * Construction opens the file O_APPEND and writes a `meta` record
 * carrying the process identity, its profiler epoch, and the compiler
 * identity (passed in by the caller: src/obs/ does not link against
 * src/codegen/). Each event() / snapshot() appends one complete JSON
 * line with a single write(2). All methods are no-ops when the file
 * could not be opened (telemetry must never take a campaign down).
 */
class TelemetryWriter
{
  public:
    TelemetryWriter(const std::string& campaign_dir,
                    const std::string& proc,
                    const std::string& compiler_identity);
    ~TelemetryWriter();

    TelemetryWriter(const TelemetryWriter&) = delete;
    TelemetryWriter& operator=(const TelemetryWriter&) = delete;

    bool ok() const { return fd_ >= 0; }

    /** Append a structured event ("lease/claim", "worker/spawn", ...).
     *  ts_ns is the profiler's now_ns() at the time of the call. */
    void event(const std::string& name, Json args = Json::object());

    /**
     * Append a snapshot record: every prof span committed since the
     * previous snapshot (incremental via Profiler::drain_since), the
     * profiler's busy/wall aggregate, and the full metrics registry
     * (cumulative: the merge step keeps the last snapshot per
     * incarnation).
     */
    void snapshot(const MetricsRegistry& metrics);

  private:
    void append_line(const std::string& line);

    int fd_ = -1;
    uint64_t seq_ = 0;
    std::map<const void*, uint64_t> cursors_;
};

/** The result of merging every telemetry file of a campaign. */
struct FleetTelemetry
{
    /** Fleet-wide cuttlesim-prof-v1 summary: spans from every process
     *  merged by thread name onto the supervisor's clock. */
    Profiler::Report report;
    /** Chrome trace: one process track per worker slot plus the
     *  supervisor, journal events as instant events. */
    std::string trace_json;
    /** cuttlesim-events-v1 journal (globally time-ordered). */
    Json events;
    /** Telemetry files read. */
    uint64_t files = 0;
    /** Snapshot records folded in. */
    uint64_t snapshots = 0;
    /** Malformed / torn / unknown records skipped (not a failure: the
     *  caller surfaces this as the `orch/telemetry_corrupt` counter). */
    uint64_t corrupt_records = 0;
};

/**
 * Merge every `.jsonl` file under `campaign_dir`/telemetry. Never throws on
 * malformed telemetry (corrupt records are skipped and counted); an
 * absent telemetry directory yields an empty result.
 */
FleetTelemetry merge_fleet_telemetry(const std::string& campaign_dir);

/**
 * The standalone cuttlesim-metrics-v1 artifact written by
 * `cuttlec --metrics=FILE`: the full registry of a run plus the
 * design/engine identity (either may be empty for modes without one,
 * e.g. --list).
 */
Json metrics_artifact(const std::string& design, const std::string& engine,
                      const MetricsRegistry& metrics);

/**
 * Pretty-print a cuttlesim-status-v1 document (the supervisor's
 * periodically-published `status.json`) for `cuttlec --fault-status=`.
 */
std::string render_status_text(const Json& status);

/**
 * The last parseable snapshot record of one process's telemetry file
 * (kNull when the file is absent or holds none). This is how the
 * supervisor reads live per-worker busy/utilization for status.json
 * without any channel beyond the shared directory.
 */
Json latest_snapshot(const std::string& campaign_dir,
                     const std::string& proc);

} // namespace koika::obs
