#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "base/error.hpp"

namespace koika::obs {

Json
Json::array()
{
    Json j;
    j.kind_ = Kind::kArray;
    return j;
}

Json
Json::object()
{
    Json j;
    j.kind_ = Kind::kObject;
    return j;
}

bool
Json::as_bool() const
{
    KOIKA_CHECK(kind_ == Kind::kBool);
    return bool_;
}

int64_t
Json::as_int() const
{
    if (kind_ == Kind::kDouble)
        return (int64_t)num_;
    KOIKA_CHECK(kind_ == Kind::kInt);
    return int_;
}

double
Json::as_double() const
{
    if (kind_ == Kind::kInt)
        return (double)int_;
    KOIKA_CHECK(kind_ == Kind::kDouble);
    return num_;
}

const std::string&
Json::as_string() const
{
    KOIKA_CHECK(kind_ == Kind::kString);
    return str_;
}

void
Json::push_back(Json v)
{
    if (kind_ == Kind::kNull)
        kind_ = Kind::kArray;
    KOIKA_CHECK(kind_ == Kind::kArray);
    arr_.push_back(std::move(v));
}

Json&
Json::operator[](const std::string& key)
{
    if (kind_ == Kind::kNull)
        kind_ = Kind::kObject;
    KOIKA_CHECK(kind_ == Kind::kObject);
    for (auto& [k, v] : obj_)
        if (k == key)
            return v;
    obj_.emplace_back(key, Json());
    return obj_.back().second;
}

const Json*
Json::find(const std::string& key) const
{
    if (kind_ != Kind::kObject)
        return nullptr;
    for (const auto& [k, v] : obj_)
        if (k == key)
            return &v;
    return nullptr;
}

size_t
Json::size() const
{
    return kind_ == Kind::kArray ? arr_.size()
           : kind_ == Kind::kObject ? obj_.size()
                                    : 0;
}

const Json&
Json::at(size_t i) const
{
    KOIKA_CHECK(kind_ == Kind::kArray && i < arr_.size());
    return arr_[i];
}

const std::vector<std::pair<std::string, Json>>&
Json::items() const
{
    KOIKA_CHECK(kind_ == Kind::kObject);
    return obj_;
}

namespace {

void
escape_into(std::string& out, const std::string& s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if ((unsigned char)c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
number_into(std::string& out, double v)
{
    // Integral doubles print as integers, so a dump -> parse -> dump
    // cycle is textually stable.
    if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld", (long long)v);
        out += buf;
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
}

} // namespace

void
Json::dump_to(std::string& out, int indent, int depth) const
{
    auto newline = [&](int d) {
        if (indent >= 0) {
            out += '\n';
            out.append((size_t)(indent * d), ' ');
        }
    };
    switch (kind_) {
      case Kind::kNull: out += "null"; break;
      case Kind::kBool: out += bool_ ? "true" : "false"; break;
      case Kind::kInt: {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld", (long long)int_);
        out += buf;
        break;
      }
      case Kind::kDouble: number_into(out, num_); break;
      case Kind::kString: escape_into(out, str_); break;
      case Kind::kArray:
        out += '[';
        for (size_t i = 0; i < arr_.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            arr_[i].dump_to(out, indent, depth + 1);
        }
        if (!arr_.empty())
            newline(depth);
        out += ']';
        break;
      case Kind::kObject:
        out += '{';
        for (size_t i = 0; i < obj_.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            escape_into(out, obj_[i].first);
            out += indent >= 0 ? ": " : ":";
            obj_[i].second.dump_to(out, indent, depth + 1);
        }
        if (!obj_.empty())
            newline(depth);
        out += '}';
        break;
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dump_to(out, indent, 0);
    return out;
}

// -- Parser ------------------------------------------------------------------

namespace {

class Parser
{
  public:
    explicit Parser(const std::string& text) : s_(text) {}

    Json
    run()
    {
        Json v = value();
        skip_ws();
        if (pos_ != s_.size())
            fail("trailing characters");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const char* what)
    {
        fatal("JSON parse error at offset %zu: %s", pos_, what);
    }

    void
    skip_ws()
    {
        while (pos_ < s_.size() &&
               std::isspace((unsigned char)s_[pos_]))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= s_.size())
            fail("unexpected end of input");
        return s_[pos_];
    }

    void
    expect(char c)
    {
        if (pos_ >= s_.size() || s_[pos_] != c)
            fail("unexpected character");
        ++pos_;
    }

    bool
    try_consume(char c)
    {
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    Json
    value()
    {
        skip_ws();
        char c = peek();
        switch (c) {
          case '{': return object();
          case '[': return array();
          case '"': return Json(string());
          case 't': keyword("true"); return Json(true);
          case 'f': keyword("false"); return Json(false);
          case 'n': keyword("null"); return Json();
          default: return number();
        }
    }

    void
    keyword(const char* kw)
    {
        for (const char* p = kw; *p; ++p)
            expect(*p);
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= s_.size())
                fail("unterminated string");
            char c = s_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= s_.size())
                fail("unterminated escape");
            char e = s_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > s_.size())
                    fail("bad \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = s_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= (unsigned)(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= (unsigned)(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= (unsigned)(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                // UTF-8 encode (surrogate pairs unsupported; the layer
                // only ever emits \u00xx control escapes).
                if (code < 0x80) {
                    out += (char)code;
                } else if (code < 0x800) {
                    out += (char)(0xC0 | (code >> 6));
                    out += (char)(0x80 | (code & 0x3F));
                } else {
                    out += (char)(0xE0 | (code >> 12));
                    out += (char)(0x80 | ((code >> 6) & 0x3F));
                    out += (char)(0x80 | (code & 0x3F));
                }
                break;
              }
              default: fail("bad escape");
            }
        }
    }

    Json
    number()
    {
        size_t start = pos_;
        bool is_double = false;
        if (try_consume('-')) {
        }
        while (pos_ < s_.size() &&
               (std::isdigit((unsigned char)s_[pos_]) || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' ||
                s_[pos_] == '-')) {
            if (s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E')
                is_double = true;
            ++pos_;
        }
        if (pos_ == start)
            fail("invalid number");
        std::string text = s_.substr(start, pos_ - start);
        if (is_double)
            return Json(std::stod(text));
        return Json((int64_t)std::stoll(text));
    }

    Json
    array()
    {
        expect('[');
        Json arr = Json::array();
        skip_ws();
        if (try_consume(']'))
            return arr;
        while (true) {
            arr.push_back(value());
            skip_ws();
            if (try_consume(']'))
                return arr;
            expect(',');
        }
    }

    Json
    object()
    {
        expect('{');
        Json obj = Json::object();
        skip_ws();
        if (try_consume('}'))
            return obj;
        while (true) {
            skip_ws();
            std::string key = string();
            skip_ws();
            expect(':');
            obj[key] = value();
            skip_ws();
            if (try_consume('}'))
                return obj;
            expect(',');
        }
    }

    const std::string& s_;
    size_t pos_ = 0;
};

} // namespace

Json
Json::parse(const std::string& text)
{
    return Parser(text).run();
}

} // namespace koika::obs
