/**
 * @file
 * Minimal JSON value type, writer, and parser for the observability
 * layer.
 *
 * Everything the layer exports (metrics snapshots, SimStats, bench
 * results, Chrome trace events) is JSON; everything the tests validate
 * is parsed back through this same module, so a round trip is the
 * contract. Objects preserve insertion order so dumps are deterministic
 * and diffs are stable. Integers are kept exact (not routed through
 * double), which matters for cycle and commit counters.
 */
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace koika::obs {

class Json
{
  public:
    enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

    Json() = default;
    Json(bool b) : kind_(Kind::kBool), bool_(b) {}
    Json(int v) : kind_(Kind::kInt), int_((int64_t)v) {}
    Json(int64_t v) : kind_(Kind::kInt), int_(v) {}
    Json(uint64_t v) : kind_(Kind::kInt), int_((int64_t)v) {}
    Json(double v) : kind_(Kind::kDouble), num_(v) {}
    Json(const char* s) : kind_(Kind::kString), str_(s) {}
    Json(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}

    static Json array();
    static Json object();

    Kind kind() const { return kind_; }
    bool is_object() const { return kind_ == Kind::kObject; }
    bool is_array() const { return kind_ == Kind::kArray; }
    bool is_number() const
    {
        return kind_ == Kind::kInt || kind_ == Kind::kDouble;
    }

    bool as_bool() const;
    /** Integer value (exact for kInt; truncated for kDouble). */
    int64_t as_int() const;
    uint64_t as_u64() const { return (uint64_t)as_int(); }
    /** Numeric value (kInt or kDouble). */
    double as_double() const;
    const std::string& as_string() const;

    /** Array append. */
    void push_back(Json v);
    /** Object field lookup-or-insert (insertion order preserved). */
    Json& operator[](const std::string& key);
    /** Object field lookup; nullptr when absent or not an object. */
    const Json* find(const std::string& key) const;

    /** Array/object element count. */
    size_t size() const;
    const Json& at(size_t i) const;
    const std::vector<std::pair<std::string, Json>>& items() const;

    /**
     * Serialize. indent < 0 is compact one-line output; indent >= 0
     * pretty-prints with that many spaces per level.
     */
    std::string dump(int indent = -1) const;

    /** Parse text; throws koika::FatalError on malformed input. */
    static Json parse(const std::string& text);

  private:
    void dump_to(std::string& out, int indent, int depth) const;

    Kind kind_ = Kind::kNull;
    bool bool_ = false;
    int64_t int_ = 0;
    double num_ = 0;
    std::string str_;
    std::vector<Json> arr_;
    std::vector<std::pair<std::string, Json>> obj_;
};

} // namespace koika::obs
