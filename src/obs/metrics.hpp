/**
 * @file
 * MetricsRegistry: named counters, gauges, and histograms with JSON and
 * human-text exporters.
 *
 * This is the common substrate the simulation engines, benches, and the
 * cuttlec driver report through (the "coverage as statistics" story of
 * the paper's case study 4, generalized). Names are flat strings; the
 * convention used throughout the repo is a '/'-separated path, e.g.
 * `fig1/rv32i-primes/cuttlesim/rule/decode/commits`.
 *
 * The registry is deliberately not thread-safe: every engine in this
 * repository is single-threaded, and keeping the increment path a plain
 * map lookup keeps the instrumentation overhead story honest. Parallel
 * work uses one private registry per worker and folds the shards
 * together with merge_from() at join (src/harness/parallel.hpp).
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace koika::obs {

/** Fixed-bucket histogram (cumulative-free, prometheus-style bounds). */
struct Histogram
{
    /** Upper bounds of the first bounds.size() buckets; one overflow
     *  bucket follows. */
    std::vector<double> bounds;
    std::vector<uint64_t> counts;
    uint64_t total = 0;
    double sum = 0;

    explicit Histogram(std::vector<double> bucket_bounds = default_bounds());

    void observe(double value);
    double mean() const { return total ? sum / (double)total : 0.0; }

    static std::vector<double> default_bounds();
};

class MetricsRegistry
{
  public:
    // -- Counters (monotonic integers) --------------------------------------
    void inc(const std::string& name, uint64_t delta = 1);
    uint64_t counter(const std::string& name) const;

    // -- Gauges (last-written doubles) --------------------------------------
    void set_gauge(const std::string& name, double value);
    double gauge(const std::string& name) const;

    // -- Histograms ---------------------------------------------------------
    /** Create (or re-bucket) a histogram with explicit bounds. */
    Histogram& define_histogram(const std::string& name,
                                std::vector<double> bounds);
    /** Record an observation, creating a default-bucket histogram. */
    void observe(const std::string& name, double value);
    const Histogram* histogram(const std::string& name) const;

    bool empty() const
    {
        return counters_.empty() && gauges_.empty() && histograms_.empty();
    }

    const std::map<std::string, uint64_t>& counters() const
    {
        return counters_;
    }
    const std::map<std::string, double>& gauges() const { return gauges_; }
    const std::map<std::string, Histogram>& histograms() const
    {
        return histograms_;
    }

    // -- Merging ------------------------------------------------------------
    /**
     * Fold `other` into this registry: counters add, gauges take the
     * other side's value, histogram bucket counts add (the bounds must
     * agree when both sides define the same histogram). This is the
     * join step of the parallel harness (src/harness/parallel.hpp):
     * each worker fills a private registry and the shards are merged in
     * worker order, so the result is deterministic.
     */
    void merge_from(const MetricsRegistry& other);

    // -- Exporters ----------------------------------------------------------
    /** {"counters":{...},"gauges":{...},"histograms":{...}} */
    Json to_json() const;
    /** One metric per line, aligned, for terminal output. */
    std::string to_text() const;
    /** Inverse of to_json (the round-trip contract, tested). */
    static MetricsRegistry from_json(const Json& j);

  private:
    std::map<std::string, uint64_t> counters_;
    std::map<std::string, double> gauges_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace koika::obs
