#include "interp/reference.hpp"

namespace koika {

ReferenceSim::ReferenceSim(const Design& design) : d_(design)
{
    KOIKA_CHECK(d_.typechecked);
    state_ = d_.initial_state();
    cycle_log_.resize(d_.num_registers());
    rule_log_.resize(d_.num_registers());
    fired_.resize(d_.num_rules(), false);
}

void
ReferenceSim::set_reg(int i, Bits v)
{
    KOIKA_CHECK(v.width() == d_.reg(i).type->width);
    state_[(size_t)i] = std::move(v);
}

void
ReferenceSim::cycle()
{
    cycle_with_order(d_.schedule_order());
}

void
ReferenceSim::cycle_with_order(const std::vector<int>& order)
{
    // A cycle starts with an empty cycle log.
    for (auto& e : cycle_log_)
        e = LogEntry{};
    fired_.assign(d_.num_rules(), false);

    for (int r : order)
        fired_[(size_t)r] = run_rule(r);

    // Commit: wr1 beats wr0 beats the old value.
    for (size_t i = 0; i < state_.size(); ++i) {
        if (cycle_log_[i].wr1)
            state_[i] = cycle_log_[i].data1;
        else if (cycle_log_[i].wr0)
            state_[i] = cycle_log_[i].data0;
    }
    ++cycles_;
}

bool
ReferenceSim::run_rule(int rule_index)
{
    const Rule& rule = d_.rule(rule_index);
    // Entering a rule resets the rule log.
    for (auto& e : rule_log_)
        e = LogEntry{};
    frames_.clear();
    frames_.emplace_back((size_t)rule.nslots);

    try {
        eval(rule.body);
    } catch (RuleAbort&) {
        return false; // Rule log is discarded.
    }

    // Success: append the rule log to the cycle log.
    for (size_t i = 0; i < cycle_log_.size(); ++i) {
        LogEntry& cl = cycle_log_[i];
        const LogEntry& rl = rule_log_[i];
        cl.rd0 |= rl.rd0;
        cl.rd1 |= rl.rd1;
        if (rl.wr0) {
            cl.wr0 = true;
            cl.data0 = rl.data0;
        }
        if (rl.wr1) {
            cl.wr1 = true;
            cl.data1 = rl.data1;
        }
    }
    return true;
}

Bits
ReferenceSim::do_read(const Action* a)
{
    LogEntry& cl = cycle_log_[(size_t)a->reg];
    LogEntry& rl = rule_log_[(size_t)a->reg];
    if (a->port == Port::p0) {
        // rd0 observes the beginning-of-cycle value; it conflicts with any
        // previously-committed write in this cycle.
        if (cl.wr0 || cl.wr1)
            throw RuleAbort{};
        rl.rd0 = true;
        return state_[(size_t)a->reg];
    }
    // rd1 observes the latest wr0; it conflicts with a committed wr1.
    if (cl.wr1)
        throw RuleAbort{};
    rl.rd1 = true;
    if (rl.wr0)
        return rl.data0;
    if (cl.wr0)
        return cl.data0;
    return state_[(size_t)a->reg];
}

void
ReferenceSim::do_write(const Action* a, Bits value)
{
    LogEntry& cl = cycle_log_[(size_t)a->reg];
    LogEntry& rl = rule_log_[(size_t)a->reg];
    if (a->port == Port::p0) {
        // wr0 must precede every rd1/wr0/wr1 in the cycle.
        if (cl.rd1 || cl.wr0 || cl.wr1 || rl.rd1 || rl.wr0 || rl.wr1)
            throw RuleAbort{};
        rl.wr0 = true;
        rl.data0 = std::move(value);
    } else {
        // At most one wr1 per register per cycle.
        if (cl.wr1 || rl.wr1)
            throw RuleAbort{};
        rl.wr1 = true;
        rl.data1 = std::move(value);
    }
}

void
ReferenceSim::enable_coverage()
{
    if (coverage_enabled_)
        return;
    coverage_enabled_ = true;
    coverage_.assign(d_.num_nodes(), 0);
    taken_.assign(d_.num_nodes(), 0);
    not_taken_.assign(d_.num_nodes(), 0);
}

Bits
ReferenceSim::eval(const Action* a)
{
    if (coverage_enabled_)
        ++coverage_[(size_t)a->id];
    switch (a->kind) {
      case ActionKind::kConst:
        return a->value;

      case ActionKind::kVar:
        return frames_.back()[(size_t)a->slot];

      case ActionKind::kLet: {
        Bits v = eval(a->a0);
        frames_.back()[(size_t)a->slot] = std::move(v);
        return eval(a->a1);
      }

      case ActionKind::kAssign: {
        Bits v = eval(a->a0);
        frames_.back()[(size_t)a->slot] = std::move(v);
        return Bits();
      }

      case ActionKind::kSeq:
        eval(a->a0);
        return eval(a->a1);

      case ActionKind::kIf: {
        bool t = eval(a->a0).truthy();
        if (coverage_enabled_)
            ++(t ? taken_ : not_taken_)[(size_t)a->id];
        return t ? eval(a->a1) : eval(a->a2);
      }

      case ActionKind::kRead:
        return do_read(a);

      case ActionKind::kWrite:
        do_write(a, eval(a->a0));
        return Bits();

      case ActionKind::kGuard: {
        bool pass = eval(a->a0).truthy();
        if (coverage_enabled_)
            ++(pass ? taken_ : not_taken_)[(size_t)a->id];
        if (!pass)
            throw RuleAbort{};
        return Bits();
      }

      case ActionKind::kUnop: {
        Bits v = eval(a->a0);
        switch (a->op) {
          case Op::kNot: return v.bnot();
          case Op::kNeg: return v.neg();
          case Op::kZExtL: return v.zextl(a->imm0);
          case Op::kSExtL: return v.sextl(a->imm0);
          case Op::kSlice: return v.slice(a->imm0, a->imm1);
          default: panic("bad unop");
        }
      }

      case ActionKind::kBinop: {
        Bits x = eval(a->a0);
        Bits y = eval(a->a1);
        switch (a->op) {
          case Op::kAnd: return x.band(y);
          case Op::kOr: return x.bor(y);
          case Op::kXor: return x.bxor(y);
          case Op::kAdd: return x.add(y);
          case Op::kSub: return x.sub(y);
          case Op::kMul: return x.mul(y);
          case Op::kEq: return x.eq(y);
          case Op::kNe: return x.ne(y);
          case Op::kLtu: return x.ltu(y);
          case Op::kLeu: return x.leu(y);
          case Op::kGtu: return x.gtu(y);
          case Op::kGeu: return x.geu(y);
          case Op::kLts: return x.lts(y);
          case Op::kLes: return x.les(y);
          case Op::kGts: return x.gts(y);
          case Op::kGes: return x.ges(y);
          case Op::kLsl: return x.shl(y);
          case Op::kLsr: return x.shr(y);
          case Op::kAsr: return x.asr(y);
          case Op::kConcat: return x.concat(y);
          default: break;
        }
        panic("bad binop");
      }

      case ActionKind::kGetField: {
        Bits v = eval(a->a0);
        const Field& f =
            a->a0->type->fields[(size_t)a->field_index];
        return v.slice(f.offset, f.type->width);
      }

      case ActionKind::kSubstField: {
        Bits s = eval(a->a0);
        Bits v = eval(a->a1);
        const Field& f =
            a->a0->type->fields[(size_t)a->field_index];
        uint32_t w = s.width();
        // Clear the field, then or in the new value.
        Bits mask =
            Bits::ones(f.type->width).zextl(w).shl_by(f.offset).bnot();
        return s.band(mask).bor(v.zextl(w).shl_by(f.offset));
      }

      case ActionKind::kCall: {
        std::vector<Bits> frame((size_t)a->fn->nslots);
        for (size_t i = 0; i < a->args.size(); ++i)
            frame[i] = eval(a->args[i]);
        frames_.push_back(std::move(frame));
        Bits r = eval(a->fn->body);
        frames_.pop_back();
        return r;
      }
    }
    panic("unreachable");
}

} // namespace koika
