/**
 * @file
 * Model adapter for the reference interpreter, so the specification
 * semantics can participate in lockstep differential runs alongside the
 * optimized engines.
 */
#pragma once

#include "interp/reference.hpp"
#include "sim/model.hpp"

namespace koika {

class ReferenceModel final : public sim::Model
{
  public:
    explicit ReferenceModel(const Design& design) : sim_(design) {}

    void cycle() override { sim_.cycle(); }
    Bits get_reg(int reg) const override { return sim_.reg(reg); }

    void
    set_reg(int reg, const Bits& value) override
    {
        sim_.set_reg(reg, value);
    }

    uint64_t cycles_run() const override { return sim_.cycles_run(); }

    size_t
    num_regs() const override
    {
        return sim_.design().num_registers();
    }

    ReferenceSim& interpreter() { return sim_; }

  private:
    ReferenceSim sim_;
};

} // namespace koika
