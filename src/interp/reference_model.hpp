/**
 * @file
 * Model adapter for the reference interpreter, so the specification
 * semantics can participate in lockstep differential runs alongside the
 * optimized engines.
 */
#pragma once

#include "interp/reference.hpp"
#include "sim/model.hpp"

namespace koika {

class ReferenceModel final : public sim::RuleStatsModel,
                             public sim::CoverageModel
{
  public:
    explicit ReferenceModel(const Design& design)
        : sim_(design), commits_(design.num_rules(), 0),
          aborts_(design.num_rules(), 0)
    {
    }

    void
    cycle() override
    {
        sim_.cycle();
        // The reference interpreter attempts every scheduled rule once
        // per cycle: a rule either committed (fired) or aborted.
        const std::vector<bool>& fired = sim_.fired();
        for (int r : sim_.design().schedule_order()) {
            if (fired[(size_t)r])
                ++commits_[(size_t)r];
            else
                ++aborts_[(size_t)r];
        }
    }

    Bits get_reg(int reg) const override { return sim_.reg(reg); }

    void
    set_reg(int reg, const Bits& value) override
    {
        sim_.set_reg(reg, value);
    }

    uint64_t cycles_run() const override { return sim_.cycles_run(); }

    size_t
    num_regs() const override
    {
        return sim_.design().num_registers();
    }

    ReferenceSim& interpreter() { return sim_; }

    // -- RuleStatsModel (commit/abort tallies accumulated from the
    // interpreter's per-cycle fired set; no abort-reason attribution —
    // the specification semantics has no conflict taxonomy).
    size_t num_rules() const override { return sim_.design().num_rules(); }

    std::string
    rule_name(int rule) const override
    {
        return sim_.design().rule(rule).name;
    }

    const std::vector<bool>& fired() const override { return sim_.fired(); }

    const std::vector<uint64_t>&
    rule_commit_counts() const override
    {
        return commits_;
    }

    const std::vector<uint64_t>&
    rule_abort_counts() const override
    {
        return aborts_;
    }

    const std::vector<uint64_t>&
    rule_abort_reason_counts() const override
    {
        return no_reasons_;
    }

    // -- CoverageModel (delegates to the interpreter's node counters;
    // the obs layer masks these down to classified statement points).
    void enable_coverage() override { sim_.enable_coverage(); }

    size_t num_nodes() const override
    {
        return sim_.design().num_nodes();
    }

    const std::vector<uint64_t>& stmt_counts() const override
    {
        return sim_.coverage();
    }

    const std::vector<uint64_t>& branch_taken_counts() const override
    {
        return sim_.branch_taken();
    }

    const std::vector<uint64_t>& branch_not_taken_counts() const override
    {
        return sim_.branch_not_taken();
    }

  private:
    ReferenceSim sim_;
    std::vector<uint64_t> commits_;
    std::vector<uint64_t> aborts_;
    std::vector<uint64_t> no_reasons_;
};

} // namespace koika
