/**
 * @file
 * Model adapter for the reference interpreter, so the specification
 * semantics can participate in lockstep differential runs alongside the
 * optimized engines.
 */
#pragma once

#include "base/error.hpp"
#include "interp/reference.hpp"
#include "sim/model.hpp"
#include "sim/state.hpp"

namespace koika {

class ReferenceModel final : public sim::RuleStatsModel,
                             public sim::CoverageModel,
                             public sim::CheckpointableModel
{
  public:
    explicit ReferenceModel(const Design& design)
        : sim_(design), commits_(design.num_rules(), 0),
          aborts_(design.num_rules(), 0)
    {
    }

    void
    cycle() override
    {
        sim_.cycle();
        // The reference interpreter attempts every scheduled rule once
        // per cycle: a rule either committed (fired) or aborted.
        const std::vector<bool>& fired = sim_.fired();
        for (int r : sim_.design().schedule_order()) {
            if (fired[(size_t)r])
                ++commits_[(size_t)r];
            else
                ++aborts_[(size_t)r];
        }
    }

    Bits get_reg(int reg) const override { return sim_.reg(reg); }

    void
    set_reg(int reg, const Bits& value) override
    {
        sim_.set_reg(reg, value);
    }

    uint64_t cycles_run() const override { return sim_.cycles_run(); }

    size_t
    num_regs() const override
    {
        return sim_.design().num_registers();
    }

    ReferenceSim& interpreter() { return sim_; }

    // -- RuleStatsModel (commit/abort tallies accumulated from the
    // interpreter's per-cycle fired set; no abort-reason attribution —
    // the specification semantics has no conflict taxonomy).
    size_t num_rules() const override { return sim_.design().num_rules(); }

    std::string
    rule_name(int rule) const override
    {
        return sim_.design().rule(rule).name;
    }

    const std::vector<bool>& fired() const override { return sim_.fired(); }

    const std::vector<uint64_t>&
    rule_commit_counts() const override
    {
        return commits_;
    }

    const std::vector<uint64_t>&
    rule_abort_counts() const override
    {
        return aborts_;
    }

    const std::vector<uint64_t>&
    rule_abort_reason_counts() const override
    {
        return no_reasons_;
    }

    // -- CoverageModel (delegates to the interpreter's node counters;
    // the obs layer masks these down to classified statement points).
    void enable_coverage() override { sim_.enable_coverage(); }

    size_t num_nodes() const override
    {
        return sim_.design().num_nodes();
    }

    const std::vector<uint64_t>& stmt_counts() const override
    {
        return sim_.coverage();
    }

    const std::vector<uint64_t>& branch_taken_counts() const override
    {
        return sim_.branch_taken();
    }

    const std::vector<uint64_t>& branch_not_taken_counts() const override
    {
        return sim_.branch_not_taken();
    }

    // -- CheckpointableModel.
    std::string state_key() const override { return "reference-v1"; }

    void
    save_extra_state(sim::StateWriter& w) const override
    {
        w.put_u64(sim_.cycles_run());
        w.put_bool_vec(sim_.fired());
        w.put_u64_vec(commits_);
        w.put_u64_vec(aborts_);
        bool cov = !sim_.coverage().empty();
        w.put_u64(cov ? 1 : 0);
        if (cov) {
            w.put_u64_vec(sim_.coverage());
            w.put_u64_vec(sim_.branch_taken());
            w.put_u64_vec(sim_.branch_not_taken());
        }
    }

    void
    load_extra_state(sim::StateReader& r) override
    {
        uint64_t cycles = r.get_u64();
        std::vector<bool> fired = r.get_bool_vec();
        std::vector<uint64_t> commits = r.get_u64_vec();
        std::vector<uint64_t> aborts = r.get_u64_vec();
        size_t nrules = sim_.design().num_rules();
        if (fired.size() != nrules || commits.size() != nrules ||
            aborts.size() != nrules)
            fatal("checkpoint engine state does not match this "
                  "design's rule count");
        sim_.restore_progress(cycles, std::move(fired));
        commits_ = std::move(commits);
        aborts_ = std::move(aborts);
        if (r.get_u64() != 0) {
            std::vector<uint64_t> stmt = r.get_u64_vec();
            std::vector<uint64_t> taken = r.get_u64_vec();
            std::vector<uint64_t> not_taken = r.get_u64_vec();
            size_t nnodes = sim_.design().num_nodes();
            if (stmt.size() != nnodes || taken.size() != nnodes ||
                not_taken.size() != nnodes)
                fatal("checkpoint coverage state does not match this "
                      "design's node count");
            sim_.restore_coverage(std::move(stmt), std::move(taken),
                                  std::move(not_taken));
        } else if (!sim_.coverage().empty()) {
            // Full-overwrite contract: a snapshot taken before coverage
            // was enabled restores to zero counts, clearing whatever a
            // reused model accumulated since (warm trial contexts).
            size_t nnodes = sim_.design().num_nodes();
            sim_.restore_coverage(std::vector<uint64_t>(nnodes, 0),
                                  std::vector<uint64_t>(nnodes, 0),
                                  std::vector<uint64_t>(nnodes, 0));
        }
    }

  private:
    ReferenceSim sim_;
    std::vector<uint64_t> commits_;
    std::vector<uint64_t> aborts_;
    std::vector<uint64_t> no_reasons_;
};

} // namespace koika
