/**
 * @file
 * The reference interpreter: Kôika's specification semantics.
 *
 * Implements the naive model of §3.1 directly: a beginning-of-cycle state,
 * a cycle log, and a rule log, where each log entry stores the read/write
 * set (rd0/rd1/wr0/wr1) and the data written at each port. Every other
 * execution engine in this repository (the Cuttlesim tiers, the generated
 * C++ models, the RTL simulators) is differential-tested against this
 * interpreter's committed register trace.
 *
 * Port semantics (paper §3.1):
 *  - rd0: forbidden if the cycle log has a write at either port; returns
 *    the beginning-of-cycle value.
 *  - rd1: forbidden if the cycle log has a wr1; returns the latest wr0
 *    data (rule log, then cycle log), else the beginning-of-cycle value.
 *  - wr0: forbidden if either log has rd1, wr0, or wr1.
 *  - wr1: forbidden if either log has wr1.
 */
#pragma once

#include <vector>

#include "koika/design.hpp"

namespace koika {

/** Read/write set plus port data for one register in one log. */
struct LogEntry
{
    bool rd0 = false;
    bool rd1 = false;
    bool wr0 = false;
    bool wr1 = false;
    Bits data0;
    Bits data1;
};

class ReferenceSim
{
  public:
    explicit ReferenceSim(const Design& design);

    /** Run one cycle using the design's scheduler. */
    void cycle();

    /**
     * Run one cycle with an explicit rule order (case study 2:
     * scheduler randomization).
     */
    void cycle_with_order(const std::vector<int>& order);

    /** Committed architectural state (valid between cycles). */
    const std::vector<Bits>& state() const { return state_; }
    const Bits& reg(int i) const { return state_[(size_t)i]; }
    /** Poke a register between cycles (peripherals, test setup). */
    void set_reg(int i, Bits v);

    /** Which rules committed during the most recent cycle. */
    const std::vector<bool>& fired() const { return fired_; }

    uint64_t cycles_run() const { return cycles_; }

    const Design& design() const { return d_; }

    /**
     * Enable Gcov-style execution counting: every AST node's evaluation
     * count is recorded (case study 4 gathers architectural statistics
     * this way — see harness/coverage.hpp for the annotated report).
     */
    void enable_coverage();
    /** Per-node execution counts (indexed by Action::id). */
    const std::vector<uint64_t>& coverage() const { return coverage_; }
    /** Per-node branch outcomes (meaningful at `if`/`guard` nodes):
     *  condition truthy / guard passed. Empty until enable_coverage. */
    const std::vector<uint64_t>& branch_taken() const { return taken_; }
    /** Else arm taken / guard failed. */
    const std::vector<uint64_t>& branch_not_taken() const
    {
        return not_taken_;
    }

    /** Checkpoint restore: overwrite the cycle counter and last fired
     *  set (sizes must already match the design). */
    void
    restore_progress(uint64_t cycles, std::vector<bool> fired)
    {
        cycles_ = cycles;
        fired_ = std::move(fired);
    }
    /** Checkpoint restore: overwrite the per-node counters; implies
     *  enable_coverage. */
    void
    restore_coverage(std::vector<uint64_t> stmt,
                     std::vector<uint64_t> taken,
                     std::vector<uint64_t> not_taken)
    {
        enable_coverage();
        coverage_ = std::move(stmt);
        taken_ = std::move(taken);
        not_taken_ = std::move(not_taken);
    }

  private:
    struct RuleAbort {};

    /** Run one rule; returns true if it committed. */
    bool run_rule(int rule_index);
    Bits eval(const Action* a);
    Bits do_read(const Action* a);
    void do_write(const Action* a, Bits value);

    const Design& d_;
    std::vector<Bits> state_;
    std::vector<LogEntry> cycle_log_;
    std::vector<LogEntry> rule_log_;
    /** Stack of evaluation frames (rule frame + one per active call). */
    std::vector<std::vector<Bits>> frames_;
    std::vector<bool> fired_;
    uint64_t cycles_ = 0;
    bool coverage_enabled_ = false;
    std::vector<uint64_t> coverage_;
    std::vector<uint64_t> taken_, not_taken_;
};

} // namespace koika
