/**
 * @file
 * Static analysis of Kôika designs (paper §3.3).
 *
 * A straightforward abstract-interpretation pass annotates each read,
 * write, and guard with a conservative approximation of the rule log at
 * that point, computes per-register "may this operation fail?" flags (a
 * tribool version of the PLDI'20 Fig. 5 will-fire conditions), and derives
 * the design-specific facts that the optimized Cuttlesim engines and the
 * code generator rely on:
 *
 *  - register classification (plain register / wire / EHR),
 *  - safe registers (no operation on them can ever cause a conflict,
 *    so their read-write sets can be discarded entirely),
 *  - per-rule footprints (which registers need commit/rollback copies),
 *  - fail points that need no rollback (early guards),
 *  - detection of the "Goldbergian" wr1-then-rd1 anti-pattern that the
 *    merged-data representation does not support (Cuttlesim warns and
 *    ignores it; we do the same).
 *
 * The analysis is schedule-aware: the approximate cycle log for the rule
 * at position i combines the rule logs of rules scheduled before i.
 */
#pragma once

#include <vector>

#include "koika/design.hpp"

namespace koika::analysis {

/** Three-valued "did this operation happen?" flag. */
enum class Tri : uint8_t { kNo = 0, kMaybe = 1, kYes = 2 };

Tri tri_join(Tri a, Tri b);   ///< Control-flow merge (No ∨ Yes = Maybe).
Tri tri_after(Tri a, Tri b);  ///< Sequential accumulate (max).
inline bool tri_possible(Tri t) { return t != Tri::kNo; }

/** Abstract log entry for one register. */
struct AbsEntry
{
    Tri rd0 = Tri::kNo;
    Tri rd1 = Tri::kNo;
    Tri wr0 = Tri::kNo;
    Tri wr1 = Tri::kNo;
};

/** Per-node facts for read/write/guard nodes (indexed by Action::id). */
struct OpInfo
{
    /** Could this operation abort the rule? */
    bool may_fail = false;
    /**
     * If it aborts, is the accumulated log still pristine (no writes, no
     * tracked reads), so the failure needs no rollback (§3.3 "speed up
     * early failures")?
     */
    bool clean_at_fail = true;
};

struct RuleSummary
{
    /** Final abstract rule log (the rule's possible effects). */
    std::vector<AbsEntry> log;
    /** Per register: may an op on it abort this rule? */
    std::vector<bool> reg_may_fail;
    /** May the rule abort at all (conflicts or explicit guards)? */
    bool may_fail = false;
    /** Registers this rule may write (data must be committed/rolled back). */
    std::vector<int> footprint_writes;
    /**
     * Registers whose tracked read-write set this rule may change
     * (writes, plus rd1 marks). Safe registers are filtered out by
     * consumers that do not track them.
     */
    std::vector<int> footprint_tracked;
};

/** §3.3 register classification. */
enum class RegClass : uint8_t { kUnused, kPlain, kWire, kEhr };

const char* reg_class_name(RegClass c);

struct DesignAnalysis
{
    std::vector<RuleSummary> rules;
    /** Whole-cycle abstract log over the design's schedule. */
    std::vector<AbsEntry> cycle_log;
    std::vector<RegClass> reg_class;
    /** True if no operation on the register can ever fail. */
    std::vector<bool> reg_safe;
    /** Indexed by Action::id. */
    std::vector<OpInfo> ops;
    /** wr1-then-rd1 on the same register inside one rule (warned). */
    bool goldbergian = false;

    size_t num_safe_registers() const;
};

/** Analyze a typechecked design. */
DesignAnalysis analyze(const koika::Design& design);

} // namespace koika::analysis
