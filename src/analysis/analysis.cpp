#include "analysis/analysis.hpp"

#include <algorithm>

namespace koika::analysis {

using koika::Action;
using koika::ActionKind;
using koika::Design;
using koika::Port;

Tri
tri_join(Tri a, Tri b)
{
    return a == b ? a : Tri::kMaybe;
}

Tri
tri_after(Tri a, Tri b)
{
    return (uint8_t)a >= (uint8_t)b ? a : b;
}

const char*
reg_class_name(RegClass c)
{
    switch (c) {
      case RegClass::kUnused: return "unused";
      case RegClass::kPlain: return "plain";
      case RegClass::kWire: return "wire";
      case RegClass::kEhr: return "EHR";
    }
    return "?";
}

size_t
DesignAnalysis::num_safe_registers() const
{
    return (size_t)std::count(reg_safe.begin(), reg_safe.end(), true);
}

namespace {

/** Abstract evaluation of one rule body. */
class RuleWalker
{
  public:
    RuleWalker(const Design& d, const std::vector<AbsEntry>& cycle_log,
               DesignAnalysis& out, RuleSummary& summary)
        : d_(d), cycle_(cycle_log), out_(out), summary_(summary)
    {
        log_.resize(d.num_registers());
    }

    void
    run(const Action* body)
    {
        walk(body, Tri::kYes);
        summary_.log = log_;
        finish_footprints();
    }

  private:
    /** Is the literal a constant 1-bit value? Returns -1/0/1. */
    static int
    const_bool(const Action* a)
    {
        if (a->kind != ActionKind::kConst || a->value.width() != 1)
            return -1;
        return a->value.is_zero() ? 0 : 1;
    }

    bool
    log_dirty() const
    {
        for (const AbsEntry& e : log_)
            if (tri_possible(e.wr0) || tri_possible(e.wr1) ||
                tri_possible(e.rd1))
                return true;
        return false;
    }

    void
    record_op(const Action* a, bool may_fail)
    {
        OpInfo& info = out_.ops[(size_t)a->id];
        info.may_fail = may_fail;
        info.clean_at_fail = !log_dirty();
        if (may_fail) {
            summary_.may_fail = true;
            if (a->kind != ActionKind::kGuard)
                summary_.reg_may_fail[(size_t)a->reg] = true;
        }
    }

    void
    walk(const Action* a, Tri pred)
    {
        if (pred == Tri::kNo)
            return;
        switch (a->kind) {
          case ActionKind::kConst:
          case ActionKind::kVar:
            return;

          case ActionKind::kLet:
            walk(a->a0, pred);
            walk(a->a1, pred);
            return;

          case ActionKind::kAssign:
          case ActionKind::kUnop:
          case ActionKind::kGetField:
            walk(a->a0, pred);
            return;

          case ActionKind::kSeq:
          case ActionKind::kBinop:
          case ActionKind::kSubstField:
            walk(a->a0, pred);
            walk(a->a1, pred);
            return;

          case ActionKind::kIf: {
            walk(a->a0, pred);
            int cb = const_bool(a->a0);
            if (cb == 1) {
                walk(a->a1, pred);
                return;
            }
            if (cb == 0) {
                walk(a->a2, pred);
                return;
            }
            // With a non-constant condition, each branch runs at most
            // Maybe-often.
            Tri branch_pred = (pred == Tri::kYes) ? Tri::kMaybe : pred;
            std::vector<AbsEntry> saved = log_;
            walk(a->a1, branch_pred);
            std::vector<AbsEntry> after_then = std::move(log_);
            log_ = std::move(saved);
            walk(a->a2, branch_pred);
            for (size_t i = 0; i < log_.size(); ++i) {
                log_[i].rd0 = tri_join(log_[i].rd0, after_then[i].rd0);
                log_[i].rd1 = tri_join(log_[i].rd1, after_then[i].rd1);
                log_[i].wr0 = tri_join(log_[i].wr0, after_then[i].wr0);
                log_[i].wr1 = tri_join(log_[i].wr1, after_then[i].wr1);
            }
            return;
          }

          case ActionKind::kRead: {
            AbsEntry& cl = cycle_[(size_t)a->reg];
            AbsEntry& rl = log_[(size_t)a->reg];
            bool may_fail;
            if (a->port == Port::p0) {
                may_fail = tri_possible(cl.wr0) || tri_possible(cl.wr1);
                record_op(a, may_fail);
                rl.rd0 = tri_after(rl.rd0, pred);
            } else {
                may_fail = tri_possible(cl.wr1);
                record_op(a, may_fail);
                if (tri_possible(rl.wr1))
                    out_.goldbergian = true;
                rl.rd1 = tri_after(rl.rd1, pred);
            }
            return;
          }

          case ActionKind::kWrite: {
            walk(a->a0, pred);
            AbsEntry& cl = cycle_[(size_t)a->reg];
            AbsEntry& rl = log_[(size_t)a->reg];
            bool may_fail;
            if (a->port == Port::p0) {
                may_fail = tri_possible(cl.rd1) || tri_possible(cl.wr0) ||
                           tri_possible(cl.wr1) || tri_possible(rl.rd1) ||
                           tri_possible(rl.wr0) || tri_possible(rl.wr1);
                record_op(a, may_fail);
                rl.wr0 = tri_after(rl.wr0, pred);
            } else {
                may_fail = tri_possible(cl.wr1) || tri_possible(rl.wr1);
                record_op(a, may_fail);
                rl.wr1 = tri_after(rl.wr1, pred);
            }
            return;
          }

          case ActionKind::kGuard: {
            walk(a->a0, pred);
            int cb = const_bool(a->a0);
            record_op(a, cb != 1);
            return;
          }

          case ActionKind::kCall:
            // Function bodies are pure; only the arguments matter.
            for (const Action* arg : a->args)
                walk(arg, pred);
            return;
        }
    }

    void
    finish_footprints()
    {
        for (size_t r = 0; r < log_.size(); ++r) {
            const AbsEntry& e = log_[r];
            if (tri_possible(e.wr0) || tri_possible(e.wr1))
                summary_.footprint_writes.push_back((int)r);
            if (tri_possible(e.wr0) || tri_possible(e.wr1) ||
                tri_possible(e.rd1))
                summary_.footprint_tracked.push_back((int)r);
        }
    }

    const Design& d_;
    /** Cycle log entering this rule (copied; not mutated). */
    std::vector<AbsEntry> cycle_;
    DesignAnalysis& out_;
    RuleSummary& summary_;
    std::vector<AbsEntry> log_;
};

/** Fold a completed rule's log into the running cycle approximation. */
void
merge_into_cycle(std::vector<AbsEntry>& cycle, const RuleSummary& summary)
{
    // A rule that may fail contributes at most Maybe.
    auto cap = [&](Tri t) {
        if (summary.may_fail && t == Tri::kYes)
            return Tri::kMaybe;
        return t;
    };
    for (size_t i = 0; i < cycle.size(); ++i) {
        cycle[i].rd0 = tri_after(cycle[i].rd0, cap(summary.log[i].rd0));
        cycle[i].rd1 = tri_after(cycle[i].rd1, cap(summary.log[i].rd1));
        cycle[i].wr0 = tri_after(cycle[i].wr0, cap(summary.log[i].wr0));
        cycle[i].wr1 = tri_after(cycle[i].wr1, cap(summary.log[i].wr1));
    }
}

} // namespace

DesignAnalysis
analyze(const Design& design)
{
    KOIKA_CHECK(design.typechecked);
    DesignAnalysis out;
    size_t nregs = design.num_registers();
    out.ops.resize(design.num_nodes());
    out.rules.resize(design.num_rules());
    for (auto& rs : out.rules)
        rs.reg_may_fail.assign(nregs, false);
    out.cycle_log.assign(nregs, AbsEntry{});

    // Forward pass in schedule order: the cycle log entering rule i is the
    // combination of the logs of rules scheduled before it.
    std::vector<bool> analyzed(design.num_rules(), false);
    for (int r : design.schedule_order()) {
        RuleSummary& summary = out.rules[(size_t)r];
        RuleWalker walker(design, out.cycle_log, out, summary);
        walker.run(design.rule(r).body);
        merge_into_cycle(out.cycle_log, summary);
        analyzed[(size_t)r] = true;
    }
    // Unscheduled rules still get summaries (against the full cycle log),
    // so tools that run them ad hoc have conservative facts.
    for (size_t r = 0; r < design.num_rules(); ++r) {
        if (analyzed[r])
            continue;
        RuleSummary& summary = out.rules[r];
        RuleWalker walker(design, out.cycle_log, out, summary);
        walker.run(design.rule((int)r).body);
    }

    // Classification and safety (over scheduled rules only).
    out.reg_class.assign(nregs, RegClass::kUnused);
    out.reg_safe.assign(nregs, true);
    for (size_t reg = 0; reg < nregs; ++reg) {
        bool rd0 = false, rd1 = false, wr0 = false, wr1 = false;
        for (int r : design.schedule_order()) {
            const AbsEntry& e = out.rules[(size_t)r].log[reg];
            rd0 |= tri_possible(e.rd0);
            rd1 |= tri_possible(e.rd1);
            wr0 |= tri_possible(e.wr0);
            wr1 |= tri_possible(e.wr1);
            if (out.rules[(size_t)r].reg_may_fail[reg])
                out.reg_safe[reg] = false;
        }
        if (!rd0 && !rd1 && !wr0 && !wr1)
            out.reg_class[reg] = RegClass::kUnused;
        else if (!rd1 && !wr1)
            out.reg_class[reg] = RegClass::kPlain;
        else if (wr0 && rd1 && !rd0 && !wr1)
            out.reg_class[reg] = RegClass::kWire;
        else
            out.reg_class[reg] = RegClass::kEhr;
    }
    return out;
}

} // namespace koika::analysis
