#include "analysis/coverage_points.hpp"

namespace koika::analysis {

namespace {

/**
 * Mark `a` and its statement-position descendants. Mirrors both the
 * emitter's statement layout (codegen/cpp_emit.cpp, emit_stmt) and the
 * annotated listing (harness/coverage.cpp): `seq` is glue, a `let`
 * binding is one line whose bound value is expression-nested, an `if`
 * is a branch whose arms are statement blocks, a `guard` is a branch
 * leaf, and any other action in statement position is a statement leaf.
 */
void
walk_stmt(const Action* a, std::vector<CoverKind>& kinds)
{
    switch (a->kind) {
      case ActionKind::kSeq:
        walk_stmt(a->a0, kinds);
        walk_stmt(a->a1, kinds);
        return;
      case ActionKind::kLet:
        // The binding is the statement; the bound value (a0) is an
        // expression. The body continues the statement block.
        kinds[(size_t)a->id] = CoverKind::kStmt;
        walk_stmt(a->a1, kinds);
        return;
      case ActionKind::kIf:
        kinds[(size_t)a->id] = CoverKind::kBranch;
        walk_stmt(a->a1, kinds);
        walk_stmt(a->a2, kinds);
        return;
      case ActionKind::kGuard:
        kinds[(size_t)a->id] = CoverKind::kBranch;
        return;
      default:
        kinds[(size_t)a->id] = CoverKind::kStmt;
        return;
    }
}

} // namespace

std::vector<CoverKind>
coverage_points(const Design& design)
{
    std::vector<CoverKind> kinds(design.num_nodes(), CoverKind::kNone);
    for (size_t r = 0; r < design.num_rules(); ++r)
        walk_stmt(design.rule((int)r).body, kinds);
    return kinds;
}

CoverageShape
count_points(const std::vector<CoverKind>& kinds)
{
    CoverageShape shape;
    for (CoverKind k : kinds) {
        if (k != CoverKind::kNone)
            ++shape.statements;
        if (k == CoverKind::kBranch)
            ++shape.branches;
    }
    return shape;
}

} // namespace koika::analysis
