/**
 * @file
 * Statement/branch-point classification for design coverage.
 *
 * Coverage must mean the same thing on every engine — the AST
 * interpreters (reference, tiers T0–T5) and the generated C++ models.
 * The interpreters naturally visit every AST node; the generated code
 * only has increment sites where the emitter chose to place statements.
 * This classifier fixes a common vocabulary: it walks each rule body in
 * *statement position* exactly the way the code generator (and the
 * Gcov-style annotated listing in src/harness/coverage.cpp) lay out
 * lines, and marks:
 *
 *   - kStmt:   a node that renders as one executable line (a `let`
 *              binding, or a leaf action in statement position),
 *   - kBranch: a node with two runtime outcomes (`if` taken/not-taken,
 *              `guard` pass/fail),
 *   - kNone:   everything else — expression-nested nodes, let-bound
 *              values, `seq` glue, and combinational function bodies.
 *
 * Engines may count whatever is convenient internally; the coverage
 * layer (src/obs/coverage.hpp) masks counts down to the marked nodes,
 * so any two engines agree wherever the classifier agrees. Generated
 * models only instrument marked nodes in the first place.
 *
 * The walk is purely structural (no schedule or analysis input), so the
 * classification of a design is stable across engines and processes.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "koika/design.hpp"

namespace koika::analysis {

/** Coverage role of one AST node (indexed by Action::id). */
enum class CoverKind : uint8_t {
    kNone = 0,   ///< Not a coverage point.
    kStmt = 1,   ///< Statement point: one execution count.
    kBranch = 2, ///< Branch point: statement count + taken/not-taken.
};

/**
 * Classify every node of the design; the result has exactly
 * design.num_nodes() entries. Only rule bodies are walked (function
 * bodies are combinational helpers, never statement positions).
 */
std::vector<CoverKind> coverage_points(const Design& design);

/** Totals over a classification (the denominators of % coverage). */
struct CoverageShape
{
    uint64_t statements = 0; ///< kStmt + kBranch nodes.
    uint64_t branches = 0;   ///< kBranch nodes (each has 2 outcomes).
};

CoverageShape count_points(const std::vector<CoverKind>& kinds);

} // namespace koika::analysis
