/**
 * @file
 * Levelized cycle-based netlist simulation (the Verilator stand-in).
 *
 * Exactly Verilator's execution model (§2.3, related work): every
 * combinational node is evaluated once per cycle in topological order,
 * then registers latch their next values. No work is ever skipped — the
 * datapath of every rule is computed every cycle whether or not the rule
 * fires, which is what makes RTL simulation of rule-based designs slow on
 * sequential hosts.
 */
#pragma once

#include "rtl/netlist.hpp"
#include "sim/model.hpp"

namespace koika::rtl {

class CycleSim final : public sim::Model
{
  public:
    explicit CycleSim(Netlist netlist);

    void cycle() override;
    Bits get_reg(int reg) const override { return regs_[(size_t)reg]; }
    void set_reg(int reg, const Bits& value) override;
    uint64_t cycles_run() const override { return cycles_; }
    size_t num_regs() const override { return regs_.size(); }

    const Netlist& netlist() const { return nl_; }

  private:
    Netlist nl_;
    std::vector<Bits> regs_;
    std::vector<Bits> vals_;
    uint64_t cycles_ = 0;
};

} // namespace koika::rtl
