/**
 * @file
 * Netlist optimizer — the "better circuit compiler" baseline of Fig. 2.
 *
 * The paper's Q2 asks whether Cuttlesim's advantage is just an artifact
 * of Kôika generating naive circuits, and answers it by comparing against
 * Verilog produced by the commercial Bluespec compiler (which simulates
 * roughly 2x faster under Verilator). This pass plays that role: global
 * structural CSE, constant propagation, algebraic simplification, and
 * dead-node elimination typically shrink the lowered netlist
 * substantially — but cannot remove the fundamental all-rules-every-cycle
 * work, which is the paper's point.
 */
#pragma once

#include "rtl/netlist.hpp"

namespace koika::rtl {

/** Return an optimized copy of the netlist (semantics-preserving). */
Netlist optimize(const Netlist& input);

} // namespace koika::rtl
