/**
 * @file
 * Netlist -> C++ emitter: the compiled RTL simulator.
 *
 * This is how cycle-based Verilog simulators (Verilator and the
 * Verilog-to-C compilers of the related work) actually execute: the
 * netlist is translated into straight-line C++ that evaluates every
 * combinational node every cycle, then latches registers. Emitting and
 * compiling this next to the Cuttlesim model gives Figure 1 its honest,
 * compiled-vs-compiled comparison — the difference left is exactly the
 * paper's point: the RTL model must compute every rule's datapath every
 * cycle, while the Cuttlesim model exits rules early.
 *
 * The generated class has the same flat register interface
 * (get_reg_words / set_reg_words / kNumRegs / cycles) as Cuttlesim
 * models, so the same harness and the same peripherals drive both.
 */
#pragma once

#include <string>

#include "rtl/netlist.hpp"

namespace koika::rtl {

/** Generate a compiled-netlist model class named `class_name`. */
std::string emit_rtl_model(const Netlist& netlist,
                           const std::string& class_name);

} // namespace koika::rtl
