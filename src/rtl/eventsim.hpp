/**
 * @file
 * Event-driven (activity-based) netlist simulation — the Icarus-style
 * baseline. §4.1 notes event-driven simulators were "orders of magnitude
 * slower" than Verilator on these designs; this engine reproduces that
 * data point with a classic levelized event queue: only nodes whose
 * inputs changed are re-evaluated, at the cost of per-event bookkeeping.
 */
#pragma once

#include "rtl/netlist.hpp"
#include "sim/model.hpp"

namespace koika::rtl {

class EventSim final : public sim::Model
{
  public:
    explicit EventSim(Netlist netlist);

    void cycle() override;
    Bits get_reg(int reg) const override { return regs_[(size_t)reg]; }
    void set_reg(int reg, const Bits& value) override;
    uint64_t cycles_run() const override { return cycles_; }
    size_t num_regs() const override { return regs_.size(); }

    /** Total node evaluations performed (activity metric). */
    uint64_t events_processed() const { return events_; }

  private:
    void full_evaluate();
    void schedule_fanouts(size_t node);

    Netlist nl_;
    std::vector<Bits> regs_;
    std::vector<Bits> vals_;
    /** Per-node combinational level. */
    std::vector<uint32_t> level_;
    /** Fanout adjacency (CSR layout). */
    std::vector<uint32_t> fanout_start_;
    std::vector<uint32_t> fanout_;
    /** Level-bucketed event queue. */
    std::vector<std::vector<uint32_t>> buckets_;
    std::vector<bool> queued_;
    /** Register-output node ids per register. */
    std::vector<std::vector<uint32_t>> reg_nodes_;
    bool first_ = true;
    uint64_t cycles_ = 0;
    uint64_t events_ = 0;
};

} // namespace koika::rtl
