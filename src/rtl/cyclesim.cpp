#include "rtl/cyclesim.hpp"

namespace koika::rtl {

CycleSim::CycleSim(Netlist netlist)
    : nl_(std::move(netlist)), regs_(nl_.design().initial_state()),
      vals_(nl_.num_nodes())
{
    // Constants never change; load them once.
    for (size_t i = 0; i < nl_.num_nodes(); ++i)
        if (nl_.node((int)i).kind == NodeKind::kConst)
            vals_[i] = nl_.node((int)i).value;
}

void
CycleSim::set_reg(int reg, const Bits& value)
{
    KOIKA_CHECK(value.width() == regs_[(size_t)reg].width());
    regs_[(size_t)reg] = value;
}

void
CycleSim::cycle()
{
    static const Bits kUnit;
    size_t n = nl_.num_nodes();
    for (size_t i = 0; i < n; ++i) {
        const Node& node = nl_.node((int)i);
        switch (node.kind) {
          case NodeKind::kConst:
            break;
          case NodeKind::kReg:
            vals_[i] = regs_[(size_t)node.reg];
            break;
          default: {
            const Bits& a = node.a >= 0 ? vals_[(size_t)node.a] : kUnit;
            const Bits& b = node.b >= 0 ? vals_[(size_t)node.b] : kUnit;
            const Bits& c = node.c >= 0 ? vals_[(size_t)node.c] : kUnit;
            vals_[i] = Netlist::eval_node(node, a, b, c);
            break;
          }
        }
    }
    for (size_t r = 0; r < regs_.size(); ++r)
        regs_[r] = vals_[(size_t)nl_.reg_next((int)r)];
    ++cycles_;
}

} // namespace koika::rtl
