#include "rtl/netlist.hpp"

namespace koika::rtl {

Netlist::Netlist(const Design& design) : design_(&design)
{
    reg_next_.assign(design.num_registers(), -1);
    zero_ = push(Node{.kind = NodeKind::kConst, .width = 1,
                      .value = Bits::of(1, 0)});
    one_ = push(Node{.kind = NodeKind::kConst, .width = 1,
                     .value = Bits::of(1, 1)});
}

int
Netlist::push(Node n)
{
    nodes_.push_back(std::move(n));
    return (int)nodes_.size() - 1;
}

const Bits*
Netlist::const_value(int id) const
{
    const Node& n = nodes_[(size_t)id];
    return n.kind == NodeKind::kConst ? &n.value : nullptr;
}

int
Netlist::add_const(Bits v)
{
    if (v.width() == 1)
        return v.is_zero() ? zero_ : one_;
    uint32_t w = v.width();
    return push(Node{.kind = NodeKind::kConst, .width = w,
                     .value = std::move(v)});
}

int
Netlist::add_reg(int reg)
{
    return push(Node{.kind = NodeKind::kReg,
                     .width = design_->reg(reg).type->width, .reg = reg});
}

uint32_t
Netlist::result_width(Op op, uint32_t wa, uint32_t wb, uint32_t imm0,
                      uint32_t imm1)
{
    switch (op) {
      case Op::kNot:
      case Op::kNeg:
        return wa;
      case Op::kZExtL:
      case Op::kSExtL:
        return imm0;
      case Op::kSlice:
        return imm1;
      case Op::kAnd:
      case Op::kOr:
      case Op::kXor:
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
        KOIKA_CHECK(wa == wb);
        return wa;
      case Op::kEq:
      case Op::kNe:
      case Op::kLtu:
      case Op::kLeu:
      case Op::kGtu:
      case Op::kGeu:
      case Op::kLts:
      case Op::kLes:
      case Op::kGts:
      case Op::kGes:
        return 1;
      case Op::kLsl:
      case Op::kLsr:
      case Op::kAsr:
        return wa;
      case Op::kConcat:
        return wa + wb;
    }
    panic("bad op");
}

Bits
Netlist::eval_node(const Node& n, const Bits& a, const Bits& b,
                   const Bits& c)
{
    switch (n.kind) {
      case NodeKind::kConst:
        return n.value;
      case NodeKind::kReg:
        panic("register nodes are resolved by the simulator");
      case NodeKind::kMux:
        return a.truthy() ? b : c;
      case NodeKind::kUnop:
        switch (n.op) {
          case Op::kNot: return a.bnot();
          case Op::kNeg: return a.neg();
          case Op::kZExtL: return a.zextl(n.imm0);
          case Op::kSExtL: return a.sextl(n.imm0);
          case Op::kSlice: return a.slice(n.imm0, n.imm1);
          default: panic("bad unop");
        }
      case NodeKind::kBinop:
        switch (n.op) {
          case Op::kAnd: return a.band(b);
          case Op::kOr: return a.bor(b);
          case Op::kXor: return a.bxor(b);
          case Op::kAdd: return a.add(b);
          case Op::kSub: return a.sub(b);
          case Op::kMul: return a.mul(b);
          case Op::kEq: return a.eq(b);
          case Op::kNe: return a.ne(b);
          case Op::kLtu: return a.ltu(b);
          case Op::kLeu: return a.leu(b);
          case Op::kGtu: return a.gtu(b);
          case Op::kGeu: return a.geu(b);
          case Op::kLts: return a.lts(b);
          case Op::kLes: return a.les(b);
          case Op::kGts: return a.gts(b);
          case Op::kGes: return a.ges(b);
          case Op::kLsl: return a.shl(b);
          case Op::kLsr: return a.shr(b);
          case Op::kAsr: return a.asr(b);
          case Op::kConcat: return a.concat(b);
          default: panic("bad binop");
        }
    }
    panic("unreachable");
}

int
Netlist::add_unop(Op op, int a, uint32_t imm0, uint32_t imm1)
{
    const Bits* ca = const_value(a);
    uint32_t w = result_width(op, nodes_[(size_t)a].width, 0, imm0, imm1);
    if (ca != nullptr) {
        Node tmp{.kind = NodeKind::kUnop, .op = op, .width = w,
                 .imm0 = imm0, .imm1 = imm1};
        return add_const(eval_node(tmp, *ca, Bits(), Bits()));
    }
    // !!x -> x
    if (op == Op::kNot && nodes_[(size_t)a].kind == NodeKind::kUnop &&
        nodes_[(size_t)a].op == Op::kNot)
        return nodes_[(size_t)a].a;
    // Width-preserving zext is a no-op.
    if ((op == Op::kZExtL || op == Op::kSExtL) &&
        imm0 == nodes_[(size_t)a].width)
        return a;
    // Full-width slice is a no-op.
    if (op == Op::kSlice && imm0 == 0 && imm1 == nodes_[(size_t)a].width)
        return a;
    return push(Node{.kind = NodeKind::kUnop, .op = op, .width = w,
                     .imm0 = imm0, .imm1 = imm1, .a = a});
}

int
Netlist::add_binop(Op op, int a, int b)
{
    const Node& na = nodes_[(size_t)a];
    const Node& nb = nodes_[(size_t)b];
    const Bits* ca = const_value(a);
    const Bits* cb = const_value(b);
    uint32_t w = result_width(op, na.width, nb.width, 0, 0);
    if (ca != nullptr && cb != nullptr) {
        Node tmp{.kind = NodeKind::kBinop, .op = op, .width = w};
        return add_const(eval_node(tmp, *ca, *cb, Bits()));
    }
    // Identities (x & 0, x & ~0, x | 0, x | ~0, x ^ 0, x +- 0) keep the
    // scheduler logic compact.
    if (op == Op::kAnd) {
        if (ca != nullptr && ca->is_zero())
            return add_const(Bits::zeroes(w));
        if (cb != nullptr && cb->is_zero())
            return add_const(Bits::zeroes(w));
        if (ca != nullptr && *ca == Bits::ones(w))
            return b;
        if (cb != nullptr && *cb == Bits::ones(w))
            return a;
    }
    if (op == Op::kOr) {
        if (ca != nullptr && ca->is_zero())
            return b;
        if (cb != nullptr && cb->is_zero())
            return a;
        if (ca != nullptr && *ca == Bits::ones(w))
            return a;
        if (cb != nullptr && *cb == Bits::ones(w))
            return b;
    }
    if (op == Op::kXor) {
        if (ca != nullptr && ca->is_zero())
            return b;
        if (cb != nullptr && cb->is_zero())
            return a;
    }
    if ((op == Op::kAdd || op == Op::kSub) && cb != nullptr &&
        cb->is_zero())
        return a;
    return push(Node{.kind = NodeKind::kBinop, .op = op, .width = w,
                     .a = a, .b = b});
}

int
Netlist::add_mux(int cond, int t, int e)
{
    const Bits* cc = const_value(cond);
    if (cc != nullptr)
        return cc->is_zero() ? e : t;
    if (t == e)
        return t;
    KOIKA_CHECK(nodes_[(size_t)cond].width == 1);
    KOIKA_CHECK(nodes_[(size_t)t].width == nodes_[(size_t)e].width);
    // mux(c, 1, 0) -> c ; mux(c, 0, 1) -> !c (1-bit only).
    if (nodes_[(size_t)t].width == 1) {
        const Bits* ct = const_value(t);
        const Bits* ce = const_value(e);
        if (ct != nullptr && ce != nullptr) {
            if (!ct->is_zero() && ce->is_zero())
                return cond;
            if (ct->is_zero() && !ce->is_zero())
                return b_not(cond);
        }
    }
    return push(Node{.kind = NodeKind::kMux,
                     .width = nodes_[(size_t)t].width, .a = cond, .b = t,
                     .c = e});
}

} // namespace koika::rtl
