#include "rtl/optimize.hpp"

#include <unordered_map>

namespace koika::rtl {

namespace {

/** Structural key for CSE. */
struct NodeKey
{
    uint8_t kind;
    uint8_t op;
    uint32_t imm0, imm1;
    int a, b, c;
    int reg;
    size_t value_hash;

    bool
    operator==(const NodeKey& o) const
    {
        return kind == o.kind && op == o.op && imm0 == o.imm0 &&
               imm1 == o.imm1 && a == o.a && b == o.b && c == o.c &&
               reg == o.reg && value_hash == o.value_hash;
    }
};

struct NodeKeyHash
{
    size_t
    operator()(const NodeKey& k) const
    {
        size_t h = 1469598103934665603ull;
        auto mix = [&h](size_t v) {
            h ^= v;
            h *= 1099511628211ull;
        };
        mix(k.kind);
        mix(k.op);
        mix(k.imm0);
        mix(((size_t)(uint32_t)k.a << 32) | (uint32_t)k.b);
        mix((size_t)(uint32_t)k.c);
        mix((size_t)(uint32_t)k.reg);
        mix(k.imm1);
        mix(k.value_hash);
        return h;
    }
};

Netlist
optimize_once(const Netlist& input)
{
    const Design& d = input.design();
    size_t n = input.num_nodes();

    // Pass 1: mark nodes reachable from register next-values (DCE).
    std::vector<bool> live(n, false);
    std::vector<int> stack;
    for (size_t r = 0; r < d.num_registers(); ++r)
        stack.push_back(input.reg_next((int)r));
    while (!stack.empty()) {
        int id = stack.back();
        stack.pop_back();
        if (id < 0 || live[(size_t)id])
            continue;
        live[(size_t)id] = true;
        const Node& node = input.node(id);
        for (int opnd : {node.a, node.b, node.c})
            if (opnd >= 0)
                stack.push_back(opnd);
    }

    // Pass 2: rebuild live nodes in order through the folding builder,
    // de-duplicating structurally identical nodes.
    Netlist out(d);
    std::vector<int> remap(n, -1);
    std::unordered_map<NodeKey, int, NodeKeyHash> cse;
    std::vector<int> reg_node(d.num_registers(), -1);

    auto emit = [&](size_t i) -> int {
        const Node& node = input.node((int)i);
        int a = node.a >= 0 ? remap[(size_t)node.a] : -1;
        int b = node.b >= 0 ? remap[(size_t)node.b] : -1;
        int c = node.c >= 0 ? remap[(size_t)node.c] : -1;
        switch (node.kind) {
          case NodeKind::kConst:
            return out.add_const(node.value);
          case NodeKind::kReg:
            if (reg_node[(size_t)node.reg] < 0)
                reg_node[(size_t)node.reg] = out.add_reg(node.reg);
            return reg_node[(size_t)node.reg];
          case NodeKind::kUnop:
            return out.add_unop(node.op, a, node.imm0, node.imm1);
          case NodeKind::kBinop:
            return out.add_binop(node.op, a, b);
          case NodeKind::kMux:
            return out.add_mux(a, b, c);
        }
        panic("unreachable");
    };

    for (size_t i = 0; i < n; ++i) {
        if (!live[i])
            continue;
        const Node& node = input.node((int)i);
        NodeKey key{(uint8_t)node.kind,
                    (uint8_t)node.op,
                    node.imm0,
                    node.imm1,
                    node.a >= 0 ? remap[(size_t)node.a] : -1,
                    node.b >= 0 ? remap[(size_t)node.b] : -1,
                    node.c >= 0 ? remap[(size_t)node.c] : -1,
                    node.reg,
                    node.kind == NodeKind::kConst ? node.value.hash() : 0};
        auto it = cse.find(key);
        if (it != cse.end()) {
            remap[i] = it->second;
            continue;
        }
        int id = emit(i);
        cse.emplace(key, id);
        remap[i] = id;
    }

    for (size_t r = 0; r < d.num_registers(); ++r)
        out.set_reg_next((int)r, remap[(size_t)input.reg_next((int)r)]);
    return out;
}

} // namespace

Netlist
optimize(const Netlist& input)
{
    // Folding exposes new opportunities (constants feed muxes feed
    // identities); iterate to a fixpoint, bounded for safety.
    Netlist out = optimize_once(input);
    for (int round = 0; round < 4; ++round) {
        size_t before = out.num_nodes();
        out = optimize_once(out);
        if (out.num_nodes() >= before)
            break;
    }
    return out;
}

} // namespace koika::rtl
