#include "rtl/lower.hpp"

namespace koika::rtl {

namespace {

/** Symbolic log entry: node ids for the four flags and two data wires. */
struct SymEntry
{
    int rd0, rd1, wr0, wr1;
    int data0, data1;
};

class Lowerer
{
  public:
    explicit Lowerer(const Design& d) : d_(d), nl_(d) {}

    Netlist
    run()
    {
        size_t n = d_.num_registers();
        q_.resize(n);
        cycle_.resize(n);
        for (size_t r = 0; r < n; ++r) {
            q_[r] = nl_.add_reg((int)r);
            cycle_[r] = SymEntry{nl_.zero(), nl_.zero(), nl_.zero(),
                                 nl_.zero(), q_[r], q_[r]};
        }
        for (int r : d_.schedule_order())
            lower_rule(r);
        for (size_t r = 0; r < n; ++r) {
            int next = nl_.add_mux(
                cycle_[r].wr1, cycle_[r].data1,
                nl_.add_mux(cycle_[r].wr0, cycle_[r].data0, q_[r]));
            nl_.set_reg_next((int)r, next);
        }
        return std::move(nl_);
    }

  private:
    void
    lower_rule(int rule)
    {
        size_t n = d_.num_registers();
        rule_.assign(n, SymEntry{});
        for (size_t r = 0; r < n; ++r) {
            // Rule-log data defaults are never observed before a write
            // (the wr0/wr1 flags gate them); use Q to keep widths right.
            rule_[r] = SymEntry{nl_.zero(), nl_.zero(), nl_.zero(),
                                nl_.zero(), q_[r], q_[r]};
        }
        fail_ = nl_.zero();
        frames_.clear();
        frames_.emplace_back((size_t)d_.rule(rule).nslots, -1);
        eval(d_.rule(rule).body, nl_.one());

        int will_fire = nl_.b_not(fail_);
        // Merge the rule log into the cycle log when the rule fires.
        for (size_t r = 0; r < n; ++r) {
            SymEntry& cl = cycle_[r];
            const SymEntry& rl = rule_[r];
            int m_rd0 = nl_.b_or(cl.rd0, rl.rd0);
            int m_rd1 = nl_.b_or(cl.rd1, rl.rd1);
            int m_wr0 = nl_.b_or(cl.wr0, rl.wr0);
            int m_wr1 = nl_.b_or(cl.wr1, rl.wr1);
            int m_d0 = nl_.add_mux(rl.wr0, rl.data0, cl.data0);
            int m_d1 = nl_.add_mux(rl.wr1, rl.data1, cl.data1);
            cl.rd0 = nl_.add_mux(will_fire, m_rd0, cl.rd0);
            cl.rd1 = nl_.add_mux(will_fire, m_rd1, cl.rd1);
            cl.wr0 = nl_.add_mux(will_fire, m_wr0, cl.wr0);
            cl.wr1 = nl_.add_mux(will_fire, m_wr1, cl.wr1);
            cl.data0 = nl_.add_mux(will_fire, m_d0, cl.data0);
            cl.data1 = nl_.add_mux(will_fire, m_d1, cl.data1);
        }
    }

    /** Evaluate an action under predicate `pred`; returns a value node. */
    int
    eval(const Action* a, int pred)
    {
        switch (a->kind) {
          case ActionKind::kConst:
            return nl_.add_const(a->value);

          case ActionKind::kVar:
            return frames_.back()[(size_t)a->slot];

          case ActionKind::kLet: {
            int v = eval(a->a0, pred);
            frames_.back()[(size_t)a->slot] = v;
            return eval(a->a1, pred);
          }

          case ActionKind::kAssign: {
            int v = eval(a->a0, pred);
            int& slot = frames_.back()[(size_t)a->slot];
            // Predicated execution: the assignment only lands when the
            // surrounding control flow is live.
            slot = nl_.add_mux(pred, v, slot);
            return unit();
          }

          case ActionKind::kSeq:
            eval(a->a0, pred);
            return eval(a->a1, pred);

          case ActionKind::kIf: {
            int c = eval(a->a0, pred);
            int then_pred = nl_.b_and(pred, c);
            int else_pred = nl_.b_and(pred, nl_.b_not(c));
            int tv = eval(a->a1, then_pred);
            int ev = eval(a->a2, else_pred);
            return nl_.add_mux(c, tv, ev);
          }

          case ActionKind::kRead:
            return lower_read(a, pred);

          case ActionKind::kWrite: {
            int v = eval(a->a0, pred);
            lower_write(a, pred, v);
            return unit();
          }

          case ActionKind::kGuard: {
            int c = eval(a->a0, pred);
            fail_ = nl_.b_or(fail_, nl_.b_and(pred, nl_.b_not(c)));
            return unit();
          }

          case ActionKind::kUnop:
            return nl_.add_unop(a->op, eval(a->a0, pred), a->imm0,
                                a->imm1);

          case ActionKind::kBinop: {
            int x = eval(a->a0, pred);
            int y = eval(a->a1, pred);
            return nl_.add_binop(a->op, x, y);
          }

          case ActionKind::kGetField: {
            int v = eval(a->a0, pred);
            const Field& f = a->a0->type->fields[(size_t)a->field_index];
            return nl_.add_unop(Op::kSlice, v, f.offset, f.type->width);
          }

          case ActionKind::kSubstField: {
            int s = eval(a->a0, pred);
            int v = eval(a->a1, pred);
            const Field& f = a->a0->type->fields[(size_t)a->field_index];
            uint32_t sw = a->a0->type->width;
            uint32_t fw = f.type->width;
            // Rebuild via concat(high, field, low).
            int result = v;
            if (f.offset > 0) {
                int low = nl_.add_unop(Op::kSlice, s, 0, f.offset);
                result = nl_.add_binop(Op::kConcat, result, low);
            }
            if (f.offset + fw < sw) {
                int high = nl_.add_unop(Op::kSlice, s, f.offset + fw,
                                        sw - f.offset - fw);
                result = nl_.add_binop(Op::kConcat, high, result);
            }
            return result;
          }

          case ActionKind::kCall: {
            std::vector<int> vals;
            vals.reserve(a->args.size());
            for (const Action* arg : a->args)
                vals.push_back(eval(arg, pred));
            std::vector<int> frame((size_t)a->fn->nslots, -1);
            for (size_t i = 0; i < vals.size(); ++i)
                frame[i] = vals[i];
            frames_.push_back(std::move(frame));
            int r = eval(a->fn->body, pred);
            frames_.pop_back();
            return r;
          }
        }
        panic("unreachable");
    }

    int
    lower_read(const Action* a, int pred)
    {
        SymEntry& cl = cycle_[(size_t)a->reg];
        SymEntry& rl = rule_[(size_t)a->reg];
        if (a->port == Port::p0) {
            int conflict = nl_.b_or(cl.wr0, cl.wr1);
            fail_ = nl_.b_or(fail_, nl_.b_and(pred, conflict));
            rl.rd0 = nl_.b_or(rl.rd0, pred);
            return q_[(size_t)a->reg];
        }
        fail_ = nl_.b_or(fail_, nl_.b_and(pred, cl.wr1));
        rl.rd1 = nl_.b_or(rl.rd1, pred);
        return nl_.add_mux(rl.wr0, rl.data0,
                           nl_.add_mux(cl.wr0, cl.data0,
                                       q_[(size_t)a->reg]));
    }

    void
    lower_write(const Action* a, int pred, int v)
    {
        SymEntry& cl = cycle_[(size_t)a->reg];
        SymEntry& rl = rule_[(size_t)a->reg];
        if (a->port == Port::p0) {
            int conflict = nl_.b_or(
                nl_.b_or(nl_.b_or(cl.rd1, cl.wr0),
                         nl_.b_or(cl.wr1, rl.rd1)),
                nl_.b_or(rl.wr0, rl.wr1));
            fail_ = nl_.b_or(fail_, nl_.b_and(pred, conflict));
            rl.data0 = nl_.add_mux(pred, v, rl.data0);
            rl.wr0 = nl_.b_or(rl.wr0, pred);
        } else {
            int conflict = nl_.b_or(cl.wr1, rl.wr1);
            fail_ = nl_.b_or(fail_, nl_.b_and(pred, conflict));
            rl.data1 = nl_.add_mux(pred, v, rl.data1);
            rl.wr1 = nl_.b_or(rl.wr1, pred);
        }
    }

    int
    unit()
    {
        return nl_.add_const(Bits());
    }

    const Design& d_;
    Netlist nl_;
    std::vector<int> q_;
    std::vector<SymEntry> cycle_, rule_;
    int fail_ = -1;
    std::vector<std::vector<int>> frames_;
};

} // namespace

Netlist
lower(const Design& design)
{
    KOIKA_CHECK(design.typechecked);
    return Lowerer(design).run();
}

} // namespace koika::rtl
