#include "rtl/eventsim.hpp"

namespace koika::rtl {

EventSim::EventSim(Netlist netlist)
    : nl_(std::move(netlist)), regs_(nl_.design().initial_state()),
      vals_(nl_.num_nodes()), level_(nl_.num_nodes(), 0),
      queued_(nl_.num_nodes(), false),
      reg_nodes_(nl_.design().num_registers())
{
    size_t n = nl_.num_nodes();
    // Levels and fanout counts.
    std::vector<uint32_t> count(n, 0);
    for (size_t i = 0; i < n; ++i) {
        const Node& node = nl_.node((int)i);
        uint32_t lvl = 0;
        for (int opnd : {node.a, node.b, node.c}) {
            if (opnd >= 0) {
                ++count[(size_t)opnd];
                lvl = std::max(lvl, level_[(size_t)opnd] + 1);
            }
        }
        level_[i] = lvl;
        if (node.kind == NodeKind::kReg)
            reg_nodes_[(size_t)node.reg].push_back((uint32_t)i);
        if (node.kind == NodeKind::kConst)
            vals_[i] = node.value;
    }
    fanout_start_.assign(n + 1, 0);
    for (size_t i = 0; i < n; ++i)
        fanout_start_[i + 1] = fanout_start_[i] + count[i];
    fanout_.resize(fanout_start_[n]);
    std::vector<uint32_t> fill(fanout_start_.begin(),
                               fanout_start_.end() - 1);
    for (size_t i = 0; i < n; ++i) {
        const Node& node = nl_.node((int)i);
        for (int opnd : {node.a, node.b, node.c})
            if (opnd >= 0)
                fanout_[fill[(size_t)opnd]++] = (uint32_t)i;
    }
    uint32_t max_level = 0;
    for (uint32_t l : level_)
        max_level = std::max(max_level, l);
    buckets_.resize(max_level + 1);
}

void
EventSim::set_reg(int reg, const Bits& value)
{
    KOIKA_CHECK(value.width() == regs_[(size_t)reg].width());
    regs_[(size_t)reg] = value;
}

void
EventSim::full_evaluate()
{
    static const Bits kUnit;
    for (size_t i = 0; i < nl_.num_nodes(); ++i) {
        const Node& node = nl_.node((int)i);
        if (node.kind == NodeKind::kConst)
            continue;
        if (node.kind == NodeKind::kReg) {
            vals_[i] = regs_[(size_t)node.reg];
            continue;
        }
        const Bits& a = node.a >= 0 ? vals_[(size_t)node.a] : kUnit;
        const Bits& b = node.b >= 0 ? vals_[(size_t)node.b] : kUnit;
        const Bits& c = node.c >= 0 ? vals_[(size_t)node.c] : kUnit;
        vals_[i] = Netlist::eval_node(node, a, b, c);
        ++events_;
    }
}

void
EventSim::schedule_fanouts(size_t node)
{
    for (uint32_t f = fanout_start_[node]; f < fanout_start_[node + 1];
         ++f) {
        uint32_t target = fanout_[f];
        if (!queued_[target]) {
            queued_[target] = true;
            buckets_[level_[target]].push_back(target);
        }
    }
}

void
EventSim::cycle()
{
    static const Bits kUnit;
    if (first_) {
        full_evaluate();
        first_ = false;
    } else {
        // Seed events: register outputs whose committed value changed.
        for (size_t r = 0; r < regs_.size(); ++r) {
            for (uint32_t id : reg_nodes_[r]) {
                if (vals_[id] != regs_[r]) {
                    vals_[id] = regs_[r];
                    ++events_;
                    schedule_fanouts(id);
                }
            }
        }
        // Drain the queue level by level.
        for (auto& bucket : buckets_) {
            for (size_t idx = 0; idx < bucket.size(); ++idx) {
                uint32_t id = bucket[idx];
                queued_[id] = false;
                const Node& node = nl_.node((int)id);
                const Bits& a =
                    node.a >= 0 ? vals_[(size_t)node.a] : kUnit;
                const Bits& b =
                    node.b >= 0 ? vals_[(size_t)node.b] : kUnit;
                const Bits& c =
                    node.c >= 0 ? vals_[(size_t)node.c] : kUnit;
                Bits nv = Netlist::eval_node(node, a, b, c);
                ++events_;
                if (nv != vals_[id]) {
                    vals_[id] = std::move(nv);
                    schedule_fanouts(id);
                }
            }
            bucket.clear();
        }
    }
    for (size_t r = 0; r < regs_.size(); ++r)
        regs_[r] = vals_[(size_t)nl_.reg_next((int)r)];
    ++cycles_;
}

} // namespace koika::rtl
