/**
 * @file
 * Kôika -> netlist lowering (the hardware compilation strategy of §2.2).
 *
 * Each rule is compiled to a combinational circuit in isolation, with the
 * log semantics made symbolic: the cycle log's read-write flags and data
 * become wires threaded from rule to rule, a per-rule fail wire aggregates
 * every conflict and guard condition, and a will-fire mux decides whether
 * the rule's effects merge into the cycle log. Register next-values select
 * wr1-over-wr0-over-hold at the end.
 *
 * Because this construction mirrors the reference interpreter operation
 * by operation, the resulting netlist is cycle-accurate with the
 * interpreter *by construction* — which is exactly the property the paper
 * requires between its Verilog and C++ backends.
 *
 * Note how every rule's datapath is computed every cycle regardless of
 * whether it fires: this is what makes RTL-level simulation slow on a
 * sequential host (§2.3), and it is the baseline Cuttlesim is measured
 * against.
 */
#pragma once

#include "rtl/netlist.hpp"

namespace koika::rtl {

/** Compile a typechecked design to a netlist. */
Netlist lower(const Design& design);

} // namespace koika::rtl
