/**
 * @file
 * Netlist representation for the RTL pipeline.
 *
 * The RTL lowering (src/rtl/lower.*) compiles a Kôika design into this
 * word-level netlist: a DAG of combinational nodes plus one next-value
 * node per register. This is the same compilation strategy the Kôika
 * hardware compiler uses (paper §2.2): every rule's circuit exists and is
 * evaluated every cycle, and scheduler logic decides which results commit.
 *
 * Nodes are created in topological order (operands always precede users),
 * which both simulators (cyclesim, eventsim) and the Verilog emitter rely
 * on. The builder performs light peephole folding (constants, identities,
 * trivial muxes) mirroring the local simplifications of Kôika's verified
 * circuit compiler; the heavier §4.1-Q2 "Bluespec-grade" optimizations
 * live in src/rtl/optimize.*.
 */
#pragma once

#include <string>
#include <vector>

#include "koika/design.hpp"

namespace koika::rtl {

enum class NodeKind : uint8_t {
    kConst, ///< Literal.
    kReg,   ///< Register output (Q pin).
    kUnop,  ///< Pure unary operator (koika::Op).
    kBinop, ///< Pure binary operator (koika::Op).
    kMux,   ///< 1-bit select: mux(c, t, e).
};

struct Node
{
    NodeKind kind = NodeKind::kConst;
    Op op = Op::kNot;
    uint32_t width = 0;
    /** Slice offset / extension width. */
    uint32_t imm0 = 0;
    /** Slice width. */
    uint32_t imm1 = 0;
    /** Operand node ids (a = cond for kMux). */
    int a = -1, b = -1, c = -1;
    /** kConst payload. */
    Bits value;
    /** kReg register index. */
    int reg = -1;
};

class Netlist
{
  public:
    explicit Netlist(const Design& design);

    const Design& design() const { return *design_; }

    // -- Node construction (with light folding) ---------------------------
    int add_const(Bits v);
    int add_reg(int reg);
    int add_unop(Op op, int a, uint32_t imm0 = 0, uint32_t imm1 = 0);
    int add_binop(Op op, int a, int b);
    int add_mux(int cond, int t, int e);

    // Convenience 1-bit logic.
    int b_and(int a, int b) { return add_binop(Op::kAnd, a, b); }
    int b_or(int a, int b) { return add_binop(Op::kOr, a, b); }
    int b_not(int a) { return add_unop(Op::kNot, a); }
    int one() { return one_; }
    int zero() { return zero_; }

    /** Is the node a constant, and if so what value? */
    const Bits* const_value(int id) const;

    void set_reg_next(int reg, int node) { reg_next_[(size_t)reg] = node; }
    int reg_next(int reg) const { return reg_next_[(size_t)reg]; }

    size_t num_nodes() const { return nodes_.size(); }
    const Node& node(int id) const { return nodes_[(size_t)id]; }
    const std::vector<Node>& nodes() const { return nodes_; }

    /** Result width of each op, given operand widths (checked). */
    static uint32_t result_width(Op op, uint32_t wa, uint32_t wb,
                                 uint32_t imm0, uint32_t imm1);

    /** Evaluate one node given resolved operand values (shared by both
     *  simulators and the optimizer's constant folder). */
    static Bits eval_node(const Node& n, const Bits& a, const Bits& b,
                          const Bits& c);

  private:
    int push(Node n);

    const Design* design_;
    std::vector<Node> nodes_;
    std::vector<int> reg_next_;
    int zero_ = -1, one_ = -1;
};

} // namespace koika::rtl
