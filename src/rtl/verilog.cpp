#include "rtl/verilog.hpp"

#include <sstream>

namespace koika::rtl {

namespace {

std::string
sanitize(const std::string& name)
{
    std::string out;
    for (char c : name)
        out += (std::isalnum((unsigned char)c) || c == '_') ? c : '_';
    return out;
}

std::string
literal(const Bits& v)
{
    std::ostringstream os;
    os << v.width() << "'h";
    bool started = false;
    for (int i = (int)Bits::kMaxWords - 1; i >= 0; --i) {
        uint64_t w = v.word((uint32_t)i);
        if (!started) {
            if (w == 0 && i != 0)
                continue;
            os << std::hex << w;
            started = true;
        } else {
            char buf[17];
            std::snprintf(buf, sizeof buf, "%016llx",
                          (unsigned long long)w);
            os << buf;
        }
    }
    return os.str();
}

} // namespace

std::string
emit_verilog(const Netlist& nl, const std::string& module_name)
{
    const Design& d = nl.design();
    std::ostringstream os;
    os << "// Generated from Koika design '" << d.name() << "'\n";
    os << "module " << sanitize(module_name) << "(input wire CLK);\n";

    // Registers.
    for (size_t r = 0; r < d.num_registers(); ++r) {
        const RegInfo& reg = d.reg((int)r);
        os << "  reg ";
        if (reg.type->width > 1)
            os << "[" << reg.type->width - 1 << ":0] ";
        os << sanitize(reg.name) << " = " << literal(reg.init) << ";\n";
    }

    auto wire = [](int id) { return "w" + std::to_string(id); };

    // Combinational nodes.
    for (size_t i = 0; i < nl.num_nodes(); ++i) {
        const Node& n = nl.node((int)i);
        if (n.width == 0)
            continue; // unit wires have no Verilog representation
        os << "  wire ";
        if (n.width > 1)
            os << "[" << n.width - 1 << ":0] ";
        os << wire((int)i) << " = ";
        switch (n.kind) {
          case NodeKind::kConst:
            os << literal(n.value);
            break;
          case NodeKind::kReg:
            os << sanitize(d.reg(n.reg).name);
            break;
          case NodeKind::kMux:
            os << wire(n.a) << " ? " << wire(n.b) << " : " << wire(n.c);
            break;
          case NodeKind::kUnop:
            switch (n.op) {
              case Op::kNot:
                os << "~" << wire(n.a);
                break;
              case Op::kNeg:
                os << "-" << wire(n.a);
                break;
              case Op::kZExtL:
                os << "{{" << (n.imm0 - nl.node(n.a).width) << "{1'b0}}, "
                   << wire(n.a) << "}";
                break;
              case Op::kSExtL:
                os << "{{" << (n.imm0 - nl.node(n.a).width) << "{"
                   << wire(n.a) << "[" << nl.node(n.a).width - 1
                   << "]}}, " << wire(n.a) << "}";
                break;
              case Op::kSlice:
                os << wire(n.a) << "[" << n.imm0 << " +: " << n.imm1
                   << "]";
                break;
              default:
                panic("bad unop");
            }
            break;
          case NodeKind::kBinop: {
            const char* infix = nullptr;
            bool is_signed = false;
            switch (n.op) {
              case Op::kAnd: infix = "&"; break;
              case Op::kOr: infix = "|"; break;
              case Op::kXor: infix = "^"; break;
              case Op::kAdd: infix = "+"; break;
              case Op::kSub: infix = "-"; break;
              case Op::kMul: infix = "*"; break;
              case Op::kEq: infix = "=="; break;
              case Op::kNe: infix = "!="; break;
              case Op::kLtu: infix = "<"; break;
              case Op::kLeu: infix = "<="; break;
              case Op::kGtu: infix = ">"; break;
              case Op::kGeu: infix = ">="; break;
              case Op::kLts: infix = "<"; is_signed = true; break;
              case Op::kLes: infix = "<="; is_signed = true; break;
              case Op::kGts: infix = ">"; is_signed = true; break;
              case Op::kGes: infix = ">="; is_signed = true; break;
              case Op::kLsl: infix = "<<"; break;
              case Op::kLsr: infix = ">>"; break;
              case Op::kAsr: break;
              case Op::kConcat: break;
              default: panic("bad binop");
            }
            if (n.op == Op::kConcat) {
                os << "{" << wire(n.a) << ", " << wire(n.b) << "}";
            } else if (n.op == Op::kAsr) {
                os << "$signed(" << wire(n.a) << ") >>> " << wire(n.b);
            } else if (is_signed) {
                os << "$signed(" << wire(n.a) << ") " << infix
                   << " $signed(" << wire(n.b) << ")";
            } else {
                os << wire(n.a) << " " << infix << " " << wire(n.b);
            }
            break;
          }
        }
        os << ";\n";
    }

    os << "  always @(posedge CLK) begin\n";
    for (size_t r = 0; r < d.num_registers(); ++r) {
        int next = nl.reg_next((int)r);
        if (d.reg((int)r).type->width == 0)
            continue;
        os << "    " << sanitize(d.reg((int)r).name) << " <= "
           << "w" << next << ";\n";
    }
    os << "  end\n";
    os << "endmodule\n";
    return os.str();
}

size_t
verilog_sloc(const Netlist& nl)
{
    std::string text = emit_verilog(nl, nl.design().name());
    size_t lines = 0;
    bool nonblank = false;
    for (char c : text) {
        if (c == '\n') {
            if (nonblank)
                ++lines;
            nonblank = false;
        } else if (c != ' ') {
            nonblank = true;
        }
    }
    return lines;
}

} // namespace koika::rtl
