/**
 * @file
 * Verilog emitter: the synthesis half of the decoupled pipeline.
 *
 * The paper's central thesis is that simulation and synthesis should use
 * completely separate backends (§1). This emitter demonstrates the
 * synthesis side: it prints a lowered netlist as a small, structural
 * subset of Verilog-2001 (Kôika deliberately targets a minimal Verilog
 * subset for soundness, §4.1-Q2). It is used for inspection, Table 1's
 * Verilog SLOC column, and golden tests — not re-imported.
 */
#pragma once

#include <string>

#include "rtl/netlist.hpp"

namespace koika::rtl {

/** Render the netlist as a single structural Verilog module. */
std::string emit_verilog(const Netlist& netlist,
                         const std::string& module_name);

/** Number of non-blank lines in the emitted Verilog (Table 1 column). */
size_t verilog_sloc(const Netlist& netlist);

} // namespace koika::rtl
