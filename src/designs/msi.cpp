#include "designs/msi.hpp"

#include "koika/builder.hpp"
#include "koika/typecheck.hpp"

namespace koika::designs {

namespace {

constexpr int kMemWords = 8; ///< 3-bit word addresses.
constexpr int kLines = 4;    ///< direct-mapped, 1-bit tags.

class MsiBuilder
{
  public:
    MsiBuilder(Design& d, const MsiConfig& cfg) : d_(d), b_(d), cfg_(cfg)
    {
    }

    void
    build()
    {
        msi_ = make_enum("msi", {"I", "S", "M"});
        mshr_ = make_enum("mshr_tag",
                          {"Ready", "SendFillReq", "WaitFillResp"});
        pstate_ = make_enum("pstate", {"Idle", "ConfirmDowngrades"});
        for (int c = 0; c < 2; ++c)
            make_cache_registers(c);
        make_parent_registers();
        for (int c = 0; c < 2; ++c)
            make_cache_rules(c);
        make_parent_rules();
        typecheck(d_);
    }

  private:
    struct Cache
    {
        std::vector<int> state, tag, data;
        int mshr, mshr_addr, mshr_write, mshr_wdata;
        int creq_v, creq_a, creq_w, creq_d;
        int cresp_v, cresp_d;
        int req_v, req_a, req_m;   ///< c2p fill request.
        int resp_v, resp_d, resp_m; ///< p2c fill response.
        int dreq_v, dreq_a, dreq_i; ///< p2c downgrade request.
        int drsp_v, drsp_a, drsp_d, drsp_dirty; ///< c2p downgrade resp.
        int lfsr, waiting, ops, lastval, seqno;
    };

    Action* e_i() { return b_.enum_k(msi_, "I"); }
    Action* e_s() { return b_.enum_k(msi_, "S"); }
    Action* e_m() { return b_.enum_k(msi_, "M"); }

    void
    make_cache_registers(int c)
    {
        Builder& b = b_;
        std::string p = "l1_" + std::to_string(c) + "_";
        Cache& l1 = l1_[c];
        l1.state = b.reg_array(p + "state", kLines, msi_, Bits::of(2, 0));
        l1.tag = b.reg_array(p + "tag", kLines, bits_type(1),
                             Bits::zeroes(1));
        l1.data = b.reg_array(p + "data", kLines, bits_type(32),
                              Bits::zeroes(32));
        l1.mshr = d_.add_register(p + "mshr", mshr_, Bits::of(2, 0));
        l1.mshr_addr = b.reg(p + "mshr_addr", 3, 0);
        l1.mshr_write = b.reg(p + "mshr_write", 1, 0);
        l1.mshr_wdata = b.reg(p + "mshr_wdata", 32, 0);
        l1.creq_v = b.reg(p + "creq_valid", 1, 0);
        l1.creq_a = b.reg(p + "creq_addr", 3, 0);
        l1.creq_w = b.reg(p + "creq_write", 1, 0);
        l1.creq_d = b.reg(p + "creq_wdata", 32, 0);
        l1.cresp_v = b.reg(p + "cresp_valid", 1, 0);
        l1.cresp_d = b.reg(p + "cresp_data", 32, 0);
        l1.req_v = b.reg(p + "c2p_req_valid", 1, 0);
        l1.req_a = b.reg(p + "c2p_req_addr", 3, 0);
        l1.req_m = b.reg(p + "c2p_req_wantm", 1, 0);
        l1.resp_v = b.reg(p + "p2c_resp_valid", 1, 0);
        l1.resp_d = b.reg(p + "p2c_resp_data", 32, 0);
        l1.resp_m = b.reg(p + "p2c_resp_grantm", 1, 0);
        l1.dreq_v = b.reg(p + "p2c_dreq_valid", 1, 0);
        l1.dreq_a = b.reg(p + "p2c_dreq_addr", 3, 0);
        l1.dreq_i = b.reg(p + "p2c_dreq_toi", 1, 0);
        l1.drsp_v = b.reg(p + "c2p_dresp_valid", 1, 0);
        l1.drsp_a = b.reg(p + "c2p_dresp_addr", 3, 0);
        l1.drsp_d = b.reg(p + "c2p_dresp_data", 32, 0);
        l1.drsp_dirty = b.reg(p + "c2p_dresp_dirty", 1, 0);
        std::string q = "core" + std::to_string(c) + "_";
        l1.lfsr = b.reg(q + "lfsr", 16, c == 0 ? 0xACE1 : 0x53B9);
        l1.waiting = b.reg(q + "waiting", 1, 0);
        l1.ops = b.reg(q + "ops", 32, 0);
        l1.lastval = b.reg(q + "lastval", 32, 0);
        l1.seqno = b.reg(q + "seq", 8, 0);
    }

    void
    make_parent_registers()
    {
        Builder& b = b_;
        mem_.clear();
        for (int a = 0; a < kMemWords; ++a)
            mem_.push_back(b.reg("parent_mem" + std::to_string(a), 32,
                                 0x100u + (uint32_t)a));
        for (int c = 0; c < 2; ++c)
            dir_[c] = b.reg_array("parent_dir" + std::to_string(c),
                                  kMemWords, msi_, Bits::of(2, 0));
        pst_ = d_.add_register("parent_state", pstate_, Bits::of(1, 0));
        p_core_ = b.reg("parent_core", 1, 0);
        p_addr_ = b.reg("parent_addr", 3, 0);
        p_wantm_ = b.reg("parent_wantm", 1, 0);
    }

    // -- Cache rules -------------------------------------------------------
    /** idx/tag of the line for address var `a`. */
    Action* line_idx(const std::string& a) { return b_.slice(b_.var(a), 0, 2); }
    Action* addr_tag(const std::string& a) { return b_.slice(b_.var(a), 2, 1); }

    void
    make_cache_rules(int c)
    {
        Builder& b = b_;
        Cache& l1 = l1_[c];
        std::string p = "l1_" + std::to_string(c) + "_";
        std::string q = "core" + std::to_string(c) + "_";

        // -- evict: a conflicting non-I line blocks a miss; write it back.
        {
            Action* body = b.seq(
                {b.guard(b.eq(b.read0(l1.creq_v), b.k(1, 1))),
                 b.guard(b.eq(b.read0(l1.mshr), b.enum_k(mshr_, "Ready"))),
                 b.let(
                     "a", b.read0(l1.creq_a),
                     b.let(
                         "idx", line_idx("a"),
                         b.let(
                             "lst",
                             b.mux_read(l1.state, b.var("idx"), Port::p0),
                             b.let(
                                 "ltag",
                                 b.mux_read(l1.tag, b.var("idx"),
                                            Port::p0),
                                 b.seq(
                                     {b.guard(b.and_(
                                          b.ne(b.var("lst"), e_i()),
                                          b.ne(b.var("ltag"),
                                               addr_tag("a")))),
                                      b.guard(b.eq(b.read0(l1.drsp_v),
                                                   b.k(1, 0))),
                                      b.write0(
                                          l1.drsp_a,
                                          b.concat(b.var("ltag"),
                                                   b.var("idx"))),
                                      b.write0(l1.drsp_d,
                                               b.mux_read(l1.data,
                                                          b.var("idx"),
                                                          Port::p0)),
                                      b.write0(l1.drsp_dirty,
                                               b.eq(b.var("lst"),
                                                    e_m())),
                                      b.write0(l1.drsp_v, b.k(1, 1)),
                                      b.mux_write(l1.state,
                                                  b.var("idx"), e_i(),
                                                  Port::p0)})))))});
            d_.add_rule(p + "evict", body);
        }

        // -- process_req: hit responds; miss/upgrade allocates the MSHR.
        {
            Action* hit_path = b.seq(
                {b.guard(b.eq(b.read0(l1.cresp_v), b.k(1, 0))),
                 b.if_(b.eq(b.var("wr"), b.k(1, 1)),
                       b.seq({b.mux_write(l1.data, b.var("idx"),
                                          b.var("wd"), Port::p0),
                              b.write0(l1.cresp_d, b.var("wd"))}),
                       b.write0(l1.cresp_d,
                                b.mux_read(l1.data, b.var("idx"),
                                           Port::p0))),
                 b.write0(l1.cresp_v, b.k(1, 1)),
                 b.write0(l1.creq_v, b.k(1, 0))});
            Action* miss_path = b.seq(
                {b.write0(l1.mshr, b.enum_k(mshr_, "SendFillReq")),
                 b.write0(l1.mshr_addr, b.var("a")),
                 b.write0(l1.mshr_write, b.var("wr")),
                 b.write0(l1.mshr_wdata, b.var("wd")),
                 b.write0(l1.creq_v, b.k(1, 0))});
            Action* body = b.seq(
                {b.guard(b.eq(b.read0(l1.creq_v), b.k(1, 1))),
                 b.guard(b.eq(b.read0(l1.mshr), b.enum_k(mshr_, "Ready"))),
                 b.let(
                     "a", b.read0(l1.creq_a),
                     b.let(
                         "wr", b.read0(l1.creq_w),
                         b.let(
                             "wd", b.read0(l1.creq_d),
                             b.let(
                                 "idx", line_idx("a"),
                                 b.let(
                                     "lst",
                                     b.mux_read(l1.state, b.var("idx"),
                                                Port::p0),
                                     b.let(
                                         "ltag",
                                         b.mux_read(l1.tag,
                                                    b.var("idx"),
                                                    Port::p0),
                                         b.let(
                                             "present",
                                             b.and_(
                                                 b.ne(b.var("lst"),
                                                      e_i()),
                                                 b.eq(b.var("ltag"),
                                                      addr_tag("a"))),
                                             b.seq(
                                                 {// Leave conflicting
                                                  // lines to evict.
                                                  b.guard(b.not_(b.and_(
                                                      b.ne(b.var("lst"),
                                                           e_i()),
                                                      b.ne(b.var("ltag"),
                                                           addr_tag(
                                                               "a"))))),
                                                  b.if_(
                                                      b.and_(
                                                          b.var(
                                                              "present"),
                                                          b.or_(
                                                              b.eq(
                                                                  b.var(
                                                                      "wr"),
                                                                  b.k(1,
                                                                      0)),
                                                              b.eq(
                                                                  b.var(
                                                                      "lst"),
                                                                  e_m()))),
                                                      hit_path,
                                                      miss_path)}))))))))});
            d_.add_rule(p + "process_req", body);
        }

        // -- send_fill: forward the miss to the parent.
        d_.add_rule(
            p + "send_fill",
            b.seq({b.guard(b.eq(b.read0(l1.mshr),
                                b.enum_k(mshr_, "SendFillReq"))),
                   b.guard(b.eq(b.read0(l1.req_v), b.k(1, 0))),
                   b.write0(l1.req_a, b.read0(l1.mshr_addr)),
                   b.write0(l1.req_m, b.read0(l1.mshr_write)),
                   b.write0(l1.req_v, b.k(1, 1)),
                   b.write0(l1.mshr,
                            b.enum_k(mshr_, "WaitFillResp"))}));

        // -- fill_resp: install the line, answer the core.
        {
            Action* body = b.seq(
                {b.guard(b.eq(b.read0(l1.mshr),
                              b.enum_k(mshr_, "WaitFillResp"))),
                 b.guard(b.eq(b.read0(l1.resp_v), b.k(1, 1))),
                 b.guard(b.eq(b.read0(l1.cresp_v), b.k(1, 0))),
                 b.let(
                     "a", b.read0(l1.mshr_addr),
                     b.let(
                         "idx", line_idx("a"),
                         b.let(
                             "wr", b.read0(l1.mshr_write),
                             b.let(
                                 "nd",
                                 b.if_(b.eq(b.var("wr"), b.k(1, 1)),
                                       b.read0(l1.mshr_wdata),
                                       b.read0(l1.resp_d)),
                                 b.seq(
                                     {b.mux_write(l1.data, b.var("idx"),
                                                  b.var("nd"), Port::p0),
                                      b.mux_write(l1.tag, b.var("idx"),
                                                  addr_tag("a"),
                                                  Port::p0),
                                      b.mux_write(
                                          l1.state, b.var("idx"),
                                          b.if_(b.eq(b.var("wr"),
                                                     b.k(1, 1)),
                                                e_m(), e_s()),
                                          Port::p0),
                                      b.write0(l1.cresp_d, b.var("nd")),
                                      b.write0(l1.cresp_v, b.k(1, 1)),
                                      b.write0(l1.resp_v, b.k(1, 0)),
                                      b.write0(l1.mshr,
                                               b.enum_k(mshr_,
                                                        "Ready"))})))))});
            d_.add_rule(p + "fill_resp", body);
        }

        // -- downgrade: answer the parent's downgrade request.
        {
            Action* present_path = b.seq(
                {b.guard(b.eq(b.read0(l1.drsp_v), b.k(1, 0))),
                 b.write0(l1.drsp_a, b.var("a")),
                 b.write0(l1.drsp_d,
                          b.mux_read(l1.data, b.var("idx"), Port::p0)),
                 b.write0(l1.drsp_dirty, b.eq(b.var("lst"), e_m())),
                 b.write0(l1.drsp_v, b.k(1, 1)),
                 b.mux_write(l1.state, b.var("idx"),
                             b.if_(b.eq(b.var("toi"), b.k(1, 1)), e_i(),
                                   e_s()),
                             Port::p0),
                 b.write0(l1.dreq_v, b.k(1, 0))});
            // Not present: acknowledge with a clean response — unless
            // the case-study bug silently drops the request.
            Action* absent_path =
                cfg_.bug_silent_drop
                    ? b.write0(l1.dreq_v, b.k(1, 0))
                    : b.seq({b.guard(b.eq(b.read0(l1.drsp_v),
                                          b.k(1, 0))),
                             b.write0(l1.drsp_a, b.var("a")),
                             b.write0(l1.drsp_d, b.k(32, 0)),
                             b.write0(l1.drsp_dirty, b.k(1, 0)),
                             b.write0(l1.drsp_v, b.k(1, 1)),
                             b.write0(l1.dreq_v, b.k(1, 0))});
            Action* body = b.seq(
                {b.guard(b.eq(b.read0(l1.dreq_v), b.k(1, 1))),
                 b.let(
                     "a", b.read0(l1.dreq_a),
                     b.let(
                         "toi", b.read0(l1.dreq_i),
                         b.let(
                             "idx", line_idx("a"),
                             b.let(
                                 "lst",
                                 b.mux_read(l1.state, b.var("idx"),
                                            Port::p0),
                                 b.let(
                                     "ltag",
                                     b.mux_read(l1.tag, b.var("idx"),
                                                Port::p0),
                                     b.if_(
                                         b.and_(
                                             b.ne(b.var("lst"), e_i()),
                                             b.eq(b.var("ltag"),
                                                  addr_tag("a"))),
                                         present_path,
                                         absent_path))))))});
            d_.add_rule(p + "downgrade", body);
        }

        // -- core stimulus: issue LFSR-driven loads/stores; retire.
        d_.add_rule(
            q + "retire",
            b.seq({b.guard(b.eq(b.read0(l1.cresp_v), b.k(1, 1))),
                   b.write0(l1.lastval, b.read0(l1.cresp_d)),
                   b.write0(l1.cresp_v, b.k(1, 0)),
                   b.write0(l1.waiting, b.k(1, 0)),
                   b.write0(l1.ops,
                            b.add(b.read0(l1.ops), b.k(32, 1)))}));
        {
            Action* lf = b.read0(l1.lfsr);
            Action* bit = b.xor_(
                b.xor_(b.slice(b.clone(lf), 0, 1),
                       b.slice(b.clone(lf), 2, 1)),
                b.xor_(b.slice(b.clone(lf), 3, 1),
                       b.slice(b.clone(lf), 5, 1)));
            Action* next_lfsr = b.concat(bit, b.slice(lf, 1, 15));
            d_.add_rule(
                q + "issue",
                b.seq({b.guard(b.eq(b.read0(l1.waiting), b.k(1, 0))),
                       b.guard(b.eq(b.read0(l1.creq_v), b.k(1, 0))),
                       b.write0(l1.creq_a,
                                b.slice(b.read0(l1.lfsr), 0, 3)),
                       b.write0(l1.creq_w,
                                b.slice(b.read0(l1.lfsr), 3, 1)),
                       b.write0(l1.creq_d,
                                b.zextl(b.concat(
                                            b.k(8, 0xC0 + (uint64_t)c),
                                            b.read0(l1.seqno)),
                                        32)),
                       b.write0(l1.seqno,
                                b.add(b.read0(l1.seqno), b.k(8, 1))),
                       b.write0(l1.lfsr, next_lfsr),
                       b.write0(l1.creq_v, b.k(1, 1)),
                       b.write0(l1.waiting, b.k(1, 1))}));
        }
    }

    // -- Parent rules -------------------------------------------------------
    Action*
    dir_read(int core, const std::string& addr_var)
    {
        return b_.mux_read(dir_[core], b_.var(addr_var), Port::p0);
    }

    Action*
    dir_write(int core, const std::string& addr_var, Action* value)
    {
        return b_.mux_write(dir_[core], b_.var(addr_var), value,
                            Port::p0);
    }

    /** Parent-side handling of a fill request from core k. */
    Action*
    parent_handle(int k)
    {
        Builder& b = b_;
        Cache& rq = l1_[k];
        Cache& ot = l1_[1 - k];
        Action* need_downgrade = b.if_(
            b.eq(b.var("wantm"), b.k(1, 1)),
            b.ne(dir_read(1 - k, "pa"), e_i()),
            b.eq(dir_read(1 - k, "pa"), e_m()));
        Action* start_downgrade = b.seq(
            {b.guard(b.eq(b.read0(ot.dreq_v), b.k(1, 0))),
             b.write0(ot.dreq_a, b.var("pa")),
             b.write0(ot.dreq_i, b.var("wantm")),
             b.write0(ot.dreq_v, b.k(1, 1)),
             b.write0(pst_, b.enum_k(pstate_, "ConfirmDowngrades")),
             b.write0(p_core_, b.k(1, (uint64_t)k)),
             b.write0(p_addr_, b.var("pa")),
             b.write0(p_wantm_, b.var("wantm"))});
        Action* grant = b.seq(
            {b.guard(b.eq(b.read0(rq.resp_v), b.k(1, 0))),
             b.write0(rq.resp_d,
                      b.mux_read(mem_, b.var("pa"), Port::p0)),
             b.write0(rq.resp_m, b.var("wantm")),
             b.write0(rq.resp_v, b.k(1, 1)),
             dir_write(k, "pa",
                       b.if_(b.eq(b.var("wantm"), b.k(1, 1)), e_m(),
                             e_s())),
             b.write0(rq.req_v, b.k(1, 0))});
        return b.let(
            "pa", b.read0(rq.req_a),
            b.let("wantm", b.read0(rq.req_m),
                  b.if_(need_downgrade, start_downgrade, grant)));
    }

    /** Confirm a downgrade ack from core o and grant core k. */
    Action*
    parent_confirm(int k)
    {
        Builder& b = b_;
        Cache& rq = l1_[k];
        Cache& ot = l1_[1 - k];
        return b.seq(
            {b.guard(b.eq(b.read0(ot.drsp_v), b.k(1, 1))),
             b.guard(b.eq(b.read0(ot.drsp_a), b.var("pa2"))),
             b.let(
                 "dirty", b.read0(ot.drsp_dirty),
                 b.let(
                     "dd", b.read0(ot.drsp_d),
                     b.seq(
                         {b.when(b.eq(b.var("dirty"), b.k(1, 1)),
                                 b.mux_write(mem_, b.var("pa2"),
                                             b.var("dd"), Port::p0)),
                          dir_write(1 - k, "pa2",
                                    b.if_(b.eq(b.var("wm2"), b.k(1, 1)),
                                          e_i(), e_s())),
                          b.guard(b.eq(b.read0(rq.resp_v), b.k(1, 0))),
                          b.write0(
                              rq.resp_d,
                              b.if_(b.eq(b.var("dirty"), b.k(1, 1)),
                                    b.var("dd"),
                                    b.mux_read(mem_, b.var("pa2"),
                                               Port::p0))),
                          b.write0(rq.resp_m, b.var("wm2")),
                          b.write0(rq.resp_v, b.k(1, 1)),
                          dir_write(k, "pa2",
                                    b.if_(b.eq(b.var("wm2"), b.k(1, 1)),
                                          e_m(), e_s())),
                          b.write0(rq.req_v, b.k(1, 0)),
                          b.write0(ot.drsp_v, b.k(1, 0)),
                          b.write0(pst_,
                                   b.enum_k(pstate_, "Idle"))})))});
    }

    void
    make_parent_rules()
    {
        Builder& b = b_;

        // process: take a new request when idle (core 0 first).
        d_.add_rule(
            "parent_process",
            b.seq({b.guard(b.eq(b.read0(pst_),
                                b.enum_k(pstate_, "Idle"))),
                   b.if_(b.eq(b.read0(l1_[0].req_v), b.k(1, 1)),
                         parent_handle(0),
                         b.seq({b.guard(b.eq(b.read0(l1_[1].req_v),
                                             b.k(1, 1))),
                                parent_handle(1)}))}));

        // confirm: consume the awaited downgrade ack, then grant.
        d_.add_rule(
            "parent_confirm",
            b.seq({b.guard(b.eq(b.read0(pst_),
                                b.enum_k(pstate_, "ConfirmDowngrades"))),
                   b.let("pa2", b.read0(p_addr_),
                         b.let("wm2", b.read0(p_wantm_),
                               b.if_(b.eq(b.read0(p_core_), b.k(1, 0)),
                                     parent_confirm(0),
                                     parent_confirm(1))))}));

        // evictions: absorb downgrade responses nobody is waiting for.
        for (int o = 0; o < 2; ++o) {
            Cache& src = l1_[o];
            Action* awaited = b.and_(
                b.eq(b.read0(pst_),
                     b.enum_k(pstate_, "ConfirmDowngrades")),
                b.and_(b.eq(b.read0(p_core_), b.k(1, (uint64_t)(1 - o))),
                       b.eq(b.read0(src.drsp_a), b.read0(p_addr_))));
            d_.add_rule(
                "parent_evict" + std::to_string(o),
                b.seq({b.guard(b.eq(b.read0(src.drsp_v), b.k(1, 1))),
                       b.guard(b.not_(awaited)),
                       b.let("ea", b.read0(src.drsp_a),
                             b.seq({b.when(b.eq(b.read0(src.drsp_dirty),
                                                b.k(1, 1)),
                                           b.mux_write(
                                               mem_, b.var("ea"),
                                               b.read0(src.drsp_d),
                                               Port::p0)),
                                    dir_write(o, "ea", e_i())})),
                       b.write0(src.drsp_v, b.k(1, 0))}));
        }

        // Schedule: per-cache pipelines, then the parent.
        for (int c = 0; c < 2; ++c) {
            std::string p = "l1_" + std::to_string(c) + "_";
            std::string q = "core" + std::to_string(c) + "_";
            d_.schedule(q + "retire");
            d_.schedule(p + "fill_resp");
            d_.schedule(p + "downgrade");
            d_.schedule(p + "evict");
            d_.schedule(p + "process_req");
            d_.schedule(p + "send_fill");
            d_.schedule(q + "issue");
        }
        d_.schedule("parent_confirm");
        d_.schedule("parent_evict0");
        d_.schedule("parent_evict1");
        d_.schedule("parent_process");
    }

    Design& d_;
    Builder b_;
    MsiConfig cfg_;
    TypePtr msi_, mshr_, pstate_;
    Cache l1_[2];
    std::vector<int> mem_;
    std::vector<int> dir_[2];
    int pst_ = -1, p_core_ = -1, p_addr_ = -1, p_wantm_ = -1;
};

} // namespace

std::unique_ptr<Design>
build_msi(const MsiConfig& config)
{
    auto d = std::make_unique<Design>(config.bug_silent_drop
                                          ? "msi-buggy"
                                          : "msi");
    MsiBuilder(*d, config).build();
    return d;
}

MsiProbe
msi_probe(const Design& d)
{
    auto idx = [&](const std::string& name) {
        int i = d.reg_index(name);
        KOIKA_CHECK(i >= 0);
        return i;
    };
    MsiProbe probe;
    for (int c = 0; c < 2; ++c) {
        std::string p = "l1_" + std::to_string(c) + "_";
        std::string q = "core" + std::to_string(c) + "_";
        for (int l = 0; l < kLines; ++l) {
            probe.state[c].push_back(idx(p + "state" + std::to_string(l)));
            probe.tag[c].push_back(idx(p + "tag" + std::to_string(l)));
            probe.data[c].push_back(idx(p + "data" + std::to_string(l)));
        }
        probe.mshr[c] = idx(p + "mshr");
        probe.mshr_addr[c] = idx(p + "mshr_addr");
        probe.cresp_valid[c] = idx(p + "cresp_valid");
        probe.cresp_data[c] = idx(p + "cresp_data");
        probe.creq_addr[c] = idx(p + "creq_addr");
        probe.creq_write[c] = idx(p + "creq_write");
        probe.creq_wdata[c] = idx(p + "creq_wdata");
        probe.ops[c] = idx(q + "ops");
    }
    probe.parent_state = idx("parent_state");
    for (int a = 0; a < kMemWords; ++a)
        probe.mem.push_back(idx("parent_mem" + std::to_string(a)));
    return probe;
}

} // namespace koika::designs
