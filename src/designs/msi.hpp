/**
 * @file
 * Case study 1's system: a 2-core machine with L1 "child" caches and a
 * "parent" protocol engine implementing the MSI coherence protocol.
 *
 * Each core runs an LFSR-driven load/store stimulus against a small
 * shared word-addressed memory. Each L1 is direct-mapped (4 lines, one
 * word per line) with a single MSHR whose tag is Ready / SendFillReq /
 * WaitFillResp — exactly the structure the paper's debugging walkthrough
 * inspects in gdb. The parent serializes requests, tracks a directory,
 * and confirms downgrades before granting (its ConfirmDowngrades state
 * is where the case study's deadlock is observed).
 *
 * `bug_silent_drop` re-introduces the deadlock: a cache receiving a
 * downgrade request for a line it has already evicted consumes the
 * request without acknowledging, so the parent waits in
 * ConfirmDowngrades forever and the requesting cache sticks in
 * WaitFillResp — the situation debugged in §4.2.
 */
#pragma once

#include <memory>

#include "koika/design.hpp"

namespace koika::designs {

struct MsiConfig
{
    /** Plant the case-study deadlock bug. */
    bool bug_silent_drop = false;
};

std::unique_ptr<Design> build_msi(const MsiConfig& config = {});

/** Registers a coherence checker / debugger needs, resolved by name. */
struct MsiProbe
{
    /** Per cache: line states/tags/data (4 lines each). */
    std::vector<int> state[2], tag[2], data[2];
    int mshr[2], mshr_addr[2];
    int cresp_valid[2], cresp_data[2];
    int creq_addr[2], creq_write[2], creq_wdata[2];
    int ops[2];
    int parent_state;
    /** Parent memory words (8). */
    std::vector<int> mem;
};

MsiProbe msi_probe(const Design& design);

} // namespace koika::designs
