/**
 * @file
 * The "collatz" benchmark: the paper's trivial state machine.
 *
 * Three mutually exclusive guarded rules drive a Collatz iteration: an
 * even step (x / 2), an odd step (3x + 1), and a reload rule that pulls
 * the next seed from an LFSR when the sequence reaches 1. Exactly one
 * rule commits per cycle — the canonical case where RTL simulation pays
 * for every rule's datapath while a sequential model exits the two
 * non-matching rules after one guard check (§2.3).
 */
#include "designs/designs.hpp"

#include "koika/builder.hpp"
#include "koika/typecheck.hpp"

namespace koika::designs {

namespace {

/** 16-bit Fibonacci LFSR (taps 16, 14, 13, 11). */
Action*
lfsr_next(Builder& b, Action* v)
{
    Action* bit = b.xor_(
        b.xor_(b.slice(b.clone(v), 0, 1), b.slice(b.clone(v), 2, 1)),
        b.xor_(b.slice(b.clone(v), 3, 1), b.slice(b.clone(v), 5, 1)));
    return b.concat(bit, b.slice(v, 1, 15));
}

} // namespace

std::unique_ptr<Design>
build_collatz()
{
    auto d = std::make_unique<Design>("collatz");
    Builder b(*d);

    int x = b.reg("x", 32, 27);
    int steps = b.reg("steps", 32, 0);
    int sequences = b.reg("sequences", 32, 0);
    int lfsr = b.reg("lfsr", 16, 0xACE1);

    // rule step_even: x even and not done -> halve.
    d->add_rule(
        "step_even",
        b.seq({b.guard(b.and_(
                   b.eq(b.slice(b.read0(x), 0, 1), b.k(1, 0)),
                   b.ne(b.read0(x), b.k(32, 1)))),
               b.write0(x, b.lsr(b.read0(x), b.k(32, 1))),
               b.write0(steps, b.add(b.read0(steps), b.k(32, 1)))}));

    // rule step_odd: x odd and not 1 -> 3x + 1.
    d->add_rule(
        "step_odd",
        b.seq({b.guard(b.and_(
                   b.eq(b.slice(b.read0(x), 0, 1), b.k(1, 1)),
                   b.ne(b.read0(x), b.k(32, 1)))),
               b.write0(x, b.add(b.add(b.add(b.read0(x), b.read0(x)),
                                       b.read0(x)),
                                 b.k(32, 1))),
               b.write0(steps, b.add(b.read0(steps), b.k(32, 1)))}));

    // rule reload: sequence finished -> pull the next seed.
    d->add_rule(
        "reload",
        b.seq({b.guard(b.eq(b.read0(x), b.k(32, 1))),
               b.write0(x, b.or_(b.zextl(b.read0(lfsr), 32),
                                 b.k(32, 1) /* never reload zero */)),
               b.write0(lfsr, lfsr_next(b, b.read0(lfsr))),
               b.write0(sequences,
                        b.add(b.read0(sequences), b.k(32, 1)))}));

    d->schedule("step_even");
    d->schedule("step_odd");
    d->schedule("reload");
    typecheck(*d);
    return d;
}

} // namespace koika::designs
