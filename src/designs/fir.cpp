/**
 * @file
 * The "fir" benchmark: a finite impulse response filter.
 *
 * Meta-programmed (the C++ builder loop plays the role of Kôika's Coq
 * meta-programming, Table 1 column M): `taps` delay registers, constant
 * coefficients, and a single rule that shifts the delay line and computes
 * the convolution. One rule, no conflicts, no aborts — a purely
 * combinational design where the paper expects Cuttlesim's advantage
 * over RTL simulation to be narrowest (§4.1 Q1).
 */
#include "designs/designs.hpp"

#include "koika/builder.hpp"
#include "koika/typecheck.hpp"

namespace koika::designs {

namespace {

Action*
lfsr_next16(Builder& b, Action* v)
{
    Action* bit = b.xor_(
        b.xor_(b.slice(b.clone(v), 0, 1), b.slice(b.clone(v), 2, 1)),
        b.xor_(b.slice(b.clone(v), 3, 1), b.slice(b.clone(v), 5, 1)));
    return b.concat(bit, b.slice(v, 1, 15));
}

} // namespace

std::unique_ptr<Design>
build_fir(int taps)
{
    KOIKA_CHECK(taps >= 2);
    auto d = std::make_unique<Design>("fir");
    Builder b(*d);

    int lfsr = b.reg("lfsr", 16, 0xBEEF);
    std::vector<int> delay =
        b.reg_array("s", (size_t)(taps - 1), bits_type(32),
                    Bits::zeroes(32));
    int y = b.reg("y", 32, 0);

    // Symmetric low-pass-ish coefficient set, scaled integers.
    std::vector<uint64_t> coeffs;
    for (int i = 0; i < taps; ++i) {
        int k = std::min(i, taps - 1 - i) + 1;
        coeffs.push_back((uint64_t)(k * 3));
    }

    // rule fir: shift the delay line, accumulate the convolution.
    std::vector<Action*> body;
    body.push_back(b.write0(lfsr, lfsr_next16(b, b.read0(lfsr))));
    Action* acc = b.mul(b.zextl(b.read0(lfsr), 32), b.k(32, coeffs[0]));
    for (int i = 1; i < taps; ++i)
        acc = b.add(acc, b.mul(b.read0(delay[(size_t)i - 1]),
                               b.k(32, coeffs[(size_t)i])));
    body.push_back(b.write0(y, acc));
    // Delay-line shift: s0 <- in, s_i <- s_{i-1}.
    body.push_back(b.write0(delay[0], b.zextl(b.read0(lfsr), 32)));
    for (int i = 1; i < taps - 1; ++i)
        body.push_back(
            b.write0(delay[(size_t)i], b.read0(delay[(size_t)i - 1])));

    d->add_rule("fir", b.seq(std::move(body)));
    d->schedule("fir");
    typecheck(*d);
    return d;
}

} // namespace koika::designs
