/**
 * @file
 * Pipelined RISC-V cores (paper Table 1: rv32i, rv32e, rv32i-bp,
 * rv32i-mc) expressed as Kôika designs.
 *
 * Microarchitecture: a 4-stage pipeline (fetch, decode, execute,
 * writeback) with one rule per stage, communicating through one-element
 * FIFOs built from {valid, data} register pairs with the standard Kôika
 * port discipline (consumer rd0/wr0 scheduled before producer rd1/wr1).
 * Hazards are handled with a per-register scoreboard; branches with an
 * epoch bit and either a "PC+4" predictor or a BTB+BHT predictor (-bp).
 * Memory is reached through register-handshake ports driven by the magic
 * memory peripheral (src/harness/memory.hpp); `ecall` sets a halted
 * register. The dual-core variant (-mc) instantiates everything twice
 * with c0_/c1_ prefixes.
 *
 * The `x0_bug` knob reintroduces case study 3's performance bug: the
 * scoreboard tracks x0 like a real register, so back-to-back NOPs (ADDI
 * x0, x0, 0) appear data-dependent and the pipeline stutters (~203
 * cycles for 100 NOPs instead of ~10x fewer stalls).
 */
#pragma once

#include <memory>

#include "harness/memory.hpp"
#include "koika/design.hpp"
#include "riscv/assembler.hpp"

namespace koika::designs {

struct Rv32Config
{
    /** RV32E: 16 architectural registers instead of 32. */
    bool rv32e = false;
    /** BTB + BHT branch predictor instead of PC+4. */
    bool branch_predictor = false;
    /** Number of cores (1 or 2). */
    int cores = 1;
    /** Reintroduce the case-study-3 x0 scoreboard bug. */
    bool x0_bug = false;
    /** Design name override (defaults to rv32i / rv32e / ...). */
    std::string name;
};

std::unique_ptr<Design> build_rv32(const Rv32Config& config = {});

/** Register indices a core exposes to the harness. */
struct Rv32CorePorts
{
    harness::MemPortRegs imem;
    harness::MemPortRegs dmem;
    int halted = -1;
    int instret = -1;
    /** Pipeline-occupancy registers (for drain detection). */
    int d2e_valid = -1;
    int e2w_valid = -1;
    /** Architectural register file indices; entry 0 is -1 (x0). */
    std::vector<int> regfile;
};

/** Look up a core's port registers by name ("c<i>_" prefixes if mc). */
Rv32CorePorts rv32_ports(const Design& design, int core, int cores);

/**
 * Convenience wrapper: a model of an rv32 design plus per-core memories
 * loaded with a program, runnable to completion.
 */
class Rv32System
{
  public:
    Rv32System(const Design& design, sim::Model& model,
               const riscv::Program& program, int cores = 1);

    /** Run until every core halts (or max_cycles); returns cycles. */
    uint64_t run(uint64_t max_cycles);

    bool halted() const;
    const std::vector<uint32_t>& tohost(int core = 0) const;
    uint32_t read_xreg(int core, int index) const;
    uint64_t instret(int core = 0) const;

    sim::Model& model() { return model_; }

  private:
    const Design& design_;
    sim::Model& model_;
    int cores_;
    std::vector<Rv32CorePorts> ports_;
    std::vector<std::unique_ptr<harness::MemoryDevice>> mems_;
    std::vector<std::unique_ptr<harness::MemPort>> mem_ports_;
};

} // namespace koika::designs
