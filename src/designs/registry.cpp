/**
 * @file
 * Design registry: the names used by cuttlec, the benches, and tests.
 */
#include "designs/designs.hpp"

#include "designs/msi.hpp"
#include "designs/rv32.hpp"

namespace koika::designs {

std::vector<std::string>
design_names()
{
    return {"collatz", "fir",      "fft",      "rv32i",
            "rv32e",   "rv32i-bp", "rv32i-mc", "msi"};
}

std::unique_ptr<Design>
build_design(const std::string& name)
{
    if (name == "collatz")
        return build_collatz();
    if (name == "fir")
        return build_fir();
    if (name == "fft")
        return build_fft();
    if (name == "rv32i")
        return build_rv32({});
    if (name == "rv32e")
        return build_rv32({.rv32e = true});
    if (name == "rv32i-bp")
        return build_rv32({.branch_predictor = true});
    if (name == "rv32i-mc")
        return build_rv32({.cores = 2});
    if (name == "rv32i-x0bug")
        return build_rv32({.x0_bug = true});
    if (name == "msi")
        return build_msi({});
    fatal("unknown design '%s'", name.c_str());
}

} // namespace koika::designs
