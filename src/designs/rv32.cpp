#include "designs/rv32.hpp"

#include "harness/peripheral.hpp"
#include "koika/builder.hpp"
#include "koika/typecheck.hpp"

namespace koika::designs {

namespace {

/** Opcode constants (RV32I base). */
constexpr uint64_t kOpAlu = 0x33, kOpAluImm = 0x13, kOpLui = 0x37,
                   kOpAuipc = 0x17, kOpJal = 0x6F, kOpJalr = 0x67,
                   kOpBranch = 0x63, kOpLoad = 0x03, kOpStore = 0x23,
                   kOpSystem = 0x73;

class Rv32Builder
{
  public:
    Rv32Builder(Design& d, const Rv32Config& cfg)
        : d_(d), b_(d), cfg_(cfg),
          nregs_(cfg.rv32e ? 16 : 32)
    {
    }

    void
    build()
    {
        make_types();
        make_functions();
        cores_.resize((size_t)cfg_.cores);
        for (int c = 0; c < cfg_.cores; ++c)
            make_core_registers(c);
        for (int c = 0; c < cfg_.cores; ++c)
            make_core_rules(c);
        typecheck(d_);
    }

  private:
    std::string
    prefix(int core) const
    {
        return cfg_.cores > 1 ? "c" + std::to_string(core) + "_" : "";
    }

    // -- Types ---------------------------------------------------------------
    void
    make_types()
    {
        ik_ = make_enum("instr_kind",
                        {"alu", "aluimm", "lui", "auipc", "jal", "jalr",
                         "branch", "load", "store", "halt", "illegal"});
        wk_ = make_enum("wb_kind",
                        {"none", "wr", "load", "release", "drop"});
        fmeta_ = make_struct("fetch_meta", {{"pc", bits_type(32), 0},
                                            {"ppc", bits_type(32), 0},
                                            {"epoch", bits_type(1), 0}});
        dec_ = make_struct("dec_result", {{"kind", ik_, 0},
                                          {"f3", bits_type(3), 0},
                                          {"f7b", bits_type(1), 0},
                                          {"rd", bits_type(5), 0},
                                          {"rs1", bits_type(5), 0},
                                          {"rs2", bits_type(5), 0},
                                          {"imm", bits_type(32), 0}});
        d2e_t_ = make_struct("d2e_entry", {{"pc", bits_type(32), 0},
                                           {"ppc", bits_type(32), 0},
                                           {"epoch", bits_type(1), 0},
                                           {"sbw", bits_type(1), 0},
                                           {"kind", ik_, 0},
                                           {"f3", bits_type(3), 0},
                                           {"f7b", bits_type(1), 0},
                                           {"rd", bits_type(5), 0},
                                           {"v1", bits_type(32), 0},
                                           {"v2", bits_type(32), 0},
                                           {"imm", bits_type(32), 0}});
        e2w_t_ = make_struct("e2w_entry", {{"kind", wk_, 0},
                                           {"rd", bits_type(5), 0},
                                           {"val", bits_type(32), 0},
                                           {"f3", bits_type(3), 0},
                                           {"off", bits_type(2), 0}});
    }

    Action*
    ik(const std::string& member)
    {
        return b_.enum_k(ik_, member);
    }

    Action*
    wk(const std::string& member)
    {
        return b_.enum_k(wk_, member);
    }

    // -- Combinational functions ----------------------------------------------
    void
    make_functions()
    {
        decode_fn_ = make_decode();
        alu_fn_ = make_alu();
        taken_fn_ = make_taken();
        ldext_fn_ = make_ldext();
    }

    FunctionDef*
    make_decode()
    {
        Builder& b = b_;
        auto inst = [&] { return b.var("inst"); };
        auto op = [&] { return b.var("op"); };
        auto kind = [&] { return b.var("kind"); };

        // Immediate forms.
        Action* imm_i = b.sextl(b.slice(inst(), 20, 12), 32);
        Action* imm_s = b.sextl(
            b.concat(b.slice(inst(), 25, 7), b.slice(inst(), 7, 5)), 32);
        Action* imm_b = b.sextl(
            b.concat(b.slice(inst(), 31, 1),
                     b.concat(b.slice(inst(), 7, 1),
                              b.concat(b.slice(inst(), 25, 6),
                                       b.concat(b.slice(inst(), 8, 4),
                                                b.k(1, 0))))),
            32);
        Action* imm_u =
            b.concat(b.slice(inst(), 12, 20), b.k(12, 0));
        Action* imm_j = b.sextl(
            b.concat(b.slice(inst(), 31, 1),
                     b.concat(b.slice(inst(), 12, 8),
                              b.concat(b.slice(inst(), 20, 1),
                                       b.concat(b.slice(inst(), 21, 10),
                                                b.k(1, 0))))),
            32);

        // Kind from the major opcode.
        auto opeq = [&](uint64_t code) {
            return b.eq(op(), b.k(7, code));
        };
        Action* kind_expr = b.if_(
            opeq(kOpAlu), ik("alu"),
            b.if_(opeq(kOpAluImm), ik("aluimm"),
                  b.if_(opeq(kOpLui), ik("lui"),
                        b.if_(opeq(kOpAuipc), ik("auipc"),
                              b.if_(opeq(kOpJal), ik("jal"),
                                    b.if_(opeq(kOpJalr), ik("jalr"),
                                          b.if_(opeq(kOpBranch),
                                                ik("branch"),
                                                b.if_(opeq(kOpLoad),
                                                      ik("load"),
                                                      b.if_(opeq(kOpStore),
                                                            ik("store"),
                                                            b.if_(opeq(kOpSystem),
                                                                  ik("halt"),
                                                                  ik("illegal")))))))))));

        auto keq = [&](const char* member) {
            return b.eq(kind(), ik(member));
        };
        Action* imm_expr = b.if_(
            b.or_(keq("aluimm"), b.or_(b.clone(keq("load")), keq("jalr"))),
            imm_i,
            b.if_(keq("store"), imm_s,
                  b.if_(keq("branch"), imm_b,
                        b.if_(b.or_(keq("lui"), keq("auipc")), imm_u,
                              b.if_(keq("jal"), imm_j, b.k(32, 0))))));

        // Effective funct7 bit: OP always, OP-IMM only for shifts-right.
        Action* f7b_expr = b.if_(
            b.eq(op(), b.k(7, kOpAlu)), b.slice(inst(), 30, 1),
            b.if_(b.and_(b.eq(op(), b.k(7, kOpAluImm)),
                         b.eq(b.slice(inst(), 12, 3), b.k(3, 5))),
                  b.slice(inst(), 30, 1), b.k(1, 0)));

        Action* body = b.let(
            "op", b.slice(inst(), 0, 7),
            b.let(
                "kind", kind_expr,
                b.struct_init(
                    dec_,
                    {{"kind", kind()},
                     {"f3", b.slice(inst(), 12, 3)},
                     {"f7b", f7b_expr},
                     {"rd", b.slice(inst(), 7, 5)},
                     {"rs1", b.slice(inst(), 15, 5)},
                     {"rs2", b.slice(inst(), 20, 5)},
                     {"imm", imm_expr}})));
        return b.fn("decode_instr", {{"inst", bits_type(32)}}, dec_, body);
    }

    FunctionDef*
    make_alu()
    {
        Builder& b = b_;
        auto f3 = [&] { return b.var("f3"); };
        auto f7b = [&] { return b.var("f7b"); };
        auto x = [&] { return b.var("x"); };
        auto y = [&] { return b.var("y"); };
        auto f3eq = [&](uint64_t v) { return b.eq(f3(), b.k(3, v)); };
        Action* body = b.if_(
            f3eq(0),
            b.if_(b.eq(f7b(), b.k(1, 1)), b.sub(x(), y()),
                  b.add(x(), y())),
            b.if_(f3eq(1), b.lsl(x(), b.slice(y(), 0, 5)),
                  b.if_(f3eq(2), b.zextl(b.lts(x(), y()), 32),
                        b.if_(f3eq(3), b.zextl(b.ltu(x(), y()), 32),
                              b.if_(f3eq(4), b.xor_(x(), y()),
                                    b.if_(f3eq(5),
                                          b.if_(b.eq(f7b(), b.k(1, 1)),
                                                b.asr(x(),
                                                      b.slice(y(), 0, 5)),
                                                b.lsr(x(),
                                                      b.slice(y(), 0,
                                                              5))),
                                          b.if_(f3eq(6),
                                                b.or_(x(), y()),
                                                b.and_(x(), y()))))))));
        return b.fn("alu",
                    {{"f3", bits_type(3)},
                     {"f7b", bits_type(1)},
                     {"x", bits_type(32)},
                     {"y", bits_type(32)}},
                    bits_type(32), body);
    }

    FunctionDef*
    make_taken()
    {
        Builder& b = b_;
        auto f3 = [&] { return b.var("f3"); };
        auto x = [&] { return b.var("x"); };
        auto y = [&] { return b.var("y"); };
        auto f3eq = [&](uint64_t v) { return b.eq(f3(), b.k(3, v)); };
        Action* body = b.if_(
            f3eq(0), b.eq(x(), y()),
            b.if_(f3eq(1), b.ne(x(), y()),
                  b.if_(f3eq(4), b.lts(x(), y()),
                        b.if_(f3eq(5), b.ges(x(), y()),
                              b.if_(f3eq(6), b.ltu(x(), y()),
                                    b.if_(f3eq(7), b.geu(x(), y()),
                                          b.k(1, 0)))))));
        return b.fn("branch_taken",
                    {{"f3", bits_type(3)},
                     {"x", bits_type(32)},
                     {"y", bits_type(32)}},
                    bits_type(1), body);
    }

    FunctionDef*
    make_ldext()
    {
        Builder& b = b_;
        auto f3 = [&] { return b.var("f3"); };
        auto sh = [&] { return b.var("sh"); };
        auto f3eq = [&](uint64_t v) { return b.eq(f3(), b.k(3, v)); };
        Action* body = b.let(
            "sh",
            b.lsr(b.var("raw"), b.concat(b.var("off"), b.k(3, 0))),
            b.if_(f3eq(0), b.sextl(b.slice(sh(), 0, 8), 32),
                  b.if_(f3eq(1), b.sextl(b.slice(sh(), 0, 16), 32),
                        b.if_(f3eq(4), b.zextl(b.slice(sh(), 0, 8), 32),
                              b.if_(f3eq(5),
                                    b.zextl(b.slice(sh(), 0, 16), 32),
                                    sh())))));
        return b.fn("load_extract",
                    {{"raw", bits_type(32)},
                     {"f3", bits_type(3)},
                     {"off", bits_type(2)}},
                    bits_type(32), body);
    }

    // -- Registers --------------------------------------------------------------
    struct Core
    {
        int pc, epoch, halted, instret;
        std::vector<int> rf; ///< [0] unused (-1).
        std::vector<int> sb; ///< [0..nregs).
        int f2d_v, f2d_d;
        int toi_v, toi_a;
        int fri_v, fri_d;
        int d2e_v, d2e_d;
        int e2w_v, e2w_d;
        int tod_v, tod_a, tod_d, tod_w;
        int frd_v, frd_d;
        std::vector<int> btb_v, btb_pc, btb_tgt, bht;
    };

    void
    make_core_registers(int core)
    {
        Builder& b = b_;
        std::string p = prefix(core);
        Core& c = cores_[(size_t)core];
        c.pc = b.reg(p + "pc", 32, 0);
        c.epoch = b.reg(p + "epoch", 1, 0);
        c.halted = b.reg(p + "halted", 1, 0);
        c.instret = b.reg(p + "instret", 32, 0);
        c.rf.assign((size_t)nregs_, -1);
        for (int i = 1; i < nregs_; ++i)
            c.rf[(size_t)i] = b.reg(p + "x" + std::to_string(i), 32, 0);
        c.sb.clear();
        for (int i = 0; i < nregs_; ++i)
            c.sb.push_back(b.reg(p + "sb" + std::to_string(i), 2, 0));
        c.f2d_v = b.reg(p + "f2d_valid", 1, 0);
        c.f2d_d = d_.add_register(p + "f2d_data", fmeta_,
                                  Bits::zeroes(fmeta_->width));
        c.toi_v = b.reg(p + "toimem_valid", 1, 0);
        c.toi_a = b.reg(p + "toimem_addr", 32, 0);
        c.fri_v = b.reg(p + "fromimem_valid", 1, 0);
        c.fri_d = b.reg(p + "fromimem_data", 32, 0);
        c.d2e_v = b.reg(p + "d2e_valid", 1, 0);
        c.d2e_d = d_.add_register(p + "d2e_data", d2e_t_,
                                  Bits::zeroes(d2e_t_->width));
        c.e2w_v = b.reg(p + "e2w_valid", 1, 0);
        c.e2w_d = d_.add_register(p + "e2w_data", e2w_t_,
                                  Bits::zeroes(e2w_t_->width));
        c.tod_v = b.reg(p + "todmem_valid", 1, 0);
        c.tod_a = b.reg(p + "todmem_addr", 32, 0);
        c.tod_d = b.reg(p + "todmem_data", 32, 0);
        c.tod_w = b.reg(p + "todmem_wstrb", 4, 0);
        c.frd_v = b.reg(p + "fromdmem_valid", 1, 0);
        c.frd_d = b.reg(p + "fromdmem_data", 32, 0);
        if (cfg_.branch_predictor) {
            c.btb_v = b.reg_array(p + "btb_valid", 16, bits_type(1),
                                  Bits::zeroes(1));
            c.btb_pc = b.reg_array(p + "btb_pc", 16, bits_type(32),
                                   Bits::zeroes(32));
            c.btb_tgt = b.reg_array(p + "btb_tgt", 16, bits_type(32),
                                    Bits::zeroes(32));
            // Weakly not-taken.
            c.bht = b.reg_array(p + "bht", 64, bits_type(2),
                                Bits::of(2, 1));
        }
    }

    // -- Register-file / scoreboard helpers -------------------------------------
    /** rf[var] at the given port; x0 reads as zero. */
    Action*
    rf_read(const Core& c, const std::string& idx_var, Port port)
    {
        Action* acc = b_.k(32, 0);
        for (int i = nregs_ - 1; i >= 1; --i)
            acc = b_.if_(b_.eq(b_.var(idx_var), b_.k(5, (uint64_t)i)),
                         b_.read(c.rf[(size_t)i], port), acc);
        return acc;
    }

    /** rf[var].wr0(val_var); writes to x0 are dropped. */
    Action*
    rf_write(const Core& c, const std::string& idx_var,
             const std::string& val_var)
    {
        std::vector<Action*> writes;
        for (int i = 1; i < nregs_; ++i)
            writes.push_back(
                b_.when(b_.eq(b_.var(idx_var), b_.k(5, (uint64_t)i)),
                        b_.write0(c.rf[(size_t)i], b_.var(val_var))));
        return b_.seq(std::move(writes));
    }

    /** Scoreboard value of register `var` (rd1). x0 is always free
     *  unless the case-study-3 bug is enabled. */
    Action*
    sb_value(const Core& c, const std::string& idx_var)
    {
        Action* acc = cfg_.x0_bug ? b_.read1(c.sb[0]) : b_.k(2, 0);
        for (int i = nregs_ - 1; i >= 1; --i)
            acc = b_.if_(b_.eq(b_.var(idx_var), b_.k(5, (uint64_t)i)),
                         b_.read1(c.sb[(size_t)i]), acc);
        return acc;
    }

    /** Increment (decode, rd1/wr1) or decrement (writeback, rd0/wr0)
     *  the scoreboard entry selected by `var`. */
    Action*
    sb_bump(const Core& c, const std::string& idx_var, bool inc)
    {
        std::vector<Action*> ops;
        int lo = cfg_.x0_bug ? 0 : 1;
        for (int i = lo; i < nregs_; ++i) {
            int reg = c.sb[(size_t)i];
            Action* update =
                inc ? b_.write1(reg, b_.add(b_.read1(reg), b_.k(2, 1)))
                    : b_.write0(reg, b_.sub(b_.read0(reg), b_.k(2, 1)));
            ops.push_back(b_.when(
                b_.eq(b_.var(idx_var), b_.k(5, (uint64_t)i)), update));
        }
        if (ops.empty())
            return b_.unit();
        return b_.seq(std::move(ops));
    }

    /** kind writes an architectural register. */
    Action*
    writes_rd(const std::string& kind_var)
    {
        Action* acc = b_.k(1, 0);
        for (const char* m :
             {"alu", "aluimm", "lui", "auipc", "jal", "jalr", "load"})
            acc = b_.or_(acc, b_.eq(b_.var(kind_var), ik(m)));
        return acc;
    }

    // -- Rules ---------------------------------------------------------------
    void
    make_core_rules(int core)
    {
        std::string p = prefix(core);
        d_.add_rule(p + "writeback", rule_writeback(core));
        d_.add_rule(p + "execute", rule_execute(core));
        d_.add_rule(p + "decode", rule_decode(core));
        d_.add_rule(p + "fetch", rule_fetch(core));
        d_.schedule(p + "writeback");
        d_.schedule(p + "execute");
        d_.schedule(p + "decode");
        d_.schedule(p + "fetch");
    }

    Action*
    rule_writeback(int core)
    {
        Builder& b = b_;
        const Core& c = cores_[(size_t)core];
        auto w = [&] { return b.var("w"); };

        Action* do_load = b.seq(
            {b.guard(b.eq(b.read0(c.frd_v), b.k(1, 1))),
             b.let("ldval",
                   b.call(ldext_fn_, {b.read0(c.frd_d),
                                      b.get(w(), "f3"),
                                      b.get(w(), "off")}),
                   b.seq({b.write0(c.frd_v, b.k(1, 0)),
                          b.let("wrd", b.get(w(), "rd"),
                                b.seq({rf_write(c, "wrd", "ldval"),
                                       sb_bump(c, "wrd", false)}))})),
             b.write0(c.instret,
                      b.add(b.read0(c.instret), b.k(32, 1)))});

        Action* do_wr = b.let(
            "wval", b.get(w(), "val"),
            b.let("wrd2", b.get(w(), "rd"),
                  b.seq({rf_write(c, "wrd2", "wval"),
                         sb_bump(c, "wrd2", false),
                         b.write0(c.instret, b.add(b.read0(c.instret),
                                                   b.k(32, 1)))})));

        Action* do_release =
            b.let("wrd3", b.get(w(), "rd"), sb_bump(c, "wrd3", false));

        Action* do_none = b.write0(
            c.instret, b.add(b.read0(c.instret), b.k(32, 1)));

        return b.seq(
            {b.guard(b.eq(b.read0(c.e2w_v), b.k(1, 1))),
             b.let("w", b.read0(c.e2w_d),
                   b.seq({b.if_(b.eq(b.get(w(), "kind"), wk("load")),
                                do_load,
                                b.if_(b.eq(b.get(w(), "kind"), wk("wr")),
                                      do_wr,
                                      b.if_(b.eq(b.get(w(), "kind"),
                                                 wk("release")),
                                            do_release,
                                            b.if_(b.eq(b.get(w(),
                                                             "kind"),
                                                       wk("drop")),
                                                  b.unit(),
                                                  do_none)))),
                          b.write0(c.e2w_v, b.k(1, 0))}))});
    }

    Action*
    rule_execute(int core)
    {
        Builder& b = b_;
        const Core& c = cores_[(size_t)core];
        auto e = [&] { return b.var("e"); };
        auto f = [&](const char* field) { return b.get(e(), field); };

        // Poisoned (stale-epoch) instructions just release the
        // scoreboard entry decode claimed (if any).
        Action* poisoned = b.seq(
            {b.write1(c.e2w_d,
                      b.struct_init(
                          e2w_t_,
                          {{"kind", b.if_(b.eq(f("sbw"), b.k(1, 1)),
                                          wk("release"), wk("drop"))},
                           {"rd", f("rd")}})),
             b.write1(c.e2w_v, b.k(1, 1))});

        // ALU-style result value.
        auto keq = [&](const char* m) {
            return b.eq(f("kind"), ik(m));
        };
        Action* alu_y =
            b.if_(keq("alu"), f("v2"), f("imm"));
        Action* result = b.if_(
            keq("lui"), f("imm"),
            b.if_(keq("auipc"), b.add(f("pc"), f("imm")),
                  b.if_(b.or_(keq("jal"), keq("jalr")),
                        b.add(f("pc"), b.k(32, 4)),
                        b.call(alu_fn_, {f("f3"), f("f7b"), f("v1"),
                                         alu_y}))));

        // Next PC. Halt redirects to itself: the epoch flip poisons the
        // younger instructions fetched past the ecall.
        Action* next_pc = b.if_(
            b.or_(keq("halt"), keq("illegal")), f("pc"),
            b.if_(
            keq("jal"), b.add(f("pc"), f("imm")),
            b.if_(keq("jalr"),
                  b.and_(b.add(f("v1"), f("imm")),
                         b.k(32, 0xFFFFFFFE)),
                  b.if_(b.and_(keq("branch"),
                               b.call(taken_fn_,
                                      {f("f3"), f("v1"), f("v2")})),
                        b.add(f("pc"), f("imm")),
                        b.add(f("pc"), b.k(32, 4))))));

        // Memory operation pieces.
        Action* addr = b.add(f("v1"), f("imm"));
        Action* load_part = b.seq(
            {b.guard(b.eq(b.read1(c.tod_v), b.k(1, 0))),
             b.write1(c.tod_a,
                      b.and_(b.var("maddr"), b.k(32, 0xFFFFFFFC))),
             b.write1(c.tod_w, b.k(4, 0)),
             b.write1(c.tod_d, b.k(32, 0)),
             b.write1(c.tod_v, b.k(1, 1)),
             b.write1(c.e2w_d,
                      b.struct_init(
                          e2w_t_,
                          {{"kind", wk("load")},
                           {"rd", f("rd")},
                           {"f3", f("f3")},
                           {"off", b.slice(b.var("maddr"), 0, 2)}}))});

        // Store strobe and data shifted into byte lanes.
        Action* off8 =
            b.concat(b.slice(b.var("maddr"), 0, 2), b.k(3, 0));
        Action* wstrb = b.if_(
            b.eq(f("f3"), b.k(3, 0)),
            b.lsl(b.k(4, 1), b.slice(b.var("maddr"), 0, 2)),
            b.if_(b.eq(f("f3"), b.k(3, 1)),
                  b.lsl(b.k(4, 3), b.slice(b.var("maddr"), 0, 2)),
                  b.k(4, 0xF)));
        Action* store_part = b.seq(
            {b.guard(b.eq(b.read1(c.tod_v), b.k(1, 0))),
             b.write1(c.tod_a,
                      b.and_(b.var("maddr"), b.k(32, 0xFFFFFFFC))),
             b.write1(c.tod_w, wstrb),
             b.write1(c.tod_d, b.lsl(f("v2"), off8)),
             b.write1(c.tod_v, b.k(1, 1)),
             b.write1(c.e2w_d,
                      b.struct_init(e2w_t_, {{"kind", wk("none")}}))});

        Action* wr_part = b.let(
            "xval", result,
            b.seq({b.write1(c.e2w_d,
                            b.struct_init(e2w_t_,
                                          {{"kind", wk("wr")},
                                           {"rd", f("rd")},
                                           {"val", b.var("xval")}})),
                   b.unit()}));

        Action* halt_part = b.seq(
            {b.write0(c.halted, b.k(1, 1)),
             b.write1(c.e2w_d,
                      b.struct_init(e2w_t_, {{"kind", wk("none")}}))});

        Action* branch_part = b.write1(
            c.e2w_d, b.struct_init(e2w_t_, {{"kind", wk("none")}}));

        Action* dispatch = b.if_(
            keq("load"), load_part,
            b.if_(keq("store"), store_part,
                  b.if_(b.or_(keq("halt"), keq("illegal")), halt_part,
                        b.if_(keq("branch"), branch_part, wr_part))));

        // Redirect on misprediction.
        Action* redirect = b.when(
            b.ne(b.var("npc"), f("ppc")),
            b.seq({b.write0(c.pc, b.var("npc")),
                   b.write0(c.epoch, b.not_(b.read0(c.epoch)))}));

        // The predictor trains inside the maddr/npc scope.
        std::vector<Action*> inner = {dispatch, redirect};
        if (cfg_.branch_predictor)
            inner.push_back(train_predictor(core));
        inner.push_back(b.write1(c.e2w_v, b.k(1, 1)));
        Action* live =
            b.let("maddr", addr,
                  b.let("npc", next_pc, b.seq(std::move(inner))));

        return b.seq(
            {b.guard(b.eq(b.read1(c.e2w_v), b.k(1, 0))),
             b.guard(b.eq(b.read0(c.d2e_v), b.k(1, 1))),
             b.let("e", b.read0(c.d2e_d),
                   b.seq({b.write0(c.d2e_v, b.k(1, 0)),
                          b.if_(b.ne(b.get(e(), "epoch"),
                                     b.read0(c.epoch)),
                                poisoned, live)}))});
    }

    /** BTB/BHT training at execute (bp variant). */
    Action*
    train_predictor(int core)
    {
        Builder& b = b_;
        const Core& c = cores_[(size_t)core];
        auto e = [&] { return b.var("e"); };
        auto f = [&](const char* field) { return b.get(e(), field); };
        auto keq = [&](const char* m) {
            return b.eq(f("kind"), ik(m));
        };

        Action* is_jump = b.or_(keq("jal"), keq("jalr"));
        Action* is_br = keq("branch");
        Action* br_taken = b.and_(
            b.clone(is_br),
            b.call(taken_fn_, {f("f3"), f("v1"), f("v2")}));

        // BTB: record taken control transfers.
        Action* btb_update = b.when(
            b.or_(b.clone(is_jump), b.clone(br_taken)),
            b.let("bidx", b.slice(f("pc"), 2, 4),
                  b.seq({b_.mux_write(c.btb_v, b.var("bidx"), b.k(1, 1),
                                      Port::p0),
                         b_.mux_write(c.btb_pc, b.var("bidx"), f("pc"),
                                      Port::p0),
                         b_.mux_write(c.btb_tgt, b.var("bidx"),
                                      b.var("npc"), Port::p0)})));

        // BHT: 2-bit saturating counters; jumps train toward taken.
        Action* hidx = b.slice(f("pc"), 2, 6);
        Action* taken_bit = b.or_(b.clone(is_jump), b.clone(br_taken));
        Action* bht_update = b.when(
            b.or_(is_jump, is_br),
            b.let(
                "hidx", hidx,
                b.let(
                    "hold", b_.mux_read(c.bht, b.var("hidx"), Port::p0),
                    b.let(
                        "hnew",
                        b.if_(taken_bit,
                              b.if_(b.eq(b.var("hold"), b.k(2, 3)),
                                    b.k(2, 3),
                                    b.add(b.var("hold"), b.k(2, 1))),
                              b.if_(b.eq(b.var("hold"), b.k(2, 0)),
                                    b.k(2, 0),
                                    b.sub(b.var("hold"), b.k(2, 1)))),
                        b_.mux_write(c.bht, b.var("hidx"),
                                     b.var("hnew"), Port::p0)))));

        return b.seq({btb_update, bht_update});
    }

    Action*
    rule_decode(int core)
    {
        Builder& b = b_;
        const Core& c = cores_[(size_t)core];
        auto meta = [&] { return b.var("meta"); };
        auto dec = [&](const char* field) {
            return b.get(b.var("dec"), field);
        };

        // Which source registers this kind actually reads.
        Action* reads_rs1 = b.k(1, 0);
        for (const char* m : {"alu", "aluimm", "jalr", "branch", "load",
                              "store"})
            reads_rs1 = b.or_(reads_rs1, b.eq(dec("kind"), ik(m)));
        Action* reads_rs2 = b.k(1, 0);
        for (const char* m : {"alu", "branch", "store"})
            reads_rs2 = b.or_(reads_rs2, b.eq(dec("kind"), ik(m)));

        Action* proceed = b.let(
            "rs1n", b.if_(reads_rs1, dec("rs1"), b.k(5, 0)),
            b.let(
                "rs2n", b.if_(reads_rs2, dec("rs2"), b.k(5, 0)),
                b.let(
                    "rdn",
                    b.if_(b.var("wrw"), dec("rd"), b.k(5, 0)),
                    b.seq(
                        {// Hazard stall: any involved register busy.
                         b.guard(b.and_(
                             b.eq(sb_value(c, "rs1n"), b.k(2, 0)),
                             b.and_(b.eq(sb_value(c, "rs2n"),
                                         b.k(2, 0)),
                                    b.eq(sb_value(c, "rdn"),
                                         b.k(2, 0))))),
                         // Consume the fetch bundle.
                         b.write0(c.f2d_v, b.k(1, 0)),
                         b.write0(c.fri_v, b.k(1, 0)),
                         // Claim the destination (only real writers).
                         b.when(b.var("wrw"), sb_bump(c, "rdn", true)),
                         // Register reads see same-cycle writeback.
                         b.let(
                             "v1", rf_read(c, "rs1n", Port::p1),
                             b.let(
                                 "v2", rf_read(c, "rs2n", Port::p1),
                                 b.seq(
                                     {b.write1(
                                          c.d2e_d,
                                          b.struct_init(
                                              d2e_t_,
                                              {{"pc",
                                                b.get(meta(), "pc")},
                                               {"ppc",
                                                b.get(meta(), "ppc")},
                                               {"epoch",
                                                b.get(meta(),
                                                      "epoch")},
                                               {"sbw", b.var("wrw")},
                                               {"kind",
                                                b.var("kind_v")},
                                               {"f3", dec("f3")},
                                               {"f7b", dec("f7b")},
                                               {"rd", b.var("rdn")},
                                               {"v1", b.var("v1")},
                                               {"v2", b.var("v2")},
                                               {"imm", dec("imm")}})),
                                      b.write1(c.d2e_v,
                                               b.k(1, 1))})))}))));

        Action* drop = b.seq({b.write0(c.f2d_v, b.k(1, 0)),
                              b.write0(c.fri_v, b.k(1, 0))});

        return b.seq(
            {b.guard(b.eq(b.read1(c.d2e_v), b.k(1, 0))),
             b.guard(b.eq(b.read0(c.f2d_v), b.k(1, 1))),
             b.guard(b.eq(b.read0(c.fri_v), b.k(1, 1))),
             b.let("meta", b.read0(c.f2d_d),
                   b.if_(b.ne(b.get(b.var("meta"), "epoch"),
                              b.read1(c.epoch)),
                         b.clone(drop),
                         b.let("dec",
                               b.call(decode_fn_,
                                      {b.read0(c.fri_d)}),
                               b.let("kind_v",
                                     b.get(b.var("dec"), "kind"),
                                     b.let("wrw",
                                           writes_rd("kind_v"),
                                           proceed)))))});
    }

    Action*
    rule_fetch(int core)
    {
        Builder& b = b_;
        const Core& c = cores_[(size_t)core];

        Action* prediction;
        if (cfg_.branch_predictor) {
            // BTB hit with a taken-leaning BHT counter -> target.
            Action* hit = b.and_(
                b.mux_read(c.btb_v, b.slice(b.var("cur"), 2, 4),
                           Port::p1),
                b.eq(b.mux_read(c.btb_pc, b.slice(b.var("cur"), 2, 4),
                                Port::p1),
                     b.var("cur")));
            Action* take = b.geu(
                b.mux_read(c.bht, b.slice(b.var("cur"), 2, 6), Port::p1),
                b.k(2, 2));
            prediction = b.if_(
                b.and_(hit, take),
                b.mux_read(c.btb_tgt, b.slice(b.var("cur"), 2, 4),
                           Port::p1),
                b.add(b.var("cur"), b.k(32, 4)));
        } else {
            prediction = b.add(b.var("cur"), b.k(32, 4));
        }

        return b.seq(
            {b.guard(b.eq(b.read1(c.halted), b.k(1, 0))),
             b.guard(b.eq(b.read1(c.f2d_v), b.k(1, 0))),
             b.guard(b.eq(b.read1(c.toi_v), b.k(1, 0))),
             b.let(
                 "cur", b.read1(c.pc),
                 b.let(
                     "pred", prediction,
                     b.seq({b.write1(c.toi_a, b.var("cur")),
                            b.write1(c.toi_v, b.k(1, 1)),
                            b.write1(
                                c.f2d_d,
                                b.struct_init(
                                    fmeta_,
                                    {{"pc", b.var("cur")},
                                     {"ppc", b.var("pred")},
                                     {"epoch", b.read1(c.epoch)}})),
                            b.write1(c.f2d_v, b.k(1, 1)),
                            b.write1(c.pc, b.var("pred"))})))});
    }

    Design& d_;
    Builder b_;
    Rv32Config cfg_;
    int nregs_;
    TypePtr ik_, wk_, fmeta_, dec_, d2e_t_, e2w_t_;
    FunctionDef* decode_fn_ = nullptr;
    FunctionDef* alu_fn_ = nullptr;
    FunctionDef* taken_fn_ = nullptr;
    FunctionDef* ldext_fn_ = nullptr;
    std::vector<Core> cores_;
};

} // namespace

std::unique_ptr<Design>
build_rv32(const Rv32Config& config)
{
    std::string name = config.name;
    if (name.empty()) {
        name = config.rv32e ? "rv32e" : "rv32i";
        if (config.branch_predictor)
            name += "-bp";
        if (config.cores > 1)
            name += "-mc";
        if (config.x0_bug)
            name += "-x0bug";
    }
    auto d = std::make_unique<Design>(name);
    Rv32Builder(*d, config).build();
    return d;
}

Rv32CorePorts
rv32_ports(const Design& design, int core, int cores)
{
    std::string p =
        cores > 1 ? "c" + std::to_string(core) + "_" : "";
    auto idx = [&](const std::string& name) {
        int i = design.reg_index(p + name);
        if (i < 0)
            fatal("design %s has no register %s%s",
                  design.name().c_str(), p.c_str(), name.c_str());
        return i;
    };
    Rv32CorePorts ports;
    ports.imem = {idx("toimem_valid"), idx("toimem_addr"), -1, -1,
                  idx("fromimem_valid"), idx("fromimem_data")};
    ports.dmem = {idx("todmem_valid"), idx("todmem_addr"),
                  idx("todmem_data"), idx("todmem_wstrb"),
                  idx("fromdmem_valid"), idx("fromdmem_data")};
    ports.halted = idx("halted");
    ports.instret = idx("instret");
    ports.d2e_valid = idx("d2e_valid");
    ports.e2w_valid = idx("e2w_valid");
    ports.regfile.push_back(-1);
    for (int i = 1; i < 32; ++i) {
        int r = design.reg_index(p + "x" + std::to_string(i));
        if (r < 0)
            break;
        ports.regfile.push_back(r);
    }
    return ports;
}

Rv32System::Rv32System(const Design& design, sim::Model& model,
                       const riscv::Program& program, int cores)
    : design_(design), model_(model), cores_(cores)
{
    for (int c = 0; c < cores; ++c) {
        ports_.push_back(rv32_ports(design, c, cores));
        mems_.push_back(std::make_unique<harness::MemoryDevice>());
        mems_.back()->load_words(program.words, program.base);
        mem_ports_.push_back(std::make_unique<harness::MemPort>(
            *mems_.back(), ports_.back().imem));
        mem_ports_.push_back(std::make_unique<harness::MemPort>(
            *mems_.back(), ports_.back().dmem));
    }
}

uint64_t
Rv32System::run(uint64_t max_cycles)
{
    std::vector<harness::Peripheral*> devices;
    for (auto& p : mem_ports_)
        devices.push_back(p.get());
    return harness::run_system(
        model_, devices, max_cycles,
        [this](sim::Model&) { return halted(); });
}

bool
Rv32System::halted() const
{
    // Halted and drained: in-flight (poisoned) instructions must clear
    // the pipeline so instret and the scoreboard settle.
    for (const auto& ports : ports_) {
        if (model_.get_reg(ports.halted).is_zero())
            return false;
        if (!model_.get_reg(ports.d2e_valid).is_zero() ||
            !model_.get_reg(ports.e2w_valid).is_zero())
            return false;
    }
    return true;
}

const std::vector<uint32_t>&
Rv32System::tohost(int core) const
{
    return mems_[(size_t)core]->tohost();
}

uint32_t
Rv32System::read_xreg(int core, int index) const
{
    if (index == 0)
        return 0;
    int reg = ports_[(size_t)core].regfile[(size_t)index];
    return (uint32_t)model_.get_reg(reg).to_u64();
}

uint64_t
Rv32System::instret(int core) const
{
    return model_.get_reg(ports_[(size_t)core].instret).to_u64();
}

} // namespace koika::designs
