/**
 * @file
 * The "fft" benchmark: the butterfly part of an FFT design.
 *
 * Meta-programmed radix-2 butterflies over `points` complex samples in
 * Q8 fixed point: a' = a + w*b, b' = a - w*b, with constant twiddle
 * factors. A single mul-heavy combinational rule with an LFSR stirring
 * sample 0 so the datapath never quiesces. Like fir, this is the regime
 * where RTL and sequential simulation do comparable work per cycle.
 */
#include "designs/designs.hpp"

#include <cmath>

#include "koika/builder.hpp"
#include "koika/typecheck.hpp"

namespace koika::designs {

namespace {

Action*
lfsr_next16(Builder& b, Action* v)
{
    Action* bit = b.xor_(
        b.xor_(b.slice(b.clone(v), 0, 1), b.slice(b.clone(v), 2, 1)),
        b.xor_(b.slice(b.clone(v), 3, 1), b.slice(b.clone(v), 5, 1)));
    return b.concat(bit, b.slice(v, 1, 15));
}

/** Q8 fixed-point multiply of two 16-bit values, truncated to 16 bits. */
Action*
qmul(Builder& b, Action* x, Action* y)
{
    // (x * y) >> 8 in 32-bit precision, then truncate.
    Action* wide = b.mul(b.sextl(x, 32), b.sextl(y, 32));
    return b.slice(wide, 8, 16);
}

} // namespace

std::unique_ptr<Design>
build_fft(int points)
{
    KOIKA_CHECK(points >= 2 && (points & (points - 1)) == 0);
    auto d = std::make_unique<Design>("fft");
    Builder b(*d);

    int lfsr = b.reg("lfsr", 16, 0x1D4B);
    std::vector<int> re = b.reg_array("re", (size_t)points, bits_type(16),
                                      Bits::zeroes(16));
    std::vector<int> im = b.reg_array("im", (size_t)points, bits_type(16),
                                      Bits::zeroes(16));

    std::vector<Action*> body;
    // Stir sample 0 so values keep changing.
    body.push_back(b.write0(lfsr, lfsr_next16(b, b.read0(lfsr))));

    // One butterfly stage: pairs (k, k + points/2) with twiddle W^k.
    int half = points / 2;
    for (int k = 0; k < half; ++k) {
        double angle = -2.0 * M_PI * k / points;
        auto q8 = [](double x) {
            return (uint64_t)(uint16_t)(int16_t)std::lround(x * 256.0);
        };
        uint64_t wr = q8(std::cos(angle)), wi = q8(std::sin(angle));

        size_t a = (size_t)k, c = (size_t)(k + half);
        Action* ar = b.read0(re[a]);
        Action* ai = b.read0(im[a]);
        // t = W * b (complex Q8 multiply).
        Action* tr = b.sub(qmul(b, b.read0(re[c]), b.k(16, wr)),
                           qmul(b, b.read0(im[c]), b.k(16, wi)));
        Action* ti = b.add(qmul(b, b.read0(re[c]), b.k(16, wi)),
                           qmul(b, b.read0(im[c]), b.k(16, wr)));
        // a' = a + t, b' = a - t.
        body.push_back(b.let(
            "tr" + std::to_string(k), tr,
            b.let("ti" + std::to_string(k), ti,
                  b.seq({b.write0(re[a],
                                  b.add(ar, b.var("tr" +
                                                  std::to_string(k)))),
                         b.write0(im[a],
                                  b.add(ai, b.var("ti" +
                                                  std::to_string(k)))),
                         b.write0(re[c],
                                  b.sub(b.read0(re[a]),
                                        b.var("tr" + std::to_string(k)))),
                         b.write0(im[c],
                                  b.sub(b.read0(im[a]),
                                        b.var("ti" +
                                              std::to_string(k))))}))));
    }
    // Inject fresh energy into sample 0 (after the butterflies, at
    // port 1 so it lands next cycle without conflicting).
    body.push_back(
        b.write1(re[0], b.xor_(b.read1(re[0]), b.slice(b.read0(lfsr), 0, 16))));

    d->add_rule("butterfly", b.seq(std::move(body)));
    d->schedule("butterfly");
    typecheck(*d);
    return d;
}

} // namespace koika::designs
