#include "designs/targets.hpp"

#include "designs/rv32.hpp"
#include "harness/memory.hpp"
#include "interp/reference_model.hpp"
#include "obs/prof.hpp"
#include "riscv/programs.hpp"

namespace koika::designs {

bool
parse_tier(const std::string& engine, sim::Tier* tier)
{
    if (engine.size() == 2 && engine[0] == 'T' && engine[1] >= '0' &&
        engine[1] <= '5') {
        *tier = (sim::Tier)(engine[1] - '0');
        return true;
    }
    return false;
}

std::unique_ptr<sim::Model>
make_model(const Design& design, const std::string& engine,
           const codegen::DlModelOptions& dlopts)
{
    if (engine == "ref")
        return std::make_unique<ReferenceModel>(design);
    if (engine == "compiled")
        return codegen::load_compiled_model(design, dlopts);
    sim::Tier tier;
    if (!parse_tier(engine, &tier))
        fatal("unknown in-process engine '%s' (expected T0..T5, 'ref', "
              "or 'compiled')",
              engine.c_str());
    return sim::make_engine(design, tier);
}

std::string
engine_label(const std::string& engine)
{
    if (engine == "ref")
        return "reference";
    if (engine == "compiled")
        return "cuttlesim";
    sim::Tier tier;
    if (parse_tier(engine, &tier))
        return sim::tier_name(tier);
    return engine;
}

fault::TargetFactory
make_target_factory(const Design& design, const std::string& engine,
                    const codegen::DlModelOptions& dlopts)
{
    if (design.name().rfind("rv32", 0) != 0)
        return [&design, engine, dlopts]() {
            // Engine construction is the suspected per-trial cost in
            // parallel campaigns (ROADMAP item 2) — give it its own
            // phase so the profile can prove or refute that.
            obs::ProfScope span("engine/build");
            fault::FaultTarget t;
            t.model = make_model(design, engine, dlopts);
            return t;
        };

    int cores = design.name().find("-mc") != std::string::npos ? 2 : 1;
    auto program = std::make_shared<riscv::Program>(
        riscv::build_program(riscv::primes_source(20)));
    auto ports = std::make_shared<std::vector<Rv32CorePorts>>();
    for (int core = 0; core < cores; ++core)
        ports->push_back(rv32_ports(design, core, cores));

    return [&design, engine, dlopts, program, ports]() {
        struct Ctx
        {
            std::vector<std::unique_ptr<harness::MemoryDevice>> mems;
            std::vector<std::unique_ptr<harness::MemPort>> mem_ports;
        };
        obs::ProfScope span("engine/build");
        auto ctx = std::make_shared<Ctx>();
        for (const Rv32CorePorts& p : *ports) {
            auto mem = std::make_unique<harness::MemoryDevice>();
            mem->load_words(program->words, program->base);
            ctx->mem_ports.push_back(
                std::make_unique<harness::MemPort>(*mem, p.imem));
            ctx->mem_ports.push_back(
                std::make_unique<harness::MemPort>(*mem, p.dmem));
            ctx->mems.push_back(std::move(mem));
        }
        fault::FaultTarget t;
        t.model = make_model(design, engine, dlopts);
        t.stimulus = [ctx](sim::Model& m, uint64_t) {
            for (auto& port : ctx->mem_ports)
                port->tick(m);
        };
        // Fixed serialization order: every memory, then every port.
        t.save_env = [ctx](sim::StateWriter& w) {
            for (auto& mem : ctx->mems)
                mem->save_state(w);
            for (auto& port : ctx->mem_ports)
                port->save_state(w);
        };
        t.load_env = [ctx](sim::StateReader& r) {
            for (auto& mem : ctx->mems)
                mem->load_state(r);
            for (auto& port : ctx->mem_ports)
                port->load_state(r);
        };
        t.context = ctx;
        return t;
    };
}

} // namespace koika::designs
