/**
 * @file
 * Engine construction and fresh-system factories for registry designs.
 *
 * Everything that runs a design — cuttlec's simulate/fault/bisect
 * paths, the campaign orchestrator's worker processes, benches — needs
 * the same two ingredients: "build me the model for engine E" and
 * "build me a complete, identically-initialized system (model +
 * stimulus + peripherals) for design D". They used to live inside
 * cuttlec's main; they are a library now so out-of-process workers can
 * reconstruct byte-identical campaign targets from a manifest alone.
 *
 * Engine names follow the CLI convention: "T0".."T5" interpreter
 * tiers, "ref" the reference interpreter, and "compiled" the generated
 * C++ model built by the system compiler and dlopened into the process
 * (codegen/dlmodel.hpp) — fully instrumented, so it is a drop-in for
 * the tiers everywhere, fault campaigns included.
 */
#pragma once

#include <memory>
#include <string>

#include "codegen/dlmodel.hpp"
#include "fault/fault.hpp"
#include "koika/design.hpp"
#include "sim/model.hpp"
#include "sim/tiers.hpp"

namespace koika::designs {

/** Parse "T0".."T5" into a tier. False for anything else. */
bool parse_tier(const std::string& engine, sim::Tier* tier);

/**
 * Build an in-process model for an engine name: an interpreter tier
 * (T0..T5), the reference interpreter ("ref"), or the dlopened
 * generated model ("compiled"; `dlopts` picks its flags and cache, and
 * only the first build per thread pays the compile pipeline).
 * FatalError on an unknown name.
 */
std::unique_ptr<sim::Model>
make_model(const Design& design, const std::string& engine,
           const codegen::DlModelOptions& dlopts = {});

/** Display label for an in-process engine (stats/report "engine"). */
std::string engine_label(const std::string& engine);

/**
 * A fresh-system factory for fault campaigns, golden runs, and plain
 * simulation. RISC-V designs get per-instance magic memories preloaded
 * with a small primes program (the design is meaningless without a
 * stimulus); every other registry design is closed and needs none.
 * RISC-V targets carry save_env/load_env hooks serializing the
 * memories and ports, so checkpoints capture the whole system.
 *
 * Deterministic by construction: two factories built from the same
 * (design, engine) produce targets that simulate byte-identically —
 * the property that lets orchestrated campaign workers rebuild their
 * targets from a manifest and still merge into the bytes a
 * single-process run would have produced.
 */
fault::TargetFactory
make_target_factory(const Design& design, const std::string& engine,
                    const codegen::DlModelOptions& dlopts = {});

} // namespace koika::designs
