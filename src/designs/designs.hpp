/**
 * @file
 * The benchmark design suite (paper Table 1) and the case-study designs.
 *
 * | name      | description                                            |
 * |-----------|--------------------------------------------------------|
 * | collatz   | trivial state machine (guarded mutually-exclusive rules)|
 * | fir       | finite impulse response filter (combinational, metaprog)|
 * | fft       | butterfly stage of an FFT (combinational, metaprog)     |
 * | rv32i     | 4-stage pipelined RV32I core, PC+4 predictor            |
 * | rv32e     | embedded variant (16 registers)                          |
 * | rv32i-bp  | rv32i with a BTB + BHT branch predictor                  |
 * | rv32i-mc  | dual-core rv32i                                          |
 * | msi       | 2-core MSI cache-coherence system (case study 1)         |
 *
 * All designs are self-contained Kôika designs built through the EDSL;
 * the RISC-V cores talk to magic memory through register-handshake ports
 * (src/harness/memory.hpp).
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "koika/design.hpp"

namespace koika::designs {

/** The paper's "trivial state machine" running Collatz sequences. */
std::unique_ptr<Design> build_collatz();

/** FIR filter with `taps` coefficients, fed by an internal LFSR. */
std::unique_ptr<Design> build_fir(int taps = 8);

/** One radix-2 butterfly stage over `points` complex samples. */
std::unique_ptr<Design> build_fft(int points = 8);

/** Names of all registry designs. */
std::vector<std::string> design_names();

/** Build a design by registry name; throws on unknown names. */
std::unique_ptr<Design> build_design(const std::string& name);

} // namespace koika::designs
